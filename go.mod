module defectsim

go 1.22
