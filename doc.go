// Package defectsim reproduces "Fault Modeling and Defect Level
// Projections in Digital ICs" (Sousa, Gonçalves, Teixeira, Williams; DATE
// 1994): layout-based inductive fault analysis, gate- and switch-level
// fault simulation, and the defect-level model
//
//	DL(T) = 1 − Y^(1 − Θmax·(1 − (1−T)^R))
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/dlproj regenerates every figure of the paper and
// bench_test.go exposes one benchmark per figure/table. This root package
// only anchors the module documentation and the benchmark harness.
package defectsim
