package defectsim_test

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	defectsim "defectsim"
)

func TestPublicModels(t *testing.T) {
	if got := defectsim.WilliamsBrown(0.75, 1); got != 0 {
		t.Fatalf("W-B(T=1) = %g", got)
	}
	p := defectsim.ModelParams{R: 2.1, ThetaMax: 1}
	req, err := p.RequiredT(0.75, 100e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(req-0.977) > 1e-3 {
		t.Fatalf("Example 1 via public API: %g", req)
	}
	if defectsim.Agrawal(0.75, 1, 2) != 0 {
		t.Fatal("Agrawal endpoint")
	}
	if d := defectsim.WeightedDL(0.75, 0.5) - defectsim.WilliamsBrown(0.75, 0.5); d != 0 {
		t.Fatal("eq. 3 has the W-B form over Θ")
	}
	if g := defectsim.CoverageGrowth(1, math.E*2, 1); g != 0 {
		t.Fatal("growth at k=1")
	}
}

func TestPublicCircuits(t *testing.T) {
	if c := defectsim.C17(); len(c.PIs) != 5 || len(c.Gates) != 6 {
		t.Fatal("c17 via public API")
	}
	if c := defectsim.C432Class(1); len(c.PIs) != 36 {
		t.Fatal("c432-class via public API")
	}
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	nl, err := defectsim.ParseBench("mini", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 1 {
		t.Fatal("parse via public API")
	}
}

func TestPublicPipelineEndToEnd(t *testing.T) {
	cfg := defectsim.DefaultPipelineConfig()
	cfg.RandomVectors = 32
	cfg.Stats = defectsim.TypicalDefects()
	path := filepath.Join(t.TempDir(), "cache.json")

	p, hit, err := defectsim.RunPipelineCached(defectsim.RippleAdder(3), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold cache cannot hit")
	}
	if p.Yield <= 0 || p.Yield >= 1 {
		t.Fatalf("yield %g", p.Yield)
	}
	fitted := defectsim.FitPipeline(p)
	if err := fitted.Validate(); err != nil {
		t.Fatal(err)
	}
	// Defect level from the fitted model at the final coverage must be
	// close to the directly computed weighted DL.
	theta := p.ThetaCurve(false).Final()
	direct := defectsim.WeightedDL(p.Yield, theta)
	tFinal := p.TCurve().Final()
	model := fitted.DL(p.Yield, tFinal)
	if direct <= 0 || model <= 0 {
		t.Fatal("degenerate DLs")
	}
	if r := model / direct; r < 0.3 || r > 3 {
		t.Fatalf("fitted model far from data: %g vs %g", model, direct)
	}
	// Cached rerun through the public API.
	if _, hit, err = defectsim.RunPipelineCached(defectsim.RippleAdder(3), cfg, path); err != nil || !hit {
		t.Fatal("cache must hit")
	}
}
