package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: defectsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLayoutBuild        	     626	   1847475 ns/op	 4264359 B/op	    3196 allocs/op
BenchmarkGateLevelFaultSim-8	     746	   1615419 ns/op	   21850 B/op	      13 allocs/op
BenchmarkATPG               	      18	  64262993 ns/op
PASS
ok  	defectsim	39.410s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("env header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	// Sorted by name; GOMAXPROCS suffix stripped.
	if doc.Benchmarks[1].Name != "BenchmarkGateLevelFaultSim" {
		t.Fatalf("name = %q (suffix not stripped or unsorted)", doc.Benchmarks[1].Name)
	}
	e := doc.Benchmarks[1]
	if e.Iterations != 746 || e.NsPerOp != 1615419 || e.BytesPerOp != 21850 || e.AllocsPerOp != 13 {
		t.Fatalf("entry: %+v", e)
	}
	// -benchmem tail optional.
	if a := doc.Benchmarks[0]; a.Name != "BenchmarkATPG" || a.BytesPerOp != 0 {
		t.Fatalf("entry without benchmem: %+v", a)
	}
}

func TestCompareGate(t *testing.T) {
	base := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
		{Name: "BenchmarkRetired", NsPerOp: 100},
	}}
	cur := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkA", NsPerOp: 250}, // within 3x
		{Name: "BenchmarkB", NsPerOp: 400}, // beyond 3x
		{Name: "BenchmarkNew", NsPerOp: 1}, // no baseline: never fails
	}}
	var out strings.Builder
	failed := compare(&out, base, cur, 3.0)
	if len(failed) != 1 || failed[0] != "BenchmarkB" {
		t.Fatalf("failed = %v, want [BenchmarkB]", failed)
	}
	for _, want := range []string{"REGRESSED", "NEW", "MISSING", "BenchmarkRetired"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}
