package main

import (
	"flag"
	"io"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: defectsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLayoutBuild        	     626	   1847475 ns/op	 4264359 B/op	    3196 allocs/op
BenchmarkGateLevelFaultSim-8	     746	   1615419 ns/op	   21850 B/op	      13 allocs/op
BenchmarkATPG               	      18	  64262993 ns/op
PASS
ok  	defectsim	39.410s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("env header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	// Sorted by name; GOMAXPROCS suffix stripped.
	if doc.Benchmarks[1].Name != "BenchmarkGateLevelFaultSim" {
		t.Fatalf("name = %q (suffix not stripped or unsorted)", doc.Benchmarks[1].Name)
	}
	e := doc.Benchmarks[1]
	if e.Iterations != 746 || e.NsPerOp != 1615419 || e.BytesPerOp != 21850 || e.AllocsPerOp != 13 {
		t.Fatalf("entry: %+v", e)
	}
	// -benchmem tail optional.
	if a := doc.Benchmarks[0]; a.Name != "BenchmarkATPG" || a.BytesPerOp != 0 {
		t.Fatalf("entry without benchmem: %+v", a)
	}
}

func TestCompareGate(t *testing.T) {
	base := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 100},
		{Name: "BenchmarkRetired", NsPerOp: 100},
	}}
	cur := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkA", NsPerOp: 250}, // within 3x
		{Name: "BenchmarkB", NsPerOp: 400}, // beyond 3x
		{Name: "BenchmarkNew", NsPerOp: 1}, // no baseline: never fails
	}}
	var out strings.Builder
	failed := compare(&out, base, cur, 3.0, 1.1, nil)
	if len(failed) != 1 || failed[0] != "BenchmarkB ns/op" {
		t.Fatalf("failed = %v, want [BenchmarkB ns/op]", failed)
	}
	for _, want := range []string{"REGRESSED", "NEW", "MISSING", "BenchmarkRetired"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkNoMem", NsPerOp: 100}, // converted without -benchmem
	}}
	cur := &Doc{Benchmarks: []Entry{
		// Fast wall time but 2x the bytes and 3x the allocs: the alloc
		// gate must catch what the ns gate absorbs.
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 2000, AllocsPerOp: 30},
		// Zero baseline ⇒ no alloc gate even with huge current values.
		{Name: "BenchmarkNoMem", NsPerOp: 100, BytesPerOp: 1 << 30, AllocsPerOp: 1 << 20},
	}}
	var out strings.Builder
	failed := compare(&out, base, cur, 1.5, 1.1, nil)
	want := []string{"BenchmarkA B/op", "BenchmarkA allocs/op"}
	if len(failed) != 2 || failed[0] != want[0] || failed[1] != want[1] {
		t.Fatalf("failed = %v, want %v", failed, want)
	}
}

func TestCompareOverride(t *testing.T) {
	base := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkNoisy", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "BenchmarkQuiet", NsPerOp: 100, AllocsPerOp: 10},
	}}
	cur := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkNoisy", NsPerOp: 300, AllocsPerOp: 25},
		{Name: "BenchmarkQuiet", NsPerOp: 300, AllocsPerOp: 25},
	}}
	ov := overrides{}
	if err := ov.Set("BenchmarkNoisy=4.0"); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	failed := compare(&out, base, cur, 1.5, 1.1, ov)
	// The override absorbs BenchmarkNoisy entirely; BenchmarkQuiet still
	// fails both its gates.
	want := []string{"BenchmarkQuiet ns/op", "BenchmarkQuiet allocs/op"}
	if len(failed) != 2 || failed[0] != want[0] || failed[1] != want[1] {
		t.Fatalf("failed = %v, want %v", failed, want)
	}
	if err := ov.Set("garbage"); err == nil {
		t.Fatal("Set(garbage) accepted")
	}
	if err := ov.Set("Name=-1"); err == nil {
		t.Fatal("Set(Name=-1) accepted")
	}
}

func TestDeltaTable(t *testing.T) {
	prev := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkA", NsPerOp: 200, BytesPerOp: 1000, AllocsPerOp: 10},
	}}
	cur := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkA", NsPerOp: 100, BytesPerOp: 500, AllocsPerOp: 10},
		{Name: "BenchmarkNew", NsPerOp: 7},
	}}
	var out strings.Builder
	delta(&out, prev, cur)
	got := out.String()
	for _, want := range []string{
		"| benchmark | ns/op | B/op | allocs/op |",
		"| BenchmarkA | 100 ns (-50.0%) | 500 B (-50.0%) | 10 allocs (+0.0%) |",
		"| BenchmarkNew | 7 ns |",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("delta table missing %q:\n%s", want, got)
		}
	}
}

// TestPositionalsTrailingFlags pins the documented CLI shape: the file
// arguments may precede the tuning flags (benchjson -compare BASE
// CURRENT -tolerance 1.5), which the stdlib flag package alone rejects
// by stopping at the first positional.
func TestPositionalsTrailingFlags(t *testing.T) {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	tol := fs.Float64("tolerance", 1.5, "")
	alloc := fs.Float64("alloc-tolerance", 1.1, "")

	// The CI gate's exact argument order, minus the leading -compare
	// (consumed by the initial top-level parse).
	pos, err := positionals(fs, []string{
		"BENCH_seed.json", "BENCH_ci.json", "-tolerance", "2.0", "-alloc-tolerance", "1.25",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 2 || pos[0] != "BENCH_seed.json" || pos[1] != "BENCH_ci.json" {
		t.Fatalf("positionals = %v", pos)
	}
	if *tol != 2.0 || *alloc != 1.25 {
		t.Fatalf("trailing flags not applied: tolerance=%v alloc=%v", *tol, *alloc)
	}

	// Interleaved order and flags-first both behave identically.
	pos, err = positionals(fs, []string{"-tolerance", "3.0", "a.json", "-alloc-tolerance", "1.5", "b.json"})
	if err != nil || len(pos) != 2 || *tol != 3.0 || *alloc != 1.5 {
		t.Fatalf("interleaved parse: pos=%v err=%v tol=%v alloc=%v", pos, err, *tol, *alloc)
	}

	// A bad flag surfaces as an error, not a silent positional.
	if _, err := positionals(fs, []string{"a.json", "-no-such-flag"}); err == nil {
		t.Fatal("unknown trailing flag accepted")
	}
}
