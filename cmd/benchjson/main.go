// Command benchjson converts `go test -bench` text output into a stable
// JSON document and compares two such documents for regressions — the
// repo's CI benchmark gate.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -o BENCH_ci.json
//	benchjson -compare BENCH_seed.json BENCH_ci.json -tolerance 1.5 -alloc-tolerance 1.1
//	benchjson -delta BENCH_prev.json BENCH_ci.json
//
// Conversion reads benchmark lines ("BenchmarkName-8  100  123 ns/op ...")
// from stdin, strips the GOMAXPROCS suffix, and writes one entry per
// benchmark together with the run's environment header (goos/goarch/cpu).
//
// Compare exits non-zero when a benchmark present in both documents got
// worse than baseline × tolerance on any gated metric. Wall time is gated
// at -tolerance (default 1.5: catches lost optimizations while absorbing
// ordinary runner-speed variance). bytes_per_op and allocs_per_op are
// gated at -alloc-tolerance (default 1.1): allocation counts are
// deterministic, so almost any headroom there is a real leak of work back
// into the hot path, not noise. Metrics the baseline recorded as zero are
// not gated (a ratio against zero is meaningless; baselines converted
// without -benchmem simply skip the allocation gates). A repeatable
// -override Name=ratio flag raises every limit for one benchmark — the
// escape hatch for a benchmark with a known-noisy profile — without
// loosening the gate for the rest of the suite. Benchmarks present on
// only one side are reported but never fail the gate, so adding or
// retiring a benchmark does not need a baseline refresh in the same
// change.
//
// Delta prints a GitHub-flavored markdown table of ns/bytes/allocs
// changes between two documents — for CI job summaries, never a gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the JSON document: environment header plus sorted entries.
type Doc struct {
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line. The -N GOMAXPROCS
// suffix is split off so baselines compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		// Optional -benchmem tail: "  N B/op  M allocs/op".
		tail := strings.Fields(m[4])
		for i := 0; i+1 < len(tail); i++ {
			switch tail[i+1] {
			case "B/op":
				e.BytesPerOp, _ = strconv.ParseInt(tail[i], 10, 64)
			case "allocs/op":
				e.AllocsPerOp, _ = strconv.ParseInt(tail[i], 10, 64)
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

func load(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &Doc{}
	if err := json.Unmarshal(b, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// overrides maps benchmark name → per-benchmark tolerance that replaces
// every metric's limit for that benchmark. Implements flag.Value so
// -override can repeat.
type overrides map[string]float64

func (o overrides) String() string { return "" }

func (o overrides) Set(s string) error {
	name, ratio, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want Name=ratio, got %q", s)
	}
	v, err := strconv.ParseFloat(ratio, 64)
	if err != nil || v <= 0 {
		return fmt.Errorf("bad ratio in %q", s)
	}
	o[name] = v
	return nil
}

// limits holds the gate limits for one benchmark after overrides.
type limits struct {
	ns, alloc float64
}

// compare prints a per-benchmark verdict for every gated metric and
// returns the "name metric" pairs that got worse than their limit.
// Metrics the baseline recorded as 0 are skipped.
func compare(w io.Writer, base, cur *Doc, tolerance, allocTolerance float64, ov overrides) []string {
	baseBy := map[string]Entry{}
	for _, e := range base.Benchmarks {
		baseBy[e.Name] = e
	}
	var failed []string
	seen := map[string]bool{}
	for _, e := range cur.Benchmarks {
		seen[e.Name] = true
		b, ok := baseBy[e.Name]
		if !ok {
			fmt.Fprintf(w, "NEW      %-36s %14.0f ns/op (no baseline)\n", e.Name, e.NsPerOp)
			continue
		}
		lim := limits{ns: tolerance, alloc: allocTolerance}
		if v, ok := ov[e.Name]; ok {
			lim = limits{ns: v, alloc: v}
		}
		gate := func(metric string, cur, base, limit float64) {
			if base == 0 {
				return
			}
			ratio := cur / base
			verdict := "ok"
			if ratio > limit {
				verdict = "REGRESSED"
				failed = append(failed, e.Name+" "+metric)
			}
			fmt.Fprintf(w, "%-9s%-36s %14.0f %-9s baseline %14.0f  ratio %.2fx (limit %.2fx)\n",
				verdict, e.Name, cur, metric, base, ratio, limit)
		}
		gate("ns/op", e.NsPerOp, b.NsPerOp, lim.ns)
		gate("B/op", float64(e.BytesPerOp), float64(b.BytesPerOp), lim.alloc)
		gate("allocs/op", float64(e.AllocsPerOp), float64(b.AllocsPerOp), lim.alloc)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "MISSING  %-36s baseline %14.0f ns/op (not run)\n", b.Name, b.NsPerOp)
		}
	}
	return failed
}

// delta prints a markdown table of per-benchmark changes between prev and
// cur — informational only.
func delta(w io.Writer, prev, cur *Doc) {
	prevBy := map[string]Entry{}
	for _, e := range prev.Benchmarks {
		prevBy[e.Name] = e
	}
	cell := func(cur, prev float64, unit string) string {
		if prev == 0 {
			return fmt.Sprintf("%.0f %s", cur, unit)
		}
		return fmt.Sprintf("%.0f %s (%+.1f%%)", cur, unit, 100*(cur/prev-1))
	}
	fmt.Fprintln(w, "| benchmark | ns/op | B/op | allocs/op |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, e := range cur.Benchmarks {
		p := prevBy[e.Name]
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", e.Name,
			cell(e.NsPerOp, p.NsPerOp, "ns"),
			cell(float64(e.BytesPerOp), float64(p.BytesPerOp), "B"),
			cell(float64(e.AllocsPerOp), float64(p.AllocsPerOp), "allocs"))
	}
}

// positionals walks the arguments left after the initial flag.Parse,
// returning the non-flag arguments in order and feeding any later flag
// runs back through fs. Go's flag package stops at the first positional,
// but the documented invocations put the file arguments before the
// tuning flags (benchjson -compare BASE CURRENT -tolerance 1.5), so
// parsing must resume after each positional.
func positionals(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for len(args) > 0 {
		if len(args[0]) > 1 && args[0][0] == '-' {
			if err := fs.Parse(args); err != nil {
				return nil, err
			}
			args = fs.Args()
			continue
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
	return pos, nil
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	cmp := flag.Bool("compare", false, "compare two JSON documents: benchjson -compare BASE CURRENT")
	dlt := flag.Bool("delta", false, "print a markdown delta table: benchjson -delta PREV CURRENT")
	tolerance := flag.Float64("tolerance", 1.5, "ns/op gate: fail when current > baseline × tolerance")
	allocTolerance := flag.Float64("alloc-tolerance", 1.1, "B/op and allocs/op gate: fail when current > baseline × tolerance")
	ov := overrides{}
	flag.Var(ov, "override", "per-benchmark tolerance for all metrics, Name=ratio (repeatable)")
	flag.Parse()
	files, err := positionals(flag.CommandLine, flag.Args())
	if err != nil {
		os.Exit(2) // flag.ExitOnError has already printed the message
	}

	loadPair := func(usage string) (*Doc, *Doc) {
		if len(files) != 2 {
			fmt.Fprintln(os.Stderr, "usage:", usage)
			os.Exit(2)
		}
		a, err := load(files[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		b, err := load(files[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		return a, b
	}

	switch {
	case *cmp:
		base, cur := loadPair("benchjson -compare BASE.json CURRENT.json [-tolerance 1.5] [-alloc-tolerance 1.1] [-override Name=ratio]")
		failed := compare(os.Stdout, base, cur, *tolerance, *allocTolerance, ov)
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d metric(s) regressed: %s\n",
				len(failed), strings.Join(failed, ", "))
			os.Exit(1)
		}
		return
	case *dlt:
		prev, cur := loadPair("benchjson -delta PREV.json CURRENT.json")
		delta(os.Stdout, prev, cur)
		return
	}

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
}
