// Command benchjson converts `go test -bench` text output into a stable
// JSON document and compares two such documents for regressions — the
// repo's CI benchmark gate.
//
// Usage:
//
//	go test -bench=. -benchmem . | benchjson -o BENCH_ci.json
//	benchjson -compare BENCH_seed.json BENCH_ci.json -tolerance 1.5
//
// Conversion reads benchmark lines ("BenchmarkName-8  100  123 ns/op ...")
// from stdin, strips the GOMAXPROCS suffix, and writes one entry per
// benchmark together with the run's environment header (goos/goarch/cpu).
//
// Compare exits non-zero when a benchmark present in both documents got
// slower than baseline × tolerance. The default tolerance of 1.5 catches
// lost optimizations (a dropped cache, an accidental serial fallback, a
// quadratic merge) while absorbing ordinary runner-speed variance; pass a
// larger -tolerance on unusually slow runners. Benchmarks present on only
// one side are reported but never fail the gate, so adding or retiring a
// benchmark does not need a baseline refresh in the same change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the JSON document: environment header plus sorted entries.
type Doc struct {
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line. The -N GOMAXPROCS
// suffix is split off so baselines compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		// Optional -benchmem tail: "  N B/op  M allocs/op".
		tail := strings.Fields(m[4])
		for i := 0; i+1 < len(tail); i++ {
			switch tail[i+1] {
			case "B/op":
				e.BytesPerOp, _ = strconv.ParseInt(tail[i], 10, 64)
			case "allocs/op":
				e.AllocsPerOp, _ = strconv.ParseInt(tail[i], 10, 64)
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

func load(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &Doc{}
	if err := json.Unmarshal(b, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// compare prints a per-benchmark verdict and returns the names that got
// slower than base × tolerance.
func compare(w io.Writer, base, cur *Doc, tolerance float64) []string {
	baseBy := map[string]Entry{}
	for _, e := range base.Benchmarks {
		baseBy[e.Name] = e
	}
	var failed []string
	seen := map[string]bool{}
	for _, e := range cur.Benchmarks {
		seen[e.Name] = true
		b, ok := baseBy[e.Name]
		if !ok {
			fmt.Fprintf(w, "NEW      %-32s %14.0f ns/op (no baseline)\n", e.Name, e.NsPerOp)
			continue
		}
		ratio := e.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > tolerance {
			verdict = "REGRESSED"
			failed = append(failed, e.Name)
		}
		fmt.Fprintf(w, "%-9s%-32s %14.0f ns/op  baseline %14.0f  ratio %.2fx (limit %.1fx)\n",
			verdict, e.Name, e.NsPerOp, b.NsPerOp, ratio, tolerance)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "MISSING  %-32s baseline %14.0f ns/op (not run)\n", b.Name, b.NsPerOp)
		}
	}
	return failed
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	cmp := flag.Bool("compare", false, "compare two JSON documents: benchjson -compare BASE CURRENT")
	tolerance := flag.Float64("tolerance", 1.5, "regression gate: fail when current > baseline × tolerance")
	flag.Parse()

	if *cmp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare BASE.json CURRENT.json [-tolerance 1.5]")
			os.Exit(2)
		}
		base, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		cur, err := load(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		failed := compare(os.Stdout, base, cur, *tolerance)
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.1fx: %s\n",
				len(failed), *tolerance, strings.Join(failed, ", "))
			os.Exit(1)
		}
		return
	}

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(2)
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
}
