// Command dlproj regenerates the paper's figures, tables and worked
// examples from the defectsim pipeline.
//
// Usage:
//
//	dlproj [flags] <command>
//
// Commands:
//
//	fig1     analytic coverage-growth curves T(k), Θ(k)       (paper fig. 1)
//	fig2     DL(T): Williams–Brown vs proposed model          (paper fig. 2)
//	fig3     histogram of extracted fault weights             (paper fig. 3)
//	fig4     simulated coverage curves T, Θ, Γ vs k           (paper fig. 4)
//	fig5     DL vs stuck-at coverage + model fit              (paper fig. 5)
//	fig6     DL vs unweighted coverage                        (paper fig. 6)
//	ex1      required coverage for 100 ppm                    (paper ex. 1)
//	ex2      residual defect level at 100% coverage           (paper ex. 2)
//	agrawal  Agrawal-model comparison                         (TAB-A)
//	iddq     voltage vs voltage+IDDQ coverage ceiling         (ABL-2)
//	opens    rerun with an opens-dominant defect mix          (ABL-3)
//	delay    transition (delay) testing vs stuck-at testing   (ABL-4)
//	topup    bridge-targeting ATPG top-up of the test set     (ABL-5)
//	paths    path-delay coverage of the K longest paths       (ABL-6)
//	maxwell  equal-coverage test sets, different quality      (ABL-7)
//	resist   resistive-bridge conductance sweep               (ABL-8)
//	ndetect  n-detection sweep: |T(n)|, Θ(n), DL(n)           (ABL-9)
//	dft      observation points at SCOAP-hard nets            (DFT-1)
//	lot      empirical DL from a simulated production lot     (VAL-1)
//	inject   geometric defect-injection extraction check      (VAL-2)
//	diag     bridge diagnosis via stuck-at surrogates         (VAL-3)
//	kinds    per-fault-kind detection breakdown
//	suite    run the pipeline over the whole benchmark suite
//	yieldrep Stapper per-defect-class yield decomposition
//	wafer    ASCII wafer maps (flat vs edge-degraded line)
//	svg      write the chip layout to <circuit>.svg
//	report   pipeline summary for the selected circuit
//	profile  per-stage wall-time/alloc/metric breakdown of the pipeline
//	all      everything above in order
//
// Flags select the circuit (default: the c432-class benchmark), the seed,
// the yield scaling and the random-vector budget; -n bounds the ndetect
// sweep's detection multiplicity, -trace=<path> writes a
// machine-readable JSON run report for any pipeline command, -timeout
// bounds the run's wall time, and -workers sizes the worker pool of the
// fault-parallel simulators and the concurrent experiment suite (0 = all
// CPUs; simulation results are identical for every worker count).
// The first SIGINT/SIGTERM cancels a running pipeline cleanly; a second
// forces immediate exit.
//
// Exit codes:
//
//	0  success
//	1  pipeline or I/O failure
//	2  usage error
//	3  run cancelled (signal) or timed out (-timeout)
//	4  success, but the run degraded (partial results; see stderr)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"defectsim/internal/defect"
	"defectsim/internal/experiments"
	"defectsim/internal/extract"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
	"defectsim/internal/sigctx"
	"defectsim/internal/wafer"
)

// commands is the single source of truth for the command list: the usage
// message is derived from it, and dispatch validates against it.
var commands = []struct{ name, desc string }{
	{"fig1", "analytic coverage-growth curves T(k), Θ(k) (paper fig. 1)"},
	{"fig2", "DL(T): Williams–Brown vs proposed model (paper fig. 2)"},
	{"fig3", "histogram of extracted fault weights (paper fig. 3)"},
	{"fig4", "simulated coverage curves T, Θ, Γ vs k (paper fig. 4)"},
	{"fig5", "DL vs stuck-at coverage + model fit (paper fig. 5)"},
	{"fig6", "DL vs unweighted coverage (paper fig. 6)"},
	{"ex1", "required coverage for 100 ppm (paper ex. 1)"},
	{"ex2", "residual defect level at 100% coverage (paper ex. 2)"},
	{"agrawal", "Agrawal-model comparison (TAB-A)"},
	{"iddq", "voltage vs voltage+IDDQ coverage ceiling (ABL-2)"},
	{"opens", "rerun with an opens-dominant defect mix (ABL-3)"},
	{"delay", "transition (delay) testing vs stuck-at testing (ABL-4)"},
	{"topup", "bridge-targeting ATPG top-up of the test set (ABL-5)"},
	{"paths", "path-delay coverage of the K longest paths (ABL-6)"},
	{"maxwell", "equal-coverage test sets, different quality (ABL-7)"},
	{"resist", "resistive-bridge conductance sweep (ABL-8)"},
	{"ndetect", "n-detection sweep: |T(n)|, Θ(n), DL(n) (ABL-9)"},
	{"dft", "observation points at SCOAP-hard nets (DFT-1)"},
	{"lot", "empirical DL from a simulated production lot (VAL-1)"},
	{"inject", "geometric defect-injection extraction check (VAL-2)"},
	{"diag", "bridge diagnosis via stuck-at surrogates (VAL-3)"},
	{"kinds", "per-fault-kind detection breakdown"},
	{"suite", "run the pipeline over the whole benchmark suite"},
	{"yieldrep", "Stapper per-defect-class yield decomposition"},
	{"wafer", "ASCII wafer maps (flat vs edge-degraded line)"},
	{"svg", "write the chip layout to <circuit>.svg"},
	{"report", "pipeline summary for the selected circuit"},
	{"profile", "per-stage wall-time/alloc/metric breakdown of the pipeline"},
	{"all", "everything above in order"},
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlproj [flags] <command>")
	fmt.Fprintln(os.Stderr, "\ncommands:")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-9s %s\n", c.name, c.desc)
	}
	fmt.Fprintln(os.Stderr, "\nflags:")
	flag.PrintDefaults()
}

func knownCommand(cmd string) bool {
	for _, c := range commands {
		if c.name == cmd {
			return true
		}
	}
	return false
}

func main() {
	var (
		circuit = flag.String("circuit", "c432", "benchmark: c432|c17|adder|mux|parity|cmp|dec|random")
		seed    = flag.Int64("seed", 1994, "generator / random-vector seed")
		yield   = flag.Float64("yield", 0.75, "target yield the fault weights are scaled to")
		vectors = flag.Int("vectors", 64, "random vector prefix before deterministic top-up")
		stats   = flag.String("stats", "typical", "defect statistics: typical|opens")
		cache   = flag.String("cache", "", "path to a pipeline result cache (created on miss, reused on hit)")
		trace   = flag.String("trace", "", "write a JSON run report (stage tree + metrics) to this path")
		timeout = flag.Duration("timeout", 0, "bound the pipeline's wall time (0 = unlimited); expiry exits with code 3")
		workers = flag.Int("workers", 0, "worker pool size for the fault-parallel simulators and concurrent experiments (0 = all CPUs)")
		ndetect = flag.Int("n", 4, "maximum detection multiplicity for the ndetect sweep")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	cmd := strings.ToLower(flag.Arg(0))
	if !knownCommand(cmd) {
		fmt.Fprintf(os.Stderr, "dlproj: unknown command %q (run dlproj -h for the list)\n", cmd)
		os.Exit(2)
	}

	// Cancel the run cleanly on the first SIGINT/SIGTERM; a second signal
	// forces immediate exit (shared policy with dlprojd, internal/sigctx).
	ctx, stop := sigctx.Notify(context.Background())
	defer stop()

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.TargetYield = *yield
	cfg.RandomVectors = *vectors
	cfg.Workers = *workers
	if *timeout > 0 {
		cfg.Deadline = *timeout
	}
	switch *stats {
	case "typical":
		cfg.Stats = defect.Typical()
	case "opens":
		cfg.Stats = defect.OpensDominant()
	default:
		fatal(fmt.Errorf("unknown -stats %q", *stats))
	}

	nl, err := pickCircuit(*circuit, *seed)
	if err != nil {
		fatal(err)
	}

	// Tracing: opted in via -trace or implied by the profile command.
	if *trace != "" || cmd == "profile" {
		cfg.Obs = obs.New()
	}
	writeTrace := func(p *experiments.Pipeline) {
		if *trace == "" || p == nil || p.Report == nil {
			return
		}
		data, err := p.Report.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*trace, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote run report to %s\n", *trace)
	}

	// Analytic commands need no simulation.
	switch cmd {
	case "fig1":
		fmt.Print(experiments.Figure1().Render())
		return
	case "fig2":
		fmt.Print(experiments.Figure2().Render())
		return
	case "ex1":
		e, err := experiments.RunExample1()
		if err != nil {
			fatal(err)
		}
		fmt.Print(e.Render())
		return
	case "ex2":
		fmt.Print(experiments.RunExample2().Render())
		return
	}

	// degraded flips when any pipeline run finished on a graceful-
	// degradation path; the process then exits 4 instead of 0.
	degraded := false
	noteDegradations := func(p *experiments.Pipeline) {
		if p.Degraded() {
			degraded = true
			for _, d := range p.Degradations {
				fmt.Fprintf(os.Stderr, "dlproj: %s\n", d)
			}
		}
	}
	run := func(c experiments.Config) *experiments.Pipeline {
		if *cache != "" {
			p, hit, err := experiments.RunCachedCtx(ctx, nl, c, *cache)
			if err != nil {
				fatal(err)
			}
			if hit {
				fmt.Fprintf(os.Stderr, "cache hit: reusing pipeline results from %s\n", *cache)
			} else {
				fmt.Fprintf(os.Stderr, "cache miss: pipeline simulated and cached to %s\n", *cache)
			}
			noteDegradations(p)
			writeTrace(p)
			return p
		}
		fmt.Fprintf(os.Stderr, "running pipeline on %s (layout, extraction, ATPG, fault simulation)...\n", nl.Name)
		p, err := experiments.RunCtx(ctx, nl, c)
		if err != nil {
			fatal(err)
		}
		noteDegradations(p)
		writeTrace(p)
		return p
	}

	switch cmd {
	case "svg":
		L, err := layout.BuildCtx(ctx, nl, nil)
		if err != nil {
			fatal(err)
		}
		name := nl.Name + ".svg"
		f, err := os.Create(name)
		if err != nil {
			fatal(err)
		}
		if err := L.WriteSVG(f, 1); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%s)\n", name, L.ComputeStats())
	case "fig3":
		fmt.Print(experiments.Figure3(run(cfg)).Render())
	case "fig4":
		fmt.Print(experiments.Figure4(run(cfg)).Render())
	case "fig5":
		fmt.Print(experiments.Figure5(run(cfg)).Render())
	case "fig6":
		fmt.Print(experiments.Figure6(run(cfg)).Render())
	case "agrawal":
		fmt.Print(experiments.RunAgrawalComparison(run(cfg)).Render())
	case "iddq":
		fmt.Print(experiments.RunIDDQAblation(run(cfg)).Render())
	case "opens":
		cfg.Stats = defect.OpensDominant()
		p := run(cfg)
		fmt.Print(p.Summary())
		fmt.Print(experiments.Figure4(p).Render())
	case "topup":
		tu, err := experiments.RunBridgeTopUp(run(cfg), 500)
		if err != nil {
			fatal(err)
		}
		fmt.Print(tu.Render())
	case "delay":
		a, err := experiments.RunDelayAblation(run(cfg))
		if err != nil {
			fatal(err)
		}
		fmt.Print(a.Render())
	case "paths":
		st, err := experiments.RunPathDelayStudy(run(cfg), 100)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Render())
	case "dft":
		st, err := experiments.RunTestPointStudy(run(cfg), 8)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Render())
	case "resist":
		st, err := experiments.RunResistiveBridgeStudy(run(cfg), nil)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Render())
	case "ndetect":
		st, err := experiments.RunNDetectStudy(ctx, run(cfg), *ndetect)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Render())
	case "maxwell":
		st, err := experiments.RunMaxwellAitken(run(cfg))
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Render())
	case "lot":
		fmt.Print(experiments.RunLotValidation(run(cfg), 200000, *seed).Render())
	case "inject":
		fmt.Print(experiments.RunInjectionValidation(run(cfg), 50000, *seed).Render())
	case "diag":
		st, err := experiments.RunDiagnosisStudy(run(cfg), 200, 5)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Render())
	case "kinds":
		fmt.Print(experiments.FaultKindBreakdown(run(cfg)))
	case "suite":
		fmt.Fprintln(os.Stderr, "running the pipeline over the benchmark suite (circuits in parallel)...")
		st, err := experiments.RunSuiteCtx(ctx, []*netlist.Netlist{
			netlist.C17(),
			netlist.RippleAdder(8),
			netlist.MuxTree(3),
			netlist.ParityTree(12),
			netlist.Comparator(8),
			netlist.Decoder(3),
			netlist.C432Class(*seed),
		}, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Render())
	case "yieldrep":
		L, err := layout.BuildCtx(ctx, nl, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Print(extract.RenderClassReport(extract.ClassReport(L, cfg.Stats)))
	case "wafer":
		p := run(cfg)
		g := wafer.Geometry{Radius: 150, DieW: 7, DieH: 7, EdgeExclusion: 4}
		k := len(p.TestSet.Patterns)
		fmt.Println("--- flat defect density ---")
		fmt.Print(wafer.Simulate(g, p.Faults, p.SwitchRes.DetectedAt, k, wafer.Uniform(), *seed).Render())
		fmt.Println("--- edge-degraded (×3 at the rim) ---")
		fmt.Print(wafer.Simulate(g, p.Faults, p.SwitchRes.DetectedAt, k, wafer.EdgeDegraded(3), *seed).Render())
	case "report":
		fmt.Print(run(cfg).Summary())
	case "profile":
		p := run(cfg)
		fmt.Print(p.Report.Render())
	case "all":
		fmt.Print(experiments.Figure1().Render(), "\n")
		fmt.Print(experiments.Figure2().Render(), "\n")
		e1, err := experiments.RunExample1()
		if err != nil {
			fatal(err)
		}
		fmt.Print(e1.Render(), "\n")
		fmt.Print(experiments.RunExample2().Render(), "\n")
		p := run(cfg)
		fmt.Print(p.Summary(), "\n")
		// The remaining studies only read the pipeline, so they run as a
		// concurrent suite on the -workers pool; output order is fixed.
		rendered, err := experiments.RunStudies(ctx, p, experiments.StandardStudies(), cfg.Workers)
		if err != nil {
			fatal(err)
		}
		for _, s := range rendered {
			fmt.Print(s, "\n")
		}
	default:
		fatal(fmt.Errorf("unknown command %q", cmd))
	}
	if degraded {
		fmt.Fprintln(os.Stderr, "dlproj: run degraded — results are partial (exit 4)")
		os.Exit(4)
	}
}

func pickCircuit(name string, seed int64) (*netlist.Netlist, error) {
	return netlist.ByName(name, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlproj:", err)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		os.Exit(3)
	}
	os.Exit(1)
}
