// Command dlprojd serves the defect-level projection pipeline over
// HTTP/JSON: the hardened serving layer of internal/serve behind a
// plain net/http server.
//
// Endpoints:
//
//	POST /v1/dl                    closed-form defect-level models (eq. 1–3, 11)
//	POST /v1/fit                   fit model parameters to fallout points
//	POST /v1/coverage              coverage-growth curves (analytic or empirical)
//	POST /v1/pipeline              submit an async pipeline job (202; 429 when shed)
//	GET  /v1/pipeline/{id}         job status
//	GET  /v1/pipeline/{id}/result  job result (202 while pending)
//	POST /v1/pipeline/{id}/cancel  cancel a job
//	GET  /healthz                  liveness
//	GET  /readyz                   readiness (503 while draining)
//	GET  /metrics                  server metrics (obs report JSON)
//
// Pipeline jobs run on a bounded worker pool behind a bounded admission
// queue: a full queue sheds with 429 + Retry-After, and identical
// concurrent submissions coalesce onto a single run. The first
// SIGINT/SIGTERM starts a graceful drain — readiness flips off, new
// submissions get 503, in-flight jobs get -drain-budget to finish and
// are then cancelled; a second signal forces immediate exit
// (internal/sigctx, shared with dlproj).
//
// Exit codes:
//
//	0  clean shutdown (every job finished on its own)
//	1  listen/serve failure
//	2  usage error
//	4  drained, but jobs had to be cancelled (partial shutdown)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"defectsim/internal/serve"
	"defectsim/internal/sigctx"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "localhost:8447", "listen address")
		queueDepth   = flag.Int("queue", 16, "admission queue depth; a full queue sheds submissions with 429")
		workers      = flag.Int("workers", 2, "concurrently executing pipeline jobs")
		simWorkers   = flag.Int("sim-workers", 0, "per-job fault-simulation worker pool (0 = all CPUs)")
		cacheDir     = flag.String("cache-dir", "", "directory for per-key pipeline result caches (empty = no cache)")
		drainBudget  = flag.Duration("drain-budget", 10*time.Second, "how long a drain waits for jobs before cancelling them")
		drainGrace   = flag.Duration("drain-grace", 5*time.Second, "how long a drain waits for cancelled jobs to unwind")
		defDeadline  = flag.Duration("default-deadline", 2*time.Minute, "per-job deadline when the request sets none (0 = unlimited)")
		maxDeadline  = flag.Duration("max-deadline", 10*time.Minute, "cap on per-request deadlines (0 = uncapped)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on shed and draining responses")
		maxJobs      = flag.Int("max-jobs", 1024, "finished-job records retained for status/result queries")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "dlprojd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		return 2
	}
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dlprojd:", err)
			return 1
		}
	}

	srv := serve.New(serve.Config{
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		SimWorkers:      *simWorkers,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		DrainBudget:     *drainBudget,
		DrainGrace:      *drainGrace,
		RetryAfter:      *retryAfter,
		CacheDir:        *cacheDir,
		MaxJobs:         *maxJobs,
	})

	hs := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlprojd:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "dlprojd: serving on http://%s (queue %d, %d workers)\n",
		ln.Addr(), *queueDepth, *workers)

	// First SIGINT/SIGTERM starts the graceful drain below; a second
	// forces immediate exit.
	ctx, stop := sigctx.Notify(context.Background())
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener died before any signal: that's a failure, not a drain.
		fmt.Fprintln(os.Stderr, "dlprojd:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "dlprojd: signal received, draining (second signal forces exit)")
	// Drain the job layer first (readiness off, jobs finish or are
	// cancelled), then shut the HTTP listener down. The HTTP shutdown
	// budget rides on top of the drain budget so status polls keep working
	// while jobs wind down.
	rep := srv.Drain(context.Background())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		_ = hs.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dlprojd:", err)
		return 1
	}

	if rep.Clean() {
		fmt.Fprintf(os.Stderr, "dlprojd: drained cleanly in %v\n", rep.Waited.Round(time.Millisecond))
		return 0
	}
	fmt.Fprintf(os.Stderr, "dlprojd: drain cancelled %d job(s) after %v (forced=%v)\n",
		len(rep.Cancelled), rep.Waited.Round(time.Millisecond), rep.Forced)
	return 4
}
