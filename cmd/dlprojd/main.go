// Command dlprojd serves the defect-level projection pipeline over
// HTTP/JSON: the hardened serving layer of internal/serve behind a
// plain net/http server.
//
// Endpoints:
//
//	POST /v1/dl                    closed-form defect-level models (eq. 1–3, 11)
//	POST /v1/fit                   fit model parameters to fallout points
//	POST /v1/coverage              coverage-growth curves (analytic or empirical)
//	POST /v1/pipeline              submit an async pipeline job (202; 429 when shed)
//	POST /v1/pipeline:batch        submit many jobs in one round trip (per-item statuses)
//	GET  /v1/store/{key}           fetch a result envelope (peer-facing store API; HEAD for existence)
//	PUT  /v1/store/{key}           accept a verified result envelope (idempotent)
//	GET  /v1/pipeline/{id}         job status
//	GET  /v1/pipeline/{id}/result  job result (202 while pending)
//	GET  /v1/pipeline/{id}/events  live job events (SSE; ?poll=1 for long-poll)
//	POST /v1/pipeline/{id}/cancel  cancel a job
//	POST /v1/cluster/reload        re-read -peers-file and swap the ring (loopback-only; also on SIGHUP)
//	GET  /healthz                  liveness + build info
//	GET  /readyz                   readiness + ring state (503 while draining or mid-reload)
//	GET  /metrics                  Prometheus text exposition (?format=json for the obs report)
//
// Pipeline jobs run on a bounded worker pool behind a bounded admission
// queue: a full queue sheds with 429 + Retry-After, and identical
// concurrent submissions coalesce onto a single run. The first
// SIGINT/SIGTERM starts a graceful drain — readiness flips off, new
// submissions get 503, in-flight jobs get -drain-budget to finish and
// are then cancelled; a second signal forces immediate exit
// (internal/sigctx, shared with dlproj).
//
// Multi-node serving: -node and -peers (or -peers-file) place the daemon
// on a consistent-hash ring — a submission whose result key another node
// owns is forwarded there (request ID propagated) and the result adopted
// through the owner's /v1/store API. With -rf N > 1 each result lives on
// the N distinct ring owners: a locally computed result fans out to the
// other owners (failures spool as hinted handoff, replayed when the peer
// recovers), and when the primary owner is dead the replica set is
// walked — fetching the already-replicated envelope beats re-simulating.
// -peers-file makes membership dynamic: rewrite the file and send SIGHUP
// (or POST /v1/cluster/reload from loopback) to swap the ring without a
// restart. -store-remote layers a shared remote result store over the
// local cache directory.
//
// Every request carries a correlation ID (inbound X-Request-ID when
// well-formed, generated otherwise), echoed on the response and written
// on every access-log line; -log-level selects the JSON log threshold.
// -pprof exposes net/http/pprof on a second, loopback-only listener —
// profiling endpoints never ride the service port.
//
// Exit codes:
//
//	0  clean shutdown (every job finished on its own)
//	1  listen/serve failure
//	2  usage error
//	4  drained, but jobs had to be cancelled (partial shutdown)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"defectsim/internal/cluster"
	"defectsim/internal/obs"
	"defectsim/internal/serve"
	"defectsim/internal/sigctx"
	"defectsim/internal/store"
)

func main() {
	os.Exit(run())
}

func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("invalid -log-level %q (debug, info, warn or error)", s)
}

// pprofListener opens the profiling listener after enforcing that addr
// is loopback: pprof exposes heap contents and symbol tables, so it must
// never bind a routable interface, regardless of what the flag says.
func pprofListener(addr string) (net.Listener, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("-pprof: %v", err)
	}
	if host != "localhost" {
		ip := net.ParseIP(host)
		if ip == nil || !ip.IsLoopback() {
			return nil, fmt.Errorf("-pprof address %q is not loopback; refusing to expose profiling endpoints", addr)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-pprof: %v", err)
	}
	return ln, nil
}

// servePprof serves the net/http/pprof handlers on their own mux — the
// service handler never sees /debug/pprof, and the default ServeMux
// stays untouched.
func servePprof(ln net.Listener, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// No timeouts: CPU profiles intentionally run for tens of seconds.
	if err := http.Serve(ln, mux); err != nil && !errors.Is(err, net.ErrClosed) {
		logger.Error("pprof listener failed", "err", err)
	}
}

func run() int {
	var (
		addr         = flag.String("addr", "localhost:8447", "listen address")
		queueDepth   = flag.Int("queue", 16, "admission queue depth; a full queue sheds submissions with 429")
		workers      = flag.Int("workers", 2, "concurrently executing pipeline jobs")
		simWorkers   = flag.Int("sim-workers", 0, "per-job fault-simulation worker pool (0 = all CPUs)")
		cacheDir     = flag.String("cache-dir", "", "directory for per-key pipeline result caches (empty = no cache)")
		drainBudget  = flag.Duration("drain-budget", 10*time.Second, "how long a drain waits for jobs before cancelling them")
		drainGrace   = flag.Duration("drain-grace", 5*time.Second, "how long a drain waits for cancelled jobs to unwind")
		defDeadline  = flag.Duration("default-deadline", 2*time.Minute, "per-job deadline when the request sets none (0 = unlimited)")
		maxDeadline  = flag.Duration("max-deadline", 10*time.Minute, "cap on per-request deadlines (0 = uncapped)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on shed and draining responses")
		maxJobs      = flag.Int("max-jobs", 1024, "finished-job records retained for status/result queries")
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		logLevel     = flag.String("log-level", "info", "structured log threshold: debug, info, warn or error")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. localhost:6060; empty = off)")
		nodeName     = flag.String("node", "", "this node's name on the cluster ring (required with -peers / -peers-file)")
		peers        = flag.String("peers", "", "static peer list name=url,... (e.g. node-b=http://10.0.0.2:8447); empty = single-node")
		peersFile    = flag.String("peers-file", "", "peers file (one name=url per line, # comments); reloaded on SIGHUP or POST /v1/cluster/reload")
		rf           = flag.Int("rf", 1, "replication factor: each result lives on this many ring owners (requires -cache-dir and peers when > 1)")
		spoolDir     = flag.String("spool-dir", "", "hinted-handoff spool directory (default: <cache-dir>-spool; only used with -rf > 1)")
		storeRemote  = flag.String("store-remote", "", "base URL of a remote result store layered over the local cache (empty = local only)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "dlprojd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		return 2
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlprojd:", err)
		return 2
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dlprojd:", err)
			return 1
		}
	}
	if *pprofAddr != "" {
		ln, err := pprofListener(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlprojd:", err)
			return 2
		}
		defer ln.Close()
		go servePprof(ln, logger)
		fmt.Fprintf(os.Stderr, "dlprojd: pprof on http://%s/debug/pprof/ (loopback only)\n", ln.Addr())
	}

	// One tracer/registry backs /metrics, the store backends and the
	// cluster's per-peer instruments, so a single scrape sees it all.
	tr := obs.New()

	// Result store: -cache-dir alone is resolved inside the serving layer
	// (FS store). A -store-remote layers a shared remote store over it
	// (tiered: local-first reads with backfill, best-effort replication),
	// or serves as the only backend when no cache dir is configured.
	var st store.Store
	if *storeRemote != "" {
		sm := store.NewMetrics(tr.Metrics())
		remote, err := store.NewHTTP(*storeRemote, store.HTTPOptions{Metrics: sm})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlprojd:", err)
			return 2
		}
		st = remote
		if *cacheDir != "" {
			local, err := store.NewFS(*cacheDir, sm)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dlprojd:", err)
				return 1
			}
			if st, err = store.NewTiered(local, remote, sm); err != nil {
				fmt.Fprintln(os.Stderr, "dlprojd:", err)
				return 1
			}
		}
	}

	// Cluster ring: membership from -peers (static) or -peers-file
	// (reloadable). Submissions whose cache key another node owns are
	// forwarded there, with replica failover and local fallback on any
	// peer failure.
	var (
		cl         *cluster.Cluster
		membership *cluster.Membership
	)
	if *peers != "" && *peersFile != "" {
		fmt.Fprintln(os.Stderr, "dlprojd: -peers and -peers-file are mutually exclusive")
		return 2
	}
	if *rf < 1 {
		fmt.Fprintln(os.Stderr, "dlprojd: -rf must be >= 1")
		return 2
	}
	if *peers != "" || *peersFile != "" {
		if *nodeName == "" {
			fmt.Fprintln(os.Stderr, "dlprojd: -peers / -peers-file requires -node (this node's ring name)")
			return 2
		}
		// The node's own advertised address, for rejecting peer entries
		// that point back at it. Unknowable when listening on all
		// interfaces (addr starting with ":").
		selfURL := ""
		if !strings.HasPrefix(*addr, ":") {
			selfURL = "http://" + *addr
		}
		var (
			specs []cluster.PeerSpec
			err   error
		)
		if *peersFile != "" {
			data, rerr := os.ReadFile(*peersFile)
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "dlprojd:", rerr)
				return 2
			}
			specs, err = cluster.ParsePeersFile(data, *nodeName, selfURL)
		} else {
			specs, err = cluster.ParsePeers(*peers, selfURL)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlprojd:", err)
			return 2
		}
		if cl, err = cluster.New(*nodeName, specs, tr.Metrics(), cluster.Options{RF: *rf}); err != nil {
			fmt.Fprintln(os.Stderr, "dlprojd:", err)
			return 2
		}
		if *peersFile != "" {
			membership = cluster.NewMembership(cl, *peersFile, selfURL)
		}
		fmt.Fprintf(os.Stderr, "dlprojd: cluster node %q in a ring of %d (rf %d)\n",
			*nodeName, cl.Ring().Len(), *rf)
	} else if *rf > 1 {
		fmt.Fprintln(os.Stderr, "dlprojd: -rf > 1 requires -peers or -peers-file")
		return 2
	}
	if *rf > 1 && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "dlprojd: -rf > 1 requires -cache-dir (replication stores result envelopes)")
		return 2
	}
	if *rf > 1 && *spoolDir == "" {
		// Default beside — never inside — the cache dir: spool records are
		// hints, not result envelopes.
		*spoolDir = strings.TrimRight(*cacheDir, "/") + "-spool"
	}

	srv := serve.New(serve.Config{
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		SimWorkers:      *simWorkers,
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		DrainBudget:     *drainBudget,
		DrainGrace:      *drainGrace,
		RetryAfter:      *retryAfter,
		CacheDir:        *cacheDir,
		Store:           st,
		Cluster:         cl,
		Membership:      membership,
		SpoolDir:        *spoolDir,
		MaxJobs:         *maxJobs,
		Obs:             tr,
		Logger:          logger,
	})

	if membership != nil {
		// SIGHUP re-reads the peers file and swaps the ring — the signal
		// twin of POST /v1/cluster/reload. Kept off sigctx: HUP must never
		// trigger (or count toward) a drain.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if _, err := srv.ReloadMembership(); err != nil {
					logger.Error("SIGHUP membership reload failed", "error", err)
				}
			}
		}()
	}

	hs := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlprojd:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "dlprojd: serving on http://%s (queue %d, %d workers)\n",
		ln.Addr(), *queueDepth, *workers)

	// First SIGINT/SIGTERM starts the graceful drain below; a second
	// forces immediate exit.
	ctx, stop := sigctx.Notify(context.Background())
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener died before any signal: that's a failure, not a drain.
		fmt.Fprintln(os.Stderr, "dlprojd:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "dlprojd: signal received, draining (second signal forces exit)")
	// Drain the job layer first (readiness off, jobs finish or are
	// cancelled), then shut the HTTP listener down. The HTTP shutdown
	// budget rides on top of the drain budget so status polls keep working
	// while jobs wind down.
	rep := srv.Drain(context.Background())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		_ = hs.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dlprojd:", err)
		return 1
	}

	if rep.Clean() {
		fmt.Fprintf(os.Stderr, "dlprojd: drained cleanly in %v\n", rep.Waited.Round(time.Millisecond))
		return 0
	}
	fmt.Fprintf(os.Stderr, "dlprojd: drain cancelled %d job(s) after %v (forced=%v)\n",
		len(rep.Cancelled), rep.Waited.Round(time.Millisecond), rep.Forced)
	return 4
}
