package defectsim

// Benchmark harness: one benchmark per figure/table/example of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each benchmark
// regenerates its artifact; the rendered rows/series are printed once per
// run so `go test -bench=. -benchmem` doubles as the reproduction script.
//
// The heavyweight benchmarks share a single c432-class pipeline run
// (layout → extraction → ATPG → gate- and switch-level fault simulation),
// built lazily on first use.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"defectsim/internal/atpg"
	"defectsim/internal/defect"
	"defectsim/internal/experiments"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
	"defectsim/internal/switchsim"
	"defectsim/internal/transistor"
)

var (
	pipeOnce sync.Once
	pipe     *experiments.Pipeline
	pipeErr  error

	printOnce sync.Map // figure name -> struct{}
)

func c432Pipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = experiments.Run(netlist.C432Class(1994), experiments.DefaultConfig())
	})
	if pipeErr != nil {
		b.Fatal(pipeErr)
	}
	return pipe
}

func printFigure(name, rendered string) {
	if _, dup := printOnce.LoadOrStore(name, struct{}{}); !dup {
		fmt.Printf("\n===== %s =====\n%s\n", name, rendered)
	}
}

// BenchmarkFig1CoverageGrowth regenerates paper figure 1 (analytic T(k),
// Θ(k) growth laws).
func BenchmarkFig1CoverageGrowth(b *testing.B) {
	var f *experiments.Fig1
	for i := 0; i < b.N; i++ {
		f = experiments.Figure1()
	}
	printFigure("FIG1", f.Render())
}

// BenchmarkFig2ModelCurves regenerates paper figure 2 (Williams–Brown vs
// eq. 11 at Y = 0.75, R = 2, Θmax = 0.96).
func BenchmarkFig2ModelCurves(b *testing.B) {
	var f *experiments.Fig2
	for i := 0; i < b.N; i++ {
		f = experiments.Figure2()
	}
	printFigure("FIG2", f.Render())
}

// BenchmarkFig3WeightHistogram regenerates paper figure 3 (histogram of
// layout-extracted fault weights). The benchmark times the layout fault
// extraction itself, the step that produces the histogram's data.
func BenchmarkFig3WeightHistogram(b *testing.B) {
	L, err := layout.Build(netlist.C432Class(1994), nil)
	if err != nil {
		b.Fatal(err)
	}
	stats := defect.Typical()
	var list *fault.List
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		list = extract.Faults(L, stats)
	}
	b.StopTimer()
	list.ScaleToYield(0.75)
	p := &experiments.Pipeline{Faults: list}
	printFigure("FIG3", experiments.Figure3(p).Render())
}

// BenchmarkFig4CoverageCurves regenerates paper figure 4 (simulated T(k),
// Θ(k), Γ(k) on the c432-class circuit).
func BenchmarkFig4CoverageCurves(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var f *experiments.Fig4
	for i := 0; i < b.N; i++ {
		f = experiments.Figure4(p)
	}
	printFigure("FIG4", f.Render())
}

// BenchmarkFig5DefectLevelVsT regenerates paper figure 5 (fallout points
// (T(k), DL(Θ(k))) with the Williams–Brown curve and the (R, Θmax) fit).
func BenchmarkFig5DefectLevelVsT(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var f *experiments.Fig5
	for i := 0; i < b.N; i++ {
		f = experiments.Figure5(p)
	}
	printFigure("FIG5", f.Render())
}

// BenchmarkFig6UnweightedDL regenerates paper figure 6 (the same defect
// levels against the unweighted coverage Γ).
func BenchmarkFig6UnweightedDL(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var f *experiments.Fig6
	for i := 0; i < b.N; i++ {
		f = experiments.Figure6(p)
	}
	printFigure("FIG6", f.Render())
}

// BenchmarkExample1RequiredCoverage regenerates paper Example 1 (required
// stuck-at coverage for a 100 ppm target).
func BenchmarkExample1RequiredCoverage(b *testing.B) {
	var e *experiments.Example1
	var err error
	for i := 0; i < b.N; i++ {
		e, err = experiments.RunExample1()
		if err != nil {
			b.Fatal(err)
		}
	}
	printFigure("EX1", e.Render())
}

// BenchmarkExample2ResidualDL regenerates paper Example 2 (residual defect
// level at full stuck-at coverage).
func BenchmarkExample2ResidualDL(b *testing.B) {
	var e *experiments.Example2
	for i := 0; i < b.N; i++ {
		e = experiments.RunExample2()
	}
	printFigure("EX2", e.Render())
}

// BenchmarkAgrawalFit regenerates TAB-A: the Agrawal-model n fit against
// the same fallout points as figure 5.
func BenchmarkAgrawalFit(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var a *experiments.AgrawalComparison
	for i := 0; i < b.N; i++ {
		a = experiments.RunAgrawalComparison(p)
	}
	printFigure("TAB-A", a.Render())
}

// BenchmarkAblationUnweighted regenerates ABL-1: predicting the defect
// level from the unweighted coverage Γ (figure 6's deviation measure) —
// the Huisman-rebuttal ablation showing weight dispersion cannot be
// neglected.
func BenchmarkAblationUnweighted(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var dev float64
	for i := 0; i < b.N; i++ {
		dev = experiments.Figure6(p).MaxDeviation()
	}
	printFigure("ABL-1", fmt.Sprintf("unweighted DL(Γ) prediction deviates up to %.1f×\n", dev))
}

// BenchmarkAblationIDDQ regenerates ABL-2: the coverage ceiling and
// residual defect level under voltage-only versus voltage+IDDQ detection.
func BenchmarkAblationIDDQ(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var a *experiments.IDDQAblation
	for i := 0; i < b.N; i++ {
		a = experiments.RunIDDQAblation(p)
	}
	printFigure("ABL-2", a.Render())
}

// BenchmarkLotValidation regenerates VAL-1: the empirical defect level of
// a simulated production lot against the closed-form DL(Θ(k)).
func BenchmarkLotValidation(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var v *experiments.LotValidation
	for i := 0; i < b.N; i++ {
		v = experiments.RunLotValidation(p, 100000, 1)
	}
	printFigure("VAL-1", v.Render())
}

// BenchmarkDefectInjection regenerates VAL-2: random spot defects dropped
// on the mask geometry, cross-checking the extracted fault list.
func BenchmarkDefectInjection(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var v *experiments.InjectionValidation
	for i := 0; i < b.N; i++ {
		v = experiments.RunInjectionValidation(p, 50000, 2)
	}
	printFigure("VAL-2", v.Render())
}

// BenchmarkDelayFaultSim regenerates ABL-4: transition-fault (delay)
// coverage versus stuck-at coverage on the same vectors.
func BenchmarkDelayFaultSim(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var a *experiments.DelayAblation
	for i := 0; i < b.N; i++ {
		var err error
		a, err = experiments.RunDelayAblation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFigure("ABL-4", a.Render())
}

// BenchmarkBridgeTopUp regenerates ABL-5: constrained-ATPG vectors for the
// bridges the stuck-at set missed, switch-verified, and the resulting Θ
// ceiling improvement.
func BenchmarkBridgeTopUp(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var t *experiments.BridgeTopUp
	for i := 0; i < b.N; i++ {
		var err error
		t, err = experiments.RunBridgeTopUp(p, 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFigure("ABL-5", t.Render())
}

// BenchmarkPathDelayStudy regenerates ABL-6: STA, the 100 longest paths
// and their non-robust coverage by the stuck-at set's vector pairs.
func BenchmarkPathDelayStudy(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var st *experiments.PathDelayStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = experiments.RunPathDelayStudy(p, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFigure("ABL-6", st.Render())
}

// BenchmarkResistiveBridges regenerates ABL-8: the bridge-conductance
// sweep showing voltage detectability collapsing for resistive bridges
// while the IDDQ screen persists.
func BenchmarkResistiveBridges(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var st *experiments.ResistiveBridgeStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = experiments.RunResistiveBridgeStudy(p, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFigure("ABL-8", st.Render())
}

// BenchmarkResistiveSweepGoodTrace measures the ABL-8 sweep with a warm
// shared good-machine trace: every conductance point replays the recorded
// fault-free states (swsim_goodtrace hits) instead of re-simulating the
// good machine — the regression gate records the trace-cache win (and,
// since the detected-fault-dropping sweep, the carry-forward win). The
// longest benchmark in the suite, so `-short` skips it; the CI bench job
// runs the full suite and still gates it.
func BenchmarkResistiveSweepGoodTrace(b *testing.B) {
	if testing.Short() {
		b.Skip("minutes-long sweep; run without -short (CI bench job does)")
	}
	p := c432Pipeline(b)
	if _, err := p.GoodTrace(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunResistiveBridgeStudy(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxwellAitken regenerates ABL-7: equal stuck-at coverage, a
// compacted test set, and the quality gap between them (the paper's
// reference [4] phenomenon).
func BenchmarkMaxwellAitken(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var st *experiments.MaxwellAitkenStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = experiments.RunMaxwellAitken(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFigure("ABL-7", st.Render())
}

// BenchmarkBridgeDiagnosis regenerates VAL-3: localizing physical bridge
// defects from tester failure signatures through stuck-at surrogates.
func BenchmarkBridgeDiagnosis(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var st *experiments.DiagnosisStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = experiments.RunDiagnosisStudy(p, 100, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFigure("VAL-3", st.Render())
}

// BenchmarkFaultKindBreakdown prints the per-kind detection profile behind
// the Θmax discussion.
func BenchmarkFaultKindBreakdown(b *testing.B) {
	p := c432Pipeline(b)
	b.ResetTimer()
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.FaultKindBreakdown(p)
	}
	printFigure("KINDS", s)
}

// --- Component microbenchmarks: the substrates' cost profile. ---

// BenchmarkLayoutBuild times standard-cell placement + routing of the
// c432-class netlist.
func BenchmarkLayoutBuild(b *testing.B) {
	nl := netlist.C432Class(1994)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Build(nl, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultExtraction times inductive fault analysis (critical areas
// for every bridge/open) on the c432-class layout.
func BenchmarkFaultExtraction(b *testing.B) {
	L, err := layout.Build(netlist.C432Class(1994), nil)
	if err != nil {
		b.Fatal(err)
	}
	stats := defect.Typical()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extract.Faults(L, stats)
	}
}

// BenchmarkGateLevelFaultSim times 64-way parallel-pattern stuck-at
// simulation of the full collapsed universe over 256 random vectors,
// pinned to one worker — the serial measurement the BENCH_seed.json
// regression gate compares against. The fault-parallel engine is measured
// by BenchmarkGateLevelFaultSimWorkers.
func BenchmarkGateLevelFaultSim(b *testing.B) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	pats := gatesim.RandomPatterns(nl, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gatesim.SimulateFaultsCtx(context.Background(), nl, faults, pats, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateLevelFaultSimWorkers sweeps the fault-parallel engine's
// worker count on the same campaign as BenchmarkGateLevelFaultSim: the
// serial-vs-parallel speedup table in DESIGN.md §Performance comes from
// this benchmark. (Results are bitwise identical at every count; only the
// wall clock moves.)
func BenchmarkGateLevelFaultSimWorkers(b *testing.B) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	pats := gatesim.RandomPatterns(nl, 256, 1)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gatesim.SimulateFaultsCtx(context.Background(), nl, faults, pats, w, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSwitchLevelGoodSim times switch-level good-circuit simulation of
// 64 vectors on the c432-class transistor netlist.
func BenchmarkSwitchLevelGoodSim(b *testing.B) {
	L, err := layout.Build(netlist.C432Class(1994), nil)
	if err != nil {
		b.Fatal(err)
	}
	c := transistor.FromLayout(L)
	vecs := make([]switchsim.Vector, 64)
	pats := gatesim.RandomPatterns(L.Netlist, 64, 2)
	for i, p := range pats {
		v := make(switchsim.Vector, len(p))
		for j, bit := range p {
			v[j] = switchsim.Val(bit)
		}
		vecs[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.Run(c, vecs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkATPG times the full test-set build (random prefix + SCOAP-guided
// PODEM top-up with per-pattern fault dropping), pinned to one simulation
// worker for continuity with the BENCH_seed.json baseline; the worker
// sweep is BenchmarkATPGWorkers.
func BenchmarkATPG(b *testing.B) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atpg.BuildTestSetWorkersCtx(context.Background(), nl, faults, 64, 1994, 2000, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkATPGWorkers sweeps the worker count of ATPG's embedded
// gate-level fault-simulation phases (the PODEM search itself stays
// serial, so gains bound well below linear — Amdahl's law on the
// search-dominated tail).
func BenchmarkATPGWorkers(b *testing.B) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := atpg.BuildTestSetWorkersCtx(context.Background(), nl, faults, 64, 1994, 2000, w, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNDetectCountingSim times the counting-mode gate-level fault
// simulation (faults stay live until n = 4 detections) on the same
// campaign as BenchmarkGateLevelFaultSim, so the two seed entries bound
// the cost of multiplicity accounting over first-detection dropping.
func BenchmarkNDetectCountingSim(b *testing.B) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	pats := gatesim.RandomPatterns(nl, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gatesim.SimulateFaultsNCtx(context.Background(), nl, faults, pats, 4, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNDetectTestSet times the n-detect top-up (ABL-9's inner loop):
// growing a 1-detect base set until every testable fault is detected 4
// times or saturates. The base set is built once outside the timer — the
// benchmark isolates the multiplicity top-up itself.
func BenchmarkNDetectTestSet(b *testing.B) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	base, err := atpg.BuildTestSetWorkersCtx(context.Background(), nl, faults, 64, 1994, 2000, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atpg.BuildNDetectTestSet(context.Background(), nl, faults, base.Patterns, base.Untestable, 4, 2000, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Observability overhead: instrumented hot loops, no-op vs traced. ---

// benchATPGTopUp runs the deterministic ATPG top-up (the instrumented
// per-fault backtracking loop) under the given tracer.
func benchATPGTopUp(b *testing.B, tr func() *obs.Tracer) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atpg.BuildTestSetObs(nl, faults, 64, 1994, 2000, tr()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkATPGTopUpNoopObs is the instrumented ATPG top-up with the
// default nil tracer — the baseline every library user gets.
func BenchmarkATPGTopUpNoopObs(b *testing.B) {
	benchATPGTopUp(b, func() *obs.Tracer { return nil })
}

// BenchmarkATPGTopUpTraced is the same loop with a recording tracer, to
// keep the observability overhead (spans + backtrack metrics) visible.
func BenchmarkATPGTopUpTraced(b *testing.B) {
	benchATPGTopUp(b, obs.New)
}

// benchSwitchSim runs the switch-level fault-simulation inner loop (the
// instrumented per-vector machine advance) under the given registry.
func benchSwitchSim(b *testing.B, reg func() *obs.Registry) {
	p := c432Pipeline(b)
	vectors := make([]switchsim.Vector, 0, 64)
	for _, pat := range p.TestSet.Patterns[:min(64, len(p.TestSet.Patterns))] {
		v := make(switchsim.Vector, len(pat))
		for j, bit := range pat {
			v[j] = switchsim.Val(bit)
		}
		vectors = append(vectors, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := switchsim.SimulateFaultsObs(p.Circuit, p.Faults, vectors, 0, switchsim.BridgeG, reg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwitchSimNoopObs is the instrumented switch-level fault
// simulation with a nil registry — the default zero-cost path.
func BenchmarkSwitchSimNoopObs(b *testing.B) {
	benchSwitchSim(b, func() *obs.Registry { return nil })
}

// BenchmarkSwitchSimTraced is the same campaign with metrics recording.
func BenchmarkSwitchSimTraced(b *testing.B) {
	benchSwitchSim(b, func() *obs.Registry { return obs.NewRegistry() })
}

// TestNoopInstrumentationZeroAllocs pins down the contract the no-op
// benchmarks rely on: the exact calls the hot loops add (counter
// increments, histogram observations, span start/end) allocate nothing
// when observability is off (nil tracer/registry handles).
func TestNoopInstrumentationZeroAllocs(t *testing.T) {
	var tr *obs.Tracer
	reg := tr.Metrics()
	c := reg.Counter("hot_counter")
	h := reg.Histogram("hot_hist", nil)
	g := reg.Gauge("hot_gauge")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("stage")
		c.Add(7)
		c.Inc()
		h.Observe(3)
		g.Set(0.5)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("no-op instrumentation allocates %v per op, want 0", allocs)
	}
}
