package defectsim

// Public facade: the library's supported entry points. The implementation
// lives under internal/ (one package per subsystem, see DESIGN.md); this
// file re-exports the pieces a downstream user needs to
//
//   - evaluate the paper's defect-level models (eq. 1–3, 11),
//   - run the full layout → extraction → fault-simulation pipeline on a
//     circuit and read the coverage curves it produces, and
//   - fit the model parameters (R, Θmax) to fallout data.

import (
	"context"

	"defectsim/internal/coverage"
	"defectsim/internal/defect"
	"defectsim/internal/dlmodel"
	"defectsim/internal/experiments"
	"defectsim/internal/fit"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

// Model parameters and defect-level equations (package internal/dlmodel).
type (
	// ModelParams are the proposed model's parameters: the susceptibility
	// ratio R and the coverage ceiling Θmax (paper eq. 9–11).
	ModelParams = dlmodel.Params
	// DLPoint is one observed fallout point (stuck-at coverage, defect
	// level) for parameter fitting.
	DLPoint = fit.DLPoint
)

// WilliamsBrown returns DL = 1 − Y^(1−T) (paper eq. 1).
func WilliamsBrown(yield, coverage float64) float64 {
	return dlmodel.WilliamsBrown(yield, coverage)
}

// Agrawal returns the Agrawal–Seth–Agrawal defect level (paper eq. 2).
func Agrawal(yield, coverage, n float64) float64 {
	return dlmodel.Agrawal(yield, coverage, n)
}

// WeightedDL returns DL = 1 − Y^(1−Θ) over the weighted realistic fault
// coverage Θ (paper eq. 3).
func WeightedDL(yield, theta float64) float64 {
	return dlmodel.Weighted(yield, theta)
}

// FitModel fits (R, Θmax) to observed fallout points at a known yield.
func FitModel(points []DLPoint, yield float64) ModelParams {
	return fit.FitParams(points, yield)
}

// CoverageGrowth returns C(k) = Cmax·(1 − e^{−ln k / ln σ}) (paper eq. 8;
// eq. 7 is the cmax = 1 case).
func CoverageGrowth(k, sigma, cmax float64) float64 {
	return coverage.Growth(k, sigma, cmax)
}

// Circuits (package internal/netlist).
type (
	// Netlist is a combinational gate-level circuit.
	Netlist = netlist.Netlist
)

// C17 returns the exact ISCAS-85 c17 benchmark.
func C17() *Netlist { return netlist.C17() }

// C432Class returns the seeded synthetic benchmark matching the ISCAS-85
// c432 profile used throughout the paper's evaluation.
func C432Class(seed int64) *Netlist { return netlist.C432Class(seed) }

// RippleAdder returns an n-bit ripple-carry adder benchmark.
func RippleAdder(bits int) *Netlist { return netlist.RippleAdder(bits) }

// ParseBench reads an ISCAS .bench netlist; see internal/netlist for the
// format.
var ParseBench = netlist.ParseBench

// Pipeline execution (package internal/experiments).
type (
	// PipelineConfig parameterizes a run: seed, yield scaling, vector
	// budget, defect statistics and parallelism. Config.Workers bounds
	// the worker pools of the fault-parallel simulators and the
	// concurrent experiment drivers (0 selects runtime.NumCPU(); results
	// are bitwise identical for every worker count).
	PipelineConfig = experiments.Config
	// Pipeline is a fully simulated design: layout, weighted faults, test
	// set, and gate-/switch-level detection data, with methods producing
	// the coverage curves T(k), Θ(k), Γ(k).
	Pipeline = experiments.Pipeline
	// DefectStatistics characterizes a process line's spot defects.
	DefectStatistics = defect.Statistics
	// PipelineError is the failure of one pipeline stage: it names the
	// stage and wraps the cause (context.Canceled on cancellation,
	// context.DeadlineExceeded on timeout, the panic value on a stage
	// panic).
	PipelineError = experiments.PipelineError
	// Degradation is one graceful-degradation event of a run (stage
	// budget exhausted with a usable partial result, cache fallback);
	// see Pipeline.Degradations.
	Degradation = experiments.Degradation
)

// DefaultPipelineConfig returns the configuration of the paper's c432
// experiment (Y = 0.75, bridging-dominant statistics).
func DefaultPipelineConfig() PipelineConfig { return experiments.DefaultConfig() }

// TypicalDefects returns bridging-dominant spot-defect statistics; see
// internal/defect for the opens-dominant variant and tuning.
func TypicalDefects() DefectStatistics { return defect.Typical() }

// RunPipeline executes layout generation, LVS, inductive fault extraction,
// ATPG and both fault simulations for the circuit.
func RunPipeline(nl *Netlist, cfg PipelineConfig) (*Pipeline, error) {
	return experiments.Run(nl, cfg)
}

// RunPipelineCtx is RunPipeline under a context: cancelling ctx stops the
// run promptly with a *PipelineError naming the interrupted stage, and
// cfg.Deadline / cfg.StageBudgets bound the run and its stages (stage
// budgets degrade gracefully where a partial result is usable).
func RunPipelineCtx(ctx context.Context, nl *Netlist, cfg PipelineConfig) (*Pipeline, error) {
	return experiments.RunCtx(ctx, nl, cfg)
}

// RunPipelineCached is RunPipeline with a JSON result cache at path: reruns
// are skipped when the circuit and configuration match.
func RunPipelineCached(nl *Netlist, cfg PipelineConfig, path string) (p *Pipeline, cacheHit bool, err error) {
	return experiments.RunCached(nl, cfg, path)
}

// RunPipelineCachedCtx is RunPipelineCached under a context. A corrupt
// cache file never fails the call: the pipeline runs fresh and the
// fallback is recorded in Pipeline.Degradations.
func RunPipelineCachedCtx(ctx context.Context, nl *Netlist, cfg PipelineConfig, path string) (p *Pipeline, cacheHit bool, err error) {
	return experiments.RunCachedCtx(ctx, nl, cfg, path)
}

// FitPipeline extracts the fallout points (T(k), DL(Θ(k))) from a pipeline
// run and fits the proposed model — the end-to-end reproduction of the
// paper's figure 5 in one call.
func FitPipeline(p *Pipeline) ModelParams {
	return experiments.Figure5(p).Fitted
}

// SuiteStudy is the result of a benchmark-suite run: one fitted-model row
// per circuit.
type SuiteStudy = experiments.SuiteStudy

// RunSuite executes the full pipeline for every circuit concurrently on a
// bounded worker pool (cfg.Workers; 0 selects runtime.NumCPU()) and
// returns the per-circuit model fits in input order. Each circuit runs
// under the hardened-execution machinery (cancellation, deadline, stage
// budgets with graceful degradation).
func RunSuite(ctx context.Context, circuits []*Netlist, cfg PipelineConfig) (*SuiteStudy, error) {
	return experiments.RunSuiteCtx(ctx, circuits, cfg)
}

// Observability (package internal/obs).
type (
	// Tracer records per-stage spans (wall clock + allocation deltas) and
	// owns a metrics registry. Assign one to PipelineConfig.Obs to get a
	// RunReport in Pipeline.Report; the default nil tracer is free.
	Tracer = obs.Tracer
	// RunReport is a machine-readable snapshot of one pipeline run: the
	// stage tree plus every metric the subsystems recorded. It marshals
	// to JSON and renders as ASCII tables via Render().
	RunReport = obs.Report
)

// NewTracer returns a recording tracer for PipelineConfig.Obs.
func NewTracer() *Tracer { return obs.New() }
