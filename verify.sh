#!/bin/sh
# verify.sh — the repo's full verification recipe.
#
# Tier 1 (fast, the PR gate): build + vet + full test suite.
# Tier 2 (slow): race-detector pass over the concurrency-bearing packages
# listed in race_packages.txt (observability, the hardened pipeline, the
# fault-injection harness, the worker-sharded gate-, switch-level
# simulators and ATPG, the result-store backends and cluster routing, and
# the serving layer's admission/coalescing/forwarding/drain machinery —
# including the in-process multi-node ring and chaos tests). The CI race
# job reads the same file, so the two lists cannot drift apart.
set -eu
cd "$(dirname "$0")"

race_pkgs="$(grep -v '^#' race_packages.txt)"

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race (race_packages.txt)"
# shellcheck disable=SC2086 — the list is intentionally word-split.
go test -race $race_pkgs
echo "verify.sh: all checks passed"
