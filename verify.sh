#!/bin/sh
# verify.sh — the repo's full verification recipe.
#
# Tier 1 (fast, the PR gate): build + vet + full test suite.
# Tier 2 (slow): race-detector pass over the concurrency-bearing packages
# (observability, the hardened pipeline, the fault-injection harness, the
# worker-sharded gate-, switch-level simulators and ATPG, the result-store
# backends and cluster routing, and the serving layer's
# admission/coalescing/forwarding/drain machinery — including the
# in-process multi-node ring and chaos tests).
set -eu
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race (obs, experiments, faultinject, switchsim, gatesim, atpg, store, cluster, serve)"
go test -race ./internal/obs/... ./internal/experiments/... ./internal/faultinject/... ./internal/switchsim/... ./internal/gatesim/... ./internal/atpg/... ./internal/store/... ./internal/cluster/... ./internal/serve/...
echo "verify.sh: all checks passed"
