#!/bin/sh
# verify.sh — the repo's full verification recipe.
#
# Tier 1 (fast, the PR gate): build + vet + full test suite.
# Tier 2 (slow): race-detector pass over the concurrency-bearing packages
# (observability, the hardened pipeline, the fault-injection harness, the
# worker-sharded gate-, switch-level simulators and ATPG, and the serving
# layer's admission/coalescing/drain machinery).
set -eu
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race (obs, experiments, faultinject, switchsim, gatesim, atpg, serve)"
go test -race ./internal/obs/... ./internal/experiments/... ./internal/faultinject/... ./internal/switchsim/... ./internal/gatesim/... ./internal/atpg/... ./internal/serve/...
echo "verify.sh: all checks passed"
