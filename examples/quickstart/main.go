// Quickstart: run the whole defect-level pipeline on the ISCAS-85 c17
// benchmark — generate a standard-cell layout, extract weighted realistic
// faults from the mask geometry, fault-simulate a stuck-at test set at both
// gate and switch level, and project the defect level.
package main

import (
	"fmt"
	"log"

	"defectsim/internal/dlmodel"
	"defectsim/internal/experiments"
	"defectsim/internal/fault"
	"defectsim/internal/netlist"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.RandomVectors = 32

	p, err := experiments.Run(netlist.C17(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Summary())

	// The five most likely defects of this physical design.
	fmt.Println("\nmost likely faults (w = A·D, p = 1 - e^-w):")
	for _, f := range p.Faults.Faults[:5] {
		desc := ""
		switch f.Kind {
		case fault.KindBridge:
			desc = fmt.Sprintf("bridge %s ↔ %s", p.Layout.Nets[f.NetA].Name, p.Layout.Nets[f.NetB].Name)
		case fault.KindOpenInput:
			desc = fmt.Sprintf("open input of cell %d on net %s", f.Inst, p.Layout.Nets[f.NetA].Name)
		case fault.KindOpenDriver:
			desc = fmt.Sprintf("open trunk of net %s", p.Layout.Nets[f.NetA].Name)
		}
		fmt.Printf("  w=%.3e  p=%.3e  %s\n", f.Weight, f.Prob(), desc)
	}

	// Defect level after the full test set, under three models.
	theta := p.ThetaCurve(false).Final()
	tCov := p.TCurve().Final()
	fmt.Printf("\nafter %d vectors: T=%.4f (stuck-at), Θ=%.4f (weighted realistic)\n",
		len(p.TestSet.Patterns), tCov, theta)
	fmt.Printf("  Williams-Brown DL(T)          : %8.1f ppm\n", 1e6*dlmodel.WilliamsBrown(p.Yield, tCov))
	fmt.Printf("  weighted realistic DL(Θ)      : %8.1f ppm\n", 1e6*dlmodel.Weighted(p.Yield, theta))
	fit := experiments.Figure5(p).Fitted
	fmt.Printf("  fitted eq.11 (R=%.2f Θmax=%.3f): %8.1f ppm at T=1 (residual)\n",
		fit.R, fit.ThetaMax, 1e6*fit.ResidualDL(p.Yield))
}
