// iddq: detection-technique study — the paper's conclusion that "more
// sophisticated detection techniques, like delay and/or current testing,
// must become part of the production routine, if a zero defect level
// strategy is aimed."
//
// The same realistic fault campaign is scored twice: once with static
// voltage observation only, once with an added IDDQ screen (a bridge draws
// quiescent current whenever its two nets are driven to opposite values).
// The program reports the coverage ceilings, the residual defect levels
// and the per-kind detection profile under both regimes.
package main

import (
	"fmt"
	"log"

	"defectsim/internal/experiments"
	"defectsim/internal/fault"
	"defectsim/internal/netlist"
	"defectsim/internal/textplot"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.RandomVectors = 48
	p, err := experiments.Run(netlist.Comparator(6), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Summary())
	fmt.Println()

	k := len(p.TestSet.Patterns)
	voltage := p.SwitchRes.DetectedBy(k, false)
	both := p.SwitchRes.DetectedBy(k, true)

	tb := textplot.Table{Headers: []string{"fault kind", "faults", "detected (voltage)", "detected (+IDDQ)"}}
	for _, kind := range []fault.Kind{fault.KindBridge, fault.KindOpenInput, fault.KindOpenDriver} {
		var tot, dv, di int
		for i, f := range p.Faults.Faults {
			if f.Kind != kind {
				continue
			}
			tot++
			if voltage[i] {
				dv++
			}
			if both[i] {
				di++
			}
		}
		tb.AddRow(kind.String(), tot, dv, di)
	}
	fmt.Println(tb.Render())

	a := experiments.RunIDDQAblation(p)
	fmt.Print(a.Render())
	fmt.Println()
	if a.ResidualV > 0 {
		fmt.Printf("IDDQ shrinks the residual defect level by %.1f×.\n", a.ResidualV/a.ResidualI)
	}
}
