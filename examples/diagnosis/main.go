// diagnosis: from tester datalog to physical defect. A known bridge defect
// is simulated at switch level on the c432-class design; its failure
// signature (which vectors failed at which outputs) is all a tester would
// record. The stuck-at dictionary then ranks surrogate candidates, and
// structural pruning narrows them to the failing outputs' fanin cones —
// pointing the failure analyst at the physically bridged nets.
package main

import (
	"fmt"
	"log"

	"defectsim/internal/diagnose"
	"defectsim/internal/experiments"
	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/switchsim"
)

func main() {
	cfg := experiments.DefaultConfig()
	p, err := experiments.Run(netlist.C432Class(1994), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Summary())

	// Pick the heaviest voltage-detected bridge between netlist-visible
	// nets: the "defect" the fab shipped.
	var target fault.Realistic
	found := false
	for i, f := range p.Faults.Faults {
		if f.Kind != fault.KindBridge || p.SwitchRes.DetectedAt[i] == 0 {
			continue
		}
		a, b := p.Layout.Nets[f.NetA], p.Layout.Nets[f.NetB]
		if a.Kind == layout.KindSignal && b.Kind == layout.KindSignal {
			target, found = f, true
			break
		}
	}
	if !found {
		log.Fatal("no diagnosable bridge in the campaign")
	}
	nameA := p.Layout.Nets[target.NetA].Name
	nameB := p.Layout.Nets[target.NetB].Name
	fmt.Printf("\nground truth defect: bridge %s ↔ %s (w = %.2e)\n", nameA, nameB, target.Weight)

	// Replay the test set on the defective die and record the datalog.
	m, _ := switchsim.NewFaultMachine(p.Circuit, target)
	good := switchsim.NewMachine(p.Circuit)
	var datalog []gatesim.Fail
	for k, pat := range p.TestSet.Patterns {
		vec := make(switchsim.Vector, len(pat))
		for j, b := range pat {
			vec[j] = switchsim.Val(b)
		}
		good.Apply(vec)
		m.Apply(vec)
		var pm uint64
		for oi, po := range p.Circuit.POs {
			gv, fv := good.Val(po), m.Val(po)
			if gv != switchsim.VX && fv != switchsim.VX && gv != fv {
				pm |= 1 << uint(oi)
			}
		}
		if pm != 0 {
			datalog = append(datalog, gatesim.Fail{Vector: k, POMask: pm})
		}
	}
	fmt.Printf("tester datalog: %d failing vectors\n\n", len(datalog))

	// Diagnose against the stuck-at dictionary.
	dict, err := diagnose.Build(p.Netlist, p.StuckAt, p.TestSet.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	cands := dict.DiagnoseStructural(datalog, 8)
	fmt.Println("top surrogate stuck-at candidates (structurally pruned):")
	bridged := map[int]bool{
		p.Layout.Nets[target.NetA].NetlistNet: true,
		p.Layout.Nets[target.NetB].NetlistNet: true,
	}
	hit := false
	for rank, c := range cands {
		mark := ""
		if bridged[c.Fault.Net] {
			mark = "   ← physically bridged net"
			hit = true
		}
		fmt.Printf("  %d. net %-10s %v%s\n", rank+1, p.Netlist.NetNames[c.Fault.Net], c, mark)
	}
	if hit {
		fmt.Println("\nThe defective nets surface in the top candidates: physical failure")
		fmt.Println("analysis can go straight to their adjacent routing — the loop from")
		fmt.Println("the paper's layout-extracted fault model back to silicon closes.")
	} else {
		fmt.Println("\n(no direct hit in the top candidates — inspect the implicated region)")
	}
}
