// wafermap: the yield engineer's view. A lot of wafers is simulated with
// an edge-degraded radial defect profile; each die of a 4-bit adder design
// samples faults from the layout-extracted weighted list and runs the
// stuck-at test set. The program prints an ASCII wafer map, the radial
// zone yields (flat process vs edge-degraded), and the shipped defect
// level — connecting the paper's chip-level DL model to where the defects
// actually land.
package main

import (
	"fmt"
	"log"

	"defectsim/internal/experiments"
	"defectsim/internal/netlist"
	"defectsim/internal/wafer"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.RandomVectors = 48
	p, err := experiments.Run(netlist.RippleAdder(4), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Summary())

	g := wafer.Geometry{Radius: 150, DieW: 7, DieH: 7, EdgeExclusion: 4}
	k := len(p.TestSet.Patterns)

	fmt.Println("\n--- flat defect density ---")
	flat := wafer.Simulate(g, p.Faults, p.SwitchRes.DetectedAt, k, wafer.Uniform(), 1)
	fmt.Print(flat.Render())

	fmt.Println("\n--- edge-degraded line (density ×3 at the rim) ---")
	edge := wafer.Simulate(g, p.Faults, p.SwitchRes.DetectedAt, k, wafer.EdgeDegraded(3), 1)
	fmt.Print(edge.Render())

	fmt.Println("\nradial zone yields (center → edge):")
	fz := flat.ZoneYields(4)
	ez := edge.ZoneYields(4)
	for z := range fz {
		fmt.Printf("  zone %d: flat %.3f   edge-degraded %.3f\n", z, fz[z], ez[z])
	}
	fmt.Println("\nEdge degradation costs yield but barely moves the shipped defect")
	fmt.Println("level: DL depends on the detected/undetected weight split (Θ), not")
	fmt.Println("on where the dies sit — which is why the paper can model DL with")
	fmt.Println("two scalars, Y and Θ.")
}
