// processtune: the paper's closing use-case — "the proposed model can be
// used, together with DL(T) experimental curves, to tune assumed defect
// statistics in a process line."
//
// We play both roles: a "fab" simulates fallout data with a hidden defect
// characterization (one line bridging-dominant, one opens-rich — unknown
// to the analyst), and the analyst fits the proposed model to the observed
// (T, DL) points of each line. The susceptibility ratio R separates the
// regimes: bridging-dominant lines show a clearly higher R (their likely
// faults are easier to detect than the average stuck-at fault), so a drop
// in the fitted R flags a shift of the defect mix toward opens.
//
// Each line runs the full layout → extraction → fault-simulation pipeline
// on the c432-class benchmark (≈15 s per line).
package main

import (
	"fmt"
	"log"

	"defectsim/internal/defect"
	"defectsim/internal/dlmodel"
	"defectsim/internal/experiments"
	"defectsim/internal/fit"
	"defectsim/internal/netlist"
)

func observe(name string, stats defect.Statistics) (dlmodel.Params, float64) {
	cfg := experiments.DefaultConfig()
	cfg.Stats = stats
	p, err := experiments.Run(netlist.C432Class(7), cfg)
	if err != nil {
		log.Fatal(err)
	}
	f5 := experiments.Figure5(p)
	n := fit.FitAgrawalN(f5.Points, p.Yield)
	fmt.Printf("%-18s fitted R=%.2f  Θmax=%.3f  (Agrawal n=%.2f)\n",
		name, f5.Fitted.R, f5.Fitted.ThetaMax, n)
	return f5.Fitted, p.Yield
}

func main() {
	fmt.Println("Fitting DL(T) fallout curves from two process lines (same design,")
	fmt.Println("same test set, different — hidden — defect statistics):")
	fmt.Println()

	lineA, _ := observe("line A (hidden)", defect.Typical())
	lineB, y := observe("line B (hidden)", defect.OpensDominant())

	fmt.Println()
	fmt.Println("Diagnosis from the fitted parameters alone:")
	switch {
	case lineA.R > lineB.R+0.05:
		fmt.Printf("  line A's susceptibility ratio (R=%.2f) exceeds line B's (R=%.2f):\n",
			lineA.R, lineB.R)
		fmt.Println("  line A's likely defects are bridges (easy for voltage vectors),")
		fmt.Println("  while line B's defect mix has shifted toward opens — the paper's")
		fmt.Println("  signature of a process drift worth investigating.")
	case lineB.R > lineA.R+0.05:
		fmt.Println("  line B looks more bridging-dominant than line A.")
	default:
		fmt.Println("  both lines show comparable susceptibility ratios.")
	}

	fmt.Printf("\nQuality impact at T = 99%% (Y=%.2f):\n", y)
	for _, sc := range []struct {
		name string
		p    dlmodel.Params
	}{{"line A", lineA}, {"line B", lineB}} {
		fmt.Printf("  %s: DL = %7.0f ppm (residual floor %7.0f ppm, R=%.2f)\n",
			sc.name, 1e6*sc.p.DL(y, 0.99), 1e6*sc.p.ResidualDL(y), sc.p.R)
	}
	fmt.Println("\nAction: the drop in R on line B means stuck-at coverage buys less")
	fmt.Println("quality there; add IDDQ/delay screens (raise Θmax) or fix the open-")
	fmt.Println("producing process step before chasing ppm targets with more vectors.")
}
