// lotsim: manufacture and test a virtual production lot.
//
// The fab side: dies of an 8-bit ripple-carry adder acquire spot-defect
// faults according to the layout-extracted weighted fault list (Poisson
// statistics, yield scaled to 0.75). The test side: every die runs the
// stuck-at test set; a die ships when none of its faults is detected.
//
// The program sweeps the test length and compares three numbers at each
// point: the empirical defect level of the simulated lot, the weighted
// closed form DL = 1 − Y^(1−Θ(k)) (paper eq. 3), and what the
// Williams–Brown formula would have predicted from the stuck-at coverage
// alone — making the paper's core argument tangible die by die.
package main

import (
	"fmt"
	"log"

	"defectsim/internal/dlmodel"
	"defectsim/internal/experiments"
	"defectsim/internal/montecarlo"
	"defectsim/internal/netlist"
	"defectsim/internal/textplot"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.RandomVectors = 48
	p, err := experiments.Run(netlist.RippleAdder(8), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Summary())

	const dies = 200000
	fmt.Printf("\nmanufacturing %d dies per test length...\n\n", dies)

	tCurve := p.TCurve()
	thCurve := p.ThetaCurve(false)
	tb := textplot.Table{Headers: []string{
		"k", "T(k)", "Θ(k)", "empirical DL", "eq.3 DL(Θ)", "W-B DL(T)",
	}}
	for i, k := range p.Ks {
		res := montecarlo.SimulateLot(p.Faults, p.SwitchRes.DetectedAt, k, dies, 1000+int64(k))
		tb.AddRow(k,
			fmt.Sprintf("%.4f", tCurve[i].C),
			fmt.Sprintf("%.4f", thCurve[i].C),
			fmt.Sprintf("%6.0f ppm", 1e6*res.DefectLevel()),
			fmt.Sprintf("%6.0f ppm", 1e6*dlmodel.Weighted(p.Yield, thCurve[i].C)),
			fmt.Sprintf("%6.0f ppm", 1e6*dlmodel.WilliamsBrown(p.Yield, tCurve[i].C)),
		)
	}
	fmt.Println(tb.Render())
	fmt.Println("The empirical column tracks eq. 3 (same fault statistics); the")
	fmt.Println("Williams-Brown column drifts whenever Θ(k) and T(k) part ways — at")
	fmt.Println("full stuck-at coverage it predicts zero escapes while the lot still")
	fmt.Println("ships defective parts (the residual defect level).")
}
