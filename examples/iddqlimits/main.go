// iddqlimits: model-based IDDQ pass/fail limit setting. The quiescent
// current of every extracted defect is estimated from the drive
// conductances (bridge current = VDD · series(g_up, G_bridge, g_dn)), and
// a threshold sweep shows the coverage/guardband trade-off a test engineer
// faces: the limit must clear the good die's leakage with margin yet stay
// below the defect currents.
package main

import (
	"fmt"
	"log"

	"defectsim/internal/experiments"
	"defectsim/internal/iddq"
	"defectsim/internal/netlist"
	"defectsim/internal/switchsim"
	"defectsim/internal/textplot"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.RandomVectors = 48
	p, err := experiments.Run(netlist.Comparator(6), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Summary())

	vectors := make([]switchsim.Vector, len(p.TestSet.Patterns))
	for i, pat := range p.TestSet.Patterns {
		v := make(switchsim.Vector, len(pat))
		for j, b := range pat {
			v[j] = switchsim.Val(b)
		}
		vectors[i] = v
	}

	model := iddq.DefaultModel()
	meas, err := iddq.Measure(p.Circuit, p.Faults, vectors, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline (good die) IDDQ: %.3g   (leak %g per device × %d devices)\n",
		meas.Baseline, model.LeakPerDevice, len(p.Circuit.Devices))

	st := iddq.StudyLimits(meas, p.Faults, 10)
	tb := textplot.Table{Headers: []string{"limit (×baseline)", "weighted fault coverage"}}
	for i, l := range st.Limits {
		tb.AddRow(fmt.Sprintf("%.1f", l/meas.Baseline), fmt.Sprintf("%.4f", st.Coverage[i]))
	}
	fmt.Println()
	fmt.Println(tb.Render())

	limit, cov := st.BestLimit(meas.Baseline, 5)
	fmt.Printf("recommended limit: %.3g (%.0f× baseline) → weighted IDDQ coverage %.4f\n",
		limit, limit/meas.Baseline, cov)
	fmt.Println("\nBridge currents sit orders of magnitude above leakage, so even a")
	fmt.Println("5× guardband loses almost no coverage — the quantitative backing")
	fmt.Println("for the paper's call to add current testing to the production flow.")
}
