// dlbudget: test-planning with the proposed defect-level model — "how much
// fault coverage is enough?" (the paper's Example 1, generalized). For a
// grid of yields and quality targets it prints the stuck-at coverage
// required by Williams–Brown next to the requirement under the proposed
// model for several (R, Θmax) process scenarios, including targets that
// are simply unreachable with voltage testing alone (below the residual
// defect level).
package main

import (
	"fmt"

	"defectsim/internal/dlmodel"
	"defectsim/internal/textplot"
)

func main() {
	scenarios := []struct {
		name string
		p    dlmodel.Params
	}{
		{"paper ex.1 (R=2.1, Θmax=1)", dlmodel.Params{R: 2.1, ThetaMax: 1}},
		{"paper fit  (R=1.9, Θmax=0.96)", dlmodel.Params{R: 1.9, ThetaMax: 0.96}},
		{"conservative (R=1.2, Θmax=0.99)", dlmodel.Params{R: 1.2, ThetaMax: 0.99}},
	}
	yields := []float64{0.50, 0.75, 0.90}
	targets := []float64{1000e-6, 100e-6, 10e-6}

	for _, y := range yields {
		tb := textplot.Table{Headers: []string{
			"target DL", "T required (W-B)", "scenario", "T required (eq.11)",
		}}
		for _, dl := range targets {
			wb := dlmodel.WilliamsBrownRequiredT(y, dl)
			for i, sc := range scenarios {
				wbCell := ""
				dlCell := ""
				if i == 0 {
					dlCell = fmt.Sprintf("%.0f ppm", dl*1e6)
					wbCell = fmt.Sprintf("%.3f%%", 100*wb)
				}
				req, err := sc.p.RequiredT(y, dl)
				var cell string
				if err != nil {
					cell = fmt.Sprintf("unreachable (residual %.0f ppm)", 1e6*sc.p.ResidualDL(y))
				} else {
					cell = fmt.Sprintf("%.3f%%", 100*req)
				}
				tb.AddRow(dlCell, wbCell, sc.name, cell)
			}
		}
		fmt.Printf("Yield Y = %.2f\n", y)
		fmt.Println(tb.Render())
	}

	fmt.Println("Reading the table: when the dominant realistic faults are easier to")
	fmt.Println("detect than stuck-at faults (R > 1), the coverage requirement relaxes")
	fmt.Println("dramatically; when the detection technique is incomplete (Θmax < 1),")
	fmt.Println("aggressive ppm targets become unreachable and need IDDQ/delay tests.")
}
