package coverage

import (
	"math"
	"testing"
)

func TestGrowthClosedForm(t *testing.T) {
	// With σ = e³, T(k) = 1 − k^(−1/3).
	sigma := math.Exp(3)
	for _, k := range []float64{1, 10, 1000, 1e6} {
		want := 1 - math.Pow(k, -1.0/3.0)
		if got := GrowthT(k, sigma); math.Abs(got-want) > 1e-12 {
			t.Fatalf("T(%g) = %g, want %g", k, got, want)
		}
	}
	if GrowthT(1, sigma) != 0 {
		t.Fatal("T(1) must be 0")
	}
	if GrowthT(0.5, sigma) != 0 {
		t.Fatal("k<1 clamps to 0")
	}
}

func TestFigure1Shape(t *testing.T) {
	// Paper fig. 1: σ_T = e³, σ_Θ = e^1.5, Θmax = 0.96. The realistic
	// coverage must converge to its ceiling faster than the stuck-at
	// coverage converges to 1 (R = 2 > 1).
	sigmaT := math.Exp(3)
	sigmaTheta := math.Exp(1.5)
	if r := RFromSigmas(sigmaT, sigmaTheta); math.Abs(r-2) > 1e-12 {
		t.Fatalf("R = %g, want 2", r)
	}
	for _, k := range []float64{10, 100, 1000} {
		tk := GrowthT(k, sigmaT)
		thk := Growth(k, sigmaTheta, 0.96)
		// Normalized progress toward the respective limits.
		if thk/0.96 <= tk {
			t.Fatalf("at k=%g, Θ/Θmax (%g) must lead T (%g)", k, thk/0.96, tk)
		}
	}
	// Consistency with eq. 9: eliminating k gives Θ = Θmax(1−(1−T)^R).
	for _, k := range []float64{3, 30, 3000} {
		tk := GrowthT(k, sigmaT)
		thk := Growth(k, sigmaTheta, 0.96)
		want := 0.96 * (1 - math.Pow(1-tk, 2))
		if math.Abs(thk-want) > 1e-9 {
			t.Fatalf("eq. 9 inconsistency at k=%g: %g vs %g", k, thk, want)
		}
	}
}

func TestSampleKs(t *testing.T) {
	ks := SampleKs(1000, 10)
	if ks[0] != 1 || ks[len(ks)-1] != 1000 {
		t.Fatalf("endpoints: %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatal("ks must increase strictly")
		}
	}
	if len(SampleKs(0, 10)) != 0 {
		t.Fatal("empty for n<1")
	}
	one := SampleKs(1, 10)
	if len(one) != 1 || one[0] != 1 {
		t.Fatalf("SampleKs(1) = %v", one)
	}
	if ks2 := SampleKs(50, 0); ks2[len(ks2)-1] != 50 {
		t.Fatal("default perDecade must work")
	}
}

func TestFromDetections(t *testing.T) {
	detected := []int{1, 3, 0, 2}
	ks := []int{1, 2, 3}
	c := FromDetections(detected, nil, ks)
	want := []float64{0.25, 0.5, 0.75}
	for i := range ks {
		if math.Abs(c[i].C-want[i]) > 1e-12 {
			t.Fatalf("unweighted C(%d) = %g, want %g", ks[i], c[i].C, want[i])
		}
	}
	// Weighted: the undetected fault carries most weight.
	w := []float64{1, 1, 7, 1}
	cw := FromDetections(detected, w, ks)
	if math.Abs(cw[2].C-0.3) > 1e-12 {
		t.Fatalf("weighted C(3) = %g, want 0.3", cw[2].C)
	}
	if cw.Final() != cw[2].C {
		t.Fatal("Final mismatch")
	}
	var empty Curve
	if empty.Final() != 0 {
		t.Fatal("empty curve final")
	}
}

func TestFitSigmaRecovers(t *testing.T) {
	// Generate a synthetic curve from known parameters and recover σ.
	trueSigma := math.Exp(2.3)
	cmax := 0.93
	var curve Curve
	for _, k := range SampleKs(100000, 6) {
		curve = append(curve, Point{K: float64(k), C: Growth(float64(k), trueSigma, cmax)})
	}
	got := FitSigma(curve, cmax)
	if math.Abs(math.Log(got)-2.3) > 0.02 {
		t.Fatalf("FitSigma = e^%.3f, want e^2.3", math.Log(got))
	}
	// Using the curve's final value as Cmax still lands close.
	got2 := FitSigma(curve, 0)
	if math.Abs(math.Log(got2)-2.3) > 0.25 {
		t.Fatalf("FitSigma(auto cmax) = e^%.3f", math.Log(got2))
	}
	if !math.IsNaN(FitSigma(Curve{{1, 0}}, 0)) {
		t.Fatal("degenerate curve must give NaN")
	}
}

func TestGrowthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("σ ≤ 1 must panic")
		}
	}()
	GrowthT(10, 1)
}

func TestRFromSigmasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("σ ≤ 1 must panic")
		}
	}()
	RFromSigmas(1, 2)
}
