// Package coverage implements the random-pattern coverage-growth laws of
// the paper (eqs. 7–8) and utilities to build empirical coverage curves
// from fault-simulation results and estimate fault susceptibilities from
// them.
//
// The susceptibility σ of a fault set (Williams, "Test Length in a
// Self-Testing Environment") characterizes how fast random patterns cover
// it:
//
//	C(k) = Cmax · (1 − e^{−ln k / ln σ}) = Cmax · (1 − k^{−1/ln σ})
//
// A lower σ means faster coverage growth. The paper's susceptibility ratio
// R = ln(σ_T)/ln(σ_Θ) compares the stuck-at set (σ_T) with the weighted
// realistic set (σ_Θ).
package coverage

import (
	"fmt"
	"math"
)

// GrowthT returns eq. 7: T(k) = 1 − e^{−ln k / ln σ} for k ≥ 1 random
// vectors and susceptibility σ > 1.
func GrowthT(k float64, sigma float64) float64 {
	return Growth(k, sigma, 1)
}

// Growth returns eq. 8: C(k) = Cmax·(1 − e^{−ln k / ln σ}).
func Growth(k, sigma, cmax float64) float64 {
	if sigma <= 1 {
		panic(fmt.Sprintf("coverage: susceptibility %g must exceed 1", sigma))
	}
	if k < 1 {
		return 0
	}
	return cmax * (1 - math.Exp(-math.Log(k)/math.Log(sigma)))
}

// RFromSigmas returns eq. 10: R = ln(σ_T)/ln(σ_Θ).
func RFromSigmas(sigmaT, sigmaTheta float64) float64 {
	if sigmaT <= 1 || sigmaTheta <= 1 {
		panic("coverage: susceptibilities must exceed 1")
	}
	return math.Log(sigmaT) / math.Log(sigmaTheta)
}

// Point is one sample of an empirical coverage curve.
type Point struct {
	K float64 // number of vectors applied
	C float64 // coverage reached
}

// Curve is an empirical coverage curve, ordered by K.
type Curve []Point

// Final returns the last coverage value (0 for an empty curve).
func (c Curve) Final() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].C
}

// SampleKs returns a log-spaced set of vector counts 1..n (inclusive,
// deduplicated) — the k grid at which the experiment curves are evaluated.
func SampleKs(n int, perDecade int) []int {
	if n < 1 {
		return nil
	}
	if perDecade < 1 {
		perDecade = 10
	}
	var ks []int
	last := 0
	for e := 0.0; ; e += 1.0 / float64(perDecade) {
		k := int(math.Round(math.Pow(10, e)))
		if k > n {
			break
		}
		if k != last {
			ks = append(ks, k)
			last = k
		}
	}
	if last != n {
		ks = append(ks, n)
	}
	return ks
}

// FromDetections builds a coverage curve from first-detection indices: at
// each k in ks, coverage is the (optionally weighted) fraction of faults
// with 0 < DetectedAt ≤ k. weights may be nil for unweighted coverage.
func FromDetections(detectedAt []int, weights []float64, ks []int) Curve {
	var total float64
	w := func(i int) float64 {
		if weights == nil {
			return 1
		}
		return weights[i]
	}
	for i := range detectedAt {
		total += w(i)
	}
	curve := make(Curve, 0, len(ks))
	for _, k := range ks {
		var det float64
		for i, d := range detectedAt {
			if d > 0 && d <= k {
				det += w(i)
			}
		}
		c := 0.0
		if total > 0 {
			c = det / total
		}
		curve = append(curve, Point{K: float64(k), C: c})
	}
	return curve
}

// FitSigma estimates (σ, Cmax) of the growth law from an empirical curve by
// least squares on coverage values, using a golden-section search over
// ln σ with Cmax either fixed (cmax > 0) or taken as the curve's final
// value. It returns the fitted σ.
func FitSigma(curve Curve, cmax float64) float64 {
	if cmax <= 0 {
		cmax = curve.Final()
		if cmax <= 0 {
			return math.NaN()
		}
	}
	sse := func(lnSigma float64) float64 {
		sigma := math.Exp(lnSigma)
		var s float64
		for _, p := range curve {
			if p.K < 1 {
				continue
			}
			d := Growth(p.K, sigma, cmax) - p.C
			s += d * d
		}
		return s
	}
	// Golden-section over ln σ ∈ (0, 12] (σ up to e^12).
	lo, hi := 1e-3, 12.0
	const phi = 0.6180339887498949
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, fb := sse(a), sse(b)
	for i := 0; i < 200 && hi-lo > 1e-10; i++ {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = sse(a)
		} else {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = sse(b)
		}
	}
	return math.Exp((lo + hi) / 2)
}
