package coverage_test

import (
	"fmt"
	"math"

	"defectsim/internal/coverage"
)

// The paper's figure-1 parameters: the stuck-at set has susceptibility e³,
// the weighted realistic set e^1.5, giving R = 2 — the realistic coverage
// closes on its ceiling twice as fast (in exponent) as stuck-at coverage
// closes on 1.
func ExampleGrowth() {
	sigmaT := math.Exp(3)
	sigmaTheta := math.Exp(1.5)
	fmt.Printf("R = %.0f\n", coverage.RFromSigmas(sigmaT, sigmaTheta))
	for _, k := range []float64{10, 1000, 1e6} {
		fmt.Printf("k=%7.0f  T=%.3f  Θ=%.3f\n",
			k, coverage.GrowthT(k, sigmaT), coverage.Growth(k, sigmaTheta, 0.96))
	}
	// Output:
	// R = 2
	// k=     10  T=0.536  Θ=0.753
	// k=   1000  T=0.900  Θ=0.950
	// k=1000000  T=0.990  Θ=0.960
}

// Building an empirical coverage curve from first-detection indices, with
// and without fault weights.
func ExampleFromDetections() {
	detectedAt := []int{1, 2, 0, 4} // fault 2 never detected
	weights := []float64{1, 1, 6, 2}
	ks := []int{1, 2, 4}
	unweighted := coverage.FromDetections(detectedAt, nil, ks)
	weighted := coverage.FromDetections(detectedAt, weights, ks)
	for i, k := range ks {
		fmt.Printf("k=%d  Γ=%.2f  Θ=%.2f\n", k, unweighted[i].C, weighted[i].C)
	}
	// Output:
	// k=1  Γ=0.25  Θ=0.10
	// k=2  Γ=0.50  Θ=0.20
	// k=4  Γ=0.75  Θ=0.40
}
