package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Spool is the hinted-handoff queue: when a replica write fails, the
// key is recorded durably as a "hint" and replayed once the peer's
// breaker closes again. Because keys are content addresses, a hint only
// needs to name the key — the envelope bytes are re-read from the local
// store at replay time, and a replayed Put is idempotent on the peer.
//
// Layout: <dir>/<url-escaped peer name>/<key>.hint, each a small JSON
// Hint record committed through AtomicWrite (write temp, fsync, rename,
// fsync dir) so a crash never publishes a torn hint and queued hints
// survive restarts. The in-memory index mirrors the directory and is
// rebuilt from it at construction.
type Spool struct {
	dir string
	max int
	m   *Metrics

	mu      sync.Mutex
	pending map[string]map[string]Hint // peer → key → hint
}

// Hint is one queued replica write.
type Hint struct {
	// Peer is the destination node name.
	Peer string `json:"peer"`
	// Key is the envelope key to push.
	Key string `json:"key"`
	// QueuedAt records when the hint was first spooled (UTC).
	QueuedAt time.Time `json:"queued_at"`
	// NotBefore, when set, defers replay until that instant — the
	// Retry-After hint from a throttling (429) peer.
	NotBefore time.Time `json:"not_before,omitempty"`
}

// ErrSpoolFull reports that a peer's hint quota is exhausted; the write
// is dropped (the envelope stays safe in the local store and read-repair
// can still converge the replica later).
var ErrSpoolFull = errors.New("store: hint spool full")

// DefaultMaxHintsPerPeer bounds the per-peer hint backlog. The spool is
// a recovery buffer, not a durable replication log — a peer down long
// enough to accumulate more misses than this needs read-repair anyway.
const DefaultMaxHintsPerPeer = 1024

// NewSpool opens (creating if needed) the hint spool rooted at dir.
// maxPerPeer <= 0 selects DefaultMaxHintsPerPeer. Existing hints on disk
// are loaded; a hint that fails to parse or whose filename disagrees
// with its contents is deleted (the envelope itself lives in the local
// store, so a lost hint costs convergence speed, never data).
func NewSpool(dir string, maxPerPeer int, m *Metrics) (*Spool, error) {
	if dir == "" {
		return nil, errors.New("store: spool dir must be non-empty")
	}
	if maxPerPeer <= 0 {
		maxPerPeer = DefaultMaxHintsPerPeer
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: spool: %w", err)
	}
	s := &Spool{dir: dir, max: maxPerPeer, m: m, pending: map[string]map[string]Hint{}}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.m.spoolDepth(s.Depth())
	return s, nil
}

func (s *Spool) peerDir(peer string) string {
	return filepath.Join(s.dir, url.PathEscape(peer))
}

func (s *Spool) hintPath(peer, key string) string {
	return filepath.Join(s.peerDir(peer), key+".hint")
}

// load rebuilds the in-memory index from the spool directory.
func (s *Spool) load() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: spool: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		peer, err := url.PathUnescape(e.Name())
		if err != nil {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if !strings.HasSuffix(name, ".hint") {
				continue
			}
			key := strings.TrimSuffix(name, ".hint")
			path := filepath.Join(s.dir, e.Name(), name)
			data, err := os.ReadFile(path)
			var h Hint
			if err != nil || json.Unmarshal(data, &h) != nil ||
				h.Key != key || h.Peer != peer || !ValidKey(key) {
				os.Remove(path)
				continue
			}
			per := s.pending[peer]
			if per == nil {
				per = map[string]Hint{}
				s.pending[peer] = per
			}
			per[key] = h
		}
	}
	return nil
}

// Add queues (or re-schedules) a hint for peer/key. Adding an existing
// key updates NotBefore while preserving the original QueuedAt; a new
// key beyond the per-peer quota returns ErrSpoolFull.
func (s *Spool) Add(peer, key string, notBefore time.Time) error {
	if !ValidKey(key) {
		return errBadKey(key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	per := s.pending[peer]
	if per == nil {
		per = map[string]Hint{}
		s.pending[peer] = per
	}
	h := Hint{Peer: peer, Key: key, QueuedAt: time.Now().UTC(), NotBefore: notBefore}
	if prev, ok := per[key]; ok {
		h.QueuedAt = prev.QueuedAt
	} else if len(per) >= s.max {
		return fmt.Errorf("%w: peer %s at %d hints", ErrSpoolFull, peer, len(per))
	}
	data, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("store: spool: %w", err)
	}
	if err := os.MkdirAll(s.peerDir(peer), 0o755); err != nil {
		return fmt.Errorf("store: spool: %w", err)
	}
	if err := AtomicWrite(s.hintPath(peer, key), data); err != nil {
		return fmt.Errorf("store: spool %s/%s: %w", peer, key, err)
	}
	per[key] = h
	s.m.spoolDepth(s.depthLocked())
	return nil
}

// Remove drops the hint for peer/key (replayed, or no longer wanted).
func (s *Spool) Remove(peer, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	per := s.pending[peer]
	if per == nil {
		return
	}
	if _, ok := per[key]; !ok {
		return
	}
	delete(per, key)
	os.Remove(s.hintPath(peer, key))
	if len(per) == 0 {
		delete(s.pending, peer)
		os.Remove(s.peerDir(peer)) // best effort; fails harmlessly if non-empty on disk
	}
	s.m.spoolDepth(s.depthLocked())
}

// Pending returns every queued hint for peer, oldest first (QueuedAt,
// then key). Callers filter NotBefore themselves — a deferred hint is
// still pending.
func (s *Spool) Pending(peer string) []Hint {
	s.mu.Lock()
	defer s.mu.Unlock()
	per := s.pending[peer]
	out := make([]Hint, 0, len(per))
	for _, h := range per {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].QueuedAt.Equal(out[j].QueuedAt) {
			return out[i].QueuedAt.Before(out[j].QueuedAt)
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Peers returns the peer names with queued hints, sorted.
func (s *Spool) Peers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.pending))
	for p := range s.pending {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Depth returns the total number of queued hints across all peers.
func (s *Spool) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depthLocked()
}

func (s *Spool) depthLocked() int {
	n := 0
	for _, per := range s.pending {
		n += len(per)
	}
	return n
}
