package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"defectsim/internal/faultinject"
)

// maxBlobBytes bounds a fetched envelope (and any error body) — far above
// any real cache entry, low enough that a misbehaving peer cannot balloon
// the client.
const maxBlobBytes = 256 << 20

// Transport is the hardened HTTP client shared by the remote store
// backend and the cluster peer client:
//
//   - a per-attempt timeout, so one hung connection never consumes the
//     whole operation budget;
//   - capped exponential backoff with full jitter between attempts, so a
//     recovering peer is not met by a synchronized retry storm;
//   - Retry-After honoring on 429/503 (capped, so a hostile or confused
//     server cannot park the client);
//   - a circuit breaker fed per attempt: connect errors, timeouts, short
//     reads and 5xx responses count as failures, anything the server
//     answered coherently (2xx/4xx) counts as success.
//
// Do returns the final HTTP response (status/header/body) with a nil
// error whenever any attempt completed an exchange the client will not
// retry — including 4xx and a final-exhausted 5xx; the error return is
// reserved for "no usable response": breaker open, context cancelled, or
// every attempt failing in transport.
type Transport struct {
	// Client is the underlying http.Client. Default: http.DefaultClient.
	Client *http.Client
	// Label names the destination in metrics and errors.
	Label string
	// MaxAttempts bounds tries per operation. Default 3.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff. Default 2s.
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt. Default 10s.
	PerAttemptTimeout time.Duration
	// RetryAfterCap caps an honored Retry-After hint. Default 10s.
	RetryAfterCap time.Duration
	// Breaker, when non-nil, gates and records every operation.
	Breaker *Breaker
	// Metrics, when non-nil, receives store_retries_total{Label}.
	Metrics *Metrics

	// jitter maps a computed delay onto the slept delay; the default is
	// full jitter (uniform in [0, d]). Tests override for determinism.
	jitter func(d time.Duration) time.Duration

	// initOnce applies the field defaults exactly once — Do is called
	// concurrently, and even writing identical defaults twice is a race.
	initOnce sync.Once
}

func (t *Transport) withDefaults() {
	if t.Client == nil {
		t.Client = http.DefaultClient
	}
	if t.MaxAttempts <= 0 {
		t.MaxAttempts = 3
	}
	if t.BaseDelay <= 0 {
		t.BaseDelay = 50 * time.Millisecond
	}
	if t.MaxDelay <= 0 {
		t.MaxDelay = 2 * time.Second
	}
	if t.PerAttemptTimeout <= 0 {
		t.PerAttemptTimeout = 10 * time.Second
	}
	if t.RetryAfterCap <= 0 {
		t.RetryAfterCap = 10 * time.Second
	}
	if t.jitter == nil {
		t.jitter = fullJitter
	}
}

// fullJitter draws uniformly from [0, d] — "full jitter" in the AWS
// architecture-blog sense: maximal desynchronization of concurrent
// retriers at the cost of sometimes retrying immediately.
func fullJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d) + 1))
}

// SetJitter overrides the backoff jitter — test hook for deterministic
// delays.
func (t *Transport) SetJitter(fn func(time.Duration) time.Duration) { t.jitter = fn }

// retryable reports whether an HTTP status is worth another attempt.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// backoff computes the sleep before attempt i+1 (0-based i), honoring a
// Retry-After hint when the server sent one.
func (t *Transport) backoff(i int, retryAfter time.Duration) time.Duration {
	d := t.BaseDelay << uint(i)
	if d > t.MaxDelay || d <= 0 {
		d = t.MaxDelay
	}
	d = t.jitter(d)
	if retryAfter > 0 {
		if retryAfter > t.RetryAfterCap {
			retryAfter = t.RetryAfterCap
		}
		if retryAfter > d {
			d = retryAfter
		}
	}
	return d
}

// parseRetryAfter reads a Retry-After header in delta-seconds form (the
// HTTP-date form is ignored — the serving layer never emits it).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Do runs one logical operation with retries. build is called once per
// attempt and must construct a fresh request from the given context
// (bodies cannot be replayed across attempts otherwise).
func (t *Transport) Do(ctx context.Context, build func(ctx context.Context) (*http.Request, error)) (status int, header http.Header, body []byte, err error) {
	t.initOnce.Do(t.withDefaults)
	if t.Breaker != nil && !t.Breaker.Allow() {
		return 0, nil, nil, fmt.Errorf("%w: %s", ErrBreakerOpen, t.Label)
	}
	var lastErr error
	for i := 0; i < t.MaxAttempts; i++ {
		if i > 0 {
			t.Metrics.retry(t.Label)
		}
		status, header, body, lastErr = t.attempt(ctx, build)
		if lastErr == nil && !retryable(status) {
			// A coherent answer — even a 4xx — means the peer is alive.
			if t.Breaker != nil {
				t.Breaker.Success()
			}
			return status, header, body, nil
		}
		// Transport failure or retryable status: count it against the
		// breaker (429 excepted — shedding is load, not failure).
		if t.Breaker != nil && (lastErr != nil || status >= 500) {
			t.Breaker.Failure()
		}
		if ctx.Err() != nil {
			return 0, nil, nil, ctx.Err()
		}
		if i == t.MaxAttempts-1 {
			break
		}
		var retryAfter time.Duration
		if lastErr == nil {
			retryAfter = parseRetryAfter(header)
		}
		select {
		case <-time.After(t.backoff(i, retryAfter)):
		case <-ctx.Done():
			return 0, nil, nil, ctx.Err()
		}
	}
	if lastErr != nil {
		return 0, nil, nil, fmt.Errorf("store: %s: %d attempts failed: %w", t.Label, t.MaxAttempts, lastErr)
	}
	// Exhausted retries on a retryable status: surface the final response.
	return status, header, body, nil
}

// attempt runs one HTTP exchange under the per-attempt timeout, reading
// the whole body (a short read against Content-Length is a transport
// error — the partial-response case).
func (t *Transport) attempt(ctx context.Context, build func(ctx context.Context) (*http.Request, error)) (int, http.Header, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, t.PerAttemptTimeout)
	defer cancel()
	req, err := build(actx)
	if err != nil {
		return 0, nil, nil, err
	}
	if err := faultinject.Fire(faultinject.WithTarget(actx, req.URL.Host+req.URL.Path), faultinject.HookNetRequest); err != nil {
		return 0, nil, nil, err
	}
	res, err := t.Client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(io.LimitReader(res.Body, maxBlobBytes))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("reading response: %w", err)
	}
	if res.ContentLength > 0 && int64(len(body)) < res.ContentLength {
		return 0, nil, nil, fmt.Errorf("short response body: %d of %d bytes", len(body), res.ContentLength)
	}
	return res.StatusCode, res.Header, body, nil
}

// HTTP is the remote store backend: a dlprojd node's /v1/store API seen
// through the hardened Transport. Get verifies the fetched envelope's
// checksum before returning it, so a corrupt peer blob surfaces as an
// error here rather than a parse failure downstream. Put is idempotent by
// construction (content-addressed keys) and the server side additionally
// skips the write when the key already exists, so a retried Put never
// double-writes.
type HTTP struct {
	base string
	t    *Transport
	m    *Metrics
}

// HTTPOptions parameterizes NewHTTP. The zero value is serviceable.
type HTTPOptions struct {
	// Client, MaxAttempts, BaseDelay, MaxDelay, PerAttemptTimeout and
	// RetryAfterCap configure the Transport (see its field docs).
	Client            *http.Client
	MaxAttempts       int
	BaseDelay         time.Duration
	MaxDelay          time.Duration
	PerAttemptTimeout time.Duration
	RetryAfterCap     time.Duration
	// Breaker shares an existing breaker (the cluster wires one breaker
	// per peer across its store and job clients). Nil creates a dedicated
	// one from BreakerThreshold/BreakerCooldown.
	Breaker          *Breaker
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Metrics receives store_ops_total / store_retries_total /
	// store_breaker_state observations. Nil disables.
	Metrics *Metrics
}

// NewHTTP returns a remote store backend rooted at baseURL (scheme +
// host, e.g. http://node-b:8447); keys live at <base>/v1/store/<key>.
func NewHTTP(baseURL string, opts HTTPOptions) (*HTTP, error) {
	base := strings.TrimRight(baseURL, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("store: http: base URL %q must be absolute", baseURL)
	}
	h := &HTTP{base: base, m: opts.Metrics}
	br := opts.Breaker
	if br == nil {
		br = NewBreaker("http", opts.BreakerThreshold, opts.BreakerCooldown, opts.Metrics.breakerGauge("http"))
	}
	h.t = &Transport{
		Client:            opts.Client,
		Label:             "http",
		MaxAttempts:       opts.MaxAttempts,
		BaseDelay:         opts.BaseDelay,
		MaxDelay:          opts.MaxDelay,
		PerAttemptTimeout: opts.PerAttemptTimeout,
		RetryAfterCap:     opts.RetryAfterCap,
		Breaker:           br,
		Metrics:           opts.Metrics,
	}
	return h, nil
}

// Name implements Store.
func (h *HTTP) Name() string { return "http" }

// Base returns the normalized base URL (scheme + host, no trailing
// slash) the backend talks to.
func (h *HTTP) Base() string { return h.base }

// Breaker exposes the backend's circuit breaker (for the tiered store's
// health view and for tests).
func (h *HTTP) Breaker() *Breaker { return h.t.Breaker }

// Transport exposes the underlying retrying client — the cluster peer
// client builds its job-API calls on the same instance so breaker state
// is shared across the store and routing paths.
func (h *HTTP) Transport() *Transport { return h.t }

func (h *HTTP) url(key string) string { return h.base + "/v1/store/" + key }

// Get implements Store.
func (h *HTTP) Get(ctx context.Context, key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, errBadKey(key)
	}
	if err := faultinject.Fire(faultinject.WithTarget(ctx, h.Name()), faultinject.HookStoreGet); err != nil {
		h.m.op(h.Name(), "get", "error")
		return nil, err
	}
	status, _, body, err := h.t.Do(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, h.url(key), nil)
	})
	switch {
	case err != nil:
		h.m.op(h.Name(), "get", "error")
		return nil, err
	case status == http.StatusNotFound:
		h.m.op(h.Name(), "get", "miss")
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	case status != http.StatusOK:
		h.m.op(h.Name(), "get", "error")
		return nil, fmt.Errorf("store: http get %s: status %d", key, status)
	}
	if err := VerifyEnvelope(body); err != nil {
		h.m.op(h.Name(), "get", "error")
		return nil, fmt.Errorf("store: http get %s: %w", key, err)
	}
	h.m.op(h.Name(), "get", "hit")
	return body, nil
}

// Put implements Store.
func (h *HTTP) Put(ctx context.Context, key string, data []byte) error {
	if !ValidKey(key) {
		return errBadKey(key)
	}
	if err := faultinject.Fire(faultinject.WithTarget(ctx, h.Name()), faultinject.HookStorePut); err != nil {
		h.m.op(h.Name(), "put", "error")
		return err
	}
	status, header, body, err := h.t.Do(ctx, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, h.url(key), bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	switch {
	case err != nil:
		h.m.op(h.Name(), "put", "error")
		return err
	case status == http.StatusOK, status == http.StatusCreated, status == http.StatusNoContent:
		h.m.op(h.Name(), "put", "ok")
		return nil
	case status == http.StatusTooManyRequests:
		// The peer shed the write under load — retryable after its hint,
		// not a failure. The transport already retried with the Retry-After
		// delay and excluded 429 from breaker accounting; surfacing the
		// typed error lets replication spool the write as a hinted handoff
		// instead of treating the peer as down.
		h.m.op(h.Name(), "put", "throttled")
		return &Throttled{Key: key, RetryAfter: parseRetryAfter(header)}
	}
	h.m.op(h.Name(), "put", "error")
	return fmt.Errorf("store: http put %s: status %d: %s", key, status, truncateBody(body))
}

// Stat implements Store.
func (h *HTTP) Stat(ctx context.Context, key string) (bool, error) {
	if !ValidKey(key) {
		return false, errBadKey(key)
	}
	if err := faultinject.Fire(faultinject.WithTarget(ctx, h.Name()), faultinject.HookStoreStat); err != nil {
		h.m.op(h.Name(), "stat", "error")
		return false, err
	}
	status, _, _, err := h.t.Do(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodHead, h.url(key), nil)
	})
	switch {
	case err != nil:
		h.m.op(h.Name(), "stat", "error")
		return false, err
	case status == http.StatusOK:
		h.m.op(h.Name(), "stat", "hit")
		return true, nil
	case status == http.StatusNotFound:
		h.m.op(h.Name(), "stat", "miss")
		return false, nil
	}
	h.m.op(h.Name(), "stat", "error")
	return false, fmt.Errorf("store: http stat %s: status %d", key, status)
}

func truncateBody(b []byte) string {
	const max = 256
	s := strings.TrimSpace(string(b))
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}
