package store

import (
	"context"
	"errors"
	"fmt"
)

// Tiered layers a fast local store over a shared remote one. Reads check
// local first and backfill it on a remote hit; writes land locally first
// (the source of truth for this node) and replicate to the remote as best
// effort. Every remote failure — including a fast-fail from an open
// breaker — degrades the operation to local-only instead of surfacing an
// error: the remote tier buys fleet-wide cache locality, never
// correctness, so losing it costs recomputation, not availability.
type Tiered struct {
	local  Store
	remote Store
	m      *Metrics
}

// NewTiered combines a local and a remote store. Both must be non-nil;
// use the backends directly when only one tier exists.
func NewTiered(local, remote Store, m *Metrics) (*Tiered, error) {
	if local == nil || remote == nil {
		return nil, errors.New("store: tiered needs both a local and a remote tier")
	}
	return &Tiered{local: local, remote: remote, m: m}, nil
}

// Name implements Store.
func (t *Tiered) Name() string { return "tiered" }

// Local returns the local tier.
func (t *Tiered) Local() Store { return t.local }

// Remote returns the remote tier.
func (t *Tiered) Remote() Store { return t.remote }

// Get implements Store: local hit, else remote hit (backfilling local),
// else ErrNotFound. A remote error beyond a clean miss degrades to a
// miss and is counted, never returned.
func (t *Tiered) Get(ctx context.Context, key string) ([]byte, error) {
	data, err := t.local.Get(ctx, key)
	if err == nil {
		t.m.op(t.Name(), "get", "hit")
		return data, nil
	}
	if !errors.Is(err, ErrNotFound) {
		// A broken local tier is not a miss to paper over: without it the
		// node has no store at all.
		t.m.op(t.Name(), "get", "error")
		return nil, err
	}
	data, err = t.remote.Get(ctx, key)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			t.m.op(t.Name(), "get", "miss")
			return nil, err
		}
		t.m.degraded("get")
		t.m.op(t.Name(), "get", "miss")
		return nil, fmt.Errorf("%w: %s (remote degraded: %v)", ErrNotFound, key, err)
	}
	// Backfill the local tier so the next read is local. Best effort: a
	// failed backfill still serves the remote bytes.
	_ = t.local.Put(ctx, key, data)
	t.m.op(t.Name(), "get", "hit")
	return data, nil
}

// Put implements Store: the local write must succeed; the remote write is
// best effort and a failure only counts a degradation.
func (t *Tiered) Put(ctx context.Context, key string, data []byte) error {
	if err := t.local.Put(ctx, key, data); err != nil {
		t.m.op(t.Name(), "put", "error")
		return err
	}
	if err := t.remote.Put(ctx, key, data); err != nil {
		t.m.degraded("put")
	}
	t.m.op(t.Name(), "put", "ok")
	return nil
}

// Stat implements Store: local, then remote; a remote error degrades to
// "absent".
func (t *Tiered) Stat(ctx context.Context, key string) (bool, error) {
	ok, err := t.local.Stat(ctx, key)
	if err != nil {
		t.m.op(t.Name(), "stat", "error")
		return false, err
	}
	if ok {
		t.m.op(t.Name(), "stat", "hit")
		return true, nil
	}
	ok, err = t.remote.Stat(ctx, key)
	if err != nil {
		t.m.degraded("stat")
		t.m.op(t.Name(), "stat", "miss")
		return false, nil
	}
	if ok {
		t.m.op(t.Name(), "stat", "hit")
	} else {
		t.m.op(t.Name(), "stat", "miss")
	}
	return ok, nil
}
