// Package store provides content-addressed result storage for the
// defect-level projection pipeline: checksummed cache envelopes keyed by
// experiments.CacheKey, behind a small Store interface with three
// backends —
//
//   - FS: the local filesystem cache (atomic, fsynced writes),
//   - HTTP: a remote dlprojd node's /v1/store API, hardened with
//     per-attempt timeouts, capped exponential backoff with full jitter,
//     Retry-After honoring and a circuit breaker,
//   - Tiered: local + remote, degrading to local-only when the remote
//     fails.
//
// Keys are content addresses: a key is a digest of everything that
// determines the payload, so two writes under one key carry identical
// bytes and Put is naturally idempotent — a retried or duplicated Put can
// never corrupt an entry, only re-commit it. Every backend preserves the
// envelope byte-for-byte; VerifyEnvelope checks the embedded checksum so
// corrupt or truncated blobs are rejected at the store boundary instead
// of surfacing as parse errors downstream.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"defectsim/internal/obs"
)

// ErrNotFound reports a clean miss: the key has no entry. Every backend
// returns it (wrapped or bare) from Get on a missing key, distinguishing
// "not there" from "backend broken".
var ErrNotFound = errors.New("store: key not found")

// Store is a content-addressed blob store keyed by experiments.CacheKey.
// Implementations must treat entries as immutable: a key fully determines
// its bytes, so Put may skip the write when the key already exists.
type Store interface {
	// Get returns the envelope bytes under key, or ErrNotFound.
	Get(ctx context.Context, key string) ([]byte, error)
	// Put stores the envelope bytes under key. Idempotent: re-putting an
	// existing key succeeds without observable effect.
	Put(ctx context.Context, key string, data []byte) error
	// Stat reports whether key has an entry, without fetching it.
	Stat(ctx context.Context, key string) (bool, error)
	// Name labels the backend in metrics and logs ("fs", "http", "tiered").
	Name() string
}

// ValidKey reports whether key has the experiments.CacheKey shape: 32
// lowercase hex characters. Backends that map keys onto shared namespaces
// (file names, URL paths) reject anything else, so a hostile key can
// never traverse a directory or smuggle a path.
func ValidKey(key string) bool {
	if len(key) != 32 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// errBadKey marks a malformed key (caller bug or hostile input) — never
// retried, never breaker-counted.
func errBadKey(key string) error {
	return fmt.Errorf("store: invalid key %q (want 32 lowercase hex chars)", key)
}

// Throttled reports an operation the peer explicitly shed with 429 —
// load, not failure. It never counts against the peer's breaker (the
// transport already excludes 429 from failure accounting); callers that
// can defer the work (hinted handoff) should retry after RetryAfter.
type Throttled struct {
	// Key is the envelope key the shed operation targeted.
	Key string
	// RetryAfter is the peer's Retry-After hint; 0 when absent.
	RetryAfter time.Duration
}

// Error implements error.
func (t *Throttled) Error() string {
	return fmt.Sprintf("store: peer shed key %s (429, retry after %s)", t.Key, t.RetryAfter)
}

// AsThrottled unwraps err into a *Throttled if one is in the chain.
func AsThrottled(err error) (*Throttled, bool) {
	var t *Throttled
	if errors.As(err, &t) {
		return t, true
	}
	return nil, false
}

// envelope mirrors the wire shape of the experiments cache envelope —
// {version, checksum, payload} with checksum = sha256(payload) in hex —
// just enough to verify integrity without importing the pipeline. The
// experiments package pins this compatibility with a round-trip test.
type envelope struct {
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// VerifyEnvelope checks that data parses as a cache envelope whose
// payload matches its embedded sha256 checksum. A nil error means the
// blob is intact end to end; truncation, bit rot or a partial HTTP read
// all fail here.
func VerifyEnvelope(data []byte) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("store: envelope does not parse: %w", err)
	}
	if env.Checksum == "" || len(env.Payload) == 0 {
		return errors.New("store: envelope missing checksum or payload")
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Checksum {
		return errors.New("store: envelope checksum mismatch (truncated or corrupted)")
	}
	return nil
}

// Metrics is the store-layer instrument set, shared by every backend in
// one registry. Nil-safe throughout: a nil *Metrics (or one built from a
// nil registry) makes every observation a no-op.
type Metrics struct {
	// Ops counts operations: store_ops_total{backend,op,outcome} with op
	// get/put/stat and outcome hit/miss/ok/error.
	Ops *obs.CounterVec
	// Retries counts retried HTTP attempts: store_retries_total{backend}.
	Retries *obs.CounterVec
	// BreakerState exposes each breaker: store_breaker_state{backend} with
	// 0 closed, 1 open, 2 half-open.
	BreakerState *obs.GaugeVec
	// Degraded counts tiered-store degradations to local-only:
	// store_remote_degraded_total{op}.
	Degraded *obs.CounterVec
	// Replicate counts replica fan-out writes:
	// store_replicate_total{peer,outcome} with outcome
	// ok/throttled/spooled/spool_full/dropped/no_client.
	Replicate *obs.CounterVec
	// ReadRepair counts read-repair backfills:
	// store_read_repair_total{target,outcome} with target a peer name or
	// "self" and outcome ok/spooled/error/corrupt_local.
	ReadRepair *obs.CounterVec
	// HintsReplayed counts hinted-handoff replay outcomes:
	// store_hints_replayed_total{peer,outcome} with outcome
	// ok/deferred/error/dropped_member/dropped_missing.
	HintsReplayed *obs.CounterVec
	// SpoolDepth gauges pending hinted-handoff entries across all peers:
	// store_hint_spool_depth.
	SpoolDepth *obs.Gauge
}

// NewMetrics registers (or resolves) the store instrument families on
// reg. Nil-safe: a nil registry yields no-op instruments.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Ops:           reg.CounterVec("store_ops_total", "backend", "op", "outcome"),
		Retries:       reg.CounterVec("store_retries_total", "backend"),
		BreakerState:  reg.GaugeVec("store_breaker_state", "backend"),
		Degraded:      reg.CounterVec("store_remote_degraded_total", "op"),
		Replicate:     reg.CounterVec("store_replicate_total", "peer", "outcome"),
		ReadRepair:    reg.CounterVec("store_read_repair_total", "target", "outcome"),
		HintsReplayed: reg.CounterVec("store_hints_replayed_total", "peer", "outcome"),
		SpoolDepth:    reg.Gauge("store_hint_spool_depth"),
	}
}

func (m *Metrics) op(backend, op, outcome string) {
	if m == nil {
		return
	}
	m.Ops.With(backend, op, outcome).Inc()
}

func (m *Metrics) retry(backend string) {
	if m == nil {
		return
	}
	m.Retries.With(backend).Inc()
}

func (m *Metrics) breakerGauge(backend string) *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.BreakerState.With(backend)
}

func (m *Metrics) degraded(op string) {
	if m == nil {
		return
	}
	m.Degraded.With(op).Inc()
}

func (m *Metrics) replicate(peer, outcome string) {
	if m == nil {
		return
	}
	m.Replicate.With(peer, outcome).Inc()
}

func (m *Metrics) readRepair(target, outcome string) {
	if m == nil {
		return
	}
	m.ReadRepair.With(target, outcome).Inc()
}

func (m *Metrics) hintReplayed(peer, outcome string) {
	if m == nil {
		return
	}
	m.HintsReplayed.With(peer, outcome).Inc()
}

func (m *Metrics) spoolDepth(n int) {
	if m == nil {
		return
	}
	m.SpoolDepth.Set(float64(n))
}
