package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"defectsim/internal/obs"
)

// Circuit breaker for a remote backend or cluster peer. Consecutive
// failures open the circuit; while open, every operation fails fast with
// ErrBreakerOpen instead of burning a timeout against a dead host. After
// a cooldown the breaker half-opens: exactly one probe is let through,
// and its outcome closes the circuit (success) or re-opens it (failure).
//
// The state is exposed as a labeled gauge (store_breaker_state{backend},
// cluster_peer_breaker_state{peer}): 0 closed, 1 open, 2 half-open.

// BreakerState enumerates the circuit states. The numeric values are the
// gauge encoding, fixed by the metrics contract.
type BreakerState int

const (
	BreakerClosed   BreakerState = 0
	BreakerOpen     BreakerState = 1
	BreakerHalfOpen BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// ErrBreakerOpen fails an operation fast because the target's circuit is
// open. Callers distinguish it with errors.Is to fall back (tiered store,
// cluster routing) instead of retrying.
var ErrBreakerOpen = errors.New("store: circuit breaker open")

// IsUnavailable reports whether err means the backend could not be used
// at all (breaker open) as opposed to answering with a miss or an error.
func IsUnavailable(err error) bool { return errors.Is(err, ErrBreakerOpen) }

// Breaker is a closed/open/half-open circuit breaker. The zero value is
// not usable; construct with NewBreaker.
type Breaker struct {
	name      string
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	now      func() time.Time
	gauge    *obs.Gauge
	onChange []func(from, to BreakerState)
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and half-opens once cooldown has elapsed. gauge
// (nil-safe) receives the state encoding on every transition.
func NewBreaker(name string, threshold int, cooldown time.Duration, gauge *obs.Gauge) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 15 * time.Second
	}
	b := &Breaker{
		name:      name,
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		gauge:     gauge,
	}
	gauge.Set(float64(BreakerClosed))
	return b
}

// SetClock replaces the breaker's time source — test hook for cooldown
// expiry without sleeping.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// OnChange registers a state-transition observer (called outside the
// breaker lock is NOT guaranteed; keep observers non-blocking).
func (b *Breaker) OnChange(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onChange = append(b.onChange, fn)
	b.mu.Unlock()
}

// State returns the current state, accounting for cooldown expiry (an
// open breaker past its cooldown reads as open until the next Allow
// transitions it).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Name returns the breaker's label.
func (b *Breaker) Name() string { return b.name }

// Allow reports whether an operation may proceed. Closed: always. Open:
// only once the cooldown has elapsed, which transitions to half-open and
// admits the caller as the single probe. Half-open: false while the probe
// is in flight. Every Allow(true) must be paired with Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful operation: the circuit closes and the
// failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.transition(BreakerClosed)
	}
}

// Failure records a failed operation: a half-open probe re-opens the
// circuit immediately; in the closed state the threshold'th consecutive
// failure opens it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.openedAt = b.now()
		b.transition(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.transition(BreakerOpen)
		}
	}
}

// transition flips the state, updates the gauge and notifies observers.
// Caller holds b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	b.gauge.Set(float64(to))
	for _, fn := range b.onChange {
		fn(from, to)
	}
}
