package store

import (
	"sync"
	"testing"
	"time"

	"defectsim/internal/obs"
)

// fakeClock is a settable time source for cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerLifecycle(t *testing.T) {
	reg := obs.New().Metrics()
	gauge := reg.GaugeVec("store_breaker_state", "backend").With("peer-b")
	b := NewBreaker("peer-b", 3, time.Minute, gauge)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b.SetClock(clock.now)
	var transitions []BreakerState
	b.OnChange(func(_, to BreakerState) { transitions = append(transitions, to) })

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker not closed/allowing")
	}
	// Two failures: still closed (threshold 3).
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	// Third consecutive failure opens.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed an operation before cooldown")
	}
	if gauge.Value() != float64(BreakerOpen) {
		t.Fatalf("gauge = %v, want %v", gauge.Value(), float64(BreakerOpen))
	}

	// Cooldown elapses: exactly one probe is admitted (half-open).
	clock.advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe not admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// Probe fails: re-open, new cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open the circuit")
	}
	// Next cooldown, probe succeeds: closed again.
	clock.advance(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the circuit")
	}
	if gauge.Value() != float64(BreakerClosed) {
		t.Fatalf("gauge after close = %v, want closed", gauge.Value())
	}

	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker("x", 3, time.Minute, nil)
	b.Failure()
	b.Failure()
	b.Success() // streak broken
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("non-consecutive failures opened the breaker: %v", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("three consecutive failures did not open")
	}
}

func TestIsUnavailable(t *testing.T) {
	b := NewBreaker("y", 1, time.Hour, nil)
	b.Failure()
	tr := &Transport{Breaker: b, Label: "y"}
	_, _, _, err := tr.Do(nil, nil)
	if err == nil || !IsUnavailable(err) {
		t.Fatalf("Do with open breaker = %v, want ErrBreakerOpen", err)
	}
}
