package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"defectsim/internal/obs"
)

// fakeReplicaSet is a static placement oracle: every key gets the same
// ordered owner list, and each owner's store can be swapped mid-test to
// simulate death and recovery.
type fakeReplicaSet struct {
	self   string
	owners []string

	mu     sync.Mutex
	stores map[string]Store
}

func (f *fakeReplicaSet) Self() string           { return f.self }
func (f *fakeReplicaSet) Owners(string) []string { return append([]string(nil), f.owners...) }
func (f *fakeReplicaSet) ReplicaStore(name string) Store {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stores[name]
}

func (f *fakeReplicaSet) setStore(name string, st Store) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st == nil {
		delete(f.stores, name)
		return
	}
	f.stores[name] = st
}

// throttledStore sheds every Put with a 429-shaped Throttled error.
type throttledStore struct {
	*memStore
	retryAfter time.Duration
}

func (s *throttledStore) Put(_ context.Context, key string, _ []byte) error {
	return &Throttled{Key: key, RetryAfter: s.retryAfter}
}

func newReplicated(t *testing.T, rs *fakeReplicaSet, withSpool bool) (*Replicated, *memStore, *obs.Registry) {
	t.Helper()
	reg := obs.New().Metrics()
	m := NewMetrics(reg)
	local := newMemStore()
	var sp *Spool
	if withSpool {
		var err error
		sp, err = NewSpool(t.TempDir(), 0, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReplicated(local, rs, sp, m)
	if err != nil {
		t.Fatal(err)
	}
	return r, local, reg
}

func TestReplicatedPutFansOut(t *testing.T) {
	b := newMemStore()
	rs := &fakeReplicaSet{self: "a", owners: []string{"a", "b"}, stores: map[string]Store{"b": b}}
	r, local, reg := newReplicated(t, rs, true)
	ctx := context.Background()
	key := testKey(30)
	data := testEnvelope(t, `{"fan":"out"}`)

	if err := r.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]Store{"local": local, "replica": b} {
		got, err := st.Get(ctx, key)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s copy after Put = %q, %v", name, got, err)
		}
	}
	rep := reg.CounterVec("store_replicate_total", "peer", "outcome")
	if got := rep.With("b", "ok").Value(); got != 1 {
		t.Fatalf("store_replicate_total{b,ok} = %d, want 1", got)
	}
	if r.Spool().Depth() != 0 {
		t.Fatalf("healthy fan-out left %d hints", r.Spool().Depth())
	}
}

func TestReplicatedPutSpoolsOnFailureAndReplays(t *testing.T) {
	rs := &fakeReplicaSet{self: "a", owners: []string{"a", "b"}, stores: map[string]Store{
		"b": failingStore{err: errors.New("replica down")},
	}}
	r, _, reg := newReplicated(t, rs, true)
	ctx := context.Background()
	key := testKey(31)
	data := testEnvelope(t, `{"hint":"me"}`)

	// The replica is dead: Put still succeeds (local copy is the source of
	// truth) and the failed fan-out becomes a durable hint.
	if err := r.Put(ctx, key, data); err != nil {
		t.Fatalf("Put with dead replica: %v", err)
	}
	rep := reg.CounterVec("store_replicate_total", "peer", "outcome")
	if got := rep.With("b", "spooled").Value(); got != 1 {
		t.Fatalf("store_replicate_total{b,spooled} = %d, want 1", got)
	}
	if got := r.Spool().Depth(); got != 1 {
		t.Fatalf("spool depth = %d, want 1", got)
	}
	if got := reg.Gauge("store_hint_spool_depth").Value(); got != 1 {
		t.Fatalf("store_hint_spool_depth = %v, want 1", got)
	}

	// Replay against the still-dead replica: the error stops the drain and
	// the hint stays queued.
	if replayed, remaining := r.Replay(ctx); replayed != 0 || remaining != 1 {
		t.Fatalf("Replay against dead replica = %d, %d, want 0, 1", replayed, remaining)
	}

	// The replica recovers: replay pushes the envelope and clears the hint.
	b := newMemStore()
	rs.setStore("b", b)
	replayed, remaining := r.Replay(ctx)
	if replayed != 1 || remaining != 0 {
		t.Fatalf("Replay after recovery = %d, %d, want 1, 0", replayed, remaining)
	}
	got, err := b.Get(ctx, key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("replica copy after replay = %q, %v", got, err)
	}
	hr := reg.CounterVec("store_hints_replayed_total", "peer", "outcome")
	if got := hr.With("b", "ok").Value(); got != 1 {
		t.Fatalf("store_hints_replayed_total{b,ok} = %d, want 1", got)
	}
	if got := reg.Gauge("store_hint_spool_depth").Value(); got != 0 {
		t.Fatalf("store_hint_spool_depth after drain = %v, want 0", got)
	}
}

// TestReplicatedThrottledDefersHint pins satellite semantics: a 429 from
// a replica is back-pressure, not death — the hint is deferred by
// Retry-After (floored at 1s) and replay skips it until that instant.
func TestReplicatedThrottledDefersHint(t *testing.T) {
	rs := &fakeReplicaSet{self: "a", owners: []string{"a", "b"}, stores: map[string]Store{
		"b": &throttledStore{memStore: newMemStore(), retryAfter: 5 * time.Second},
	}}
	r, _, reg := newReplicated(t, rs, true)
	base := time.Now()
	r.now = func() time.Time { return base }
	ctx := context.Background()
	key := testKey(32)
	data := testEnvelope(t, `{"shed":"me"}`)

	if err := r.Put(ctx, key, data); err != nil {
		t.Fatalf("Put against throttling replica: %v", err)
	}
	rep := reg.CounterVec("store_replicate_total", "peer", "outcome")
	if got := rep.With("b", "throttled").Value(); got != 1 {
		t.Fatalf("store_replicate_total{b,throttled} = %d, want 1", got)
	}
	hints := r.Spool().Pending("b")
	if len(hints) != 1 {
		t.Fatalf("pending hints = %v, want one", hints)
	}
	if want := base.Add(5 * time.Second); !hints[0].NotBefore.Equal(want) {
		t.Fatalf("hint NotBefore = %v, want %v", hints[0].NotBefore, want)
	}

	// Replay before NotBefore: the hint is skipped, still pending, and no
	// Put reaches the shedding peer.
	rs.setStore("b", newMemStore())
	if replayed, remaining := r.Replay(ctx); replayed != 0 || remaining != 1 {
		t.Fatalf("early Replay = %d, %d, want 0, 1", replayed, remaining)
	}
	// Past NotBefore the hint drains.
	r.now = func() time.Time { return base.Add(6 * time.Second) }
	if replayed, remaining := r.Replay(ctx); replayed != 1 || remaining != 0 {
		t.Fatalf("due Replay = %d, %d, want 1, 0", replayed, remaining)
	}

	// The 1s floor: a zero Retry-After still defers by one second.
	rs.setStore("b", &throttledStore{memStore: newMemStore()})
	key2 := testKey(33)
	if err := r.Put(ctx, key2, testEnvelope(t, `{"floor":1}`)); err != nil {
		t.Fatal(err)
	}
	h2 := r.Spool().Pending("b")
	if len(h2) != 1 || !h2[0].NotBefore.Equal(base.Add(6*time.Second).Add(time.Second)) {
		t.Fatalf("floored hint = %+v, want NotBefore now+1s", h2)
	}
}

func TestReplicatedGetReadRepairs(t *testing.T) {
	b, c := newMemStore(), newMemStore()
	rs := &fakeReplicaSet{self: "a", owners: []string{"b", "a", "c"}, stores: map[string]Store{"b": b, "c": c}}
	r, local, reg := newReplicated(t, rs, true)
	ctx := context.Background()
	key := testKey(34)
	data := testEnvelope(t, `{"repair":"walk"}`)

	// Only the last-ranked owner has the copy; b cleanly misses.
	if err := c.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(ctx, key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// The hit read-repaired both the local tier and the missing owner.
	if lv, err := local.Get(ctx, key); err != nil || !bytes.Equal(lv, data) {
		t.Fatalf("local copy after read-repair = %q, %v", lv, err)
	}
	if bv, err := b.Get(ctx, key); err != nil || !bytes.Equal(bv, data) {
		t.Fatalf("owner b after read-repair = %q, %v", bv, err)
	}
	rr := reg.CounterVec("store_read_repair_total", "target", "outcome")
	if got := rr.With("self", "ok").Value(); got != 1 {
		t.Fatalf("store_read_repair_total{self,ok} = %d, want 1", got)
	}
	if got := rr.With("b", "ok").Value(); got != 1 {
		t.Fatalf("store_read_repair_total{b,ok} = %d, want 1", got)
	}

	// A clean miss everywhere is ErrNotFound.
	if _, err := r.Get(ctx, testKey(35)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing everywhere = %v, want ErrNotFound", err)
	}
}

// TestReplicatedGetHealsCorruptLocal: a torn local copy is treated as a
// miss, overwritten by the first verified replica copy.
func TestReplicatedGetHealsCorruptLocal(t *testing.T) {
	b := newMemStore()
	rs := &fakeReplicaSet{self: "a", owners: []string{"a", "b"}, stores: map[string]Store{"b": b}}
	r, local, reg := newReplicated(t, rs, true)
	ctx := context.Background()
	key := testKey(36)
	data := testEnvelope(t, `{"good":"copy"}`)

	if err := b.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	// Corrupt local bytes under the same key (a crash-torn write).
	if err := local.Put(ctx, key, []byte(`{"version":3,"checksum":"bad"`)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(ctx, key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get with corrupt local = %q, %v", got, err)
	}
	if lv, _ := local.Get(ctx, key); !bytes.Equal(lv, data) {
		t.Fatalf("local copy not healed: %q", lv)
	}
	rr := reg.CounterVec("store_read_repair_total", "target", "outcome")
	if got := rr.With("self", "corrupt_local").Value(); got != 1 {
		t.Fatalf("store_read_repair_total{self,corrupt_local} = %d, want 1", got)
	}

	// A corrupt REPLICA copy is skipped, not served: corrupt b, good c.
	c := newMemStore()
	rs2 := &fakeReplicaSet{self: "a", owners: []string{"b", "c", "a"}, stores: map[string]Store{"b": b, "c": c}}
	r2, _, _ := newReplicated(t, rs2, true)
	key2 := testKey(37)
	data2 := testEnvelope(t, `{"second":"copy"}`)
	if err := b.Put(ctx, key2, []byte("torn bytes")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(ctx, key2, data2); err != nil {
		t.Fatal(err)
	}
	if got, err := r2.Get(ctx, key2); err != nil || !bytes.Equal(got, data2) {
		t.Fatalf("Get skipping corrupt replica = %q, %v", got, err)
	}
}

func TestReplicatedReplayDropsDepartedAndMissing(t *testing.T) {
	b := newMemStore()
	rs := &fakeReplicaSet{self: "a", owners: []string{"a", "b"}, stores: map[string]Store{"b": b}}
	r, local, reg := newReplicated(t, rs, true)
	ctx := context.Background()

	// A hint for a peer that has left the membership: dropped outright.
	if err := r.Spool().Add("gone", testKey(38), time.Time{}); err != nil {
		t.Fatal(err)
	}
	// A hint whose envelope no longer exists locally: dropped too.
	if err := r.Spool().Add("b", testKey(39), time.Time{}); err != nil {
		t.Fatal(err)
	}
	// A live hint that must drain.
	key := testKey(40)
	data := testEnvelope(t, `{"live":"hint"}`)
	if err := local.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	if err := r.Spool().Add("b", key, time.Time{}); err != nil {
		t.Fatal(err)
	}

	replayed, remaining := r.Replay(ctx)
	if replayed != 1 || remaining != 0 {
		t.Fatalf("Replay = %d, %d, want 1, 0", replayed, remaining)
	}
	hr := reg.CounterVec("store_hints_replayed_total", "peer", "outcome")
	if got := hr.With("gone", "dropped_member").Value(); got != 1 {
		t.Fatalf("dropped_member = %d, want 1", got)
	}
	if got := hr.With("b", "dropped_missing").Value(); got != 1 {
		t.Fatalf("dropped_missing = %d, want 1", got)
	}
	if got, err := b.Get(ctx, key); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("live hint not delivered: %q, %v", got, err)
	}
}

func TestReplicatedStatWalksOwners(t *testing.T) {
	b := newMemStore()
	rs := &fakeReplicaSet{self: "a", owners: []string{"a", "b"}, stores: map[string]Store{"b": b}}
	r, _, _ := newReplicated(t, rs, false)
	ctx := context.Background()
	key := testKey(41)
	if ok, err := r.Stat(ctx, key); err != nil || ok {
		t.Fatalf("Stat missing = %v, %v", ok, err)
	}
	if err := b.Put(ctx, key, testEnvelope(t, `{"s":1}`)); err != nil {
		t.Fatal(err)
	}
	if ok, err := r.Stat(ctx, key); err != nil || !ok {
		t.Fatalf("Stat with replica copy = %v, %v, want true", ok, err)
	}
}

// TestHTTPPutThrottledSurfacesTyped pins the satellite contract on the
// HTTP store client: a final 429 from a peer's store API surfaces as a
// typed *Throttled carrying Retry-After, and — unlike a transport
// failure — never counts against the peer's breaker. The contrast case
// uses the partial-response injector: short reads are real failures and
// do open the breaker.
func TestHTTPPutThrottledSurfacesTyped(t *testing.T) {
	srv := newStoreServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	reg := obs.New().Metrics()
	h, err := NewHTTP(ts.URL, HTTPOptions{
		MaxAttempts:       1, // single attempt: no Retry-After sleeps in the test
		BaseDelay:         time.Millisecond,
		MaxDelay:          2 * time.Millisecond,
		PerAttemptTimeout: 2 * time.Second,
		BreakerThreshold:  2,
		BreakerCooldown:   time.Minute,
		Metrics:           NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := testKey(42)
	data := testEnvelope(t, `{"shed":"put"}`)

	// Three consecutive 429s with Retry-After: 2 — well past the breaker
	// threshold if they counted as failures.
	srv.failStatus.Store(http.StatusTooManyRequests)
	srv.retryAfter.Store(2)
	srv.failLeft.Store(3)
	for i := 0; i < 3; i++ {
		err := h.Put(ctx, key, data)
		th, ok := AsThrottled(err)
		if !ok {
			t.Fatalf("Put #%d against shedding peer = %v, want *Throttled", i, err)
		}
		if th.Key != key || th.RetryAfter != 2*time.Second {
			t.Fatalf("Throttled = %+v, want key %s retry-after 2s", th, key)
		}
	}
	if st := h.Breaker().State(); st != BreakerClosed {
		t.Fatalf("breaker after 429s = %v, want closed (shedding is not death)", st)
	}
	// The peer stops shedding: the same Put goes straight through.
	if err := h.Put(ctx, key, data); err != nil {
		t.Fatalf("Put after shed window: %v", err)
	}

	// Contrast: partial responses (the injector advertises full
	// Content-Length, sends half) ARE transport failures and open the
	// breaker at the same threshold the 429s never touched.
	srv.partialLeft.Store(2)
	for i := 0; i < 2; i++ {
		if _, err := h.Get(ctx, key); err == nil {
			t.Fatalf("Get #%d with partial response succeeded", i)
		}
	}
	if st := h.Breaker().State(); st != BreakerOpen {
		t.Fatalf("breaker after partial responses = %v, want open", st)
	}
}

// TestTieredBackfillRaceHammer drives concurrent misses, hits and puts
// through a Tiered store so -race can catch backfill races: every
// successful Get must return a complete, verified envelope.
func TestTieredBackfillRaceHammer(t *testing.T) {
	local, remote := newMemStore(), newMemStore()
	ti, err := NewTiered(local, remote, NewMetrics(obs.New().Metrics()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const keys = 8
	want := make(map[string][]byte, keys)
	for i := 0; i < keys; i++ {
		k := testKey(byte(50 + i))
		want[k] = testEnvelope(t, fmt.Sprintf(`{"hammer":%d}`, i))
		// Seed only the remote tier: every first Get races its backfill
		// against the other readers and the writers.
		if err := remote.Put(ctx, k, want[k]); err != nil {
			t.Fatal(err)
		}
	}
	keyAt := func(i int) string { return testKey(byte(50 + i%keys)) }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyAt(g + i)
				switch (g + i) % 3 {
				case 0:
					if err := ti.Put(ctx, k, want[k]); err != nil {
						t.Errorf("Put %s: %v", k, err)
					}
				case 1:
					if _, err := ti.Stat(ctx, k); err != nil {
						t.Errorf("Stat %s: %v", k, err)
					}
				default:
					got, err := ti.Get(ctx, k)
					if err != nil {
						t.Errorf("Get %s: %v", k, err)
						continue
					}
					if !bytes.Equal(got, want[k]) {
						t.Errorf("Get %s returned torn or foreign bytes", k)
					}
					if err := VerifyEnvelope(got); err != nil {
						t.Errorf("Get %s returned unverifiable envelope: %v", k, err)
					}
				}
			}
		}()
	}
	wg.Wait()
	// Every key ended fully backfilled into the local tier.
	for k, data := range want {
		got, err := local.Get(ctx, k)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("local tier after hammer: %s = %q, %v", k, got, err)
		}
	}
}
