package store

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ReplicaSet is the placement oracle Replicated composes over — the
// cluster implements it (see cluster.Cluster.ReplicaStore) without the
// store package importing cluster. It must be safe for concurrent use
// and may change between calls (membership reloads): Replicated resolves
// owners per operation and tolerates a peer disappearing mid-flight.
type ReplicaSet interface {
	// Self returns this node's ring name.
	Self() string
	// Owners returns the ordered replica set (rf distinct node names,
	// primary first) for key. Self may or may not be among them.
	Owners(key string) []string
	// ReplicaStore returns the remote store view of the named node, or
	// nil for self, unknown, and departed nodes.
	ReplicaStore(name string) Store
}

// Replicated composes the node's local store with the cluster's replica
// placement:
//
//   - Put commits locally first (the node's source of truth), then fans
//     the envelope out to every other owner. A fan-out failure never
//     fails the Put — it queues a hinted handoff in the spool, replayed
//     when the peer's breaker closes; a 429 defers the hint by the
//     peer's Retry-After instead of counting the peer as down.
//   - Get serves any locally cached copy, else walks the owners in ring
//     order and read-repairs on the way out: the first verified copy is
//     backfilled to the local store and to every earlier-ranked owner
//     that cleanly missed, so a ring that lost a node converges back to
//     rf copies through ordinary reads.
//
// Content addressing does the heavy lifting: a key fully determines its
// bytes, so there is no "stale" copy to reconcile — only present,
// missing, or corrupt — and every repair is an idempotent Put.
type Replicated struct {
	local Store
	rs    ReplicaSet
	spool *Spool // nil: fan-out still happens, failures are dropped instead of hinted
	m     *Metrics
	now   func() time.Time
}

// NewReplicated composes local with the replica set. spool may be nil
// (no hinted handoff — failed fan-outs are dropped and left to
// read-repair); local and rs must be non-nil.
func NewReplicated(local Store, rs ReplicaSet, spool *Spool, m *Metrics) (*Replicated, error) {
	if local == nil || rs == nil {
		return nil, errors.New("store: replicated needs a local store and a replica set")
	}
	return &Replicated{local: local, rs: rs, spool: spool, m: m, now: time.Now}, nil
}

// Name implements Store.
func (r *Replicated) Name() string { return "replicated" }

// Local returns the local tier.
func (r *Replicated) Local() Store { return r.local }

// Spool returns the hinted-handoff spool (nil when disabled).
func (r *Replicated) Spool() *Spool { return r.spool }

// Put implements Store: local write first (must succeed), then best-
// effort fan-out to the other owners.
func (r *Replicated) Put(ctx context.Context, key string, data []byte) error {
	if !ValidKey(key) {
		return errBadKey(key)
	}
	if err := r.local.Put(ctx, key, data); err != nil {
		r.m.op(r.Name(), "put", "error")
		return err
	}
	self := r.rs.Self()
	for _, owner := range r.rs.Owners(key) {
		if owner == self {
			continue
		}
		r.replicateTo(ctx, owner, key, data)
	}
	r.m.op(r.Name(), "put", "ok")
	return nil
}

// replicateTo pushes one envelope to one owner, spooling a hint on
// failure.
func (r *Replicated) replicateTo(ctx context.Context, peer, key string, data []byte) {
	st := r.rs.ReplicaStore(peer)
	if st == nil {
		// Unknown or departed owner: nothing to dial, nothing to spool —
		// Owners and ReplicaStore race only across a membership swap, and
		// the new owner set will replicate on its own.
		r.m.replicate(peer, "no_client")
		return
	}
	err := st.Put(ctx, key, data)
	if err == nil {
		r.m.replicate(peer, "ok")
		return
	}
	if th, ok := AsThrottled(err); ok {
		r.hint(peer, key, r.retryAt(th), "throttled")
		return
	}
	r.hint(peer, key, time.Time{}, "spooled")
}

// retryAt converts a 429's Retry-After into the hint's NotBefore, with a
// 1s floor so a hint never spins hot against a shedding peer.
func (r *Replicated) retryAt(th *Throttled) time.Time {
	ra := th.RetryAfter
	if ra < time.Second {
		ra = time.Second
	}
	return r.now().Add(ra)
}

// hint spools a failed replica write, recording outcome (or the spool
// failure) in the replicate counter.
func (r *Replicated) hint(peer, key string, notBefore time.Time, outcome string) {
	if r.spool == nil {
		r.m.replicate(peer, "dropped")
		return
	}
	if err := r.spool.Add(peer, key, notBefore); err != nil {
		if errors.Is(err, ErrSpoolFull) {
			r.m.replicate(peer, "spool_full")
		} else {
			r.m.replicate(peer, "dropped")
		}
		return
	}
	r.m.replicate(peer, outcome)
}

// Get implements Store: local copy first (any verified copy is current —
// content addressing), then the owners in ring order; the first hit
// read-repairs the local store and every earlier-ranked owner that
// cleanly missed.
func (r *Replicated) Get(ctx context.Context, key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, errBadKey(key)
	}
	data, err := r.local.Get(ctx, key)
	if err == nil {
		if VerifyEnvelope(data) == nil {
			r.m.op(r.Name(), "get", "hit")
			return data, nil
		}
		// Corrupt local copy (torn by a crash, bit rot): treat as a miss
		// and let the replica walk overwrite it below.
		r.m.readRepair("self", "corrupt_local")
	} else if !errors.Is(err, ErrNotFound) {
		// A broken local tier is not a miss to paper over (same stance as
		// Tiered): without it the node has no store at all.
		r.m.op(r.Name(), "get", "error")
		return nil, err
	}

	self := r.rs.Self()
	var missed []string // earlier-ranked owners that cleanly missed
	for _, owner := range r.rs.Owners(key) {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if owner == self {
			// Already tried above; the local backfill on a later hit covers
			// this rank.
			continue
		}
		st := r.rs.ReplicaStore(owner)
		if st == nil {
			continue
		}
		data, err := st.Get(ctx, key)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				missed = append(missed, owner)
			}
			// Unreachable or erroring owner: skip — if it lacks the copy a
			// spooled hint or a later read-repair converges it.
			continue
		}
		if VerifyEnvelope(data) != nil {
			continue
		}
		// Read repair: the local cache first (serves the next read and is
		// the source for hint replay), then every owner that missed.
		if lerr := r.local.Put(ctx, key, data); lerr == nil {
			r.m.readRepair("self", "ok")
		} else {
			r.m.readRepair("self", "error")
		}
		for _, mname := range missed {
			r.repairOwner(ctx, mname, key, data)
		}
		r.m.op(r.Name(), "get", "hit")
		return data, nil
	}
	r.m.op(r.Name(), "get", "miss")
	return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
}

// repairOwner backfills one under-replicated owner, spooling a hint when
// the push fails so convergence survives the owner bouncing again.
func (r *Replicated) repairOwner(ctx context.Context, peer, key string, data []byte) {
	st := r.rs.ReplicaStore(peer)
	if st == nil {
		return
	}
	err := st.Put(ctx, key, data)
	if err == nil {
		r.m.readRepair(peer, "ok")
		return
	}
	notBefore := time.Time{}
	if th, ok := AsThrottled(err); ok {
		notBefore = r.retryAt(th)
	}
	if r.spool != nil && r.spool.Add(peer, key, notBefore) == nil {
		r.m.readRepair(peer, "spooled")
		return
	}
	r.m.readRepair(peer, "error")
}

// Stat implements Store: local, then each remote owner; errors degrade
// to "absent" for that owner.
func (r *Replicated) Stat(ctx context.Context, key string) (bool, error) {
	if !ValidKey(key) {
		return false, errBadKey(key)
	}
	ok, err := r.local.Stat(ctx, key)
	if err != nil {
		r.m.op(r.Name(), "stat", "error")
		return false, err
	}
	if ok {
		r.m.op(r.Name(), "stat", "hit")
		return true, nil
	}
	self := r.rs.Self()
	for _, owner := range r.rs.Owners(key) {
		if owner == self {
			continue
		}
		st := r.rs.ReplicaStore(owner)
		if st == nil {
			continue
		}
		if ok, err := st.Stat(ctx, key); err == nil && ok {
			r.m.op(r.Name(), "stat", "hit")
			return true, nil
		}
	}
	r.m.op(r.Name(), "stat", "miss")
	return false, nil
}

// Replay drains ready hints: for every spooled peer still in the replica
// set, each due hint's envelope is read back from the local store and
// pushed. Hints for departed members are dropped (the ring no longer
// places those keys there); hints whose envelope vanished locally are
// dropped too (nothing to push). A throttling peer defers its hints; any
// other push error stops that peer's drain for this pass (its breaker is
// almost certainly open again). Returns the number of hints replayed and
// the number still pending.
func (r *Replicated) Replay(ctx context.Context) (replayed, remaining int) {
	if r.spool == nil {
		return 0, 0
	}
	for _, peer := range r.spool.Peers() {
		st := r.rs.ReplicaStore(peer)
		if st == nil {
			for _, h := range r.spool.Pending(peer) {
				r.spool.Remove(peer, h.Key)
				r.m.hintReplayed(peer, "dropped_member")
			}
			continue
		}
		now := r.now()
		for _, h := range r.spool.Pending(peer) {
			if ctx.Err() != nil {
				return replayed, r.spool.Depth()
			}
			if h.NotBefore.After(now) {
				continue // deferred; stays pending without a counter tick
			}
			data, err := r.local.Get(ctx, h.Key)
			if errors.Is(err, ErrNotFound) {
				r.spool.Remove(peer, h.Key)
				r.m.hintReplayed(peer, "dropped_missing")
				continue
			}
			if err != nil {
				continue
			}
			err = st.Put(ctx, h.Key, data)
			if err == nil {
				r.spool.Remove(peer, h.Key)
				r.m.hintReplayed(peer, "ok")
				replayed++
				continue
			}
			if th, ok := AsThrottled(err); ok {
				_ = r.spool.Add(peer, h.Key, r.retryAt(th))
				r.m.hintReplayed(peer, "deferred")
				continue
			}
			r.m.hintReplayed(peer, "error")
			break
		}
	}
	return replayed, r.spool.Depth()
}
