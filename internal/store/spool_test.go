package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSpoolRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpool(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey(60), testKey(61)
	if err := sp.Add("node-b", k1, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Add("node-b", k2, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Add("node c", k1, time.Time{}); err != nil { // name needing escaping
		t.Fatal(err)
	}
	if got := sp.Depth(); got != 3 {
		t.Fatalf("Depth = %d, want 3", got)
	}
	peers := sp.Peers()
	if len(peers) != 2 || peers[0] != "node c" || peers[1] != "node-b" {
		t.Fatalf("Peers = %v", peers)
	}
	// Pending is oldest-first; equal QueuedAt falls back to key order.
	pend := sp.Pending("node-b")
	if len(pend) != 2 {
		t.Fatalf("Pending = %v, want 2 hints", pend)
	}
	if pend[0].QueuedAt.After(pend[1].QueuedAt) {
		t.Fatalf("Pending not oldest-first: %v", pend)
	}

	// A second Spool over the same directory rebuilds the same queue —
	// hints survive a daemon restart.
	sp2, err := NewSpool(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp2.Depth(); got != 3 {
		t.Fatalf("reloaded Depth = %d, want 3", got)
	}
	if got := sp2.Pending("node c"); len(got) != 1 || got[0].Key != k1 || got[0].Peer != "node c" {
		t.Fatalf("reloaded escaped-peer hints = %v", got)
	}

	// Remove drains the per-peer queue and its directory.
	sp2.Remove("node-b", k1)
	sp2.Remove("node-b", k2)
	sp2.Remove("node-b", k2) // idempotent
	if got := sp2.Depth(); got != 1 {
		t.Fatalf("Depth after removes = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "node-b")); !os.IsNotExist(err) {
		t.Fatalf("emptied peer dir still present: %v", err)
	}
}

func TestSpoolReAddPreservesQueuedAt(t *testing.T) {
	sp, err := NewSpool(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(62)
	if err := sp.Add("b", key, time.Time{}); err != nil {
		t.Fatal(err)
	}
	first := sp.Pending("b")[0]
	// Re-adding (a throttled retry rescheduling the same key) updates
	// NotBefore but keeps the original enqueue time — age accounting and
	// oldest-first replay order survive deferrals.
	later := time.Now().Add(time.Hour).UTC()
	if err := sp.Add("b", key, later); err != nil {
		t.Fatal(err)
	}
	got := sp.Pending("b")
	if len(got) != 1 {
		t.Fatalf("re-add duplicated the hint: %v", got)
	}
	if !got[0].QueuedAt.Equal(first.QueuedAt) {
		t.Fatalf("QueuedAt changed on re-add: %v -> %v", first.QueuedAt, got[0].QueuedAt)
	}
	if !got[0].NotBefore.Equal(later) {
		t.Fatalf("NotBefore = %v, want %v", got[0].NotBefore, later)
	}
	if sp.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", sp.Depth())
	}
}

func TestSpoolPerPeerQuota(t *testing.T) {
	sp, err := NewSpool(t.TempDir(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Add("b", testKey(63), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Add("b", testKey(64), time.Time{}); err != nil {
		t.Fatal(err)
	}
	err = sp.Add("b", testKey(65), time.Time{})
	if !errors.Is(err, ErrSpoolFull) {
		t.Fatalf("over-quota Add = %v, want ErrSpoolFull", err)
	}
	// Re-adding an existing key is not a new hint: always allowed.
	if err := sp.Add("b", testKey(63), time.Now()); err != nil {
		t.Fatalf("re-add at quota: %v", err)
	}
	// Another peer has its own quota.
	if err := sp.Add("c", testKey(65), time.Time{}); err != nil {
		t.Fatalf("other peer at quota: %v", err)
	}
	// Bad keys never enter the spool.
	if err := sp.Add("b", "../escape", time.Time{}); err == nil {
		t.Fatal("invalid key accepted")
	}
}

// TestSpoolLoadDropsCorruptHints: a hint that fails to parse, or whose
// filename disagrees with its contents, is deleted at load — never
// replayed, never poisoning the index.
func TestSpoolLoadDropsCorruptHints(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpool(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := testKey(66)
	if err := sp.Add("b", good, time.Time{}); err != nil {
		t.Fatal(err)
	}
	peerDir := filepath.Join(dir, "b")
	// Torn JSON.
	torn := filepath.Join(peerDir, testKey(67)+".hint")
	if err := os.WriteFile(torn, []byte(`{"peer":"b","key`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Valid JSON under the wrong filename.
	lying := filepath.Join(peerDir, testKey(68)+".hint")
	if err := os.WriteFile(lying, []byte(`{"peer":"b","key":"`+good+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// A stray non-hint file is left alone.
	stray := filepath.Join(peerDir, "README")
	if err := os.WriteFile(stray, []byte("not a hint"), 0o644); err != nil {
		t.Fatal(err)
	}

	sp2, err := NewSpool(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp2.Depth(); got != 1 {
		t.Fatalf("Depth after corrupt load = %d, want 1", got)
	}
	if got := sp2.Pending("b"); len(got) != 1 || got[0].Key != good {
		t.Fatalf("survivors = %v, want only the good hint", got)
	}
	for _, p := range []string{torn, lying} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("corrupt hint %s not deleted", p)
		}
	}
	if _, err := os.Stat(stray); err != nil {
		t.Fatalf("stray non-hint file touched: %v", err)
	}
}
