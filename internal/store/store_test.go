package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"defectsim/internal/faultinject"
	"defectsim/internal/obs"
)

// testKey returns a distinct valid 32-hex key per seed.
func testKey(seed byte) string {
	sum := sha256.Sum256([]byte{seed})
	return hex.EncodeToString(sum[:16])
}

// testEnvelope builds a wire-valid envelope around the given payload.
func testEnvelope(t *testing.T, payload string) []byte {
	t.Helper()
	sum := sha256.Sum256([]byte(payload))
	data, err := json.Marshal(map[string]any{
		"version":  3,
		"checksum": hex.EncodeToString(sum[:]),
		"payload":  json.RawMessage(payload),
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestValidKey(t *testing.T) {
	if !ValidKey(testKey(1)) {
		t.Fatalf("ValidKey rejected %q", testKey(1))
	}
	for _, bad := range []string{
		"", "short", strings.Repeat("g", 32), strings.Repeat("A", 32),
		"../" + strings.Repeat("a", 29), strings.Repeat("a", 33),
	} {
		if ValidKey(bad) {
			t.Errorf("ValidKey accepted %q", bad)
		}
	}
}

func TestVerifyEnvelope(t *testing.T) {
	good := testEnvelope(t, `{"circuit":"c17"}`)
	if err := VerifyEnvelope(good); err != nil {
		t.Fatalf("valid envelope rejected: %v", err)
	}
	if err := VerifyEnvelope(good[:len(good)/2]); err == nil {
		t.Fatal("truncated envelope accepted")
	}
	// Corrupt the payload under an unchanged checksum: the digest must
	// catch it.
	corrupted := []byte(strings.Replace(string(good), `"circuit":"c17"`, `"circuit":"c18"`, 1))
	if err := VerifyEnvelope(corrupted); err == nil {
		t.Fatal("corrupted envelope accepted")
	}
	if err := VerifyEnvelope([]byte(`{"version":3}`)); err == nil {
		t.Fatal("envelope without payload accepted")
	}
}

func TestFSRoundTrip(t *testing.T) {
	reg := obs.New().Metrics()
	fs, err := NewFS(t.TempDir(), NewMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := testKey(2)
	data := testEnvelope(t, `{"n":1}`)

	if _, err := fs.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	if ok, err := fs.Stat(ctx, key); err != nil || ok {
		t.Fatalf("Stat on empty store = %v, %v", ok, err)
	}
	if err := fs.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("Get returned %q, want %q", got, data)
	}
	if ok, err := fs.Stat(ctx, key); err != nil || !ok {
		t.Fatalf("Stat after Put = %v, %v", ok, err)
	}
	// Idempotent re-put.
	if err := fs.Put(ctx, key, data); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if _, err := fs.Get(ctx, "../../etc/passwd"); err == nil {
		t.Fatal("traversal key accepted")
	}
}

func TestFSConcurrentSameKeyPuts(t *testing.T) {
	fs, err := NewFS(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := testKey(3)
	data := testEnvelope(t, `{"big":"payload"}`)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fs.Put(ctx, key, data); err != nil {
				t.Errorf("Put: %v", err)
			}
		}()
	}
	wg.Wait()
	got, err := fs.Get(ctx, key)
	if err != nil || string(got) != string(data) {
		t.Fatalf("after concurrent puts: %q, %v", got, err)
	}
}

func TestAtomicWriteInjectedCrashLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	if err := AtomicWrite(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("crash before rename")
	var sawTmp string
	var tmpBytes []byte
	restore := faultinject.Set(faultinject.HookCacheWrite, func(ctx context.Context) error {
		sawTmp = faultinject.TargetFrom(ctx)
		tmpBytes, _ = os.ReadFile(sawTmp)
		return boom
	})
	defer restore()
	if err := AtomicWrite(path, []byte("new content")); !errors.Is(err, boom) {
		t.Fatalf("AtomicWrite = %v, want injected error", err)
	}
	// The hook fires after write+fsync: the temp file must already hold
	// the complete new bytes (the sync-before-rename ordering), and the
	// aborted commit must leave the destination on its old content with
	// the temp file cleaned up.
	if string(tmpBytes) != "new content" {
		t.Fatalf("temp file at hook time held %q, want complete new bytes", tmpBytes)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("destination after aborted write = %q, want old content", got)
	}
	if _, err := os.Stat(sawTmp); !os.IsNotExist(err) {
		t.Fatalf("temp file not cleaned up: %v", err)
	}
}

func TestFSStoreHooks(t *testing.T) {
	fs, err := NewFS(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("store injected")
	restore := faultinject.Set(faultinject.HookStoreGet, faultinject.ForTarget("fs", faultinject.Fail(boom)))
	defer restore()
	if _, err := fs.Get(context.Background(), testKey(4)); !errors.Is(err, boom) {
		t.Fatalf("hooked Get = %v, want injected error", err)
	}
}

// failingStore errors every operation — the dead-remote stand-in.
type failingStore struct{ err error }

func (f failingStore) Get(context.Context, string) ([]byte, error) { return nil, f.err }
func (f failingStore) Put(context.Context, string, []byte) error   { return f.err }
func (f failingStore) Stat(context.Context, string) (bool, error)  { return false, f.err }
func (f failingStore) Name() string                                { return "failing" }

// memStore is a map-backed Store for tiered tests.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemStore() *memStore { return &memStore{m: map[string][]byte{}} }

func (s *memStore) Get(_ context.Context, key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.m[key]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
}

func (s *memStore) Put(_ context.Context, key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), data...)
	return nil
}

func (s *memStore) Stat(_ context.Context, key string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	return ok, nil
}

func (s *memStore) Name() string { return "mem" }

func TestTieredRemoteHitBackfillsLocal(t *testing.T) {
	local, remote := newMemStore(), newMemStore()
	ti, err := NewTiered(local, remote, NewMetrics(obs.New().Metrics()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := testKey(5)
	data := testEnvelope(t, `{"from":"remote"}`)
	if err := remote.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	got, err := ti.Get(ctx, key)
	if err != nil || string(got) != string(data) {
		t.Fatalf("tiered Get = %q, %v", got, err)
	}
	if ok, _ := local.Stat(ctx, key); !ok {
		t.Fatal("remote hit did not backfill the local tier")
	}
}

func TestTieredDegradesToLocalOnRemoteFailure(t *testing.T) {
	local := newMemStore()
	reg := obs.New().Metrics()
	m := NewMetrics(reg)
	ti, err := NewTiered(local, failingStore{err: errors.New("remote down")}, m)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	key := testKey(6)
	data := testEnvelope(t, `{"local":"only"}`)

	// Put must succeed (local tier) despite the dead remote.
	if err := ti.Put(ctx, key, data); err != nil {
		t.Fatalf("Put with dead remote: %v", err)
	}
	if got, err := ti.Get(ctx, key); err != nil || string(got) != string(data) {
		t.Fatalf("Get of local entry = %q, %v", got, err)
	}
	// A miss with a dead remote is a miss, not an error.
	if _, err := ti.Get(ctx, testKey(7)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get with dead remote = %v, want ErrNotFound", err)
	}
	if ok, err := ti.Stat(ctx, testKey(7)); err != nil || ok {
		t.Fatalf("Stat with dead remote = %v, %v, want false, nil", ok, err)
	}
	// Degradations were counted: one for the put, one for the missed get,
	// one for the stat.
	total := int64(0)
	for _, c := range reg.CounterSnapshot() {
		if c.Name == "store_remote_degraded_total" {
			total += c.Value
		}
	}
	if total != 3 {
		t.Fatalf("store_remote_degraded_total = %d, want 3", total)
	}
}
