package store

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"defectsim/internal/faultinject"
	"defectsim/internal/obs"
)

// storeServer is a minimal in-memory /v1/store peer for client tests,
// with per-test knobs for failure shaping.
type storeServer struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    atomic.Int64
	puts    atomic.Int64
	// failNext returns a non-zero status to force on the next requests
	// (decremented per request); 0 serves normally.
	failStatus atomic.Int64
	failLeft   atomic.Int64
	retryAfter atomic.Int64 // Retry-After seconds attached to failures
	// partialLeft truncates that many GET bodies mid-envelope.
	partialLeft atomic.Int64
}

func newStoreServer() *storeServer { return &storeServer{entries: map[string][]byte{}} }

func (s *storeServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.failLeft.Load() > 0 {
			s.failLeft.Add(-1)
			if ra := s.retryAfter.Load(); ra > 0 {
				w.Header().Set("Retry-After", strconv.FormatInt(ra, 10))
			}
			w.WriteHeader(int(s.failStatus.Load()))
			return
		}
		key := r.URL.Path[len("/v1/store/"):]
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			s.gets.Add(1)
			s.mu.Lock()
			data, ok := s.entries[key]
			s.mu.Unlock()
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				return
			}
			if r.Method == http.MethodHead {
				w.WriteHeader(http.StatusOK)
				return
			}
			if s.partialLeft.Load() > 0 {
				s.partialLeft.Add(-1)
				// Advertise the full length, send half: the client must see
				// a short read, not a clean success.
				w.Header().Set("Content-Length", strconv.Itoa(len(data)))
				w.WriteHeader(http.StatusOK)
				w.Write(data[:len(data)/2])
				return
			}
			w.WriteHeader(http.StatusOK)
			w.Write(data)
		case http.MethodPut:
			s.puts.Add(1)
			body := make([]byte, 0, 1024)
			buf := make([]byte, 4096)
			for {
				n, err := r.Body.Read(buf)
				body = append(body, buf[:n]...)
				if err != nil {
					break
				}
			}
			s.mu.Lock()
			s.entries[key] = body
			s.mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
		default:
			w.WriteHeader(http.StatusMethodNotAllowed)
		}
	})
}

// newHTTPStore wires an HTTP backend against the fake peer with fast,
// deterministic retry timing.
func newHTTPStore(t *testing.T, ts *httptest.Server, reg *obs.Registry) *HTTP {
	t.Helper()
	h, err := NewHTTP(ts.URL, HTTPOptions{
		MaxAttempts:       3,
		BaseDelay:         time.Millisecond,
		MaxDelay:          5 * time.Millisecond,
		PerAttemptTimeout: 2 * time.Second,
		BreakerThreshold:  4,
		BreakerCooldown:   50 * time.Millisecond,
		Metrics:           NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Transport().SetJitter(func(d time.Duration) time.Duration { return d })
	return h
}

func TestHTTPStoreRoundTrip(t *testing.T) {
	srv := newStoreServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	h := newHTTPStore(t, ts, obs.New().Metrics())
	ctx := context.Background()
	key := testKey(10)
	data := testEnvelope(t, `{"remote":1}`)

	if _, err := h.Get(ctx, key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if err := h.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(ctx, key)
	if err != nil || string(got) != string(data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if ok, err := h.Stat(ctx, key); err != nil || !ok {
		t.Fatalf("Stat = %v, %v", ok, err)
	}
	// Retried Put is a no-op rewrite of identical bytes — idempotent.
	if err := h.Put(ctx, key, data); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
}

func TestHTTPStoreRetriesTransientFailures(t *testing.T) {
	srv := newStoreServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	reg := obs.New().Metrics()
	h := newHTTPStore(t, ts, reg)
	ctx := context.Background()
	key := testKey(11)
	data := testEnvelope(t, `{"retry":"me"}`)
	if err := h.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}

	// Two 500s, then success: the third attempt lands.
	srv.failStatus.Store(http.StatusInternalServerError)
	srv.failLeft.Store(2)
	got, err := h.Get(ctx, key)
	if err != nil || string(got) != string(data) {
		t.Fatalf("Get with transient 500s = %q, %v", got, err)
	}
	var retries int64
	for _, c := range reg.CounterSnapshot() {
		if c.Name == "store_retries_total" {
			retries += c.Value
		}
	}
	if retries != 2 {
		t.Fatalf("store_retries_total = %d, want 2", retries)
	}
	if h.Breaker().State() != BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", h.Breaker().State())
	}
}

func TestHTTPStoreRecoversFromPartialResponse(t *testing.T) {
	srv := newStoreServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	h := newHTTPStore(t, ts, obs.New().Metrics())
	ctx := context.Background()
	key := testKey(12)
	data := testEnvelope(t, `{"partial":"then fine"}`)
	if err := h.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	srv.partialLeft.Store(1)
	got, err := h.Get(ctx, key)
	if err != nil || string(got) != string(data) {
		t.Fatalf("Get after partial response = %q, %v", got, err)
	}
}

func TestHTTPStoreRejectsCorruptEnvelope(t *testing.T) {
	srv := newStoreServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	h := newHTTPStore(t, ts, obs.New().Metrics())
	ctx := context.Background()
	key := testKey(13)
	srv.mu.Lock()
	srv.entries[key] = []byte(`{"version":3,"checksum":"beef","payload":{"x":1}}`)
	srv.mu.Unlock()
	if _, err := h.Get(ctx, key); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of corrupt blob = %v, want checksum error", err)
	}
}

func TestHTTPStoreHonorsRetryAfter(t *testing.T) {
	srv := newStoreServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	h := newHTTPStore(t, ts, obs.New().Metrics())
	// Zero out the computed backoff so only Retry-After contributes.
	h.Transport().SetJitter(func(time.Duration) time.Duration { return 0 })
	ctx := context.Background()
	key := testKey(14)
	data := testEnvelope(t, `{"ra":1}`)
	if err := h.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	srv.failStatus.Store(http.StatusServiceUnavailable)
	srv.retryAfter.Store(1)
	srv.failLeft.Store(1)
	start := time.Now()
	if _, err := h.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retry after %v, want >= the 1s Retry-After hint", elapsed)
	}
}

func TestHTTPStoreBreakerOpensAndFastFails(t *testing.T) {
	srv := newStoreServer()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	h := newHTTPStore(t, ts, obs.New().Metrics())
	ctx := context.Background()
	key := testKey(15)

	// Make the peer unreachable at the network layer.
	boom := errors.New("connection refused (injected)")
	restore := faultinject.Set(faultinject.HookNetRequest, faultinject.Fail(boom))
	// One operation = 3 failed attempts ≥ threshold 4 after the second op.
	_, err1 := h.Get(ctx, key)
	_, err2 := h.Get(ctx, key)
	restore()
	if err1 == nil || err2 == nil {
		t.Fatalf("gets against dead peer = %v, %v, want errors", err1, err2)
	}
	if h.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", h.Breaker().State())
	}
	before := srv.gets.Load()
	if _, err := h.Get(ctx, key); !IsUnavailable(err) {
		t.Fatalf("Get with open breaker = %v, want ErrBreakerOpen", err)
	}
	if srv.gets.Load() != before {
		t.Fatal("open breaker still let a request through")
	}

	// Cooldown elapses, the peer is healthy again: half-open probe closes.
	time.Sleep(60 * time.Millisecond)
	data := testEnvelope(t, `{"back":1}`)
	if err := h.Put(ctx, key, data); err != nil {
		t.Fatalf("probe put after cooldown: %v", err)
	}
	if h.Breaker().State() != BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", h.Breaker().State())
	}
}

func TestTransportBackoffShape(t *testing.T) {
	tr := &Transport{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, RetryAfterCap: 2 * time.Second}
	tr.initOnce.Do(tr.withDefaults)
	tr.SetJitter(func(d time.Duration) time.Duration { return d }) // identity: expose the cap
	if got := tr.backoff(0, 0); got != 10*time.Millisecond {
		t.Fatalf("backoff(0) = %v", got)
	}
	if got := tr.backoff(2, 0); got != 40*time.Millisecond {
		t.Fatalf("backoff(2) = %v", got)
	}
	if got := tr.backoff(10, 0); got != 80*time.Millisecond {
		t.Fatalf("backoff(10) = %v, want the 80ms cap", got)
	}
	// Retry-After dominates when larger, and is itself capped.
	if got := tr.backoff(0, time.Second); got != time.Second {
		t.Fatalf("backoff with Retry-After 1s = %v", got)
	}
	if got := tr.backoff(0, time.Hour); got != 2*time.Second {
		t.Fatalf("backoff with huge Retry-After = %v, want the 2s cap", got)
	}
	// Full jitter stays within [0, d].
	tr.SetJitter(nil)
	tr.jitter = fullJitter
	for i := 0; i < 100; i++ {
		if d := tr.backoff(3, 0); d < 0 || d > 80*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [0, 80ms]", d)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	cases := map[string]time.Duration{
		"": 0, "3": 3 * time.Second, " 7 ": 7 * time.Second,
		"-1": 0, "soon": 0, "Wed, 21 Oct 2026 07:28:00 GMT": 0,
	}
	for in, want := range cases {
		if got := parseRetryAfter(mk(in)); got != want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", in, got, want)
		}
	}
}
