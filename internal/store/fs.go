package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"defectsim/internal/faultinject"
)

// FS is the filesystem backend: one file per key under a directory,
// written atomically (temp file + fsync + rename) so a reader or a crash
// never observes a partial entry. Concurrent same-key writes within the
// process are serialized; across processes the rename makes last-writer-
// wins safe because content-addressed keys imply identical bytes.
type FS struct {
	dir string
	ext string
	m   *Metrics
	// locks holds one mutex per key written by this process — bounded by
	// the set of distinct keys, not request volume.
	locks sync.Map // key → *sync.Mutex
}

// NewFS returns a filesystem store rooted at dir, creating it if needed.
// Entries are stored as <dir>/<key>.json — the same layout the serving
// layer's CacheDir always used, so existing cache directories carry over.
func NewFS(dir string, m *Metrics) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: fs: %w", err)
	}
	return &FS{dir: dir, ext: ".json", m: m}, nil
}

// Name implements Store.
func (f *FS) Name() string { return "fs" }

// Dir returns the backing directory.
func (f *FS) Dir() string { return f.dir }

func (f *FS) path(key string) string { return filepath.Join(f.dir, key+f.ext) }

// Get implements Store.
func (f *FS) Get(ctx context.Context, key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, errBadKey(key)
	}
	if err := faultinject.Fire(faultinject.WithTarget(ctx, f.Name()), faultinject.HookStoreGet); err != nil {
		f.m.op(f.Name(), "get", "error")
		return nil, err
	}
	data, err := os.ReadFile(f.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			f.m.op(f.Name(), "get", "miss")
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		f.m.op(f.Name(), "get", "error")
		return nil, fmt.Errorf("store: fs get %s: %w", key, err)
	}
	f.m.op(f.Name(), "get", "hit")
	return data, nil
}

// Put implements Store.
func (f *FS) Put(ctx context.Context, key string, data []byte) error {
	if !ValidKey(key) {
		return errBadKey(key)
	}
	if err := faultinject.Fire(faultinject.WithTarget(ctx, f.Name()), faultinject.HookStorePut); err != nil {
		f.m.op(f.Name(), "put", "error")
		return err
	}
	mu := f.keyLock(key)
	mu.Lock()
	defer mu.Unlock()
	if err := AtomicWrite(f.path(key), data); err != nil {
		f.m.op(f.Name(), "put", "error")
		return fmt.Errorf("store: fs put %s: %w", key, err)
	}
	f.m.op(f.Name(), "put", "ok")
	return nil
}

// Stat implements Store.
func (f *FS) Stat(ctx context.Context, key string) (bool, error) {
	if !ValidKey(key) {
		return false, errBadKey(key)
	}
	if err := faultinject.Fire(faultinject.WithTarget(ctx, f.Name()), faultinject.HookStoreStat); err != nil {
		f.m.op(f.Name(), "stat", "error")
		return false, err
	}
	_, err := os.Stat(f.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			f.m.op(f.Name(), "stat", "miss")
			return false, nil
		}
		f.m.op(f.Name(), "stat", "error")
		return false, fmt.Errorf("store: fs stat %s: %w", key, err)
	}
	f.m.op(f.Name(), "stat", "hit")
	return true, nil
}

func (f *FS) keyLock(key string) *sync.Mutex {
	mu, _ := f.locks.LoadOrStore(key, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// AtomicWrite commits data to path through a temp file in the same
// directory: write, fsync, rename, fsync the directory. The fsync before
// the rename is load-bearing — on filesystems with delayed allocation a
// crash shortly after an unsynced rename can leave the *renamed* file
// empty, i.e. a committed-looking but zero-length cache entry; syncing
// the file first guarantees the rename only ever publishes durable bytes.
// The directory fsync makes the rename itself durable (best effort: some
// platforms reject fsync on directories, which only widens the crash
// window for the entry's existence, never its integrity).
//
// The faultinject.HookCacheWrite point fires between the fsync and the
// rename with the temp path as target; an injected error aborts before
// the rename (the crash-before-commit case) and leaves path untouched.
func AtomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = faultinject.Fire(faultinject.WithTarget(context.Background(), tmpName), faultinject.HookCacheWrite)
	}
	if werr == nil {
		werr = os.Chmod(tmpName, 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmpName, path)
	}
	if werr != nil {
		os.Remove(tmpName)
		return werr
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // durability of the rename; integrity never depends on it
		_ = d.Close()
	}
	return nil
}
