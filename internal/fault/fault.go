// Package fault defines the fault universes of the pipeline:
//
//   - single line stuck-at faults at gate level (stems and fanout
//     branches), with classical equivalence collapsing — the abstract model
//     whose coverage is the paper's T;
//   - realistic, layout-extracted faults (bridges and opens) carrying
//     occurrence weights w = A·D — the model behind the paper's Θ.
package fault

import (
	"fmt"
	"math"
	"sort"

	"defectsim/internal/netlist"
)

// StuckAt is a single line stuck-at fault. Branch selects the line: -1 is
// the stem (the net as driven), otherwise the index of the reading gate
// (the fanout branch into that gate). Value is the stuck value (0 or 1).
type StuckAt struct {
	Net    int
	Branch int
	Value  uint8
}

func (f StuckAt) String() string {
	if f.Branch < 0 {
		return fmt.Sprintf("net%d/sa%d", f.Net, f.Value)
	}
	return fmt.Sprintf("net%d->g%d/sa%d", f.Net, f.Branch, f.Value)
}

// StuckAtUniverse builds the collapsed single stuck-at fault list of nl.
//
// The uncollapsed universe is: two stem faults per net plus two branch
// faults per fanout branch of every net with fanout > 1. Equivalence
// collapsing removes:
//
//   - branch faults on fanout-free nets (equivalent to the stem),
//   - the controlling-value input fault of AND/NAND/OR/NOR gates, which is
//     equivalent to the corresponding output stem fault,
//   - both input faults of BUF/NOT gates (equivalent to output faults).
//
// XOR/XNOR inputs do not collapse. The returned list is deterministic.
func StuckAtUniverse(nl *netlist.Netlist) []StuckAt {
	fanouts := nl.Fanouts()
	var out []StuckAt
	// Stems.
	for net := 0; net < nl.NumNets(); net++ {
		out = append(out, StuckAt{net, -1, 0}, StuckAt{net, -1, 1})
	}
	// Branches on fanout nets, minus collapsed ones.
	for net := 0; net < nl.NumNets(); net++ {
		fo := fanouts[net]
		for _, gi := range fo {
			g := &nl.Gates[gi]
			for v := uint8(0); v <= 1; v++ {
				if collapsesIntoOutput(g.Type, v) {
					continue // ≡ stem fault of g.Out, already listed
				}
				if len(fo) == 1 {
					continue // fanout-free: branch ≡ stem of this net
				}
				out = append(out, StuckAt{net, gi, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		if a.Branch != b.Branch {
			return a.Branch < b.Branch
		}
		return a.Value < b.Value
	})
	return out
}

// collapsesIntoOutput reports whether an input stuck-at-v fault of a gate of
// type t is equivalent to one of the gate's output faults.
func collapsesIntoOutput(t netlist.GateType, v uint8) bool {
	switch t {
	case netlist.Buf, netlist.Not:
		return true
	case netlist.And, netlist.Nand:
		return v == 0
	case netlist.Or, netlist.Nor:
		return v == 1
	}
	return false
}

// Kind classifies a realistic (layout-extracted) fault.
type Kind uint8

// Realistic fault kinds.
const (
	// KindBridge shorts two layout nets (extra-material defect).
	KindBridge Kind = iota
	// KindOpenInput disconnects one receiving gate input from its net: the
	// input's poly/pad/stub branch is severed, leaving the transistor gates
	// of that input floating.
	KindOpenInput
	// KindOpenDriver severs the net's trunk, disconnecting every receiver
	// from the driver: the whole net floats.
	KindOpenDriver
)

func (k Kind) String() string {
	switch k {
	case KindBridge:
		return "bridge"
	case KindOpenInput:
		return "open-input"
	case KindOpenDriver:
		return "open-driver"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Realistic is one layout-extracted fault with its occurrence weight
// w = Σ A·D over the contributing defect classes (paper eq. 4:
// w = −ln(1−p)).
type Realistic struct {
	Kind Kind
	// NetA/NetB are layout net indices. Bridges use both (NetA < NetB);
	// opens use NetA only.
	NetA, NetB int
	// Inst/Node locate a KindOpenInput fault: the receiving instance and
	// its cell-local input node.
	Inst, Node int
	Weight     float64
}

// Prob returns the fault's occurrence probability p = 1 − e^{−w}.
func (f Realistic) Prob() float64 { return 1 - math.Exp(-f.Weight) }

func (f Realistic) String() string {
	switch f.Kind {
	case KindBridge:
		return fmt.Sprintf("bridge(%d,%d) w=%.3g", f.NetA, f.NetB, f.Weight)
	case KindOpenInput:
		return fmt.Sprintf("open-input(net %d, inst %d node %d) w=%.3g", f.NetA, f.Inst, f.Node, f.Weight)
	default:
		return fmt.Sprintf("open-driver(net %d) w=%.3g", f.NetA, f.Weight)
	}
}

// List is a weighted realistic fault list.
type List struct {
	Faults []Realistic
}

// TotalWeight returns Σ w_j.
func (l *List) TotalWeight() float64 {
	var s float64
	for _, f := range l.Faults {
		s += f.Weight
	}
	return s
}

// Yield returns the Poisson yield e^{−Σw} (paper eq. 5).
func (l *List) Yield() float64 { return math.Exp(-l.TotalWeight()) }

// ScaleToYield multiplies every weight by a common factor so that Yield()
// becomes y. The paper scales the c432 fault list to Y = 0.75 ("scaling the
// yield value can be interpreted as if the circuit has a different size but
// maintains the same testability features").
func (l *List) ScaleToYield(y float64) {
	if y <= 0 || y >= 1 {
		panic("fault: target yield must be in (0,1)")
	}
	total := l.TotalWeight()
	if total == 0 {
		panic("fault: cannot scale an empty/weightless fault list")
	}
	f := -math.Log(y) / total
	for i := range l.Faults {
		l.Faults[i].Weight *= f
	}
}

// WeightedCoverage returns Θ = Σ_detected w / Σ w (paper eq. 6) for the
// given detection flags (detected[i] corresponds to Faults[i]).
func (l *List) WeightedCoverage(detected []bool) float64 {
	var det, total float64
	for i, f := range l.Faults {
		total += f.Weight
		if detected[i] {
			det += f.Weight
		}
	}
	if total == 0 {
		return 0
	}
	return det / total
}

// UnweightedCoverage returns Γ = #detected / #faults — the same fault set
// with all weights collapsed to equal likelihood (paper fig. 6).
func (l *List) UnweightedCoverage(detected []bool) float64 {
	if len(l.Faults) == 0 {
		return 0
	}
	n := 0
	for _, d := range detected {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(l.Faults))
}

// SortByWeight orders faults by descending weight (most likely first),
// breaking ties deterministically.
func (l *List) SortByWeight() {
	sort.SliceStable(l.Faults, func(i, j int) bool {
		if l.Faults[i].Weight != l.Faults[j].Weight {
			return l.Faults[i].Weight > l.Faults[j].Weight
		}
		return l.Faults[i].String() < l.Faults[j].String()
	})
}

// CountByKind returns the number of faults of each kind.
func (l *List) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, f := range l.Faults {
		m[f.Kind]++
	}
	return m
}
