package fault

import (
	"math"
	"testing"
	"testing/quick"

	"defectsim/internal/netlist"
)

func TestStuckAtUniverseC17(t *testing.T) {
	nl := netlist.C17()
	faults := StuckAtUniverse(nl)
	// 11 nets × 2 stem faults = 22. Fanout nets: G3 feeds two NANDs, G11
	// feeds two, G16 feeds two. Branch s-a-0 collapses into the NAND output
	// (controlling value), branch s-a-1 remains: 3 nets × 2 branches × 1
	// value = 6 branch faults.
	want := 22 + 6
	if len(faults) != want {
		t.Fatalf("c17 collapsed universe = %d faults, want %d", len(faults), want)
	}
	seen := map[StuckAt]bool{}
	for _, f := range faults {
		if seen[f] {
			t.Fatalf("duplicate fault %v", f)
		}
		seen[f] = true
		if f.Value > 1 {
			t.Fatalf("bad stuck value in %v", f)
		}
	}
}

func TestStuckAtUniverseDeterministic(t *testing.T) {
	nl := netlist.C432Class(3)
	a := StuckAtUniverse(nl)
	b := StuckAtUniverse(nl)
	if len(a) != len(b) {
		t.Fatal("nondeterministic universe size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}

func TestCollapseRules(t *testing.T) {
	cases := []struct {
		t    netlist.GateType
		v    uint8
		want bool
	}{
		{netlist.And, 0, true}, {netlist.And, 1, false},
		{netlist.Nand, 0, true}, {netlist.Nand, 1, false},
		{netlist.Or, 1, true}, {netlist.Or, 0, false},
		{netlist.Nor, 1, true}, {netlist.Nor, 0, false},
		{netlist.Not, 0, true}, {netlist.Not, 1, true},
		{netlist.Buf, 0, true}, {netlist.Buf, 1, true},
		{netlist.Xor, 0, false}, {netlist.Xor, 1, false},
		{netlist.Xnor, 0, false}, {netlist.Xnor, 1, false},
	}
	for _, c := range cases {
		if got := collapsesIntoOutput(c.t, c.v); got != c.want {
			t.Errorf("collapse(%v, sa%d) = %v, want %v", c.t, c.v, got, c.want)
		}
	}
}

func TestRealisticProb(t *testing.T) {
	f := Realistic{Weight: 0}
	if f.Prob() != 0 {
		t.Fatal("zero weight means zero probability")
	}
	f.Weight = 1e-6
	if p := f.Prob(); math.Abs(p-1e-6) > 1e-11 {
		t.Fatalf("small-weight prob ≈ weight, got %g", p)
	}
	f.Weight = 100
	if p := f.Prob(); p < 0.999999 {
		t.Fatalf("large weight must saturate, got %g", p)
	}
}

func TestListYieldAndCoverage(t *testing.T) {
	l := &List{Faults: []Realistic{
		{Kind: KindBridge, NetA: 0, NetB: 1, Weight: 0.2},
		{Kind: KindOpenDriver, NetA: 2, Weight: 0.1},
		{Kind: KindOpenInput, NetA: 3, Inst: 0, Node: 2, Weight: 0.7},
	}}
	if got, want := l.TotalWeight(), 1.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("TotalWeight = %g", got)
	}
	if got, want := l.Yield(), math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Yield = %g, want %g", got, want)
	}
	det := []bool{true, false, true}
	if got, want := l.WeightedCoverage(det), 0.9; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Θ = %g, want %g", got, want)
	}
	if got, want := l.UnweightedCoverage(det), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Γ = %g, want %g", got, want)
	}
}

func TestScaleToYield(t *testing.T) {
	l := &List{Faults: []Realistic{
		{Weight: 0.3}, {Weight: 0.5}, {Weight: 1.2},
	}}
	l.ScaleToYield(0.75)
	if got := l.Yield(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("scaled yield = %g, want 0.75", got)
	}
	// Relative weights preserved.
	if r := l.Faults[1].Weight / l.Faults[0].Weight; math.Abs(r-5.0/3.0) > 1e-9 {
		t.Fatalf("relative weights changed: %g", r)
	}
}

func TestScaleToYieldProperty(t *testing.T) {
	f := func(w1, w2 uint16, yRaw uint16) bool {
		y := 0.01 + 0.98*float64(yRaw)/65535
		l := &List{Faults: []Realistic{
			{Weight: 0.001 + float64(w1)/100},
			{Weight: 0.001 + float64(w2)/100},
		}}
		l.ScaleToYield(y)
		return math.Abs(l.Yield()-y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleToYieldPanics(t *testing.T) {
	for _, y := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ScaleToYield(%g) must panic", y)
				}
			}()
			l := &List{Faults: []Realistic{{Weight: 1}}}
			l.ScaleToYield(y)
		}()
	}
}

func TestSortByWeight(t *testing.T) {
	l := &List{Faults: []Realistic{
		{Kind: KindBridge, NetA: 1, NetB: 2, Weight: 0.1},
		{Kind: KindBridge, NetA: 3, NetB: 4, Weight: 0.9},
		{Kind: KindOpenDriver, NetA: 5, Weight: 0.5},
	}}
	l.SortByWeight()
	if l.Faults[0].Weight != 0.9 || l.Faults[2].Weight != 0.1 {
		t.Fatalf("not sorted: %v", l.Faults)
	}
}

func TestCountByKindAndStrings(t *testing.T) {
	l := &List{Faults: []Realistic{
		{Kind: KindBridge, NetA: 0, NetB: 1},
		{Kind: KindBridge, NetA: 0, NetB: 2},
		{Kind: KindOpenInput, NetA: 3, Inst: 1, Node: 2},
		{Kind: KindOpenDriver, NetA: 4},
	}}
	m := l.CountByKind()
	if m[KindBridge] != 2 || m[KindOpenInput] != 1 || m[KindOpenDriver] != 1 {
		t.Fatalf("counts: %v", m)
	}
	for _, f := range l.Faults {
		if f.String() == "" || f.Kind.String() == "" {
			t.Fatal("empty string rendering")
		}
	}
	if (StuckAt{3, -1, 1}).String() != "net3/sa1" {
		t.Fatal("stuck-at stem string")
	}
	if (StuckAt{3, 7, 0}).String() != "net3->g7/sa0" {
		t.Fatal("stuck-at branch string")
	}
}

func TestEmptyListEdgeCases(t *testing.T) {
	l := &List{}
	if l.Yield() != 1 {
		t.Fatal("empty list yields 1")
	}
	if l.WeightedCoverage(nil) != 0 || l.UnweightedCoverage(nil) != 0 {
		t.Fatal("empty coverages must be 0")
	}
}
