package defect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"defectsim/internal/geom"
)

func TestTypeClassification(t *testing.T) {
	bridges := []Type{ExtraPoly, ExtraMetal1, ExtraMetal2, ExtraActive}
	opens := []Type{MissingPoly, MissingMetal1, MissingMetal2, MissingActive, MissingContact, MissingVia}
	for _, ty := range bridges {
		if !ty.Bridge() || ty.Open() {
			t.Errorf("%v must be a bridge type", ty)
		}
	}
	for _, ty := range opens {
		if ty.Bridge() || !ty.Open() {
			t.Errorf("%v must be an open type", ty)
		}
	}
	if int(NumTypes) != len(bridges)+len(opens) {
		t.Fatal("type count mismatch")
	}
}

func TestTypeLayerAndString(t *testing.T) {
	if ExtraMetal1.Layer() != geom.LayerMetal1 || MissingVia.Layer() != geom.LayerVia {
		t.Fatal("layer mapping wrong")
	}
	for ty := Type(0); ty < NumTypes; ty++ {
		if ty.String() == "" {
			t.Fatalf("type %d has no name", ty)
		}
		_ = ty.Layer() // must not panic
	}
}

func TestSizeDistNormalization(t *testing.T) {
	d := SizeDist{X0: 3}
	// CDF properties.
	if d.CDF(0) != 0 {
		t.Fatal("CDF(0) must be 0")
	}
	if got := d.CDF(d.X0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(x0) = %g, want 0.5 (half the mass below the peak)", got)
	}
	if got := d.CDF(1e9); math.Abs(got-1) > 1e-9 {
		t.Fatalf("CDF(∞) = %g", got)
	}
	// PDF integrates to CDF (numeric check).
	var integral float64
	dx := 0.001
	for x := 0.0; x < 30; x += dx {
		integral += d.PDF(x+dx/2) * dx
	}
	if math.Abs(integral-d.CDF(30)) > 1e-3 {
		t.Fatalf("∫PDF = %g vs CDF(30) = %g", integral, d.CDF(30))
	}
	// Peak at X0 and 1/x³ tail.
	if d.PDF(d.X0) < d.PDF(d.X0/2) || d.PDF(d.X0) < d.PDF(2*d.X0) {
		t.Fatal("PDF must peak at X0")
	}
	if r := d.PDF(10) / d.PDF(20); math.Abs(r-8) > 1e-9 {
		t.Fatalf("tail must fall as 1/x³: ratio %g, want 8", r)
	}
}

func TestSizeDistCDFMonotoneProperty(t *testing.T) {
	d := SizeDist{X0: 2.5}
	f := func(a, b uint16) bool {
		x, y := float64(a)/100, float64(b)/100
		if x > y {
			x, y = y, x
		}
		return d.CDF(x) <= d.CDF(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMatchesCDF(t *testing.T) {
	d := SizeDist{X0: 2}
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	var below, mid int
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		if x <= d.X0 {
			below++
		}
		if x <= 2*d.X0 {
			mid++
		}
	}
	if p := float64(below) / n; math.Abs(p-0.5) > 0.01 {
		t.Fatalf("P(x≤x0) = %g, want 0.5", p)
	}
	want := d.CDF(2 * d.X0) // 1 - 1/8 = 0.875
	if p := float64(mid) / n; math.Abs(p-want) > 0.01 {
		t.Fatalf("P(x≤2x0) = %g, want %g", p, want)
	}
}

func TestTypicalStatistics(t *testing.T) {
	s := Typical()
	if s.MaxSize <= 0 {
		t.Fatal("MaxSize must be positive")
	}
	var bridge, open float64
	for ty := Type(0); ty < NumTypes; ty++ {
		c := s.Classes[ty]
		if c.Type != ty {
			t.Fatalf("class %v mislabeled as %v", ty, c.Type)
		}
		if c.Density <= 0 || c.Size.X0 <= 0 {
			t.Fatalf("class %v unparameterized", ty)
		}
		if ty.Bridge() {
			bridge += c.Density
		} else {
			open += c.Density
		}
	}
	if bridge <= open {
		t.Fatalf("Typical() must be bridging-dominant: bridge %g vs open %g", bridge, open)
	}
	o := OpensDominant()
	bridge, open = 0, 0
	for ty := Type(0); ty < NumTypes; ty++ {
		if ty.Bridge() {
			bridge += o.Classes[ty].Density
		} else {
			open += o.Classes[ty].Density
		}
	}
	if open <= bridge {
		t.Fatal("OpensDominant() must flip the balance")
	}
}

func TestScaleAndTotalDensity(t *testing.T) {
	s := Typical()
	d0 := s.TotalDensity()
	s2 := s.Scale(2)
	if math.Abs(s2.TotalDensity()-2*d0) > 1e-9 {
		t.Fatal("Scale must multiply total density")
	}
	if math.Abs(s.TotalDensity()-d0) > 1e-12 {
		t.Fatal("Scale must not mutate the receiver")
	}
}

func TestStatisticsSample(t *testing.T) {
	s := Typical()
	rng := rand.New(rand.NewSource(7))
	area := geom.R(0, 0, 1000, 500)
	counts := make(map[Type]int)
	for i := 0; i < 20000; i++ {
		ty, size, p := s.Sample(rng, area)
		counts[ty]++
		if size <= 0 {
			t.Fatal("non-positive defect size")
		}
		if !area.Contains(p) {
			t.Fatalf("defect outside area: %v", p)
		}
	}
	// Most frequent type must be the densest one (extra-metal1).
	best, bestN := Type(0), -1
	for ty, n := range counts {
		if n > bestN {
			best, bestN = ty, n
		}
	}
	if best != ExtraMetal1 {
		t.Fatalf("densest class should dominate samples, got %v", best)
	}
}
