// Package defect models the spot-defect statistics of a CMOS process line:
// defect types (extra or missing material per mask layer, missing cuts),
// per-type densities, and the classical peaked defect-size distribution.
// These statistics drive fault weighting in the extraction step — the paper
// uses "defect density statistics similar to the ones given in [23, 21]"
// (Maly), which this package encodes with tunable parameters.
package defect

import (
	"fmt"
	"math"
	"math/rand"

	"defectsim/internal/geom"
)

// Type identifies a spot-defect mechanism.
type Type uint8

// Spot-defect mechanisms. Extra-material defects on conducting layers cause
// bridges (shorts); missing-material defects cause opens; missing cuts open
// the vertical connection they implement.
const (
	ExtraPoly Type = iota
	ExtraMetal1
	ExtraMetal2
	ExtraActive
	MissingPoly
	MissingMetal1
	MissingMetal2
	MissingActive
	MissingContact
	MissingVia
	NumTypes
)

var typeNames = [NumTypes]string{
	"extra-poly", "extra-metal1", "extra-metal2", "extra-active",
	"missing-poly", "missing-metal1", "missing-metal2", "missing-active",
	"missing-contact", "missing-via",
}

// String returns the conventional defect-type name.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("defect(%d)", uint8(t))
}

// Bridge reports whether the defect type causes shorts (extra material on a
// conducting layer).
func (t Type) Bridge() bool { return t <= ExtraActive }

// Open reports whether the defect type causes opens.
func (t Type) Open() bool { return !t.Bridge() }

// Layer returns the mask layer the defect type acts on. Missing cuts return
// the cut layer itself.
func (t Type) Layer() geom.Layer {
	switch t {
	case ExtraPoly, MissingPoly:
		return geom.LayerPoly
	case ExtraMetal1, MissingMetal1:
		return geom.LayerMetal1
	case ExtraMetal2, MissingMetal2:
		return geom.LayerMetal2
	case ExtraActive, MissingActive:
		return geom.LayerNDiff // active defects are checked on both diffusions
	case MissingContact:
		return geom.LayerContact
	case MissingVia:
		return geom.LayerVia
	}
	panic("defect: bad type")
}

// SizeDist is the classical normalized spot-defect size density
//
//	f(x) = x/x0²          0 ≤ x ≤ x0
//	f(x) = x0²/x³         x > x0
//
// peaking at the resolution limit X0 with the empirical 1/x³ tail
// (Stapper / Ferris-Prabhu). Sizes are in λ.
type SizeDist struct {
	X0 float64 // peak (most likely) defect diameter, λ
}

// PDF returns f(x).
func (d SizeDist) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x <= d.X0 {
		return x / (d.X0 * d.X0)
	}
	return d.X0 * d.X0 / (x * x * x)
}

// CDF returns P(size ≤ x).
func (d SizeDist) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x <= d.X0 {
		return x * x / (2 * d.X0 * d.X0)
	}
	return 1 - d.X0*d.X0/(2*x*x)
}

// TailProb returns P(size > x) — the fraction of defects large enough to
// matter at a given spacing.
func (d SizeDist) TailProb(x float64) float64 { return 1 - d.CDF(x) }

// Sample draws a defect size using inverse-transform sampling.
func (d SizeDist) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	if u < 0.5 {
		return d.X0 * math.Sqrt(2*u)
	}
	return d.X0 / math.Sqrt(2*(1-u))
}

// Class groups the parameters of one defect mechanism.
type Class struct {
	Type Type
	// Density is the average number of defects of this type per 10⁶ λ² of
	// chip area (the absolute scale only matters up to the yield-scaling
	// step of the extraction pipeline).
	Density float64
	Size    SizeDist
}

// Statistics is the full spot-defect characterization of a process line.
type Statistics struct {
	Classes [NumTypes]Class
	// MaxSize truncates critical-area integration: defects larger than this
	// (λ) are ignored (their probability mass is negligible under the 1/x³
	// tail).
	MaxSize int
}

// Typical returns bridging-dominant statistics representative of the
// positive-photoresist CMOS lines discussed in the paper (§2: "when
// bridging faults are dominant ... positive photoresist technology"):
// extra-material densities well above missing-material densities, metal1
// dirtiest, and a 2λ resolution-limit peak.
func Typical() Statistics {
	mk := func(t Type, density, x0 float64) Class {
		return Class{Type: t, Density: density, Size: SizeDist{X0: x0}}
	}
	var s Statistics
	s.MaxSize = 24
	s.Classes[ExtraPoly] = mk(ExtraPoly, 0.9, 2)
	s.Classes[ExtraMetal1] = mk(ExtraMetal1, 1.6, 3)
	s.Classes[ExtraMetal2] = mk(ExtraMetal2, 0.8, 3)
	s.Classes[ExtraActive] = mk(ExtraActive, 0.4, 2)
	s.Classes[MissingPoly] = mk(MissingPoly, 0.25, 2)
	s.Classes[MissingMetal1] = mk(MissingMetal1, 0.35, 3)
	s.Classes[MissingMetal2] = mk(MissingMetal2, 0.20, 3)
	s.Classes[MissingActive] = mk(MissingActive, 0.10, 2)
	s.Classes[MissingContact] = mk(MissingContact, 0.05, 2)
	s.Classes[MissingVia] = mk(MissingVia, 0.06, 2)
	return s
}

// OpensDominant returns statistics with the extra/missing balance flipped —
// used by ablation experiments to show how the susceptibility ratio R moves
// when open faults dominate the defect mix.
func OpensDominant() Statistics {
	s := Typical()
	for t := Type(0); t < NumTypes; t++ {
		c := &s.Classes[t]
		switch {
		case t.Bridge():
			c.Density *= 0.2
		default:
			c.Density *= 5
		}
	}
	return s
}

// Scale returns a copy with every density multiplied by f (yield knob).
func (s Statistics) Scale(f float64) Statistics {
	for t := range s.Classes {
		s.Classes[t].Density *= f
	}
	return s
}

// TotalDensity returns the summed defect density over all types
// (defects / 10⁶ λ²).
func (s Statistics) TotalDensity() float64 {
	var d float64
	for _, c := range s.Classes {
		d += c.Density
	}
	return d
}

// Sample draws one random defect: its type (by density weight), size, and a
// uniform position inside area. Used by the Monte-Carlo validation
// experiments.
func (s Statistics) Sample(rng *rand.Rand, area geom.Rect) (Type, float64, geom.Point) {
	r := rng.Float64() * s.TotalDensity()
	var t Type
	for i, c := range s.Classes {
		if r < c.Density {
			t = Type(i)
			break
		}
		r -= c.Density
	}
	size := s.Classes[t].Size.Sample(rng)
	p := geom.Point{
		X: area.X0 + rng.Intn(area.W()+1),
		Y: area.Y0 + rng.Intn(area.H()+1),
	}
	return t, size, p
}
