package extract

import (
	"fmt"
	"math"
	"strings"

	"defectsim/internal/defect"
	"defectsim/internal/layout"
	"defectsim/internal/textplot"
)

// ClassContribution is one defect mechanism's share of the chip's fault
// budget: its total expected fault count (Σ A·D over the faults it
// induces) and the yield limited by that mechanism alone.
type ClassContribution struct {
	Type   defect.Type
	Weight float64
	Faults int // faults with a nonzero contribution from this class
}

// LimitedYield returns e^{−w}: the yield if this were the only defect
// mechanism (Stapper's per-mechanism yield decomposition — the product
// over classes equals the total Poisson yield).
func (c ClassContribution) LimitedYield() float64 { return math.Exp(-c.Weight) }

// ClassReport decomposes the extraction by defect mechanism: the pipeline
// is rerun with each class isolated, which is exact under the Poisson
// model because fault weights are linear in the class densities.
func ClassReport(L *layout.Layout, stats defect.Statistics) []ClassContribution {
	var out []ClassContribution
	for ty := defect.Type(0); ty < defect.NumTypes; ty++ {
		iso := stats
		for o := range iso.Classes {
			if defect.Type(o) != ty {
				iso.Classes[o].Density = 0
			}
		}
		list := Faults(L, iso)
		c := ClassContribution{Type: ty, Faults: len(list.Faults)}
		c.Weight = list.TotalWeight()
		out = append(out, c)
	}
	return out
}

// RenderClassReport draws the decomposition as a table, ending with the
// combined Poisson yield (the product of the per-class limited yields).
func RenderClassReport(report []ClassContribution) string {
	var b strings.Builder
	tb := textplot.Table{Headers: []string{"defect class", "faults", "Σ A·D", "limited yield"}}
	total := 0.0
	for _, c := range report {
		total += c.Weight
		tb.AddRow(c.Type.String(), c.Faults,
			fmt.Sprintf("%.5f", c.Weight), fmt.Sprintf("%.5f", c.LimitedYield()))
	}
	b.WriteString(tb.Render())
	fmt.Fprintf(&b, "combined Poisson yield: %.5f\n", math.Exp(-total))
	return b.String()
}
