// Package extract implements layout fault extraction in the style of the
// paper's lift tool: circuit-connectivity extraction from mask geometry
// (used as an LVS check of the generated layouts) and, in fault.go,
// inductive fault analysis — the weighted realistic fault list obtained by
// combining critical areas with spot-defect statistics.
package extract

import (
	"fmt"
	"sort"

	"defectsim/internal/geom"
	"defectsim/internal/layout"
)

// gridStep is the bucket size (λ) of the spatial hash used by the
// connectivity pass.
const gridStep = 64

// connects reports whether shapes a and b are electrically continuous by
// construction: same conducting layer and touching, or joined through a
// contact/via cut that overlaps the routed layer.
func connects(a, b geom.Shape) bool {
	if a.Layer == b.Layer {
		return a.Layer.Conducting() && a.Rect.Touches(b.Rect)
	}
	// Order so that a is the cut.
	if b.Layer == geom.LayerContact || b.Layer == geom.LayerVia {
		a, b = b, a
	}
	switch a.Layer {
	case geom.LayerContact:
		switch b.Layer {
		case geom.LayerPoly, geom.LayerNDiff, geom.LayerPDiff, geom.LayerMetal1:
			return a.Rect.Overlaps(b.Rect)
		}
	case geom.LayerVia:
		switch b.Layer {
		case geom.LayerMetal1, geom.LayerMetal2:
			return a.Rect.Overlaps(b.Rect)
		}
	}
	return false
}

// Connectivity computes the electrically connected components of the
// net-tagged shapes in ss (shapes with Net < 0 — wells, transistor channels
// — do not conduct and are ignored). It returns comp, with comp[i] the
// component of shape i (-1 for ignored shapes), and the component count.
func Connectivity(ss *geom.ShapeSet) (comp []int, n int) {
	shapes := ss.Shapes
	active := make([]int, 0, len(shapes))
	for i, sh := range shapes {
		if sh.Net >= 0 {
			active = append(active, i)
		}
	}
	ds := geom.NewDisjointSet(len(shapes))

	// Spatial hash: bucket each shape by the grid cells its rect covers.
	buckets := make(map[[2]int][]int)
	for _, i := range active {
		r := shapes[i].Rect
		for gx := floorDiv(r.X0, gridStep); gx <= floorDiv(r.X1, gridStep); gx++ {
			for gy := floorDiv(r.Y0, gridStep); gy <= floorDiv(r.Y1, gridStep); gy++ {
				buckets[[2]int{gx, gy}] = append(buckets[[2]int{gx, gy}], i)
			}
		}
	}
	for _, idx := range buckets {
		for a := 0; a < len(idx); a++ {
			for b := a + 1; b < len(idx); b++ {
				i, j := idx[a], idx[b]
				if ds.Find(i) == ds.Find(j) {
					continue
				}
				if connects(shapes[i], shapes[j]) {
					ds.Union(i, j)
				}
			}
		}
	}

	comp = make([]int, len(shapes))
	label := make(map[int]int)
	for i := range comp {
		comp[i] = -1
	}
	for _, i := range active {
		r := ds.Find(i)
		id, ok := label[r]
		if !ok {
			id = len(label)
			label[r] = id
		}
		comp[i] = id
	}
	return comp, len(label)
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// VerifyLVS checks that the drawn geometry of L realizes exactly the
// intended connectivity: every extracted component carries a single net tag
// (no shorts) and every net's shapes fall into a single component (no
// opens), except that nets are allowed to be absent from the geometry when
// they have no shapes at all.
func VerifyLVS(L *layout.Layout) error {
	comp, _ := Connectivity(&L.Shapes)
	compNet := map[int]int{}
	netComp := make(map[int]map[int]bool)
	for i, sh := range L.Shapes.Shapes {
		c := comp[i]
		if c < 0 {
			continue
		}
		if prev, ok := compNet[c]; ok && prev != sh.Net {
			return fmt.Errorf("lvs %s: short: nets %q and %q share a component",
				L.Name, L.Nets[prev].Name, L.Nets[sh.Net].Name)
		}
		compNet[c] = sh.Net
		if netComp[sh.Net] == nil {
			netComp[sh.Net] = map[int]bool{}
		}
		netComp[sh.Net][c] = true
	}
	var broken []string
	for net, comps := range netComp {
		// Internal series-diffusion nets legitimately consist of a single
		// isolated diffusion segment per stage; they may have several
		// components only if the cell instantiates several stages — they
		// never do, so one component is still required.
		if len(comps) > 1 {
			broken = append(broken, L.Nets[net].Name)
		}
	}
	if len(broken) > 0 {
		sort.Strings(broken)
		return fmt.Errorf("lvs %s: open: nets split into multiple components: %v", L.Name, broken)
	}
	return nil
}
