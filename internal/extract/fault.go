package extract

import (
	"context"
	"sort"

	"defectsim/internal/critarea"
	"defectsim/internal/defect"
	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/geom"
	"defectsim/internal/layout"
	"defectsim/internal/obs"
)

// densityScale converts defect densities (per 10⁶ λ²) times critical areas
// (λ²) into expected defect counts.
const densityScale = 1e-6

// bridgeLayers lists, per extra-material defect class, the layers whose
// shapes it can short together (in a fixed order so that floating-point
// accumulation is deterministic). Active spot defects bridge both
// diffusion polarities.
var bridgeLayers = []struct {
	dt     defect.Type
	layers []geom.Layer
}{
	{defect.ExtraPoly, []geom.Layer{geom.LayerPoly}},
	{defect.ExtraMetal1, []geom.Layer{geom.LayerMetal1}},
	{defect.ExtraMetal2, []geom.Layer{geom.LayerMetal2}},
	{defect.ExtraActive, []geom.Layer{geom.LayerNDiff, geom.LayerPDiff}},
}

// openLayers lists wire layers with their missing-material defect class, in
// deterministic order.
var openLayers = []struct {
	layer geom.Layer
	dt    defect.Type
}{
	{geom.LayerPoly, defect.MissingPoly},
	{geom.LayerMetal1, defect.MissingMetal1},
	{geom.LayerMetal2, defect.MissingMetal2},
	{geom.LayerNDiff, defect.MissingActive},
	{geom.LayerPDiff, defect.MissingActive},
}

// Faults performs inductive fault analysis on L: every extra-material
// defect class contributes bridge faults between net pairs that come within
// the maximum defect size, and every missing-material/cut class contributes
// open faults, attributed either to a specific receiving gate input
// (KindOpenInput — the input's pad/stub/poly branch) or to the net trunk
// (KindOpenDriver — tracks, feedthroughs, driver straps and diffusion).
// Fault weights are size-averaged critical areas times class densities
// (w = A·D, paper eq. 4). Power nets contribute bridges (a signal shorted
// to a rail is a classic stuck-like defect) but not opens (rails are wide
// and redundant).
func Faults(L *layout.Layout, stats defect.Statistics) *fault.List {
	return FaultsObs(L, stats, nil)
}

// FaultsCtx is FaultsObs with cancellation: the context is consulted on
// entry (extraction of one layout is a single bounded unit of work) and
// the extract.faults fault-injection hook fires before any analysis.
func FaultsCtx(ctx context.Context, L *layout.Layout, stats defect.Statistics, reg *obs.Registry) (*fault.List, error) {
	if err := faultinject.Fire(ctx, faultinject.HookExtractFaults); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return FaultsObs(L, stats, reg), nil
}

// FaultsObs is Faults with metrics: per-kind fault counts and a weight
// histogram land in reg (nil registry: no recording, no cost).
func FaultsObs(L *layout.Layout, stats defect.Statistics, reg *obs.Registry) *fault.List {
	list := &fault.List{}
	extractBridges(L, stats, list)
	extractOpens(L, stats, list)
	list.SortByWeight()
	if reg != nil {
		var kinds [3]*obs.Counter
		kinds[fault.KindBridge] = reg.Counter("extract_bridge_faults")
		kinds[fault.KindOpenInput] = reg.Counter("extract_open_input_faults")
		kinds[fault.KindOpenDriver] = reg.Counter("extract_open_driver_faults")
		hist := reg.Histogram("extract_fault_weight", obs.ExpBuckets(1e-6, 10, 6))
		for _, f := range list.Faults {
			if int(f.Kind) < len(kinds) {
				kinds[f.Kind].Inc()
			}
			hist.Observe(f.Weight)
		}
	}
	return list
}

type pairKey struct{ a, b int }

func extractBridges(L *layout.Layout, stats defect.Statistics, list *fault.List) {
	maxX := stats.MaxSize
	bridgeW := make(map[pairKey]float64)

	for _, bl := range bridgeLayers {
		dt, layers := bl.dt, bl.layers
		cls := stats.Classes[dt]
		if cls.Density == 0 {
			continue
		}
		// Collect net-tagged shapes on the class's layers.
		type idxShape struct {
			net  int
			rect geom.Rect
		}
		var shapes []idxShape
		for _, sh := range L.Shapes.Shapes {
			if sh.Net < 0 {
				continue
			}
			for _, l := range layers {
				if sh.Layer == l {
					shapes = append(shapes, idxShape{sh.Net, sh.Rect})
					break
				}
			}
		}
		// Spatial hash to find cross-net shape pairs within reach.
		step := 4 * maxX
		buckets := make(map[[2]int][]int)
		for i, s := range shapes {
			r := s.rect.Expand(maxX)
			for gx := floorDiv(r.X0, step); gx <= floorDiv(r.X1, step); gx++ {
				for gy := floorDiv(r.Y0, step); gy <= floorDiv(r.Y1, step); gy++ {
					buckets[[2]int{gx, gy}] = append(buckets[[2]int{gx, gy}], i)
				}
			}
		}
		near := make(map[pairKey]*[2][]geom.Rect) // pair -> nearby shapes per side
		type seenKey struct {
			p    pairKey
			i, j int
		}
		seen := make(map[seenKey]bool)
		for _, idx := range buckets {
			for ai := 0; ai < len(idx); ai++ {
				for bi := ai + 1; bi < len(idx); bi++ {
					i, j := idx[ai], idx[bi]
					si, sj := shapes[i], shapes[j]
					if si.net == sj.net {
						continue
					}
					dx, dy := si.rect.GapTo(sj.rect)
					g := dx
					if dy > g {
						g = dy
					}
					if g >= maxX {
						continue
					}
					a, b := si.net, sj.net
					ri, rj := i, j
					if a > b {
						a, b = b, a
						ri, rj = rj, ri
					}
					sk := seenKey{pairKey{a, b}, ri, rj}
					if seen[sk] {
						continue
					}
					seen[sk] = true
					entry := near[pairKey{a, b}]
					if entry == nil {
						entry = new([2][]geom.Rect)
						near[pairKey{a, b}] = entry
					}
					entry[0] = append(entry[0], shapes[ri].rect)
					entry[1] = append(entry[1], shapes[rj].rect)
				}
			}
		}
		for pk, sets := range near {
			a := dedupRects(sets[0])
			b := dedupRects(sets[1])
			avg := critarea.AvgShortArea(a, b, cls.Size, maxX)
			if avg > 0 {
				bridgeW[pk] += avg * cls.Density * densityScale
			}
		}
	}

	keys := make([]pairKey, 0, len(bridgeW))
	for pk := range bridgeW {
		keys = append(keys, pk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, pk := range keys {
		list.Faults = append(list.Faults, fault.Realistic{
			Kind: fault.KindBridge, NetA: pk.a, NetB: pk.b,
			Inst: -1, Node: -1, Weight: bridgeW[pk],
		})
	}
}

func dedupRects(rs []geom.Rect) []geom.Rect {
	seen := make(map[geom.Rect]bool, len(rs))
	out := rs[:0]
	for _, r := range rs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

func extractOpens(L *layout.Layout, stats defect.Statistics, list *fault.List) {
	// Receiver branch regions per net: the vertical column over each input
	// pad, from the cell bottom to the top of the pin's routing stub.
	type branchKey struct{ inst, node int }
	type branch struct {
		net    int
		region geom.Rect
	}
	branches := make(map[branchKey][]branch) // one entry per input pad
	branchOrder := []branchKey{}
	for _, p := range L.Pins {
		if !p.Input || p.Net <= layout.NetVDD {
			continue
		}
		instY := L.RowY[p.Row]
		top := p.StubTop
		if top < p.Pad.Y1 {
			top = p.Pad.Y1
		}
		bk := branchKey{p.Inst, p.Node}
		if _, ok := branches[bk]; !ok {
			branchOrder = append(branchOrder, bk)
		}
		branches[bk] = append(branches[bk], branch{
			net:    p.Net,
			region: geom.R(p.Pad.X0-1, instY, p.Pad.X1+1, top),
		})
	}

	// Partition each signal net's shapes into branch wires and trunk wires.
	type wires struct {
		byLayer map[geom.Layer][]geom.Rect
		cuts    map[geom.Layer][]geom.Rect
	}
	newWires := func() *wires {
		return &wires{byLayer: map[geom.Layer][]geom.Rect{}, cuts: map[geom.Layer][]geom.Rect{}}
	}
	trunk := make(map[int]*wires)
	branchWires := make(map[branchKey]*wires)
	branchNet := make(map[branchKey]int)

	for _, sh := range L.Shapes.Shapes {
		if sh.Net <= layout.NetVDD {
			continue
		}
		isCut := sh.Layer == geom.LayerContact || sh.Layer == geom.LayerVia
		if !isCut && !sh.Layer.Conducting() {
			continue
		}
		// Does the shape fall inside a receiver branch of its net?
		var owner *wires
		for bk, brs := range branches {
			for _, br := range brs {
				if br.net == sh.Net && br.region.ContainsRect(sh.Rect) {
					if branchWires[bk] == nil {
						branchWires[bk] = newWires()
						branchNet[bk] = sh.Net
					}
					owner = branchWires[bk]
					break
				}
			}
			if owner != nil {
				break
			}
		}
		if owner == nil {
			if trunk[sh.Net] == nil {
				trunk[sh.Net] = newWires()
			}
			owner = trunk[sh.Net]
		}
		if isCut {
			owner.cuts[sh.Layer] = append(owner.cuts[sh.Layer], sh.Rect)
		} else {
			owner.byLayer[sh.Layer] = append(owner.byLayer[sh.Layer], sh.Rect)
		}
	}

	weightOf := func(w *wires) float64 {
		var sum float64
		for _, ol := range openLayers {
			rects := w.byLayer[ol.layer]
			if len(rects) == 0 {
				continue
			}
			cls := stats.Classes[ol.dt]
			if cls.Density == 0 {
				continue
			}
			sum += critarea.AvgOpenArea(rects, cls.Size, stats.MaxSize) * cls.Density * densityScale
		}
		for _, cl := range []struct {
			layer geom.Layer
			dt    defect.Type
		}{{geom.LayerContact, defect.MissingContact}, {geom.LayerVia, defect.MissingVia}} {
			cuts := w.cuts[cl.layer]
			if len(cuts) == 0 {
				continue
			}
			cls := stats.Classes[cl.dt]
			if cls.Density == 0 {
				continue
			}
			sum += critarea.AvgCutOpenArea(cuts, cls.Size, stats.MaxSize) * cls.Density * densityScale
		}
		return sum
	}

	for _, bk := range branchOrder {
		w := branchWires[bk]
		if w == nil {
			continue
		}
		wt := weightOf(w)
		if wt <= 0 {
			continue
		}
		list.Faults = append(list.Faults, fault.Realistic{
			Kind: fault.KindOpenInput, NetA: branchNet[bk], NetB: -1,
			Inst: bk.inst, Node: bk.node, Weight: wt,
		})
	}
	nets := make([]int, 0, len(trunk))
	for net := range trunk {
		nets = append(nets, net)
	}
	sort.Ints(nets)
	for _, net := range nets {
		wt := weightOf(trunk[net])
		if wt <= 0 {
			continue
		}
		list.Faults = append(list.Faults, fault.Realistic{
			Kind: fault.KindOpenDriver, NetA: net, NetB: -1,
			Inst: -1, Node: -1, Weight: wt,
		})
	}
}
