package extract

import (
	"math"
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/fault"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
)

func extractC17(t *testing.T) (*layout.Layout, *fault.List) {
	t.Helper()
	L, err := layout.Build(netlist.C17(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return L, Faults(L, defect.Typical())
}

func TestFaultsC17Basics(t *testing.T) {
	L, list := extractC17(t)
	if len(list.Faults) == 0 {
		t.Fatal("no faults extracted")
	}
	counts := list.CountByKind()
	if counts[fault.KindBridge] == 0 {
		t.Fatal("no bridges extracted")
	}
	if counts[fault.KindOpenInput] == 0 {
		t.Fatal("no input opens extracted")
	}
	if counts[fault.KindOpenDriver] == 0 {
		t.Fatal("no driver opens extracted")
	}
	for _, f := range list.Faults {
		if f.Weight <= 0 {
			t.Fatalf("non-positive weight: %v", f)
		}
		switch f.Kind {
		case fault.KindBridge:
			if f.NetA >= f.NetB {
				t.Fatalf("bridge nets unordered: %v", f)
			}
			if f.NetA < 0 || f.NetB >= len(L.Nets) {
				t.Fatalf("bridge nets out of range: %v", f)
			}
			if f.NetA == layout.NetGND && f.NetB == layout.NetVDD {
				continue // power-to-power bridge is possible and fine
			}
		case fault.KindOpenInput:
			if f.Inst < 0 || f.Inst >= len(L.Instances) {
				t.Fatalf("open-input instance out of range: %v", f)
			}
			if f.NetA <= layout.NetVDD {
				t.Fatalf("open on power net: %v", f)
			}
		case fault.KindOpenDriver:
			if f.NetA <= layout.NetVDD {
				t.Fatalf("open on power net: %v", f)
			}
		}
	}
	// Sorted by descending weight.
	for i := 1; i < len(list.Faults); i++ {
		if list.Faults[i].Weight > list.Faults[i-1].Weight {
			t.Fatal("fault list not sorted by weight")
		}
	}
}

func TestFaultsDeterministic(t *testing.T) {
	_, a := extractC17(t)
	_, b := extractC17(t)
	if len(a.Faults) != len(b.Faults) {
		t.Fatal("nondeterministic fault count")
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs between runs", i)
		}
	}
}

func TestEveryInputPinGetsOpenFault(t *testing.T) {
	L, list := extractC17(t)
	type bk struct{ inst, node int }
	got := map[bk]bool{}
	for _, f := range list.Faults {
		if f.Kind == fault.KindOpenInput {
			got[bk{f.Inst, f.Node}] = true
		}
	}
	want := map[bk]bool{}
	for _, p := range L.Pins {
		if p.Input && p.Net > layout.NetVDD {
			want[bk{p.Inst, p.Node}] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("open-input faults cover %d input pins, want %d", len(got), len(want))
	}
}

func TestBridgeNeighborhood(t *testing.T) {
	// On the c432-class layout, most nets bridge to only a few geometric
	// neighbors: the pair count must be far below the all-pairs bound but
	// large enough to be interesting.
	L, err := layout.Build(netlist.C432Class(1994), nil)
	if err != nil {
		t.Fatal(err)
	}
	list := Faults(L, defect.Typical())
	nb := list.CountByKind()[fault.KindBridge]
	n := len(L.Nets)
	if nb < n/2 {
		t.Fatalf("too few bridges: %d for %d nets", nb, n)
	}
	if nb > n*n/8 {
		t.Fatalf("bridge count %d suspiciously close to all-pairs for %d nets", nb, n)
	}
}

func TestWeightDispersion(t *testing.T) {
	// Paper fig. 3: fault weights span several decades. Require ≥ 2.5
	// decades between the 5th and 95th percentile on the c432-class layout.
	L, err := layout.Build(netlist.C432Class(1994), nil)
	if err != nil {
		t.Fatal(err)
	}
	list := Faults(L, defect.Typical())
	ws := make([]float64, 0, len(list.Faults))
	for _, f := range list.Faults {
		ws = append(ws, f.Weight)
	}
	// list is sorted descending already.
	hi := ws[len(ws)*5/100]
	lo := ws[len(ws)*95/100]
	if span := math.Log10(hi / lo); span < 2.0 {
		t.Fatalf("weight dispersion only %.2f decades (hi=%g lo=%g)", span, hi, lo)
	}
}

func TestBridgesDominateTypicalStats(t *testing.T) {
	// Typical() encodes a bridging-dominant line: total bridge weight must
	// exceed total open weight (the regime in which the paper finds R > 1).
	L, err := layout.Build(netlist.C432Class(1994), nil)
	if err != nil {
		t.Fatal(err)
	}
	list := Faults(L, defect.Typical())
	var wb, wo float64
	for _, f := range list.Faults {
		if f.Kind == fault.KindBridge {
			wb += f.Weight
		} else {
			wo += f.Weight
		}
	}
	if wb <= wo {
		t.Fatalf("bridges (%g) must dominate opens (%g) under Typical()", wb, wo)
	}
	// And the flipped statistics must flip the balance.
	list2 := Faults(L, defect.OpensDominant())
	wb, wo = 0, 0
	for _, f := range list2.Faults {
		if f.Kind == fault.KindBridge {
			wb += f.Weight
		} else {
			wo += f.Weight
		}
	}
	if wo <= wb {
		t.Fatalf("opens (%g) must dominate bridges (%g) under OpensDominant()", wo, wb)
	}
}

func TestZeroDensityProducesNoFaults(t *testing.T) {
	L, err := layout.Build(netlist.C17(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var stats defect.Statistics
	stats.MaxSize = 24
	list := Faults(L, stats)
	if len(list.Faults) != 0 {
		t.Fatalf("zero densities must give empty list, got %d", len(list.Faults))
	}
}
