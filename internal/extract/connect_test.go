package extract

import (
	"testing"

	"defectsim/internal/geom"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
)

func TestConnectivitySimple(t *testing.T) {
	var ss geom.ShapeSet
	// Net A: two touching metal1 rects plus a via to metal2.
	ss.AddNet(geom.LayerMetal1, geom.R(0, 0, 10, 2), 0)
	ss.AddNet(geom.LayerMetal1, geom.R(10, 0, 20, 2), 0)
	ss.AddNet(geom.LayerVia, geom.R(2, 0, 4, 2), 0)
	ss.AddNet(geom.LayerMetal2, geom.R(2, 0, 4, 30), 0)
	// Net B: metal1 crossing net A's metal2 (no via) — stays separate.
	ss.AddNet(geom.LayerMetal1, geom.R(0, 10, 10, 12), 1)
	// Untagged well: ignored.
	ss.AddNet(geom.LayerNWell, geom.R(-5, -5, 50, 50), -1)

	comp, n := Connectivity(&ss)
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] || comp[2] != comp[3] {
		t.Fatalf("net A shapes not merged: %v", comp)
	}
	if comp[4] == comp[0] {
		t.Fatal("net B merged with net A")
	}
	if comp[5] != -1 {
		t.Fatal("untagged shape must be ignored")
	}
}

func TestConnectivityCutRequiresOverlap(t *testing.T) {
	var ss geom.ShapeSet
	// Via only abuts the metal2 (no interior overlap): not connected.
	ss.AddNet(geom.LayerMetal1, geom.R(0, 0, 4, 4), 0)
	ss.AddNet(geom.LayerVia, geom.R(0, 0, 2, 2), 0)
	ss.AddNet(geom.LayerMetal2, geom.R(2, 0, 6, 4), 0)
	comp, n := Connectivity(&ss)
	if n != 2 {
		t.Fatalf("abutting cut must not connect: %d components (%v)", n, comp)
	}
}

func TestConnectivityPolyDiffCross(t *testing.T) {
	// Poly crossing diffusion is a transistor, not a connection.
	var ss geom.ShapeSet
	ss.AddNet(geom.LayerPoly, geom.R(4, 0, 6, 20), 0)
	ss.AddNet(geom.LayerNDiff, geom.R(0, 8, 10, 12), 1)
	if _, n := Connectivity(&ss); n != 2 {
		t.Fatal("poly over diffusion must stay disconnected")
	}
}

func TestLVSAllBenchmarks(t *testing.T) {
	circuits := []*netlist.Netlist{
		netlist.C17(),
		netlist.RippleAdder(4),
		netlist.MuxTree(2),
		netlist.ParityTree(5),
		netlist.Comparator(4),
		netlist.Decoder(2),
		netlist.C432Class(1994),
	}
	for _, nl := range circuits {
		L, err := layout.Build(nl, nil)
		if err != nil {
			t.Fatalf("%s: %v", nl.Name, err)
		}
		if err := VerifyLVS(L); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestLVSDetectsInjectedShort(t *testing.T) {
	L, err := layout.Build(netlist.C17(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Find two distinct signal nets with metal1 and bridge them.
	var netA, netB = -1, -1
	var ra, rb geom.Rect
	for _, sh := range L.Shapes.Shapes {
		if sh.Layer != geom.LayerMetal1 || sh.Net <= layout.NetVDD {
			continue
		}
		if netA < 0 {
			netA, ra = sh.Net, sh.Rect
		} else if sh.Net != netA {
			netB, rb = sh.Net, sh.Rect
			break
		}
	}
	if netB < 0 {
		t.Fatal("need two nets")
	}
	bridge := ra.Union(rb)
	L.Shapes.AddNet(geom.LayerMetal1, bridge, netA)
	if err := VerifyLVS(L); err == nil {
		t.Fatal("LVS must flag the injected short")
	}
}

func TestLVSDetectsInjectedOpen(t *testing.T) {
	L, err := layout.Build(netlist.C17(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Break a net by replacing one of its metal2 stubs with a far-away rect.
	for i, sh := range L.Shapes.Shapes {
		if sh.Layer == geom.LayerMetal2 && sh.Net > layout.NetVDD {
			L.Shapes.Shapes[i].Rect = sh.Rect.Translate(100000, 100000)
			break
		}
	}
	if err := VerifyLVS(L); err == nil {
		t.Fatal("LVS must flag the injected open")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{10, 64, 0}, {64, 64, 1}, {-1, 64, -1}, {-64, 64, -1}, {-65, 64, -2}, {0, 64, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
