package extract

import (
	"math"
	"strings"
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
)

func TestClassReportDecomposesTotalWeight(t *testing.T) {
	L, err := layout.Build(netlist.RippleAdder(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := defect.Typical()
	report := ClassReport(L, stats)
	if len(report) != int(defect.NumTypes) {
		t.Fatalf("report covers %d classes", len(report))
	}
	var sum float64
	for _, c := range report {
		if c.Weight < 0 {
			t.Fatal("negative class weight")
		}
		sum += c.Weight
	}
	// Linearity: per-class weights must add up to the combined extraction.
	full := Faults(L, stats)
	if math.Abs(sum-full.TotalWeight()) > 1e-9*(1+sum) {
		t.Fatalf("class weights sum %.6g vs combined %.6g", sum, full.TotalWeight())
	}
	// Product of limited yields equals the Poisson yield.
	prod := 1.0
	for _, c := range report {
		prod *= c.LimitedYield()
	}
	if math.Abs(prod-full.Yield()) > 1e-9 {
		t.Fatalf("yield product %.6g vs %.6g", prod, full.Yield())
	}
	// Bridging-dominant statistics: extra-metal1 must be the largest
	// contributor among bridges on this routed layout.
	byType := map[defect.Type]float64{}
	for _, c := range report {
		byType[c.Type] = c.Weight
	}
	if byType[defect.ExtraMetal1] <= byType[defect.ExtraPoly] {
		t.Fatal("extra-metal1 should dominate extra-poly on a routing-heavy layout")
	}
	s := RenderClassReport(report)
	if !strings.Contains(s, "extra-metal1") || !strings.Contains(s, "combined Poisson yield") {
		t.Fatalf("render:\n%s", s)
	}
}
