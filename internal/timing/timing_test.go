package timing

import (
	"math"
	"testing"

	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
)

// unitModel gives every gate delay 1 regardless of type or load.
func unitModel() DelayModel {
	m := DelayModel{Intrinsic: map[netlist.GateType]float64{}, LoadFactor: 0}
	for t := netlist.Buf; t <= netlist.Xnor; t++ {
		m.Intrinsic[t] = 1
	}
	return m
}

func TestAnalyzeInverterChain(t *testing.T) {
	nl := netlist.New("chain")
	a := nl.AddPI("a")
	n := a
	for i := 0; i < 5; i++ {
		n = nl.AddGate(netlist.Not, "", n)
	}
	nl.MarkPO(n)
	an, err := Analyze(nl, unitModel())
	if err != nil {
		t.Fatal(err)
	}
	if an.CriticalDelay != 5 {
		t.Fatalf("chain of 5 unit gates: critical delay %g", an.CriticalDelay)
	}
	if an.Arrival[a] != 0 || an.Arrival[n] != 5 {
		t.Fatal("arrival times wrong")
	}
	// Every net on the single path has zero slack.
	for net := 0; net < nl.NumNets(); net++ {
		if s := an.Slack(net); math.Abs(s) > 1e-12 {
			t.Fatalf("net %d slack %g, want 0", net, s)
		}
	}
}

func TestAnalyzeSlackOffCriticalPath(t *testing.T) {
	// y = AND(slowpath, fast PI): the fast PI has positive slack.
	nl := netlist.New("slack")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	n1 := nl.AddGate(netlist.Not, "n1", a)
	n2 := nl.AddGate(netlist.Not, "n2", n1)
	y := nl.AddGate(netlist.And, "y", n2, b)
	nl.MarkPO(y)
	an, err := Analyze(nl, unitModel())
	if err != nil {
		t.Fatal(err)
	}
	if an.CriticalDelay != 3 {
		t.Fatalf("critical delay %g", an.CriticalDelay)
	}
	if s := an.Slack(b); math.Abs(s-2) > 1e-12 {
		t.Fatalf("fast input slack %g, want 2", s)
	}
	if s := an.Slack(a); math.Abs(s) > 1e-12 {
		t.Fatalf("critical input slack %g, want 0", s)
	}
}

func TestLoadDependentDelay(t *testing.T) {
	// A net with fanout 3 must slow its driver versus fanout 1.
	nl := netlist.New("load")
	a := nl.AddPI("a")
	n := nl.AddGate(netlist.Not, "n", a)
	y1 := nl.AddGate(netlist.Not, "y1", n)
	y2 := nl.AddGate(netlist.Not, "y2", n)
	y3 := nl.AddGate(netlist.Not, "y3", n)
	nl.MarkPO(y1)
	nl.MarkPO(y2)
	nl.MarkPO(y3)
	m := DefaultDelays()
	an, err := Analyze(nl, m)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Intrinsic[netlist.Not] + 3*m.LoadFactor
	if math.Abs(an.GateDelay[0]-want) > 1e-12 {
		t.Fatalf("loaded inverter delay %g, want %g", an.GateDelay[0], want)
	}
}

func TestKLongestPathsOrderAndCount(t *testing.T) {
	nl := netlist.RippleAdder(4)
	paths, err := KLongestPaths(nl, DefaultDelays(), 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 25 {
		t.Fatalf("got %d paths", len(paths))
	}
	an, _ := Analyze(nl, DefaultDelays())
	if math.Abs(paths[0].Delay-an.CriticalDelay) > 1e-9 {
		t.Fatalf("longest path %g vs critical delay %g", paths[0].Delay, an.CriticalDelay)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Delay > paths[i-1].Delay+1e-12 {
			t.Fatalf("paths out of order at %d", i)
		}
	}
	// Structural sanity: consecutive nets connected through the listed gate.
	for _, p := range paths {
		if len(p.Gates) != len(p.Nets)-1 {
			t.Fatal("gate/net count mismatch")
		}
		for i, gi := range p.Gates {
			g := nl.Gates[gi]
			if g.Out != p.Nets[i+1] {
				t.Fatal("gate does not drive the next net")
			}
			found := false
			for _, in := range g.Inputs {
				if in == p.Nets[i] {
					found = true
				}
			}
			if !found {
				t.Fatal("gate does not read the previous net")
			}
		}
		if p.String() == "" {
			t.Fatal("string")
		}
	}
	// The adder's longest path runs along the carry chain: it must start
	// at A0/B0/CIN and end at COUT or S3.
	first := paths[0]
	startName := nl.NetNames[first.Nets[0]]
	if startName != "A0" && startName != "B0" && startName != "CIN" {
		t.Fatalf("longest path starts at %s", startName)
	}
}

func TestKLongestPathsExhaustiveSmall(t *testing.T) {
	// Diamond: a → {inv chain of 2, buf} → AND → y. Unit delays: exactly
	// two PI→PO paths of lengths 4 (a,n1,n2,y... wait count) and 2+1.
	nl := netlist.New("diamond")
	a := nl.AddPI("a")
	n1 := nl.AddGate(netlist.Not, "n1", a)
	n2 := nl.AddGate(netlist.Not, "n2", n1)
	y := nl.AddGate(netlist.And, "y", n2, a)
	nl.MarkPO(y)
	paths, err := KLongestPaths(nl, unitModel(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("diamond has 2 paths, got %d", len(paths))
	}
	if paths[0].Delay != 3 || paths[1].Delay != 1 {
		t.Fatalf("path delays %g, %g; want 3, 1", paths[0].Delay, paths[1].Delay)
	}
}

func TestSensitized(t *testing.T) {
	// y = AND(a, b): path through a is sensitized iff b = 1.
	nl := netlist.New("and")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	y := nl.AddGate(netlist.And, "y", a, b)
	nl.MarkPO(y)
	p := Path{Nets: []int{a, y}, Gates: []int{0}}
	eval := func(av, bv uint64) []uint64 {
		v, err := nl.Eval([]uint64{av, bv})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !Sensitized(nl, p, eval(0, 1)) {
		t.Fatal("b=1 must sensitize the a-path")
	}
	if Sensitized(nl, p, eval(1, 0)) {
		t.Fatal("b=0 must block the a-path")
	}
	// XOR paths are always sensitized.
	nl2 := netlist.New("xor")
	a2 := nl2.AddPI("a")
	b2 := nl2.AddPI("b")
	y2 := nl2.AddGate(netlist.Xor, "y", a2, b2)
	nl2.MarkPO(y2)
	p2 := Path{Nets: []int{a2, y2}, Gates: []int{0}}
	v, _ := nl2.Eval([]uint64{0, 0})
	if !Sensitized(nl2, p2, v) {
		t.Fatal("XOR always sensitizes")
	}
}

func TestPathCoverage(t *testing.T) {
	// y = AND(a, b), path through a. Pairs:
	//  (a=0,b=1) → (a=1,b=1): launch + sensitized → detected at vector 2.
	nl := netlist.New("and")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	y := nl.AddGate(netlist.And, "y", a, b)
	nl.MarkPO(y)
	p := Path{Nets: []int{a, y}, Gates: []int{0}}

	res, err := PathCoverage(nl, []Path{p}, []gatesim.Pattern{{0, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 2 {
		t.Fatalf("detected at %d, want 2", res.DetectedAt[0])
	}
	// No launch (a constant): undetected.
	res, _ = PathCoverage(nl, []Path{p}, []gatesim.Pattern{{1, 1}, {1, 1}})
	if res.DetectedAt[0] != 0 {
		t.Fatal("no transition, no test")
	}
	// Launch but blocked (b=0 on capture): undetected.
	res, _ = PathCoverage(nl, []Path{p}, []gatesim.Pattern{{0, 1}, {1, 0}})
	if res.DetectedAt[0] != 0 {
		t.Fatal("blocked path must stay untested")
	}
	if res.Covered(2) != 0 {
		t.Fatal("coverage")
	}
	// Degenerate inputs.
	if r, err := PathCoverage(nl, []Path{p}, nil); err != nil || r.Covered(1) != 0 {
		t.Fatal("empty pattern set")
	}
	if _, err := PathCoverage(nl, []Path{p}, []gatesim.Pattern{{1}}); err == nil {
		t.Fatal("short pattern must error")
	}
}

func TestPathCoverageOnC432Class(t *testing.T) {
	// The 50 longest paths of the c432-class circuit under 256 random
	// pattern pairs: some but far from all get non-robust tests — the
	// quantitative reason delay testing needs dedicated generation.
	nl := netlist.C432Class(1994)
	paths, err := KLongestPaths(nl, DefaultDelays(), 50)
	if err != nil {
		t.Fatal(err)
	}
	pats := gatesim.RandomPatterns(nl, 256, 3)
	res, err := PathCoverage(nl, paths, pats)
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Covered(256)
	if cov <= 0 {
		t.Fatal("random pairs should test at least one long path")
	}
	if cov >= 1 {
		t.Fatal("full long-path coverage from random pairs is implausible")
	}
}

func TestAnalyzeRejectsUnknownType(t *testing.T) {
	nl := netlist.New("x")
	a := nl.AddPI("a")
	y := nl.AddGate(netlist.Not, "y", a)
	nl.MarkPO(y)
	m := DelayModel{Intrinsic: map[netlist.GateType]float64{}}
	if _, err := Analyze(nl, m); err == nil {
		t.Fatal("missing intrinsic delay must error")
	}
}

func TestRobustSensitized(t *testing.T) {
	// y = AND(a, b), path through a, rising 0→1 on a (ends non-controlling):
	// robust needs b steady at 1 across both vectors.
	nl := netlist.New("and")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	y := nl.AddGate(netlist.And, "y", a, b)
	nl.MarkPO(y)
	p := Path{Nets: []int{a, y}, Gates: []int{0}}
	eval := func(av, bv uint64) []uint64 {
		v, err := nl.Eval([]uint64{av, bv})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Rising a with steady b=1: robust.
	if !RobustSensitized(nl, p, eval(0, 1), eval(1, 1)) {
		t.Fatal("steady off-path must be robust")
	}
	// Rising a with b glitching 0→1: non-robust only.
	if RobustSensitized(nl, p, eval(0, 0), eval(1, 1)) {
		t.Fatal("off-path transition must break robustness for a rising on-path")
	}
	if !Sensitized(nl, p, eval(1, 1)) {
		t.Fatal("still non-robustly sensitized")
	}
	// Falling a (ends controlling 0): off-path stability NOT required.
	if !RobustSensitized(nl, p, eval(1, 0), eval(0, 1)) {
		t.Fatal("falling to controlling value tolerates off-path changes")
	}
}

func TestRobustCoverageSubsetOfNonRobust(t *testing.T) {
	nl := netlist.C432Class(1994)
	paths, err := KLongestPaths(nl, DefaultDelays(), 60)
	if err != nil {
		t.Fatal(err)
	}
	pats := gatesim.RandomPatterns(nl, 192, 5)
	nonRobust, err := PathCoverage(nl, paths, pats)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := PathCoverageRobust(nl, paths, pats)
	if err != nil {
		t.Fatal(err)
	}
	for i := range paths {
		if robust.DetectedAt[i] > 0 && nonRobust.DetectedAt[i] == 0 {
			t.Fatal("robust detection implies non-robust detection")
		}
		if robust.DetectedAt[i] > 0 && robust.DetectedAt[i] < nonRobust.DetectedAt[i] {
			t.Fatal("robust detection cannot precede non-robust detection")
		}
	}
	if robust.Covered(192) > nonRobust.Covered(192) {
		t.Fatal("robust coverage exceeds non-robust")
	}
}
