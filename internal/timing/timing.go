// Package timing provides gate-level static timing analysis and the
// path-delay fault machinery behind delay testing (the paper's ref. [8],
// Park–Mercer–Williams): a load-dependent linear delay model, arrival and
// required times with slacks, best-first enumeration of the K longest
// paths, and non-robust sensitization checks for two-pattern tests.
package timing

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"defectsim/internal/netlist"
)

// DelayModel is a linear gate-delay model: the delay through a gate is
// Intrinsic[type] + LoadFactor × fanout(output net). Units are arbitrary
// (normalized gate delays).
type DelayModel struct {
	Intrinsic  map[netlist.GateType]float64
	LoadFactor float64
}

// DefaultDelays returns a representative static-CMOS delay model: inverters
// fastest; series stacks (NAND/NOR grow with fan-in at the cell level, here
// folded into the per-type constant); XOR-class gates slowest (multi-stage
// cells).
func DefaultDelays() DelayModel {
	return DelayModel{
		Intrinsic: map[netlist.GateType]float64{
			netlist.Not:  1.0,
			netlist.Buf:  2.0, // two stages
			netlist.Nand: 1.4,
			netlist.Nor:  1.6,
			netlist.And:  2.4, // NAND + INV
			netlist.Or:   2.6, // NOR + INV
			netlist.Xor:  4.2, // four-stage ladder
			netlist.Xnor: 4.2,
		},
		LoadFactor: 0.25,
	}
}

// Analysis is the result of static timing analysis.
type Analysis struct {
	nl *netlist.Netlist
	// GateDelay[i] is the delay through gate i under the model.
	GateDelay []float64
	// Arrival[net] is the latest signal arrival at the net (PIs at 0).
	Arrival []float64
	// Required[net] is the latest allowed arrival such that every PO meets
	// the clock constraint (the critical-path delay by default).
	Required []float64
	// CriticalDelay is the largest PO arrival time.
	CriticalDelay float64
}

// Analyze runs STA over nl with the given delay model.
func Analyze(nl *netlist.Netlist, m DelayModel) (*Analysis, error) {
	order, _, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	fo := nl.Fanouts()
	a := &Analysis{
		nl:        nl,
		GateDelay: make([]float64, len(nl.Gates)),
		Arrival:   make([]float64, nl.NumNets()),
		Required:  make([]float64, nl.NumNets()),
	}
	for gi, g := range nl.Gates {
		intr, ok := m.Intrinsic[g.Type]
		if !ok {
			return nil, fmt.Errorf("timing: no intrinsic delay for %v", g.Type)
		}
		a.GateDelay[gi] = intr + m.LoadFactor*float64(len(fo[g.Out]))
	}
	for _, gi := range order {
		g := &nl.Gates[gi]
		at := 0.0
		for _, in := range g.Inputs {
			if a.Arrival[in] > at {
				at = a.Arrival[in]
			}
		}
		a.Arrival[g.Out] = at + a.GateDelay[gi]
	}
	for _, po := range nl.POs {
		if a.Arrival[po] > a.CriticalDelay {
			a.CriticalDelay = a.Arrival[po]
		}
	}
	// Required times backward from the POs at the critical delay.
	for n := range a.Required {
		a.Required[n] = math.Inf(1)
	}
	for _, po := range nl.POs {
		a.Required[po] = a.CriticalDelay
	}
	for i := len(order) - 1; i >= 0; i-- {
		gi := order[i]
		g := &nl.Gates[gi]
		req := a.Required[g.Out] - a.GateDelay[gi]
		for _, in := range g.Inputs {
			if req < a.Required[in] {
				a.Required[in] = req
			}
		}
	}
	return a, nil
}

// Slack returns required − arrival for a net (+Inf when the net reaches no
// constrained output).
func (a *Analysis) Slack(net int) float64 { return a.Required[net] - a.Arrival[net] }

// Path is a structural path from a primary input to a primary output,
// given as the sequence of nets it traverses (PI first, PO last) together
// with the gates between them.
type Path struct {
	Nets  []int
	Gates []int // Gates[i] drives Nets[i+1] from Nets[i]
	Delay float64
}

// String renders the path through net names.
func (p Path) String() string {
	names := make([]string, len(p.Nets))
	for i := range p.Nets {
		names[i] = fmt.Sprint(p.Nets[i])
	}
	return fmt.Sprintf("%.2f: %s", p.Delay, strings.Join(names, "→"))
}

// KLongestPaths enumerates the k structurally longest PI→PO paths in
// descending delay order (best-first search guided by the exact longest
// completion from every net, so no pruning error).
func KLongestPaths(nl *netlist.Netlist, m DelayModel, k int) ([]Path, error) {
	a, err := Analyze(nl, m)
	if err != nil {
		return nil, err
	}
	order, _, _ := nl.Levelize()
	fo := nl.Fanouts()
	isPO := make([]bool, nl.NumNets())
	for _, po := range nl.POs {
		isPO[po] = true
	}
	// maxToPO[net]: longest delay from net to any PO (0 if net is a PO and
	// −Inf if the net reaches no PO).
	maxToPO := make([]float64, nl.NumNets())
	for n := range maxToPO {
		maxToPO[n] = math.Inf(-1)
	}
	for _, po := range nl.POs {
		maxToPO[po] = 0
	}
	for i := len(order) - 1; i >= 0; i-- {
		gi := order[i]
		g := &nl.Gates[gi]
		if maxToPO[g.Out] == math.Inf(-1) {
			continue
		}
		cand := maxToPO[g.Out] + a.GateDelay[gi]
		for _, in := range g.Inputs {
			if cand > maxToPO[in] {
				maxToPO[in] = cand
			}
		}
	}

	// Best-first expansion from the PIs. Completed paths re-enter the heap
	// with bound = their exact delay so emission order is globally correct
	// even when a PO net feeds further logic.
	type partial struct {
		nets  []int
		gates []int
		sofar float64 // accumulated delay to the last net
		bound float64 // sofar + maxToPO(last); == sofar when done
		done  bool
	}
	var heap []partial
	push := func(p partial) {
		heap = append(heap, p)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].bound >= heap[i].bound {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() partial {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && heap[l].bound > heap[big].bound {
				big = l
			}
			if r < len(heap) && heap[r].bound > heap[big].bound {
				big = r
			}
			if big == i {
				break
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
		return top
	}
	for _, pi := range nl.PIs {
		if maxToPO[pi] == math.Inf(-1) {
			continue
		}
		push(partial{nets: []int{pi}, sofar: 0, bound: maxToPO[pi]})
	}
	var out []Path
	for len(heap) > 0 && len(out) < k {
		p := pop()
		last := p.nets[len(p.nets)-1]
		if p.done {
			out = append(out, Path{Nets: p.nets, Gates: p.gates, Delay: p.sofar})
			continue
		}
		if isPO[last] {
			push(partial{nets: p.nets, gates: p.gates, sofar: p.sofar, bound: p.sofar, done: true})
		}
		for _, gi := range fo[last] {
			g := &nl.Gates[gi]
			if maxToPO[g.Out] == math.Inf(-1) {
				continue
			}
			sofar := p.sofar + a.GateDelay[gi]
			np := partial{
				nets:  append(append([]int{}, p.nets...), g.Out),
				gates: append(append([]int{}, p.gates...), gi),
				sofar: sofar,
				bound: sofar + maxToPO[g.Out],
			}
			push(np)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Delay > out[j].Delay })
	return out, nil
}
