package timing

import (
	"fmt"

	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
)

// Path-delay fault testing: a path-delay fault on path P (a specific
// PI→PO path being slower than the clock) is tested by a vector pair
// (v1, v2) non-robustly when
//
//   - v2 statically sensitizes P: every off-path input of every gate on P
//     carries a non-controlling value under v2, so the transition entering
//     each gate determines its output, and
//   - v1 launches a transition at P's input (the path-input net toggles
//     between v1 and v2).
//
// Non-robust tests can be invalidated by off-path hazards; robust testing
// adds stability requirements. The non-robust criterion is the standard
// baseline and what this package checks.

// Sensitized reports whether v2Vals (full net values under the capture
// vector, 0/1 per net) statically sensitizes the path.
func Sensitized(nl *netlist.Netlist, p Path, v2Vals []uint64) bool {
	for i, gi := range p.Gates {
		g := &nl.Gates[gi]
		onPath := p.Nets[i]
		ctrl := controllingValue(g.Type)
		if ctrl < 0 {
			continue // XOR class and single-input gates always sensitize
		}
		for _, in := range g.Inputs {
			if in == onPath {
				continue
			}
			if int(v2Vals[in]&1) == ctrl {
				return false // off-path input at the controlling value
			}
		}
	}
	return true
}

// controllingValue returns the controlling input value of a gate type, or
// −1 when it has none.
func controllingValue(t netlist.GateType) int {
	switch t {
	case netlist.And, netlist.Nand:
		return 0
	case netlist.Or, netlist.Nor:
		return 1
	}
	return -1
}

// RobustSensitized reports whether the pair (v1Vals, v2Vals) tests the
// path robustly (Lin–Reddy conditions): in addition to static
// sensitization under v2, every off-path input of a gate whose on-path
// input ends at a NON-controlling value must hold its non-controlling
// value on BOTH vectors — otherwise an off-path hazard could mask the
// on-path transition. (When the on-path input ends at the controlling
// value, the final value alone decides the output and only v2 matters.)
// XOR-class gates propagate every input change and cannot be robustly
// tested through off-path stability; the classic convention treats their
// off-path inputs as needing stability too, which we enforce.
func RobustSensitized(nl *netlist.Netlist, p Path, v1Vals, v2Vals []uint64) bool {
	if !Sensitized(nl, p, v2Vals) {
		return false
	}
	for i, gi := range p.Gates {
		g := &nl.Gates[gi]
		onPath := p.Nets[i]
		ctrl := controllingValue(g.Type)
		finalOnPath := int(v2Vals[onPath] & 1)
		needStable := ctrl < 0 || finalOnPath != ctrl
		if !needStable {
			continue
		}
		for _, in := range g.Inputs {
			if in == onPath {
				continue
			}
			if v1Vals[in]&1 != v2Vals[in]&1 {
				return false // off-path input not steady
			}
		}
	}
	return true
}

// CoverageResult reports path-delay test coverage of a path set.
type CoverageResult struct {
	// DetectedAt[i] is the 1-based capture-vector index of the first pair
	// testing path i non-robustly (0 = never).
	DetectedAt []int
}

// Covered returns the fraction of paths tested by the first k vectors.
func (r *CoverageResult) Covered(k int) float64 {
	if len(r.DetectedAt) == 0 {
		return 0
	}
	n := 0
	for _, d := range r.DetectedAt {
		if d > 0 && d <= k {
			n++
		}
	}
	return float64(n) / float64(len(r.DetectedAt))
}

// PathCoverage scores the paths against consecutive pattern pairs under
// the non-robust criterion. See PathCoverageRobust for the robust variant.
func PathCoverage(nl *netlist.Netlist, paths []Path, patterns []gatesim.Pattern) (*CoverageResult, error) {
	return pathCoverage(nl, paths, patterns, false)
}

// PathCoverageRobust scores the paths under the robust criterion (a
// subset of the non-robust detections).
func PathCoverageRobust(nl *netlist.Netlist, paths []Path, patterns []gatesim.Pattern) (*CoverageResult, error) {
	return pathCoverage(nl, paths, patterns, true)
}

func pathCoverage(nl *netlist.Netlist, paths []Path, patterns []gatesim.Pattern, robust bool) (*CoverageResult, error) {
	res := &CoverageResult{DetectedAt: make([]int, len(paths))}
	for _, p := range patterns {
		if len(p) != len(nl.PIs) {
			return nil, fmt.Errorf("timing: pattern has %d bits, want %d", len(p), len(nl.PIs))
		}
	}
	if len(patterns) < 2 {
		return res, nil
	}
	vals := make([][]uint64, len(patterns))
	for i, p := range patterns {
		pis := make([]uint64, len(p))
		for j, b := range p {
			pis[j] = uint64(b)
		}
		v, err := nl.Eval(pis)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	live := make([]int, 0, len(paths))
	for i := range paths {
		live = append(live, i)
	}
	for k := 1; k < len(patterns) && len(live) > 0; k++ {
		v1, v2 := vals[k-1], vals[k]
		keep := live[:0]
		for _, pi := range live {
			p := paths[pi]
			in := p.Nets[0]
			launched := v1[in]&1 != v2[in]&1
			ok := false
			if launched {
				if robust {
					ok = RobustSensitized(nl, p, v1, v2)
				} else {
					ok = Sensitized(nl, p, v2)
				}
			}
			if ok {
				res.DetectedAt[pi] = k + 1
				continue
			}
			keep = append(keep, pi)
		}
		live = keep
	}
	return res, nil
}
