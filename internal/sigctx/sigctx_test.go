package sigctx

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

// raise delivers sig to the test process itself.
func raise(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), sig); err != nil {
		t.Fatal(err)
	}
}

func TestFirstSignalCancels(t *testing.T) {
	ctx, stop := Notify(context.Background(), syscall.SIGUSR1)
	defer stop()
	if ctx.Err() != nil {
		t.Fatal("context cancelled before any signal")
	}
	raise(t, syscall.SIGUSR1)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first signal did not cancel the context")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}
}

func TestSecondSignalForcesExit(t *testing.T) {
	forced := make(chan os.Signal, 1)
	orig := forceExit
	forceExit = func(sig os.Signal) { forced <- sig }
	defer func() { forceExit = orig }()

	ctx, stop := Notify(context.Background(), syscall.SIGUSR1)
	defer stop()
	raise(t, syscall.SIGUSR1)
	<-ctx.Done()
	raise(t, syscall.SIGUSR1)
	select {
	case sig := <-forced:
		if sig != syscall.SIGUSR1 {
			t.Fatalf("forced exit on %v, want SIGUSR1", sig)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not force exit")
	}
}

func TestStopReleasesWithoutSignal(t *testing.T) {
	ctx, stop := Notify(context.Background(), syscall.SIGUSR2)
	stop()
	stop() // idempotent
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop did not cancel the context")
	}
	// After stop the handler is released: a signal must not be swallowed
	// by a stale goroutine (nothing to assert beyond "no panic/hang").
}

func TestParentCancellationReleases(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := Notify(parent, syscall.SIGUSR2)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
}
