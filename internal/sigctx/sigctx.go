// Package sigctx is the shared shutdown-signal policy of the commands
// (dlproj, dlprojd): the first SIGINT/SIGTERM cancels a context so the
// run or server can drain gracefully; a second signal forces immediate
// termination instead of being swallowed while a drain hangs. The forced
// path restores the signal's default disposition and re-raises it, so the
// process dies with the conventional signal exit status (128+signo) and a
// stuck drain can always be broken from the keyboard.
package sigctx

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// forceExit terminates the process as if the signal had never been
// caught. A package variable so tests can observe the forced path
// without killing the test process.
var forceExit = func(sig os.Signal) {
	signal.Reset(sig)
	if s, ok := sig.(syscall.Signal); ok {
		_ = syscall.Kill(syscall.Getpid(), s)
		// The self-signal terminates the process; the exit below is the
		// fallback for platforms where delivery is deferred.
		os.Exit(128 + int(s))
	}
	os.Exit(1)
}

// Notify returns a context cancelled on the first of the given signals
// (default: SIGINT and SIGTERM). A second signal — same or different —
// forces immediate process termination via the signal's default
// disposition. The returned stop function releases the signal handler
// and cancels the context; after stop, signals regain their defaults.
func Notify(parent context.Context, sigs ...os.Signal) (context.Context, context.CancelFunc) {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	stopped := make(chan struct{})
	go func() {
		defer signal.Stop(ch)
		select {
		case <-ch: // first signal: cancel, keep listening
			cancel()
		case <-stopped:
			return
		case <-ctx.Done():
			return
		}
		select {
		case sig := <-ch: // second signal: force out
			forceExit(sig)
		case <-stopped:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() { close(stopped) })
		cancel()
	}
	return ctx, stop
}
