// Package obs is the pipeline's observability substrate: a span tracer
// for per-stage wall-clock and allocation accounting, a metrics registry
// (atomic counters, gauges and fixed-bucket histograms) cheap enough to
// touch from fault-simulation inner loops, and a machine-readable run
// report combining both (JSON for tooling, ASCII tables for terminals).
//
// Everything is nil-safe: a nil *Tracer, *Registry, *Counter, *Gauge,
// *Histogram or *Span is a no-op that performs no allocation, so library
// code instruments unconditionally and users pay nothing unless they opt
// in with obs.New().
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Tracer records a tree of named spans. The zero value for *Tracer (nil)
// is a valid no-op tracer; obs.New() returns a recording one.
type Tracer struct {
	mu      sync.Mutex
	reg     *Registry
	started time.Time
	spans   []*Span  // top-level spans in start order
	cur     *Span    // innermost un-ended span, or nil
	hook    SpanHook // optional live span observer, called outside the lock
}

// SpanHook observes span lifecycle transitions live: it is called with
// the span name on every explicit StartSpan (start=true) and on the first
// effective End (start=false). Spans ended implicitly by an out-of-order
// parent End do not fire the hook. Hooks run synchronously on the
// instrumented goroutine, outside the tracer lock — keep them cheap and
// never call back into the tracer.
type SpanHook func(name string, start bool)

// SetSpanHook installs (or with nil removes) the tracer's span hook. The
// serving layer uses this to stream a job's stage transitions to event
// subscribers. No-op on a nil tracer.
func (t *Tracer) SetSpanHook(h SpanHook) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hook = h
	t.mu.Unlock()
}

// New returns a recording tracer with a fresh metrics registry.
func New() *Tracer {
	return &Tracer{reg: NewRegistry(), started: time.Now()}
}

// Metrics returns the tracer's registry (nil for a nil tracer, which makes
// every metric handle derived from it a no-op too).
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Span is one timed region. Spans nest: a span started while another is
// open becomes its child. End is idempotent and nil-safe.
type Span struct {
	tracer *Tracer
	parent *Span

	Name     string
	Start    time.Time
	Duration time.Duration
	// AllocBytes is the heap allocated between StartSpan and End across
	// all goroutines (runtime.MemStats.TotalAlloc delta). Children's
	// allocations are included; Report subtracts them for "self" figures.
	AllocBytes uint64
	Children   []*Span

	alloc0 uint64
	ended  bool
}

// StartSpan opens a span nested under the innermost open span. On a nil
// tracer it returns nil (a no-op span) without allocating.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	s := &Span{tracer: t, parent: t.cur, Name: name}
	if t.cur == nil {
		t.spans = append(t.spans, s)
	} else {
		t.cur.Children = append(t.cur.Children, s)
	}
	t.cur = s
	hook := t.hook
	t.mu.Unlock()
	if hook != nil {
		hook(name, true)
	}
	// Read memstats outside the lock, start the clock last so the span
	// does not charge itself for the (stop-the-world) memstats read.
	s.alloc0 = totalAlloc()
	s.Start = time.Now()
	return s
}

// End closes the span, recording its wall time and allocation delta. A
// second End, or End on a nil span, does nothing. Out-of-order ends are
// tolerated: ending a span implicitly ends any still-open descendants.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	alloc := totalAlloc()
	t := s.tracer
	t.mu.Lock()
	if s.ended {
		t.mu.Unlock()
		return
	}
	// Implicitly end open descendants (leaked spans) first.
	for c := t.cur; c != nil && c != s; c = c.parent {
		if !c.ended {
			c.ended = true
			c.Duration = now.Sub(c.Start)
			c.AllocBytes = alloc - c.alloc0
		}
	}
	s.ended = true
	s.Duration = now.Sub(s.Start)
	s.AllocBytes = alloc - s.alloc0
	// Pop to the nearest un-ended ancestor.
	for c := t.cur; ; c = c.parent {
		if c == nil {
			t.cur = nil
			break
		}
		if !c.ended {
			t.cur = c
			break
		}
	}
	hook := t.hook
	t.mu.Unlock()
	if hook != nil {
		hook(s.Name, false)
	}
}

func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}
