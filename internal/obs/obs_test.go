package obs

import (
	"sync"
	"testing"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := New()
	a := tr.StartSpan("a")
	b := tr.StartSpan("b")
	b.End()
	c := tr.StartSpan("c")
	c.End()
	a.End()
	d := tr.StartSpan("d")
	d.End()

	if len(tr.spans) != 2 {
		t.Fatalf("top-level spans = %d, want 2", len(tr.spans))
	}
	if tr.spans[0].Name != "a" || tr.spans[1].Name != "d" {
		t.Fatalf("top-level order = %q, %q, want a, d", tr.spans[0].Name, tr.spans[1].Name)
	}
	if len(a.Children) != 2 || a.Children[0].Name != "b" || a.Children[1].Name != "c" {
		t.Fatalf("children of a wrong: %+v", a.Children)
	}
	if len(b.Children) != 0 {
		t.Fatalf("b should be a leaf")
	}
	for _, s := range []*Span{a, b, c, d} {
		if !s.ended {
			t.Fatalf("span %s not ended", s.Name)
		}
		if s.Duration < 0 {
			t.Fatalf("span %s has negative duration", s.Name)
		}
	}
	if a.Duration < b.Duration+c.Duration {
		t.Fatalf("parent duration %v < sum of children %v", a.Duration, b.Duration+c.Duration)
	}
}

func TestSpanOutOfOrderEnd(t *testing.T) {
	tr := New()
	a := tr.StartSpan("a")
	b := tr.StartSpan("b")
	a.End() // implicitly ends b
	if !b.ended {
		t.Fatal("ending the parent should end the open child")
	}
	// Double End is a no-op.
	b.End()
	a.End()
	c := tr.StartSpan("c")
	c.End()
	if len(tr.spans) != 2 || tr.spans[1].Name != "c" {
		t.Fatalf("c should be a new top-level span, got %+v", tr.spans)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x")
	sp.End()
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	if tr.Metrics() != nil {
		t.Fatal("nil tracer must return nil registry")
	}
	if tr.Report("c") != nil {
		t.Fatal("nil tracer must return nil report")
	}
	var reg *Registry
	c := reg.Counter("n")
	c.Add(3)
	c.Inc()
	if c != nil || c.Value() != 0 {
		t.Fatal("nil registry counter must be a no-op nil")
	}
	g := reg.Gauge("n")
	g.Set(1)
	if g != nil || g.Value() != 0 {
		t.Fatal("nil registry gauge must be a no-op nil")
	}
	h := reg.Histogram("n", []float64{1})
	h.Observe(5)
	if h != nil || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil registry histogram must be a no-op nil")
	}
}

func TestNoopPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	n := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("stage")
		c.Add(1)
		c.Inc()
		g.Set(3.14)
		h.Observe(42)
		sp.End()
	})
	if n != 0 {
		t.Fatalf("no-op observability path allocates %v per op, want 0", n)
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != workers*per {
		t.Fatalf("concurrent counter = %d, want %d", got, workers*per)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{10, 20})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(w * 10))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if want := float64(0+10+20+30) * 1000; h.Sum() != want {
		t.Fatalf("sum = %g, want %g", h.Sum(), want)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edges", []float64{1, 2, 4})
	// Upper-inclusive buckets: v <= bound lands in that bucket.
	h.Observe(0.5) // bucket 0 (<=1)
	h.Observe(1)   // bucket 0 (edge, inclusive)
	h.Observe(1.5) // bucket 1 (<=2)
	h.Observe(2)   // bucket 1 (edge)
	h.Observe(4)   // bucket 2 (edge)
	h.Observe(4.1) // overflow
	h.Observe(100) // overflow
	_, counts := h.Buckets()
	want := []int64{2, 2, 1, 2}
	if len(counts) != len(want) {
		t.Fatalf("bucket count slice = %v", counts)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
}

func TestHistogramStableHandleAndBounds(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("h", []float64{3, 1, 2}) // unsorted on purpose
	h2 := reg.Histogram("h", []float64{99})      // later bounds ignored
	if h1 != h2 {
		t.Fatal("same name must return the same histogram")
	}
	bounds, _ := h1.Buckets()
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] > bounds[i] {
			t.Fatalf("bounds not sorted: %v", bounds)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
