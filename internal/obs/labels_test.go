package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecChildren(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("serve_requests_total", "route", "code")
	a := v.With("/v1/dl", "200")
	b := v.With("/v1/dl", "400")
	if a == b {
		t.Fatal("distinct label tuples must get distinct children")
	}
	if again := v.With("/v1/dl", "200"); again != a {
		t.Fatal("same label tuple must return the cached child handle")
	}
	a.Add(3)
	b.Inc()
	if a.Value() != 3 || b.Value() != 1 {
		t.Fatalf("child values = %d, %d; want 3, 1", a.Value(), b.Value())
	}
	if v2 := reg.CounterVec("serve_requests_total", "ignored"); v2 != v {
		t.Fatal("same family name must return the same vec")
	}
}

func TestCounterVecAmbiguousTuples(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("x", "a", "b")
	// Tuples whose naive join would collide must stay distinct children.
	p := v.With("a,b", "c")
	q := v.With("a", "b,c")
	if p == q {
		t.Fatal(`children for ("a,b","c") and ("a","b,c") collided`)
	}
}

func TestVecArityPanics(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("x", "one", "two")
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch must panic")
		}
	}()
	v.With("only-one")
}

func TestGaugeVecAndHistogramVec(t *testing.T) {
	reg := NewRegistry()
	gv := reg.GaugeVec("pool_size", "pool")
	gv.With("atpg").Set(4)
	gv.With("swsim").Set(8)
	if got := gv.With("atpg").Value(); got != 4 {
		t.Fatalf("gauge child = %g, want 4", got)
	}

	hv := reg.HistogramVec("stage_seconds", []float64{1, 2, 4}, "stage")
	h := hv.With("atpg")
	h.Observe(1.5)
	h.Observe(3)
	if h.Count() != 2 || h.Sum() != 4.5 {
		t.Fatalf("hist child count=%d sum=%g, want 2, 4.5", h.Count(), h.Sum())
	}
	// Children share the family bounds, sorted at creation.
	hv2 := reg.HistogramVec("unsorted", []float64{4, 1, 2}, "k")
	bounds, _ := hv2.With("x").Buckets()
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] > bounds[i] {
			t.Fatalf("vec bounds not sorted: %v", bounds)
		}
	}
}

func TestVecNilSafety(t *testing.T) {
	var reg *Registry
	cv := reg.CounterVec("c", "l")
	if cv != nil || cv.With("x") != nil {
		t.Fatal("nil registry must yield nil vec and nil child")
	}
	cv.With("x").Inc()
	gv := reg.GaugeVec("g", "l")
	if gv != nil || gv.With("x") != nil {
		t.Fatal("nil gauge vec must yield nil child")
	}
	gv.With("x").Set(1)
	hv := reg.HistogramVec("h", []float64{1}, "l")
	if hv != nil || hv.With("x") != nil {
		t.Fatal("nil histogram vec must yield nil child")
	}
	hv.With("x").Observe(5)
	if cv.LabelNames() != nil {
		t.Fatal("nil vec LabelNames must be nil")
	}
}

// TestVecNoopPathZeroAllocs extends the package's zero-alloc guarantee to
// the labeled path: on a nil registry, resolving and observing through a
// vec costs nothing.
func TestVecNoopPathZeroAllocs(t *testing.T) {
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	var c *Counter
	var g *Gauge
	var h *Histogram
	n := testing.AllocsPerRun(1000, func() {
		c = cv.With("route", "200")
		g = gv.With("pool")
		h = hv.With("stage")
		c.Inc()
		g.Set(1)
		h.Observe(2)
	})
	if n != 0 {
		t.Fatalf("no-op labeled path allocates %v per op, want 0", n)
	}
}

// TestVecHotPathHandleIsLockFree pins the intended usage: resolve the
// child once, then observe concurrently without further With calls.
func TestVecConcurrent(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("hits", "shard")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := string(rune('a' + w%2))
			c := v.With(shard) // resolved once per goroutine
			for i := 0; i < 5000; i++ {
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if total := v.With("a").Value() + v.With("b").Value(); total != 40000 {
		t.Fatalf("total = %d, want 40000", total)
	}
}

func TestSnapshotIncludesLabeledSeries(t *testing.T) {
	tr := New()
	reg := tr.Metrics()
	reg.Counter("plain").Add(1)
	v := reg.CounterVec("labeled_total", "route")
	v.With("/b").Add(2)
	v.With("/a").Add(1)
	reg.GaugeVec("depth", "queue").With("main").Set(7)
	reg.HistogramVec("lat", []float64{1, 10}, "stage").With("atpg").Observe(5)

	rep := tr.Report("test")
	var labeled []CounterSnap
	for _, c := range rep.Counters {
		if c.Name == "labeled_total" {
			labeled = append(labeled, c)
		}
	}
	if len(labeled) != 2 {
		t.Fatalf("labeled_total series = %d, want 2: %+v", len(labeled), rep.Counters)
	}
	if labeled[0].Labels["route"] != "/a" || labeled[1].Labels["route"] != "/b" {
		t.Fatalf("labeled series out of order: %+v", labeled)
	}
	if labeled[0].Value != 1 || labeled[1].Value != 2 {
		t.Fatalf("labeled values = %d, %d; want 1, 2", labeled[0].Value, labeled[1].Value)
	}
	foundGauge, foundHist := false, false
	for _, g := range rep.Gauges {
		if g.Name == "depth" && g.Labels["queue"] == "main" && g.Value == 7 {
			foundGauge = true
		}
	}
	for _, h := range rep.Histograms {
		if h.Name == "lat" && h.Labels["stage"] == "atpg" && h.Count == 1 {
			foundHist = true
		}
	}
	if !foundGauge || !foundHist {
		t.Fatalf("labeled gauge/hist missing from snapshot (gauge=%v hist=%v)", foundGauge, foundHist)
	}
	// The render names labeled series with their label suffix.
	if out := rep.Render(); !strings.Contains(out, `labeled_total{route="/a"}`) {
		t.Fatalf("render lacks labeled series name:\n%s", out)
	}
}

func TestSpanHook(t *testing.T) {
	tr := New()
	var mu sync.Mutex
	var got []string
	tr.SetSpanHook(func(name string, start bool) {
		mu.Lock()
		if start {
			got = append(got, "+"+name)
		} else {
			got = append(got, "-"+name)
		}
		mu.Unlock()
	})
	a := tr.StartSpan("a")
	b := tr.StartSpan("b")
	b.End()
	a.End()
	want := []string{"+a", "+b", "-b", "-a"}
	if len(got) != len(want) {
		t.Fatalf("hook calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hook calls = %v, want %v", got, want)
		}
	}
	// Nil tracer: SetSpanHook is a no-op, not a panic.
	var nilTr *Tracer
	nilTr.SetSpanHook(func(string, bool) {})
}
