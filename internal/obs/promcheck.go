package obs

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Line-level structural validator for the text exposition format —
// dependency-free on purpose so tests (obs golden tests, the serve CI
// scrape smoke) can assert "this parses as Prometheus exposition"
// without a client library.

// sampleRe matches one exposition sample line. The label block is
// matched pair by pair — values are quoted strings with backslash
// escapes, and may themselves contain '}' or ','.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})? (-?[0-9].*|[+-]Inf|NaN)$`)

// ValidateExposition structurally checks text as Prometheus exposition
// format: every line is a TYPE/HELP comment or a well-formed sample,
// every sample belongs to a declared family, histogram bucket series are
// cumulative with ascending le bounds and a +Inf bucket equal to _count.
// Returns the number of sample lines checked.
func ValidateExposition(text string) (int, error) {
	types := map[string]string{}
	samples := 0
	type histState struct {
		lastLE  float64
		lastCum int64
		infCum  int64
		hasInf  bool
		count   int64
		hasCnt  bool
	}
	hists := map[string]*histState{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		if l == "" {
			continue
		}
		if strings.HasPrefix(l, "# TYPE ") {
			fields := strings.Fields(l)
			if len(fields) != 4 {
				return samples, fmt.Errorf("line %d: malformed TYPE comment: %q", line, l)
			}
			name, kind := fields[2], fields[3]
			if kind != "counter" && kind != "gauge" && kind != "histogram" &&
				kind != "summary" && kind != "untyped" {
				return samples, fmt.Errorf("line %d: unknown metric type %q", line, kind)
			}
			if _, dup := types[name]; dup {
				return samples, fmt.Errorf("line %d: duplicate TYPE for %q", line, name)
			}
			types[name] = kind
			continue
		}
		if strings.HasPrefix(l, "#") {
			continue // HELP and other comments are legal
		}
		m := sampleRe.FindStringSubmatch(l)
		if m == nil {
			return samples, fmt.Errorf("line %d: not a valid sample line: %q", line, l)
		}
		samples++
		name, labels, valueStr := m[1], m[2], m[3]
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, s)
			if trimmed != name {
				if k, ok := types[trimmed]; ok && k == "histogram" {
					base, suffix = trimmed, s
				}
				break
			}
		}
		kind, ok := types[base]
		if !ok {
			return samples, fmt.Errorf("line %d: sample %q has no TYPE declaration", line, name)
		}
		if kind == "histogram" && suffix == "" {
			return samples, fmt.Errorf("line %d: bare sample %q for histogram family", line, name)
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return samples, fmt.Errorf("line %d: bad sample value %q: %v", line, valueStr, err)
		}
		if kind == "counter" && (value < 0 || math.IsNaN(value)) {
			return samples, fmt.Errorf("line %d: counter %q has invalid value %v", line, name, value)
		}
		if suffix != "" {
			rest, le := stripLE(labels)
			key := base + "|" + rest
			st := hists[key]
			if st == nil {
				st = &histState{lastLE: math.Inf(-1)}
				hists[key] = st
			}
			switch suffix {
			case "_bucket":
				cum := int64(value)
				if le == "+Inf" {
					st.hasInf = true
					st.infCum = cum
					if cum < st.lastCum {
						return samples, fmt.Errorf("line %d: +Inf bucket %d below prior cumulative %d", line, cum, st.lastCum)
					}
					break
				}
				leV, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return samples, fmt.Errorf("line %d: bad le %q: %v", line, le, err)
				}
				if leV <= st.lastLE {
					return samples, fmt.Errorf("line %d: le %g not ascending (prev %g)", line, leV, st.lastLE)
				}
				if cum < st.lastCum {
					return samples, fmt.Errorf("line %d: bucket counts not cumulative (%d after %d)", line, cum, st.lastCum)
				}
				st.lastLE, st.lastCum = leV, cum
			case "_count":
				st.hasCnt = true
				st.count = int64(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	for key, st := range hists {
		if !st.hasInf {
			return samples, fmt.Errorf("histogram series %q has no +Inf bucket", key)
		}
		if !st.hasCnt {
			return samples, fmt.Errorf("histogram series %q has no _count", key)
		}
		if st.infCum != st.count {
			return samples, fmt.Errorf("histogram series %q: +Inf bucket %d != _count %d", key, st.infCum, st.count)
		}
	}
	return samples, nil
}

// stripLE removes the le pair from a rendered label block (braces
// included), returning the remaining pairs and the le value.
func stripLE(labels string) (rest, le string) {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	if inner == "" {
		return "", ""
	}
	var kept []string
	for _, p := range splitLabelPairs(inner) {
		if strings.HasPrefix(p, `le="`) {
			le = strings.TrimSuffix(strings.TrimPrefix(p, `le="`), `"`)
			continue
		}
		kept = append(kept, p)
	}
	return strings.Join(kept, ","), le
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\' && inQuote:
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
