package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"defectsim/internal/textplot"
)

// Report is a machine-readable snapshot of one pipeline run: the stage
// tree with wall-clock and allocation figures plus every metric the run
// recorded. It round-trips through JSON unchanged.
type Report struct {
	Circuit  string `json:"circuit,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Events are notable run-level occurrences (graceful-degradation
	// notices, cache-corruption fallbacks) recorded by the pipeline.
	Events []string `json:"events,omitempty"`
	// TotalNS is the wall time of the top-level stages combined.
	TotalNS    int64           `json:"total_ns"`
	Stages     []*StageReport  `json:"stages,omitempty"`
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// StageReport is one node of the span tree.
type StageReport struct {
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Children   []*StageReport `json:"children,omitempty"`
}

// CounterSnap is a counter's value at snapshot time.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is a gauge's last value at snapshot time.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnap is a histogram's full state at snapshot time. Counts has
// one more entry than Bounds (the overflow bucket).
type HistogramSnap struct {
	Name   string    `json:"name"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Report snapshots the tracer's spans and metrics. Unfinished spans are
// reported with their duration so far. Returns nil on a nil tracer.
func (t *Tracer) Report(circuit string) *Report {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	r := &Report{Circuit: circuit}
	now := time.Now()
	alloc := totalAlloc()
	var walk func(s *Span) *StageReport
	walk = func(s *Span) *StageReport {
		sr := &StageReport{Name: s.Name, DurationNS: int64(s.Duration), AllocBytes: s.AllocBytes}
		if !s.ended {
			sr.DurationNS = int64(now.Sub(s.Start))
			sr.AllocBytes = alloc - s.alloc0
		}
		for _, c := range s.Children {
			sr.Children = append(sr.Children, walk(c))
		}
		return sr
	}
	for _, s := range t.spans {
		sr := walk(s)
		r.Stages = append(r.Stages, sr)
		r.TotalNS += sr.DurationNS
	}
	t.mu.Unlock()
	t.reg.snapshotInto(r)
	return r
}

func (r *Registry) snapshotInto(rep *Report) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		rep.Counters = append(rep.Counters, CounterSnap{name, c.Value()})
	}
	for name, g := range r.gauges {
		rep.Gauges = append(rep.Gauges, GaugeSnap{name, g.Value()})
	}
	for name, h := range r.hists {
		bounds, counts := h.Buckets()
		rep.Histograms = append(rep.Histograms, HistogramSnap{
			Name: name, Count: h.Count(), Sum: h.Sum(), Bounds: bounds, Counts: counts,
		})
	}
	sort.Slice(rep.Counters, func(i, j int) bool { return rep.Counters[i].Name < rep.Counters[j].Name })
	sort.Slice(rep.Gauges, func(i, j int) bool { return rep.Gauges[i].Name < rep.Gauges[j].Name })
	sort.Slice(rep.Histograms, func(i, j int) bool { return rep.Histograms[i].Name < rep.Histograms[j].Name })
}

// CounterSnapshot returns the registry's counters sorted by name — the
// partial-progress picture attached to stage-failure errors. A nil
// registry returns nil.
func (r *Registry) CounterSnapshot() []CounterSnap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CounterSnap, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, CounterSnap{name, c.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// JSON returns the indented JSON encoding of the report.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render draws the report as ASCII tables: the stage tree (wall time,
// share of total, allocations) followed by the metrics catalog.
func (r *Report) Render() string {
	if r == nil {
		return "(no run report: tracing was not enabled)\n"
	}
	var b strings.Builder
	if r.Circuit != "" {
		fmt.Fprintf(&b, "run report: %s", r.Circuit)
		if r.CacheHit {
			b.WriteString(" (cache hit)")
		}
		b.WriteByte('\n')
	}
	for _, e := range r.Events {
		fmt.Fprintf(&b, "event: %s\n", e)
	}
	st := &textplot.Table{Headers: []string{"stage", "wall", "% of run", "alloc"}}
	total := float64(r.TotalNS)
	var add func(s *StageReport, depth int)
	add = func(s *StageReport, depth int) {
		pct := "-"
		if total > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*float64(s.DurationNS)/total)
		}
		st.AddRow(strings.Repeat("  ", depth)+s.Name,
			formatDuration(s.DurationNS), pct, formatBytes(s.AllocBytes))
		for _, c := range s.Children {
			add(c, depth+1)
		}
	}
	for _, s := range r.Stages {
		add(s, 0)
	}
	st.AddRow("total", formatDuration(r.TotalNS), "100.0%", "")
	b.WriteString(st.Render())

	if len(r.Counters) > 0 || len(r.Gauges) > 0 {
		b.WriteByte('\n')
		mt := &textplot.Table{Headers: []string{"metric", "value"}}
		for _, c := range r.Counters {
			mt.AddRow(c.Name, fmt.Sprintf("%d", c.Value))
		}
		for _, g := range r.Gauges {
			mt.AddRow(g.Name, fmt.Sprintf("%.6g", g.Value))
		}
		b.WriteString(mt.Render())
	}
	if len(r.Histograms) > 0 {
		b.WriteByte('\n')
		ht := &textplot.Table{Headers: []string{"histogram", "count", "mean", "buckets"}}
		for _, h := range r.Histograms {
			mean := "-"
			if h.Count > 0 {
				mean = fmt.Sprintf("%.4g", h.Sum/float64(h.Count))
			}
			var bb []string
			for i, c := range h.Counts {
				if c == 0 {
					continue
				}
				switch {
				case i < len(h.Bounds):
					bb = append(bb, fmt.Sprintf("≤%.4g:%d", h.Bounds[i], c))
				case len(h.Bounds) > 0:
					bb = append(bb, fmt.Sprintf(">%.4g:%d", h.Bounds[len(h.Bounds)-1], c))
				default:
					bb = append(bb, fmt.Sprintf("all:%d", c))
				}
			}
			ht.AddRow(h.Name, fmt.Sprintf("%d", h.Count), mean, strings.Join(bb, " "))
		}
		b.WriteString(ht.Render())
	}
	return b.String()
}

func formatDuration(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%dns", ns)
}

func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
