package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"defectsim/internal/textplot"
)

// Report is a machine-readable snapshot of one pipeline run: the stage
// tree with wall-clock and allocation figures plus every metric the run
// recorded. It round-trips through JSON unchanged.
type Report struct {
	Circuit  string `json:"circuit,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// RequestID names the HTTP request that submitted the run, when it
	// came through the serving layer — the correlation handle between an
	// access-log line and this report.
	RequestID string `json:"request_id,omitempty"`
	// Events are notable run-level occurrences (graceful-degradation
	// notices, cache-corruption fallbacks) recorded by the pipeline.
	Events []string `json:"events,omitempty"`
	// TotalNS is the wall time of the top-level stages combined.
	TotalNS    int64           `json:"total_ns"`
	Stages     []*StageReport  `json:"stages,omitempty"`
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// StageReport is one node of the span tree.
type StageReport struct {
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"`
	AllocBytes uint64         `json:"alloc_bytes"`
	Children   []*StageReport `json:"children,omitempty"`
}

// CounterSnap is a counter's value at snapshot time. Labels is non-nil
// exactly when the counter is a labeled-family child.
type CounterSnap struct {
	Name   string            `json:"name"`
	Value  int64             `json:"value"`
	Labels map[string]string `json:"labels,omitempty"`
}

// GaugeSnap is a gauge's last value at snapshot time.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Value  float64           `json:"value"`
	Labels map[string]string `json:"labels,omitempty"`
}

// HistogramSnap is a histogram's full state at snapshot time. Counts has
// one more entry than Bounds (the overflow bucket).
type HistogramSnap struct {
	Name   string            `json:"name"`
	Count  int64             `json:"count"`
	Sum    float64           `json:"sum"`
	Bounds []float64         `json:"bounds"`
	Counts []int64           `json:"counts"`
	Labels map[string]string `json:"labels,omitempty"`
}

// labelSuffix renders a snapshot's labels as {k="v",...} in sorted key
// order, or "" without labels — the display form of a labeled series.
func labelSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation within the containing bucket —
// the same estimator as Prometheus's histogram_quantile. The overflow
// bucket cannot be interpolated, so quantiles landing there report the
// largest finite bound (a lower bound on the true value). Returns NaN on
// an empty histogram or an out-of-range q.
func (h HistogramSnap) Quantile(q float64) float64 {
	if h.Count <= 0 || !(q > 0 && q < 1) {
		return math.NaN()
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: no upper bound to interpolate against.
			if len(h.Bounds) == 0 {
				return math.NaN()
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		hi := h.Bounds[i]
		lo := 0.0
		switch {
		case i > 0:
			lo = h.Bounds[i-1]
		case hi < 0:
			lo = hi // all-negative domain: do not interpolate from 0
		}
		if c == 0 {
			return hi
		}
		below := cum - c
		frac := (rank - float64(below)) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(h.Bounds) == 0 {
		return math.NaN()
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Report snapshots the tracer's spans and metrics. Unfinished spans are
// reported with their duration so far. Returns nil on a nil tracer.
func (t *Tracer) Report(circuit string) *Report {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	r := &Report{Circuit: circuit}
	now := time.Now()
	alloc := totalAlloc()
	var walk func(s *Span) *StageReport
	walk = func(s *Span) *StageReport {
		sr := &StageReport{Name: s.Name, DurationNS: int64(s.Duration), AllocBytes: s.AllocBytes}
		if !s.ended {
			sr.DurationNS = int64(now.Sub(s.Start))
			sr.AllocBytes = alloc - s.alloc0
		}
		for _, c := range s.Children {
			sr.Children = append(sr.Children, walk(c))
		}
		return sr
	}
	for _, s := range t.spans {
		sr := walk(s)
		r.Stages = append(r.Stages, sr)
		r.TotalNS += sr.DurationNS
	}
	t.mu.Unlock()
	t.reg.snapshotInto(r)
	return r
}

func (r *Registry) snapshotInto(rep *Report) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counterVecs := make([]*CounterVec, 0, len(r.counterVecs))
	for _, v := range r.counterVecs {
		counterVecs = append(counterVecs, v)
	}
	gaugeVecs := make([]*GaugeVec, 0, len(r.gaugeVecs))
	for _, v := range r.gaugeVecs {
		gaugeVecs = append(gaugeVecs, v)
	}
	histVecs := make([]*HistogramVec, 0, len(r.histVecs))
	for _, v := range r.histVecs {
		histVecs = append(histVecs, v)
	}
	for name, c := range r.counters {
		rep.Counters = append(rep.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		rep.Gauges = append(rep.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		bounds, counts := h.Buckets()
		rep.Histograms = append(rep.Histograms, HistogramSnap{
			Name: name, Count: h.Count(), Sum: h.Sum(), Bounds: bounds, Counts: counts,
		})
	}
	// Vec children are collected outside the registry lock (each vec has
	// its own) so a labeled hot path never contends with a snapshot for
	// longer than one map copy.
	r.mu.Unlock()
	for _, v := range counterVecs {
		for _, c := range v.sortedChildren() {
			rep.Counters = append(rep.Counters, CounterSnap{
				Name: v.name, Value: c.Value(), Labels: labelMap(v.labelNames, c.labels),
			})
		}
	}
	for _, v := range gaugeVecs {
		for _, g := range v.sortedChildren() {
			rep.Gauges = append(rep.Gauges, GaugeSnap{
				Name: v.name, Value: g.Value(), Labels: labelMap(v.labelNames, g.labels),
			})
		}
	}
	for _, v := range histVecs {
		for _, h := range v.sortedChildren() {
			bounds, counts := h.Buckets()
			rep.Histograms = append(rep.Histograms, HistogramSnap{
				Name: v.name, Count: h.Count(), Sum: h.Sum(), Bounds: bounds, Counts: counts,
				Labels: labelMap(v.labelNames, h.labels),
			})
		}
	}
	sort.Slice(rep.Counters, func(i, j int) bool {
		if rep.Counters[i].Name != rep.Counters[j].Name {
			return rep.Counters[i].Name < rep.Counters[j].Name
		}
		return labelSuffix(rep.Counters[i].Labels) < labelSuffix(rep.Counters[j].Labels)
	})
	sort.Slice(rep.Gauges, func(i, j int) bool {
		if rep.Gauges[i].Name != rep.Gauges[j].Name {
			return rep.Gauges[i].Name < rep.Gauges[j].Name
		}
		return labelSuffix(rep.Gauges[i].Labels) < labelSuffix(rep.Gauges[j].Labels)
	})
	sort.Slice(rep.Histograms, func(i, j int) bool {
		if rep.Histograms[i].Name != rep.Histograms[j].Name {
			return rep.Histograms[i].Name < rep.Histograms[j].Name
		}
		return labelSuffix(rep.Histograms[i].Labels) < labelSuffix(rep.Histograms[j].Labels)
	})
}

// CounterSnapshot returns the registry's counters sorted by name — the
// partial-progress picture attached to stage-failure errors. A nil
// registry returns nil.
func (r *Registry) CounterSnapshot() []CounterSnap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]CounterSnap, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, CounterSnap{Name: name, Value: c.Value()})
	}
	vecs := make([]*CounterVec, 0, len(r.counterVecs))
	for _, v := range r.counterVecs {
		vecs = append(vecs, v)
	}
	r.mu.Unlock()
	for _, v := range vecs {
		for _, c := range v.sortedChildren() {
			out = append(out, CounterSnap{Name: v.name, Value: c.Value(), Labels: labelMap(v.labelNames, c.labels)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelSuffix(out[i].Labels) < labelSuffix(out[j].Labels)
	})
	return out
}

// JSON returns the indented JSON encoding of the report.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render draws the report as ASCII tables: the stage tree (wall time,
// share of total, allocations) followed by the metrics catalog.
func (r *Report) Render() string {
	if r == nil {
		return "(no run report: tracing was not enabled)\n"
	}
	var b strings.Builder
	if r.Circuit != "" {
		fmt.Fprintf(&b, "run report: %s", r.Circuit)
		if r.CacheHit {
			b.WriteString(" (cache hit)")
		}
		b.WriteByte('\n')
	}
	if r.RequestID != "" {
		fmt.Fprintf(&b, "request: %s\n", r.RequestID)
	}
	for _, e := range r.Events {
		fmt.Fprintf(&b, "event: %s\n", e)
	}
	st := &textplot.Table{Headers: []string{"stage", "wall", "% of run", "alloc"}}
	total := float64(r.TotalNS)
	var add func(s *StageReport, depth int)
	add = func(s *StageReport, depth int) {
		pct := "-"
		if total > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*float64(s.DurationNS)/total)
		}
		st.AddRow(strings.Repeat("  ", depth)+s.Name,
			formatDuration(s.DurationNS), pct, formatBytes(s.AllocBytes))
		for _, c := range s.Children {
			add(c, depth+1)
		}
	}
	for _, s := range r.Stages {
		add(s, 0)
	}
	st.AddRow("total", formatDuration(r.TotalNS), "100.0%", "")
	b.WriteString(st.Render())

	if len(r.Counters) > 0 || len(r.Gauges) > 0 {
		b.WriteByte('\n')
		mt := &textplot.Table{Headers: []string{"metric", "value"}}
		for _, c := range r.Counters {
			mt.AddRow(c.Name+labelSuffix(c.Labels), fmt.Sprintf("%d", c.Value))
		}
		for _, g := range r.Gauges {
			mt.AddRow(g.Name+labelSuffix(g.Labels), fmt.Sprintf("%.6g", g.Value))
		}
		b.WriteString(mt.Render())
	}
	if len(r.Histograms) > 0 {
		b.WriteByte('\n')
		ht := &textplot.Table{Headers: []string{"histogram", "count", "mean", "p50", "p90", "p99"}}
		quant := func(h HistogramSnap, q float64) string {
			v := h.Quantile(q)
			if math.IsNaN(v) {
				return "-"
			}
			return fmt.Sprintf("%.4g", v)
		}
		for _, h := range r.Histograms {
			mean := "-"
			if h.Count > 0 {
				mean = fmt.Sprintf("%.4g", h.Sum/float64(h.Count))
			}
			ht.AddRow(h.Name+labelSuffix(h.Labels), fmt.Sprintf("%d", h.Count),
				mean, quant(h, 0.5), quant(h, 0.9), quant(h, 0.99))
		}
		b.WriteString(ht.Render())
	}
	return b.String()
}

func formatDuration(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return fmt.Sprintf("%dns", ns)
}

func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
