package obs

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden compares got against testdata/<name>.golden, rewriting the file
// under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func expose(t *testing.T, reg *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// TestPromGoldenBasic pins the full output shape: counters, gauges, a
// plain histogram and a labeled one, deterministic family and series
// ordering, cumulative buckets with +Inf.
func TestPromGoldenBasic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve_jobs_done").Add(12)
	reg.Gauge("pipeline_yield").Set(0.75)
	reg.Gauge("serve_queue_depth").Set(3)
	h := reg.Histogram("atpg_backtracks_per_fault", []float64{1, 4, 16})
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(100)
	rv := reg.CounterVec("serve_requests_total", "route", "code")
	rv.With("/v1/dl", "200").Add(4)
	rv.With("/v1/dl", "400").Add(1)
	rv.With("/v1/pipeline", "202").Add(2)
	sv := reg.HistogramVec("pipeline_stage_seconds", []float64{0.001, 0.01}, "stage")
	sv.With("atpg").Observe(0.005)
	sv.With("layout").Observe(0.0005)
	golden(t, "prom_basic", expose(t, reg))
}

// TestPromGoldenEscaping pins label-value escaping (backslash, quote,
// newline) and metric/label name sanitization of invalid runes.
func TestPromGoldenEscaping(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("weird metric-name.total", "label name", "other")
	v.With(`back\slash`, "plain").Inc()
	v.With("quote\"quote", "line\nbreak").Add(2)
	reg.Gauge("9starts_with_digit").Set(1)
	reg.Counter("ok_name:with_colon").Add(5)
	golden(t, "prom_escaping", expose(t, reg))
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"ok_name":        "ok_name",
		"ok:colon":       "ok:colon",
		"has space":      "has_space",
		"dash-and.dot":   "dash_and_dot",
		"7digit":         "_7digit",
		"":               "_",
		"ünïcode":        "_n_code",
		"tab\tand\nnl":   "tab_and_nl",
		"digits2_inside": "digits2_inside",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := sanitizeLabelName("no:colons"); got != "no_colons" {
		t.Errorf("sanitizeLabelName kept a colon: %q", got)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`a\b`:          `a\\b`,
		`say "hi"`:     `say \"hi\"`,
		"two\nlines":   `two\nlines`,
		`mix\"` + "\n": `mix\\\"\n`,
	}
	for in, want := range cases {
		if got := escapeLabelValue(in); got != want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

// mustValidate runs the exported line-level exposition validator and
// fails the test on any structural error.
func mustValidate(t *testing.T, text string) int {
	t.Helper()
	n, err := ValidateExposition(text)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	return n
}

// TestExpositionValidates runs the structural validator over a registry
// with every instrument kind, including awkward label values.
func TestExpositionValidates(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total").Add(5)
	reg.Gauge("g").Set(-2.5)
	reg.Histogram("h", []float64{1, 2}).Observe(1.5)
	v := reg.CounterVec("lv_total", "k")
	v.With(`tricky"value`).Inc()
	v.With("with,comma").Inc()
	hv := reg.HistogramVec("hv_seconds", []float64{0.1, 1}, "stage")
	hv.With("a").Observe(0.5)
	hv.With("b").Observe(5)
	n := mustValidate(t, expose(t, reg))
	if n == 0 {
		t.Fatal("validator saw no samples")
	}
}

// TestPromDeterministic: two scrapes of an unchanged registry are
// byte-identical, and series order ignores map iteration order.
func TestPromDeterministic(t *testing.T) {
	build := func(order []int) string {
		reg := NewRegistry()
		v := reg.CounterVec("x_total", "i")
		for _, i := range order {
			v.With(fmt.Sprintf("%03d", i)).Add(int64(i))
		}
		reg.Gauge("b").Set(1)
		reg.Gauge("a").Set(2)
		return expose(t, reg)
	}
	a := build([]int{1, 2, 3, 4, 5})
	b := build([]int{5, 3, 1, 4, 2})
	if a != b {
		t.Fatalf("exposition depends on creation order:\n%s\nvs\n%s", a, b)
	}
}

// TestPromConcurrentScrapeHammer races labeled-metric creation and
// observation against scrapes; the race detector is the assertion, plus
// every intermediate scrape must stay structurally valid.
func TestPromConcurrentScrapeHammer(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := reg.CounterVec("hammer_total", "worker", "shard")
			hv := reg.HistogramVec("hammer_seconds", []float64{0.001, 0.01, 0.1}, "worker")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v.With(fmt.Sprintf("w%d", w), fmt.Sprintf("s%d", i%7)).Inc()
				hv.With(fmt.Sprintf("w%d", w)).Observe(float64(i%100) / 1000)
				reg.Gauge(fmt.Sprintf("hammer_gauge_%d", i%5)).Set(float64(i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		mustValidate(t, expose(t, reg))
	}
	close(stop)
	wg.Wait()
	mustValidate(t, expose(t, reg))
}

func TestHistogramQuantile(t *testing.T) {
	h := HistogramSnap{
		Bounds: []float64{10, 20, 30},
		Counts: []int64{10, 10, 0, 0}, // 10 in (0,10], 10 in (10,20]
		Count:  20,
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %g, want 10 (bucket edge)", got)
	}
	if got := h.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Fatalf("p75 = %g, want 15 (midway through second bucket)", got)
	}
	if got := h.Quantile(0.25); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p25 = %g, want 5", got)
	}

	// Overflow bucket: clamp to the largest finite bound.
	over := HistogramSnap{Bounds: []float64{1}, Counts: []int64{0, 4}, Count: 4}
	if got := over.Quantile(0.9); got != 1 {
		t.Fatalf("overflow quantile = %g, want 1", got)
	}

	// Empty and invalid q → NaN.
	empty := HistogramSnap{Bounds: []float64{1}, Counts: []int64{0, 0}}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Fatal("out-of-range q must be NaN")
	}
}
