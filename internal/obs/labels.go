package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled metric families. A vec is a family of instruments of one kind
// sharing a name and a fixed set of label names; With resolves a concrete
// label-value tuple to its child instrument, creating it on first use.
//
// The hot-path contract matches the plain instruments: With is a locked
// map lookup, so hot loops resolve their child handle ONCE up front and
// observe through it lock-free afterwards — never With-per-observation.
// Everything is nil-safe: a nil vec returns a nil child, whose methods are
// allocation-free no-ops, so instrumented code needs no nil checks.

// labelKey renders a label-value tuple into an unambiguous map key
// (quoting makes "a","b" distinct from "a,b").
func labelKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		b.WriteString(strconv.Quote(v))
		b.WriteByte(',')
	}
	return b.String()
}

func checkArity(name string, names, values []string) {
	if len(values) != len(names) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values (%s), got %d",
			name, len(names), strings.Join(names, ","), len(values)))
	}
}

// CounterVec is a family of counters selected by label values, e.g.
// serve_requests_total{route,code}.
type CounterVec struct {
	name       string
	labelNames []string
	mu         sync.Mutex
	children   map[string]*Counter
}

// CounterVec returns (creating if needed) the named counter family. The
// label names are fixed at first creation; later calls with the same name
// ignore the argument. Nil-safe.
func (r *Registry) CounterVec(name string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.counterVecs[name]
	if v == nil {
		v = &CounterVec{
			name:       name,
			labelNames: append([]string(nil), labelNames...),
			children:   map[string]*Counter{},
		}
		r.counterVecs[name] = v
	}
	return v
}

// With returns the child counter for the given label values (one per
// label name, in declaration order), creating it on first use. The handle
// is stable: callers cache it and increment lock-free. Nil-safe; panics
// on label arity mismatch (a programming error).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	checkArity(v.name, v.labelNames, values)
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.children[key]
	if c == nil {
		c = &Counter{name: v.name, labels: append([]string(nil), values...)}
		v.children[key] = c
	}
	return c
}

// GaugeVec is a family of gauges selected by label values.
type GaugeVec struct {
	name       string
	labelNames []string
	mu         sync.Mutex
	children   map[string]*Gauge
}

// GaugeVec returns (creating if needed) the named gauge family. Nil-safe;
// label names are fixed at first creation.
func (r *Registry) GaugeVec(name string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.gaugeVecs[name]
	if v == nil {
		v = &GaugeVec{
			name:       name,
			labelNames: append([]string(nil), labelNames...),
			children:   map[string]*Gauge{},
		}
		r.gaugeVecs[name] = v
	}
	return v
}

// With returns the child gauge for the given label values, creating it on
// first use. Nil-safe; panics on label arity mismatch.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	checkArity(v.name, v.labelNames, values)
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	g := v.children[key]
	if g == nil {
		g = &Gauge{name: v.name, labels: append([]string(nil), values...)}
		v.children[key] = g
	}
	return g
}

// HistogramVec is a family of histograms selected by label values, e.g.
// pipeline_stage_seconds{stage}. Every child shares the family's bucket
// bounds.
type HistogramVec struct {
	name       string
	labelNames []string
	bounds     []float64
	mu         sync.Mutex
	children   map[string]*Histogram
}

// HistogramVec returns (creating if needed) the named histogram family.
// bounds must be sorted ascending (they are sorted defensively, like
// Registry.Histogram); bounds and label names are fixed at first creation.
// Nil-safe.
func (r *Registry) HistogramVec(name string, bounds []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.histVecs[name]
	if v == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		v = &HistogramVec{
			name:       name,
			labelNames: append([]string(nil), labelNames...),
			bounds:     b,
			children:   map[string]*Histogram{},
		}
		r.histVecs[name] = v
	}
	return v
}

// With returns the child histogram for the given label values, creating
// it on first use. Nil-safe; panics on label arity mismatch.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	checkArity(v.name, v.labelNames, values)
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.children[key]
	if h == nil {
		h = &Histogram{
			name:   v.name,
			labels: append([]string(nil), values...),
			bounds: v.bounds, // shared, read-only
			counts: make([]atomic.Int64, len(v.bounds)+1),
		}
		v.children[key] = h
	}
	return h
}

// LabelNames returns the family's label names in declaration order (nil
// on a nil vec).
func (v *CounterVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return append([]string(nil), v.labelNames...)
}

// sortedChildren returns the vec's children with their label values,
// ordered deterministically by label tuple — the iteration order of
// snapshots and the Prometheus encoder.
func (v *CounterVec) sortedChildren() []*Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Counter, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	v.mu.Unlock()
	return out
}

func (v *GaugeVec) sortedChildren() []*Gauge {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Gauge, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	v.mu.Unlock()
	return out
}

func (v *HistogramVec) sortedChildren() []*Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Histogram, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	v.mu.Unlock()
	return out
}

// labelMap pairs label names with a child's values for snapshots.
func labelMap(names, values []string) map[string]string {
	if len(names) == 0 {
		return nil
	}
	m := make(map[string]string, len(names))
	for i, n := range names {
		if i < len(values) {
			m[n] = values[i]
		}
	}
	return m
}
