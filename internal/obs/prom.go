package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a Registry: the
// scrape surface behind dlprojd's /metrics. The encoder is self-contained
// (no client library): counters and gauges become single samples,
// histograms become cumulative _bucket series with upper-inclusive le
// bounds plus _sum and _count — exactly the semantics our buckets already
// have. Metric and label names are sanitized to the exposition charset,
// label values are escaped, and output order is deterministic (families
// by name, series by label tuple) so scrapes diff cleanly.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// sanitizeMetricName maps s onto the exposition metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing invalid runes with '_' and
// prefixing '_' when the first rune is a digit. Empty names become "_".
func sanitizeMetricName(s string) string {
	return sanitizeName(s, true)
}

// sanitizeLabelName is sanitizeMetricName without the colon (reserved
// for recording rules, invalid in label names).
func sanitizeLabelName(s string) string {
	return sanitizeName(s, false)
}

func sanitizeName(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(allowColon && r == ':') || (i > 0 && r >= '0' && r <= '9')
		switch {
		case ok:
			b.WriteRune(r)
		case i == 0 && r >= '0' && r <= '9':
			b.WriteByte('_')
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a sample value. strconv 'g' already yields the
// exposition spellings for the specials (+Inf, -Inf, NaN).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a label set as {k="v",...} (or "" when empty),
// optionally with an extra le pair appended for histogram buckets.
func promLabels(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, n := range names {
		if i >= len(values) {
			break
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(sanitizeLabelName(n))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFamily is one metric family ready to print: a TYPE line plus its
// samples in deterministic order.
type promFamily struct {
	name  string
	kind  string // counter | gauge | histogram
	lines []string
}

// WritePrometheus writes every instrument of the registry — plain and
// labeled — in the Prometheus text exposition format. Families are
// ordered by (sanitized) name; a plain instrument and a labeled family
// sharing a name and kind merge into one family (the plain sample carries
// no labels). Safe to call concurrently with metric creation and
// observation. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for n, v := range r.counterVecs {
		counterVecs[n] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for n, v := range r.gaugeVecs {
		gaugeVecs[n] = v
	}
	histVecs := make(map[string]*HistogramVec, len(r.histVecs))
	for n, v := range r.histVecs {
		histVecs[n] = v
	}
	r.mu.Unlock()

	fams := map[string]*promFamily{}
	family := func(rawName, kind string) *promFamily {
		name := sanitizeMetricName(rawName)
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		return f
	}

	for n, c := range counters {
		f := family(n, "counter")
		f.lines = append(f.lines, fmt.Sprintf("%s %d", f.name, c.Value()))
	}
	for n, v := range counterVecs {
		f := family(n, "counter")
		for _, c := range v.sortedChildren() {
			f.lines = append(f.lines, fmt.Sprintf("%s%s %d",
				f.name, promLabels(v.labelNames, c.labels, ""), c.Value()))
		}
	}
	for n, g := range gauges {
		f := family(n, "gauge")
		f.lines = append(f.lines, fmt.Sprintf("%s %s", f.name, formatFloat(g.Value())))
	}
	for n, v := range gaugeVecs {
		f := family(n, "gauge")
		for _, g := range v.sortedChildren() {
			f.lines = append(f.lines, fmt.Sprintf("%s%s %s",
				f.name, promLabels(v.labelNames, g.labels, ""), formatFloat(g.Value())))
		}
	}
	histLines := func(f *promFamily, names []string, h *Histogram) {
		bounds, counts := h.Buckets()
		var cum int64
		for i, bound := range bounds {
			cum += counts[i]
			f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
				f.name, promLabels(names, h.labels, formatFloat(bound)), cum))
		}
		// The overflow bucket closes the cumulative series at +Inf. _count
		// repeats that cumulative total (not a separate h.Count() read) so
		// the scrape-internal invariant +Inf == _count holds even while
		// observations land concurrently.
		cum += counts[len(counts)-1]
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
			f.name, promLabels(names, h.labels, "+Inf"), cum))
		f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %s",
			f.name, promLabels(names, h.labels, ""), formatFloat(h.Sum())))
		f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d",
			f.name, promLabels(names, h.labels, ""), cum))
	}
	for n, h := range hists {
		histLines(family(n, "histogram"), nil, h)
	}
	for n, v := range histVecs {
		f := family(n, "histogram")
		for _, h := range v.sortedChildren() {
			histLines(f, v.labelNames, h)
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
