package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// buildTracer produces a tracer with a realistic little span tree and a
// few metrics of each kind.
func buildTracer() *Tracer {
	tr := New()
	run := tr.StartSpan("pipeline")
	a := tr.StartSpan("layout")
	time.Sleep(time.Millisecond)
	a.End()
	b := tr.StartSpan("atpg")
	c := tr.StartSpan("gate-sim")
	c.End()
	b.End()
	run.End()
	reg := tr.Metrics()
	reg.Counter("faults").Add(136)
	reg.Gauge("yield").Set(0.75)
	h := reg.Histogram("backtracks", []float64{1, 10, 100})
	h.Observe(0)
	h.Observe(7)
	h.Observe(2000)
	return tr
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := buildTracer().Report("c432")
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Fatalf("JSON round-trip changed the report:\nbefore: %+v\nafter:  %+v", rep, &back)
	}
}

func TestReportStructure(t *testing.T) {
	rep := buildTracer().Report("c432")
	if rep.Circuit != "c432" {
		t.Fatalf("circuit = %q", rep.Circuit)
	}
	if len(rep.Stages) != 1 || rep.Stages[0].Name != "pipeline" {
		t.Fatalf("want one top-level pipeline stage, got %+v", rep.Stages)
	}
	root := rep.Stages[0]
	if len(root.Children) != 2 || root.Children[0].Name != "layout" || root.Children[1].Name != "atpg" {
		t.Fatalf("stage children wrong: %+v", root.Children)
	}
	if rep.TotalNS != root.DurationNS {
		t.Fatalf("total %d != root duration %d", rep.TotalNS, root.DurationNS)
	}
	var sum int64
	for _, c := range root.Children {
		sum += c.DurationNS
	}
	if sum > root.DurationNS {
		t.Fatalf("children sum %d exceeds root %d", sum, root.DurationNS)
	}
	if len(rep.Counters) != 1 || rep.Counters[0].Value != 136 {
		t.Fatalf("counters wrong: %+v", rep.Counters)
	}
	if len(rep.Gauges) != 1 || rep.Gauges[0].Value != 0.75 {
		t.Fatalf("gauges wrong: %+v", rep.Gauges)
	}
	if len(rep.Histograms) != 1 || rep.Histograms[0].Count != 3 {
		t.Fatalf("histograms wrong: %+v", rep.Histograms)
	}
	hs := rep.Histograms[0]
	if len(hs.Counts) != len(hs.Bounds)+1 {
		t.Fatalf("histogram counts %d vs bounds %d", len(hs.Counts), len(hs.Bounds))
	}
	if hs.Counts[len(hs.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1 (the 2000 sample)", hs.Counts[len(hs.Counts)-1])
	}
}

func TestReportUnfinishedSpans(t *testing.T) {
	tr := New()
	tr.StartSpan("open")
	rep := tr.Report("x")
	if len(rep.Stages) != 1 || rep.Stages[0].DurationNS <= 0 {
		t.Fatalf("unfinished span should report its duration so far: %+v", rep.Stages)
	}
}

func TestReportRender(t *testing.T) {
	rep := buildTracer().Report("c432")
	rep.CacheHit = true
	out := rep.Render()
	for _, want := range []string{"run report: c432", "cache hit", "pipeline", "layout", "atpg", "gate-sim", "faults", "yield", "backtracks", "% of run"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
	var nilRep *Report
	if !strings.Contains(nilRep.Render(), "tracing was not enabled") {
		t.Fatal("nil report should render a placeholder")
	}
}
