package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry hands out named metric instruments. Handles are stable: asking
// for the same name twice returns the same instrument, so hot loops fetch
// a handle once and increment through it. A nil *Registry returns nil
// handles, whose methods are allocation-free no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Labeled families (see labels.go). A family name must stay unique
	// across plain and labeled instruments of the same kind.
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		hists:       map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		gaugeVecs:   map[string]*GaugeVec{},
		histVecs:    map[string]*HistogramVec{},
	}
}

// Counter is a monotonically increasing atomic count.
type Counter struct {
	name   string
	labels []string // label values when the counter is a vec child, else nil
	v      atomic.Int64
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value float (e.g. a yield, a coverage ceiling).
type Gauge struct {
	name   string
	labels []string // label values when the gauge is a vec child, else nil
	bits   atomic.Uint64
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Set records v as the gauge's current value. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i holds
// observations v with bounds[i-1] < v <= bounds[i] (upper-inclusive); one
// overflow bucket holds v > bounds[len-1]. Observation is lock-free.
type Histogram struct {
	name   string
	labels []string // label values when the histogram is a vec child, else nil
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Histogram returns (creating if needed) the named histogram. bounds must
// be sorted ascending; they are fixed at first creation and later calls
// with the same name ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{name: name, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bucket upper bounds and the matching counts (the
// extra trailing count is the overflow bucket).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// ExpBuckets returns n bounds growing geometrically from start by factor —
// the usual shape for backtrack counts and vector indices.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
