package par

import (
	"runtime"
	"testing"
)

// TestWorkersNormalization pins the repo-wide rule every parallel entry
// point shares: workers <= 0 means runtime.NumCPU(), positive counts are
// honored verbatim.
func TestWorkersNormalization(t *testing.T) {
	ncpu := runtime.NumCPU()
	cases := []struct{ in, want int }{
		{-7, ncpu},
		{-1, ncpu},
		{0, ncpu},
		{1, 1},
		{2, 2},
		{64, 64},
	}
	for _, c := range cases {
		if got := Workers(c.in); got != c.want {
			t.Errorf("Workers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWorkersForBoundedByItems(t *testing.T) {
	if got := WorkersFor(8, 3); got != 3 {
		t.Errorf("WorkersFor(8, 3) = %d, want 3", got)
	}
	if got := WorkersFor(2, 100); got != 2 {
		t.Errorf("WorkersFor(2, 100) = %d, want 2", got)
	}
	if got := WorkersFor(4, 0); got != 1 {
		t.Errorf("WorkersFor(4, 0) = %d, want 1", got)
	}
	if got := WorkersFor(0, 1); got != 1 {
		t.Errorf("WorkersFor(0, 1) = %d, want 1", got)
	}
}
