// Package par holds the repo-wide worker-count policy shared by every
// parallel entry point (gate-level and switch-level fault simulation,
// ATPG's fault-simulation phase, the experiment suite): a requested
// count <= 0 selects runtime.NumCPU(), any positive count is taken as
// given. Centralizing the rule keeps the subsystems from drifting apart
// on what "default parallelism" means.
package par

import "runtime"

// Workers normalizes a requested worker count: n if positive, else
// runtime.NumCPU().
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// WorkersFor is Workers additionally bounded by the number of
// independent work items (never below 1): goroutines beyond one per
// item only add scheduling overhead.
func WorkersFor(n, items int) int {
	w := Workers(n)
	if items < 1 {
		return 1
	}
	if w > items {
		w = items
	}
	return w
}
