package layout

import (
	"testing"

	"defectsim/internal/cell"
	"defectsim/internal/geom"
	"defectsim/internal/netlist"
)

func buildOrDie(t *testing.T, nl *netlist.Netlist) *Layout {
	t.Helper()
	L, err := Build(nl, NewLibrary())
	if err != nil {
		t.Fatalf("Build(%s): %v", nl.Name, err)
	}
	return L
}

func TestBuildC17(t *testing.T) {
	L := buildOrDie(t, netlist.C17())
	if len(L.Instances) != 6 {
		t.Fatalf("c17 must place 6 cells, got %d", len(L.Instances))
	}
	// 2 power + 11 netlist nets + 6 series-stack diffusion nodes (one per
	// NAND2 cell).
	if len(L.Nets) != 2+11+6 {
		t.Fatalf("c17 nets = %d, want 19", len(L.Nets))
	}
	s := L.ComputeStats()
	if s.Transistors != 24 {
		t.Fatalf("c17 transistors = %d, want 24", s.Transistors)
	}
	if s.WireLengthM1 == 0 || s.WireLengthM2 == 0 {
		t.Fatal("routing must produce wire on both metal layers")
	}
}

func TestInternalNetsCreatedForMultiStageCells(t *testing.T) {
	nl := netlist.New("andchip")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	// AND2 = NAND2 + INV: one inter-stage net plus one series-stack
	// diffusion node inside the NAND2 stage.
	y := nl.AddGate(netlist.And, "y", a, b)
	nl.MarkPO(y)
	L := buildOrDie(t, nl)
	var internals int
	for _, n := range L.Nets {
		if n.Kind == KindInternal {
			internals++
		}
	}
	if internals != 2 {
		t.Fatalf("AND2 cell must add two internal nets, got %d", internals)
	}
}

func TestPlacementNonOverlapping(t *testing.T) {
	L := buildOrDie(t, netlist.C432Class(1))
	for i, a := range L.Instances {
		ra := geom.R(a.X, a.Y, a.X+a.Cell.Width, a.Y+cell.CellHeight)
		for _, b := range L.Instances[i+1:] {
			rb := geom.R(b.X, b.Y, b.X+b.Cell.Width, b.Y+cell.CellHeight)
			if ra.Overlaps(rb) {
				t.Fatalf("instances overlap: %v and %v", ra, rb)
			}
		}
	}
	if L.Rows < 2 {
		t.Fatalf("c432-class should need multiple rows, got %d", L.Rows)
	}
}

func TestRowGeometry(t *testing.T) {
	L := buildOrDie(t, netlist.C432Class(1))
	for r := 1; r < L.Rows; r++ {
		if L.RowY[r] < L.RowY[r-1]+cell.CellHeight+MinChannelH {
			t.Fatalf("row %d does not leave room for channel below", r)
		}
	}
	for _, inst := range L.Instances {
		if inst.Y != L.RowY[inst.Row] {
			t.Fatalf("instance y %d does not match row origin %d", inst.Y, L.RowY[inst.Row])
		}
	}
}

func TestPinNetsResolve(t *testing.T) {
	L := buildOrDie(t, netlist.C17())
	if len(L.Pins) == 0 {
		t.Fatal("no pins collected")
	}
	for _, p := range L.Pins {
		if p.Net < 0 || p.Net >= len(L.Nets) {
			t.Fatalf("pin with bad net %d", p.Net)
		}
	}
}

func TestEveryNetlistNetHasGeometry(t *testing.T) {
	L := buildOrDie(t, netlist.C432Class(1))
	seen := make([]bool, len(L.Nets))
	for _, sh := range L.Shapes.Shapes {
		if sh.Net >= 0 {
			seen[sh.Net] = true
		}
	}
	for i, n := range L.Nets {
		if !seen[i] {
			t.Errorf("net %q (%d) has no geometry", n.Name, i)
		}
	}
}

func TestIONetsMarked(t *testing.T) {
	nl := netlist.C432Class(1)
	L := buildOrDie(t, nl)
	var pis, pos int
	for _, n := range L.Nets {
		if n.IsPI {
			pis++
		}
		if n.IsPO {
			pos++
		}
	}
	if pis != len(nl.PIs) || pos != len(nl.POs) {
		t.Fatalf("PI/PO marking wrong: %d/%d want %d/%d", pis, pos, len(nl.PIs), len(nl.POs))
	}
	// PI nets must reach the I/O pad column on the left edge.
	for i, n := range L.Nets {
		if !n.IsPI {
			continue
		}
		reaches := false
		for _, sh := range L.Shapes.Shapes {
			if sh.Net == i && sh.Layer == geom.LayerMetal1 && sh.Rect.X0 <= IOPadX {
				reaches = true
				break
			}
		}
		if !reaches {
			t.Errorf("PI net %q does not reach the pad column", n.Name)
		}
	}
}

func TestLibraryCaches(t *testing.T) {
	lib := NewLibrary()
	a, err := lib.Get(netlist.Nand, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := lib.Get(netlist.Nand, 2)
	if a != b {
		t.Fatal("library must cache cells")
	}
	if _, err := lib.Get(netlist.Nand, 9); err == nil {
		t.Fatal("bad fanin must propagate error")
	}
}

func TestBuildRejectsInvalidNetlist(t *testing.T) {
	nl := netlist.New("bad")
	nl.AddNet("floater") // undriven non-PI net
	if _, err := Build(nl, nil); err == nil {
		t.Fatal("invalid netlist must be rejected")
	}
}

func TestNetShapesGrouping(t *testing.T) {
	L := buildOrDie(t, netlist.C17())
	g, ok := L.Netlist.NetByName("G11")
	if !ok {
		t.Fatal("G11 missing")
	}
	m := L.NetShapes(2 + g)
	if len(m[geom.LayerPoly]) == 0 {
		t.Fatal("G11 must have poly gate stripes (it feeds two NANDs)")
	}
	if len(m[geom.LayerMetal1]) == 0 {
		t.Fatal("G11 must have metal1")
	}
	for layer := range m {
		if !layer.Conducting() {
			t.Fatalf("NetShapes returned non-conducting layer %v", layer)
		}
	}
}

func TestStatsString(t *testing.T) {
	s := buildOrDie(t, netlist.C17()).ComputeStats()
	if s.String() == "" || s.Cells != 6 {
		t.Fatalf("stats: %+v", s)
	}
}
