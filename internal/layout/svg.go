package layout

import (
	"bufio"
	"fmt"
	"io"

	"defectsim/internal/geom"
)

// layerStyle maps each mask layer to an SVG fill (colors follow the usual
// Magic/Electric conventions loosely: green diffusion, red poly, blue
// metal1, purple metal2).
var layerStyle = map[geom.Layer]string{
	geom.LayerNWell:   "fill:#f5f0c0;fill-opacity:0.5",
	geom.LayerPDiff:   "fill:#c8a050;fill-opacity:0.8",
	geom.LayerNDiff:   "fill:#50a050;fill-opacity:0.8",
	geom.LayerPoly:    "fill:#d04040;fill-opacity:0.8",
	geom.LayerContact: "fill:#101010;fill-opacity:0.9",
	geom.LayerMetal1:  "fill:#4060d0;fill-opacity:0.6",
	geom.LayerVia:     "fill:#404040;fill-opacity:0.9",
	geom.LayerMetal2:  "fill:#9040c0;fill-opacity:0.5",
}

// svgDrawOrder paints bottom-up so upper layers overlay lower ones.
var svgDrawOrder = []geom.Layer{
	geom.LayerNWell, geom.LayerPDiff, geom.LayerNDiff, geom.LayerPoly,
	geom.LayerContact, geom.LayerMetal1, geom.LayerVia, geom.LayerMetal2,
}

// WriteSVG renders the layout as an SVG document (one rect per mask shape,
// y-axis flipped so the origin sits bottom-left as in mask coordinates).
// Set scale to the number of SVG units per λ (≤ 0 chooses 1).
func (L *Layout) WriteSVG(w io.Writer, scale float64) error {
	if scale <= 0 {
		scale = 1
	}
	bw := bufio.NewWriter(w)
	bb := L.Bounds
	width := float64(bb.W()) * scale
	height := float64(bb.H()) * scale
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, "<title>%s — %d cells, %d nets</title>\n", L.Name, len(L.Instances), len(L.Nets))
	fmt.Fprintf(bw, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", width, height)

	tx := func(x int) float64 { return float64(x-bb.X0) * scale }
	ty := func(y int) float64 { return float64(bb.Y1-y) * scale } // flip

	for _, layer := range svgDrawOrder {
		style := layerStyle[layer]
		fmt.Fprintf(bw, `<g id="%s" style="%s">`+"\n", layer, style)
		for _, sh := range L.Shapes.Shapes {
			if sh.Layer != layer || sh.Rect.Empty() {
				continue
			}
			r := sh.Rect
			title := ""
			if sh.Net >= 0 && sh.Net < len(L.Nets) {
				title = fmt.Sprintf("<title>%s</title>", xmlEscape(L.Nets[sh.Net].Name))
			}
			fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f">%s</rect>`+"\n",
				tx(r.X0), ty(r.Y1), float64(r.W())*scale, float64(r.H())*scale, title)
		}
		fmt.Fprintln(bw, "</g>")
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
