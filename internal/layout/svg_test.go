package layout

import (
	"bytes"
	"strings"
	"testing"

	"defectsim/internal/geom"
	"defectsim/internal/netlist"
)

func TestWriteSVG(t *testing.T) {
	L := buildOrDie(t, netlist.C17())
	var buf bytes.Buffer
	if err := L.WriteSVG(&buf, 2); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatal("not an SVG document")
	}
	// One group per drawn layer, every layer present on a routed chip.
	for _, layer := range []geom.Layer{geom.LayerPoly, geom.LayerMetal1, geom.LayerMetal2, geom.LayerVia} {
		if !strings.Contains(s, `id="`+layer.String()+`"`) {
			t.Fatalf("layer group %v missing", layer)
		}
	}
	// Roughly one rect per shape (plus the background).
	rects := strings.Count(s, "<rect")
	if rects < len(L.Shapes.Shapes)/2 {
		t.Fatalf("only %d rects for %d shapes", rects, len(L.Shapes.Shapes))
	}
	// Net names surface as tooltips.
	if !strings.Contains(s, "<title>G11</title>") {
		t.Fatal("net tooltips missing")
	}
	// Default scale works too.
	var buf2 bytes.Buffer
	if err := L.WriteSVG(&buf2, 0); err != nil {
		t.Fatal(err)
	}
	if buf2.Len() == 0 {
		t.Fatal("empty output at default scale")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("escape: %q", got)
	}
}
