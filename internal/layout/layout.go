// Package layout assembles a full standard-cell chip layout from a
// gate-level netlist and the cell library: row-based placement, two-layer
// channel routing, power distribution and I/O pads. The result is a flat,
// net-tagged mask geometry — the input of layout fault extraction.
//
// Routing discipline (classic two-layer channel routing):
//
//   - Each row of cells has a routing channel directly above it; every pin
//     of a cell connects into its row's channel.
//   - Horizontal wiring is metal1 tracks inside channels (one private track
//     per net per channel — no track sharing, which keeps the router
//     trivially correct; adjacent tracks of different nets still provide
//     realistic bridge critical area).
//   - Vertical wiring is metal2: short stubs from pin pads up to tracks and
//     full-height feedthrough columns (right of the core) that carry
//     multi-row nets between channels.
//   - Power is metal1 rails per row (abutting cells merge rails) tied by
//     metal2 trunks on the left edge.
//   - Primary inputs/outputs surface as metal1 pads on the left edge,
//     realized as extensions of the net's lowest channel track.
package layout

import (
	"context"
	"fmt"
	"math"
	"sort"

	"defectsim/internal/cell"
	"defectsim/internal/faultinject"
	"defectsim/internal/geom"
	"defectsim/internal/netlist"
)

// Routing dimensions in λ.
const (
	TrackPitch  = 4 // vertical pitch of channel tracks
	TrackH      = 2 // metal1 track height
	ChannelPad  = 3 // clearance at channel top and bottom
	StubW       = 2 // metal2 pin stub width
	FtPitch     = 6 // feedthrough column pitch
	FtW         = 2 // feedthrough wire width
	PadW        = 8 // I/O pad width
	TrunkW      = 4 // power trunk width
	GNDTrunkX   = -20
	VDDTrunkX   = -30
	IOPadX      = -12 // left edge of I/O pads
	MinChannelH = ChannelPad*2 + TrackPitch
)

// Global net indices 0 and 1 are the power nets; netlist net i becomes
// global net i+2; cell-internal nets are appended after.
const (
	NetGND = 0
	NetVDD = 1
)

// NetKind classifies a global net.
type NetKind uint8

// Net kinds.
const (
	KindPower NetKind = iota
	KindSignal
	KindInternal // cell-internal stage net (not visible in the netlist)
)

// Net describes one electrical net of the layout.
type Net struct {
	Name string
	Kind NetKind
	// NetlistNet is the originating netlist net index, or -1 for power and
	// cell-internal nets.
	NetlistNet int
	IsPI, IsPO bool
}

// Instance is one placed standard cell.
type Instance struct {
	Cell      *cell.Cell
	GateIndex int // index into the netlist's gate list
	X, Y      int // placement origin (lower-left)
	Row       int
	NodeToNet []int // cell-local node -> global net
}

// Pin is a routable connection point in chip coordinates.
type Pin struct {
	Net  int
	Pad  geom.Rect // metal1 pad
	Row  int
	Inst int // owning instance index
	Node int // cell-local node of the pad
	// Input reports whether the pad is a gate-input pad (as opposed to an
	// output/drain pad); input pins anchor receiver-branch open faults.
	Input bool
	// StubTop is the y the pin's metal2 stub rises to (top of its track).
	StubTop int
}

// Layout is the assembled chip.
type Layout struct {
	Name      string
	Netlist   *netlist.Netlist
	Nets      []Net
	Instances []Instance
	Shapes    geom.ShapeSet
	Pins      []Pin

	Rows      int
	RowY      []int // y origin of each row
	CoreWidth int
	Bounds    geom.Rect
}

// Library caches built cells per (gate type, fan-in).
type Library struct {
	cells map[[2]int]*cell.Cell
}

// NewLibrary returns an empty cell cache.
func NewLibrary() *Library { return &Library{cells: make(map[[2]int]*cell.Cell)} }

// Get returns (building on first use) the cell for gate type t with the
// given fan-in.
func (l *Library) Get(t netlist.GateType, fanin int) (*cell.Cell, error) {
	key := [2]int{int(t), fanin}
	if c, ok := l.cells[key]; ok {
		return c, nil
	}
	c, err := cell.Build(t, fanin)
	if err != nil {
		return nil, err
	}
	l.cells[key] = c
	return c, nil
}

// Build places and routes nl and returns the finished layout.
func Build(nl *netlist.Netlist, lib *Library) (*Layout, error) {
	return BuildCtx(context.Background(), nl, lib)
}

// BuildCtx is Build with cancellation: the context is consulted on entry
// and between the placement and routing phases, and the layout.build
// fault-injection hook fires on entry.
func BuildCtx(ctx context.Context, nl *netlist.Netlist, lib *Library) (*Layout, error) {
	if err := faultinject.Fire(ctx, faultinject.HookLayoutBuild); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if lib == nil {
		lib = NewLibrary()
	}
	L := &Layout{Name: nl.Name, Netlist: nl}

	// Global nets: power, then netlist nets.
	L.Nets = append(L.Nets,
		Net{Name: "GND", Kind: KindPower, NetlistNet: -1},
		Net{Name: "VDD", Kind: KindPower, NetlistNet: -1},
	)
	for i, name := range nl.NetNames {
		L.Nets = append(L.Nets, Net{Name: name, Kind: KindSignal, NetlistNet: i})
	}
	for _, pi := range nl.PIs {
		L.Nets[2+pi].IsPI = true
	}
	for _, po := range nl.POs {
		L.Nets[2+po].IsPO = true
	}

	// Instantiate cells in topological order so connected cells land near
	// each other.
	order, _, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	totalW := 0
	for _, gi := range order {
		g := &nl.Gates[gi]
		c, err := lib.Get(g.Type, len(g.Inputs))
		if err != nil {
			return nil, fmt.Errorf("layout %s: gate %d: %w", nl.Name, gi, err)
		}
		inst := Instance{Cell: c, GateIndex: gi, NodeToNet: make([]int, c.NumNodes())}
		inst.NodeToNet[cell.NodeGND] = NetGND
		inst.NodeToNet[cell.NodeVDD] = NetVDD
		for i := range inst.NodeToNet {
			if i < 2 {
				continue
			}
			inst.NodeToNet[i] = -1
		}
		for i, in := range g.Inputs {
			inst.NodeToNet[c.Inputs[i]] = 2 + in
		}
		inst.NodeToNet[c.Output] = 2 + g.Out
		for i := 2; i < c.NumNodes(); i++ {
			if inst.NodeToNet[i] == -1 {
				L.Nets = append(L.Nets, Net{
					Name:       fmt.Sprintf("%s.%s#%d", nl.NetNames[g.Out], c.NodeNames[i], len(L.Nets)),
					Kind:       KindInternal,
					NetlistNet: -1,
				})
				inst.NodeToNet[i] = len(L.Nets) - 1
			}
		}
		L.Instances = append(L.Instances, inst)
		totalW += c.Width
	}

	// Row assignment: aim at a roughly square core.
	rows := int(math.Round(math.Sqrt(float64(totalW) / float64(2*cell.CellHeight))))
	if rows < 1 {
		rows = 1
	}
	rowTarget := (totalW + rows - 1) / rows
	x, row := 0, 0
	for i := range L.Instances {
		inst := &L.Instances[i]
		if x > 0 && x+inst.Cell.Width > rowTarget && row < rows-1 {
			row++
			x = 0
		}
		inst.Row = row
		inst.X = x
		x += inst.Cell.Width
		if x > L.CoreWidth {
			L.CoreWidth = x
		}
	}
	L.Rows = row + 1

	// Placement is done; check for cancellation before routing.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Collect pins (chip x known; y filled in after channel sizing).
	type rawPin struct {
		inst  int
		node  int
		pad   geom.Rect // cell-local
		net   int
		row   int
		input bool
	}
	var raw []rawPin
	for ii, inst := range L.Instances {
		for _, p := range inst.Cell.Pins {
			input := p.Pad.Y0 >= cell.InPadY0 && p.Pad.Y1 <= cell.InPadY1
			raw = append(raw, rawPin{ii, p.Node, p.Pad, inst.NodeToNet[p.Node], inst.Row, input})
		}
	}

	// Determine each net's channel span and per-channel track assignment.
	type netRoute struct {
		minChan, maxChan int
		track            map[int]int // channel -> track index
		ftCol            int         // feedthrough column index, -1 if single-channel
	}
	routes := make([]*netRoute, len(L.Nets))
	for _, rp := range raw {
		if rp.net <= NetVDD {
			continue
		}
		r := routes[rp.net]
		if r == nil {
			r = &netRoute{minChan: rp.row, maxChan: rp.row, track: map[int]int{}, ftCol: -1}
			routes[rp.net] = r
		}
		if rp.row < r.minChan {
			r.minChan = rp.row
		}
		if rp.row > r.maxChan {
			r.maxChan = rp.row
		}
	}
	// Feedthrough columns for multi-row nets (assigned before tracks so
	// horizontal extents are final).
	ftCols := 0
	for _, r := range routes {
		if r == nil {
			continue
		}
		if r.maxChan > r.minChan {
			r.ftCol = ftCols
			ftCols++
		}
	}

	// Horizontal extent of each net in each channel it crosses: the union
	// of its pin stubs, its feedthrough column and (for chip I/O) the pad
	// extension — exactly the metal1 the track will carry.
	type extKey struct{ net, ch int }
	extLo := map[extKey]int{}
	extHi := map[extKey]int{}
	extend := func(net, ch, x0, x1 int) {
		k := extKey{net, ch}
		if v, ok := extLo[k]; !ok || x0 < v {
			extLo[k] = x0
		}
		if v, ok := extHi[k]; !ok || x1 > v {
			extHi[k] = x1
		}
	}
	for _, rp := range raw {
		if rp.net <= NetVDD {
			continue
		}
		pad := rp.pad.Translate(L.Instances[rp.inst].X, 0)
		cxm := (pad.X0 + pad.X1) / 2
		extend(rp.net, rp.row, cxm-StubW/2-1, cxm+StubW/2+1)
	}
	for net, r := range routes {
		if r == nil {
			continue
		}
		if r.ftCol >= 0 {
			fx := L.CoreWidth + FtPitch + r.ftCol*FtPitch
			for c := r.minChan; c <= r.maxChan; c++ {
				extend(net, c, fx-1, fx+FtW+1)
			}
		}
		if L.Nets[net].IsPI || L.Nets[net].IsPO {
			extend(net, r.minChan, IOPadX, 0)
		}
	}

	// Left-edge channel routing: per channel, sort the net intervals by
	// left edge and pack them greedily onto tracks, keeping TrackGap of
	// clearance between same-track intervals.
	const TrackGap = 4
	tracksPerChan := make([]int, L.Rows)
	for ch := 0; ch < L.Rows; ch++ {
		type interval struct {
			net, x0, x1 int
		}
		var ivs []interval
		for net, r := range routes {
			if r == nil || ch < r.minChan || ch > r.maxChan {
				continue
			}
			k := extKey{net, ch}
			ivs = append(ivs, interval{net, extLo[k], extHi[k]})
		}
		sort.Slice(ivs, func(a, b int) bool {
			if ivs[a].x0 != ivs[b].x0 {
				return ivs[a].x0 < ivs[b].x0
			}
			return ivs[a].net < ivs[b].net
		})
		var trackEnd []int // rightmost occupied x per track
		for _, iv := range ivs {
			placed := false
			for t := range trackEnd {
				if trackEnd[t]+TrackGap <= iv.x0 {
					routes[iv.net].track[ch] = t
					trackEnd[t] = iv.x1
					placed = true
					break
				}
			}
			if !placed {
				routes[iv.net].track[ch] = len(trackEnd)
				trackEnd = append(trackEnd, iv.x1)
			}
		}
		tracksPerChan[ch] = len(trackEnd)
	}

	// Vertical stackup: row 0 at y 0, each channel sized to its tracks.
	L.RowY = make([]int, L.Rows)
	chanY0 := make([]int, L.Rows)
	y := 0
	for rws := 0; rws < L.Rows; rws++ {
		L.RowY[rws] = y
		y += cell.CellHeight
		chanY0[rws] = y
		h := ChannelPad*2 + tracksPerChan[rws]*TrackPitch
		if h < MinChannelH {
			h = MinChannelH
		}
		y += h
	}
	chipTop := y

	trackY := func(net, ch int) int {
		return chanY0[ch] + ChannelPad + routes[net].track[ch]*TrackPitch
	}

	// Emit cell geometry.
	for i := range L.Instances {
		inst := &L.Instances[i]
		inst.Y = L.RowY[inst.Row]
		nodeToNet := inst.NodeToNet
		L.Shapes.Append(&inst.Cell.Shapes, inst.X, inst.Y, func(n int) int {
			if n < 0 {
				return -1
			}
			return nodeToNet[n]
		})
	}

	// Track extents: leftmost/rightmost x each net needs in each channel.
	type key struct{ net, ch int }
	xMin := map[key]int{}
	xMax := map[key]int{}
	widen := func(net, ch, x0, x1 int) {
		k := key{net, ch}
		if v, ok := xMin[k]; !ok || x0 < v {
			xMin[k] = x0
		}
		if v, ok := xMax[k]; !ok || x1 > v {
			xMax[k] = x1
		}
	}

	// Pins: vias and metal2 stubs to the track.
	for _, rp := range raw {
		pad := rp.pad.Translate(L.Instances[rp.inst].X, L.Instances[rp.inst].Y)
		if rp.net <= NetVDD {
			L.Pins = append(L.Pins, Pin{Net: rp.net, Pad: pad, Row: rp.row, Inst: rp.inst, Node: rp.node, Input: rp.input})
			continue
		}
		ty := trackY(rp.net, rp.row)
		L.Pins = append(L.Pins, Pin{
			Net: rp.net, Pad: pad, Row: rp.row, Inst: rp.inst, Node: rp.node,
			Input: rp.input, StubTop: ty + TrackH,
		})
		cxm := (pad.X0 + pad.X1) / 2
		stub := geom.R(cxm-StubW/2, pad.Y0, cxm+StubW/2, ty+TrackH)
		L.Shapes.AddNet(geom.LayerMetal2, stub, rp.net)
		L.Shapes.AddNet(geom.LayerVia, geom.R(stub.X0, pad.Y0+1, stub.X1, pad.Y0+3), rp.net)
		L.Shapes.AddNet(geom.LayerVia, geom.R(stub.X0, ty, stub.X1, ty+TrackH), rp.net)
		widen(rp.net, rp.row, stub.X0-1, stub.X1+1)
	}

	// Feedthrough columns and I/O pad extensions.
	for net, r := range routes {
		if r == nil {
			continue
		}
		if r.ftCol >= 0 {
			fx := L.CoreWidth + FtPitch + r.ftCol*FtPitch
			for c := r.minChan; c < r.maxChan; c++ {
				y0 := trackY(net, c)
				y1 := trackY(net, c+1)
				L.Shapes.AddNet(geom.LayerMetal2, geom.R(fx, y0, fx+FtW, y1+TrackH), net)
				L.Shapes.AddNet(geom.LayerVia, geom.R(fx, y0, fx+FtW, y0+TrackH), net)
				L.Shapes.AddNet(geom.LayerVia, geom.R(fx, y1, fx+FtW, y1+TrackH), net)
				widen(net, c, fx-1, fx+FtW+1)
				widen(net, c+1, fx-1, fx+FtW+1)
			}
		}
		if L.Nets[net].IsPI || L.Nets[net].IsPO {
			widen(net, r.minChan, IOPadX, 0)
		}
	}

	// Emit tracks.
	for k2, x0 := range xMin {
		ty := trackY(k2.net, k2.ch)
		L.Shapes.AddNet(geom.LayerMetal1, geom.R(x0, ty, xMax[k2], ty+TrackH), k2.net)
	}

	// Power: trunks on the left, strapped to every row's rails.
	L.Shapes.AddNet(geom.LayerMetal2, geom.R(GNDTrunkX, 0, GNDTrunkX+TrunkW, chipTop), NetGND)
	L.Shapes.AddNet(geom.LayerMetal2, geom.R(VDDTrunkX, 0, VDDTrunkX+TrunkW, chipTop), NetVDD)
	for rws := 0; rws < L.Rows; rws++ {
		gy := L.RowY[rws]
		L.Shapes.AddNet(geom.LayerMetal1, geom.R(VDDTrunkX, gy, 0, gy+cell.RailH), NetGND)
		L.Shapes.AddNet(geom.LayerVia,
			geom.R(GNDTrunkX+1, gy+1, GNDTrunkX+3, gy+3), NetGND)
		vy := gy + cell.CellHeight - cell.RailH
		L.Shapes.AddNet(geom.LayerMetal1, geom.R(VDDTrunkX, vy, 0, vy+cell.RailH), NetVDD)
		L.Shapes.AddNet(geom.LayerVia,
			geom.R(VDDTrunkX+1, vy+1, VDDTrunkX+3, vy+3), NetVDD)
	}

	bb, _ := L.Shapes.Bounds()
	L.Bounds = bb
	return L, nil
}

// NetShapes returns the conducting shapes of net n grouped by layer.
func (L *Layout) NetShapes(n int) map[geom.Layer][]geom.Rect {
	out := make(map[geom.Layer][]geom.Rect)
	for _, sh := range L.Shapes.Shapes {
		if sh.Net == n && sh.Layer.Conducting() {
			out[sh.Layer] = append(out[sh.Layer], sh.Rect)
		}
	}
	return out
}

// Stats summarizes a layout.
type Stats struct {
	Name          string
	Cells         int
	Nets          int
	Rows          int
	Width, Height int
	Shapes        int
	WireLengthM1  int64 // total metal1 wire length (λ), excluding rails
	WireLengthM2  int64
	Transistors   int
}

// ComputeStats returns summary statistics of the layout.
func (L *Layout) ComputeStats() Stats {
	s := Stats{
		Name: L.Name, Cells: len(L.Instances), Nets: len(L.Nets),
		Rows: L.Rows, Width: L.Bounds.W(), Height: L.Bounds.H(),
		Shapes: len(L.Shapes.Shapes),
	}
	for _, inst := range L.Instances {
		s.Transistors += len(inst.Cell.Transistors)
	}
	for _, sh := range L.Shapes.Shapes {
		if sh.Net <= NetVDD {
			continue
		}
		switch sh.Layer {
		case geom.LayerMetal1:
			s.WireLengthM1 += int64(sh.Rect.MaxDim())
		case geom.LayerMetal2:
			s.WireLengthM2 += int64(sh.Rect.MaxDim())
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d cells (%d transistors), %d nets, %d rows, %d×%dλ, %d shapes, wire M1 %dλ / M2 %dλ",
		s.Name, s.Cells, s.Transistors, s.Nets, s.Rows, s.Width, s.Height, s.Shapes,
		s.WireLengthM1, s.WireLengthM2)
}
