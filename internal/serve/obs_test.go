package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"defectsim/internal/faultinject"
	"defectsim/internal/obs"
)

// Tests for the observability surface: Prometheus exposition on
// /metrics, request-ID correlation, the structured access log, build
// info on /healthz, and the live job event streams (SSE + long-poll).

// TestMetricsPromSmoke is the CI scrape smoke: run a pipeline job, then
// scrape /metrics and structurally validate the exposition with the
// obs-package line-level validator (no external parser).
func TestMetricsPromSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st := submitJob(t, ts, smallC17)
	waitState(t, ts, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", got, obs.PromContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	n, err := obs.ValidateExposition(text)
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	if n == 0 {
		t.Fatal("exposition has no samples")
	}
	for _, want := range []string{
		"# TYPE serve_requests_total counter",
		`serve_requests_total{route="/v1/pipeline",code="202"} 1`,
		`pipeline_stage_seconds_bucket{stage="atpg",le="+Inf"} 1`,
		"serve_jobs_done 1",
		"serve_uptime_seconds",
		"dlprojd_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// The JSON form stays available behind ?format=json.
	code, data := get(t, ts.URL+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("metrics?format=json = %d", code)
	}
	rep := decode[obs.Report](t, data)
	found := false
	for _, c := range rep.Counters {
		if c.Name == "serve_jobs_done" && c.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("JSON report missing serve_jobs_done=1: %s", data)
	}
}

// TestRequestIDPropagation: a valid inbound X-Request-ID is echoed and
// lands in the job's run report; an invalid one is replaced with a
// generated ID.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/pipeline", strings.NewReader(smallC17))
	req.Header.Set("X-Request-ID", "client-id.123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id.123" {
		t.Fatalf("echoed request id = %q, want client-id.123", got)
	}
	st := decode[jobStatus](t, body.Bytes())
	waitState(t, ts, st.ID, StateDone)
	code, data := waitResult(t, ts, st.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, data)
	}
	res := decode[jobResult](t, data)
	if res.Report == nil || res.Report.RequestID != "client-id.123" {
		t.Fatalf("run report request id not propagated: %+v", res.Report)
	}

	// Malformed inbound IDs (here: a space) are replaced, not echoed.
	req2, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req2.Header.Set("X-Request-ID", "bad id with spaces")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	got := resp2.Header.Get("X-Request-ID")
	if got == "" || got == "bad id with spaces" {
		t.Fatalf("invalid inbound id must be replaced, got %q", got)
	}
}

// TestAccessLog: every request writes one structured JSON log line with
// request_id, matched route and status; probe endpoints log at Debug.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	_, ts := newTestServer(t, Config{Workers: 1, Logger: logger})

	req, _ := http.NewRequest("GET", ts.URL+"/v1/pipeline/job-999", nil)
	req.Header.Set("X-Request-ID", "log-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	get(t, ts.URL+"/healthz") // Debug-level: filtered by the Info handler

	var entry map[string]any
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("access log line is not JSON: %q: %v", line, err)
		}
		if e["msg"] == "http request" && e["request_id"] == "log-test-1" {
			entry, found = e, true
		}
		if e["route"] == "/healthz" {
			t.Fatalf("probe endpoint logged at Info: %q", line)
		}
	}
	if !found {
		t.Fatalf("no access log line for request log-test-1:\n%s", buf.String())
	}
	if entry["route"] != "/v1/pipeline/{id}" {
		t.Fatalf("route = %v, want /v1/pipeline/{id}", entry["route"])
	}
	if entry["status"] != float64(http.StatusNotFound) {
		t.Fatalf("status = %v, want 404", entry["status"])
	}
	if entry["method"] != "GET" {
		t.Fatalf("method = %v, want GET", entry["method"])
	}
}

// TestHealthzBuildInfo: /healthz reports the binary's build identity.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	code, data := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var h struct {
		Status string    `json:"status"`
		Build  BuildInfo `json:"build"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if h.Build.GoVersion == "" {
		t.Fatalf("healthz build info missing go version: %s", data)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSE consumes frames from an SSE body until a terminal event or
// the deadline, returning the frames seen.
func readSSE(t *testing.T, body *bufio.Scanner, deadline time.Time) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		cur sseEvent
	)
	for time.Now().Before(deadline) && body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
				if terminalEvent(cur.event) {
					return out
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			// comment / keep-alive
		}
	}
	t.Fatalf("SSE stream ended without a terminal event; got %+v", out)
	return nil
}

// TestEventsSSE is the CI streaming smoke: an SSE client attached to a
// running job sees the lifecycle — queued, running, stage transitions —
// and a terminal done event, then the stream closes.
func TestEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st := submitJob(t, ts, smallC17)

	resp, err := http.Get(ts.URL + "/v1/pipeline/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	events := readSSE(t, bufio.NewScanner(resp.Body), time.Now().Add(30*time.Second))

	byType := map[string]int{}
	for _, ev := range events {
		byType[ev.event]++
		var je JobEvent
		if err := json.Unmarshal([]byte(ev.data), &je); err != nil {
			t.Fatalf("event data is not JSON: %q: %v", ev.data, err)
		}
		if fmt.Sprint(je.Seq) != ev.id {
			t.Fatalf("SSE id %q != payload seq %d", ev.id, je.Seq)
		}
	}
	if byType[EventQueued] != 1 || byType[EventDone] != 1 {
		t.Fatalf("missing queued/done events: %v", byType)
	}
	if byType[EventStageStart] == 0 || byType[EventStageStart] != byType[EventStageEnd] {
		t.Fatalf("unbalanced stage events: %v", byType)
	}
	if last := events[len(events)-1]; last.event != EventDone {
		t.Fatalf("stream did not end on done: %+v", last)
	}
	// Seqs are strictly increasing from 1.
	for i, ev := range events {
		if ev.id != fmt.Sprint(i+1) {
			t.Fatalf("event %d has id %q, want %d", i, ev.id, i+1)
		}
	}
}

// TestEventsSSEResume: a reconnecting client with Last-Event-ID replays
// only the events it has not seen.
func TestEventsSSEResume(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st := submitJob(t, ts, smallC17)
	waitState(t, ts, st.ID, StateDone)

	// First read the full stream to learn the final seq.
	resp, err := http.Get(ts.URL + "/v1/pipeline/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	full := readSSE(t, bufio.NewScanner(resp.Body), time.Now().Add(10*time.Second))
	resp.Body.Close()
	if len(full) < 2 {
		t.Fatalf("want at least 2 events, got %+v", full)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/pipeline/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", full[len(full)-2].id)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	tail := readSSE(t, bufio.NewScanner(resp2.Body), time.Now().Add(10*time.Second))
	if len(tail) != 1 || tail[0].id != full[len(full)-1].id {
		t.Fatalf("resume replayed %+v, want only the final event %+v", tail, full[len(full)-1])
	}
}

// TestEventsLongPoll drives the ?poll=1 fallback to a terminal state.
func TestEventsLongPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st := submitJob(t, ts, smallC17)

	var all []JobEvent
	since := int64(0)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, data := get(t, fmt.Sprintf("%s/v1/pipeline/%s/events?poll=1&since=%d&wait_ms=2000", ts.URL, st.ID, since))
		if code != http.StatusOK {
			t.Fatalf("poll = %d: %s", code, data)
		}
		pr := decode[pollEventsResponse](t, data)
		for _, ev := range pr.Events {
			if ev.Seq != since+1 {
				t.Fatalf("poll gap: got seq %d after %d", ev.Seq, since)
			}
			since = ev.Seq
			all = append(all, ev)
		}
		if pr.Terminal {
			if len(all) == 0 || !terminalEvent(all[len(all)-1].Type) {
				t.Fatalf("terminal poll without terminal event: %+v", all)
			}
			return
		}
	}
	t.Fatalf("long-poll never reached terminal; events: %+v", all)
}

// TestEventsUnknownJob: the events endpoint 404s cleanly.
func TestEventsUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code, _ := get(t, ts.URL+"/v1/pipeline/job-999/events"); code != http.StatusNotFound {
		t.Fatalf("events for unknown job = %d, want 404", code)
	}
}

// TestEventsCancelledJob: cancelling a queued job seals its stream with
// a terminal cancelled event.
func TestEventsCancelledJob(t *testing.T) {
	hook, release := blockHook()
	restore := faultinject.Set(faultinject.HookSwitchSimVector, hook)
	defer restore()
	defer release()

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	running := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":301}`)
	waitState(t, ts, running.ID, StateRunning)
	queued := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":302}`)

	code, _, data := post(t, ts.URL+"/v1/pipeline/"+queued.ID+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", code, data)
	}
	codeP, dataP := get(t, ts.URL+"/v1/pipeline/"+queued.ID+"/events?poll=1&since=0&wait_ms=5000")
	if codeP != http.StatusOK {
		t.Fatalf("poll = %d", codeP)
	}
	pr := decode[pollEventsResponse](t, dataP)
	if !pr.Terminal {
		t.Fatalf("cancelled job's stream not terminal: %+v", pr)
	}
	last := pr.Events[len(pr.Events)-1]
	if last.Type != EventCancelled {
		t.Fatalf("last event = %q, want cancelled: %+v", last.Type, pr.Events)
	}
}
