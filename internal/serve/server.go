// Package serve is the hardened serving layer of the defect-level
// projection pipeline: the HTTP/JSON API behind the dlprojd daemon.
//
// The cheap model-equation and fitting endpoints (/v1/dl, /v1/fit,
// /v1/coverage) answer synchronously. Pipeline runs — layout, extraction,
// ATPG, both fault simulations — are minutes of work at the high end, so
// they go through an asynchronous job API (/v1/pipeline submit / status /
// result / cancel) executed on a bounded worker pool.
//
// Robustness is the point of this package, not a garnish:
//
//   - Admission control: a bounded queue between the HTTP handlers and the
//     worker pool. A full queue sheds the submission with 429 and a
//     Retry-After hint — the handler never blocks on the pool.
//   - Deduplication: concurrent submissions with the same coalescing key
//     (experiments.CacheKey — circuit + result-determining config — plus
//     the execution budgets, Deadline and StageBudgets) coalesce onto one
//     job, sharing one pipeline run — and one good-machine trace — instead
//     of N identical ones. The budgets participate because coalesced
//     submitters share the live run's fate: a request with different
//     budgets must not inherit another request's degradation or deadline.
//   - Per-request deadlines map onto experiments.Config.Deadline and
//     StageBudgets, so a slow stage degrades the job (or fails it with a
//     typed error) instead of hanging a connection.
//   - Failures surface as structured JSON: a *experiments.PipelineError
//     keeps its stage name and progress-counter snapshot; handler panics
//     are recovered into a 500 JSON error and counted.
//   - Graceful drain: Drain stops admission (readiness flips off), waits
//     out in-flight jobs against a drain budget, cancels whatever remains,
//     and leaves the pool stopped. dlprojd wires this to SIGTERM.
//
// Every queue/shedding/coalescing event is recorded in the obs registry
// exposed at /metrics, and every job carries its own obs run report.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"defectsim/internal/cluster"
	"defectsim/internal/experiments"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
	"defectsim/internal/par"
	"defectsim/internal/store"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a serving-grade default, applied by New.
type Config struct {
	// QueueDepth bounds the admission queue between the HTTP handlers and
	// the worker pool; a submission finding it full is shed with 429.
	// Default 16.
	QueueDepth int
	// Workers is the number of concurrently executing pipeline jobs.
	// Default 2 (each job is internally fault-parallel already; see
	// SimWorkers).
	Workers int
	// SimWorkers is the per-job experiments.Config.Workers value applied
	// when a request does not choose its own: the worker-pool width of the
	// fault-parallel simulators inside one pipeline run. Default 0
	// (runtime.NumCPU via internal/par).
	SimWorkers int
	// DefaultDeadline bounds a job's wall time when the request does not
	// set deadline_ms. Zero means unlimited.
	DefaultDeadline time.Duration
	// MaxDeadline caps the per-request deadline; requests asking for more
	// are rejected with 400. Zero means uncapped.
	MaxDeadline time.Duration
	// DrainBudget is how long Drain waits for in-flight and queued jobs to
	// finish before cancelling them. Default 10s.
	DrainBudget time.Duration
	// DrainGrace is how long Drain waits for cancelled jobs to unwind
	// after the budget expired (the simulators poll their context at
	// ~100ms granularity). Default 5s.
	DrainGrace time.Duration
	// RetryAfter is the base Retry-After hint attached to shed (429) and
	// draining (503) responses. The served hint scales with the backlog —
	// a full queue on busy workers hints longer waits than a transient
	// spike — up to RetryAfterMax. Default 1s.
	RetryAfter time.Duration
	// RetryAfterMax caps the adaptive Retry-After hint. Default 8×RetryAfter.
	RetryAfterMax time.Duration
	// CacheDir, when non-empty, holds one result-cache file per cache key,
	// so repeated submissions of a finished configuration are served from
	// cache. Empty disables the cache (unless Store is set directly).
	CacheDir string
	// Store overrides the result store backend. Nil with a CacheDir builds
	// a store.FS over it; nil without one disables result caching. The
	// serving layer persists every complete run here and serves the
	// /v1/store API from it.
	Store store.Store
	// Cluster, when non-nil, routes pipeline submissions across the peer
	// ring: a job whose cache key is owned by another node is forwarded
	// there (and its result fetched back through the owner's /v1/store
	// API). When the owner is unreachable the replica set is walked —
	// fetching an already-replicated result, then delegating the compute —
	// before falling back to a local run.
	Cluster *cluster.Cluster
	// Membership, when non-nil, is the file-backed membership source
	// behind POST /v1/cluster/reload (and dlprojd's SIGHUP handler).
	Membership *cluster.Membership
	// SpoolDir, when non-empty (and Cluster has RF > 1 with a resolved
	// store), holds the hinted-handoff spool: replica writes that failed
	// while a peer was down, replayed when its breaker closes. Keep it
	// outside CacheDir — spool records are hints, not result envelopes.
	SpoolDir string
	// HintReplayInterval is the fallback cadence for draining the hint
	// spool (breaker recovery triggers an immediate replay; the ticker
	// catches deferred hints and missed wakeups). Default 5s.
	HintReplayInterval time.Duration
	// MaxBatch bounds the items of one /v1/pipeline:batch submission.
	// Default 64.
	MaxBatch int
	// MaxJobs bounds the finished-job records retained for status/result
	// queries; the oldest finished jobs are evicted first. Default 1024.
	MaxJobs int
	// Obs is the server-level tracer/registry behind /metrics. Default
	// obs.New(). (Each job additionally gets its own tracer for its run
	// report.)
	Obs *obs.Tracer
	// Logger receives the structured access log and job lifecycle events.
	// Nil disables logging entirely.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.DrainBudget <= 0 {
		c.DrainBudget = 10 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RetryAfterMax <= 0 {
		c.RetryAfterMax = 8 * c.RetryAfter
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.HintReplayInterval <= 0 {
		c.HintReplayInterval = 5 * time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
	c.SimWorkers = par.Workers(c.SimWorkers)
	return c
}

// Job states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// job is one asynchronous pipeline run.
type job struct {
	id        string
	key       string // result-cache key (experiments.CacheKey)
	ckey      string // coalescing key: cache key + execution budgets
	circuit   string
	requestID string // correlation ID of the submitting request
	cfg       experiments.Config
	nl        *netlist.Netlist
	events    *eventLog
	// fwdBody is the validated request body, kept for forwarding to the
	// key's ring owner; noForward pins the job to local execution (set on
	// submissions that were themselves forwarded — the anti-loop guard).
	fwdBody   []byte
	noForward bool
	// ndetectN, when > 0, runs the n-detect study (experiments.
	// RunNDetectStudy up to this multiplicity) on the finished pipeline;
	// the study result lands in the mu-guarded study field below.
	ndetectN int

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	coalesced int64 // extra submissions sharing this run
	pipe      *experiments.Pipeline
	study     *experiments.NDetectStudy
	cacheHit  bool
	remote    string // peer that computed the adopted result, if any
	err       error
}

func (j *job) snapshot() (state string, err error, p *experiments.Pipeline) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err, j.pipe
}

// Server owns the job store, the admission queue and the worker pool.
// Create with New, expose via Handler, stop with Drain.
type Server struct {
	cfg     Config
	tr      *obs.Tracer
	reg     *obs.Registry
	logger  *slog.Logger
	started time.Time
	build   BuildInfo

	queue    chan *job
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// store is the resolved result store (cfg.Store, or an FS store over
	// cfg.CacheDir); nil when caching is disabled. The /v1/store peer API
	// serves this backend directly — peers must see this node's local
	// copies, never a recursive replica walk.
	store store.Store
	// rstore is the store the pipeline runs read and write through: the
	// Replicated composition when the cluster runs with RF > 1, otherwise
	// identical to store.
	rstore store.Store
	// replicated / spool are the replication internals (nil without RF > 1);
	// replayWake is poked by a recovering peer breaker to trigger an
	// immediate hint replay.
	replicated *store.Replicated
	spool      *store.Spool
	replayWake chan struct{}

	mu       sync.Mutex
	cond     *sync.Cond // broadcast whenever queued/running change
	jobs     map[string]*job
	order    []string        // submission order, for bounded retention
	inflight map[string]*job // cache key → live (queued/running) job
	queued   int
	running  int
	draining bool

	nextID atomic.Int64

	mQueueDepth   *obs.Gauge
	mInflight     *obs.Gauge
	mDraining     *obs.Gauge
	mUptime       *obs.Gauge
	mShed         *obs.Counter
	mCoalesced    *obs.Counter
	mSubmitted    *obs.Counter
	mRuns         *obs.Counter
	mComputed     *obs.Counter
	mDone         *obs.Counter
	mFailed       *obs.Counter
	mCancelled    *obs.Counter
	mPanics       *obs.Counter
	mRequests     *obs.CounterVec   // serve_requests_total{route,code}
	mReqSeconds   *obs.HistogramVec // serve_request_seconds{route}
	mStageSeconds *obs.HistogramVec // pipeline_stage_seconds{stage}, fleet-level
}

// BuildInfo identifies the running binary, read once from the embedded
// module/VCS metadata (debug.ReadBuildInfo). Served on /healthz and as
// the dlprojd_build_info gauge.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Version   string `json:"version,omitempty"`  // main module version
	Revision  string `json:"revision,omitempty"` // vcs.revision
	Modified  bool   `json:"modified,omitempty"` // vcs.modified (dirty tree)
}

func readBuildInfo() BuildInfo {
	b := BuildInfo{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = bi.GoVersion
	b.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// New builds a Server and starts its worker pool. The caller must
// eventually call Drain (even with no traffic) to stop the workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		tr:         cfg.Obs,
		reg:        cfg.Obs.Metrics(),
		logger:     cfg.Logger,
		started:    time.Now(),
		build:      readBuildInfo(),
		queue:      make(chan *job, cfg.QueueDepth),
		stop:       make(chan struct{}),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		jobs:       map[string]*job{},
		inflight:   map[string]*job{},
	}
	if s.logger == nil {
		s.logger = slog.New(nopLog{})
	}
	s.store = cfg.Store
	if s.store == nil && cfg.CacheDir != "" {
		fs, err := store.NewFS(cfg.CacheDir, store.NewMetrics(cfg.Obs.Metrics()))
		if err != nil {
			// A broken cache dir degrades to uncached serving — the cache is
			// an optimization, not a precondition for answering requests.
			s.logger.Warn("result store disabled", "cache_dir", cfg.CacheDir, "error", err)
		} else {
			s.store = fs
		}
	}
	s.rstore = s.store
	if c := cfg.Cluster; c != nil && c.RF() > 1 && s.store != nil {
		sm := store.NewMetrics(cfg.Obs.Metrics())
		if cfg.SpoolDir != "" {
			sp, err := store.NewSpool(cfg.SpoolDir, 0, sm)
			if err != nil {
				s.logger.Warn("hint spool disabled", "spool_dir", cfg.SpoolDir, "error", err)
			} else {
				s.spool = sp
			}
		}
		rep, err := store.NewReplicated(s.store, c, s.spool, sm)
		if err != nil {
			s.logger.Warn("replication disabled", "error", err)
		} else {
			s.replicated = rep
			s.rstore = rep
			s.replayWake = make(chan struct{}, 1)
			c.SetOnPeerRecovered(func(string) {
				// Runs from inside a breaker transition — must not block.
				select {
				case s.replayWake <- struct{}{}:
				default:
				}
			})
		}
	}
	s.cond = sync.NewCond(&s.mu)
	s.mQueueDepth = s.reg.Gauge("serve_queue_depth")
	s.mInflight = s.reg.Gauge("serve_inflight")
	s.mDraining = s.reg.Gauge("serve_draining")
	s.mShed = s.reg.Counter("serve_shed_total")
	s.mCoalesced = s.reg.Counter("serve_coalesced_total")
	s.mSubmitted = s.reg.Counter("serve_jobs_submitted")
	s.mRuns = s.reg.Counter("serve_pipeline_runs")
	s.mComputed = s.reg.Counter("serve_pipeline_computed_total")
	s.mDone = s.reg.Counter("serve_jobs_done")
	s.mFailed = s.reg.Counter("serve_jobs_failed")
	s.mCancelled = s.reg.Counter("serve_jobs_cancelled")
	s.mPanics = s.reg.Counter("serve_handler_panics")
	s.mUptime = s.reg.Gauge("serve_uptime_seconds")
	s.mRequests = s.reg.CounterVec("serve_requests_total", "route", "code")
	s.mReqSeconds = s.reg.HistogramVec("serve_request_seconds",
		obs.ExpBuckets(0.0005, 4, 10), "route")
	s.mStageSeconds = s.reg.HistogramVec("pipeline_stage_seconds",
		experiments.StageSecondsBuckets, "stage")
	s.reg.Gauge("serve_queue_capacity").Set(float64(cfg.QueueDepth))
	s.reg.Gauge("serve_workers").Set(float64(cfg.Workers))
	s.reg.GaugeVec("dlprojd_build_info", "go_version", "revision", "version").
		With(s.build.GoVersion, s.build.Revision, s.build.Version).Set(1)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.replicated != nil {
		s.wg.Add(1)
		go s.hintReplayLoop()
	}
	return s
}

// Sentinel admission errors, mapped to HTTP statuses by the handlers.
var (
	// ErrShed rejects a submission because the admission queue is full.
	ErrShed = errors.New("serve: admission queue full, submission shed")
	// ErrDraining rejects a submission because the server is draining.
	ErrDraining = errors.New("serve: draining, not admitting new jobs")
)

// coalesceKey derives the deduplication identity of a submission from its
// result-cache key plus the execution budgets. Two submissions coalesce
// only when they would run the *same* live job: identical results
// (CacheKey) under identical Deadline/StageBudgets. Budgets are excluded
// from the cache key (a complete cached result satisfies any budget) but
// must participate here — a coalesced submitter shares the live run's
// degradation and failure, so a request with a looser deadline must not
// ride a tighter-deadline run, nor vice versa.
func coalesceKey(cacheKey string, cfg experiments.Config) string {
	if cfg.Deadline == 0 && len(cfg.StageBudgets) == 0 {
		return cacheKey
	}
	stages := make([]string, 0, len(cfg.StageBudgets))
	for name := range cfg.StageBudgets {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|dl=%d", cacheKey, cfg.Deadline)
	for _, name := range stages {
		fmt.Fprintf(&b, "|%s=%d", name, cfg.StageBudgets[name])
	}
	return b.String()
}

// submission is one decoded, validated pipeline request on its way into
// the admission queue.
type submission struct {
	circuit   string
	nl        *netlist.Netlist
	cfg       experiments.Config
	requestID string
	// body is the raw (already validated) request body, retained so the
	// job can be forwarded verbatim to its ring owner.
	body []byte
	// noForward pins execution to this node (set on requests that carry
	// the forwarded marker — the anti-loop guard).
	noForward bool
	// ndetect, when > 0, makes the job an n-detect study up to this
	// multiplicity on top of the pipeline run.
	ndetect int
}

// submit admits a decoded request: it either coalesces onto an identical
// live job, enqueues a new one, or fails with ErrShed / ErrDraining.
// It never blocks on the worker pool.
func (s *Server) submit(sub submission) (j *job, coalesced bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitLocked(sub)
}

// admitLocked is submit's body under an already-held s.mu — the batch
// endpoint admits many decoded submissions in one critical section
// instead of bouncing the lock per item.
func (s *Server) admitLocked(sub submission) (j *job, coalesced bool, err error) {
	circuit, nl, cfg, requestID := sub.circuit, sub.nl, sub.cfg, sub.requestID
	key := experiments.CacheKey(circuit, cfg)
	ckey := coalesceKey(key, cfg)
	if sub.ndetect > 0 {
		// An n-detect study and a plain pipeline run with the same
		// configuration are different jobs; studies with different n are
		// too. The cache key is untouched — the underlying pipeline result
		// remains shareable through the store.
		ckey = fmt.Sprintf("%s|ndetect=%d", ckey, sub.ndetect)
	}
	if s.draining {
		return nil, false, ErrDraining
	}
	if live := s.inflight[ckey]; live != nil {
		live.mu.Lock()
		live.coalesced++
		live.mu.Unlock()
		s.mCoalesced.Inc()
		live.events.emit(EventCoalesced, "", "request "+requestID+" joined this run")
		s.logger.Info("job coalesced",
			"job", live.id, "request_id", requestID, "circuit", circuit)
		return live, true, nil
	}
	cfg.Obs = obs.New() // per-job tracer: every job gets its own run report
	ctx, cancel := context.WithCancel(s.baseCtx)
	j = &job{
		id:        fmt.Sprintf("job-%d", s.nextID.Add(1)),
		key:       key,
		ckey:      ckey,
		circuit:   circuit,
		requestID: requestID,
		cfg:       cfg,
		nl:        nl,
		events:    newEventLog(),
		fwdBody:   sub.body,
		noForward: sub.noForward,
		ndetectN:  sub.ndetect,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: time.Now(),
	}
	s.hookSpans(j, cfg.Obs)
	select {
	case s.queue <- j:
	default:
		cancel()
		s.mShed.Inc()
		s.logger.Warn("job shed", "request_id", requestID, "circuit", circuit)
		return nil, false, ErrShed
	}
	s.queued++
	s.mQueueDepth.Set(float64(s.queued))
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.inflight[ckey] = j
	s.mSubmitted.Inc()
	s.pruneLocked()
	j.events.emit(EventQueued, "", "")
	s.logger.Info("job queued",
		"job", j.id, "request_id", requestID, "circuit", circuit)
	return j, false, nil
}

// hookSpans subscribes the server to the job tracer's span transitions:
// top-level pipeline stages become stage_start/stage_end events on the
// job's live stream, and each stage's wall time lands in the fleet-level
// pipeline_stage_seconds{stage} histogram. Inner spans (the simulators
// open their own) are ignored — the stream is a lifecycle feed, not a
// trace dump.
func (s *Server) hookSpans(j *job, tr *obs.Tracer) {
	isStage := make(map[string]bool, len(experiments.StageNames))
	for _, name := range experiments.StageNames {
		isStage[name] = true
	}
	var mu sync.Mutex
	startAt := map[string]time.Time{}
	tr.SetSpanHook(func(name string, start bool) {
		if !isStage[name] {
			return
		}
		if start {
			mu.Lock()
			startAt[name] = time.Now()
			mu.Unlock()
			j.events.emit(EventStageStart, name, "")
			return
		}
		mu.Lock()
		t0, ok := startAt[name]
		delete(startAt, name)
		mu.Unlock()
		if ok {
			s.mStageSeconds.With(name).Observe(time.Since(t0).Seconds())
		}
		j.events.emit(EventStageEnd, name, "")
	})
}

// pruneLocked evicts the oldest finished jobs beyond the retention cap.
// Live (queued/running) jobs are never evicted.
func (s *Server) pruneLocked() {
	for len(s.jobs) > s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			if j == nil {
				continue
			}
			j.mu.Lock()
			finished := j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
			j.mu.Unlock()
			if finished {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; let the map exceed the cap briefly
		}
	}
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: queued jobs are marked cancelled immediately (the
// worker skips them), running jobs get their context cancelled and settle
// through the pipeline's cancellation path. Finished jobs are unchanged.
// Either way the job leaves the inflight map at once, so an identical
// submission arriving after the cancel starts a fresh run instead of
// coalescing onto a job that is already dying. The returned job (nil when
// the ID is unknown) lets callers snapshot the post-cancel state without
// a second lookup racing against retention pruning.
func (s *Server) Cancel(id string) (*job, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return nil, false
	}
	j.mu.Lock()
	cancelledQueued := false
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = time.Now()
		s.mCancelled.Inc()
		cancelledQueued = true
	case StateRunning:
		// settle via the run's cancellation path; state flips in runJob.
	}
	if s.inflight[j.ckey] == j {
		delete(s.inflight, j.ckey)
	}
	j.mu.Unlock()
	s.mu.Unlock()
	j.cancel()
	if cancelledQueued {
		j.events.emit(EventCancelled, "", "cancelled while queued")
		s.logger.Info("job cancelled",
			"job", j.id, "request_id", j.requestID, "state", StateQueued)
	}
	return j, true
}

// worker pulls jobs off the admission queue until the server stops.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job end to end: state bookkeeping, the pipeline run
// (cached when a cache dir is configured), and failure classification.
// Panics escaping the pipeline's own stage isolation are contained here so
// a broken run can never take a worker down.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	s.queued--
	s.mQueueDepth.Set(float64(s.queued))
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		s.cond.Broadcast()
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.running++
	s.mInflight.Set(float64(s.running))
	s.mu.Unlock()
	j.events.emit(EventRunning, "", "")
	s.logger.Info("job running",
		"job", j.id, "request_id", j.requestID, "circuit", j.circuit)

	defer func() {
		if rec := recover(); rec != nil {
			s.mPanics.Inc()
			s.finish(j, nil, false, fmt.Errorf("serve: job panic: %v\n%s", rec, debug.Stack()))
		}
		s.mu.Lock()
		s.running--
		s.mInflight.Set(float64(s.running))
		if s.inflight[j.ckey] == j {
			delete(s.inflight, j.ckey)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		j.cancel() // release the context's resources
	}()

	s.mRuns.Inc()
	s.finish(s.execute(j))
}

// execute runs one job: forwarded across the key's replica set when the
// cluster says another node is its primary owner, locally otherwise —
// and locally as the fallback for every forwarding failure. Availability
// beats locality: the only jobs that fail are jobs whose pipeline itself
// fails.
func (s *Server) execute(j *job) (_ *job, p *experiments.Pipeline, hit bool, err error) {
	c := s.cfg.Cluster
	if c != nil && !j.noForward && len(j.fwdBody) > 0 {
		owners := c.Owners(j.key)
		if len(owners) > 0 && owners[0] != c.Self() {
			if p, ok := s.runForwarded(j, owners); ok {
				return j, p, true, nil
			}
			if j.ctx.Err() != nil {
				// Cancelled while forwarding: settle through the usual path.
				return j, nil, false, j.ctx.Err()
			}
			j.events.emit(EventForwardFallback, "",
				"running locally (owners "+strings.Join(owners, ", ")+")")
		}
	}
	// The pipeline reads and writes through the replicated store when the
	// cluster runs with RF > 1 — a locally computed result fans out to the
	// other owners, and a local miss is served from any live replica.
	if s.rstore != nil {
		p, hit, err = experiments.RunStoredCtx(j.ctx, j.nl, j.cfg, s.rstore)
	} else {
		p, err = experiments.RunCtx(j.ctx, j.nl, j.cfg)
	}
	if err == nil && !hit {
		// An actual simulation ran (not a cache/replica adoption) — the
		// counter the chaos tests use to prove a killed owner degrades to
		// "fetch from replica", never "re-simulate".
		s.mComputed.Inc()
	}
	if err == nil && j.ndetectN > 0 {
		// The n-detect study rides on the finished pipeline (which may have
		// come from the result store — the study itself always runs live).
		err = s.runStudy(j, p)
	}
	return j, p, hit, err
}

// runStudy executes the job's n-detect study on its completed pipeline
// and records the result on the job.
func (s *Server) runStudy(j *job, p *experiments.Pipeline) error {
	j.events.emit(EventStageStart, "ndetect", "")
	st, err := experiments.RunNDetectStudy(j.ctx, p, j.ndetectN)
	j.events.emit(EventStageEnd, "ndetect", "")
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.study = st
	j.mu.Unlock()
	return nil
}

// runForwarded routes a non-primary job across the key's replica set in
// ring order. The primary owner gets the full forward (submit → poll →
// fetch); when it is unreachable, each successive replica is tried —
// first for an already-replicated result envelope (the killed-owner
// case: fetching the replica's copy beats re-simulating), then as a
// stand-in compute node via the same submit path. Reaching this node's
// own rank stops the walk: the local run path reads through the
// replicated store, which is the same failover continued. Returns ok
// false when no remote owner could serve the job; the caller then runs
// it locally.
func (s *Server) runForwarded(j *job, owners []string) (*experiments.Pipeline, bool) {
	c := s.cfg.Cluster
	m := c.Metrics()
	lastOutcome := "unknown_peer"
	for rank, owner := range owners {
		if j.ctx.Err() != nil {
			return nil, false
		}
		if owner == c.Self() {
			// Our own replica rank: stop the walk; the local run serves it
			// (and the replicated store's Get still repairs the ring).
			m.FallbackLocal("replica_self")
			return nil, false
		}
		peer := c.Peer(owner)
		if peer == nil {
			continue // departed mid-walk (membership reload)
		}
		if rank > 0 {
			// Failover rank: the primary is down, but the result may already
			// be replicated here — fetch before delegating a recompute.
			if p := s.adoptFromPeer(j, peer, true); p != nil {
				m.ForwardOutcome(owner, "replica_hit")
				return p, true
			}
		}
		p, ok, outcome := s.forwardTo(j, peer, rank)
		if ok {
			return p, true
		}
		if outcome == "cancelled" {
			return nil, false
		}
		lastOutcome = outcome
	}
	m.FallbackLocal(lastOutcome)
	return nil, false
}

// forwardTo submits the job's body to one owner, polls the remote job to
// a terminal state, fetches the result envelope from the owner's store,
// and adopts it locally. Any failure — submit, poll, remote run, fetch,
// decode — returns ok false with the outcome label; a remote
// result-degraded run also lands there structurally, because degraded
// runs are never persisted to any store and the fetch misses.
func (s *Server) forwardTo(j *job, peer *cluster.Peer, rank int) (_ *experiments.Pipeline, ok bool, outcome string) {
	c := s.cfg.Cluster
	m := c.Metrics()
	owner := peer.Name()
	fail := func(outcome, detail string) (*experiments.Pipeline, bool, string) {
		m.ForwardOutcome(owner, outcome)
		s.logger.Warn("forward failed",
			"job", j.id, "peer", owner, "rank", rank, "outcome", outcome, "detail", detail)
		return nil, false, outcome
	}
	detail := "key " + j.key + " owned by " + owner
	if rank > 0 {
		detail = fmt.Sprintf("key %s delegated to replica rank %d (%s)", j.key, rank, owner)
	}
	j.events.emit(EventForwarded, "", detail)
	s.logger.Info("job forwarded", "job", j.id, "peer", owner, "rank", rank, "key", j.key)
	js, err := peer.Submit(j.ctx, j.fwdBody, j.requestID)
	if err != nil {
		return fail("submit_error", err.Error())
	}
	tick := time.NewTicker(c.PollInterval())
	defer tick.Stop()
	for !js.Terminal() {
		select {
		case <-j.ctx.Done():
			// The local submitter cancelled (or is draining): release the
			// remote run best-effort and settle locally.
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = peer.Cancel(cctx, js.ID)
			cancel()
			m.ForwardOutcome(owner, "cancelled")
			return nil, false, "cancelled"
		case <-tick.C:
		}
		if js, err = peer.Status(j.ctx, js.ID); err != nil {
			return fail("poll_error", err.Error())
		}
	}
	if js.State != StateDone {
		detail := js.State
		if js.Error != nil {
			detail += ": " + js.Error.Message
		}
		return fail("remote_"+js.State, detail)
	}
	p := s.adoptFromPeer(j, peer, false)
	if p == nil {
		return fail("fetch_error", "result envelope not adoptable from "+owner)
	}
	m.ForwardOutcome(owner, "ok")
	return p, true, "ok"
}

// adoptFromPeer fetches the job's result envelope from a peer's store,
// verifies and decodes it against the job's own config, and backfills
// this node's local store so the next submission of the key is a local
// hit. Returns nil when the peer has no (valid) copy. replicaFetch marks
// the failover path — the killed-owner case served from a replica — on
// the job's event stream.
func (s *Server) adoptFromPeer(j *job, peer *cluster.Peer, replicaFetch bool) *experiments.Pipeline {
	data, err := peer.Store().Get(j.ctx, j.key)
	if err != nil {
		return nil
	}
	p, err := experiments.DecodeCached(j.ctx, j.nl, j.cfg, data)
	if err != nil {
		s.logger.Warn("peer result not adoptable",
			"job", j.id, "peer", peer.Name(), "key", j.key, "error", err)
		return nil
	}
	if s.store != nil {
		// Backfill the local store only (not the replicated composition):
		// adopting a result must not re-fan it out — the owners either hold
		// it already or converge through hinted handoff and read-repair.
		if err := s.store.Put(j.ctx, j.key, data); err != nil {
			s.logger.Warn("store backfill failed", "job", j.id, "key", j.key, "error", err)
		}
	}
	j.mu.Lock()
	j.remote = peer.Name()
	j.mu.Unlock()
	if replicaFetch {
		j.events.emit(EventReplicaFetch, "", "adopted replica copy of "+j.key+" from "+peer.Name())
	}
	return p
}

// hintReplayLoop drains the hinted-handoff spool in the background:
// immediately when a peer's breaker closes (the recovery wake), and on a
// slow ticker for deferred hints and missed wakeups. Exits on server
// stop.
func (s *Server) hintReplayLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.HintReplayInterval)
	defer tick.Stop()
	for {
		if s.spool != nil && s.spool.Depth() > 0 {
			ctx, cancel := context.WithTimeout(s.baseCtx, 30*time.Second)
			replayed, remaining := s.replicated.Replay(ctx)
			cancel()
			if replayed > 0 {
				s.logger.Info("hinted handoff replayed",
					"replayed", replayed, "remaining", remaining)
			}
		}
		select {
		case <-s.stop:
			return
		case <-tick.C:
		case <-s.replayWake:
		}
	}
}

// ReloadMembership re-reads the peers file and swaps the ring — the
// shared implementation behind POST /v1/cluster/reload and dlprojd's
// SIGHUP handler. Errors leave the current membership untouched.
func (s *Server) ReloadMembership() (cluster.MembershipChange, error) {
	if s.cfg.Membership == nil {
		return cluster.MembershipChange{}, errors.New("serve: no membership source configured (need -peers-file)")
	}
	ch, err := s.cfg.Membership.Reload()
	if err != nil {
		s.logger.Error("membership reload failed", "error", err)
		return ch, err
	}
	s.logger.Info("membership reloaded",
		"joined", ch.Joined, "left", ch.Left, "nodes", ch.Nodes)
	return ch, nil
}

// SpoolDepth reports the pending hinted-handoff backlog (0 without a
// spool) — surfaced on /readyz.
func (s *Server) SpoolDepth() int {
	if s.spool == nil {
		return 0
	}
	return s.spool.Depth()
}

// finish classifies a run's outcome onto the job record, stamps the
// request ID onto the run report, and seals the event stream with the
// degradation and terminal events.
func (s *Server) finish(j *job, p *experiments.Pipeline, cacheHit bool, err error) {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	j.pipe = p
	j.cacheHit = cacheHit
	j.err = err
	if p != nil && p.Report != nil {
		p.Report.RequestID = j.requestID
	}
	switch {
	case err == nil:
		j.state = StateDone
		s.mDone.Inc()
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		s.mCancelled.Inc()
	default:
		j.state = StateFailed
		s.mFailed.Inc()
	}
	state, elapsed, remote := j.state, j.finished.Sub(j.started), j.remote
	j.mu.Unlock()

	if p != nil {
		for _, d := range p.Degradations {
			j.events.emit(EventDegraded, d.Stage, d.Reason)
		}
	}
	switch state {
	case StateDone:
		detail := ""
		if cacheHit {
			detail = "served from result cache"
		}
		if remote != "" {
			detail = "adopted result computed by " + remote
		}
		j.events.emit(EventDone, "", detail)
	case StateCancelled:
		j.events.emit(EventCancelled, "", errDetail(err))
	default:
		j.events.emit(EventFailed, "", errDetail(err))
	}
	s.logger.Info("job finished",
		"job", j.id, "request_id", j.requestID, "state", state,
		"duration", elapsed, "cache_hit", cacheHit)
}

// errDetail renders an error for an event's detail field.
func errDetail(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// DrainReport is the outcome of a graceful drain.
type DrainReport struct {
	// Waited is how long the drain took end to end.
	Waited time.Duration `json:"waited_ns"`
	// Cancelled lists the jobs that did not finish within the budget and
	// were cancelled. Empty on a fully graceful drain.
	Cancelled []string `json:"cancelled,omitempty"`
	// Forced reports whether cancelled jobs were still unwinding when the
	// grace period expired (they keep their context cancelled and settle
	// on their own, but the pool is already stopped).
	Forced bool `json:"forced,omitempty"`
}

// Clean reports whether every job finished on its own within the budget.
func (r DrainReport) Clean() bool { return len(r.Cancelled) == 0 && !r.Forced }

// Drain performs graceful shutdown of the job layer: admission stops
// (readiness flips off, submissions get 503), in-flight and queued jobs
// get DrainBudget to finish, whatever remains is cancelled and given
// DrainGrace to unwind, then the worker pool is stopped. Drain is
// idempotent; concurrent calls share the same shutdown. ctx bounds the
// whole wait (its cancellation forces the fast path).
func (s *Server) Drain(ctx context.Context) DrainReport {
	start := time.Now()
	s.mu.Lock()
	s.draining = true
	s.mDraining.Set(1)
	s.mu.Unlock()

	budget := s.cfg.DrainBudget
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < budget {
			budget = rem
		}
	}
	var rep DrainReport
	if !s.waitIdle(ctx, budget) {
		// Budget exhausted: cancel everything still live.
		s.mu.Lock()
		for _, id := range s.order {
			j := s.jobs[id]
			if j == nil {
				continue
			}
			j.mu.Lock()
			cancelledQueued := false
			switch j.state {
			case StateQueued:
				j.state = StateCancelled
				j.err = context.Canceled
				j.finished = time.Now()
				s.mCancelled.Inc()
				if s.inflight[j.ckey] == j {
					delete(s.inflight, j.ckey)
				}
				rep.Cancelled = append(rep.Cancelled, j.id)
				cancelledQueued = true
			case StateRunning:
				rep.Cancelled = append(rep.Cancelled, j.id)
			}
			j.mu.Unlock()
			j.cancel()
			if cancelledQueued {
				j.events.emit(EventCancelled, "", "cancelled by drain")
			}
		}
		s.mu.Unlock()
		if !s.waitIdle(ctx, s.cfg.DrainGrace) {
			rep.Forced = true
		}
	}
	s.stopOnce.Do(func() { close(s.stop) })
	if !rep.Forced {
		s.wg.Wait()
	}
	s.baseCancel()
	rep.Waited = time.Since(start)
	s.logger.Info("drain finished",
		"waited", rep.Waited, "cancelled", len(rep.Cancelled), "forced", rep.Forced)
	return rep
}

// Draining reports whether Drain has started (readiness off).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// waitIdle blocks until no jobs are queued or running, the timeout
// expires, or ctx is cancelled. Returns true when idle was reached.
func (s *Server) waitIdle(ctx context.Context, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() { s.cond.Broadcast() })
	defer wake.Stop()
	stopPoll := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	defer stopPoll()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queued+s.running > 0 {
		if ctx.Err() != nil || !time.Now().Before(deadline) {
			return false
		}
		s.cond.Wait()
	}
	return true
}

// Metrics returns the server's obs registry (the one behind /metrics) —
// test and daemon access to the serve_* instruments.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Store returns the resolved result store backend (nil when caching is
// disabled).
func (s *Server) Store() store.Store { return s.store }

// retryAfterSeconds computes the adaptive Retry-After hint attached to
// shed and draining responses: the base hint scaled by the backlog per
// worker, capped at RetryAfterMax. An idle server hints the base; a
// server shedding with a full queue tells clients to stay away roughly
// one queue-drain longer, so synchronized retries do not re-shed.
func (s *Server) retryAfterSeconds() int {
	s.mu.Lock()
	backlog := s.queued + s.running
	s.mu.Unlock()
	d := time.Duration(float64(s.cfg.RetryAfter) * (1 + float64(backlog)/float64(s.cfg.Workers)))
	if d > s.cfg.RetryAfterMax {
		d = s.cfg.RetryAfterMax
	}
	secs := int(d.Seconds() + 0.5)
	if secs < 1 {
		secs = 1
	}
	return secs
}
