package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"defectsim/internal/faultinject"
)

// The job-API tests exercise the server through real HTTP round trips
// (httptest) with fault-injection hooks making the pipeline's timing
// deterministic: a hook blocked on a channel pins a job "running" for as
// long as the test needs, without sleeps sized to machine speed.
//
// Hooks are process-global, so these tests never run in parallel.

// newTestServer starts a Server plus an httptest front end, drained and
// closed at cleanup. Tests that drain explicitly still work: Drain is
// idempotent.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return s, ts
}

func post(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, data
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %T from %s: %v", v, data, err)
	}
	return v
}

// submitJob posts a pipeline request and fails the test unless it is
// accepted as a new job (202).
func submitJob(t *testing.T, ts *httptest.Server, body string) jobStatus {
	t.Helper()
	code, _, data := post(t, ts.URL+"/v1/pipeline", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202; body: %s", code, data)
	}
	st := decode[jobStatus](t, data)
	if st.ID == "" {
		t.Fatalf("submit response has no job id: %s", data)
	}
	return st
}

// waitState polls the status endpoint until the job reaches want.
func waitState(t *testing.T, ts *httptest.Server, id, want string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var st jobStatus
	for time.Now().Before(deadline) {
		code, data := get(t, ts.URL+"/v1/pipeline/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %s = %d: %s", id, code, data)
		}
		st = decode[jobStatus](t, data)
		if st.State == want {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q (last: %q)", id, want, st.State)
	return st
}

// waitResult polls the result endpoint until the job settles (non-202)
// and returns the final status code and body.
func waitResult(t *testing.T, ts *httptest.Server, id string) (int, []byte) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, data := get(t, ts.URL+"/v1/pipeline/"+id+"/result")
		if code != http.StatusAccepted {
			return code, data
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s result still pending after 30s", id)
	return 0, nil
}

// blockHook returns a faultinject hook that blocks every firing until
// release is closed (or the job is cancelled), plus the release function.
func blockHook() (hook faultinject.Hook, release func()) {
	ch := make(chan struct{})
	return func(ctx context.Context) error {
		select {
		case <-ch:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}, func() { close(ch) }
}

const smallC17 = `{"circuit":"c17","random_vectors":48}`

// TestSubmitPollResult is the happy path: submit, poll status, fetch the
// result, and hit the result cache on an identical resubmission.
func TestSubmitPollResult(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4, CacheDir: t.TempDir()})

	st := submitJob(t, ts, smallC17)
	if st.State != StateQueued {
		t.Fatalf("fresh job state = %q, want queued", st.State)
	}
	code, data := waitResult(t, ts, st.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d, want 200; body: %s", code, data)
	}
	res := decode[jobResult](t, data)
	if res.Circuit != "c17" {
		t.Fatalf("result circuit = %q, want c17", res.Circuit)
	}
	if !(res.Yield > 0 && res.Yield < 1) {
		t.Fatalf("result yield = %g, want in (0,1)", res.Yield)
	}
	if res.Vectors == 0 || res.StuckAtCoverage <= 0 {
		t.Fatalf("result has no test set: vectors=%d coverage=%g", res.Vectors, res.StuckAtCoverage)
	}
	if res.Report == nil {
		t.Fatal("result has no run report")
	}
	if res.CacheHit {
		t.Fatal("first run reported a cache hit")
	}
	if got := waitState(t, ts, st.ID, StateDone); got.Finished == "" {
		t.Fatal("done job has no finished_at timestamp")
	}

	// Identical resubmission after completion: a new job (nothing to
	// coalesce onto) served from the result cache.
	st2 := submitJob(t, ts, smallC17)
	if st2.ID == st.ID {
		t.Fatal("finished job must not absorb new submissions")
	}
	code, data = waitResult(t, ts, st2.ID)
	if code != http.StatusOK {
		t.Fatalf("cached result = %d, want 200; body: %s", code, data)
	}
	res2 := decode[jobResult](t, data)
	if !res2.CacheHit {
		t.Fatal("identical resubmission did not hit the result cache")
	}
	if res2.Yield != res.Yield || res2.StuckAtCoverage != res.StuckAtCoverage {
		t.Fatalf("cached result differs: yield %g vs %g, coverage %g vs %g",
			res2.Yield, res.Yield, res2.StuckAtCoverage, res.StuckAtCoverage)
	}
	if s.Metrics().Counter("serve_jobs_done").Value() != 2 {
		t.Fatalf("serve_jobs_done = %d, want 2", s.Metrics().Counter("serve_jobs_done").Value())
	}
}

// TestLoadShed pins the admission contract: with the single worker pinned
// and the queue full, the next submission is shed with 429 + Retry-After
// immediately — the handler never blocks on the pool.
func TestLoadShed(t *testing.T) {
	hook, release := blockHook()
	restore := faultinject.Set(faultinject.HookSwitchSimVector, hook)
	defer restore()

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second})

	// Job 1 occupies the worker (blocked in switch-sim); distinct seeds
	// keep the cache keys distinct so nothing coalesces.
	j1 := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":101}`)
	waitState(t, ts, j1.ID, StateRunning)
	// Job 2 fills the queue.
	j2 := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":102}`)

	// Job 3 finds the queue full: shed, now.
	start := time.Now()
	code, hdr, data := post(t, ts.URL+"/v1/pipeline", `{"circuit":"c17","random_vectors":48,"seed":103}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d, want 429; body: %s", code, data)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("shed response took %v; shedding must not block", took)
	}
	// The hint adapts to the backlog: base 7s scaled by (1 + backlog/workers)
	// with one job running and one queued on one worker = 21s.
	if got := hdr.Get("Retry-After"); got != "21" {
		t.Fatalf("Retry-After = %q, want %q (adaptive: 7s base × 3)", got, "21")
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Message == "" {
		t.Fatalf("shed response is not a structured error: %s", data)
	}
	if s.Metrics().Counter("serve_shed_total").Value() != 1 {
		t.Fatalf("serve_shed_total = %d, want 1", s.Metrics().Counter("serve_shed_total").Value())
	}
	if got := s.Metrics().CounterVec("serve_requests_total", "route", "code").
		With("/v1/pipeline", "429").Value(); got != 1 {
		t.Fatalf(`serve_requests_total{/v1/pipeline,429} = %d, want 1`, got)
	}

	// Unblock: both admitted jobs finish.
	release()
	for _, id := range []string{j1.ID, j2.ID} {
		if code, data := waitResult(t, ts, id); code != http.StatusOK {
			t.Fatalf("job %s after release = %d: %s", id, code, data)
		}
	}
}

// TestSingleflightCoalesce pins deduplication: K identical submissions
// share one job and exactly one pipeline run.
func TestSingleflightCoalesce(t *testing.T) {
	hook, release := blockHook()
	restore := faultinject.Set(faultinject.HookSwitchSimVector, hook)
	defer restore()

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	body := `{"circuit":"c17","random_vectors":48,"seed":7}`
	first := submitJob(t, ts, body)

	const extra = 5
	for i := 0; i < extra; i++ {
		code, _, data := post(t, ts.URL+"/v1/pipeline", body)
		if code != http.StatusOK {
			t.Fatalf("coalesced submit %d = %d, want 200; body: %s", i, code, data)
		}
		sr := decode[submitResponse](t, data)
		if !sr.CoalescedOnto {
			t.Fatalf("submit %d not marked coalesced_onto_existing: %s", i, data)
		}
		if sr.ID != first.ID {
			t.Fatalf("submit %d coalesced onto %s, want %s", i, sr.ID, first.ID)
		}
	}

	release()
	if code, data := waitResult(t, ts, first.ID); code != http.StatusOK {
		t.Fatalf("coalesced job result = %d: %s", code, data)
	}
	st := waitState(t, ts, first.ID, StateDone)
	if st.Coalesced != extra {
		t.Fatalf("job coalesced count = %d, want %d", st.Coalesced, extra)
	}
	if runs := s.Metrics().Counter("serve_pipeline_runs").Value(); runs != 1 {
		t.Fatalf("serve_pipeline_runs = %d, want exactly 1", runs)
	}
	if co := s.Metrics().Counter("serve_coalesced_total").Value(); co != extra {
		t.Fatalf("serve_coalesced_total = %d, want %d", co, extra)
	}
	if sub := s.Metrics().Counter("serve_jobs_submitted").Value(); sub != 1 {
		t.Fatalf("serve_jobs_submitted = %d, want 1", sub)
	}

	// The key is released with the job: an identical submission now starts
	// a fresh run instead of latching onto the finished one.
	restore()
	again := submitJob(t, ts, body)
	if again.ID == first.ID {
		t.Fatal("finished job absorbed a new submission")
	}
	if code, data := waitResult(t, ts, again.ID); code != http.StatusOK {
		t.Fatalf("fresh rerun result = %d: %s", code, data)
	}
}

// TestFaultInjectedFailure pins structured degradation: an injected stage
// failure surfaces as a 503 JSON error naming the stage, and the server
// keeps serving — it never wedges.
func TestFaultInjectedFailure(t *testing.T) {
	injected := errors.New("injected extraction fault")
	restore := faultinject.Set(faultinject.HookExtractFaults, faultinject.Fail(injected))

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	st := submitJob(t, ts, smallC17)
	code, data := waitResult(t, ts, st.ID)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("failed job result = %d, want 503; body: %s", code, data)
	}
	eb := decode[errorBody](t, data)
	if eb.Error.Stage != "extract" {
		t.Fatalf("error stage = %q, want extract; body: %s", eb.Error.Stage, data)
	}
	if !strings.Contains(eb.Error.Message, "injected extraction fault") {
		t.Fatalf("error message lost the cause: %s", data)
	}
	if s.Metrics().Counter("serve_jobs_failed").Value() != 1 {
		t.Fatalf("serve_jobs_failed = %d, want 1", s.Metrics().Counter("serve_jobs_failed").Value())
	}

	// Liveness is unaffected and the next job (hook removed) succeeds: the
	// API degraded, it did not wedge.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after failure = %d, want 200", code)
	}
	restore()
	st2 := submitJob(t, ts, smallC17)
	if code, data := waitResult(t, ts, st2.ID); code != http.StatusOK {
		t.Fatalf("job after hook removal = %d: %s", code, data)
	}
}

// TestStageBudgetDegrades pins partial-result delivery: a job whose stage
// budget runs out still returns 200, marked degraded, with the
// degradation reasons listed — not an error, not a hang.
func TestStageBudgetDegrades(t *testing.T) {
	restore := faultinject.Set(faultinject.HookATPGFault, faultinject.Sleep(5*time.Millisecond))
	defer restore()

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	st := submitJob(t, ts, `{"circuit":"c17","random_vectors":0,"stage_budgets_ms":{"atpg":20}}`)
	code, data := waitResult(t, ts, st.ID)
	if code != http.StatusOK {
		t.Fatalf("degraded job result = %d, want 200; body: %s", code, data)
	}
	res := decode[jobResult](t, data)
	if !res.Degraded {
		t.Fatalf("budget-starved run not marked degraded: %s", data)
	}
	if len(res.Degradations) == 0 {
		t.Fatal("degraded result lists no degradation reasons")
	}
	found := false
	for _, d := range res.Degradations {
		if strings.Contains(d, "atpg") {
			found = true
		}
	}
	if !found {
		t.Fatalf("degradations do not name the atpg stage: %v", res.Degradations)
	}
	if fin := waitState(t, ts, st.ID, StateDone); !fin.Degraded {
		t.Fatal("status endpoint does not surface the degradation")
	}
}

// TestCancel covers both cancellation paths: a queued job flips to
// cancelled immediately; a running job settles through the pipeline's
// cancellation machinery.
func TestCancel(t *testing.T) {
	hook, release := blockHook()
	restore := faultinject.Set(faultinject.HookSwitchSimVector, hook)
	defer restore()
	defer release()

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	running := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":201}`)
	waitState(t, ts, running.ID, StateRunning)
	queued := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":202}`)

	// Queued job: cancelled on the spot, never runs.
	code, _, data := post(t, ts.URL+"/v1/pipeline/"+queued.ID+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel queued = %d: %s", code, data)
	}
	if st := decode[jobStatus](t, data); st.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %q, want cancelled", st.State)
	}
	if code, data := waitResult(t, ts, queued.ID); code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled job result = %d, want 503: %s", code, data)
	}

	// Running job: the cancel propagates through the job context.
	if code, _, data := post(t, ts.URL+"/v1/pipeline/"+running.ID+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel running = %d: %s", code, data)
	}
	waitState(t, ts, running.ID, StateCancelled)
	code, data = waitResult(t, ts, running.ID)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled running job result = %d, want 503: %s", code, data)
	}
	eb := decode[errorBody](t, data)
	if eb.Error.Message == "" {
		t.Fatalf("cancelled job error has no message: %s", data)
	}

	// Unknown IDs 404.
	if code, _, _ := post(t, ts.URL+"/v1/pipeline/nope/cancel", ""); code != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", code)
	}
}

// TestCancelRunningReleasesKey pins the cancel/coalesce interaction: the
// moment a running job is cancelled it leaves the inflight map, so an
// identical submission starts a fresh run instead of coalescing onto the
// dying job and receiving a cancelled outcome no run ever earned.
func TestCancelRunningReleasesKey(t *testing.T) {
	hook, release := blockHook()
	restore := faultinject.Set(faultinject.HookSwitchSimVector, hook)
	defer restore()

	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})

	body := `{"circuit":"c17","random_vectors":48,"seed":401}`
	first := submitJob(t, ts, body)
	waitState(t, ts, first.ID, StateRunning)

	if code, _, data := post(t, ts.URL+"/v1/pipeline/"+first.ID+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel running = %d: %s", code, data)
	}
	// submitJob requires 202 — a 200 coalesce onto the dying job fails here.
	second := submitJob(t, ts, body)
	if second.ID == first.ID {
		t.Fatal("new submission coalesced onto a cancelled job")
	}

	release()
	if code, data := waitResult(t, ts, second.ID); code != http.StatusOK {
		t.Fatalf("fresh run after cancel = %d: %s", code, data)
	}
	waitState(t, ts, first.ID, StateCancelled)
}

// TestBudgetsDoNotCoalesce pins the coalescing key: submissions that
// differ only in execution budgets (deadline_ms, stage_budgets_ms) are
// separate jobs — a coalesced submitter shares the live run's fate, so a
// request must never inherit a different budget's degradation or
// deadline. Identical budgets still coalesce.
func TestBudgetsDoNotCoalesce(t *testing.T) {
	hook, release := blockHook()
	restore := faultinject.Set(faultinject.HookSwitchSimVector, hook)
	defer restore()

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	first := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":501}`)
	waitState(t, ts, first.ID, StateRunning)

	deadlined := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":501,"deadline_ms":60000}`)
	if deadlined.ID == first.ID {
		t.Fatal("deadline-bounded submission coalesced onto the unbounded run")
	}
	budgeted := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":501,"stage_budgets_ms":{"atpg":60000}}`)
	if budgeted.ID == first.ID || budgeted.ID == deadlined.ID {
		t.Fatal("stage-budgeted submission coalesced across budget boundaries")
	}

	// Identical budgets do coalesce.
	code, _, data := post(t, ts.URL+"/v1/pipeline", `{"circuit":"c17","random_vectors":48,"seed":501,"deadline_ms":60000}`)
	if code != http.StatusOK {
		t.Fatalf("identical-budget resubmit = %d, want 200 coalesce: %s", code, data)
	}
	if sr := decode[submitResponse](t, data); !sr.CoalescedOnto || sr.ID != deadlined.ID {
		t.Fatalf("identical-budget resubmit joined %s (coalesced=%v), want %s", sr.ID, sr.CoalescedOnto, deadlined.ID)
	}

	release()
	for _, id := range []string{first.ID, deadlined.ID, budgeted.ID} {
		if code, data := waitResult(t, ts, id); code != http.StatusOK {
			t.Fatalf("job %s result = %d: %s", id, code, data)
		}
	}
}

// TestGracefulDrain pins the shutdown state machine: draining flips
// readiness off and sheds submissions with 503, jobs that outlive the
// budget are cancelled (not abandoned), and the drain report says so.
func TestGracefulDrain(t *testing.T) {
	restore := faultinject.Set(faultinject.HookSwitchSimVector, faultinject.Stall)
	defer restore()

	s, ts := newTestServer(t, Config{
		Workers:     1,
		QueueDepth:  4,
		DrainBudget: 150 * time.Millisecond,
		DrainGrace:  10 * time.Second,
	})

	st := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":301}`)
	waitState(t, ts, st.ID, StateRunning)

	done := make(chan DrainReport, 1)
	go func() { done <- s.Drain(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// While draining: not ready, not admitting.
	if code, data := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503: %s", code, data)
	}
	code, hdr, data := post(t, ts.URL+"/v1/pipeline", smallC17)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503: %s", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("draining rejection has no Retry-After hint")
	}
	// Liveness and status stay up throughout the drain.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", code)
	}
	if code, _ := get(t, ts.URL+"/v1/pipeline/"+st.ID); code != http.StatusOK {
		t.Fatalf("status while draining = %d, want 200", code)
	}

	var rep DrainReport
	select {
	case rep = <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("drain did not complete")
	}
	if rep.Clean() {
		t.Fatal("drain with a stalled job reported clean")
	}
	if rep.Forced {
		t.Fatalf("stalled job did not unwind within the grace period: %+v", rep)
	}
	if len(rep.Cancelled) != 1 || rep.Cancelled[0] != st.ID {
		t.Fatalf("drain cancelled %v, want [%s]", rep.Cancelled, st.ID)
	}
	if got := waitState(t, ts, st.ID, StateCancelled); got.Finished == "" {
		t.Fatal("drain-cancelled job has no finished_at")
	}
	if s.Metrics().Gauge("serve_draining").Value() != 1 {
		t.Fatal("serve_draining gauge not set")
	}
}

// TestGracefulDrainClean: with no live jobs the drain is immediate and
// clean, and the exit-code contract (Clean → 0) holds.
func TestGracefulDrainClean(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	st := submitJob(t, ts, smallC17)
	if code, data := waitResult(t, ts, st.ID); code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, data)
	}

	rep := s.Drain(context.Background())
	if !rep.Clean() {
		t.Fatalf("idle drain not clean: %+v", rep)
	}
	if rep.Waited > 5*time.Second {
		t.Fatalf("idle drain took %v", rep.Waited)
	}
	// Post-drain: alive but not ready, and not admitting.
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", code)
	}
	if code, _, _ := post(t, ts.URL+"/v1/pipeline", smallC17); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d, want 503", code)
	}
	// Finished results remain queryable after the drain.
	if code, _ := get(t, ts.URL+"/v1/pipeline/"+st.ID+"/result"); code != http.StatusOK {
		t.Fatalf("result after drain = %d, want 200", code)
	}
}

// TestPanicRecovery pins the middleware backstop: a panicking handler
// becomes a structured 500 JSON error and a counter bump, not a torn
// connection.
func TestPanicRecovery(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom at the route layer")
	})))
	defer ts.Close()

	code, data := get(t, ts.URL+"/anything")
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500: %s", code, data)
	}
	eb := decode[errorBody](t, data)
	if !strings.Contains(eb.Error.Message, "boom at the route layer") {
		t.Fatalf("panic value lost: %s", data)
	}
	if s.Metrics().Counter("serve_handler_panics").Value() != 1 {
		t.Fatalf("serve_handler_panics = %d, want 1", s.Metrics().Counter("serve_handler_panics").Value())
	}
}

// TestMetricsEndpoint: the serve_* instruments are visible through
// /metrics in the obs report shape.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 9})
	code, data := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d: %s", code, data)
	}
	for _, name := range []string{
		"serve_queue_capacity", "serve_workers", "serve_queue_depth",
		"serve_shed_total", "serve_coalesced_total",
	} {
		if !strings.Contains(string(data), name) {
			t.Fatalf("metrics report missing %s: %s", name, data)
		}
	}
}

// TestStatusUnknownJob: unknown IDs are a clean 404, not a panic or 500.
func TestStatusUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code, _ := get(t, ts.URL+"/v1/pipeline/job-999"); code != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/v1/pipeline/job-999/result"); code != http.StatusNotFound {
		t.Fatalf("unknown job result = %d, want 404", code)
	}
}
