package serve

import (
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"defectsim/internal/dlmodel"
)

// The synchronous endpoints answer in-process with no queue involved;
// these tests pin their math against the dlmodel package and, more
// importantly for the serving layer, the contract that every domain
// violation is a 400 with the validation message — never a panic-500.

func wantErr(t *testing.T, code int, data []byte, wantCode int, substr string) {
	t.Helper()
	if code != wantCode {
		t.Fatalf("status = %d, want %d; body: %s", code, wantCode, data)
	}
	eb := decode[errorBody](t, data)
	if !strings.Contains(eb.Error.Message, substr) {
		t.Fatalf("error message %q does not mention %q", eb.Error.Message, substr)
	}
}

func TestDLEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	url := ts.URL + "/v1/dl"

	// Williams–Brown (eq. 1) round trip against the model package.
	code, _, data := post(t, url, `{"model":"williams-brown","yield":0.5,"coverage":0.9}`)
	if code != http.StatusOK {
		t.Fatalf("dl = %d: %s", code, data)
	}
	resp := decode[dlResponse](t, data)
	want := dlmodel.WilliamsBrown(0.5, 0.9)
	if resp.DL == nil || math.Abs(*resp.DL-want) > 1e-12 {
		t.Fatalf("williams-brown dl = %v, want %g", resp.DL, want)
	}
	if resp.PPM == nil || math.Abs(*resp.PPM-1e6*want) > 1e-6 {
		t.Fatalf("ppm = %v, want %g", resp.PPM, 1e6*want)
	}

	// Required coverage inverts back to T = 0.9.
	code, _, data = post(t, url, fmt.Sprintf(
		`{"model":"williams-brown","mode":"required-coverage","yield":0.5,"target_dl":%g}`, want))
	if code != http.StatusOK {
		t.Fatalf("required-coverage = %d: %s", code, data)
	}
	resp = decode[dlResponse](t, data)
	if resp.Coverage == nil || math.Abs(*resp.Coverage-0.9) > 1e-9 {
		t.Fatalf("required coverage = %v, want 0.9", resp.Coverage)
	}

	// The proposed model (eq. 11) with paper-example parameters.
	code, _, data = post(t, url, `{"model":"proposed","yield":0.75,"coverage":0.95,"r":2.1,"theta_max":0.96}`)
	if code != http.StatusOK {
		t.Fatalf("proposed dl = %d: %s", code, data)
	}
	resp = decode[dlResponse](t, data)
	wantP := dlmodel.Params{R: 2.1, ThetaMax: 0.96}.DL(0.75, 0.95)
	if resp.DL == nil || math.Abs(*resp.DL-wantP) > 1e-12 {
		t.Fatalf("proposed dl = %v, want %g", resp.DL, wantP)
	}

	// Residual DL at full stuck-at coverage (eq. 12 / example 2).
	code, _, data = post(t, url, `{"model":"proposed","mode":"residual","yield":0.75,"r":2.1,"theta_max":0.96}`)
	if code != http.StatusOK {
		t.Fatalf("residual = %d: %s", code, data)
	}
	resp = decode[dlResponse](t, data)
	wantR := dlmodel.Params{R: 2.1, ThetaMax: 0.96}.ResidualDL(0.75)
	if resp.DL == nil || math.Abs(*resp.DL-wantR) > 1e-12 {
		t.Fatalf("residual dl = %v, want %g", resp.DL, wantR)
	}

	// Agrawal and weighted answer too.
	if code, _, data := post(t, url, `{"model":"agrawal","yield":0.5,"coverage":0.9,"n":2}`); code != http.StatusOK {
		t.Fatalf("agrawal = %d: %s", code, data)
	}
	if code, _, data := post(t, url, `{"model":"weighted","yield":0.5,"coverage":0.9}`); code != http.StatusOK {
		t.Fatalf("weighted = %d: %s", code, data)
	}

	// Domain violations are 400s with the reason, not panics.
	for _, tc := range []struct{ body, substr string }{
		{`{"model":"williams-brown","yield":0,"coverage":0.9}`, "yield"},
		{`{"model":"williams-brown","yield":1.5,"coverage":0.9}`, "yield"},
		{`{"model":"williams-brown","yield":0.5,"coverage":1.5}`, "coverage"},
		{`{"model":"agrawal","yield":0.5,"coverage":0.9,"n":0.5}`, "n ="},
		{`{"model":"proposed","yield":0.5,"coverage":0.9,"r":-1,"theta_max":0.9}`, "must be positive"},
		{`{"model":"proposed","yield":0.5,"coverage":0.9,"r":2,"theta_max":1.5}`, "(0,1]"},
		{`{"model":"proposed","mode":"sideways","yield":0.5,"r":2,"theta_max":0.9}`, "unknown mode"},
		{`{"model":"perfect","yield":0.5,"coverage":0.9}`, "unknown model"},
	} {
		code, _, data := post(t, url, tc.body)
		wantErr(t, code, data, http.StatusBadRequest, tc.substr)
	}
}

func TestFitEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	url := ts.URL + "/v1/fit"

	// Points sampled exactly from the proposed model: the fit must recover
	// the generating parameters.
	truth := dlmodel.Params{R: 2.1, ThetaMax: 0.96}
	const y = 0.75
	var pts []string
	for _, tv := range []float64{0.2, 0.4, 0.6, 0.75, 0.85, 0.92, 0.97, 0.995} {
		pts = append(pts, fmt.Sprintf(`{"t":%g,"dl":%.12g}`, tv, truth.DL(y, tv)))
	}
	body := fmt.Sprintf(`{"model":"proposed","yield":%g,"points":[%s]}`, y, strings.Join(pts, ","))
	code, _, data := post(t, url, body)
	if code != http.StatusOK {
		t.Fatalf("fit = %d: %s", code, data)
	}
	resp := decode[fitResponse](t, data)
	if resp.R == nil || resp.ThetaMax == nil || resp.ResidualPPM == nil {
		t.Fatalf("proposed fit missing fields: %s", data)
	}
	if math.Abs(*resp.R-truth.R) > 0.1 || math.Abs(*resp.ThetaMax-truth.ThetaMax) > 0.01 {
		t.Fatalf("fit (R=%g, Θmax=%g) far from truth (R=%g, Θmax=%g)",
			*resp.R, *resp.ThetaMax, truth.R, truth.ThetaMax)
	}

	// The Agrawal variant fits its n.
	body = fmt.Sprintf(`{"model":"agrawal","yield":%g,"points":[%s]}`, y, strings.Join(pts, ","))
	code, _, data = post(t, url, body)
	if code != http.StatusOK {
		t.Fatalf("agrawal fit = %d: %s", code, data)
	}
	if resp := decode[fitResponse](t, data); resp.N == nil || *resp.N < 1 {
		t.Fatalf("agrawal fit n = %v", resp.N)
	}

	for _, tc := range []struct{ body, substr string }{
		{`{"model":"proposed","yield":0.75,"points":[{"t":0.5,"dl":0.1}]}`, "at least 2"},
		{`{"model":"proposed","yield":0.75,"points":[{"t":0.5,"dl":0.1},{"t":2,"dl":0.1}]}`, "out of domain"},
		{`{"model":"proposed","yield":0.75,"points":[{"t":0.5,"dl":0.1},{"t":0.9,"dl":1.0}]}`, "out of domain"},
		{`{"model":"cubist","yield":0.75,"points":[{"t":0.5,"dl":0.1},{"t":0.9,"dl":0.05}]}`, "unknown model"},
		{`{"model":"proposed","yield":2,"points":[{"t":0.5,"dl":0.1},{"t":0.9,"dl":0.05}]}`, "yield"},
	} {
		code, _, data := post(t, url, tc.body)
		wantErr(t, code, data, http.StatusBadRequest, tc.substr)
	}
}

func TestCoverageEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	url := ts.URL + "/v1/coverage"

	// Analytic mode: the growth law, monotonically rising toward cmax.
	code, _, data := post(t, url, `{"sigma":4,"cmax":0.95,"ks":[1,10,100,1000]}`)
	if code != http.StatusOK {
		t.Fatalf("analytic = %d: %s", code, data)
	}
	resp := decode[coverageResponse](t, data)
	if len(resp.Points) != 4 {
		t.Fatalf("analytic points = %d, want 4", len(resp.Points))
	}
	for i := 1; i < len(resp.Points); i++ {
		if resp.Points[i].C < resp.Points[i-1].C {
			t.Fatalf("coverage not monotone: %+v", resp.Points)
		}
	}
	if last := resp.Points[len(resp.Points)-1].C; !(last > 0 && last <= 0.95) {
		t.Fatalf("coverage %g escapes (0, cmax]", last)
	}

	// Empirical mode: curve plus fitted σ from first-detection indices.
	code, _, data = post(t, url, `{"detected_at":[1,1,2,3,5,8,40,0]}`)
	if code != http.StatusOK {
		t.Fatalf("empirical = %d: %s", code, data)
	}
	resp = decode[coverageResponse](t, data)
	if len(resp.Points) == 0 {
		t.Fatal("empirical mode returned no points")
	}
	if !(resp.Cmax > 0 && resp.Cmax < 1) {
		t.Fatalf("cmax = %g, want in (0,1) with one undetected fault", resp.Cmax)
	}

	for _, tc := range []struct{ body, substr string }{
		{`{"sigma":0.5,"ks":[1,10]}`, "exceed 1"},
		{`{"sigma":4,"cmax":1.5,"ks":[1,10]}`, "cmax"},
		{`{"sigma":4}`, "ks must be non-empty"},
		{`{"sigma":4,"ks":[-1]}`, ">= 0"},
		{`{"detected_at":[1,2,-3]}`, ">= 0"},
		{`{"detected_at":[1,2],"weights":[1,2,3]}`, "length"},
	} {
		code, _, data := post(t, url, tc.body)
		wantErr(t, code, data, http.StatusBadRequest, tc.substr)
	}
}

// TestSubmitValidationErrors pins the decode layer of the job API: every
// experiments.Config.Validate error path reachable over HTTP maps to a
// 400 carrying the validation message, before anything is enqueued.
func TestSubmitValidationErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxDeadline: time.Minute})
	url := ts.URL + "/v1/pipeline"

	cases := []struct {
		name, body, substr string
	}{
		{"negative workers", `{"workers":-1}`, "Workers is -1"},
		{"negative random vectors", `{"random_vectors":-3}`, "RandomVectors is -3"},
		{"negative backtrack limit", `{"backtrack_limit":-5}`, "BacktrackLimit is -5"},
		{"yield above 1", `{"target_yield":1.5}`, "TargetYield"},
		{"zero stage budget", `{"stage_budgets_ms":{"atpg":0}}`, "must be > 0"},
		{"negative stage budget", `{"stage_budgets_ms":{"switch-sim":-50}}`, "must be > 0"},
		{"unknown stage", `{"stage_budgets_ms":{"warp-drive":100}}`, "unknown stage"},
		{"negative deadline", `{"deadline_ms":-100}`, "Deadline is"},
		{"absurd deadline", `{"deadline_ms":3600000}`, "exceeds the server maximum"},
		{"unknown stats", `{"stats":"exotic"}`, "unknown stats"},
		{"unknown circuit", `{"circuit":"c9999"}`, "unknown circuit"},
		{"unknown field", `{"bogus":1}`, "unknown field"},
		{"trailing garbage", `{"circuit":"c17"} {"again":true}`, "trailing data"},
		{"not json", `certainly not json`, "invalid request body"},
		{"oversized body", `{"circuit":"` + strings.Repeat("x", 2<<20) + `"}`, "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, data := post(t, url, tc.body)
			wantErr(t, code, data, http.StatusBadRequest, tc.substr)
		})
	}
	// Nothing was admitted along the way.
	if n := s.Metrics().Counter("serve_jobs_submitted").Value(); n != 0 {
		t.Fatalf("invalid requests admitted %d jobs", n)
	}
}
