package serve

import (
	"net/http"
	"testing"

	"defectsim/internal/faultinject"
)

func TestDecodeNDetectRequestDefaults(t *testing.T) {
	req, cfg, nl, n, err := DecodeNDetectRequest([]byte(`{}`), decodeLimits)
	if err != nil {
		t.Fatalf("empty object must decode to the defaults: %v", err)
	}
	if req == nil || nl == nil {
		t.Fatal("nil request/netlist on success")
	}
	if n != 4 {
		t.Fatalf("default n = %d, want 4", n)
	}
	if cfg.Workers != decodeLimits.SimWorkers || cfg.Deadline != decodeLimits.DefaultDeadline {
		t.Fatalf("server limits not applied: %+v", cfg)
	}
}

func TestDecodeNDetectRequestBounds(t *testing.T) {
	for _, body := range []string{
		`{"n":-1}`, `{"n":17}`, `{"n":1000000}`,
	} {
		if _, _, _, _, err := DecodeNDetectRequest([]byte(body), decodeLimits); err == nil {
			t.Fatalf("accepted out-of-range n: %s", body)
		}
	}
	_, _, _, n, err := DecodeNDetectRequest([]byte(`{"n":2,"circuit":"c17","random_vectors":8}`), decodeLimits)
	if err != nil || n != 2 {
		t.Fatalf("valid request rejected: n=%d err=%v", n, err)
	}
	// Pipeline-level validation still applies through the embedded request.
	if _, _, _, _, err := DecodeNDetectRequest([]byte(`{"n":2,"stats":"bogus"}`), decodeLimits); err == nil {
		t.Fatal("accepted unknown stats through the ndetect decoder")
	}
	if _, _, _, _, err := DecodeNDetectRequest([]byte(`{"n":2,"unknown":true}`), decodeLimits); err == nil {
		t.Fatal("accepted unknown field")
	}
}

// TestNDetectEndpoint drives POST /v1/ndetect end to end through the async
// job API: submit, poll to done, check the DL(n) table in the result, and
// confirm coalescing keys separate studies from plain pipeline runs and
// studies with different n.
func TestNDetectEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	// Hold the first job in its switch-sim stage so the coalescing
	// submissions below find it in flight rather than already finished.
	hook, release := blockHook()
	restore := faultinject.Set(faultinject.HookSwitchSimVector, hook)
	defer restore()

	body := `{"circuit":"c17","random_vectors":8,"n":2}`
	code, _, data := post(t, ts.URL+"/v1/ndetect", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202; body: %s", code, data)
	}
	first := decode[jobStatus](t, data)
	if first.ID == "" {
		t.Fatalf("submit response has no job id: %s", data)
	}

	// A study with a different n must NOT coalesce onto the first job.
	code, _, data = post(t, ts.URL+"/v1/ndetect", `{"circuit":"c17","random_vectors":8,"n":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("different-n submit coalesced or failed: %d %s", code, data)
	}
	// A plain pipeline run with the same config must not coalesce either.
	code, _, data = post(t, ts.URL+"/v1/pipeline", `{"circuit":"c17","random_vectors":8}`)
	if code != http.StatusAccepted {
		t.Fatalf("plain pipeline submit coalesced with study: %d %s", code, data)
	}
	// An identical study DOES coalesce.
	code, _, data = post(t, ts.URL+"/v1/ndetect", body)
	if code != http.StatusOK {
		t.Fatalf("identical study did not coalesce: %d %s", code, data)
	}
	joined := decode[jobStatus](t, data)
	if joined.ID != first.ID {
		t.Fatalf("coalesced onto %s, want %s", joined.ID, first.ID)
	}

	release()
	code, data = waitResult(t, ts, first.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, data)
	}
	res := decode[jobResult](t, data)
	if len(res.NDetect) != 2 {
		t.Fatalf("want 2 sweep levels, got %+v", res.NDetect)
	}
	for i, lv := range res.NDetect {
		if lv.N != i+1 {
			t.Fatalf("level %d has n=%d", i, lv.N)
		}
		if i > 0 && lv.Vectors < res.NDetect[i-1].Vectors {
			t.Fatalf("|T(n)| not monotone: %+v", res.NDetect)
		}
		if lv.Theta <= 0 || lv.Theta > 1 {
			t.Fatalf("level %d Θ=%v out of range", i, lv.Theta)
		}
		if lv.DLPPM < 0 {
			t.Fatalf("level %d DL=%v", i, lv.DLPPM)
		}
	}
}

// TestNDetectEndpointRejectsBadRequest: malformed studies are 400s, not
// jobs.
func TestNDetectEndpointRejectsBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{`{"n":99}`, `{"circuit":"nope"}`, `not json`} {
		code, _, data := post(t, ts.URL+"/v1/ndetect", body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: %d %s", body, code, data)
		}
	}
}

// FuzzDecodeNDetectRequest pins the n-detect decoder's safety contract:
// arbitrary bytes never panic, and a nil error guarantees a runnable
// validated configuration within the server limits and 1 <= n <= 16.
func FuzzDecodeNDetectRequest(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"n":4}`,
		`{"n":0}`,
		`{"n":-1}`,
		`{"n":17}`,
		`{"n":9223372036854775807}`,
		`{"circuit":"c17","n":2,"random_vectors":48}`,
		`{"circuit":"adder","seed":-9223372036854775808,"target_yield":1e308,"n":3}`,
		`{"n":2,"stage_budgets_ms":{"atpg":9007199254740993}}`,
		`{"n":2,"deadline_ms":-1,"workers":-1}`,
		`[1,2,3]`,
		`{"n":2} trailing`,
		`{"unknown_field":true,"n":2}`,
		"\x00\xff not json at all",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, cfg, nl, n, err := DecodeNDetectRequest(data, decodeLimits)
		if err != nil {
			return
		}
		if req == nil || nl == nil {
			t.Fatalf("nil error with nil request/netlist: %s", data)
		}
		if n < 1 || n > maxNDetect {
			t.Fatalf("accepted n=%d outside [1, %d]: %s", n, maxNDetect, data)
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("accepted config fails validation (%v): %s", verr, data)
		}
		if cfg.Deadline < 0 || (decodeLimits.MaxDeadline > 0 && cfg.Deadline > decodeLimits.MaxDeadline) {
			t.Fatalf("accepted deadline %v outside [0, %v]: %s", cfg.Deadline, decodeLimits.MaxDeadline, data)
		}
	})
}
