package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Request correlation and access logging. Every request gets an ID —
// the inbound X-Request-ID when it is well-formed, a generated one
// otherwise — echoed on the response, carried through the request
// context into job records and the per-job obs run report, and stamped
// on every structured log line. The instrument middleware additionally
// feeds the serve_requests_total{route,code} counter and the
// serve_request_seconds{route} histogram.

type ctxKey int

const (
	requestIDKey ctxKey = iota
	routeKey
)

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// Generated request IDs are <process prefix>-<counter>: unique within a
// process, and the random prefix keeps IDs from colliding across
// restarts when they end up in shared logs.
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "dlprojd"
		}
		return hex.EncodeToString(b[:])
	}()
	ridCounter atomic.Int64
)

func newRequestID() string {
	return ridPrefix + "-" + strconv.FormatInt(ridCounter.Add(1), 10)
}

// validRequestID accepts an inbound X-Request-ID: 1–128 runes of
// [A-Za-z0-9._-]. Anything else (empty, control characters, log-breaking
// whitespace, unbounded length) is replaced with a generated ID.
func validRequestID(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for _, r := range s {
		ok := r == '.' || r == '_' || r == '-' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// routeHolder is planted in the request context by instrument and filled
// by the matched route's wrapper — the mux's pattern string is not
// otherwise recoverable after routing, and the raw URL path is an
// unbounded label.
type routeHolder struct{ name string }

// route wraps a handler so the matched route pattern becomes the metric
// and log label for the request.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if holder, _ := r.Context().Value(routeKey).(*routeHolder); holder != nil {
			holder.name = name
		}
		h(w, r)
	}
}

// statusRecorder captures the response status for metrics and the access
// log. Unwrap keeps http.ResponseController (flush, write deadlines —
// the SSE handler needs both) working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// instrument is the outermost middleware: request-ID resolution and
// response echo, route/status metrics, and one structured access-log
// line per request. Scrape and probe endpoints log at Debug so a
// 15-second Prometheus interval does not drown the Info log.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-ID")
		if !validRequestID(rid) {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		holder := &routeHolder{}
		ctx := context.WithValue(WithRequestID(r.Context(), rid), routeKey, holder)
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(ctx))

		route := holder.name
		if route == "" {
			route = "unrouted"
		}
		code := rec.status
		if code == 0 {
			code = http.StatusOK
		}
		elapsed := time.Since(start)
		s.mRequests.With(route, strconv.Itoa(code)).Inc()
		s.mReqSeconds.With(route).Observe(elapsed.Seconds())

		level := slog.LevelInfo
		switch route {
		case "/metrics", "/healthz", "/readyz":
			level = slog.LevelDebug
		}
		s.logger.LogAttrs(ctx, level, "http request",
			slog.String("request_id", rid),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", code),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// nopLog is the slog handler behind a nil Config.Logger: every level
// disabled, so call sites never nil-check.
type nopLog struct{}

func (nopLog) Enabled(context.Context, slog.Level) bool  { return false }
func (nopLog) Handle(context.Context, slog.Record) error { return nil }
func (nopLog) WithAttrs([]slog.Attr) slog.Handler        { return nopLog{} }
func (nopLog) WithGroup(string) slog.Handler             { return nopLog{} }
