package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"defectsim/internal/cluster"
	"defectsim/internal/experiments"
	"defectsim/internal/netlist"
)

// Batch submission: POST /v1/pipeline:batch accepts many pipeline
// requests in one round trip and admits them through one critical
// section, amortizing the per-submission admission, coalescing and
// routing cost. Each item succeeds or fails on its own — a shed or
// invalid item never poisons its neighbors — and the response carries a
// per-item status so a client can retry exactly the items that need it.

// BatchRequest is the JSON body of POST /v1/pipeline:batch.
type BatchRequest struct {
	// Items are individual pipeline submissions, each with the
	// PipelineRequest shape.
	Items []json.RawMessage `json:"items"`
}

// BatchItem is one decoded batch entry: either a runnable submission or
// its decode error.
type BatchItem struct {
	Req *PipelineRequest
	Cfg experiments.Config
	Nl  *netlist.Netlist
	// Body is the item's raw JSON, retained for forwarding.
	Body []byte
	// Err is the item's decode/validation failure; nil for a valid item.
	Err error
}

// DecodeBatchRequest parses and validates a batch submission. The error
// return covers envelope-level failures (unparseable body, empty batch,
// too many items); per-item failures land in the item's Err so one bad
// item does not reject the batch.
func DecodeBatchRequest(data []byte, limits Config) ([]BatchItem, error) {
	var req BatchRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if len(req.Items) == 0 {
		return nil, errors.New("batch has no items")
	}
	maxBatch := limits.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if len(req.Items) > maxBatch {
		return nil, fmt.Errorf("batch has %d items, the maximum is %d", len(req.Items), maxBatch)
	}
	items := make([]BatchItem, len(req.Items))
	for i, raw := range req.Items {
		body := []byte(raw)
		r, cfg, nl, err := DecodeRequest(body, limits)
		items[i] = BatchItem{Req: r, Cfg: cfg, Nl: nl, Body: body, Err: err}
	}
	return items, nil
}

// batchItemResult is the per-item response entry.
type batchItemResult struct {
	Index  int    `json:"index"`
	Status string `json:"status"` // accepted | coalesced | shed | invalid
	// RetryAfterS hints when to resubmit a shed item (seconds).
	RetryAfterS int        `json:"retry_after_s,omitempty"`
	Job         *jobStatus `json:"job,omitempty"`
	Error       *apiError  `json:"error,omitempty"`
}

type batchResponse struct {
	Items []batchItemResult `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	// Decode and validate every item OUTSIDE the admission lock — parsing
	// and netlist construction are the expensive part and need no server
	// state beyond the immutable limits.
	items, err := DecodeBatchRequest(data, s.cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	requestID := RequestIDFrom(r.Context())
	noForward := r.Header.Get(cluster.ForwardedHeader) != ""

	resp := batchResponse{Items: make([]batchItemResult, len(items))}
	type admitted struct {
		index     int
		j         *job
		coalesced bool
	}
	var admit []admitted
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, apiError{Message: ErrDraining.Error()})
		return
	}
	for i, it := range items {
		if it.Err != nil {
			continue // filled in below, outside the lock
		}
		j, coalesced, err := s.admitLocked(submission{
			circuit:   it.Nl.Name,
			nl:        it.Nl,
			cfg:       it.Cfg,
			requestID: requestID,
			body:      it.Body,
			noForward: noForward,
		})
		if err != nil {
			resp.Items[i] = batchItemResult{Index: i, Status: "shed",
				Error: &apiError{Message: err.Error()}}
			continue
		}
		admit = append(admit, admitted{index: i, j: j, coalesced: coalesced})
	}
	s.mu.Unlock()

	anyShed := false
	for i, it := range items {
		if it.Err != nil {
			resp.Items[i] = batchItemResult{Index: i, Status: "invalid",
				Error: &apiError{Message: it.Err.Error()}}
		} else if resp.Items[i].Status == "shed" {
			anyShed = true
		}
	}
	if anyShed {
		// One consistent hint for every shed item, computed after admission
		// so it reflects the backlog this batch just created.
		retryAfter := s.retryAfterSeconds()
		for i := range resp.Items {
			if resp.Items[i].Status == "shed" {
				resp.Items[i].RetryAfterS = retryAfter
			}
		}
	}
	for _, a := range admit {
		st := s.status(a.j)
		status := "accepted"
		if a.coalesced {
			status = "coalesced"
		}
		resp.Items[a.index] = batchItemResult{Index: a.index, Status: status, Job: &st}
	}
	writeJSON(w, http.StatusOK, resp)
}
