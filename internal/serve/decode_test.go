package serve

import (
	"testing"
	"time"
)

var decodeLimits = Config{SimWorkers: 2, DefaultDeadline: 2 * time.Second, MaxDeadline: time.Minute}

func TestDecodeRequestDefaults(t *testing.T) {
	req, cfg, nl, err := DecodeRequest([]byte(`{}`), decodeLimits)
	if err != nil {
		t.Fatalf("empty object must decode to the defaults: %v", err)
	}
	if req.Circuit != "" || nl.Name == "" {
		t.Fatalf("default circuit not resolved: req=%q nl=%q", req.Circuit, nl.Name)
	}
	if cfg.Workers != decodeLimits.SimWorkers {
		t.Fatalf("Workers = %d, want the server default %d", cfg.Workers, decodeLimits.SimWorkers)
	}
	if cfg.Deadline != decodeLimits.DefaultDeadline {
		t.Fatalf("Deadline = %v, want the server default %v", cfg.Deadline, decodeLimits.DefaultDeadline)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("decoded default config invalid: %v", err)
	}
}

func TestDecodeRequestOverrides(t *testing.T) {
	body := `{"circuit":"adder","seed":42,"target_yield":0.5,"random_vectors":16,
		"backtrack_limit":100,"stats":"opens","workers":3,"deadline_ms":1500,
		"stage_budgets_ms":{"atpg":250,"switch-sim":250}}`
	_, cfg, nl, err := DecodeRequest([]byte(body), decodeLimits)
	if err != nil {
		t.Fatalf("full override decode failed: %v", err)
	}
	if nl == nil || cfg.Seed != 42 || cfg.TargetYield != 0.5 || cfg.RandomVectors != 16 ||
		cfg.BacktrackLimit != 100 || cfg.Workers != 3 {
		t.Fatalf("overrides lost: %+v", cfg)
	}
	if cfg.Deadline != 1500*time.Millisecond {
		t.Fatalf("Deadline = %v, want 1.5s", cfg.Deadline)
	}
	if cfg.StageBudgets["atpg"] != 250*time.Millisecond {
		t.Fatalf("StageBudgets = %v", cfg.StageBudgets)
	}
}

// FuzzDecodeRequest pins the decode layer's safety contract: arbitrary
// bytes never panic, and a nil error really does guarantee a runnable,
// validated configuration within the server limits.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"circuit":"c17","random_vectors":48}`,
		`{"circuit":"adder","seed":-9223372036854775808,"target_yield":1e308}`,
		`{"stage_budgets_ms":{"atpg":9007199254740993}}`,
		`{"deadline_ms":-1,"workers":-1}`,
		`{"circuit":"C432","stats":"opens","deadline_ms":59999}`,
		`[1,2,3]`,
		`{"circuit":"c17"} trailing`,
		`{"unknown_field":true}`,
		"\x00\xff not json at all",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, cfg, nl, err := DecodeRequest(data, decodeLimits)
		if err != nil {
			return
		}
		if req == nil || nl == nil {
			t.Fatalf("nil error with nil request/netlist: %s", data)
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("accepted config fails validation (%v): %s", verr, data)
		}
		if cfg.Deadline < 0 || (decodeLimits.MaxDeadline > 0 && cfg.Deadline > decodeLimits.MaxDeadline) {
			t.Fatalf("accepted deadline %v outside [0, %v]: %s", cfg.Deadline, decodeLimits.MaxDeadline, data)
		}
	})
}
