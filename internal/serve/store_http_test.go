package serve

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"defectsim/internal/experiments"
	"defectsim/internal/faultinject"
	"defectsim/internal/store"
)

// envelopeFor runs the pipeline once in-process and returns the cache key
// and envelope bytes a completed run of body would persist — the ground
// truth for the /v1/store wire tests.
func envelopeFor(t *testing.T, body string, limits Config) (key string, env []byte) {
	t.Helper()
	_, cfg, nl, err := DecodeRequest([]byte(body), limits)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	p, err := experiments.RunCtx(context.Background(), nl, cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	env, err = p.EncodeCache()
	if err != nil {
		t.Fatalf("EncodeCache: %v", err)
	}
	return experiments.CacheKey(nl.Name, cfg), env
}

func doReq(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return res.StatusCode, buf.Bytes()
}

// TestStoreEndpoints exercises the peer-facing store API end to end:
// miss, idempotent PUT, byte-exact GET, HEAD, and the rejection paths
// (malformed key, corrupt envelope).
func TestStoreEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheDir: t.TempDir()})
	key, env := envelopeFor(t, smallC17, s.cfg)
	url := ts.URL + "/v1/store/" + key

	if code, _ := doReq(t, http.MethodGet, url, nil); code != http.StatusNotFound {
		t.Fatalf("GET missing key = %d, want 404", code)
	}
	if code, _ := doReq(t, http.MethodHead, url, nil); code != http.StatusNotFound {
		t.Fatalf("HEAD missing key = %d, want 404", code)
	}

	if code, body := doReq(t, http.MethodPut, url, env); code != http.StatusCreated {
		t.Fatalf("PUT = %d, want 201; body: %s", code, body)
	}
	// Content-addressed keys make replays free: the second PUT is a no-op.
	if code, _ := doReq(t, http.MethodPut, url, env); code != http.StatusOK {
		t.Fatalf("re-PUT = %d, want 200 (idempotent)", code)
	}

	code, got := doReq(t, http.MethodGet, url, nil)
	if code != http.StatusOK {
		t.Fatalf("GET = %d, want 200", code)
	}
	if !bytes.Equal(got, env) {
		t.Fatalf("GET returned %d bytes != %d PUT bytes", len(got), len(env))
	}
	if code, _ := doReq(t, http.MethodHead, url, nil); code != http.StatusOK {
		t.Fatalf("HEAD = %d, want 200", code)
	}

	if code, _ := doReq(t, http.MethodGet, ts.URL+"/v1/store/not-a-key", nil); code != http.StatusBadRequest {
		t.Fatalf("GET invalid key = %d, want 400", code)
	}
	// A corrupt envelope must be rejected before it can touch the store.
	corrupt := []byte(strings.Replace(string(env), `"checksum":"`, `"checksum":"0`, 1))
	otherKey := strings.Repeat("0", 32)
	if code, _ := doReq(t, http.MethodPut, ts.URL+"/v1/store/"+otherKey, corrupt); code != http.StatusBadRequest {
		t.Fatalf("PUT corrupt envelope = %d, want 400", code)
	}
	if ok, err := s.Store().Stat(context.Background(), otherKey); err != nil || ok {
		t.Fatalf("corrupt envelope reached the store (ok=%v err=%v)", ok, err)
	}
}

// TestStoreGetPartialResponseRecovered injects one partial response (full
// Content-Length, truncated body) into the store GET handler and verifies
// the HTTP store client detects the short read and recovers by retrying.
func TestStoreGetPartialResponseRecovered(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, CacheDir: t.TempDir()})
	key, env := envelopeFor(t, smallC17, s.cfg)
	if err := s.Store().Put(context.Background(), key, env); err != nil {
		t.Fatalf("seed store: %v", err)
	}

	defer faultinject.Set(faultinject.HookStoreServeGet,
		faultinject.Until(1, faultinject.Fail(faultinject.ErrPartialResponse)))()

	remote, err := store.NewHTTP(ts.URL, store.HTTPOptions{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewHTTP: %v", err)
	}
	got, err := remote.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get after injected partial response: %v", err)
	}
	if !bytes.Equal(got, env) {
		t.Fatalf("recovered envelope differs from stored one")
	}
}
