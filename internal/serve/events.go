package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Live job event streams. Every job keeps an append-only in-memory log
// of lifecycle events (queued → running → per-stage start/end →
// degradations → one terminal event); GET /v1/pipeline/{id}/events
// serves it as Server-Sent Events by default, or as JSON long-polling
// with ?poll=1 for clients without an SSE reader. Both forms resume from
// a sequence number (Last-Event-ID / ?since), so a dropped connection
// replays nothing and misses nothing.

// JobEvent is one lifecycle event of a job.
type JobEvent struct {
	// Seq numbers events from 1 per job; the SSE id field and the since
	// query parameter speak this sequence.
	Seq  int64  `json:"seq"`
	Time string `json:"time"` // RFC3339Nano, UTC
	Type string `json:"type"`
	// Stage names the pipeline stage on stage_start/stage_end/degraded.
	Stage string `json:"stage,omitempty"`
	// Detail carries the human-readable specifics: the degradation
	// reason, the failure message, a cache-hit marker.
	Detail string `json:"detail,omitempty"`
}

// Event types, in lifecycle order. done, failed and cancelled are
// terminal: exactly one of them ends every stream.
const (
	EventQueued    = "queued"
	EventCoalesced = "coalesced"
	EventRunning   = "running"
	EventForwarded = "forwarded" // routed to the key's ring owner
	// EventForwardFallback marks a forward that failed and degraded to a
	// local run (the job still terminates normally).
	EventForwardFallback = "forward_fallback"
	// EventReplicaFetch marks the killed-owner failover: the primary was
	// unreachable and the already-replicated result envelope was adopted
	// from a replica — no pipeline re-run.
	EventReplicaFetch = "replica_fetch"
	EventStageStart   = "stage_start"
	EventStageEnd     = "stage_end"
	EventDegraded     = "degraded"
	EventDone         = "done"
	EventFailed       = "failed"
	EventCancelled    = "cancelled"
)

func terminalEvent(typ string) bool {
	return typ == EventDone || typ == EventFailed || typ == EventCancelled
}

// eventLog is one job's event history: append-only, broadcast on write,
// sealed by the first terminal event.
type eventLog struct {
	mu       sync.Mutex
	cond     *sync.Cond
	events   []JobEvent
	terminal bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// emit appends one event and wakes every waiting stream. Events after
// the terminal one are dropped — the job is over, late span or
// degradation callbacks must not reopen the stream.
func (l *eventLog) emit(typ, stage, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.terminal {
		l.mu.Unlock()
		return
	}
	l.events = append(l.events, JobEvent{
		Seq:    int64(len(l.events)) + 1,
		Time:   time.Now().UTC().Format(time.RFC3339Nano),
		Type:   typ,
		Stage:  stage,
		Detail: detail,
	})
	if terminalEvent(typ) {
		l.terminal = true
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// wait blocks until the log holds events past since, the log is
// terminal, timeout expires, or ctx is cancelled — whichever first. It
// returns a copy of the events after since and whether the log was
// terminal at that point (with every event up to the terminal one
// included in the returned slice).
func (l *eventLog) wait(ctx context.Context, since int64, timeout time.Duration) ([]JobEvent, bool) {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() { l.cond.Broadcast() })
	defer wake.Stop()
	stopPoll := context.AfterFunc(ctx, func() { l.cond.Broadcast() })
	defer stopPoll()
	l.mu.Lock()
	defer l.mu.Unlock()
	for int64(len(l.events)) <= since && !l.terminal {
		if ctx.Err() != nil || !time.Now().Before(deadline) {
			break
		}
		l.cond.Wait()
	}
	var out []JobEvent
	if since < int64(len(l.events)) {
		out = append(out, l.events[since:]...)
	}
	return out, l.terminal
}

// pollEventsResponse is the long-poll JSON shape: the new events plus
// whether the job has reached a terminal state (no further events will
// ever arrive; stop polling).
type pollEventsResponse struct {
	Events   []JobEvent `json:"events"`
	Terminal bool       `json:"terminal"`
}

// ssePingInterval is how often an idle SSE stream sends a comment line
// so intermediaries do not reap the connection.
const ssePingInterval = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, apiError{Message: "unknown job " + r.PathValue("id")})
		return
	}
	q := r.URL.Query()
	since, _ := strconv.ParseInt(q.Get("since"), 10, 64)
	if since < 0 {
		since = 0
	}

	if q.Get("poll") == "1" {
		waitFor := 30 * time.Second
		if ms, err := strconv.Atoi(q.Get("wait_ms")); err == nil {
			if ms < 0 {
				ms = 0
			}
			if ms > 60000 {
				ms = 60000
			}
			waitFor = time.Duration(ms) * time.Millisecond
		}
		evs, terminal := j.events.wait(r.Context(), since, waitFor)
		writeJSON(w, http.StatusOK, pollEventsResponse{Events: evs, Terminal: terminal})
		return
	}

	// SSE. A reconnecting EventSource resumes via Last-Event-ID.
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if v, err := strconv.ParseInt(lei, 10, 64); err == nil && v > since {
			since = v
		}
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // disable proxy buffering
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// The stream outlives the server's WriteTimeout by design; clear the
	// per-connection deadline (best effort — ignored where unsupported).
	_ = rc.SetWriteDeadline(time.Time{})
	_ = rc.Flush()

	for {
		evs, terminal := j.events.wait(r.Context(), since, ssePingInterval)
		if r.Context().Err() != nil {
			return
		}
		if len(evs) == 0 && !terminal {
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			_ = rc.Flush()
			continue
		}
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			since = ev.Seq
		}
		if err := rc.Flush(); err != nil {
			return
		}
		if terminal {
			return
		}
	}
}
