package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"defectsim/internal/cluster"
	"defectsim/internal/experiments"
	"defectsim/internal/faultinject"
	"defectsim/internal/obs"
	"defectsim/internal/store"
)

// apiError is the structured error payload of every non-2xx JSON
// response. Pipeline failures keep their stage name and the
// progress-counter snapshot from *experiments.PipelineError, so a client
// sees how far a failed run got instead of an opaque 500.
type apiError struct {
	Message string `json:"message"`
	// Stage names the failed pipeline stage, when the failure was a
	// *experiments.PipelineError.
	Stage string `json:"stage,omitempty"`
	// Progress is the metrics-counter snapshot at failure time.
	Progress []obs.CounterSnap `json:"progress,omitempty"`
}

type errorBody struct {
	Error apiError `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, e apiError) {
	writeJSON(w, status, errorBody{Error: e})
}

// pipelineAPIError converts any job failure into the structured form,
// unwrapping *experiments.PipelineError when present.
func pipelineAPIError(err error) apiError {
	var pe *experiments.PipelineError
	if errors.As(err, &pe) {
		return apiError{Message: err.Error(), Stage: pe.Stage, Progress: pe.Progress}
	}
	return apiError{Message: err.Error()}
}

// Handler returns the server's HTTP handler: the full route set wrapped
// in per-request panic recovery (a panicking handler yields a structured
// 500 JSON error and a serve_handler_panics count, never a torn
// connection or a dead worker), itself wrapped in the correlation
// middleware (request IDs, access log, per-route metrics). Each handler
// is registered through s.route so the matched pattern — not the raw,
// unbounded URL path — becomes the route label.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dl", s.route("/v1/dl", s.handleDL))
	mux.HandleFunc("POST /v1/fit", s.route("/v1/fit", s.handleFit))
	mux.HandleFunc("POST /v1/coverage", s.route("/v1/coverage", s.handleCoverage))
	mux.HandleFunc("POST /v1/pipeline", s.route("/v1/pipeline", s.handleSubmit))
	mux.HandleFunc("POST /v1/pipeline:batch", s.route("/v1/pipeline:batch", s.handleBatch))
	mux.HandleFunc("POST /v1/ndetect", s.route("/v1/ndetect", s.handleNDetect))
	mux.HandleFunc("GET /v1/store/{key}", s.route("/v1/store/{key}", s.handleStoreGet))
	mux.HandleFunc("PUT /v1/store/{key}", s.route("/v1/store/{key}", s.handleStorePut))
	mux.HandleFunc("GET /v1/pipeline/{id}", s.route("/v1/pipeline/{id}", s.handleStatus))
	mux.HandleFunc("GET /v1/pipeline/{id}/result", s.route("/v1/pipeline/{id}/result", s.handleResult))
	mux.HandleFunc("GET /v1/pipeline/{id}/events", s.route("/v1/pipeline/{id}/events", s.handleEvents))
	mux.HandleFunc("POST /v1/pipeline/{id}/cancel", s.route("/v1/pipeline/{id}/cancel", s.handleCancel))
	mux.HandleFunc("POST /v1/cluster/reload", s.route("/v1/cluster/reload", s.handleClusterReload))
	mux.HandleFunc("GET /healthz", s.route("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.route("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.route("/metrics", s.handleMetrics))
	return s.instrument(s.recoverPanics(mux))
}

func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.mPanics.Inc()
				writeError(w, http.StatusInternalServerError, apiError{
					Message: fmt.Sprintf("internal error: %v", rec),
				})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// readBody reads a bounded request body (1 MiB — far above any valid
// request) so a hostile client cannot balloon the handler.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return nil, err
	}
	return data, nil
}

// jobStatus is the JSON shape of a job's state.
type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Circuit   string `json:"circuit"`
	Submitted string `json:"submitted_at,omitempty"`
	Started   string `json:"started_at,omitempty"`
	Finished  string `json:"finished_at,omitempty"`
	// Coalesced counts the extra identical submissions sharing this run.
	Coalesced int64 `json:"coalesced,omitempty"`
	// Degraded flips when the finished run hit a graceful-degradation path
	// (stage budget exhausted with partial results, cache fallback).
	Degraded bool      `json:"degraded,omitempty"`
	Error    *apiError `json:"error,omitempty"`
}

func (s *Server) status(j *job) jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:        j.id,
		State:     j.state,
		Circuit:   j.circuit,
		Coalesced: j.coalesced,
	}
	fmtT := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	st.Submitted = fmtT(j.submitted)
	st.Started = fmtT(j.started)
	st.Finished = fmtT(j.finished)
	if j.pipe != nil && j.pipe.Degraded() {
		st.Degraded = true
	}
	if j.err != nil {
		e := pipelineAPIError(j.err)
		st.Error = &e
	}
	return st
}

type submitResponse struct {
	jobStatus
	// CoalescedOnto is true when this submission joined an identical job
	// already in flight instead of starting a new run.
	CoalescedOnto bool `json:"coalesced_onto_existing,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	_, cfg, nl, err := DecodeRequest(data, s.cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	j, coalesced, err := s.submit(submission{
		circuit:   nl.Name,
		nl:        nl,
		cfg:       cfg,
		requestID: RequestIDFrom(r.Context()),
		body:      data,
		noForward: r.Header.Get(cluster.ForwardedHeader) != "",
	})
	switch {
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, apiError{Message: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, apiError{Message: err.Error()})
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, apiError{Message: err.Error()})
		return
	}
	resp := submitResponse{jobStatus: s.status(j), CoalescedOnto: coalesced}
	status := http.StatusAccepted
	if coalesced {
		status = http.StatusOK
	}
	writeJSON(w, status, resp)
}

// handleNDetect submits an n-detect study: a pipeline run followed by the
// multiplicity sweep (experiments.RunNDetectStudy), sharing the whole
// async job machinery — admission control, coalescing (keyed by config
// AND n), budgets, status/result/events/cancel under /v1/pipeline/{id}.
// Studies always execute locally: the request body is not retained for
// forwarding, because only the underlying pipeline result (not the sweep)
// is store-shareable across the ring.
func (s *Server) handleNDetect(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	_, cfg, nl, n, err := DecodeNDetectRequest(data, s.cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	j, coalesced, err := s.submit(submission{
		circuit:   nl.Name,
		nl:        nl,
		cfg:       cfg,
		requestID: RequestIDFrom(r.Context()),
		ndetect:   n,
	})
	switch {
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, apiError{Message: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, apiError{Message: err.Error()})
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, apiError{Message: err.Error()})
		return
	}
	resp := submitResponse{jobStatus: s.status(j), CoalescedOnto: coalesced}
	status := http.StatusAccepted
	if coalesced {
		status = http.StatusOK
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, apiError{Message: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// jobResult is the JSON shape of a finished run: the headline projection
// figures plus the per-job obs run report.
type jobResult struct {
	ID       string `json:"id"`
	Circuit  string `json:"circuit"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	// Degradations lists the graceful-degradation events of the run
	// (partial ATPG under a stage budget, undecided switch-sim faults,
	// cache fallbacks) — present exactly when Degraded.
	Degradations []string `json:"degradations,omitempty"`
	Yield        float64  `json:"yield"`
	Vectors      int      `json:"vectors"`
	// StuckAtCoverage is T(final) over testable faults; ThetaFinal and
	// GammaFinal are the weighted/unweighted realistic coverages.
	StuckAtCoverage float64 `json:"stuck_at_coverage"`
	ThetaFinal      float64 `json:"theta_final"`
	GammaFinal      float64 `json:"gamma_final"`
	// FittedR / FittedThetaMax are the proposed model's parameters fitted
	// to this run's fallout points (paper eq. 9–11); ResidualPPM is the
	// corresponding residual defect level at 100% stuck-at coverage.
	FittedR        float64 `json:"fitted_r,omitempty"`
	FittedThetaMax float64 `json:"fitted_theta_max,omitempty"`
	ResidualPPM    float64 `json:"residual_ppm,omitempty"`
	// NDetect holds the n-detect sweep levels for jobs submitted via
	// POST /v1/ndetect; absent on plain pipeline jobs.
	NDetect []nDetectLevel `json:"ndetect,omitempty"`
	// Report is this job's obs run report (stage tree + metrics).
	Report *obs.Report `json:"report,omitempty"`
}

// nDetectLevel is one row of the DL(n) projection table.
type nDetectLevel struct {
	N       int `json:"n"`
	Vectors int `json:"vectors"`
	Added   int `json:"added"`
	// FullCoverage is the fraction of testable stuck-at faults detected n
	// times; Saturated counts faults the generator could not push to n.
	FullCoverage float64 `json:"full_coverage"`
	Saturated    int     `json:"saturated,omitempty"`
	// Theta is the realistic (switch-level, voltage) coverage Θ(n); DLPPM
	// the projected defect level at that coverage, in ppm.
	Theta float64 `json:"theta"`
	DLPPM float64 `json:"dl_ppm"`
}

func buildResult(j *job) jobResult {
	p := j.pipe
	res := jobResult{
		ID:       j.id,
		Circuit:  j.circuit,
		CacheHit: j.cacheHit,
		Degraded: p.Degraded(),
		Yield:    p.Yield,
		Vectors:  len(p.TestSet.Patterns),
		Report:   p.Report,
	}
	for _, d := range p.Degradations {
		res.Degradations = append(res.Degradations, d.String())
	}
	res.StuckAtCoverage = p.TestSet.Coverage(true)
	res.ThetaFinal = p.ThetaCurve(false).Final()
	res.GammaFinal = p.GammaCurve().Final()
	if p.Yield > 0 && p.Yield < 1 {
		f5 := experiments.Figure5(p)
		res.FittedR = f5.Fitted.R
		res.FittedThetaMax = f5.Fitted.ThetaMax
		res.ResidualPPM = 1e6 * f5.Fitted.ResidualDL(p.Yield)
	}
	if st := j.study; st != nil {
		for i, n := range st.Ns {
			res.NDetect = append(res.NDetect, nDetectLevel{
				N:            n,
				Vectors:      st.Vectors[i],
				Added:        st.Added[i],
				FullCoverage: st.FullCoverage[i],
				Saturated:    st.Saturated[i],
				Theta:        st.Theta[i],
				DLPPM:        1e6 * st.DL[i],
			})
		}
	}
	return res
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, apiError{Message: "unknown job " + r.PathValue("id")})
		return
	}
	state, err, _ := j.snapshot()
	switch state {
	case StateQueued, StateRunning:
		// Not ready yet: the poll contract is 202 + current status.
		writeJSON(w, http.StatusAccepted, s.status(j))
	case StateDone:
		writeJSON(w, http.StatusOK, buildResult(j))
	case StateCancelled:
		e := pipelineAPIError(err)
		if e.Message == "" {
			e.Message = "job cancelled"
		}
		writeError(w, http.StatusServiceUnavailable, e)
	default: // failed — a structured degradation, never an empty 500
		writeError(w, http.StatusServiceUnavailable, pipelineAPIError(err))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, apiError{Message: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string    `json:"status"`
		Build  BuildInfo `json:"build"`
	}{Status: "ok", Build: s.build})
}

// readyzRing is the cluster block of the /readyz body.
type readyzRing struct {
	Self    string   `json:"self"`
	Nodes   int      `json:"nodes"`
	RF      int      `json:"rf"`
	Members []string `json:"members"`
}

type readyzBody struct {
	Status string `json:"status"`
	// Ring reports the current membership view (absent on single-node
	// deployments without a cluster).
	Ring *readyzRing `json:"ring,omitempty"`
	// HintSpoolDepth is the pending hinted-handoff backlog — a persistent
	// non-zero value means a replica is down and this node is carrying
	// writes for it.
	HintSpoolDepth int `json:"hint_spool_depth"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := readyzBody{Status: "ready", HintSpoolDepth: s.SpoolDepth()}
	if c := s.cfg.Cluster; c != nil {
		ring := c.Ring()
		body.Ring = &readyzRing{Self: c.Self(), Nodes: ring.Len(), RF: c.RF(), Members: ring.Nodes()}
		if c.Reloading() {
			// Mid-swap: the view being replaced may route to nodes about to
			// leave — load balancers should stop sending work until the new
			// ring is in place.
			body.Status = "reloading"
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
	}
	if s.Draining() {
		body.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleClusterReload applies a membership reload from the peers file —
// the HTTP twin of dlprojd's SIGHUP handler. Loopback-only: membership
// is operator-plane, not data-plane, so a remote caller (peer or client)
// must not be able to trigger re-reads of this node's config.
func (s *Server) handleClusterReload(w http.ResponseWriter, r *http.Request) {
	if !requestFromLoopback(r) {
		writeError(w, http.StatusForbidden, apiError{Message: "cluster reload is loopback-only"})
		return
	}
	if s.cfg.Membership == nil {
		writeError(w, http.StatusNotFound, apiError{Message: "no membership source configured (start with -peers-file)"})
		return
	}
	ch, err := s.ReloadMembership()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, apiError{Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ch)
}

// requestFromLoopback reports whether the request's peer address is a
// loopback IP.
func requestFromLoopback(r *http.Request) bool {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return false
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// maxStoreBlob bounds an accepted /v1/store PUT body — far above any
// real cache envelope, low enough to stop a hostile peer from
// ballooning the handler.
const maxStoreBlob = 256 << 20

// handleStoreGet serves a result envelope (GET) or its existence (HEAD)
// out of this node's store — the peer-facing side of the remote store
// backend. The store.serve.get faultinject hook sits between the lookup
// and the write so tests can inject partial responses (full
// Content-Length, truncated body) and exercise the client's short-read
// recovery.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeError(w, http.StatusBadRequest, apiError{Message: "invalid store key"})
		return
	}
	if s.store == nil {
		writeError(w, http.StatusNotFound, apiError{Message: "no result store configured"})
		return
	}
	if r.Method == http.MethodHead {
		ok, err := s.store.Stat(r.Context(), key)
		switch {
		case err != nil:
			writeError(w, http.StatusInternalServerError, apiError{Message: err.Error()})
		case ok:
			w.WriteHeader(http.StatusOK)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
		return
	}
	data, err := s.store.Get(r.Context(), key)
	switch {
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, apiError{Message: "no entry for key " + key})
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, apiError{Message: err.Error()})
		return
	}
	if err := faultinject.Fire(faultinject.WithTarget(r.Context(), key), faultinject.HookStoreServeGet); err != nil {
		if errors.Is(err, faultinject.ErrPartialResponse) {
			// Advertise the full length, send half, drop the connection's
			// worth of trust: the client must detect the short read.
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(data[:len(data)/2])
			return
		}
		writeError(w, http.StatusInternalServerError, apiError{Message: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// handleStorePut accepts a result envelope from a peer. The envelope is
// verified (checksum) before it can touch the store, and an existing
// entry short-circuits to success — content-addressed keys make every
// Put idempotent, so replays and duplicate replications are free.
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeError(w, http.StatusBadRequest, apiError{Message: "invalid store key"})
		return
	}
	if s.store == nil {
		writeError(w, http.StatusServiceUnavailable, apiError{Message: "no result store configured"})
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStoreBlob))
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	if err := store.VerifyEnvelope(data); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	if ok, err := s.store.Stat(r.Context(), key); err == nil && ok {
		w.WriteHeader(http.StatusOK) // already present: idempotent no-op
		return
	}
	if err := s.store.Put(r.Context(), key, data); err != nil {
		writeError(w, http.StatusInternalServerError, apiError{Message: err.Error()})
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// handleMetrics serves the server-level registry — every serve_*
// instrument (queue depth, in-flight, shed, coalesced, request
// counters, …) plus the fleet-level pipeline stage histogram — in the
// Prometheus text exposition format. ?format=json keeps the previous
// behavior: the full obs report (span tree included) as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mUptime.Set(time.Since(s.started).Seconds())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.tr.Report("dlprojd"))
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = s.reg.WritePrometheus(w)
}
