package serve

import (
	"fmt"
	"net/http"

	"defectsim/internal/coverage"
	"defectsim/internal/dlmodel"
	"defectsim/internal/fit"
)

// The synchronous endpoints evaluate the paper's closed-form models and
// fits — microseconds to low milliseconds of CPU, no queue needed. All
// domain violations are rejected with 400 before touching the model
// package (whose contract is to panic on domain errors); the panic
// middleware is only the backstop.

// dlRequest is the body of POST /v1/dl.
type dlRequest struct {
	// Model: williams-brown (eq. 1), agrawal (eq. 2), weighted (eq. 3) or
	// proposed (eq. 11).
	Model string `json:"model"`
	// Mode: "dl" (default) computes the defect level; "required-coverage"
	// inverts williams-brown/proposed for the coverage reaching TargetDL;
	// "residual" returns the proposed model's residual DL at 100% coverage.
	Mode  string  `json:"mode,omitempty"`
	Yield float64 `json:"yield"`
	// Coverage is T for williams-brown/agrawal/proposed and Θ for weighted.
	Coverage float64 `json:"coverage,omitempty"`
	TargetDL float64 `json:"target_dl,omitempty"`
	// N is the Agrawal model's average fault count per faulty chip.
	N float64 `json:"n,omitempty"`
	// R / ThetaMax are the proposed model's parameters.
	R        float64 `json:"r,omitempty"`
	ThetaMax float64 `json:"theta_max,omitempty"`
}

type dlResponse struct {
	Model string `json:"model"`
	Mode  string `json:"mode"`
	// DL is set for mode dl/residual; Coverage for required-coverage.
	DL       *float64 `json:"dl,omitempty"`
	Coverage *float64 `json:"required_coverage,omitempty"`
	// PPM is DL expressed in parts per million, when DL is set.
	PPM *float64 `json:"ppm,omitempty"`
}

func checkYield(y float64) error {
	if !(y > 0 && y < 1) {
		return fmt.Errorf("yield %g must be in (0,1)", y)
	}
	return nil
}

func checkCoverage(name string, c float64) error {
	if !(c >= 0 && c <= 1) {
		return fmt.Errorf("%s %g must be in [0,1]", name, c)
	}
	return nil
}

func (s *Server) handleDL(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	var req dlRequest
	if err := decodeStrict(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	if req.Mode == "" {
		req.Mode = "dl"
	}
	if err := checkYield(req.Yield); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	resp := dlResponse{Model: req.Model, Mode: req.Mode}
	setDL := func(v float64) {
		ppm := 1e6 * v
		resp.DL, resp.PPM = &v, &ppm
	}
	fail := func(err error) { writeError(w, http.StatusBadRequest, apiError{Message: err.Error()}) }

	params := dlmodel.Params{R: req.R, ThetaMax: req.ThetaMax}
	switch {
	case req.Model == "williams-brown" && req.Mode == "dl":
		if err := checkCoverage("coverage", req.Coverage); err != nil {
			fail(err)
			return
		}
		setDL(dlmodel.WilliamsBrown(req.Yield, req.Coverage))
	case req.Model == "williams-brown" && req.Mode == "required-coverage":
		if !(req.TargetDL > 0 && req.TargetDL < 1) {
			fail(fmt.Errorf("target_dl %g must be in (0,1)", req.TargetDL))
			return
		}
		t := dlmodel.WilliamsBrownRequiredT(req.Yield, req.TargetDL)
		resp.Coverage = &t
	case req.Model == "agrawal" && req.Mode == "dl":
		if err := checkCoverage("coverage", req.Coverage); err != nil {
			fail(err)
			return
		}
		if req.N < 1 {
			fail(fmt.Errorf("n = %g must be >= 1", req.N))
			return
		}
		setDL(dlmodel.Agrawal(req.Yield, req.Coverage, req.N))
	case req.Model == "weighted" && req.Mode == "dl":
		if err := checkCoverage("coverage", req.Coverage); err != nil {
			fail(err)
			return
		}
		setDL(dlmodel.Weighted(req.Yield, req.Coverage))
	case req.Model == "proposed":
		if err := params.Validate(); err != nil {
			fail(err)
			return
		}
		switch req.Mode {
		case "dl":
			if err := checkCoverage("coverage", req.Coverage); err != nil {
				fail(err)
				return
			}
			setDL(params.DL(req.Yield, req.Coverage))
		case "required-coverage":
			t, err := params.RequiredT(req.Yield, req.TargetDL)
			if err != nil {
				fail(err)
				return
			}
			resp.Coverage = &t
		case "residual":
			setDL(params.ResidualDL(req.Yield))
		default:
			fail(fmt.Errorf("unknown mode %q for model proposed (dl, required-coverage, residual)", req.Mode))
			return
		}
	default:
		fail(fmt.Errorf("unknown model/mode %q/%q (models: williams-brown, agrawal, weighted, proposed)", req.Model, req.Mode))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// falloutPoint is one observed (coverage, defect level) pair.
type falloutPoint struct {
	T  float64 `json:"t"`
	DL float64 `json:"dl"`
}

// fitRequest is the body of POST /v1/fit.
type fitRequest struct {
	// Model: "proposed" fits (R, Θmax) (eq. 9–11); "agrawal" fits n.
	Model  string         `json:"model"`
	Yield  float64        `json:"yield"`
	Points []falloutPoint `json:"points"`
}

type fitResponse struct {
	Model string `json:"model"`
	// R/ThetaMax for model proposed; ResidualPPM derives from them.
	R           *float64 `json:"r,omitempty"`
	ThetaMax    *float64 `json:"theta_max,omitempty"`
	ResidualPPM *float64 `json:"residual_ppm,omitempty"`
	// N for model agrawal.
	N *float64 `json:"n,omitempty"`
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	var req fitRequest
	if err := decodeStrict(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	if err := checkYield(req.Yield); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	if len(req.Points) < 2 {
		writeError(w, http.StatusBadRequest, apiError{Message: fmt.Sprintf("need at least 2 fallout points, got %d", len(req.Points))})
		return
	}
	points := make([]fit.DLPoint, len(req.Points))
	for i, p := range req.Points {
		if !(p.T >= 0 && p.T <= 1) || !(p.DL >= 0 && p.DL < 1) {
			writeError(w, http.StatusBadRequest, apiError{
				Message: fmt.Sprintf("point %d (t=%g, dl=%g) out of domain: t in [0,1], dl in [0,1)", i, p.T, p.DL)})
			return
		}
		points[i] = fit.DLPoint{T: p.T, DL: p.DL}
	}
	resp := fitResponse{Model: req.Model}
	switch req.Model {
	case "proposed":
		params := fit.FitParams(points, req.Yield)
		ppm := 1e6 * params.ResidualDL(req.Yield)
		resp.R, resp.ThetaMax, resp.ResidualPPM = &params.R, &params.ThetaMax, &ppm
	case "agrawal":
		n := fit.FitAgrawalN(points, req.Yield)
		resp.N = &n
	default:
		writeError(w, http.StatusBadRequest, apiError{Message: fmt.Sprintf("unknown model %q (models: proposed, agrawal)", req.Model)})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// coverageRequest is the body of POST /v1/coverage. Two modes:
//
//   - analytic: Sigma (and optional Cmax) given — evaluate the growth law
//     (eq. 7–8) at Ks.
//   - empirical: DetectedAt given — build the coverage curve from
//     first-detection indices (optionally weighted) and fit σ to it.
type coverageRequest struct {
	// Sigma is the fault-set susceptibility (> 1) of the growth law.
	Sigma float64 `json:"sigma,omitempty"`
	// Cmax is the coverage ceiling (default 1).
	Cmax float64 `json:"cmax,omitempty"`
	// Ks are the vector counts to evaluate at. Empirical mode defaults to
	// a log-spaced grid over the detection indices.
	Ks []int `json:"ks,omitempty"`
	// DetectedAt are first-detection vector indices (0 = never detected).
	DetectedAt []int `json:"detected_at,omitempty"`
	// Weights optionally weight the faults of DetectedAt.
	Weights []float64 `json:"weights,omitempty"`
}

// curvePoint is one (k, coverage) sample of a response curve.
type curvePoint struct {
	K float64 `json:"k"`
	C float64 `json:"c"`
}

type coverageResponse struct {
	Points []curvePoint `json:"points"`
	// Sigma is the request's σ (analytic) or the fitted σ (empirical).
	Sigma float64 `json:"sigma,omitempty"`
	Cmax  float64 `json:"cmax,omitempty"`
}

func toCurvePoints(c coverage.Curve) []curvePoint {
	out := make([]curvePoint, len(c))
	for i, p := range c {
		out[i] = curvePoint{K: p.K, C: p.C}
	}
	return out
}

func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	var req coverageRequest
	if err := decodeStrict(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, apiError{Message: err.Error()})
		return
	}
	fail := func(err error) { writeError(w, http.StatusBadRequest, apiError{Message: err.Error()}) }

	if len(req.DetectedAt) > 0 {
		if len(req.Weights) > 0 && len(req.Weights) != len(req.DetectedAt) {
			fail(fmt.Errorf("weights length %d != detected_at length %d", len(req.Weights), len(req.DetectedAt)))
			return
		}
		maxK := 1
		for _, d := range req.DetectedAt {
			if d < 0 {
				fail(fmt.Errorf("detected_at entries must be >= 0 (0 = undetected), got %d", d))
				return
			}
			if d > maxK {
				maxK = d
			}
		}
		ks := req.Ks
		if len(ks) == 0 {
			ks = coverage.SampleKs(maxK, 8)
		}
		var weights []float64
		if len(req.Weights) > 0 {
			weights = req.Weights
		}
		curve := coverage.FromDetections(req.DetectedAt, weights, ks)
		resp := coverageResponse{Points: toCurvePoints(curve), Cmax: curve.Final()}
		if curve.Final() > 0 {
			resp.Sigma = coverage.FitSigma(curve, 0)
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	if !(req.Sigma > 1) {
		fail(fmt.Errorf("sigma %g must exceed 1 (or provide detected_at for the empirical mode)", req.Sigma))
		return
	}
	cmax := req.Cmax
	if cmax == 0 {
		cmax = 1
	}
	if !(cmax > 0 && cmax <= 1) {
		fail(fmt.Errorf("cmax %g must be in (0,1]", cmax))
		return
	}
	if len(req.Ks) == 0 {
		fail(fmt.Errorf("ks must be non-empty in analytic mode"))
		return
	}
	pts := make([]curvePoint, 0, len(req.Ks))
	for _, k := range req.Ks {
		if k < 0 {
			fail(fmt.Errorf("ks entries must be >= 0, got %d", k))
			return
		}
		pts = append(pts, curvePoint{K: float64(k), C: coverage.Growth(float64(k), req.Sigma, cmax)})
	}
	writeJSON(w, http.StatusOK, coverageResponse{Points: pts, Sigma: req.Sigma, Cmax: cmax})
}
