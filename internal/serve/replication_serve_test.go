package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"defectsim/internal/cluster"
	"defectsim/internal/experiments"
	"defectsim/internal/faultinject"
	"defectsim/internal/obs"
	"defectsim/internal/store"
)

// bodyWithOwners searches seeds from seedBase up for a c17 submission
// whose rf=2 replica set is exactly [primary, secondary], returning the
// request body and the key.
func bodyWithOwners(t *testing.T, ring *cluster.Ring, limits Config, primary, secondary string, seedBase int64) (string, string) {
	t.Helper()
	for seed := seedBase; seed < seedBase+8192; seed++ {
		body := fmt.Sprintf(`{"circuit":"c17","random_vectors":48,"seed":%d}`, seed)
		_, cfg, nl, err := DecodeRequest([]byte(body), limits)
		if err != nil {
			t.Fatalf("DecodeRequest: %v", err)
		}
		key := experiments.CacheKey(nl.Name, cfg)
		owners := ring.OwnersFor(key, 2)
		if len(owners) == 2 && owners[0] == primary && owners[1] == secondary {
			return body, key
		}
	}
	t.Fatalf("no seed in [%d, %d) produced owners [%s, %s]", seedBase, seedBase+8192, primary, secondary)
	return "", ""
}

func computedRuns(nd *fleetNode) int64 {
	return nd.s.Metrics().Counter("serve_pipeline_computed_total").Value()
}

// TestClusterReplicaChaos is the rf=2 acceptance chaos run on a
// three-node ring: a key's primary owner is killed mid-campaign, and the
// fleet must degrade to "fetch from replica" — never "re-simulate" — then
// heal itself. Phases:
//
//	A. healthy: a forwarded job computes on its primary and fans out to
//	   the secondary — rf copies exist when the job settles.
//	B. primary killed: the same key is served from the secondary's
//	   replica copy (replica_hit, zero new computes); a NEW key owned by
//	   the dead node is computed by the surviving replica, which spools a
//	   hinted handoff for the corpse.
//	C. recovery: the breaker closes, the hint drains, and the revived
//	   node converges to a bitwise-identical copy of the reference
//	   envelope — every copy on every owner matches a single-node run.
func TestClusterReplicaChaos(t *testing.T) {
	nodes := newFleetRF(t, 3, 2, 50*time.Millisecond)
	n0, victim, rep := nodes[0], nodes[1], nodes[2]
	ring := n0.s.cfg.Cluster.Ring()
	limits := n0.s.cfg
	ctx := context.Background()

	submitAndWait := func(body string) (jobStatus, jobResult) {
		t.Helper()
		st := submitJob(t, n0.ts, body)
		code, data := waitResult(t, n0.ts, st.ID)
		if code != http.StatusOK {
			t.Fatalf("job %s result = %d: %s", st.ID, code, data)
		}
		res := decode[jobResult](t, data)
		if res.Degraded {
			t.Fatalf("job %s degraded: %v", st.ID, res.Degradations)
		}
		return st, res
	}

	// Phase A — healthy: keyA's replica set is [victim, rep]; submitted
	// through n0 it forwards to the victim, which computes and fans out.
	bodyA, keyA := bodyWithOwners(t, ring, limits, victim.name, rep.name, 100)
	refKeyA, refA := envelopeFor(t, bodyA, limits)
	if refKeyA != keyA {
		t.Fatalf("reference key %s != submission key %s", refKeyA, keyA)
	}
	submitAndWait(bodyA)
	for _, nd := range []*fleetNode{victim, rep} {
		got, err := nd.s.Store().Get(ctx, keyA)
		if err != nil || !bytes.Equal(got, refA) {
			t.Fatalf("phase A: %s copy of %s = %v (err %v), want reference bytes", nd.name, keyA, len(got), err)
		}
	}
	if c := computedRuns(victim); c != 1 {
		t.Fatalf("phase A: victim computed %d pipelines, want 1", c)
	}
	if c := computedRuns(n0) + computedRuns(rep); c != 0 {
		t.Fatalf("phase A: non-owners computed %d pipelines, want 0", c)
	}

	// Phase B — kill the primary at the network. Re-submitting keyA must
	// be served from the replica's copy: no node simulates anything.
	restore := faultinject.Set(faultinject.HookNetRequest,
		faultinject.ForTarget(victim.host(), faultinject.Fail(errors.New("injected: owner killed"))))
	stB, resB := submitAndWait(bodyA)
	if !resB.CacheHit {
		t.Fatalf("phase B: replica-served job not marked as adopted result")
	}
	if !hasEvent(jobEvents(t, n0.ts, stB.ID), EventReplicaFetch) {
		t.Fatalf("phase B: job events missing %q", EventReplicaFetch)
	}
	fwd := n0.s.Metrics().CounterVec("cluster_forward_total", "peer", "outcome")
	if got := fwd.With(rep.name, "replica_hit").Value(); got != 1 {
		t.Fatalf("phase B: cluster_forward_total{%s,replica_hit} = %d, want 1", rep.name, got)
	}
	if c := computedRuns(n0) + computedRuns(victim) + computedRuns(rep); c != 1 {
		t.Fatalf("phase B: fleet computed %d pipelines total, want still 1 (no re-simulation)", c)
	}

	// Still phase B: a NEW key owned by [victim, rep]. The dead primary
	// cannot take it; the replica computes it as stand-in and spools a
	// hinted handoff for the corpse.
	bodyB, keyB := bodyWithOwners(t, ring, limits, victim.name, rep.name, 4000)
	_, refB := envelopeFor(t, bodyB, limits)
	submitAndWait(bodyB)
	if c := computedRuns(rep); c != 1 {
		t.Fatalf("phase B: replica computed %d pipelines, want 1 (stand-in for dead owner)", c)
	}
	if got := fwd.With(rep.name, "ok").Value(); got != 1 {
		t.Fatalf("phase B: cluster_forward_total{%s,ok} = %d, want 1", rep.name, got)
	}
	if depth := rep.s.SpoolDepth(); depth != 1 {
		t.Fatalf("phase B: replica spool depth = %d, want 1 hint for the dead owner", depth)
	}
	if ok, _ := victim.s.Store().Stat(ctx, keyB); ok {
		t.Fatalf("phase B: dead owner has %s before recovery", keyB)
	}

	// Phase C — revive the owner. The replica's breaker half-opens after
	// the cooldown; the replay loop (50ms ticker) drains the hint and the
	// revived node converges to the reference bytes.
	restore()
	deadline := time.Now().Add(15 * time.Second)
	for rep.s.SpoolDepth() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("phase C: hint spool never drained (depth %d)", rep.s.SpoolDepth())
		}
		time.Sleep(10 * time.Millisecond)
	}
	hr := rep.s.Metrics().CounterVec("store_hints_replayed_total", "peer", "outcome")
	if got := hr.With(victim.name, "ok").Value(); got != 1 {
		t.Fatalf("phase C: store_hints_replayed_total{%s,ok} = %d, want 1", victim.name, got)
	}

	// Convergence: every owner holds every campaign key, bitwise-identical
	// to the single-node reference; the fleet computed each key exactly
	// once, and the submitting node never computed at all.
	for _, probe := range []struct {
		key string
		ref []byte
	}{{keyA, refA}, {keyB, refB}} {
		for _, nd := range []*fleetNode{victim, rep} {
			got, err := nd.s.Store().Get(ctx, probe.key)
			if err != nil {
				t.Fatalf("converged %s missing %s: %v", nd.name, probe.key, err)
			}
			if !bytes.Equal(got, probe.ref) {
				t.Fatalf("%s envelope for %s differs from single-node reference", nd.name, probe.key)
			}
			if err := store.VerifyEnvelope(got); err != nil {
				t.Fatalf("%s envelope for %s fails verification: %v", nd.name, probe.key, err)
			}
		}
	}
	if c := computedRuns(n0); c != 0 {
		t.Fatalf("submitting node computed %d pipelines, want 0", c)
	}
	if c := computedRuns(victim) + computedRuns(rep); c != 2 {
		t.Fatalf("fleet computed %d pipelines for 2 distinct keys, want exactly 2", c)
	}
}

// TestClusterMembershipReloadZeroDrops grows a live ring under load: a
// node serving in-flight jobs reloads its peers file (via the loopback
// HTTP endpoint) to admit a new member. Every job submitted before and
// during the swap must reach done undegraded, and post-reload
// submissions must forward to the new member.
func TestClusterMembershipReloadZeroDrops(t *testing.T) {
	// Three real servers; node-0's membership starts as {node-0, node-1}
	// from a peers file and learns node-2 mid-campaign.
	names := []string{"node-0", "node-1", "node-2"}
	nodes := make([]*fleetNode, 3)
	handlers := make([]atomic.Value, 3)
	for i := range nodes {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := handlers[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "node starting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		nodes[i] = &fleetNode{name: names[i], dir: t.TempDir(), ts: ts}
	}
	peersPath := filepath.Join(t.TempDir(), "peers.conf")
	writePeers := func(s string) {
		t.Helper()
		if err := os.WriteFile(peersPath, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writePeers("node-1=" + nodes[1].ts.URL + "\n")
	for i, nd := range nodes {
		tr := obs.New()
		var specs []cluster.PeerSpec
		if i == 0 {
			specs = []cluster.PeerSpec{{Name: "node-1", URL: nodes[1].ts.URL}}
		} else {
			for j, other := range nodes {
				if j != i {
					specs = append(specs, cluster.PeerSpec{Name: other.name, URL: other.ts.URL})
				}
			}
		}
		cl, err := cluster.New(nd.name, specs, tr.Metrics(), fleetOptions())
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", nd.name, err)
		}
		cfg := Config{Workers: 2, QueueDepth: 16, CacheDir: nd.dir, Cluster: cl, Obs: tr}
		if i == 0 {
			cfg.Membership = cluster.NewMembership(cl, peersPath, "")
		}
		nd.s = New(cfg)
		handlers[i].Store(nd.s.Handler())
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			nd.s.Drain(ctx)
			cancel()
			nd.ts.Close()
		}
	})
	n0 := nodes[0]

	// Slow every pipeline a little so the reload genuinely lands while
	// jobs are queued and running.
	restore := faultinject.Set(faultinject.HookGateSimBlock, faultinject.Sleep(5*time.Millisecond))
	defer restore()

	// A campaign of distinct jobs, submitted before the swap.
	var ids []string
	for seed := int64(0); seed < 10; seed++ {
		body := fmt.Sprintf(`{"circuit":"c17","random_vectors":48,"seed":%d}`, 9000+seed)
		ids = append(ids, submitJob(t, n0.ts, body).ID)
	}

	// Mid-flight: admit node-2 through the peers file + reload endpoint.
	writePeers("node-1=" + nodes[1].ts.URL + "\nnode-2=" + nodes[2].ts.URL + "\n")
	code, _, data := post(t, n0.ts.URL+"/v1/cluster/reload", "")
	if code != http.StatusOK {
		t.Fatalf("cluster reload = %d: %s", code, data)
	}
	ch := decode[cluster.MembershipChange](t, data)
	if len(ch.Joined) != 1 || ch.Joined[0] != "node-2" || len(ch.Left) != 0 {
		t.Fatalf("reload change = %+v, want joined [node-2]", ch)
	}
	if len(ch.Nodes) != 3 {
		t.Fatalf("reload nodes = %v, want all three", ch.Nodes)
	}
	if got := n0.s.cfg.Cluster.Ring().Len(); got != 3 {
		t.Fatalf("ring after reload has %d nodes, want 3", got)
	}

	// Zero dropped: every in-flight job settles done and clean.
	for _, id := range ids {
		code, data := waitResult(t, n0.ts, id)
		if code != http.StatusOK {
			t.Fatalf("job %s after reload = %d: %s", id, code, data)
		}
		if res := decode[jobResult](t, data); res.Degraded {
			t.Fatalf("job %s degraded across reload: %v", id, res.Degradations)
		}
	}

	// The new member takes traffic: a key it owns under the new ring
	// forwards to it. (Campaign jobs still queued at swap time may already
	// have forwarded there — the counter must at least grow by this one.)
	fwd := n0.s.Metrics().CounterVec("cluster_forward_total", "peer", "outcome")
	fwdBefore := fwd.With("node-2", "ok").Value()
	body, _ := bodyOwnedBy(t, n0.s.cfg.Cluster.Ring(), n0.s.cfg, "node-2", 20000)
	st := submitJob(t, n0.ts, body)
	if code, data := waitResult(t, n0.ts, st.ID); code != http.StatusOK {
		t.Fatalf("post-reload job = %d: %s", code, data)
	}
	if !hasEvent(jobEvents(t, n0.ts, st.ID), EventForwarded) {
		t.Fatalf("post-reload job for node-2 was not forwarded")
	}
	if got := fwd.With("node-2", "ok").Value(); got <= fwdBefore {
		t.Fatalf("cluster_forward_total{node-2,ok} = %d, want > %d", got, fwdBefore)
	}

	// A half-written peers file must be rejected (422) and change nothing.
	writePeers("node-1=" + nodes[1].ts.URL + "\ngarbage\n")
	code, _, data = post(t, n0.ts.URL+"/v1/cluster/reload", "")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("reload of invalid file = %d: %s", code, data)
	}
	if got := n0.s.cfg.Cluster.Ring().Len(); got != 3 {
		t.Fatalf("failed reload changed the ring: %d nodes", got)
	}

	// Nodes without a membership source 404 the endpoint.
	code, _, _ = post(t, nodes[1].ts.URL+"/v1/cluster/reload", "")
	if code != http.StatusNotFound {
		t.Fatalf("reload without membership source = %d, want 404", code)
	}
}

func TestRequestFromLoopback(t *testing.T) {
	cases := map[string]bool{
		"127.0.0.1:4312": true,
		"[::1]:9":        true,
		"10.0.0.9:1234":  false,
		"8.8.8.8:53":     false,
		"not-an-addr":    false,
		"":               false,
	}
	for addr, want := range cases {
		r := &http.Request{RemoteAddr: addr}
		if got := requestFromLoopback(r); got != want {
			t.Errorf("requestFromLoopback(%q) = %v, want %v", addr, got, want)
		}
	}
}

// TestReadyzRingStateAndReloadWindow: /readyz reports the ring (node
// count, rf, members) and the hint-spool backlog, and answers 503
// "reloading" while a membership swap is mid-flight.
func TestReadyzRingStateAndReloadWindow(t *testing.T) {
	// An hour-long replay interval keeps the background loop from
	// draining the probe hint under the assertion.
	nodes := newFleetRF(t, 2, 2, time.Hour)
	n0 := nodes[0]

	code, data := get(t, n0.ts.URL+"/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", code, data)
	}
	body := decode[readyzBody](t, data)
	if body.Status != "ready" || body.Ring == nil {
		t.Fatalf("readyz body = %+v, want ready with ring block", body)
	}
	if body.Ring.Self != "node-0" || body.Ring.Nodes != 2 || body.Ring.RF != 2 {
		t.Fatalf("readyz ring = %+v, want self node-0, 2 nodes, rf 2", body.Ring)
	}
	if len(body.Ring.Members) != 2 || body.Ring.Members[0] != "node-0" || body.Ring.Members[1] != "node-1" {
		t.Fatalf("readyz members = %v", body.Ring.Members)
	}
	if body.HintSpoolDepth != 0 {
		t.Fatalf("readyz hint_spool_depth = %d, want 0", body.HintSpoolDepth)
	}

	// A queued (deferred) hint surfaces in the spool depth.
	key, _ := envelopeFor(t, `{"circuit":"c17","random_vectors":48,"seed":1}`, n0.s.cfg)
	if err := n0.s.spool.Add("node-1", key, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	_, data = get(t, n0.ts.URL+"/readyz")
	if body := decode[readyzBody](t, data); body.HintSpoolDepth != 1 {
		t.Fatalf("readyz hint_spool_depth with queued hint = %d, want 1", body.HintSpoolDepth)
	}

	// Hold a reload between view build and swap: readyz must flip to 503
	// "reloading" for the duration, then recover.
	hold := make(chan struct{})
	entered := make(chan struct{})
	restore := faultinject.Set(faultinject.HookMembershipReload,
		faultinject.ForTarget("node-0", func(context.Context) error {
			close(entered)
			<-hold
			return nil
		}))
	defer restore()
	done := make(chan error, 1)
	go func() {
		_, _, err := n0.s.cfg.Cluster.Reload([]cluster.PeerSpec{{Name: "node-1", URL: nodes[1].ts.URL}})
		done <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("reload never reached the swap window")
	}
	code, data = get(t, n0.ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz mid-reload = %d: %s", code, data)
	}
	if body := decode[readyzBody](t, data); body.Status != "reloading" {
		t.Fatalf("readyz mid-reload status = %q, want reloading", body.Status)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("reload: %v", err)
	}
	if code, _ := get(t, n0.ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after reload = %d, want 200", code)
	}
}
