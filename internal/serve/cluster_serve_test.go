package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"defectsim/internal/cluster"
	"defectsim/internal/experiments"
	"defectsim/internal/faultinject"
	"defectsim/internal/obs"
	"defectsim/internal/store"
)

// The multi-node tests run a real ring in one process: each node is a
// full Server behind its own httptest listener, with cluster clients
// dialing the others over loopback HTTP. Fault injection at the network
// hook (HookNetRequest) kills peers the way the real world does — at the
// transport — so forwarding, failover and breaker recovery are exercised
// end to end under -race.

// fleetNode is one in-process cluster member.
type fleetNode struct {
	name string
	dir  string // the node's FS store root
	s    *Server
	ts   *httptest.Server
}

// host returns the node's loopback host:port — the HookNetRequest target
// that identifies traffic to this node.
func (n *fleetNode) host() string { return strings.TrimPrefix(n.ts.URL, "http://") }

// fleetOptions are cluster client timings scaled for loopback tests:
// fast retries, a 2-failure breaker, sub-second cooldown.
func fleetOptions() cluster.Options {
	return cluster.Options{
		MaxAttempts:       2,
		BaseDelay:         time.Millisecond,
		MaxDelay:          5 * time.Millisecond,
		PerAttemptTimeout: 5 * time.Second,
		BreakerThreshold:  2,
		BreakerCooldown:   150 * time.Millisecond,
		PollInterval:      2 * time.Millisecond,
	}
}

// newFleet starts n Servers wired into one consistent-hash ring. The
// listeners must exist before the cluster views (each needs every peer's
// URL), so each httptest server starts on a late-bound handler installed
// once its Server is built.
func newFleet(t *testing.T, n int) []*fleetNode {
	return newFleetRF(t, n, 1, 0)
}

// newFleetRF is newFleet with a replication factor and (for rf > 1) a
// hinted-handoff spool per node; hintReplay tunes the background replay
// ticker (0 keeps the production default).
func newFleetRF(t *testing.T, n, rf int, hintReplay time.Duration) []*fleetNode {
	t.Helper()
	nodes := make([]*fleetNode, n)
	handlers := make([]atomic.Value, n) // of http.Handler
	for i := range nodes {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := handlers[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "node starting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		nodes[i] = &fleetNode{name: fmt.Sprintf("node-%d", i), dir: t.TempDir(), ts: ts}
	}
	for i, nd := range nodes {
		var specs []cluster.PeerSpec
		for j, other := range nodes {
			if j != i {
				specs = append(specs, cluster.PeerSpec{Name: other.name, URL: other.ts.URL})
			}
		}
		tr := obs.New()
		opts := fleetOptions()
		opts.RF = rf
		cl, err := cluster.New(nd.name, specs, tr.Metrics(), opts)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", nd.name, err)
		}
		cfg := Config{
			Workers:    2,
			QueueDepth: 8,
			CacheDir:   nd.dir,
			Cluster:    cl,
			Obs:        tr,
		}
		if rf > 1 {
			cfg.SpoolDir = t.TempDir()
			cfg.HintReplayInterval = hintReplay
		}
		nd.s = New(cfg)
		handlers[i].Store(nd.s.Handler())
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			nd.s.Drain(ctx)
			cancel()
			nd.ts.Close()
		}
	})
	return nodes
}

// bodyOwnedBy searches seeds from seedBase up for a c17 submission whose
// cache key the ring assigns to wantOwner, returning the request body and
// the key. Seed bases keep concurrent call sites from colliding on a key.
func bodyOwnedBy(t *testing.T, ring *cluster.Ring, limits Config, wantOwner string, seedBase int64) (string, string) {
	t.Helper()
	for seed := seedBase; seed < seedBase+4096; seed++ {
		body := fmt.Sprintf(`{"circuit":"c17","random_vectors":48,"seed":%d}`, seed)
		_, cfg, nl, err := DecodeRequest([]byte(body), limits)
		if err != nil {
			t.Fatalf("DecodeRequest: %v", err)
		}
		key := experiments.CacheKey(nl.Name, cfg)
		if ring.Owner(key) == wantOwner {
			return body, key
		}
	}
	t.Fatalf("no seed in [%d, %d) produced a key owned by %s", seedBase, seedBase+4096, wantOwner)
	return "", ""
}

func jobEvents(t *testing.T, ts *httptest.Server, id string) []JobEvent {
	t.Helper()
	code, data := get(t, ts.URL+"/v1/pipeline/"+id+"/events?poll=1&wait_ms=0")
	if code != http.StatusOK {
		t.Fatalf("events %s = %d: %s", id, code, data)
	}
	return decode[pollEventsResponse](t, data).Events
}

func hasEvent(evs []JobEvent, typ string) bool {
	for _, ev := range evs {
		if ev.Type == typ {
			return true
		}
	}
	return false
}

// TestClusterForwardSmoke runs a two-node ring: a submission landing on
// the non-owner is forwarded to the owner, executed there, fetched back
// through the owner's store API, and backfilled locally; a batch mixing
// locally- and remotely-owned items completes on both sides.
func TestClusterForwardSmoke(t *testing.T) {
	nodes := newFleet(t, 2)
	n0, n1 := nodes[0], nodes[1]
	ctx := context.Background()

	body, key := bodyOwnedBy(t, n0.s.cfg.Cluster.Ring(), n0.s.cfg, n1.name, 1)
	st := submitJob(t, n0.ts, body)
	code, data := waitResult(t, n0.ts, st.ID)
	if code != http.StatusOK {
		t.Fatalf("forwarded job result = %d: %s", code, data)
	}
	res := decode[jobResult](t, data)
	if res.Degraded {
		t.Fatalf("forwarded job degraded: %v", res.Degradations)
	}
	if !res.CacheHit {
		t.Fatalf("forwarded job not marked as an adopted (cache-hit) result")
	}
	evs := jobEvents(t, n0.ts, st.ID)
	if !hasEvent(evs, EventForwarded) {
		t.Fatalf("job events missing %q: %+v", EventForwarded, evs)
	}
	if hasEvent(evs, EventForwardFallback) {
		t.Fatalf("healthy forward fell back to local: %+v", evs)
	}

	// The owner computed it; both stores hold the envelope afterwards.
	if runs := n1.s.Metrics().Counter("serve_pipeline_runs").Value(); runs < 1 {
		t.Fatalf("owner ran %d pipelines, want >= 1", runs)
	}
	for _, nd := range nodes {
		if ok, err := nd.s.Store().Stat(ctx, key); err != nil || !ok {
			t.Fatalf("%s store missing key %s (ok=%v err=%v)", nd.name, key, ok, err)
		}
	}
	fwd := n0.s.Metrics().CounterVec("cluster_forward_total", "peer", "outcome")
	if got := fwd.With(n1.name, "ok").Value(); got != 1 {
		t.Fatalf("cluster_forward_total{%s,ok} = %d, want 1", n1.name, got)
	}

	// Batch across the ring: one item owned here, one owned by the peer.
	localBody, _ := bodyOwnedBy(t, n0.s.cfg.Cluster.Ring(), n0.s.cfg, n0.name, 500)
	remoteBody, _ := bodyOwnedBy(t, n0.s.cfg.Cluster.Ring(), n0.s.cfg, n1.name, 1000)
	bcode, _, bdata := post(t, n0.ts.URL+"/v1/pipeline:batch",
		fmt.Sprintf(`{"items":[%s,%s]}`, localBody, remoteBody))
	if bcode != http.StatusOK {
		t.Fatalf("batch = %d: %s", bcode, bdata)
	}
	bresp := decode[batchResponse](t, bdata)
	for _, it := range bresp.Items {
		if it.Status != "accepted" || it.Job == nil {
			t.Fatalf("batch item %d = %+v, want accepted", it.Index, it)
		}
		if code, data := waitResult(t, n0.ts, it.Job.ID); code != http.StatusOK {
			t.Fatalf("batch item %d result = %d: %s", it.Index, code, data)
		}
	}
}

// TestClusterPeerKillFailover kills the owning peer at the network and
// verifies the submitting node falls back to a local run (the job still
// succeeds), the peer's breaker opens, and — once the network heals and
// the cooldown elapses — the half-open probe closes it and forwarding
// resumes.
func TestClusterPeerKillFailover(t *testing.T) {
	nodes := newFleet(t, 2)
	n0, n1 := nodes[0], nodes[1]
	br := n0.s.cfg.Cluster.Peer(n1.name).Breaker()
	var mu sync.Mutex
	var transitions []store.BreakerState
	br.OnChange(func(_, to store.BreakerState) {
		mu.Lock()
		transitions = append(transitions, to)
		mu.Unlock()
	})

	// Kill node-1: every network attempt against it fails at the transport.
	restore := faultinject.Set(faultinject.HookNetRequest,
		faultinject.ForTarget(n1.host(), faultinject.Fail(errors.New("injected: peer down"))))
	body, key := bodyOwnedBy(t, n0.s.cfg.Cluster.Ring(), n0.s.cfg, n1.name, 2000)
	st := submitJob(t, n0.ts, body)
	code, data := waitResult(t, n0.ts, st.ID)
	if code != http.StatusOK {
		t.Fatalf("failover job result = %d: %s", code, data)
	}
	if res := decode[jobResult](t, data); res.Degraded {
		t.Fatalf("failover job degraded: %v", res.Degradations)
	}
	if !hasEvent(jobEvents(t, n0.ts, st.ID), EventForwardFallback) {
		t.Fatalf("failover job has no %q event", EventForwardFallback)
	}
	if got := br.State(); got != store.BreakerOpen {
		t.Fatalf("breaker after peer kill = %v, want open", got)
	}
	if ok, err := n0.s.Store().Stat(context.Background(), key); err != nil || !ok {
		t.Fatalf("fallback run not persisted locally (ok=%v err=%v)", ok, err)
	}
	fb := n0.s.Metrics().CounterVec("cluster_fallback_local_total", "reason")
	if got := fb.With("submit_error").Value(); got != 1 {
		t.Fatalf("cluster_fallback_local_total{submit_error} = %d, want 1", got)
	}

	// Heal the network; after the cooldown the next forward is the
	// half-open probe and must close the breaker.
	restore()
	time.Sleep(250 * time.Millisecond) // > BreakerCooldown
	body2, _ := bodyOwnedBy(t, n0.s.cfg.Cluster.Ring(), n0.s.cfg, n1.name, 3000)
	st2 := submitJob(t, n0.ts, body2)
	if code, data := waitResult(t, n0.ts, st2.ID); code != http.StatusOK {
		t.Fatalf("post-recovery job result = %d: %s", code, data)
	}
	if !hasEvent(jobEvents(t, n0.ts, st2.ID), EventForwarded) {
		t.Fatalf("post-recovery job was not forwarded")
	}
	if got := br.State(); got != store.BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", got)
	}
	mu.Lock()
	seq := append([]store.BreakerState(nil), transitions...)
	mu.Unlock()
	want := []store.BreakerState{store.BreakerOpen, store.BreakerHalfOpen, store.BreakerClosed}
	if len(seq) != len(want) {
		t.Fatalf("breaker transitions = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("breaker transitions = %v, want %v", seq, want)
		}
	}
}

// TestClusterChaos is the acceptance chaos run: a three-node ring serving
// a campaign of jobs while one peer is killed mid-run at the network and
// later recovers. Every job must reach a terminal (done) state, every
// persisted envelope on every node must be bitwise-identical to a
// single-node reference execution, the dead peer's breaker must open and
// then half-open/close on recovery, and no store may hold anything but
// complete, verified envelopes.
func TestClusterChaos(t *testing.T) {
	nodes := newFleet(t, 3)
	n0, victim := nodes[0], nodes[1]
	ring := n0.s.cfg.Cluster.Ring()
	limits := n0.s.cfg
	ctx := context.Background()

	// Reference envelopes: the exact bytes a single-node execution of each
	// campaign body persists (the cache payload is deterministic given the
	// result-determining config).
	refEnv := map[string][]byte{}
	reference := func(body string) {
		t.Helper()
		key, env := envelopeFor(t, body, limits)
		refEnv[key] = env
	}

	submitAndWait := func(body string) jobStatus {
		t.Helper()
		st := submitJob(t, n0.ts, body)
		if code, data := waitResult(t, n0.ts, st.ID); code != http.StatusOK {
			t.Fatalf("job %s result = %d: %s", st.ID, code, data)
		}
		return st
	}

	br := n0.s.cfg.Cluster.Peer(victim.name).Breaker()
	var mu sync.Mutex
	var transitions []store.BreakerState
	br.OnChange(func(_, to store.BreakerState) {
		mu.Lock()
		transitions = append(transitions, to)
		mu.Unlock()
	})

	// Phase A — healthy ring: one job per owner, all submitted to node-0,
	// exercising local execution and forwarding to both peers.
	bodySelf, _ := bodyOwnedBy(t, ring, limits, nodes[0].name, 100)
	bodyPeer2, _ := bodyOwnedBy(t, ring, limits, nodes[2].name, 200)
	bodyVictimA, _ := bodyOwnedBy(t, ring, limits, victim.name, 300)
	for _, body := range []string{bodySelf, bodyPeer2, bodyVictimA} {
		reference(body)
		submitAndWait(body)
	}
	fwd := n0.s.Metrics().CounterVec("cluster_forward_total", "peer", "outcome")
	if got := fwd.With(victim.name, "ok").Value(); got != 1 {
		t.Fatalf("phase A: cluster_forward_total{%s,ok} = %d, want 1", victim.name, got)
	}

	// Phase B — kill the victim mid-campaign, and mid-job: the forwarded
	// submission reaches it (one network exchange succeeds), then the
	// network dies under the status polls. The job must fall back to a
	// local run and still finish; two transport failures open the breaker.
	restore := faultinject.Set(faultinject.HookNetRequest,
		faultinject.ForTarget(victim.host(),
			faultinject.After(2, faultinject.Fail(errors.New("injected: peer died mid-run")))))
	bodyVictimB, _ := bodyOwnedBy(t, ring, limits, victim.name, 400)
	reference(bodyVictimB)
	stB := submitAndWait(bodyVictimB)
	if !hasEvent(jobEvents(t, n0.ts, stB.ID), EventForwardFallback) {
		t.Fatalf("phase B: mid-run peer death did not fall back locally")
	}
	if got := br.State(); got != store.BreakerOpen {
		t.Fatalf("phase B: breaker = %v, want open", got)
	}
	// With the breaker open, further victim-owned jobs fail fast to local
	// runs without burning timeouts.
	bodyVictimC, _ := bodyOwnedBy(t, ring, limits, victim.name, 500)
	reference(bodyVictimC)
	submitAndWait(bodyVictimC)
	fb := n0.s.Metrics().CounterVec("cluster_fallback_local_total", "reason")
	if got := fb.With("poll_error").Value() + fb.With("submit_error").Value(); got < 2 {
		t.Fatalf("phase B: local fallbacks = %d, want >= 2", got)
	}

	// Phase C — recovery: heal the network, wait out the cooldown, and
	// forward again. The half-open probe must close the breaker.
	restore()
	time.Sleep(250 * time.Millisecond) // > BreakerCooldown
	bodyVictimD, _ := bodyOwnedBy(t, ring, limits, victim.name, 600)
	reference(bodyVictimD)
	stD := submitAndWait(bodyVictimD)
	if !hasEvent(jobEvents(t, n0.ts, stD.ID), EventForwarded) {
		t.Fatalf("phase C: post-recovery job was not forwarded")
	}
	if got := br.State(); got != store.BreakerClosed {
		t.Fatalf("phase C: breaker = %v, want closed", got)
	}
	mu.Lock()
	seq := append([]store.BreakerState(nil), transitions...)
	mu.Unlock()
	// The breaker may flap (a half-open probe against the still-dead peer
	// re-opens it) depending on how phase B's local runs land against the
	// cooldown; what must hold is: it opened first, it half-opened at some
	// point, and it ended closed.
	if len(seq) < 3 || seq[0] != store.BreakerOpen || seq[len(seq)-1] != store.BreakerClosed {
		t.Fatalf("breaker transitions = %v, want open first and closed last", seq)
	}
	sawHalfOpen := false
	for _, st := range seq {
		if st == store.BreakerHalfOpen {
			sawHalfOpen = true
		}
	}
	if !sawHalfOpen {
		t.Fatalf("breaker transitions = %v, never half-opened", seq)
	}

	// Every key the campaign produced must be present on the submitting
	// node, bitwise-identical to the single-node reference.
	for key, want := range refEnv {
		got, err := n0.s.Store().Get(ctx, key)
		if err != nil {
			t.Fatalf("node-0 store get %s: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("node-0 envelope for %s differs from single-node reference", key)
		}
	}
	// And no store anywhere may hold anything else: every file on every
	// node is a campaign key whose bytes verify and match the reference —
	// in particular, no degraded or partial run was ever persisted.
	for _, nd := range nodes {
		entries, err := os.ReadDir(nd.dir)
		if err != nil {
			t.Fatalf("read %s store dir: %v", nd.name, err)
		}
		for _, e := range entries {
			key := strings.TrimSuffix(e.Name(), ".json")
			want, known := refEnv[key]
			if !known {
				t.Fatalf("%s store holds non-campaign entry %s", nd.name, e.Name())
			}
			data, err := os.ReadFile(filepath.Join(nd.dir, e.Name()))
			if err != nil {
				t.Fatalf("read %s/%s: %v", nd.name, e.Name(), err)
			}
			if err := store.VerifyEnvelope(data); err != nil {
				t.Fatalf("%s store entry %s fails verification: %v", nd.name, e.Name(), err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("%s envelope for %s differs from single-node reference", nd.name, key)
			}
		}
	}
}
