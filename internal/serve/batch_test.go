package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"defectsim/internal/faultinject"
)

// TestBatchSubmitMixed submits one batch carrying a new job, an identical
// duplicate and an invalid item, and checks each gets its own status:
// accepted / coalesced (onto the first item's job, admitted in the same
// critical section) / invalid — one bad item never poisons the batch.
func TestBatchSubmitMixed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4, CacheDir: t.TempDir()})

	body := fmt.Sprintf(`{"items":[%s,%s,%s]}`,
		smallC17, smallC17, `{"circuit":"c17","bogus_knob":1}`)
	code, _, data := post(t, ts.URL+"/v1/pipeline:batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch = %d, want 200; body: %s", code, data)
	}
	resp := decode[batchResponse](t, data)
	if len(resp.Items) != 3 {
		t.Fatalf("batch returned %d items, want 3", len(resp.Items))
	}
	if resp.Items[0].Status != "accepted" || resp.Items[0].Job == nil {
		t.Fatalf("item 0 = %+v, want accepted with job", resp.Items[0])
	}
	if resp.Items[1].Status != "coalesced" || resp.Items[1].Job == nil {
		t.Fatalf("item 1 = %+v, want coalesced with job", resp.Items[1])
	}
	if resp.Items[0].Job.ID != resp.Items[1].Job.ID {
		t.Fatalf("duplicate item got job %s, want %s (coalesced onto item 0)",
			resp.Items[1].Job.ID, resp.Items[0].Job.ID)
	}
	if resp.Items[2].Status != "invalid" || resp.Items[2].Error == nil {
		t.Fatalf("item 2 = %+v, want invalid with error", resp.Items[2])
	}
	if code, _ := waitResult(t, ts, resp.Items[0].Job.ID); code != http.StatusOK {
		t.Fatalf("batched job result = %d, want 200", code)
	}
}

// TestBatchShedRetryAfter fills the worker and the queue, then batches
// three more distinct jobs: exactly one fits the queue, the other two are
// shed with the adaptive Retry-After hint reflecting the post-admission
// backlog (base 1s × (1 + backlog 2 / workers 1) = 3s).
func TestBatchShedRetryAfter(t *testing.T) {
	hook, release := blockHook()
	defer faultinject.Set(faultinject.HookGateSimBlock, hook)()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, CacheDir: t.TempDir()})

	st := submitJob(t, ts, `{"circuit":"c17","random_vectors":48,"seed":10}`)
	waitState(t, ts, st.ID, StateRunning)

	body := `{"items":[` +
		`{"circuit":"c17","random_vectors":48,"seed":11},` +
		`{"circuit":"c17","random_vectors":48,"seed":12},` +
		`{"circuit":"c17","random_vectors":48,"seed":13}]}`
	code, _, data := post(t, ts.URL+"/v1/pipeline:batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch = %d, want 200; body: %s", code, data)
	}
	resp := decode[batchResponse](t, data)
	counts := map[string]int{}
	for _, it := range resp.Items {
		counts[it.Status]++
		if it.Status == "shed" {
			if it.RetryAfterS != 3 {
				t.Fatalf("shed item %d retry_after_s = %d, want 3", it.Index, it.RetryAfterS)
			}
			if it.Error == nil {
				t.Fatalf("shed item %d has no error", it.Index)
			}
		}
	}
	if counts["accepted"] != 1 || counts["shed"] != 2 {
		t.Fatalf("batch statuses = %v, want 1 accepted / 2 shed", counts)
	}
	release()
}

// TestBatchRejectsEnvelope covers the whole-batch rejection paths: an
// empty batch, unparseable JSON, and more items than MaxBatch.
func TestBatchRejectsEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, MaxBatch: 2})

	for name, body := range map[string]string{
		"empty":     `{"items":[]}`,
		"malformed": `{"items":`,
		"unknown":   `{"itemz":[{}]}`,
		"oversize":  fmt.Sprintf(`{"items":[%s,%s,%s]}`, smallC17, smallC17, smallC17),
	} {
		if code, _, data := post(t, ts.URL+"/v1/pipeline:batch", body); code != http.StatusBadRequest {
			t.Fatalf("%s batch = %d, want 400; body: %s", name, code, data)
		}
	}
}

// FuzzDecodeBatchRequest asserts the batch decoder never panics and keeps
// its envelope invariants on arbitrary input: a nil error implies a
// non-empty, size-capped item list in which every entry is either a fully
// decoded submission or carries its own error.
func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add([]byte(`{"items":[` + smallC17 + `]}`))
	f.Add([]byte(`{"items":[` + smallC17 + `,` + smallC17 + `]}`))
	f.Add([]byte(`{"items":[]}`))
	f.Add([]byte(`{"items":[{}]}`))
	f.Add([]byte(`{"items":[{"circuit":"c17","bogus":1}]}`))
	f.Add([]byte(`{"items":[{"circuit":"nope"}]}`))
	f.Add([]byte(`{"items":[{"circuit":"c17","seed":-1,"random_vectors":1e9}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"items":[` + smallC17 + `]} trailing`))

	limits := Config{MaxBatch: 8}.withDefaults()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // the handler bounds bodies long before the decoder
		}
		if strings.Contains(string(data), `"circuit"`) &&
			!strings.Contains(string(data), "c17") {
			// Keep the fuzzer from spending its budget building large
			// benchmark netlists; decode validity is circuit-independent.
			return
		}
		items, err := DecodeBatchRequest(data, limits)
		if err != nil {
			return
		}
		if len(items) == 0 || len(items) > limits.MaxBatch {
			t.Fatalf("decoded %d items with nil error (max %d)", len(items), limits.MaxBatch)
		}
		for i, it := range items {
			if len(it.Body) == 0 {
				t.Fatalf("item %d: empty retained body", i)
			}
			if it.Err == nil && (it.Req == nil || it.Nl == nil) {
				t.Fatalf("item %d: no error but incomplete decode (%+v)", i, it)
			}
		}
	})
}
