package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"defectsim/internal/defect"
	"defectsim/internal/experiments"
	"defectsim/internal/netlist"
)

// PipelineRequest is the JSON body of POST /v1/pipeline. Absent fields
// take the paper's defaults (experiments.DefaultConfig); pointer fields
// distinguish "absent" from an explicit zero. All decode and validation
// failures map to 400 with the validation message in the error body.
type PipelineRequest struct {
	// Circuit is a benchmark name (netlist.BenchmarkNames); default c432.
	Circuit string `json:"circuit,omitempty"`
	// Seed drives the seeded generators and the random vector prefix.
	Seed *int64 `json:"seed,omitempty"`
	// TargetYield rescales extracted fault weights; 0 disables scaling.
	TargetYield *float64 `json:"target_yield,omitempty"`
	// RandomVectors is the random prefix length before deterministic top-up.
	RandomVectors *int `json:"random_vectors,omitempty"`
	// BacktrackLimit bounds the deterministic ATPG per fault.
	BacktrackLimit *int `json:"backtrack_limit,omitempty"`
	// Stats selects the defect statistics: "typical" (default) or "opens".
	Stats string `json:"stats,omitempty"`
	// Workers overrides the per-job simulator worker-pool width.
	Workers *int `json:"workers,omitempty"`
	// DeadlineMS bounds the job's wall time in milliseconds; absent or 0
	// applies the server's default deadline. Values above the server's
	// MaxDeadline are rejected.
	DeadlineMS *int64 `json:"deadline_ms,omitempty"`
	// StageBudgetsMS bounds individual stages (keys: experiments.StageNames)
	// in milliseconds. Exhausting a budget degrades the job where a partial
	// result is usable, exactly as in the CLI.
	StageBudgetsMS map[string]int64 `json:"stage_budgets_ms,omitempty"`
}

// DecodeRequest parses and fully validates a pipeline submission against
// the server limits: strict JSON (unknown fields rejected), circuit and
// stats resolution, per-request deadline capping, and
// experiments.Config.Validate on the assembled configuration. Any error
// is a client error (HTTP 400); a nil error guarantees a runnable config.
func DecodeRequest(data []byte, limits Config) (*PipelineRequest, experiments.Config, *netlist.Netlist, error) {
	var req PipelineRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, experiments.Config{}, nil, err
	}
	cfg, nl, err := assembleConfig(&req, limits)
	if err != nil {
		return nil, experiments.Config{}, nil, err
	}
	return &req, cfg, nl, nil
}

// NDetectRequest is the JSON body of POST /v1/ndetect: a pipeline
// submission plus the target detection multiplicity.
type NDetectRequest struct {
	PipelineRequest
	// N is the maximum detection multiplicity to sweep (1..16); absent or
	// 0 defaults to 4.
	N *int `json:"n,omitempty"`
}

// maxNDetect caps the swept multiplicity: each level costs a counting
// fault-sim campaign plus a switch-level re-score, so an unbounded n is a
// denial-of-service knob, and the DL(n) curve has long flattened by 16.
const maxNDetect = 16

// DecodeNDetectRequest parses and validates an n-detect submission with
// the same guarantees as DecodeRequest, plus the multiplicity bound. A
// nil error guarantees a runnable config and 1 <= n <= 16.
func DecodeNDetectRequest(data []byte, limits Config) (*NDetectRequest, experiments.Config, *netlist.Netlist, int, error) {
	var req NDetectRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, experiments.Config{}, nil, 0, err
	}
	cfg, nl, err := assembleConfig(&req.PipelineRequest, limits)
	if err != nil {
		return nil, experiments.Config{}, nil, 0, err
	}
	n := 4
	if req.N != nil && *req.N != 0 {
		n = *req.N
	}
	if n < 1 || n > maxNDetect {
		return nil, experiments.Config{}, nil, 0, fmt.Errorf(
			"n is %d, must be in [1, %d]", n, maxNDetect)
	}
	return &req, cfg, nl, n, nil
}

// assembleConfig turns a decoded request into a validated configuration
// and resolved netlist under the server limits — shared by every decoder
// that embeds PipelineRequest.
func assembleConfig(req *PipelineRequest, limits Config) (experiments.Config, *netlist.Netlist, error) {
	cfg := experiments.DefaultConfig()
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	if req.TargetYield != nil {
		cfg.TargetYield = *req.TargetYield
	}
	if req.RandomVectors != nil {
		cfg.RandomVectors = *req.RandomVectors
	}
	if req.BacktrackLimit != nil {
		cfg.BacktrackLimit = *req.BacktrackLimit
	}
	switch req.Stats {
	case "", "typical":
		cfg.Stats = defect.Typical()
	case "opens":
		cfg.Stats = defect.OpensDominant()
	default:
		return experiments.Config{}, nil, fmt.Errorf("unknown stats %q (known: typical, opens)", req.Stats)
	}
	cfg.Workers = limits.SimWorkers
	if req.Workers != nil {
		cfg.Workers = *req.Workers
	}
	cfg.Deadline = limits.DefaultDeadline
	if req.DeadlineMS != nil && *req.DeadlineMS != 0 {
		cfg.Deadline = time.Duration(*req.DeadlineMS) * time.Millisecond
	}
	if limits.MaxDeadline > 0 && cfg.Deadline > limits.MaxDeadline {
		return experiments.Config{}, nil, fmt.Errorf(
			"deadline %v exceeds the server maximum %v", cfg.Deadline, limits.MaxDeadline)
	}
	if len(req.StageBudgetsMS) > 0 {
		cfg.StageBudgets = make(map[string]time.Duration, len(req.StageBudgetsMS))
		for stage, ms := range req.StageBudgetsMS {
			cfg.StageBudgets[stage] = time.Duration(ms) * time.Millisecond
		}
	}
	if err := cfg.Validate(); err != nil {
		return experiments.Config{}, nil, err
	}

	circuit := req.Circuit
	if circuit == "" {
		circuit = "c432"
	}
	nl, err := netlist.ByName(circuit, cfg.Seed)
	if err != nil {
		return experiments.Config{}, nil, err
	}
	return cfg, nl, nil
}

// decodeStrict parses JSON with unknown fields and trailing garbage
// rejected — a typo in a request must be a 400, not a silently ignored
// knob.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid request body: trailing data after JSON value")
	}
	return nil
}
