package gatesim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

// workerCounts are the sharding configurations the property tests compare
// against the serial reference: explicit counts, NumCPU, and the <= 0
// values that normalize to NumCPU under the internal/par policy.
func workerCounts() []int {
	return []int{2, 4, runtime.NumCPU(), 0, -3}
}

// TestParallelBitwiseIdenticalToSerial is the core property of the
// fault-parallel engine: SimulateFaultsCtx produces the exact same
// DetectedAt slice — and the same order-independent counters — for every
// worker count, on circuits large enough that the live list really shards.
func TestParallelBitwiseIdenticalToSerial(t *testing.T) {
	circuits := []*netlist.Netlist{
		netlist.C17(),
		netlist.C432Class(1994),
		netlist.RandomCircuit("par-rnd", 42, 16, 8, 220),
	}
	for _, nl := range circuits {
		nl := nl
		t.Run(nl.Name, func(t *testing.T) {
			faults := fault.StuckAtUniverse(nl)
			patterns := RandomPatterns(nl, 256, 7)

			serialReg := obs.NewRegistry()
			serial, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, 1, serialReg)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			if serial.Detected() == 0 {
				t.Fatalf("serial run detected nothing; test circuit too weak")
			}
			for _, w := range workerCounts() {
				reg := obs.NewRegistry()
				par, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, w, reg)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				for i := range serial.DetectedAt {
					if par.DetectedAt[i] != serial.DetectedAt[i] {
						t.Fatalf("workers=%d: fault %d detected at %d, serial says %d",
							w, i, par.DetectedAt[i], serial.DetectedAt[i])
					}
				}
				// The tallies are order-independent sums, so they must
				// agree too (gatesim_parallel_blocks legitimately differs).
				for _, name := range []string{
					"gatesim_blocks", "gatesim_fault_evals",
					"gatesim_activation_skips", "gatesim_faults_dropped",
				} {
					if got, want := reg.Counter(name).Value(), serialReg.Counter(name).Value(); got != want {
						t.Errorf("workers=%d: %s = %d, serial %d", w, name, got, want)
					}
				}
			}
		})
	}
}

// TestParallelPartialResultDeterministic stops the campaign at a fixed
// 64-pattern block via fault injection and checks that the partial result
// handed back with the error is also identical for every worker count.
func TestParallelPartialResultDeterministic(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	patterns := RandomPatterns(nl, 256, 7)
	boom := errors.New("injected block failure")

	runStopped := func(w int) *Result {
		t.Helper()
		// The hook fires once per block; pass two blocks, fail the third.
		restore := faultinject.Set(faultinject.HookGateSimBlock,
			faultinject.After(3, faultinject.Fail(boom)))
		defer restore()
		res, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, w, nil)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want injected failure", w, err)
		}
		return res
	}

	serial := runStopped(1)
	if serial.Detected() == 0 {
		t.Fatalf("two blocks detected nothing; stop point too early")
	}
	full, err := Simulate(nl, faults, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Detected() >= full.Detected() {
		t.Fatalf("partial result detected %d >= full %d; stop did not truncate",
			serial.Detected(), full.Detected())
	}
	for _, w := range workerCounts() {
		par := runStopped(w)
		for i := range serial.DetectedAt {
			if par.DetectedAt[i] != serial.DetectedAt[i] {
				t.Fatalf("workers=%d: partial fault %d at %d, serial says %d",
					w, i, par.DetectedAt[i], serial.DetectedAt[i])
			}
		}
	}
}

// TestParallelPreCancelledContext: a context that is already dead stops the
// campaign before the first block for every worker count.
func TestParallelPreCancelledContext(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	patterns := RandomPatterns(nl, 128, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range append([]int{1}, workerCounts()...) {
		res, err := SimulateFaultsCtx(ctx, nl, faults, patterns, w, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if res == nil {
			t.Fatalf("workers=%d: want empty partial result, got nil", w)
		}
		if n := res.Detected(); n != 0 {
			t.Fatalf("workers=%d: pre-cancelled run detected %d faults", w, n)
		}
	}
}

// TestParallelSmallCampaignCollapses: campaigns below minFaultsPerWorker
// per shard take the serial in-line path (no parallel blocks), and still
// produce the serial result.
func TestParallelSmallCampaignCollapses(t *testing.T) {
	nl := netlist.C17()
	faults := fault.StuckAtUniverse(nl)
	if len(faults) >= 2*minFaultsPerWorker {
		t.Fatalf("c17 universe grew to %d faults; pick a smaller circuit", len(faults))
	}
	patterns := RandomPatterns(nl, 64, 3)
	serial, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	par, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, 8, reg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("gatesim_parallel_blocks").Value(); got != 0 {
		t.Errorf("tiny campaign ran %d parallel blocks, want 0", got)
	}
	for i := range serial.DetectedAt {
		if par.DetectedAt[i] != serial.DetectedAt[i] {
			t.Fatalf("fault %d: %d vs serial %d", i, par.DetectedAt[i], serial.DetectedAt[i])
		}
	}
}

// TestParallelWrapperEquivalence: the Simulate/SimulateObs/SimulateCtx
// wrappers route through the same engine as an explicit worker count.
func TestParallelWrapperEquivalence(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	patterns := RandomPatterns(nl, 128, 9)
	want, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*Result, error){
		"Simulate":    func() (*Result, error) { return Simulate(nl, faults, patterns) },
		"SimulateObs": func() (*Result, error) { return SimulateObs(nl, faults, patterns, nil) },
		"SimulateCtx": func() (*Result, error) { return SimulateCtx(context.Background(), nl, faults, patterns, nil) },
	} {
		got, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want.DetectedAt {
			if got.DetectedAt[i] != want.DetectedAt[i] {
				t.Fatalf("%s: fault %d at %d, engine says %d", name, i, got.DetectedAt[i], want.DetectedAt[i])
			}
		}
	}
}

// TestParallelManyWorkersFewFaults: more workers than faults must not
// panic or lose detections (WorkersFor bounds the pool by the fault count).
func TestParallelManyWorkersFewFaults(t *testing.T) {
	nl := netlist.C17()
	faults := fault.StuckAtUniverse(nl)[:3]
	patterns := RandomPatterns(nl, 64, 5)
	serial, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(par.DetectedAt) != fmt.Sprint(serial.DetectedAt) {
		t.Fatalf("got %v, want %v", par.DetectedAt, serial.DetectedAt)
	}
}
