package gatesim

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

// TestCountingN1IdenticalToFirstDetection pins the acceptance contract of
// counting mode: with n = 1 the whole result — detections, per-fault drop
// behavior, counters — reproduces SimulateFaultsCtx exactly, and
// NthDetectedAt collapses onto DetectedAt.
func TestCountingN1IdenticalToFirstDetection(t *testing.T) {
	for _, nl := range []*netlist.Netlist{
		netlist.C17(),
		netlist.C432Class(1994),
		netlist.RandomCircuit("nd-rnd", 11, 14, 7, 180),
	} {
		nl := nl
		t.Run(nl.Name, func(t *testing.T) {
			faults := fault.StuckAtUniverse(nl)
			patterns := RandomPatterns(nl, 192, 5)
			ref, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			refReg := obs.NewRegistry()
			if _, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, 1, refReg); err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			got, err := SimulateFaultsNCtx(context.Background(), nl, faults, patterns, 1, 1, reg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range faults {
				if got.DetectedAt[i] != ref.DetectedAt[i] {
					t.Fatalf("fault %d: DetectedAt %d, first-detection mode says %d",
						i, got.DetectedAt[i], ref.DetectedAt[i])
				}
				if got.NthDetectedAt[i] != got.DetectedAt[i] {
					t.Fatalf("fault %d: NthDetectedAt %d != DetectedAt %d at n=1",
						i, got.NthDetectedAt[i], got.DetectedAt[i])
				}
				want := 0
				if ref.DetectedAt[i] > 0 {
					want = 1
				}
				if got.DetectCounts[i] != want {
					t.Fatalf("fault %d: DetectCounts %d, want %d", i, got.DetectCounts[i], want)
				}
			}
			if got.VectorsApplied != len(patterns) {
				t.Fatalf("VectorsApplied = %d, want %d", got.VectorsApplied, len(patterns))
			}
			// n=1 counting does the same per-block work as first detection.
			for _, name := range []string{
				"gatesim_blocks", "gatesim_fault_evals",
				"gatesim_activation_skips", "gatesim_faults_dropped",
			} {
				if got, want := reg.Counter(name).Value(), refReg.Counter(name).Value(); got != want {
					t.Errorf("%s = %d, first-detection mode %d", name, got, want)
				}
			}
		})
	}
}

// TestCountingMatchesSignatures checks counting mode against the
// no-dropping Signatures reference: DetectCounts must equal the number of
// detecting vectors capped at n, and NthDetectedAt must name exactly the
// n-th of them, for a spread of n.
func TestCountingMatchesSignatures(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	patterns := RandomPatterns(nl, 192, 5)
	sigs, err := Signatures(nl, faults, patterns)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 4, 7, 64} {
		res, err := SimulateFaultsNCtx(context.Background(), nl, faults, patterns, n, 0, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range faults {
			wantCount := len(sigs[i])
			if wantCount > n {
				wantCount = n
			}
			if res.DetectCounts[i] != wantCount {
				t.Fatalf("n=%d fault %d: DetectCounts %d, signatures say %d",
					n, i, res.DetectCounts[i], wantCount)
			}
			wantNth := 0
			if len(sigs[i]) >= n {
				wantNth = sigs[i][n-1].Vector + 1
			}
			if res.NthDetectedAt[i] != wantNth {
				t.Fatalf("n=%d fault %d: NthDetectedAt %d, signatures say %d",
					n, i, res.NthDetectedAt[i], wantNth)
			}
			wantFirst := 0
			if len(sigs[i]) > 0 {
				wantFirst = sigs[i][0].Vector + 1
			}
			if res.DetectedAt[i] != wantFirst {
				t.Fatalf("n=%d fault %d: DetectedAt %d, signatures say %d",
					n, i, res.DetectedAt[i], wantFirst)
			}
		}
	}
}

// TestCountingParallelBitwiseIdentical pins counting mode bitwise
// identical across worker counts {1, 4, NumCPU} — the acceptance
// criterion — plus the normalized <= 0 values.
func TestCountingParallelBitwiseIdentical(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	patterns := RandomPatterns(nl, 256, 7)
	for _, n := range []int{2, 4} {
		serial, err := SimulateFaultsNCtx(context.Background(), nl, faults, patterns, n, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if serial.DetectedN(n) == 0 {
			t.Fatalf("n=%d: nothing reached %d detections; test set too weak", n, n)
		}
		for _, w := range []int{1, 4, runtime.NumCPU(), 0, -2} {
			par, err := SimulateFaultsNCtx(context.Background(), nl, faults, patterns, n, w, nil)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			for i := range faults {
				if par.DetectedAt[i] != serial.DetectedAt[i] ||
					par.DetectCounts[i] != serial.DetectCounts[i] ||
					par.NthDetectedAt[i] != serial.NthDetectedAt[i] {
					t.Fatalf("n=%d workers=%d fault %d: (%d,%d,%d) vs serial (%d,%d,%d)",
						n, w, i,
						par.DetectedAt[i], par.DetectCounts[i], par.NthDetectedAt[i],
						serial.DetectedAt[i], serial.DetectCounts[i], serial.NthDetectedAt[i])
				}
			}
		}
	}
}

// TestSimulateFaultsNCtxRejectsBadN: the counting engine refuses n < 1
// instead of silently degrading to first-detection mode.
func TestSimulateFaultsNCtxRejectsBadN(t *testing.T) {
	nl := netlist.C17()
	faults := fault.StuckAtUniverse(nl)
	patterns := RandomPatterns(nl, 8, 1)
	for _, n := range []int{0, -1} {
		if _, err := SimulateFaultsNCtx(context.Background(), nl, faults, patterns, n, 0, nil); err == nil {
			t.Fatalf("n=%d accepted", n)
		}
	}
}

// TestCoverageClampsToVectorsApplied is the regression test for the
// Coverage accounting bug: a Result must not report coverage credit for
// vectors beyond the ones actually applied. The hand-built detection at
// vector 7 (which a real 5-vector campaign cannot produce) must stay
// invisible at any queried k — mirroring the PR 4
// switchsim.Result.DetectedBy clamp.
func TestCoverageClampsToVectorsApplied(t *testing.T) {
	r := &Result{DetectedAt: []int{1, 7}, VectorsApplied: 5}
	if got := r.Coverage(10); got != 0.5 {
		t.Fatalf("Coverage(10) = %v, want 0.5 (clamped to 5 applied vectors)", got)
	}
	if got := r.Coverage(5); got != 0.5 {
		t.Fatalf("Coverage(5) = %v, want 0.5", got)
	}
	// Zero VectorsApplied (hand-built, never ran the engine): unclamped,
	// preserving the historical meaning.
	legacy := &Result{DetectedAt: []int{1, 7}}
	if got := legacy.Coverage(10); got != 1.0 {
		t.Fatalf("legacy Coverage(10) = %v, want 1.0 (unclamped)", got)
	}
}

// TestEarlyStopRecordsVectorsApplied: a campaign stopped by fault
// injection reports the vectors applied before the stop, and Coverage
// queried past the stop equals Coverage at the stop.
func TestEarlyStopRecordsVectorsApplied(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	patterns := RandomPatterns(nl, 256, 7)
	boom := errors.New("injected block failure")
	restore := faultinject.Set(faultinject.HookGateSimBlock,
		faultinject.After(3, faultinject.Fail(boom)))
	defer restore()
	res, err := SimulateFaultsCtx(context.Background(), nl, faults, patterns, 0, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if res.VectorsApplied != 128 {
		t.Fatalf("VectorsApplied = %d, want 128 (two completed blocks)", res.VectorsApplied)
	}
	if got, want := res.Coverage(len(patterns)), res.Coverage(res.VectorsApplied); got != want {
		t.Fatalf("Coverage past the stop = %v, at the stop = %v", got, want)
	}
}

// TestTransitionVectorsApplied: the transition simulator has no early-stop
// path, so its result always covers the full pattern sequence.
func TestTransitionVectorsApplied(t *testing.T) {
	nl := netlist.C17()
	faults := fault.StuckAtUniverse(nl)
	patterns := RandomPatterns(nl, 48, 3)
	res, err := SimulateTransitions(nl, faults, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if res.VectorsApplied != len(patterns) {
		t.Fatalf("VectorsApplied = %d, want %d", res.VectorsApplied, len(patterns))
	}
	for i, d := range res.DetectedAt {
		if d > res.VectorsApplied {
			t.Fatalf("fault %d captured at %d beyond the applied window", i, d)
		}
	}
}
