package gatesim

import (
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/netlist"
)

func TestTransitionNeedsLaunchAndCapture(t *testing.T) {
	// Inverter chain a → n1 → y. The slow-to-fall transition on n1
	// (associated with n1/sa1) needs n1 = 1 on the launch vector (a = 0)
	// and sa1 detection on the capture vector (a = 1, good n1 = 0).
	nl := netlist.New("inv2")
	a := nl.AddPI("a")
	n1 := nl.AddGate(netlist.Not, "n1", a)
	y := nl.AddGate(netlist.Not, "y", n1)
	nl.MarkPO(y)
	f := []fault.StuckAt{{Net: n1, Branch: -1, Value: 1}}

	// Capture-only sequence (no launch first): a=1,1 never launches.
	res, err := SimulateTransitions(nl, f, []Pattern{{1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 0 {
		t.Fatal("no launch, no detection")
	}
	// Launch then capture: a=0 (n1=1), then a=1 (tests n1/sa1).
	res, err = SimulateTransitions(nl, f, []Pattern{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 2 {
		t.Fatalf("detected at %d, want capture vector 2", res.DetectedAt[0])
	}
	// The pure stuck-at simulation would already detect on vector 1.
	sa, _ := Simulate(nl, f, []Pattern{{1}})
	if sa.DetectedAt[0] != 1 {
		t.Fatal("sanity: stuck-at detection on first vector")
	}
}

func TestTransitionFirstVectorNeverDetects(t *testing.T) {
	nl := netlist.C17()
	faults := fault.StuckAtUniverse(nl)
	res, err := SimulateTransitions(nl, faults, exhaustivePatterns(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.DetectedAt {
		if d == 1 {
			t.Fatalf("fault %v claims detection on vector 1 (no launch exists)", faults[i])
		}
	}
}

func TestTransitionNeverBeatsStuckAt(t *testing.T) {
	// A transition fault's detection requires its stuck-at detection on
	// the same capture vector, so transition coverage ≤ stuck-at coverage
	// at every k, and first detections cannot come earlier.
	nl := netlist.C432Class(5)
	faults := fault.StuckAtUniverse(nl)
	pats := RandomPatterns(nl, 192, 9)
	tr, err := SimulateTransitions(nl, faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Simulate(nl, faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		if tr.DetectedAt[i] > 0 && sa.DetectedAt[i] == 0 {
			t.Fatalf("fault %v: transition detected but stuck-at never", faults[i])
		}
		if tr.DetectedAt[i] > 0 && tr.DetectedAt[i] < sa.DetectedAt[i] {
			t.Fatalf("fault %v: transition at %d before stuck-at at %d",
				faults[i], tr.DetectedAt[i], sa.DetectedAt[i])
		}
	}
	for k := 16; k <= 192; k *= 2 {
		if tr.Coverage(k) > sa.Coverage(k) {
			t.Fatalf("transition coverage %.3f exceeds stuck-at %.3f at k=%d",
				tr.Coverage(k), sa.Coverage(k), k)
		}
	}
	// Transition testing is strictly harder: with this budget some faults
	// must remain transition-undetected while stuck-at-detected.
	harder := 0
	for i := range faults {
		if sa.DetectedAt[i] > 0 && tr.DetectedAt[i] == 0 {
			harder++
		}
	}
	if harder == 0 {
		t.Fatal("expected some launch-limited faults")
	}
}

func TestTransitionAcrossBlockBoundary(t *testing.T) {
	// Launch on pattern 64, capture on pattern 65 (crossing the 64-bit
	// block boundary exercises the prevBit carry).
	nl := netlist.New("inv")
	a := nl.AddPI("a")
	y := nl.AddGate(netlist.Not, "y", a)
	nl.MarkPO(y)
	// Slow-to-fall on a (a/sa1): launch needs a=1, capture needs a=0.
	pats := make([]Pattern, 65)
	for i := range pats {
		pats[i] = Pattern{0} // neither launch (a=1) nor capture possible
	}
	pats[63] = Pattern{1} // launch on the last bit of block 0
	pats[64] = Pattern{0} // capture on the first bit of block 1
	res, err := SimulateTransitions(nl, []fault.StuckAt{{Net: a, Branch: -1, Value: 1}}, pats)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 65 {
		t.Fatalf("detected at %d, want 65", res.DetectedAt[0])
	}
}

func TestTransitionRejectsBadPattern(t *testing.T) {
	nl := netlist.C17()
	if _, err := SimulateTransitions(nl, nil, []Pattern{{0}}); err == nil {
		t.Fatal("short pattern must error")
	}
}
