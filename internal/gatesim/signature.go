package gatesim

import (
	"fmt"

	"defectsim/internal/fault"
	"defectsim/internal/netlist"
)

// Fail records one failing observation: primary-output failures (bit i set
// = PO i differs from the good machine) on one vector.
type Fail struct {
	Vector int    // 0-based vector index
	POMask uint64 // failing outputs
}

// Signatures simulates every fault against the full pattern set *without*
// fault dropping and returns, per fault, the complete list of failing
// observations — the raw material of a fault dictionary. Faults with an
// empty list are undetected by the set.
func Signatures(nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern) ([][]Fail, error) {
	if len(nl.POs) > 64 {
		return nil, fmt.Errorf("gatesim: signature masks support ≤ 64 POs, circuit has %d", len(nl.POs))
	}
	sim, err := newSimulator(nl)
	if err != nil {
		return nil, err
	}
	for _, p := range patterns {
		if len(p) != len(nl.PIs) {
			return nil, fmt.Errorf("gatesim: pattern has %d bits, want %d", len(p), len(nl.PIs))
		}
	}
	sigs := make([][]Fail, len(faults))
	goodPO := make([]uint64, len(nl.POs))
	goodAll := make([]uint64, nl.NumNets())
	piWords := make([]uint64, len(nl.PIs))

	for base := 0; base < len(patterns); base += 64 {
		block := patterns[base:]
		if len(block) > 64 {
			block = block[:64]
		}
		for i := range piWords {
			piWords[i] = 0
		}
		for b, p := range block {
			for i, bit := range p {
				if bit != 0 {
					piWords[i] |= 1 << uint(b)
				}
			}
		}
		mask := ^uint64(0)
		if len(block) < 64 {
			mask = (1 << uint(len(block))) - 1
		}
		vals := sim.eval(piWords, nil)
		copy(goodAll, vals)
		for i, po := range nl.POs {
			goodPO[i] = vals[po]
		}
		for fi := range faults {
			f := &faults[fi]
			site := goodAll[f.Net]
			want := uint64(0)
			if f.Value == 1 {
				want = ^uint64(0)
			}
			if (site^want)&mask == 0 {
				continue // never activated in this block
			}
			fv := sim.eval(piWords, f)
			// Per-vector PO failure masks.
			var anyDiff uint64
			poDiff := make([]uint64, len(nl.POs))
			for i, po := range nl.POs {
				poDiff[i] = (fv[po] ^ goodPO[i]) & mask
				anyDiff |= poDiff[i]
			}
			for b := 0; anyDiff != 0 && b < len(block); b++ {
				bit := uint64(1) << uint(b)
				if anyDiff&bit == 0 {
					continue
				}
				var pm uint64
				for i := range poDiff {
					if poDiff[i]&bit != 0 {
						pm |= 1 << uint(i)
					}
				}
				sigs[fi] = append(sigs[fi], Fail{Vector: base + b, POMask: pm})
			}
		}
	}
	return sigs, nil
}
