// Package gatesim is the gate-level fault simulator of the pipeline: a
// 64-way parallel-pattern single stuck-at simulator with fault dropping.
// It produces the stuck-at coverage curves T(k) of the paper's figures 4
// and 5. Besides the classic first-detection mode it offers a
// detection-counting mode (SimulateFaultsNCtx) where a fault stays live
// until detected by n vectors — the engine behind n-detect test sets.
//
// # Parallel execution
//
// The simulator is pattern-parallel (64 patterns per machine word) and,
// since this PR, fault-parallel: within each 64-pattern block the good
// machine is evaluated once, then the live-fault list is sharded across a
// worker pool (SimulateFaultsCtx's workers parameter; <= 0 selects
// runtime.NumCPU() via the shared internal/par policy). Every worker owns
// a private simulator scratch buffer and private counters that are
// flushed once per block, detection indices land at disjoint fault
// positions, and the live list is re-merged in deterministic order after
// each block — so the result is bitwise identical to a serial run for any
// worker count, and fault dropping propagates across all workers between
// blocks.
package gatesim

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
	"defectsim/internal/par"
)

// Pattern is one input vector: a 0/1 value per primary input in PI order.
type Pattern []uint8

// Result of a stuck-at fault simulation campaign.
type Result struct {
	// DetectedAt[i] is the 1-based index of the first vector detecting
	// fault i, or 0 if the vector set never detects it.
	DetectedAt []int
	// DetectCounts[i] is the number of vectors detecting fault i, counted
	// up to the campaign's target n (counting mode, SimulateFaultsNCtx);
	// nil in first-detection mode. Counts are per applied vector: a
	// stimulus occurring twice in the pattern set credits two detections.
	DetectCounts []int
	// NthDetectedAt[i] is the 1-based index of the vector supplying fault
	// i's n-th detection (counting mode), or 0 when the set never reaches
	// n detections; nil in first-detection mode. For n = 1 it equals
	// DetectedAt.
	NthDetectedAt []int
	// VectorsApplied is how many leading vectors the campaign actually
	// simulated. A completed campaign reports the full set length (even
	// when every fault dropped early — the remaining vectors could not
	// have changed any verdict); an early-stopped one (cancellation,
	// injected failure) reports the vectors before the stop. Zero on
	// hand-built Results that never ran the engine.
	VectorsApplied int
}

// Coverage returns T(k): the fraction of the fault list detected by the
// first k vectors.
//
// k is clamped to VectorsApplied: an early-stopped campaign simulated only
// VectorsApplied vectors, so querying coverage at a k beyond the stop
// point reports the coverage as of the stop — vectors that were never
// simulated cannot claim detection credit. (A Result whose VectorsApplied
// is zero is queried unclamped, so hand-built Results keep their
// historical meaning; mirrors switchsim.Result.DetectedBy.)
func (r *Result) Coverage(k int) float64 {
	if len(r.DetectedAt) == 0 {
		return 0
	}
	if r.VectorsApplied > 0 && k > r.VectorsApplied {
		k = r.VectorsApplied
	}
	n := 0
	for _, d := range r.DetectedAt {
		if d > 0 && d <= k {
			n++
		}
	}
	return float64(n) / float64(len(r.DetectedAt))
}

// DetectedN returns the number of faults whose detection count reached n —
// counting-mode results only (zero otherwise).
func (r *Result) DetectedN(n int) int {
	c := 0
	for _, v := range r.DetectCounts {
		if v >= n {
			c++
		}
	}
	return c
}

// Detected returns the number of faults detected by the whole vector set.
func (r *Result) Detected() int {
	n := 0
	for _, d := range r.DetectedAt {
		if d > 0 {
			n++
		}
	}
	return n
}

// simulator caches the levelized structure of a netlist.
type simulator struct {
	nl    *netlist.Netlist
	order []int
	vals  []uint64 // scratch, indexed by net
}

func newSimulator(nl *netlist.Netlist) (*simulator, error) {
	order, _, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	return &simulator{nl: nl, order: order, vals: make([]uint64, nl.NumNets())}, nil
}

// clone returns a simulator sharing the read-only levelized structure but
// owning a private scratch buffer — one per worker.
func (s *simulator) clone() *simulator {
	return &simulator{nl: s.nl, order: s.order, vals: make([]uint64, len(s.vals))}
}

// eval computes all net values for the packed PI words, with an optional
// stuck-at fault injected (f == nil means fault-free). The result aliases
// the scratch buffer.
func (s *simulator) eval(piWords []uint64, f *fault.StuckAt) []uint64 {
	vals := s.vals
	for i, pi := range s.nl.PIs {
		vals[pi] = piWords[i]
	}
	stuck := func(v uint8) uint64 {
		if v == 0 {
			return 0
		}
		return ^uint64(0)
	}
	if f != nil && f.Branch < 0 && s.nl.Driver(f.Net) < 0 {
		// Stem fault on a primary input.
		vals[f.Net] = stuck(f.Value)
	}
	var in [8]uint64
	for _, gi := range s.order {
		g := &s.nl.Gates[gi]
		inputs := in[:0]
		for _, x := range g.Inputs {
			v := vals[x]
			if f != nil && f.Branch == gi && f.Net == x {
				v = stuck(f.Value)
			}
			inputs = append(inputs, v)
		}
		out := g.Type.Eval(inputs)
		if f != nil && f.Branch < 0 && f.Net == g.Out {
			out = stuck(f.Value)
		}
		vals[g.Out] = out
	}
	return vals
}

// Simulate runs the stuck-at fault list against the pattern sequence with
// fault dropping and returns first-detection indices.
func Simulate(nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern) (*Result, error) {
	return SimulateObs(nl, faults, patterns, nil)
}

// SimulateObs is Simulate with metrics: per-run counts of 64-pattern
// blocks, faulty-machine evaluations, activation-filter skips and fault
// drops land in reg. Counters are accumulated locally and flushed once
// per run, so a nil registry costs nothing on the hot path.
func SimulateObs(nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern, reg *obs.Registry) (*Result, error) {
	return SimulateFaultsCtx(context.Background(), nl, faults, patterns, 0, reg)
}

// SimulateCtx is SimulateObs with cancellation: the context is checked
// once per 64-pattern block, so a cancelled or expired context stops the
// campaign promptly. On early stop it returns the partial result (first
// detections recorded so far) together with the context's error.
func SimulateCtx(ctx context.Context, nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern, reg *obs.Registry) (*Result, error) {
	return SimulateFaultsCtx(ctx, nl, faults, patterns, 0, reg)
}

// minFaultsPerWorker is the smallest live-fault shard worth a goroutine:
// below it the block runs on fewer workers (down to the serial in-line
// path), keeping tiny campaigns — like the one-pattern top-up simulations
// inside ATPG — free of scheduling overhead. The value does not affect
// results, only how a block's work is split.
const minFaultsPerWorker = 32

// shardCounters are one worker's private per-block tallies, merged into
// the campaign totals after every block. Padded to a cache line so
// neighboring workers don't false-share.
type shardCounters struct {
	faultEvals, actSkips, dropped int64
	_                             [5]int64
}

// blockState is the read-only view of one 64-pattern block that every
// worker shards over: the packed PI words, the pattern mask, and the
// fault-free machine's values.
type blockState struct {
	piWords []uint64
	mask    uint64
	nBlock  int // patterns in this block
	base    int // index of the block's first pattern
	goodPO  []uint64
	goodAll []uint64
}

// simShard runs one worker's strided share of the live list against the
// current block: the activation filter, the faulty-machine evaluation and
// detection extraction. Detections land at disjoint positions of the
// result slices and drop (live indices are unique), counters stay
// worker-private.
//
// need selects the mode: 0 is classic first-detection-with-dropping;
// need >= 1 is counting mode — the fault accumulates one detection per
// detecting vector into res.DetectCounts and is dropped only when the
// count reaches need, with the supplying vector recorded in
// res.NthDetectedAt. Both modes fill res.DetectedAt identically, and
// need == 1 drops at exactly the same vector as need == 0.
func (s *simulator) simShard(bs *blockState, faults []fault.StuckAt, live []int, offset, stride int, res *Result, need int, drop []bool, c *shardCounters) {
	for li := offset; li < len(live); li += stride {
		fi := live[li]
		f := &faults[fi]
		// Activation filter: a fault whose site already carries the
		// stuck value in every pattern cannot change anything.
		site := bs.goodAll[f.Net]
		want := uint64(0)
		if f.Value == 1 {
			want = ^uint64(0)
		}
		if (site^want)&bs.mask == 0 {
			c.actSkips++
			continue
		}
		c.faultEvals++
		fv := s.eval(bs.piWords, f)
		var diff uint64
		for i, po := range s.nl.POs {
			diff |= (fv[po] ^ bs.goodPO[i]) & bs.mask
		}
		if diff == 0 {
			continue
		}
		// First set bit = earliest detecting pattern in the block. A live
		// fault has no recorded detection yet in first-detection mode; in
		// counting mode the guard keeps the first index from earlier blocks.
		if res.DetectedAt[fi] == 0 {
			res.DetectedAt[fi] = bs.base + bits.TrailingZeros64(diff) + 1
		}
		if need == 0 {
			c.dropped++
			drop[li] = true
			continue
		}
		// Counting mode: every set bit of diff is one detecting vector.
		hits := bits.OnesCount64(diff)
		rem := need - res.DetectCounts[fi]
		if hits < rem {
			res.DetectCounts[fi] += hits
			continue
		}
		// The rem-th set bit supplies the need-th detection; drop the fault.
		res.DetectCounts[fi] = need
		res.NthDetectedAt[fi] = bs.base + selectBit(diff, rem) + 1
		c.dropped++
		drop[li] = true
	}
}

// selectBit returns the position of the k-th (1-based) set bit of x.
// The caller guarantees x has at least k set bits.
func selectBit(x uint64, k int) int {
	for ; k > 1; k-- {
		x &= x - 1 // clear the lowest set bit
	}
	return bits.TrailingZeros64(x)
}

// SimulateFaultsCtx is the full engine: SimulateCtx with an explicit
// worker count (<= 0 selects runtime.NumCPU(), mirroring
// switchsim.SimulateFaultsCtx). Within each 64-pattern block the good
// machine is evaluated once and the live-fault list is sharded across the
// workers; results are bitwise identical to a serial run for every worker
// count. See the package comment for the execution model.
func SimulateFaultsCtx(ctx context.Context, nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern, workers int, reg *obs.Registry) (*Result, error) {
	return simulateFaults(ctx, nl, faults, patterns, 0, workers, reg)
}

// SimulateFaultsNCtx is the detection-counting engine behind n-detect test
// sets: a fault stays live until detected by n vectors (instead of being
// dropped at its first detection) and the result carries, per fault, the
// detection count capped at n (DetectCounts) and the index of the vector
// supplying the n-th detection (NthDetectedAt). DetectedAt keeps its
// first-detection meaning, and for n = 1 the whole result — detections,
// drops, counters — is identical to SimulateFaultsCtx. Counting mode
// shares the block/shard engine, so it is equally parallel-safe: bitwise
// identical for every worker count.
func SimulateFaultsNCtx(ctx context.Context, nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern, n, workers int, reg *obs.Registry) (*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("gatesim: detection target n = %d, must be >= 1", n)
	}
	return simulateFaults(ctx, nl, faults, patterns, n, workers, reg)
}

// simulateFaults is the shared engine; need == 0 selects first-detection
// mode, need >= 1 counting mode (see simShard).
func simulateFaults(ctx context.Context, nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern, need, workers int, reg *obs.Registry) (*Result, error) {
	sim, err := newSimulator(nl)
	if err != nil {
		return nil, err
	}
	for _, p := range patterns {
		if len(p) != len(nl.PIs) {
			return nil, fmt.Errorf("gatesim: pattern has %d bits, want %d", len(p), len(nl.PIs))
		}
	}
	res := &Result{DetectedAt: make([]int, len(faults))}
	if need > 0 {
		res.DetectCounts = make([]int, len(faults))
		res.NthDetectedAt = make([]int, len(faults))
	}
	live := make([]int, 0, len(faults))
	for i := range faults {
		live = append(live, i)
	}
	maxWorkers := par.WorkersFor(workers, len(faults))
	if nl.NumNets() > 0 {
		// Prime the netlist's lazily built driver index before any worker
		// can race to initialize it from eval.
		nl.Driver(0)
	}
	// sims[0] doubles as the good-machine evaluator; further workers get
	// lazily cloned private scratch buffers the first block that needs them.
	sims := make([]*simulator, 1, maxWorkers)
	sims[0] = sim

	goodPO := make([]uint64, len(nl.POs))
	goodAll := make([]uint64, nl.NumNets())
	piWords := make([]uint64, len(nl.PIs))
	drop := make([]bool, len(faults))
	counters := make([]shardCounters, maxWorkers)

	var nBlocks, nParBlocks, nFaultEvals, nActSkips, nDropped int64
	defer func() {
		if reg != nil {
			reg.Counter("gatesim_blocks").Add(nBlocks)
			reg.Counter("gatesim_parallel_blocks").Add(nParBlocks)
			reg.Counter("gatesim_fault_evals").Add(nFaultEvals)
			reg.Counter("gatesim_activation_skips").Add(nActSkips)
			reg.Counter("gatesim_faults_dropped").Add(nDropped)
			reg.Gauge("gatesim_workers").Set(float64(maxWorkers))
		}
	}()
	for base := 0; base < len(patterns) && len(live) > 0; base += 64 {
		if err := faultinject.Fire(ctx, faultinject.HookGateSimBlock); err != nil {
			return res, err
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}
		nBlocks++
		block := patterns[base:]
		if len(block) > 64 {
			block = block[:64]
		}
		for i := range piWords {
			piWords[i] = 0
		}
		for b, p := range block {
			for i, bit := range p {
				if bit != 0 {
					piWords[i] |= 1 << uint(b)
				}
			}
		}
		mask := ^uint64(0)
		if len(block) < 64 {
			mask = (1 << uint(len(block))) - 1
		}

		vals := sim.eval(piWords, nil)
		copy(goodAll, vals)
		for i, po := range nl.POs {
			goodPO[i] = vals[po]
		}
		bs := &blockState{
			piWords: piWords, mask: mask, nBlock: len(block), base: base,
			goodPO: goodPO, goodAll: goodAll,
		}

		// Shard the live list; small blocks collapse to fewer workers (and
		// to the in-line serial path at one) without changing results.
		w := par.WorkersFor(maxWorkers, (len(live)+minFaultsPerWorker-1)/minFaultsPerWorker)
		if w == 1 {
			sim.simShard(bs, faults, live, 0, 1, res, need, drop, &counters[0])
		} else {
			nParBlocks++
			for len(sims) < w {
				sims = append(sims, sim.clone())
			}
			var wg sync.WaitGroup
			for i := 0; i < w; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sims[i].simShard(bs, faults, live, i, w, res, need, drop, &counters[i])
				}(i)
			}
			wg.Wait()
		}

		// Deterministic merge: fold the worker-private counters into the
		// campaign totals and rebuild the live list in its original order,
		// dropping this block's detections for every worker alike.
		for i := 0; i < w; i++ {
			nFaultEvals += counters[i].faultEvals
			nActSkips += counters[i].actSkips
			nDropped += counters[i].dropped
			counters[i] = shardCounters{}
		}
		keep := live[:0]
		for li, fi := range live {
			if drop[li] {
				drop[li] = false
				continue
			}
			keep = append(keep, fi)
		}
		live = keep
		res.VectorsApplied = base + len(block)
	}
	// A campaign that ran to here covered the whole set: either every
	// block was simulated, or the live list emptied early and the skipped
	// vectors could not have changed any verdict.
	res.VectorsApplied = len(patterns)
	return res, nil
}

// RandomPatterns returns n pseudorandom patterns for nl's inputs using a
// simple deterministic xorshift generator (seeded), suitable for the
// random-prefix test sets of the experiments.
func RandomPatterns(nl *netlist.Netlist, n int, seed uint64) []Pattern {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	state := seed
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	out := make([]Pattern, n)
	for i := range out {
		p := make(Pattern, len(nl.PIs))
		for j := range p {
			p[j] = uint8(next() & 1)
		}
		out[i] = p
	}
	return out
}
