// Package gatesim is the gate-level fault simulator of the pipeline: a
// 64-way parallel-pattern single stuck-at simulator with fault dropping.
// It produces the stuck-at coverage curves T(k) of the paper's figures 4
// and 5.
package gatesim

import (
	"context"
	"fmt"

	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

// Pattern is one input vector: a 0/1 value per primary input in PI order.
type Pattern []uint8

// Result of a stuck-at fault simulation campaign.
type Result struct {
	// DetectedAt[i] is the 1-based index of the first vector detecting
	// fault i, or 0 if the vector set never detects it.
	DetectedAt []int
}

// Coverage returns T(k): the fraction of the fault list detected by the
// first k vectors.
func (r *Result) Coverage(k int) float64 {
	if len(r.DetectedAt) == 0 {
		return 0
	}
	n := 0
	for _, d := range r.DetectedAt {
		if d > 0 && d <= k {
			n++
		}
	}
	return float64(n) / float64(len(r.DetectedAt))
}

// Detected returns the number of faults detected by the whole vector set.
func (r *Result) Detected() int {
	n := 0
	for _, d := range r.DetectedAt {
		if d > 0 {
			n++
		}
	}
	return n
}

// simulator caches the levelized structure of a netlist.
type simulator struct {
	nl    *netlist.Netlist
	order []int
	vals  []uint64 // scratch, indexed by net
}

func newSimulator(nl *netlist.Netlist) (*simulator, error) {
	order, _, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	return &simulator{nl: nl, order: order, vals: make([]uint64, nl.NumNets())}, nil
}

// eval computes all net values for the packed PI words, with an optional
// stuck-at fault injected (f == nil means fault-free). The result aliases
// the scratch buffer.
func (s *simulator) eval(piWords []uint64, f *fault.StuckAt) []uint64 {
	vals := s.vals
	for i, pi := range s.nl.PIs {
		vals[pi] = piWords[i]
	}
	stuck := func(v uint8) uint64 {
		if v == 0 {
			return 0
		}
		return ^uint64(0)
	}
	if f != nil && f.Branch < 0 && s.nl.Driver(f.Net) < 0 {
		// Stem fault on a primary input.
		vals[f.Net] = stuck(f.Value)
	}
	var in [8]uint64
	for _, gi := range s.order {
		g := &s.nl.Gates[gi]
		inputs := in[:0]
		for _, x := range g.Inputs {
			v := vals[x]
			if f != nil && f.Branch == gi && f.Net == x {
				v = stuck(f.Value)
			}
			inputs = append(inputs, v)
		}
		out := g.Type.Eval(inputs)
		if f != nil && f.Branch < 0 && f.Net == g.Out {
			out = stuck(f.Value)
		}
		vals[g.Out] = out
	}
	return vals
}

// Simulate runs the stuck-at fault list against the pattern sequence with
// fault dropping and returns first-detection indices.
func Simulate(nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern) (*Result, error) {
	return SimulateObs(nl, faults, patterns, nil)
}

// SimulateObs is Simulate with metrics: per-run counts of 64-pattern
// blocks, faulty-machine evaluations, activation-filter skips and fault
// drops land in reg. Counters are accumulated locally and flushed once
// per run, so a nil registry costs nothing on the hot path.
func SimulateObs(nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern, reg *obs.Registry) (*Result, error) {
	return SimulateCtx(context.Background(), nl, faults, patterns, reg)
}

// SimulateCtx is SimulateObs with cancellation: the context is checked
// once per 64-pattern block, so a cancelled or expired context stops the
// campaign promptly. On early stop it returns the partial result (first
// detections recorded so far) together with the context's error.
func SimulateCtx(ctx context.Context, nl *netlist.Netlist, faults []fault.StuckAt, patterns []Pattern, reg *obs.Registry) (*Result, error) {
	sim, err := newSimulator(nl)
	if err != nil {
		return nil, err
	}
	for _, p := range patterns {
		if len(p) != len(nl.PIs) {
			return nil, fmt.Errorf("gatesim: pattern has %d bits, want %d", len(p), len(nl.PIs))
		}
	}
	res := &Result{DetectedAt: make([]int, len(faults))}
	live := make([]int, 0, len(faults))
	for i := range faults {
		live = append(live, i)
	}
	goodPO := make([]uint64, len(nl.POs))
	goodAll := make([]uint64, nl.NumNets())
	piWords := make([]uint64, len(nl.PIs))

	var nBlocks, nFaultEvals, nActSkips, nDropped int64
	defer func() {
		if reg != nil {
			reg.Counter("gatesim_blocks").Add(nBlocks)
			reg.Counter("gatesim_fault_evals").Add(nFaultEvals)
			reg.Counter("gatesim_activation_skips").Add(nActSkips)
			reg.Counter("gatesim_faults_dropped").Add(nDropped)
		}
	}()
	for base := 0; base < len(patterns) && len(live) > 0; base += 64 {
		if err := faultinject.Fire(ctx, faultinject.HookGateSimBlock); err != nil {
			return res, err
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}
		nBlocks++
		block := patterns[base:]
		if len(block) > 64 {
			block = block[:64]
		}
		for i := range piWords {
			piWords[i] = 0
		}
		for b, p := range block {
			for i, bit := range p {
				if bit != 0 {
					piWords[i] |= 1 << uint(b)
				}
			}
		}
		mask := ^uint64(0)
		if len(block) < 64 {
			mask = (1 << uint(len(block))) - 1
		}

		vals := sim.eval(piWords, nil)
		copy(goodAll, vals)
		for i, po := range nl.POs {
			goodPO[i] = vals[po]
		}

		keep := live[:0]
		for _, fi := range live {
			f := &faults[fi]
			// Activation filter: a fault whose site already carries the
			// stuck value in every pattern cannot change anything.
			site := goodAll[f.Net]
			want := uint64(0)
			if f.Value == 1 {
				want = ^uint64(0)
			}
			if (site^want)&mask == 0 {
				nActSkips++
				keep = append(keep, fi)
				continue
			}
			nFaultEvals++
			fv := sim.eval(piWords, f)
			var diff uint64
			for i, po := range nl.POs {
				diff |= (fv[po] ^ goodPO[i]) & mask
			}
			if diff == 0 {
				keep = append(keep, fi)
				continue
			}
			// First set bit = earliest detecting pattern in the block.
			nDropped++
			for b := 0; b < len(block); b++ {
				if diff&(1<<uint(b)) != 0 {
					res.DetectedAt[fi] = base + b + 1
					break
				}
			}
		}
		live = keep
	}
	return res, nil
}

// RandomPatterns returns n pseudorandom patterns for nl's inputs using a
// simple deterministic xorshift generator (seeded), suitable for the
// random-prefix test sets of the experiments.
func RandomPatterns(nl *netlist.Netlist, n int, seed uint64) []Pattern {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	state := seed
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	out := make([]Pattern, n)
	for i := range out {
		p := make(Pattern, len(nl.PIs))
		for j := range p {
			p[j] = uint8(next() & 1)
		}
		out[i] = p
	}
	return out
}
