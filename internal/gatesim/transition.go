package gatesim

import (
	"fmt"

	"defectsim/internal/fault"
	"defectsim/internal/netlist"
)

// Transition-fault (gross-delay) simulation — the "delay fault testing"
// detection technique the paper points to (ref. [8], Park/Mercer/Williams)
// as one way to push the coverage ceiling Θmax toward 1.
//
// The classical transition fault on a line is one-to-one with a stuck-at
// fault plus a launch condition: a slow-to-rise fault on line L behaves as
// L stuck-at-0 on the capture vector, provided the previous vector set L
// to 0 (the launch). A consecutive vector pair (v_{k−1}, v_k) therefore
// detects the transition fault associated with stuck-at fault f iff
//
//	value(L, v_{k−1}) = f.Value   (launch: line starts at the slow value)
//	v_k detects f                  (capture: stuck-at detection)
//
// SimulateTransitions scores the whole stuck-at universe under this
// two-pattern criterion, reusing the 64-way parallel-pattern machinery.

// SimulateTransitions runs transition-fault simulation for the transition
// faults corresponding to saFaults over consecutive pattern pairs. The
// result's DetectedAt[i] is the 1-based index of the first *capture*
// vector (necessarily ≥ 2), or 0 when the pair sequence never detects it.
//
// Capture-index accounting: the transition simulator has no early-stop
// path (no context, no fault injection), so a returned Result always
// covers the whole pattern sequence and reports VectorsApplied =
// len(patterns); every capture index is ≤ that bound by construction, and
// Coverage(k) clamps against it like any other campaign result.
func SimulateTransitions(nl *netlist.Netlist, saFaults []fault.StuckAt, patterns []Pattern) (*Result, error) {
	sim, err := newSimulator(nl)
	if err != nil {
		return nil, err
	}
	for _, p := range patterns {
		if len(p) != len(nl.PIs) {
			return nil, fmt.Errorf("gatesim: pattern has %d bits, want %d", len(p), len(nl.PIs))
		}
	}
	res := &Result{DetectedAt: make([]int, len(saFaults))}
	live := make([]int, 0, len(saFaults))
	for i := range saFaults {
		live = append(live, i)
	}

	goodPO := make([]uint64, len(nl.POs))
	goodAll := make([]uint64, nl.NumNets())
	piWords := make([]uint64, len(nl.PIs))
	// prevBit[i] = 1 when fault i's site carried the slow (stuck) value on
	// the last pattern of the previous block; undefined before the first
	// pattern (no launch possible at k = 1).
	prevBit := make([]uint64, len(saFaults))
	havePrev := false

	for base := 0; base < len(patterns) && len(live) > 0; base += 64 {
		block := patterns[base:]
		if len(block) > 64 {
			block = block[:64]
		}
		for i := range piWords {
			piWords[i] = 0
		}
		for b, p := range block {
			for i, bit := range p {
				if bit != 0 {
					piWords[i] |= 1 << uint(b)
				}
			}
		}
		mask := ^uint64(0)
		if len(block) < 64 {
			mask = (1 << uint(len(block))) - 1
		}

		vals := sim.eval(piWords, nil)
		copy(goodAll, vals)
		for i, po := range nl.POs {
			goodPO[i] = vals[po]
		}

		keep := live[:0]
		for _, fi := range live {
			f := &saFaults[fi]
			want := uint64(0)
			if f.Value == 1 {
				want = ^uint64(0)
			}
			site := goodAll[f.Net]
			atSlow := ^(site ^ want) // bit b: site carries the slow value on pattern base+b
			// Launch mask: slow value on the *previous* pattern.
			launch := atSlow << 1
			if havePrev {
				launch |= prevBit[fi]
			}
			prevBit[fi] = (atSlow >> uint(len(block)-1)) & 1

			// Capture: stuck-at detection on the current pattern.
			if (site^want)&mask == 0 {
				// Site never leaves the slow value: no capture possible.
				keep = append(keep, fi)
				continue
			}
			fv := sim.eval(piWords, f)
			var diff uint64
			for i, po := range nl.POs {
				diff |= (fv[po] ^ goodPO[i]) & mask
			}
			hit := diff & launch & mask
			if hit == 0 {
				keep = append(keep, fi)
				continue
			}
			for b := 0; b < len(block); b++ {
				if hit&(1<<uint(b)) != 0 {
					res.DetectedAt[fi] = base + b + 1
					break
				}
			}
		}
		// prevBit must be maintained for dropped faults too; it already is
		// (we updated it before the detection check).
		live = keep
		havePrev = true
	}
	res.VectorsApplied = len(patterns)
	return res, nil
}
