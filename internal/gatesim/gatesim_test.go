package gatesim

import (
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/netlist"
)

func exhaustivePatterns(nPI int) []Pattern {
	out := make([]Pattern, 1<<uint(nPI))
	for v := range out {
		p := make(Pattern, nPI)
		for i := 0; i < nPI; i++ {
			p[i] = uint8((v >> uint(i)) & 1)
		}
		out[v] = p
	}
	return out
}

func TestC17ExhaustiveCoverage(t *testing.T) {
	// c17 is fully testable: every collapsed stuck-at fault is detected by
	// the exhaustive 32-vector set.
	nl := netlist.C17()
	faults := fault.StuckAtUniverse(nl)
	res, err := Simulate(nl, faults, exhaustivePatterns(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range faults {
		if res.DetectedAt[i] == 0 {
			t.Errorf("fault %v undetected by exhaustive set", f)
		}
	}
	if got := res.Coverage(32); got != 1 {
		t.Fatalf("T(32) = %g, want 1", got)
	}
	if res.Detected() != len(faults) {
		t.Fatal("Detected() mismatch")
	}
}

func TestKnownDetection(t *testing.T) {
	// Inverter chain a → n1 → y: n1 stuck-at-0 forces y = 1; detected by
	// any pattern with a = 1 (good y = 1 when a... NOT(NOT(a)) = a, so
	// n1/sa0 ⇒ y = 1, detected when a = 0? n1 = NOT(a); y = NOT(n1) = a.
	// n1 stuck 0 ⇒ y = 1 always ⇒ detected when a = 0.
	nl := netlist.New("inv2")
	a := nl.AddPI("a")
	n1 := nl.AddGate(netlist.Not, "n1", a)
	y := nl.AddGate(netlist.Not, "y", n1)
	nl.MarkPO(y)

	f := []fault.StuckAt{{Net: n1, Branch: -1, Value: 0}}
	res, err := Simulate(nl, f, []Pattern{{1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 2 {
		t.Fatalf("n1/sa0 detected at %d, want vector 2 (a=0)", res.DetectedAt[0])
	}
	// PI stem fault.
	f2 := []fault.StuckAt{{Net: a, Branch: -1, Value: 1}}
	res2, _ := Simulate(nl, f2, []Pattern{{1}, {0}})
	if res2.DetectedAt[0] != 2 {
		t.Fatalf("a/sa1 detected at %d, want 2", res2.DetectedAt[0])
	}
}

func TestBranchFaultIsLocal(t *testing.T) {
	// Net s fans out to two AND gates; a branch stuck-at-1 into gate g1
	// must affect only g1's output.
	nl := netlist.New("fan")
	s := nl.AddPI("s")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	y1 := nl.AddGate(netlist.And, "y1", s, a)
	y2 := nl.AddGate(netlist.And, "y2", s, b)
	nl.MarkPO(y1)
	nl.MarkPO(y2)

	f := []fault.StuckAt{{Net: s, Branch: 0, Value: 1}} // branch into gate 0 (y1)
	// Pattern s=0,a=1,b=1: good y1=0,y2=0; faulty y1=1,y2=0.
	res, err := Simulate(nl, f, []Pattern{{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 1 {
		t.Fatal("branch fault must be detected via y1")
	}
	// Same but observe only y2: branch fault into y1 is invisible.
	nl2 := netlist.New("fan2")
	s2 := nl2.AddPI("s")
	a2 := nl2.AddPI("a")
	b2 := nl2.AddPI("b")
	nl2.AddGate(netlist.And, "y1", s2, a2)
	z := nl2.AddGate(netlist.And, "y2", s2, b2)
	nl2.MarkPO(z)
	// y1 dangles; validation doesn't mind reads, only drivers — it drives
	// its own net. Branch fault into gate 0 cannot reach the PO.
	res2, err := Simulate(nl2, []fault.StuckAt{{Net: s2, Branch: 0, Value: 1}},
		[]Pattern{{0, 1, 1}, {1, 1, 1}, {0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.DetectedAt[0] != 0 {
		t.Fatal("branch fault into unobserved gate must stay undetected")
	}
}

func TestRedundantFaultUndetected(t *testing.T) {
	// y = OR(a, NOT(a)) is constant 1: the stem fault y/sa1 is redundant.
	nl := netlist.New("taut")
	a := nl.AddPI("a")
	na := nl.AddGate(netlist.Not, "na", a)
	y := nl.AddGate(netlist.Or, "y", a, na)
	nl.MarkPO(y)
	res, err := Simulate(nl, []fault.StuckAt{{Net: y, Branch: -1, Value: 1}},
		[]Pattern{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 0 {
		t.Fatal("redundant fault must stay undetected")
	}
}

func TestCoverageMonotone(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	pats := RandomPatterns(nl, 256, 1)
	res, err := Simulate(nl, faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for k := 0; k <= 256; k += 16 {
		c := res.Coverage(k)
		if c < prev {
			t.Fatalf("coverage not monotone at k=%d", k)
		}
		prev = c
	}
	if res.Coverage(256) < 0.75 {
		t.Fatalf("256 random vectors should reach ≥75%% on c432-class, got %.3f",
			res.Coverage(256))
	}
	if res.Coverage(0) != 0 {
		t.Fatal("T(0) must be 0")
	}
}

func TestSimulateAcrossBlockBoundaries(t *testing.T) {
	// Detection indices must be exact across the 64-pattern block boundary.
	nl := netlist.New("inv")
	a := nl.AddPI("a")
	y := nl.AddGate(netlist.Not, "y", a)
	nl.MarkPO(y)
	// a/sa1 detected only when a=0; make the first 70 patterns a=1, then
	// one a=0.
	pats := make([]Pattern, 71)
	for i := range pats {
		pats[i] = Pattern{1}
	}
	pats[70] = Pattern{0}
	res, err := Simulate(nl, []fault.StuckAt{{Net: a, Branch: -1, Value: 1}}, pats)
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 71 {
		t.Fatalf("detected at %d, want 71", res.DetectedAt[0])
	}
}

func TestSimulateRejectsBadPattern(t *testing.T) {
	nl := netlist.C17()
	if _, err := Simulate(nl, nil, []Pattern{{0, 1}}); err == nil {
		t.Fatal("short pattern must error")
	}
}

func TestRandomPatternsDeterministic(t *testing.T) {
	nl := netlist.C17()
	a := RandomPatterns(nl, 10, 42)
	b := RandomPatterns(nl, 10, 42)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("RandomPatterns must be deterministic")
			}
		}
	}
	c := RandomPatterns(nl, 10, 43)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
	d := RandomPatterns(nl, 5, 0)
	if len(d) != 5 {
		t.Fatal("zero seed must still work")
	}
}
