// Package yield provides IC yield models: the Poisson model underlying the
// paper's equation (5) and the Stapper negative-binomial model with defect
// clustering, plus fault-count statistics used by the Agrawal et al. defect
// level model (paper eq. 2).
package yield

import "math"

// Poisson returns the Poisson yield e^{−λ} for a total expected defect
// (fault) count λ = Σ A·D.
func Poisson(lambda float64) float64 { return math.Exp(-lambda) }

// PoissonLambda inverts Poisson: the expected defect count giving yield y.
func PoissonLambda(y float64) float64 {
	if y <= 0 || y > 1 {
		panic("yield: Poisson yield must be in (0,1]")
	}
	return -math.Log(y)
}

// NegBinomial returns Stapper's negative-binomial yield
// (1 + λ/α)^{−α} with clustering parameter α (α → ∞ recovers Poisson).
func NegBinomial(lambda, alpha float64) float64 {
	if alpha <= 0 {
		panic("yield: clustering parameter must be positive")
	}
	return math.Pow(1+lambda/alpha, -alpha)
}

// PoissonPMF returns P(N = k) for N ~ Poisson(λ).
func PoissonPMF(lambda float64, k int) float64 {
	if k < 0 {
		return 0
	}
	logp := -lambda + float64(k)*math.Log(lambda) - lgammaInt(k+1)
	return math.Exp(logp)
}

func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}

// MeanFaultsPerFaultyChip returns n̄ = λ / (1 − e^{−λ}): the average number
// of faults on a chip conditioned on the chip being faulty — the physical
// interpretation of the Agrawal model's n parameter under Poisson
// statistics.
func MeanFaultsPerFaultyChip(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	return lambda / (1 - math.Exp(-lambda))
}

// MeanFaultsPerFaultyChipFromYield is the same quantity expressed through
// the yield: n̄ = −ln(Y)/(1−Y).
func MeanFaultsPerFaultyChipFromYield(y float64) float64 {
	return MeanFaultsPerFaultyChip(PoissonLambda(y))
}
