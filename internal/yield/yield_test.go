package yield

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonRoundTrip(t *testing.T) {
	for _, y := range []float64{0.1, 0.5, 0.75, 0.99} {
		if got := Poisson(PoissonLambda(y)); math.Abs(got-y) > 1e-12 {
			t.Fatalf("round trip %g → %g", y, got)
		}
	}
	if Poisson(0) != 1 {
		t.Fatal("zero defects means perfect yield")
	}
}

func TestNegBinomialLimits(t *testing.T) {
	lambda := 0.3
	// α → ∞ recovers Poisson.
	if d := math.Abs(NegBinomial(lambda, 1e9) - Poisson(lambda)); d > 1e-6 {
		t.Fatalf("large-α NB must approach Poisson (Δ=%g)", d)
	}
	// Clustering (small α) raises yield at equal λ.
	if NegBinomial(lambda, 0.5) <= Poisson(lambda) {
		t.Fatal("clustered defects must improve yield")
	}
}

func TestPoissonPMF(t *testing.T) {
	lambda := 1.7
	var sum, mean float64
	for k := 0; k < 60; k++ {
		p := PoissonPMF(lambda, k)
		sum += p
		mean += float64(k) * p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %g", sum)
	}
	if math.Abs(mean-lambda) > 1e-9 {
		t.Fatalf("PMF mean %g, want %g", mean, lambda)
	}
	if PoissonPMF(lambda, -1) != 0 {
		t.Fatal("negative k")
	}
	if got, want := PoissonPMF(lambda, 0), math.Exp(-lambda); math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(0) = %g, want %g", got, want)
	}
}

func TestMeanFaultsPerFaultyChip(t *testing.T) {
	// Small λ: nearly every faulty chip has exactly one fault.
	if got := MeanFaultsPerFaultyChip(1e-6); math.Abs(got-1) > 1e-3 {
		t.Fatalf("n̄(λ→0) = %g, want →1", got)
	}
	// Large λ: n̄ → λ.
	if got := MeanFaultsPerFaultyChip(20); math.Abs(got-20) > 1e-6 {
		t.Fatalf("n̄(20) = %g", got)
	}
	// Consistency of the yield-based form.
	for _, y := range []float64{0.2, 0.75, 0.95} {
		a := MeanFaultsPerFaultyChipFromYield(y)
		b := MeanFaultsPerFaultyChip(PoissonLambda(y))
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("forms disagree at y=%g", y)
		}
		if a <= 1 {
			t.Fatalf("n̄ must exceed 1, got %g", a)
		}
	}
}

func TestYieldMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		l1 := float64(a) / 1000
		l2 := float64(b) / 1000
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		return Poisson(l1) >= Poisson(l2) && NegBinomial(l1, 2) >= NegBinomial(l2, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("lambda of 0", func() { PoissonLambda(0) })
	mustPanic("lambda of 1.5", func() { PoissonLambda(1.5) })
	mustPanic("NB alpha 0", func() { NegBinomial(1, 0) })
}
