package switchsim

import (
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/transistor"
)

// campaign runs the full extraction + fault simulation pipeline for nl.
func campaign(t testing.TB, nl *netlist.Netlist, nVec int, seed int64) (*fault.List, *Result, *transistor.Circuit) {
	t.Helper()
	L, err := layout.Build(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	list := extract.Faults(L, defect.Typical())
	c := transistor.FromLayout(L)
	vecs := randomVectors(len(nl.PIs), nVec, seed)
	res, err := SimulateFaults(c, list, vecs)
	if err != nil {
		t.Fatal(err)
	}
	return list, res, c
}

func TestFaultCampaignC17(t *testing.T) {
	list, res, _ := campaign(t, netlist.C17(), 64, 5)
	if len(res.DetectedAt) != len(list.Faults) {
		t.Fatal("result size mismatch")
	}
	var detBridge, totBridge, totOpen int
	var latBridge, nLatBridge, latInput, nLatInput float64
	for i, f := range list.Faults {
		switch f.Kind {
		case fault.KindBridge:
			totBridge++
			if res.DetectedAt[i] > 0 {
				detBridge++
				latBridge += float64(res.DetectedAt[i])
				nLatBridge++
			}
		case fault.KindOpenInput:
			totOpen++
			if res.DetectedAt[i] > 0 {
				latInput += float64(res.DetectedAt[i])
				nLatInput++
			}
		default:
			totOpen++
		}
	}
	if totBridge == 0 || totOpen == 0 {
		t.Fatal("campaign needs both fault classes")
	}
	// Bridges must be well covered by 64 random vectors on c17.
	if frac := float64(detBridge) / float64(totBridge); frac < 0.5 {
		t.Fatalf("bridge detection fraction %.2f too low (%d/%d)", frac, detBridge, totBridge)
	}
	// Gate-input opens need two-pattern sequences: when detected at all,
	// their mean first-detection vector must lag the bridges' — the
	// susceptibility asymmetry behind the paper's R and Θmax.
	if nLatInput == 0 {
		t.Fatal("expected at least one detected input open")
	}
	if latInput/nLatInput <= latBridge/nLatBridge {
		t.Fatalf("input opens (mean detection %.1f) must lag bridges (%.1f)",
			latInput/nLatInput, latBridge/nLatBridge)
	}
}

func TestDetectionMonotoneAndBounded(t *testing.T) {
	list, res, _ := campaign(t, netlist.C17(), 32, 6)
	for i := range list.Faults {
		if res.DetectedAt[i] < 0 || res.DetectedAt[i] > 32 {
			t.Fatalf("DetectedAt out of range: %d", res.DetectedAt[i])
		}
		if res.IDDQAt[i] < 0 || res.IDDQAt[i] > 32 {
			t.Fatalf("IDDQAt out of range: %d", res.IDDQAt[i])
		}
		if list.Faults[i].Kind != fault.KindBridge && res.IDDQAt[i] != 0 {
			t.Fatal("IDDQ detections apply to bridges only")
		}
	}
	det16 := res.DetectedBy(16, false)
	det32 := res.DetectedBy(32, false)
	for i := range det16 {
		if det16[i] && !det32[i] {
			t.Fatal("detection must be monotone in k")
		}
	}
}

func TestIDDQDominatesVoltageForBridges(t *testing.T) {
	// Every voltage-detected bridge requires opposite driven values at the
	// bridge, so IDDQ must detect it no later.
	list, res, _ := campaign(t, netlist.C17(), 64, 7)
	for i, f := range list.Faults {
		if f.Kind != fault.KindBridge || res.DetectedAt[i] == 0 {
			continue
		}
		if res.IDDQAt[i] == 0 || res.IDDQAt[i] > res.DetectedAt[i] {
			t.Fatalf("bridge %v: voltage at %d but IDDQ at %d", f, res.DetectedAt[i], res.IDDQAt[i])
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	_, r1, _ := campaign(t, netlist.C17(), 32, 9)
	_, r2, _ := campaign(t, netlist.C17(), 32, 9)
	for i := range r1.DetectedAt {
		if r1.DetectedAt[i] != r2.DetectedAt[i] || r1.IDDQAt[i] != r2.IDDQAt[i] {
			t.Fatalf("nondeterministic campaign at fault %d", i)
		}
	}
}

func TestWeightedCoverageOrdering(t *testing.T) {
	// On a mid-size circuit with bridging-dominant statistics the paper's
	// fig. 4 ordering must emerge: Γ (unweighted) > Θ (weighted) is not
	// guaranteed pointwise, but Θ must stay below Γ when opens (which are
	// individually light but numerous) are the undetected mass... The
	// robust invariant from the paper's setup: Θ > 0 after enough vectors
	// and Θ < 1 (voltage testing cannot cover everything).
	list, res, _ := campaign(t, netlist.RippleAdder(4), 128, 10)
	det := res.DetectedBy(128, false)
	theta := list.WeightedCoverage(det)
	gamma := list.UnweightedCoverage(det)
	if theta <= 0.3 {
		t.Fatalf("Θ = %.3f unreasonably low after 128 vectors", theta)
	}
	if theta >= 1 || gamma >= 1 {
		t.Fatalf("static voltage testing must leave residual faults: Θ=%.3f Γ=%.3f", theta, gamma)
	}
	iddqDet := res.DetectedBy(128, true)
	if list.WeightedCoverage(iddqDet) < theta {
		t.Fatal("adding IDDQ cannot lower coverage")
	}
}
