//go:build !race

package switchsim

const raceEnabled = false
