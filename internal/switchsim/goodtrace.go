package switchsim

import (
	"context"
	"errors"
	"fmt"

	"defectsim/internal/obs"
	"defectsim/internal/transistor"
)

// GoodTrace is the fault-free machine's recorded trajectory over a vector
// sequence: the settled node values before and after every vector, plus
// the unsettled cutoff if the machine ever failed to settle. The good
// machine is campaign-invariant — every realistic-fault coverage figure is
// computed against the same fault-free reference — so one captured trace
// can be shared read-only across any number of fault campaigns on the same
// circuit and vectors (SimulateFaultsTrace), eliminating the redundant
// good-machine pass each campaign used to run.
//
// A trace is immutable after capture; concurrent campaigns may read it
// freely. It is only valid for the circuit it was captured on and for
// vector sequences that extend its own (validated up front — a skew is a
// loud error, never a mid-campaign panic).
type GoodTrace struct {
	// Vectors is the input sequence the trace was captured over.
	Vectors []Vector
	// States[k] is the machine state before vector k (States[0] is the
	// reset state: all X except the rails); States[k+1] is the settled
	// state after vector k. len(States) stops short of len(Vectors)+1
	// when capture ended early (cancellation or an unsettled vector).
	States [][]Val
	// UnsettledAt is the 1-based vector index at which the fault-free
	// machine failed to settle (0 = never). Like Result.GoodUnsettledAt,
	// the trace is untrustworthy from that vector on: replaying campaigns
	// stop there exactly as an untraced campaign would.
	UnsettledAt int
}

// Applied returns how many vectors the trace holds settled states for.
func (tr *GoodTrace) Applied() int {
	if tr == nil || len(tr.States) == 0 {
		return 0
	}
	return len(tr.States) - 1
}

// Complete reports whether capture ran to its natural end: either every
// vector settled, or the fault-free machine failed to settle and the
// cutoff is recorded (which an untraced campaign reproduces bit-for-bit).
// A trace cut short by cancellation is incomplete and not reusable.
func (tr *GoodTrace) Complete() bool {
	if tr == nil || len(tr.States) == 0 {
		return false
	}
	if tr.UnsettledAt > 0 {
		return len(tr.States) == tr.UnsettledAt
	}
	return len(tr.States) == len(tr.Vectors)+1
}

// Bytes returns the memory footprint of the recorded states (one byte per
// net per state) — the value of the swsim_goodtrace_bytes gauge.
func (tr *GoodTrace) Bytes() int {
	if tr == nil {
		return 0
	}
	n := 0
	for _, st := range tr.States {
		n += len(st)
	}
	return n
}

// validateFor checks that the trace can stand in for the good machine of
// a campaign over vectors on circuit c: the trace is complete, its states
// are sized for c, and its vector sequence agrees with the campaign's on
// their common prefix. Campaigns longer than the trace are allowed — the
// simulator seeds a live machine from the last recorded state and
// continues (the top-up studies append extra vectors to the shared set).
func (tr *GoodTrace) validateFor(c *transistor.Circuit, vectors []Vector) error {
	if tr == nil || len(tr.States) == 0 {
		return errors.New("switchsim: good trace is nil or empty")
	}
	if !tr.Complete() {
		return fmt.Errorf("switchsim: good trace is incomplete: %d/%d vectors captured", tr.Applied(), len(tr.Vectors))
	}
	for k, st := range tr.States {
		if len(st) != c.NumNets {
			return fmt.Errorf("switchsim: good trace state %d spans %d nets, circuit %s has %d (trace captured on a different circuit?)", k, len(st), c.Name, c.NumNets)
		}
	}
	n := min(len(tr.Vectors), len(vectors))
	for k := 0; k < n; k++ {
		if len(vectors[k]) != len(tr.Vectors[k]) {
			return fmt.Errorf("switchsim: campaign vector %d has %d bits, good trace was captured with %d", k, len(vectors[k]), len(tr.Vectors[k]))
		}
		for j := range vectors[k] {
			if vectors[k][j] != tr.Vectors[k][j] {
				return fmt.Errorf("switchsim: campaign vectors diverge from the good trace at vector %d", k)
			}
		}
	}
	return nil
}

// CaptureGoodTrace records the fault-free machine's trajectory over the
// vector sequence. See CaptureGoodTraceCtx.
func CaptureGoodTrace(c *transistor.Circuit, vectors []Vector) *GoodTrace {
	tr, _ := CaptureGoodTraceCtx(context.Background(), c, vectors, nil)
	return tr
}

// CaptureGoodTraceCtx records the fault-free machine's trajectory over the
// vector sequence, polling ctx once per vector. A cancelled capture
// returns the partial (incomplete, not reusable) trace together with the
// context's error. An unsettled fault-free vector is not an error: the
// cutoff lands in GoodTrace.UnsettledAt and the trace stays complete —
// campaigns replaying it stop there, exactly like untraced ones. The
// capture counts as a swsim_goodtrace_misses event and the trace's
// footprint lands in the swsim_goodtrace_bytes gauge.
func CaptureGoodTraceCtx(ctx context.Context, c *transistor.Circuit, vectors []Vector, reg *obs.Registry) (*GoodTrace, error) {
	good := NewMachine(c)
	tr := &GoodTrace{Vectors: vectors, States: make([][]Val, 1, len(vectors)+1)}
	tr.States[0] = append([]Val(nil), good.val...)
	reg.Counter("swsim_goodtrace_misses").Inc()
	for k, vec := range vectors {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		if !good.Apply(vec) {
			tr.UnsettledAt = k + 1
			break
		}
		tr.States = append(tr.States, append([]Val(nil), good.val...))
	}
	reg.Gauge("swsim_goodtrace_bytes").Set(float64(tr.Bytes()))
	return tr, nil
}
