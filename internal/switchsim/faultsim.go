package switchsim

import (
	"context"
	"sync"

	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/layout"
	"defectsim/internal/obs"
	"defectsim/internal/par"
	"defectsim/internal/transistor"
)

// Verdict classifies a fault at plan time. Faults with a trivial verdict
// need no simulation:
//
//   - a GND–VDD bridge is a gross power short, detected by the very first
//     vector (verdict detected);
//   - bridges between ideally driven nets only (PI–PI, PI–rail) never
//     change a logic value under the strength model (the pad always wins)
//     and are voltage-undetectable (verdict undetectable).
type Verdict uint8

// Verdicts for faults that need no simulation.
const (
	VerdictSimulate Verdict = iota
	VerdictDetected
	VerdictUndetectable
)

// NewFaultMachine builds the faulty machine for f, or returns a nil machine
// and a trivial verdict.
func NewFaultMachine(c *transistor.Circuit, f fault.Realistic) (*Machine, Verdict) {
	return NewResistiveFaultMachine(c, f, BridgeG)
}

// NewResistiveFaultMachine is NewFaultMachine with an explicit bridge
// conductance: hard shorts use BridgeG, while resistive bridges (the
// Renovell-style model) use conductances comparable to — or below — the
// gate drive strengths, where a bridge may no longer overpower the weaker
// driver and quietly escapes voltage testing.
func NewResistiveFaultMachine(c *transistor.Circuit, f fault.Realistic, bridgeG float64) (*Machine, Verdict) {
	plan, v := planFault(c, f)
	if v != VerdictSimulate {
		return nil, v
	}
	m := NewMachine(c)
	m.install(plan, bridgeG)
	return m, v
}

// planFault builds the immutable switch-level model of f: which devices
// disappear, which bridge edges appear, which nets float or pin, and which
// CCCs host the fault hardware. The plan is circuit-shaped but
// conductance-independent, so one plan serves every resistive sweep point,
// and installing it on a machine is O(1).
func planFault(c *transistor.Circuit, f fault.Realistic) (*faultPlan, Verdict) {
	isPI := func(n int) bool {
		for _, pi := range c.PIs {
			if pi == n {
				return true
			}
		}
		return false
	}
	isRail := func(n int) bool { return n == layout.NetGND || n == layout.NetVDD }
	ideal := func(n int) bool { return isRail(n) || isPI(n) }

	p := &faultPlan{}
	addSeed := func(id int) {
		if id < 0 {
			return
		}
		for _, s := range p.seedCCCs {
			if s == id {
				return
			}
		}
		p.seedCCCs = append(p.seedCCCs, id)
	}

	switch f.Kind {
	case fault.KindBridge:
		a, b := f.NetA, f.NetB
		if ideal(a) && ideal(b) {
			// Power short, pad-to-pad short, or pad-to-rail short: these
			// never change a functional logic value (the ideal driver wins)
			// but production test catches them before functional vectors —
			// rail-rail kills the supply, and pad shorts fail the standard
			// DC continuity/shorts and input-leakage screens.
			return nil, VerdictDetected
		}
		br := [2]int{a, b}
		p.bridges = append(p.bridges, br)
		addExtra := func(key int) {
			for i := range p.extraOf {
				if p.extraOf[i].key == key {
					p.extraOf[i].brs = append(p.extraOf[i].brs, br)
					return
				}
			}
			p.extraOf = append(p.extraOf, extraBridges{key: key, brs: [][2]int{br}})
		}
		for _, n := range br {
			if id := c.CCCOf[n]; id >= 0 {
				addExtra(id)
				addSeed(id)
			} else {
				addExtra(-1 - n)
				p.hasExtraPI = true
			}
		}
		if len(p.seedCCCs) == 0 {
			// Both endpoints outside CCCs but not ideal: nothing to solve.
			return nil, VerdictUndetectable
		}
	case fault.KindOpenInput:
		for di, d := range c.Devices {
			if d.Inst == f.Inst && d.Node == f.Node {
				if p.removedDev == nil {
					p.removedDev = map[int]bool{}
				}
				p.removedDev[di] = true
				addSeed(c.CCCOf[d.Source])
				addSeed(c.CCCOf[d.Drain])
			}
		}
		if len(p.removedDev) == 0 {
			return nil, VerdictUndetectable
		}
	case fault.KindOpenDriver:
		// A severed interconnect trunk leaves every receiver floating;
		// junction leakage pulls the dangling wire to a stuck level (we
		// model stuck-0, the usual n-well process assumption), so trunk
		// opens behave like stuck-at faults on the whole net — the classic
		// reason stuck-at test sets cover most interconnect opens, while
		// gate-level (input-branch) opens need two-pattern sequences.
		net := f.NetA
		for di, d := range c.Devices {
			if d.Source == net || d.Drain == net {
				if p.removedDev == nil {
					p.removedDev = map[int]bool{}
				}
				p.removedDev[di] = true
				addSeed(c.CCCOf[d.Source])
				addSeed(c.CCCOf[d.Drain])
			}
		}
		if isPI(net) {
			p.deadPI = append(p.deadPI, net)
		}
		p.forced = append(p.forced, forcedNet{net: net, v: V0})
		if id := c.CCCOf[net]; id >= 0 {
			addSeed(id)
		}
		if len(c.Readers[net]) == 0 && len(p.removedDev) == 0 {
			// Net neither gates nor channels anything: no logic effect.
			return nil, VerdictUndetectable
		}
	default:
		return nil, VerdictUndetectable
	}
	return p, VerdictSimulate
}

// Result holds the outcome of a realistic-fault simulation campaign.
type Result struct {
	// DetectedAt[i] is the 1-based index of the first vector whose static
	// voltage observation detects fault i (0 = never detected).
	DetectedAt []int
	// IDDQAt[i] is the first vector at which a quiescent-current (IDDQ)
	// measurement would detect fault i (bridges only; 0 otherwise).
	IDDQAt []int
	// Oscillations counts vectors abandoned because a feedback bridge kept
	// the machine from settling.
	Oscillations int
	// Undecided[i] marks faults the campaign gave up on before a
	// detection: persistent oscillation (the machine repeatedly failed to
	// settle) or an early stop (cancellation, budget expiry, unsettled
	// good machine). Their DetectedAt stays 0; conservatively they count
	// as undetected in every coverage figure.
	Undecided []bool
	// VectorsApplied is how many vectors were actually simulated; it is
	// below len(vectors) when the campaign stopped early.
	VectorsApplied int
	// GoodUnsettledAt is the 1-based vector index at which the fault-free
	// machine failed to settle (0 = never). Simulation stops there — the
	// good trace is untrustworthy beyond it — and every still-live fault
	// becomes Undecided.
	GoodUnsettledAt int
}

// DetectedBy returns the detection flags after the first k vectors under
// voltage testing (optionally OR-ing in IDDQ detections).
//
// k is clamped to VectorsApplied: an early-stopped campaign simulated only
// VectorsApplied vectors, so querying coverage at a k beyond the stop
// point reports the flags as of the stop — vectors that were never
// simulated can neither credit nor discredit a fault. (A Result whose
// VectorsApplied is zero is queried unclamped: faults with trivial
// verdicts are detected before any vector is applied, and hand-built
// Results that never ran the vector loop keep their historical meaning.)
func (r *Result) DetectedBy(k int, iddq bool) []bool {
	if r.VectorsApplied > 0 && k > r.VectorsApplied {
		k = r.VectorsApplied
	}
	out := make([]bool, len(r.DetectedAt))
	for i, d := range r.DetectedAt {
		if d > 0 && d <= k {
			out[i] = true
		}
		if iddq && r.IDDQAt[i] > 0 && r.IDDQAt[i] <= k {
			out[i] = true
		}
	}
	return out
}

// SimulateFaults runs the fault list against the vector sequence on circuit
// c with the default worker policy (workers = 0: runtime.NumCPU() via the
// shared internal/par normalization). See SimulateFaultsN.
func SimulateFaults(c *transistor.Circuit, list *fault.List, vectors []Vector) (*Result, error) {
	return SimulateFaultsN(c, list, vectors, 0)
}

// SimulateFaultsN runs the fault list against the vector sequence on
// circuit c. Detection is static voltage observation at the primary
// outputs: a fault is detected by vector k when some PO is definite (0/1)
// in both the good and faulty machine and the values differ — X outputs
// never detect (the paper's "steady-state voltage measurement" pessimism).
// Detected faults are dropped; the good/faulty state-sharing fast path
// keeps undetected faults cheap while they shadow the good machine.
//
// workers sets the number of goroutines advancing fault machines (≤ 0
// selects runtime.NumCPU() via the shared internal/par policy). Fault
// machines are independent given the good trace, so the result is
// identical for any worker count.
func SimulateFaultsN(c *transistor.Circuit, list *fault.List, vectors []Vector, workers int) (*Result, error) {
	return SimulateFaultsR(c, list, vectors, workers, BridgeG)
}

// SimulateFaultsR is SimulateFaultsN with an explicit bridge conductance
// for resistive-bridge studies.
func SimulateFaultsR(c *transistor.Circuit, list *fault.List, vectors []Vector, workers int, bridgeG float64) (*Result, error) {
	return SimulateFaultsObs(c, list, vectors, workers, bridgeG, nil)
}

// SimulateFaultsObs is SimulateFaultsR with metrics: machine advances,
// shared-state fast-path hits, oscillation aborts and detection indices
// land in reg. Workers accumulate privately and flush once per vector, so
// the nil-registry path adds no work or allocation to the inner loop.
func SimulateFaultsObs(c *transistor.Circuit, list *fault.List, vectors []Vector, workers int, bridgeG float64, reg *obs.Registry) (*Result, error) {
	return SimulateFaultsCtx(context.Background(), c, list, vectors, workers, bridgeG, reg)
}

// oscStrikeLimit is how many unsettled vectors a fault machine tolerates
// before the fault is declared undecided and dropped: a feedback bridge
// that oscillates this persistently will not produce a trustworthy static
// observation, and repeatedly re-relaxing it wastes the whole budget.
const oscStrikeLimit = 3

// SimulateFaultsCtx is SimulateFaultsObs with cancellation and graceful
// degradation: the context is checked once per vector, so a cancelled or
// expired context stops the campaign promptly, returning the partial
// result (detections so far, remaining live faults marked Undecided,
// VectorsApplied recording where it stopped) together with the context's
// error. A fault-free machine that fails to settle no longer aborts the
// run: simulation stops at that vector, the event lands in
// Result.GoodUnsettledAt, and live faults become Undecided.
func SimulateFaultsCtx(ctx context.Context, c *transistor.Circuit, list *fault.List, vectors []Vector, workers int, bridgeG float64, reg *obs.Registry) (*Result, error) {
	res, _, err := simulateFaults(ctx, c, list, vectors, workers, bridgeG, reg, nil, false)
	return res, err
}

// SimulateFaultsTrace is SimulateFaultsCtx reading the fault-free
// machine's per-vector values from a precomputed GoodTrace instead of
// stepping its own good machine — the per-vector IDDQ bridge screen and
// the ApplyFromGood shared-state fast path read straight from the cached
// state slices. Results are bitwise identical to the untraced variants for
// any worker count, including partial results under cancellation: the
// trace replays exactly the values a live good machine would produce,
// and a recorded unsettled cutoff (GoodTrace.UnsettledAt) stops the
// campaign at the same vector an untraced run would stop at.
//
// The trace must have been captured on the same circuit over a vector
// sequence that agrees with vectors on their common prefix (a skew
// returns a descriptive error before any simulation). Campaigns longer
// than the trace continue on a live machine seeded from the last recorded
// state. The trace is read shared and never written, so any number of
// concurrent campaigns may use one trace. Each traced campaign counts one
// swsim_goodtrace_hits event.
func SimulateFaultsTrace(ctx context.Context, c *transistor.Circuit, list *fault.List, vectors []Vector, workers int, bridgeG float64, reg *obs.Registry, trace *GoodTrace) (*Result, error) {
	if err := trace.validateFor(c, vectors); err != nil {
		return nil, err
	}
	reg.Counter("swsim_goodtrace_hits").Inc()
	res, _, err := simulateFaults(ctx, c, list, vectors, workers, bridgeG, reg, trace, false)
	return res, err
}

// SimulateFaultsCapture is SimulateFaultsCtx additionally recording the
// fault-free machine's trajectory as a GoodTrace while the campaign runs —
// the good machine is stepped anyway, so capture costs only the state
// copies. The returned trace is complete (reusable via
// SimulateFaultsTrace) unless the campaign was cancelled mid-run; check
// GoodTrace.Complete before sharing it. A capture counts one
// swsim_goodtrace_misses event — the campaign needed a good trace and had
// none — and records the trace footprint in swsim_goodtrace_bytes.
func SimulateFaultsCapture(ctx context.Context, c *transistor.Circuit, list *fault.List, vectors []Vector, workers int, bridgeG float64, reg *obs.Registry) (*Result, *GoodTrace, error) {
	return simulateFaults(ctx, c, list, vectors, workers, bridgeG, reg, nil, true)
}

// live is one not-yet-resolved fault in the campaign loop. While the fault
// has never diverged from the good machine (m == nil, clean == true) it
// owns no state at all: the worker advances it on its pooled machine and
// releases the machine immediately. The first divergence (or failed
// settle) promotes the pooled machine into a dedicated one, preserving the
// fault's private node state across vectors.
type live struct {
	idx     int
	plan    *faultPlan
	m       *Machine // nil while the fault still shadows the good machine
	clean   bool
	strikes int // unsettled vectors so far; oscStrikeLimit → undecided
}

// simulateFaults is the shared campaign loop behind every SimulateFaults*
// variant. With trace set, good-machine values come from the recorded
// states (live stepping resumes past the trace's end); with capture set
// (mutually exclusive with trace), the stepped states are recorded into
// the returned GoodTrace.
func simulateFaults(ctx context.Context, c *transistor.Circuit, list *fault.List, vectors []Vector, workers int, bridgeG float64, reg *obs.Registry, trace *GoodTrace, capture bool) (*Result, *GoodTrace, error) {
	res := &Result{
		DetectedAt: make([]int, len(list.Faults)),
		IDDQAt:     make([]int, len(list.Faults)),
		Undecided:  make([]bool, len(list.Faults)),
	}
	var (
		mSteps    = reg.Counter("swsim_machine_steps")
		mFastPath = reg.Counter("swsim_fastpath_steps")
		mDetected = reg.Counter("swsim_faults_detected")
		mTrivial  = reg.Counter("swsim_trivial_verdicts")
		mVectors  = reg.Counter("swsim_vectors_applied")
		hDetectAt *obs.Histogram
	)
	if reg != nil {
		hDetectAt = reg.Histogram("swsim_vectors_to_detect", obs.ExpBuckets(1, 2, 10))
	}
	var lives []*live
	for i, f := range list.Faults {
		plan, v := planFault(c, f)
		switch v {
		case VerdictDetected:
			res.DetectedAt[i] = 1
			mTrivial.Inc()
			if f.Kind == fault.KindBridge {
				res.IDDQAt[i] = 1
			}
		case VerdictSimulate:
			// A never-advanced fault's state (all X) matches the good
			// machine's pre-state, so the cheap shared-state path applies
			// from the very first vector — no machine needed until the
			// fault first diverges.
			lives = append(lives, &live{idx: i, plan: plan, clean: true})
		}
	}

	workers = par.Workers(workers)
	if reg != nil {
		reg.Gauge("swsim_workers").Set(float64(workers))
	}

	// Fault-free reference: a live machine when no trace is given, the
	// recorded states otherwise (a live machine is still created past the
	// trace's end, seeded from its last state).
	var (
		good        *Machine
		goodPrevBuf []Val
		capTrace    *GoodTrace
	)
	startLive := func() {
		good = NewMachine(c)
		if trace != nil {
			copy(good.val, trace.States[len(trace.States)-1])
		}
		goodPrevBuf = make([]Val, len(good.val))
	}
	if trace == nil {
		startLive()
	}
	if capture {
		capTrace = &GoodTrace{Vectors: vectors, States: make([][]Val, 1, len(vectors)+1)}
		capTrace.States[0] = append([]Val(nil), good.val...)
		reg.Counter("swsim_goodtrace_misses").Inc()
	}
	// One pooled machine per worker, created lazily and reinstalled per
	// clean fault; promoted (handed over) to a live the moment that fault
	// diverges. Steady-state machine count = workers + dirty faults,
	// instead of one machine per fault.
	pool := make([]*Machine, workers)
	oscillations := make([]int64, workers)
	// finalize folds the per-worker oscillation counts and flushes the
	// campaign-level metrics once the vector loop is done (normally or on
	// an early stop after k vectors).
	finalize := func(k int) {
		res.VectorsApplied = k
		for _, o := range oscillations {
			res.Oscillations += int(o)
		}
		if reg != nil {
			undecided := int64(0)
			for _, u := range res.Undecided {
				if u {
					undecided++
				}
			}
			reg.Counter("swsim_oscillations").Add(int64(res.Oscillations))
			reg.Counter("swsim_faults_undecided").Add(undecided)
		}
	}
	// stop ends the campaign early after k applied vectors: faults still
	// alive have seen only part of the evidence, so they are undecided
	// rather than undetected.
	stop := func(k int) *Result {
		for _, lv := range lives {
			res.Undecided[lv.idx] = true
		}
		lives = nil
		finalize(k)
		return res
	}
	drop := make([]bool, len(lives))
	for k, vec := range vectors {
		if err := faultinject.Fire(ctx, faultinject.HookSwitchSimVector); err != nil {
			return stop(k), capTrace, err
		}
		if err := ctx.Err(); err != nil {
			return stop(k), capTrace, err
		}
		var goodVal, goodPrev []Val
		switch {
		case trace != nil && k+1 < len(trace.States):
			goodPrev, goodVal = trace.States[k], trace.States[k+1]
		case trace != nil && trace.UnsettledAt == k+1:
			// The trace records that the fault-free machine failed to settle
			// here; stop exactly where an untraced campaign would.
			res.GoodUnsettledAt = k + 1
			reg.Counter("swsim_good_unsettled").Inc()
			return stop(k), capTrace, nil
		default:
			if good == nil {
				// First vector past the trace's end: continue live from the
				// last recorded state (a settled fixpoint, so incremental
				// event propagation from the changed PIs stays exact).
				startLive()
			}
			copy(goodPrevBuf, good.val)
			if !good.Apply(vec) {
				// The fault-free machine's trace is untrustworthy from here
				// on; degrade instead of failing the whole campaign.
				res.GoodUnsettledAt = k + 1
				reg.Counter("swsim_good_unsettled").Inc()
				if capture {
					capTrace.UnsettledAt = k + 1
					reg.Gauge("swsim_goodtrace_bytes").Set(float64(capTrace.Bytes()))
				}
				return stop(k), capTrace, nil
			}
			goodPrev, goodVal = goodPrevBuf, good.val
		}
		if capture {
			capTrace.States = append(capTrace.States, append([]Val(nil), goodVal...))
		}

		// IDDQ screening of bridges (needs only good values): quiescent
		// current flows when the bridged nodes are driven to opposite
		// definite values.
		for i, f := range list.Faults {
			if f.Kind != fault.KindBridge || res.IDDQAt[i] != 0 {
				continue
			}
			va, vb := goodVal[f.NetA], goodVal[f.NetB]
			if va != VX && vb != VX && va != vb {
				res.IDDQAt[i] = k + 1
			}
		}

		// Advance every live fault; each fault touches only its own state
		// (or the worker's pooled machine), so the work shards freely.
		mVectors.Inc()
		drop = drop[:len(lives)]
		clear(drop)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var steps, fast int64
				pm := pool[w]
				// pmGood tracks whether pm.val equals this vector's goodVal
				// elementwise: after a pooled fault stays clean it does, and
				// the next clean fault's applyFromGood can skip the full-state
				// copy — the pooled fast path touches only fault-local nets.
				pmGood := false
				for li := w; li < len(lives); li += workers {
					lv := lives[li]
					steps++
					mm := lv.m
					usingPool := false
					if mm == nil {
						// Clean, never-diverged fault: borrow the worker's
						// pooled machine. applyFromGood overwrites (or asserts)
						// the full state, so the outcome is identical to a
						// dedicated machine's.
						if pm == nil {
							pm = NewMachine(c)
						}
						pm.install(lv.plan, bridgeG)
						mm = pm
						usingPool = true
					}
					var ok bool
					wasClean := lv.clean
					if wasClean {
						fast++
						ok = mm.applyFromGood(goodVal, goodPrev, usingPool && pmGood)
					} else {
						ok = mm.Apply(vec)
					}
					if !ok {
						oscillations[w]++
						lv.strikes++
						lv.clean = false
						if usingPool {
							// The partially-relaxed state is the fault's
							// history now; the pooled machine becomes its
							// dedicated one.
							lv.m, pm, pmGood = pm, nil, false
						}
						continue
					}
					detected := false
					for _, po := range c.POs {
						gv, fv := goodVal[po], mm.val[po]
						if gv != VX && fv != VX && gv != fv {
							detected = true
							break
						}
					}
					if detected {
						res.DetectedAt[lv.idx] = k + 1
						drop[li] = true
						if usingPool {
							// The dropped fault's divergent state stays in the
							// pool; the next borrower must copy the good state.
							pmGood = false
						}
						continue
					}
					if wasClean {
						// The apply started from the good state, so only the
						// nets it touched can differ — no full-circuit scan.
						lv.clean = mm.cleanAgainst(goodVal)
					} else {
						lv.clean = equalVals(mm.val, goodVal)
					}
					if usingPool {
						if lv.clean {
							pmGood = true
						} else {
							// First divergence: promote the pooled machine so
							// the fault's private state persists across vectors.
							lv.m, pm, pmGood = pm, nil, false
						}
					}
				}
				pool[w] = pm
				mSteps.Add(steps)
				mFastPath.Add(fast)
			}(w)
		}
		wg.Wait()
		keep := lives[:0]
		for li, lv := range lives {
			switch {
			case drop[li]:
				mDetected.Inc()
				hDetectAt.Observe(float64(k + 1))
			case lv.strikes >= oscStrikeLimit:
				// Persistently oscillating machine: its static observations
				// will never be trustworthy — undecided, not undetected.
				res.Undecided[lv.idx] = true
			default:
				keep = append(keep, lv)
			}
		}
		lives = keep
	}
	finalize(len(vectors))
	if capture {
		reg.Gauge("swsim_goodtrace_bytes").Set(float64(capTrace.Bytes()))
	}
	return res, capTrace, nil
}

// equalVals reports whether a and b hold identical values. Slices of
// different lengths never compare equal: a good-trace/machine size skew
// then merely forfeits the shared-state fast path (the machine keeps
// advancing through the exact Apply path) instead of panicking mid-
// campaign — and the skew itself is rejected up front by
// GoodTrace.validateFor and the ApplyFromGood width check.
func equalVals(a, b []Val) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
