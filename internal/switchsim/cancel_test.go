package switchsim

import (
	"context"
	"errors"
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/extract"
	"defectsim/internal/faultinject"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/transistor"
)

// TestSimulateFaultsCtxCancelMidRun pins the partial-result contract: a
// context cancelled mid-campaign returns the detections recorded so far
// (with VectorsApplied < len(vectors) and the still-live faults marked
// undecided) together with the context's error.
func TestSimulateFaultsCtxCancelMidRun(t *testing.T) {
	nl := netlist.RippleAdder(4)
	L, err := layout.Build(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	list := extract.Faults(L, defect.Typical())
	c := transistor.FromLayout(L)
	vecs := randomVectors(len(nl.PIs), 64, 5)

	const stopAfter = 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	restore := faultinject.Set(faultinject.HookSwitchSimVector, func(context.Context) error {
		n++
		if n > stopAfter {
			cancel()
		}
		return nil
	})
	defer restore()

	res, err := SimulateFaultsCtx(ctx, c, list, vecs, 0, BridgeG, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled campaign returned no partial result")
	}
	if res.VectorsApplied != stopAfter {
		t.Fatalf("VectorsApplied = %d, want %d", res.VectorsApplied, stopAfter)
	}
	for i, d := range res.DetectedAt {
		if d > stopAfter {
			t.Fatalf("fault %d detected at vector %d, after the stop point", i, d)
		}
		if d > 0 && res.Undecided[i] {
			t.Fatalf("fault %d both detected and undecided", i)
		}
		if d == 0 && !res.Undecided[i] {
			t.Fatalf("fault %d neither detected nor undecided after early stop", i)
		}
	}

	// The partial prefix must agree with an uncancelled run.
	full, err := SimulateFaults(c, list, vecs)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range full.DetectedAt {
		if d > 0 && d <= stopAfter && res.DetectedAt[i] != d {
			t.Fatalf("fault %d: partial run detected at %d, full run at %d", i, res.DetectedAt[i], d)
		}
	}
	if full.VectorsApplied != len(vecs) {
		t.Fatalf("full run applied %d/%d vectors", full.VectorsApplied, len(vecs))
	}
}
