package switchsim

import (
	"math/rand"
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/transistor"
)

func circuitFor(t testing.TB, nl *netlist.Netlist) (*layout.Layout, *transistor.Circuit) {
	t.Helper()
	L, err := layout.Build(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := transistor.FromLayout(L)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return L, c
}

func randomVectors(nPI, n int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([]Vector, n)
	for i := range vecs {
		v := make(Vector, nPI)
		for j := range v {
			v[j] = Val(rng.Intn(2))
		}
		vecs[i] = v
	}
	return vecs
}

// TestGoodSimMatchesGateLevel is the central cross-validation: the
// switch-level good machine must agree with gate-level logic evaluation on
// every benchmark circuit and random vectors.
func TestGoodSimMatchesGateLevel(t *testing.T) {
	circuits := []*netlist.Netlist{
		netlist.C17(),
		netlist.RippleAdder(4),
		netlist.MuxTree(2),
		netlist.ParityTree(5),
		netlist.Comparator(3),
		netlist.Decoder(2),
		netlist.C432Class(1994),
	}
	for _, nl := range circuits {
		_, c := circuitFor(t, nl)
		vecs := randomVectors(len(nl.PIs), 40, 11)
		got, err := Run(c, vecs)
		if err != nil {
			t.Fatalf("%s: %v", nl.Name, err)
		}
		for k, vec := range vecs {
			pis := make([]uint64, len(nl.PIs))
			for i, b := range vec {
				pis[i] = uint64(b)
			}
			vals, err := nl.Eval(pis)
			if err != nil {
				t.Fatal(err)
			}
			for o, po := range nl.POs {
				want := Val(vals[po] & 1)
				if got[k][o] != want {
					t.Fatalf("%s vector %d PO %d: switch-level %v, gate-level %v",
						nl.Name, k, o, got[k][o], want)
				}
			}
		}
	}
}

func TestValString(t *testing.T) {
	if V0.String() != "0" || V1.String() != "1" || VX.String() != "X" {
		t.Fatal("Val strings")
	}
}

func TestSeries(t *testing.T) {
	if g := series(6, 6); g != 3 {
		t.Fatalf("series(6,6) = %g", g)
	}
	if series(0, 5) != 0 || series(5, 0) != 0 {
		t.Fatal("zero conductance dominates")
	}
	if g := series(RailG, 8); g < 7.9 || g > 8 {
		t.Fatalf("series(rail,8) = %g", g)
	}
}

func TestApplyPanicsOnBadVector(t *testing.T) {
	_, c := circuitFor(t, netlist.C17())
	m := NewMachine(c)
	defer func() {
		if recover() == nil {
			t.Fatal("short vector must panic")
		}
	}()
	m.Apply(Vector{V0})
}

// invCircuit builds a two-inverter chain a -> n1 -> y and returns the
// layout, circuit and useful net ids.
func invChain(t *testing.T) (*layout.Layout, *transistor.Circuit, int, int) {
	nl := netlist.New("inv2")
	a := nl.AddPI("a")
	n1 := nl.AddGate(netlist.Not, "n1", a)
	y := nl.AddGate(netlist.Not, "y", n1)
	nl.MarkPO(y)
	L, c := circuitFor(t, nl)
	return L, c, 2 + n1, 2 + y
}

func TestBridgeToRailActsStuck(t *testing.T) {
	_, c, n1, _ := invChain(t)
	// Bridge the middle net to GND: y = NOT(0) = 1 always; with a = 0 the
	// good circuit has n1 = 1, y = 0 → detected.
	m, v := NewFaultMachine(c, fault.Realistic{
		Kind: fault.KindBridge, NetA: layout.NetGND, NetB: n1,
	})
	if v != VerdictSimulate || m == nil {
		t.Fatalf("verdict %v", v)
	}
	if !m.Apply(Vector{V0}) {
		t.Fatal("did not settle")
	}
	if got := m.Outputs()[0]; got != V1 {
		t.Fatalf("bridged-to-GND middle net: y = %v, want 1", got)
	}
	good := NewMachine(c)
	good.Apply(Vector{V0})
	if good.Outputs()[0] != V0 {
		t.Fatalf("good y = %v, want 0", good.Outputs()[0])
	}
}

func TestBridgeBetweenGateOutputsResolvesByStrength(t *testing.T) {
	// a --INV--> n1 ; c432-style strength battle: bridge n1 with the output
	// of a NAND2 whose pulldown is two 6λ devices in series (g = 3) versus
	// the INV pullup (g ≈ 8): when they fight, the stronger pullup wins.
	nl := netlist.New("fight")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	cNet := nl.AddPI("c")
	inv := nl.AddGate(netlist.Not, "inv", a)
	nand := nl.AddGate(netlist.Nand, "nand", b, cNet)
	y1 := nl.AddGate(netlist.Buf, "y1", inv)
	y2 := nl.AddGate(netlist.Buf, "y2", nand)
	nl.MarkPO(y1)
	nl.MarkPO(y2)
	_, c := circuitFor(t, nl)

	m, v := NewFaultMachine(c, fault.Realistic{
		Kind: fault.KindBridge, NetA: 2 + inv, NetB: 2 + nand,
	})
	if v != VerdictSimulate {
		t.Fatalf("verdict %v", v)
	}
	// a=0 → inv pulls 1 (PMOS g≈8); b=c=1 → nand pulls 0 (2×NMOS series
	// g=3). Pullup wins: both nets read 1.
	if !m.Apply(Vector{V0, V1, V1}) {
		t.Fatal("did not settle")
	}
	if got := m.Val(2 + nand); got != V1 {
		t.Fatalf("bridged nand output = %v, want 1 (overpowered)", got)
	}
	if got := m.Val(2 + inv); got != V1 {
		t.Fatalf("bridged inv output = %v, want 1", got)
	}
	// Non-activating input: both outputs 1 in the good circuit; faulty
	// machine must match the good one exactly.
	good := NewMachine(c)
	good.Apply(Vector{V0, V1, V0})
	m2, _ := NewFaultMachine(c, fault.Realistic{
		Kind: fault.KindBridge, NetA: 2 + inv, NetB: 2 + nand,
	})
	m2.Apply(Vector{V0, V1, V0})
	if !equalVals(m2.val, good.val) {
		t.Fatal("unactivated bridge must leave the circuit unchanged")
	}
}

func TestOpenInputStuckOpenNeedsTwoPatterns(t *testing.T) {
	// Classic stuck-open behaviour on an inverter chain: sever the second
	// inverter's input branch → both its transistors are off → y floats and
	// retains its previous value. A single vector cannot detect it; the
	// falling sequence 1→0 can.
	_, c, _, yNet := invChain(t)
	mk := func() *Machine {
		m, v := NewFaultMachine(c, fault.Realistic{
			Kind: fault.KindOpenInput, NetA: -1, Inst: 1, Node: 2, // inverter #1's input A
		})
		if v != VerdictSimulate {
			t.Fatalf("verdict %v", v)
		}
		return m
	}
	// Fresh machine: y floats at X on any first vector → undetected.
	m := mk()
	m.Apply(Vector{V0})
	if got := m.Val(yNet); got != VX {
		t.Fatalf("floating output on first vector = %v, want X", got)
	}
	// After the fault-free-looking history the retained value shows up.
	good := NewMachine(c)
	m2 := mk()
	for _, v := range []Val{V0, V1} {
		good.Apply(Vector{v})
		m2.Apply(Vector{v})
	}
	// good: a=1 → n1=0 → y=1... wait: a=1 ⇒ n1=0 ⇒ y=1? NOT(NOT(1)) = 1.
	if good.Outputs()[0] != V1 {
		t.Fatalf("good y = %v, want 1", good.Outputs()[0])
	}
	// Faulty: y stayed X from the start (never driven) — X forever under
	// this full-gate-open model.
	if got := m2.Val(yNet); got != VX {
		t.Fatalf("gate-open output = %v, want X (both networks off)", got)
	}
}

func TestOpenDriverActsStuckLow(t *testing.T) {
	// A severed trunk leaves the wire floating; leakage pins it low, so the
	// whole net behaves stuck-at-0 for its receivers.
	_, c, n1, yNet := invChain(t)
	m, v := NewFaultMachine(c, fault.Realistic{Kind: fault.KindOpenDriver, NetA: n1})
	if v != VerdictSimulate {
		t.Fatalf("verdict %v", v)
	}
	m.Apply(Vector{V0}) // good: n1 = 1, y = 0
	if got := m.Val(n1); got != V0 {
		t.Fatalf("severed net = %v, want stuck 0", got)
	}
	if got := m.Val(yNet); got != V1 {
		t.Fatalf("receiver of severed net = %v, want 1", got)
	}
}

func TestOpenDriverOnPI(t *testing.T) {
	_, c, n1, _ := invChain(t)
	piNet := c.PIs[0]
	m, v := NewFaultMachine(c, fault.Realistic{Kind: fault.KindOpenDriver, NetA: piNet})
	if v != VerdictSimulate {
		t.Fatalf("verdict %v", v)
	}
	m.Apply(Vector{V1})
	if got := m.Val(piNet); got != V0 {
		t.Fatalf("dead PI = %v, want stuck 0", got)
	}
	if got := m.Val(n1); got != V1 {
		t.Fatalf("first inverter output = %v, want 1", got)
	}
}

func TestTrivialVerdicts(t *testing.T) {
	_, c, _, _ := invChain(t)
	if _, v := NewFaultMachine(c, fault.Realistic{
		Kind: fault.KindBridge, NetA: layout.NetGND, NetB: layout.NetVDD,
	}); v != VerdictDetected {
		t.Fatalf("power short verdict = %v, want detected", v)
	}
	if _, v := NewFaultMachine(c, fault.Realistic{
		Kind: fault.KindBridge, NetA: layout.NetGND, NetB: c.PIs[0],
	}); v != VerdictDetected {
		t.Fatalf("PI-rail bridge verdict = %v, want detected (DC input-leakage screen)", v)
	}
	if _, v := NewFaultMachine(c, fault.Realistic{
		Kind: fault.KindOpenInput, NetA: -1, Inst: 99, Node: 99,
	}); v != VerdictUndetectable {
		t.Fatalf("no-device open verdict = %v", v)
	}
}
