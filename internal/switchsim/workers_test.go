package switchsim

import (
	"context"
	"runtime"
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/extract"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
	"defectsim/internal/transistor"
)

// TestWorkerNormalizationPolicy is the regression test for the repo-wide
// worker policy: switchsim used to map workers <= 0 to GOMAXPROCS while
// the rest of the tree used NumCPU. Every subsystem now normalizes through
// internal/par, and the chosen count is observable via the swsim_workers
// gauge.
func TestWorkerNormalizationPolicy(t *testing.T) {
	nl := netlist.C17()
	L, err := layout.Build(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	list := extract.Faults(L, defect.Typical())
	c := transistor.FromLayout(L)
	vecs := randomVectors(len(nl.PIs), 32, 11)

	want := map[int]float64{
		-3: float64(runtime.NumCPU()),
		0:  float64(runtime.NumCPU()),
		1:  1,
		5:  5,
	}
	var ref *Result
	for _, w := range []int{-3, 0, 1, 5} {
		reg := obs.NewRegistry()
		res, err := SimulateFaultsCtx(context.Background(), c, list, vecs, w, BridgeG, reg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got := reg.Gauge("swsim_workers").Value(); got != want[w] {
			t.Errorf("workers=%d normalized to %.0f, want %.0f", w, got, want[w])
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range ref.DetectedAt {
			if res.DetectedAt[i] != ref.DetectedAt[i] || res.IDDQAt[i] != ref.IDDQAt[i] {
				t.Fatalf("workers=%d: fault %d detection differs from reference", w, i)
			}
		}
	}
}
