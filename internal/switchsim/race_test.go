//go:build race

package switchsim

// raceEnabled gates testing.AllocsPerRun assertions: race instrumentation
// changes the allocation profile, so the zero-alloc contracts are pinned
// only in non-race runs (the plain `go test ./...` tier).
const raceEnabled = true
