package switchsim

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/netlist"
	"defectsim/internal/transistor"
)

// TestSettleSteadyStateZeroAllocs pins the scratch-arena contract behind
// the BENCH alloc gate: once a machine has seen its circuit's CCCs, the
// entire apply→settle path (event queue, group discovery, conductance
// relaxation) runs out of reused buffers — zero heap allocations per
// vector in steady state.
func TestSettleSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation profile differs under -race")
	}
	nl := netlist.RippleAdder(4)
	_, c := circuitFor(t, nl)
	m := NewMachine(c)
	vecs := randomVectors(len(nl.PIs), 8, 3)
	for _, v := range vecs {
		if !m.Apply(v) {
			t.Fatal("good machine failed to settle during warmup")
		}
	}
	// Alternate two differing vectors so every run propagates real events
	// instead of hitting the nothing-changed early-out.
	a, b := vecs[0], vecs[1]
	allocs := testing.AllocsPerRun(200, func() {
		m.Apply(a)
		m.Apply(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Apply allocates %v per op, want 0", allocs)
	}
}

// TestPooledFaultMachineResetZeroAllocs pins the other half of the
// contract: re-targeting one machine at a different fault (install a new
// plan, re-seed from the good state, settle) is allocation-free — the
// reset the per-worker pools in simulateFaults perform once per clean
// fault per vector.
func TestPooledFaultMachineResetZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation profile differs under -race")
	}
	nl := netlist.RippleAdder(4)
	list, c := buildCampaign(t, nl)
	var plans []*faultPlan
	for _, f := range list.Faults {
		if p, v := planFault(c, f); v == VerdictSimulate {
			plans = append(plans, p)
		}
		if len(plans) == 4 {
			break
		}
	}
	if len(plans) < 2 {
		t.Fatalf("only %d simulable faults extracted", len(plans))
	}

	good := NewMachine(c)
	vecs := randomVectors(len(nl.PIs), 2, 9)
	goodPrev := append([]Val(nil), good.val...)
	if !good.Apply(vecs[0]) {
		t.Fatal("good machine failed to settle")
	}

	m := NewMachine(c)
	warm := func() {
		for _, p := range plans {
			m.install(p, BridgeG)
			m.ApplyFromGood(good.val, goodPrev)
		}
	}
	warm()
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Fatalf("pooled install+ApplyFromGood allocates %v per cycle over %d plans, want 0",
			allocs, len(plans))
	}
}

// freshMachineCampaign is the reference the machine-pooling optimization
// is pinned against: a serial campaign giving every simulated fault its
// own dedicated machine from vector one — the pre-pooling engine,
// reimplemented plainly. stopAt > 0 ends the campaign after that many
// vectors the way a cancellation does: remaining live faults become
// undecided.
func freshMachineCampaign(c *transistor.Circuit, list *fault.List, vectors []Vector, stopAt int) *Result {
	res := &Result{
		DetectedAt: make([]int, len(list.Faults)),
		IDDQAt:     make([]int, len(list.Faults)),
		Undecided:  make([]bool, len(list.Faults)),
	}
	type ref struct {
		idx     int
		m       *Machine
		clean   bool
		strikes int
	}
	var lives []*ref
	for i, f := range list.Faults {
		plan, v := planFault(c, f)
		switch v {
		case VerdictDetected:
			res.DetectedAt[i] = 1
			if f.Kind == fault.KindBridge {
				res.IDDQAt[i] = 1
			}
		case VerdictSimulate:
			m := NewMachine(c)
			m.install(plan, BridgeG)
			lives = append(lives, &ref{idx: i, m: m, clean: true})
		}
	}
	good := NewMachine(c)
	goodPrev := make([]Val, len(good.val))
	k := 0
	for ; k < len(vectors); k++ {
		if stopAt > 0 && k == stopAt {
			break
		}
		vec := vectors[k]
		copy(goodPrev, good.val)
		if !good.Apply(vec) {
			res.GoodUnsettledAt = k + 1
			break
		}
		for i, f := range list.Faults {
			if f.Kind != fault.KindBridge || res.IDDQAt[i] != 0 {
				continue
			}
			va, vb := good.val[f.NetA], good.val[f.NetB]
			if va != VX && vb != VX && va != vb {
				res.IDDQAt[i] = k + 1
			}
		}
		keep := lives[:0]
		for _, lv := range lives {
			var ok bool
			if lv.clean {
				ok = lv.m.ApplyFromGood(good.val, goodPrev)
			} else {
				ok = lv.m.Apply(vec)
			}
			if !ok {
				res.Oscillations++
				lv.strikes++
				lv.clean = false
				if lv.strikes >= oscStrikeLimit {
					res.Undecided[lv.idx] = true
				} else {
					keep = append(keep, lv)
				}
				continue
			}
			detected := false
			for _, po := range c.POs {
				gv, fv := good.val[po], lv.m.val[po]
				if gv != VX && fv != VX && gv != fv {
					detected = true
					break
				}
			}
			if detected {
				res.DetectedAt[lv.idx] = k + 1
				continue
			}
			lv.clean = equalVals(lv.m.val, good.val)
			keep = append(keep, lv)
		}
		lives = keep
	}
	if k < len(vectors) {
		for _, lv := range lives {
			res.Undecided[lv.idx] = true
		}
	}
	res.VectorsApplied = k
	return res
}

// TestPooledReuseBitwiseIdenticalToFreshMachines is the property test the
// pooling rework must never break: for any worker count, traced or
// untraced, the pooled campaign's Result is bitwise identical to the
// fresh-machine reference. Run under -race by the tier-2 pass, it also
// exercises concurrent installs on the per-worker pools.
func TestPooledReuseBitwiseIdenticalToFreshMachines(t *testing.T) {
	for _, nl := range []*netlist.Netlist{netlist.C17(), netlist.RippleAdder(4), netlist.Comparator(3)} {
		list, c := buildCampaign(t, nl)
		vecs := randomVectors(len(nl.PIs), 48, 7)
		want := freshMachineCampaign(c, list, vecs, 0)
		trace := CaptureGoodTrace(c, vecs)
		for _, w := range []int{1, 4, runtime.NumCPU()} {
			res, err := SimulateFaultsCtx(context.Background(), c, list, vecs, w, BridgeG, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", nl.Name, w, err)
			}
			sameResult(t, nl.Name+" untraced", want, res)
			tres, err := SimulateFaultsTrace(context.Background(), c, list, vecs, w, BridgeG, nil, trace)
			if err != nil {
				t.Fatalf("%s workers=%d traced: %v", nl.Name, w, err)
			}
			sameResult(t, nl.Name+" traced", want, tres)
		}
	}
}

// TestPooledReuseCancelMatchesFreshMachines extends the property to
// mid-run cancellation: the partial result a cancelled pooled campaign
// returns equals the reference stopped at the same vector.
func TestPooledReuseCancelMatchesFreshMachines(t *testing.T) {
	nl := netlist.RippleAdder(4)
	list, c := buildCampaign(t, nl)
	vecs := randomVectors(len(nl.PIs), 64, 5)
	const stopAfter = 6
	want := freshMachineCampaign(c, list, vecs, stopAfter)

	for _, w := range []int{1, 4, runtime.NumCPU()} {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		restore := faultinject.Set(faultinject.HookSwitchSimVector, func(context.Context) error {
			n++
			if n > stopAfter {
				cancel()
			}
			return nil
		})
		res, err := SimulateFaultsCtx(ctx, c, list, vecs, w, BridgeG, nil)
		restore()
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		sameResult(t, "cancelled", want, res)
	}
}
