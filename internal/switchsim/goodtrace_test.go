package switchsim

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
	"defectsim/internal/transistor"
)

// buildCampaign extracts the fault list and transistor circuit for nl.
func buildCampaign(t testing.TB, nl *netlist.Netlist) (*fault.List, *transistor.Circuit) {
	t.Helper()
	L, err := layout.Build(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	return extract.Faults(L, defect.Typical()), transistor.FromLayout(L)
}

// sameResult fails the test unless a and b are bitwise identical.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.VectorsApplied != b.VectorsApplied || a.Oscillations != b.Oscillations || a.GoodUnsettledAt != b.GoodUnsettledAt {
		t.Fatalf("%s: campaign summary differs: applied %d/%d osc %d/%d unsettled %d/%d",
			label, a.VectorsApplied, b.VectorsApplied, a.Oscillations, b.Oscillations, a.GoodUnsettledAt, b.GoodUnsettledAt)
	}
	for i := range a.DetectedAt {
		if a.DetectedAt[i] != b.DetectedAt[i] || a.IDDQAt[i] != b.IDDQAt[i] || a.Undecided[i] != b.Undecided[i] {
			t.Fatalf("%s: fault %d differs: det %d/%d iddq %d/%d und %v/%v", label, i,
				a.DetectedAt[i], b.DetectedAt[i], a.IDDQAt[i], b.IDDQAt[i], a.Undecided[i], b.Undecided[i])
		}
	}
}

// TestCaptureGoodTraceMatchesRun pins the trace's contents against the
// reference good-circuit simulation: the recorded post-vector PO values
// must equal Run's outputs, and state bookkeeping must be complete.
func TestCaptureGoodTraceMatchesRun(t *testing.T) {
	nl := netlist.C17()
	_, c := buildCampaign(t, nl)
	vecs := randomVectors(len(nl.PIs), 24, 3)
	tr := CaptureGoodTrace(c, vecs)
	if !tr.Complete() || tr.UnsettledAt != 0 {
		t.Fatalf("capture incomplete: %d/%d states, unsettled %d", len(tr.States), len(vecs)+1, tr.UnsettledAt)
	}
	if tr.Applied() != len(vecs) {
		t.Fatalf("Applied() = %d, want %d", tr.Applied(), len(vecs))
	}
	if tr.Bytes() != (len(vecs)+1)*c.NumNets {
		t.Fatalf("Bytes() = %d, want %d", tr.Bytes(), (len(vecs)+1)*c.NumNets)
	}
	outs, err := Run(c, vecs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range vecs {
		for oi, po := range c.POs {
			if tr.States[k+1][po] != outs[k][oi] {
				t.Fatalf("vector %d PO %d: trace %v, Run %v", k, oi, tr.States[k+1][po], outs[k][oi])
			}
		}
	}
}

// TestTracedCampaignBitwiseEqual is the shared-trace core property: for
// every worker count, a campaign replaying a captured trace is bitwise
// identical to one stepping its own good machine, and the capture variant
// produces both the identical result and a reusable trace.
func TestTracedCampaignBitwiseEqual(t *testing.T) {
	for _, nl := range []*netlist.Netlist{netlist.C17(), netlist.RippleAdder(4)} {
		list, c := buildCampaign(t, nl)
		vecs := randomVectors(len(nl.PIs), 48, 21)
		ref, err := SimulateFaults(c, list, vecs)
		if err != nil {
			t.Fatal(err)
		}

		res, tr, err := SimulateFaultsCapture(context.Background(), c, list, vecs, 0, BridgeG, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, nl.Name+"/capture", res, ref)
		if !tr.Complete() {
			t.Fatalf("%s: capture-mode trace incomplete", nl.Name)
		}

		for _, w := range []int{1, 4, runtime.NumCPU()} {
			traced, err := SimulateFaultsTrace(context.Background(), c, list, vecs, w, BridgeG, nil, tr)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, nl.Name+"/traced", traced, ref)
		}

		// Resistive conductances exercise the verdict and oscillation paths
		// differently; the trace is bridge-model independent.
		for _, g := range []float64{20, 1.5, 0.3} {
			refG, err := SimulateFaultsR(c, list, vecs, 1, g)
			if err != nil {
				t.Fatal(err)
			}
			tracedG, err := SimulateFaultsTrace(context.Background(), c, list, vecs, 1, g, nil, tr)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, nl.Name+"/resistive", tracedG, refG)
		}
	}
}

// TestTracedCampaignPrefixExtension covers the top-up pattern: the trace
// spans a prefix of the campaign's vectors and the simulator continues on
// a live machine seeded from the last recorded state.
func TestTracedCampaignPrefixExtension(t *testing.T) {
	nl := netlist.RippleAdder(3)
	list, c := buildCampaign(t, nl)
	vecs := randomVectors(len(nl.PIs), 40, 8)
	tr := CaptureGoodTrace(c, vecs[:25])
	ref, err := SimulateFaults(c, list, vecs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4, runtime.NumCPU()} {
		got, err := SimulateFaultsTrace(context.Background(), c, list, vecs, w, BridgeG, nil, tr)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "prefix", got, ref)
	}
}

// TestTracedCampaignCancelMidRun mirrors the uncached partial-result
// contract: a traced campaign cancelled mid-run returns the same partial
// result the uncached campaign returns when cancelled at the same vector.
func TestTracedCampaignCancelMidRun(t *testing.T) {
	nl := netlist.RippleAdder(4)
	list, c := buildCampaign(t, nl)
	vecs := randomVectors(len(nl.PIs), 64, 5)
	tr := CaptureGoodTrace(c, vecs)

	const stopAfter = 10
	partial := func(traced bool) *Result {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		n := 0
		restore := faultinject.Set(faultinject.HookSwitchSimVector, func(context.Context) error {
			n++
			if n > stopAfter {
				cancel()
			}
			return nil
		})
		defer restore()
		var res *Result
		var err error
		if traced {
			res, err = SimulateFaultsTrace(ctx, c, list, vecs, 0, BridgeG, nil, tr)
		} else {
			res, err = SimulateFaultsCtx(ctx, c, list, vecs, 0, BridgeG, nil)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("traced=%v: err = %v, want context.Canceled", traced, err)
		}
		return res
	}
	sameResult(t, "cancelled", partial(true), partial(false))
}

// TestTracedCampaignUnsettledCutoff pins the GoodUnsettledAt contract: a
// trace recording an unsettled fault-free vector stops the campaign
// there, matching the uncached campaign's prefix and marking every
// still-live fault undecided.
func TestTracedCampaignUnsettledCutoff(t *testing.T) {
	nl := netlist.C17()
	list, c := buildCampaign(t, nl)
	vecs := randomVectors(len(nl.PIs), 32, 13)
	full := CaptureGoodTrace(c, vecs)

	const cut = 7 // 1-based vector index recorded as unsettled
	trunc := &GoodTrace{Vectors: vecs, States: full.States[:cut], UnsettledAt: cut}
	if !trunc.Complete() {
		t.Fatal("truncated trace with a recorded cutoff must count as complete")
	}
	for _, w := range []int{1, 4, runtime.NumCPU()} {
		res, err := SimulateFaultsTrace(context.Background(), c, list, vecs, w, BridgeG, nil, trunc)
		if err != nil {
			t.Fatal(err)
		}
		if res.GoodUnsettledAt != cut || res.VectorsApplied != cut-1 {
			t.Fatalf("workers=%d: GoodUnsettledAt=%d VectorsApplied=%d, want %d/%d",
				w, res.GoodUnsettledAt, res.VectorsApplied, cut, cut-1)
		}
		ref, err := SimulateFaults(c, list, vecs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range list.Faults {
			if d := res.DetectedAt[i]; d > 0 && d != ref.DetectedAt[i] {
				t.Fatalf("fault %d: cutoff run detected at %d, full run at %d", i, d, ref.DetectedAt[i])
			}
			if res.DetectedAt[i] == 0 && !res.Undecided[i] {
				t.Fatalf("fault %d neither detected nor undecided after the cutoff", i)
			}
		}
	}
}

// TestTraceValidation pins the loud-failure contract for trace/machine
// skews: a trace for another circuit, diverging vectors, or an
// interrupted capture is rejected with a descriptive error before any
// simulation.
func TestTraceValidation(t *testing.T) {
	nl := netlist.C17()
	list, c := buildCampaign(t, nl)
	vecs := randomVectors(len(nl.PIs), 16, 2)
	tr := CaptureGoodTrace(c, vecs)

	// Wrong circuit: state width mismatch.
	nl2 := netlist.RippleAdder(4)
	_, c2 := buildCampaign(t, nl2)
	vecs2 := randomVectors(len(nl2.PIs), 16, 2)
	if _, err := SimulateFaultsTrace(context.Background(), c2, list, vecs2, 1, BridgeG, nil, tr); err == nil || !strings.Contains(err.Error(), "nets") {
		t.Fatalf("cross-circuit trace: err = %v, want net-count mismatch", err)
	}

	// Diverging vectors.
	other := randomVectors(len(nl.PIs), 16, 99)
	if _, err := SimulateFaultsTrace(context.Background(), c, list, other, 1, BridgeG, nil, tr); err == nil || !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("diverging vectors: err = %v, want divergence error", err)
	}

	// Interrupted capture: incomplete, not reusable.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	part, err := CaptureGoodTraceCtx(ctx, c, vecs, nil)
	if !errors.Is(err, context.Canceled) || part.Complete() {
		t.Fatalf("cancelled capture: err=%v complete=%v", err, part.Complete())
	}
	if _, err := SimulateFaultsTrace(context.Background(), c, list, vecs, 1, BridgeG, nil, part); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("incomplete trace: err = %v, want incomplete error", err)
	}

	// Nil trace.
	if _, err := SimulateFaultsTrace(context.Background(), c, list, vecs, 1, BridgeG, nil, nil); err == nil {
		t.Fatal("nil trace must be rejected")
	}
}

// TestGoodTraceMetrics pins the reuse instrumentation: captures count as
// misses, traced campaigns as hits, and the bytes gauge reports the
// trace's footprint.
func TestGoodTraceMetrics(t *testing.T) {
	nl := netlist.C17()
	list, c := buildCampaign(t, nl)
	vecs := randomVectors(len(nl.PIs), 16, 4)
	reg := obs.NewRegistry()

	_, tr, err := SimulateFaultsCapture(context.Background(), c, list, vecs, 1, BridgeG, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := SimulateFaultsTrace(context.Background(), c, list, vecs, 1, BridgeG, reg, tr); err != nil {
			t.Fatal(err)
		}
	}
	if v := reg.Counter("swsim_goodtrace_misses").Value(); v != 1 {
		t.Fatalf("misses = %d, want 1", v)
	}
	if v := reg.Counter("swsim_goodtrace_hits").Value(); v != 3 {
		t.Fatalf("hits = %d, want 3", v)
	}
	if v := reg.Gauge("swsim_goodtrace_bytes").Value(); v != float64(tr.Bytes()) {
		t.Fatalf("bytes gauge = %v, want %d", v, tr.Bytes())
	}
}

// TestDetectedByClampsToVectorsApplied pins the early-stop accounting
// contract: coverage queried beyond the stop point reports the flags as
// of the stop, and a zero VectorsApplied (a Result that never ran the
// vector loop) keeps trivial-verdict detections credited.
func TestDetectedByClampsToVectorsApplied(t *testing.T) {
	r := &Result{
		DetectedAt:     []int{1, 5, 0},
		IDDQAt:         []int{0, 0, 9},
		Undecided:      []bool{false, false, true},
		VectorsApplied: 5,
	}
	// Vector 9 was never simulated: the IDDQ entry beyond the stop (which
	// a real campaign cannot produce) must not be credited at k = 20.
	got := r.DetectedBy(20, true)
	want := []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DetectedBy(20) = %v, want %v", got, want)
		}
	}
	// Queries inside the applied range are untouched.
	if got := r.DetectedBy(1, false); !got[0] || got[1] || got[2] {
		t.Fatalf("DetectedBy(1) = %v, want [true false false]", got)
	}
	// VectorsApplied == 0: trivial verdicts stay credited.
	triv := &Result{DetectedAt: []int{1}, IDDQAt: []int{0}}
	if got := triv.DetectedBy(64, false); !got[0] {
		t.Fatal("trivial verdict lost on a Result without VectorsApplied")
	}
}

// TestEqualValsLengthGuard pins the defensive fast-path contract: skewed
// slices never compare equal (and never panic).
func TestEqualValsLengthGuard(t *testing.T) {
	if equalVals([]Val{V0, V1}, []Val{V0}) {
		t.Fatal("skewed slices must not compare equal")
	}
	if !equalVals([]Val{V0, V1}, []Val{V0, V1}) {
		t.Fatal("identical slices must compare equal")
	}
}
