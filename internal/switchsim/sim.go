// Package switchsim is the switch-level fault simulator of the pipeline
// (the paper's swift): an event-driven, three-valued (0/1/X) simulator over
// channel-connected components with a conductance-based strength model.
//
// Each CCC is solved by max-conductance relaxation: a signal reaching a node
// through a chain of conducting transistors has the series conductance of
// the chain (g₁g₂/(g₁+g₂) per device); the node takes the strongest
// definitely-arriving value unless a possibly-conducting path of comparable
// strength could deliver the opposite value (→ X). Undriven nodes retain
// their previous value (charge storage), which is what makes open faults
// sequence-dependent and harder to detect than bridges — the central
// mechanism behind the paper's susceptibility ratio R and coverage ceiling
// Θmax.
//
// Fault injection (faultsim.go) supports the realistic fault kinds of
// package fault: bridges (an always-on short of high conductance, resolved
// by relative drive strength) and opens (transistors removed / nets severed
// from their drivers).
package switchsim

import (
	"fmt"

	"defectsim/internal/cell"
	"defectsim/internal/layout"
	"defectsim/internal/transistor"
)

// Val is a three-valued logic level.
type Val uint8

// Logic values.
const (
	V0 Val = iota
	V1
	VX
)

// String returns "0", "1" or "X".
func (v Val) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	}
	return "X"
}

// Conductances of the strength model.
const (
	RailG   = 1e12 // power rails and primary inputs (ideal drivers)
	BridgeG = 1e5  // bridging defect (hard short, far above any device)
	tinyG   = 1e-18
)

// series combines two conductances in series.
func series(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return a * b / (a + b)
}

// Vector is one input pattern: a 0/1 value per primary input, in netlist PI
// order.
type Vector []Val

// conduction state of a device under current gate values.
type conduction uint8

const (
	condOff conduction = iota
	condOn
	condMaybe
)

func devConduction(d *transistor.Device, gateVal Val) conduction {
	switch gateVal {
	case VX:
		return condMaybe
	case V1:
		if d.Type == cell.NMOS {
			return condOn
		}
		return condOff
	default: // V0
		if d.Type == cell.PMOS {
			return condOn
		}
		return condOff
	}
}

// Machine is one simulated circuit instance (good or faulty) with its own
// persistent node state. Faulty machines share the circuit structure and
// carry a fault configuration.
type Machine struct {
	c   *transistor.Circuit
	val []Val

	// Fault configuration (zero values = fault-free).
	removedDev map[int]bool // device indices forced off (stuck-open)
	bridges    [][2]int     // extra always-on edges of conductance bridgeG
	bridgeG    float64      // defect conductance (BridgeG unless resistive)
	deadPI     map[int]bool // PI nets severed from their pads
	forced     map[int]Val  // nets pinned to a level (severed trunks)

	// extraOf[ccc] lists bridges touching the CCC (merged partners are
	// solved together); key -1-net indexes bridges touching nets outside
	// any CCC (primary inputs).
	extraOf map[int][][2]int
	// seedCCCs are the CCCs hosting the fault hardware; they are re-solved
	// on every vector.
	seedCCCs []int

	queue   []int
	inQueue []bool
}

// NewMachine returns a fault-free machine over c with all nodes at X.
func NewMachine(c *transistor.Circuit) *Machine {
	m := &Machine{c: c, val: make([]Val, c.NumNets), bridgeG: BridgeG}
	for i := range m.val {
		m.val[i] = VX
	}
	m.val[layout.NetGND] = V0
	m.val[layout.NetVDD] = V1
	return m
}

// Val returns the current value of net n.
func (m *Machine) Val(n int) Val { return m.val[n] }

// solveCCC evaluates the CCC group containing id (plus bridge-merged
// partners) against the machine's current values and writes the resulting
// node values into out (a scratch map). It returns the nets whose value
// changed.
func (m *Machine) solveCCC(id int, changed []int) []int {
	c := m.c
	// Gather the node group: the CCC itself plus CCCs reachable through
	// bridges (transitively). Kept as an ordered slice so evaluation is
	// deterministic.
	groupIDs := []int{id}
	inGroup := map[int]bool{id: true}
	var extra [][2]int
	for i := 0; i < len(groupIDs); i++ {
		for _, br := range m.extraOf[groupIDs[i]] {
			extra = append(extra, br)
			for _, n := range br {
				oc := m.cccOfNet(n)
				if oc >= 0 && !inGroup[oc] {
					inGroup[oc] = true
					groupIDs = append(groupIDs, oc)
				}
			}
		}
	}

	// Local node index.
	local := map[int]int{}
	var nets []int
	addNet := func(n int) {
		if _, ok := local[n]; !ok {
			local[n] = len(nets)
			nets = append(nets, n)
		}
	}
	for _, g := range groupIDs {
		for _, n := range c.CCCs[g] {
			addNet(n)
		}
	}
	// Bridged endpoints outside any CCC (rails, PIs, netless nets) act as
	// sources, handled below.

	type edge struct {
		u, v int // local node indices; -1 marks a source endpoint
		g    float64
		cond conduction
		srcV Val // value delivered when u == -1
	}
	var edges []edge
	for _, g := range groupIDs {
		for _, di := range c.DevsOf[g] {
			if m.removedDev[di] {
				continue
			}
			d := &c.Devices[di]
			cond := devConduction(d, m.val[d.Gate])
			if cond == condOff {
				continue
			}
			s, t := d.Source, d.Drain
			si, sok := local[s]
			ti, tok := local[t]
			switch {
			case sok && tok:
				edges = append(edges, edge{si, ti, d.Conductance, cond, VX})
			case sok:
				// t is a rail (or external strongly driven net).
				edges = append(edges, edge{-1, si, d.Conductance, cond, m.val[t]})
			case tok:
				edges = append(edges, edge{-1, ti, d.Conductance, cond, m.val[s]})
			}
		}
	}
	for _, br := range extra {
		a, b := br[0], br[1]
		ai, aok := local[a]
		bi, bok := local[b]
		switch {
		case aok && bok:
			edges = append(edges, edge{ai, bi, m.bridgeG, condOn, VX})
		case aok:
			edges = append(edges, edge{-1, ai, m.bridgeG, condOn, m.val[b]})
		case bok:
			edges = append(edges, edge{-1, bi, m.bridgeG, condOn, m.val[a]})
		}
	}

	// Max-conductance relaxation, four fields per node:
	// def/may × value 0/1.
	n := len(nets)
	var d0, d1, m0, m1 []float64
	d0 = make([]float64, n)
	d1 = make([]float64, n)
	m0 = make([]float64, n)
	m1 = make([]float64, n)
	relax := func(g []float64, v Val, defOnly bool) {
		// Seed from sources.
		for _, e := range edges {
			if e.u != -1 || e.srcV != v {
				continue
			}
			if defOnly && (e.cond != condOn || e.srcV == VX) {
				continue
			}
			if cand := series(RailG, e.g); cand > g[e.v] {
				g[e.v] = cand
			}
		}
		for iter := 0; iter < n; iter++ {
			changedAny := false
			for _, e := range edges {
				if e.u == -1 {
					continue
				}
				if defOnly && e.cond != condOn {
					continue
				}
				if cand := series(g[e.u], e.g); cand > g[e.v]*(1+1e-12) && cand > tinyG {
					g[e.v] = cand
					changedAny = true
				}
				if cand := series(g[e.v], e.g); cand > g[e.u]*(1+1e-12) && cand > tinyG {
					g[e.u] = cand
					changedAny = true
				}
			}
			if !changedAny {
				break
			}
		}
	}
	relax(d0, V0, true)
	relax(d1, V1, true)
	relax(m0, V0, false)
	relax(m1, V1, false)
	// An X-valued source may deliver either value in the "may" fields.
	relaxXSource := func() {
		seeded := false
		for _, e := range edges {
			if e.u == -1 && e.srcV == VX {
				if cand := series(RailG, e.g); cand > m0[e.v] || cand > m1[e.v] {
					if cand > m0[e.v] {
						m0[e.v] = cand
					}
					if cand > m1[e.v] {
						m1[e.v] = cand
					}
					seeded = true
				}
			}
		}
		if seeded {
			relax(m0, V0, false)
			relax(m1, V1, false)
		}
	}
	relaxXSource()

	const cmp = 1 + 1e-9
	for i, net := range nets {
		if _, pinned := m.forced[net]; pinned {
			continue
		}
		prev := m.val[net]
		var nv Val
		switch {
		case m0[i] < tinyG && m1[i] < tinyG:
			nv = prev // floating: charge storage
		case m0[i] < tinyG:
			if d1[i] > tinyG {
				nv = V1
			} else if prev == V1 {
				nv = V1 // may float or pull up — both give 1
			} else {
				nv = VX
			}
		case m1[i] < tinyG:
			if d0[i] > tinyG {
				nv = V0
			} else if prev == V0 {
				nv = V0
			} else {
				nv = VX
			}
		case d1[i] > m0[i]*cmp:
			nv = V1
		case d0[i] > m1[i]*cmp:
			nv = V0
		default:
			nv = VX
		}
		if nv != prev {
			m.val[net] = nv
			changed = append(changed, net)
		}
	}
	return changed
}

func (m *Machine) cccOfNet(n int) int {
	if n < 0 || n >= len(m.c.CCCOf) {
		return -1
	}
	return m.c.CCCOf[n]
}

// Apply drives the primary inputs with vec and relaxes the whole machine to
// a fixpoint (bounded). It returns false if the bound was hit (an
// oscillation, possible only with feedback-creating bridges).
func (m *Machine) Apply(vec Vector) bool {
	if len(vec) != len(m.c.PIs) {
		panic(fmt.Sprintf("switchsim: vector has %d bits, circuit has %d PIs", len(vec), len(m.c.PIs)))
	}
	m.ensureQueue()
	for i, pi := range m.c.PIs {
		v := vec[i]
		if m.deadPI[pi] {
			v = VX // severed from its pad: floats
		}
		if m.val[pi] != v {
			m.val[pi] = v
			m.pushReaders(pi)
		}
	}
	m.applyForced()
	// Always re-seed the fault hardware's CCCs, and every CCC on the first
	// vector (all-X start).
	for _, id := range m.seedCCCs {
		m.push(id)
	}
	if m.allX() {
		for id := range m.c.CCCs {
			m.push(id)
		}
	}
	return m.settle()
}

// applyForced pins forced nets (severed trunks) to their stuck level.
func (m *Machine) applyForced() {
	for net, v := range m.forced {
		if m.val[net] != v {
			m.val[net] = v
			m.pushReaders(net)
		}
	}
}

// ApplyFromGood advances a currently-clean faulty machine: its pre-vector
// state is known to equal the good machine's pre-vector state, so only the
// fault hardware's own CCCs need re-solving, with effects propagated from
// there. goodPost is the good machine's state after the vector; goodPrev is
// its state before. Nodes outside the seed CCCs evolve exactly like the
// good machine and take goodPost directly; seed-CCC nodes are reset to
// goodPrev first so that charge retention (floating nodes keeping their
// previous value) is computed against the correct history.
func (m *Machine) ApplyFromGood(goodPost, goodPrev []Val) bool {
	if len(goodPost) != len(m.val) || len(goodPrev) != len(m.val) {
		// A good state sized for a different circuit would otherwise be
		// silently truncated by copy below; fail loudly instead. (Public
		// entry points reject the skew up front via GoodTrace.validateFor,
		// so this guards direct misuse only.)
		panic(fmt.Sprintf("switchsim: ApplyFromGood: good state spans %d/%d nets, machine %s has %d",
			len(goodPost), len(goodPrev), m.c.Name, len(m.val)))
	}
	copy(m.val, goodPost)
	m.ensureQueue()
	for _, id := range m.seedCCCs {
		for _, net := range m.c.CCCs[id] {
			m.val[net] = goodPrev[net]
		}
	}
	for pi := range m.deadPI {
		if m.val[pi] != VX {
			m.val[pi] = VX
			m.pushReaders(pi)
		}
	}
	m.applyForced()
	for _, id := range m.seedCCCs {
		m.push(id)
	}
	return m.settle()
}

func (m *Machine) ensureQueue() {
	if m.inQueue == nil {
		m.inQueue = make([]bool, len(m.c.CCCs))
	}
}

func (m *Machine) push(id int) {
	if id >= 0 && !m.inQueue[id] {
		m.inQueue[id] = true
		m.queue = append(m.queue, id)
	}
}

func (m *Machine) pushReaders(net int) {
	for _, r := range m.c.Readers[net] {
		m.push(r)
	}
	// Bridges can attach channel groups to nets outside any CCC (PIs).
	for _, br := range m.extraOf[-1-net] {
		for _, bn := range br {
			m.push(m.cccOfNet(bn))
		}
	}
}

// settle drains the event queue to a fixpoint, with a budget bounding
// bridge-induced oscillation.
func (m *Machine) settle() bool {
	budget := 8*len(m.c.CCCs) + 64
	var scratch []int
	for len(m.queue) > 0 {
		if budget == 0 {
			m.queue = m.queue[:0]
			for i := range m.inQueue {
				m.inQueue[i] = false
			}
			return false
		}
		budget--
		id := m.queue[0]
		m.queue = m.queue[1:]
		m.inQueue[id] = false
		scratch = m.solveCCC(id, scratch[:0])
		for _, net := range scratch {
			m.pushReaders(net)
		}
	}
	return true
}

func (m *Machine) allX() bool {
	for i, v := range m.val {
		if i == layout.NetGND || i == layout.NetVDD {
			continue
		}
		if v != VX {
			return false
		}
	}
	return true
}

// Outputs returns the current PO values in netlist order.
func (m *Machine) Outputs() []Val {
	out := make([]Val, len(m.c.POs))
	for i, po := range m.c.POs {
		out[i] = m.val[po]
	}
	return out
}

// Run applies the vectors in order to a fresh fault-free machine and
// returns the PO values after each vector. It is the good-circuit
// switch-level simulation used to cross-validate against gate-level logic
// simulation.
func Run(c *transistor.Circuit, vectors []Vector) ([][]Val, error) {
	m := NewMachine(c)
	out := make([][]Val, len(vectors))
	for i, vec := range vectors {
		if !m.Apply(vec) {
			return nil, fmt.Errorf("switchsim: %s did not settle on vector %d", c.Name, i)
		}
		out[i] = m.Outputs()
	}
	return out, nil
}
