// Package switchsim is the switch-level fault simulator of the pipeline
// (the paper's swift): an event-driven, three-valued (0/1/X) simulator over
// channel-connected components with a conductance-based strength model.
//
// Each CCC is solved by max-conductance relaxation: a signal reaching a node
// through a chain of conducting transistors has the series conductance of
// the chain (g₁g₂/(g₁+g₂) per device); the node takes the strongest
// definitely-arriving value unless a possibly-conducting path of comparable
// strength could deliver the opposite value (→ X). Undriven nodes retain
// their previous value (charge storage), which is what makes open faults
// sequence-dependent and harder to detect than bridges — the central
// mechanism behind the paper's susceptibility ratio R and coverage ceiling
// Θmax.
//
// Fault injection (faultsim.go) supports the realistic fault kinds of
// package fault: bridges (an always-on short of high conductance, resolved
// by relative drive strength) and opens (transistors removed / nets severed
// from their drivers).
//
// The hot path is allocation-free in steady state: every scratch buffer the
// CCC solver needs (the group worklist, the local node index, the edge
// list, the four conductance fields, the changed-net buffer) lives in a
// per-Machine arena that is grown once and reused across solves, and fault
// configurations are immutable faultPlans installable on any machine of the
// same circuit in O(1) — which is what lets the campaign loop share one
// pooled machine per worker across thousands of faults.
package switchsim

import (
	"fmt"

	"defectsim/internal/cell"
	"defectsim/internal/layout"
	"defectsim/internal/transistor"
)

// Val is a three-valued logic level.
type Val uint8

// Logic values.
const (
	V0 Val = iota
	V1
	VX
)

// String returns "0", "1" or "X".
func (v Val) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	}
	return "X"
}

// Conductances of the strength model.
const (
	RailG   = 1e12 // power rails and primary inputs (ideal drivers)
	BridgeG = 1e5  // bridging defect (hard short, far above any device)
	tinyG   = 1e-18
)

// series combines two conductances in series.
func series(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return a * b / (a + b)
}

// Vector is one input pattern: a 0/1 value per primary input, in netlist PI
// order.
type Vector []Val

// conduction state of a device under current gate values.
type conduction uint8

const (
	condOff conduction = iota
	condOn
	condMaybe
)

func devConduction(d *transistor.Device, gateVal Val) conduction {
	switch gateVal {
	case VX:
		return condMaybe
	case V1:
		if d.Type == cell.NMOS {
			return condOn
		}
		return condOff
	default: // V0
		if d.Type == cell.PMOS {
			return condOn
		}
		return condOff
	}
}

// forcedNet pins one net to a stuck level (a severed interconnect trunk).
type forcedNet struct {
	net int
	v   Val
}

// extraBridges groups a plan's bridges by attachment key (see
// faultPlan.extraOf).
type extraBridges struct {
	key int
	brs [][2]int
}

// faultPlan is the precomputed switch-level model of one realistic fault:
// everything fault injection used to scatter across per-machine maps, built
// once per fault by planFault and installable on any Machine of the same
// circuit in O(1). Plans are immutable after planFault returns and may be
// shared by any number of machines (and goroutines) concurrently.
type faultPlan struct {
	removedDev map[int]bool // device indices forced off (stuck-open)
	bridges    [][2]int     // extra always-on edges of conductance bridgeG
	deadPI     []int        // PI nets severed from their pads
	forced     []forcedNet  // nets pinned to a level (severed trunks)

	// extraOf lists bridges per attachment key: a CCC id (merged partners
	// are solved together), or -1-net for bridges touching nets outside
	// any CCC (primary inputs). A plan holds at most two keys, so it's a
	// scanned slice rather than a map — extraFor sits on solveCCC's group-
	// discovery hot path, where a map lookup per group member is measurable.
	// hasExtraPI short-circuits the per-changed-net lookup for the
	// overwhelming majority of faults with no such bridge endpoint.
	extraOf    []extraBridges
	hasExtraPI bool
	// seedCCCs are the CCCs hosting the fault hardware; they are re-solved
	// on every vector.
	seedCCCs []int
}

// isDeadPI reports whether pi is severed from its pad (≤ 1 entry in
// practice, so a linear scan beats any map).
func (p *faultPlan) isDeadPI(pi int) bool {
	for _, d := range p.deadPI {
		if d == pi {
			return true
		}
	}
	return false
}

// isForced reports whether net is pinned to a stuck level.
func (p *faultPlan) isForced(net int) bool {
	for _, f := range p.forced {
		if f.net == net {
			return true
		}
	}
	return false
}

// cccEdge is one conducting connection inside the node group being solved:
// a transistor channel, or a bridge edge.
type cccEdge struct {
	u, v int // local node indices; -1 marks a source endpoint
	g    float64
	cond conduction
	srcV Val // value delivered when u == -1
}

// solveScratch is the per-Machine arena behind solveCCC and settle: every
// buffer is grown on first use and reused for the life of the machine, so
// the settle loop allocates nothing in steady state (pinned by
// TestSettleSteadyStateZeroAllocs).
type solveScratch struct {
	groupIDs []int
	inGroup  []bool  // len == NumCCCs; reset via groupIDs after each solve
	localIdx []int32 // len == NumNets, -1 = absent; reset via nets
	nets     []int
	extra    [][2]int
	edges    []cccEdge
	d0, d1   []float64
	m0, m1   []float64
	changed  []int // settle's reusable changed-net buffer
	// touched accumulates every net an Apply/ApplyFromGood call may have
	// left different from its starting state (seeded, pinned, or changed
	// by a solve; duplicates allowed). The campaign's clean check compares
	// only these nets instead of scanning the whole circuit.
	touched []int
}

// Machine is one simulated circuit instance (good or faulty) with its own
// persistent node state. Faulty machines share the circuit structure and
// carry an installed fault plan; install is O(1), so one machine can be
// reused across many faults (the campaign loop's per-worker pool).
type Machine struct {
	c   *transistor.Circuit
	val []Val

	// Fault configuration: nil plan = fault-free. The plan is read-only;
	// bridgeG is the defect conductance (BridgeG unless resistive).
	plan    *faultPlan
	bridgeG float64

	// FIFO event queue over CCC ids: push appends, settle pops via qhead
	// and resets both once drained, so the backing array is reused forever
	// instead of creeping forward and reallocating.
	queue   []int
	qhead   int
	inQueue []bool

	// track makes settle record changed nets into scr.touched — on only
	// for applyFromGood, whose caller may run the touched-set clean check.
	// Plain Apply leaves it off: an oscillating machine would otherwise
	// accumulate every changed net of a budget-length settle for nothing.
	track bool

	scr solveScratch
}

// NewMachine returns a fault-free machine over c with all nodes at X.
func NewMachine(c *transistor.Circuit) *Machine {
	m := &Machine{c: c, val: make([]Val, c.NumNets), bridgeG: BridgeG}
	for i := range m.val {
		m.val[i] = VX
	}
	m.val[layout.NetGND] = V0
	m.val[layout.NetVDD] = V1
	return m
}

// Val returns the current value of net n.
func (m *Machine) Val(n int) Val { return m.val[n] }

// install points the machine at a fault plan. The machine's node state is
// untouched: callers either start from the all-X reset state (a fresh
// machine) or immediately overwrite the state via ApplyFromGood (the pooled
// fast path, whose full-state copy makes the result independent of whatever
// fault the machine hosted before).
func (m *Machine) install(p *faultPlan, bridgeG float64) {
	m.plan = p
	if bridgeG > 0 {
		m.bridgeG = bridgeG
	} else {
		m.bridgeG = BridgeG
	}
}

// extraOfKey returns the bridges attached to the given extraOf key (a CCC
// id, or -1-net for endpoints outside any CCC).
func (m *Machine) extraOfKey(key int) [][2]int {
	if m.plan == nil {
		return nil
	}
	return m.plan.extraFor(key)
}

// extraFor scans the plan's (≤ 2-entry) extraOf list for key.
func (p *faultPlan) extraFor(key int) [][2]int {
	for i := range p.extraOf {
		if p.extraOf[i].key == key {
			return p.extraOf[i].brs
		}
	}
	return nil
}

// solveCCC evaluates the CCC group containing id (plus bridge-merged
// partners) against the machine's current values and appends the nets whose
// value changed to changed (a scratch buffer owned by settle). All working
// storage comes from the machine's scratch arena.
func (m *Machine) solveCCC(id int, changed []int) []int {
	c := m.c
	s := &m.scr
	// Gather the node group: the CCC itself plus CCCs reachable through
	// bridges (transitively). Kept as an ordered slice so evaluation is
	// deterministic.
	groupIDs := s.groupIDs[:0]
	groupIDs = append(groupIDs, id)
	s.inGroup[id] = true
	extra := s.extra[:0]
	for i := 0; i < len(groupIDs); i++ {
		for _, br := range m.extraOfKey(groupIDs[i]) {
			extra = append(extra, br)
			for _, n := range br {
				oc := m.cccOfNet(n)
				if oc >= 0 && !s.inGroup[oc] {
					s.inGroup[oc] = true
					groupIDs = append(groupIDs, oc)
				}
			}
		}
	}

	// Local node index over the group's nets.
	nets := s.nets[:0]
	for _, g := range groupIDs {
		for _, n := range c.CCCs[g] {
			if s.localIdx[n] < 0 {
				s.localIdx[n] = int32(len(nets))
				nets = append(nets, n)
			}
		}
	}
	// Bridged endpoints outside any CCC (rails, PIs, netless nets) act as
	// sources, handled below.

	edges := s.edges[:0]
	for _, g := range groupIDs {
		for _, di := range c.DevsOf[g] {
			if m.plan != nil && m.plan.removedDev[di] {
				continue
			}
			d := &c.Devices[di]
			cond := devConduction(d, m.val[d.Gate])
			if cond == condOff {
				continue
			}
			st, dt := d.Source, d.Drain
			si, ti := s.localIdx[st], s.localIdx[dt]
			switch {
			case si >= 0 && ti >= 0:
				edges = append(edges, cccEdge{int(si), int(ti), d.Conductance, cond, VX})
			case si >= 0:
				// dt is a rail (or external strongly driven net).
				edges = append(edges, cccEdge{-1, int(si), d.Conductance, cond, m.val[dt]})
			case ti >= 0:
				edges = append(edges, cccEdge{-1, int(ti), d.Conductance, cond, m.val[st]})
			}
		}
	}
	for _, br := range extra {
		a, b := br[0], br[1]
		ai, bi := s.localIdx[a], s.localIdx[b]
		switch {
		case ai >= 0 && bi >= 0:
			edges = append(edges, cccEdge{int(ai), int(bi), m.bridgeG, condOn, VX})
		case ai >= 0:
			edges = append(edges, cccEdge{-1, int(ai), m.bridgeG, condOn, m.val[b]})
		case bi >= 0:
			edges = append(edges, cccEdge{-1, int(bi), m.bridgeG, condOn, m.val[a]})
		}
	}

	// Max-conductance relaxation, four fields per node: def/may × value 0/1.
	n := len(nets)
	d0 := resetFloats(s.d0, n)
	d1 := resetFloats(s.d1, n)
	m0 := resetFloats(s.m0, n)
	m1 := resetFloats(s.m1, n)
	relaxAll(d0, d1, m0, m1, edges, n)

	const cmp = 1 + 1e-9
	for i, net := range nets {
		if m.plan != nil && m.plan.isForced(net) {
			continue
		}
		prev := m.val[net]
		var nv Val
		switch {
		case m0[i] < tinyG && m1[i] < tinyG:
			nv = prev // floating: charge storage
		case m0[i] < tinyG:
			if d1[i] > tinyG {
				nv = V1
			} else if prev == V1 {
				nv = V1 // may float or pull up — both give 1
			} else {
				nv = VX
			}
		case m1[i] < tinyG:
			if d0[i] > tinyG {
				nv = V0
			} else if prev == V0 {
				nv = V0
			} else {
				nv = VX
			}
		case d1[i] > m0[i]*cmp:
			nv = V1
		case d0[i] > m1[i]*cmp:
			nv = V0
		default:
			nv = VX
		}
		if nv != prev {
			m.val[net] = nv
			changed = append(changed, net)
		}
	}

	// Reset the arena's membership marks via the lists just built, and hand
	// the (possibly regrown) buffers back for the next solve.
	for _, net := range nets {
		s.localIdx[net] = -1
	}
	for _, g := range groupIDs {
		s.inGroup[g] = false
	}
	s.groupIDs, s.nets, s.extra, s.edges = groupIDs, nets, extra, edges
	s.d0, s.d1, s.m0, s.m1 = d0, d1, m0, m1
	return changed
}

// resetFloats returns buf grown to n elements, zeroed.
func resetFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// relaxAll runs the four max-conductance relaxations (def/may × value 0/1)
// fused into one pass over the edge list. A max-relaxation's fixpoint is
// order-independent, so fusing the fields — and seeding X-valued sources up
// front instead of in a second pass — reaches the same fixpoints as four
// separate relaxations while loading each edge once per iteration instead
// of four times, and iterating max(per-field rounds) instead of their sum.
func relaxAll(d0, d1, m0, m1 []float64, edges []cccEdge, n int) {
	// Seed from sources. Definite fields only accept definitely-conducting
	// edges from non-X sources; "may" fields accept any conduction, and an
	// X-valued source may deliver either value.
	for i := range edges {
		e := &edges[i]
		if e.u != -1 {
			continue
		}
		cand := series(RailG, e.g)
		switch e.srcV {
		case V0:
			if cand > m0[e.v] {
				m0[e.v] = cand
			}
			if e.cond == condOn && cand > d0[e.v] {
				d0[e.v] = cand
			}
		case V1:
			if cand > m1[e.v] {
				m1[e.v] = cand
			}
			if e.cond == condOn && cand > d1[e.v] {
				d1[e.v] = cand
			}
		default:
			if cand > m0[e.v] {
				m0[e.v] = cand
			}
			if cand > m1[e.v] {
				m1[e.v] = cand
			}
		}
	}
	for iter := 0; iter < n; iter++ {
		changedAny := false
		for i := range edges {
			e := &edges[i]
			if e.u == -1 {
				continue
			}
			u, v, w := e.u, e.v, e.g
			changedAny = relaxStep(m0, u, v, w) || changedAny
			changedAny = relaxStep(m1, u, v, w) || changedAny
			if e.cond == condOn {
				changedAny = relaxStep(d0, u, v, w) || changedAny
				changedAny = relaxStep(d1, u, v, w) || changedAny
			}
		}
		if !changedAny {
			break
		}
	}
}

// relaxStep propagates one field across one channel edge, both directions.
func relaxStep(g []float64, u, v int, w float64) bool {
	changed := false
	if cand := series(g[u], w); cand > g[v]*(1+1e-12) && cand > tinyG {
		g[v] = cand
		changed = true
	}
	if cand := series(g[v], w); cand > g[u]*(1+1e-12) && cand > tinyG {
		g[u] = cand
		changed = true
	}
	return changed
}

func (m *Machine) cccOfNet(n int) int {
	if n < 0 || n >= len(m.c.CCCOf) {
		return -1
	}
	return m.c.CCCOf[n]
}

// Apply drives the primary inputs with vec and relaxes the whole machine to
// a fixpoint (bounded). It returns false if the bound was hit (an
// oscillation, possible only with feedback-creating bridges).
func (m *Machine) Apply(vec Vector) bool {
	if len(vec) != len(m.c.PIs) {
		panic(fmt.Sprintf("switchsim: vector has %d bits, circuit has %d PIs", len(vec), len(m.c.PIs)))
	}
	m.ensureScratch()
	m.track = false
	for i, pi := range m.c.PIs {
		v := vec[i]
		if m.plan != nil && m.plan.isDeadPI(pi) {
			v = VX // severed from its pad: floats
		}
		if m.val[pi] != v {
			m.val[pi] = v
			m.pushReaders(pi)
		}
	}
	m.applyForced()
	// Always re-seed the fault hardware's CCCs, and every CCC on the first
	// vector (all-X start).
	if m.plan != nil {
		for _, id := range m.plan.seedCCCs {
			m.push(id)
		}
	}
	if m.allX() {
		for id := range m.c.CCCs {
			m.push(id)
		}
	}
	return m.settle()
}

// applyForced pins forced nets (severed trunks) to their stuck level.
func (m *Machine) applyForced() {
	if m.plan == nil {
		return
	}
	for _, f := range m.plan.forced {
		if m.val[f.net] != f.v {
			m.val[f.net] = f.v
			if m.track {
				m.scr.touched = append(m.scr.touched, f.net)
			}
			m.pushReaders(f.net)
		}
	}
}

// ApplyFromGood advances a currently-clean faulty machine: its pre-vector
// state is known to equal the good machine's pre-vector state, so only the
// fault hardware's own CCCs need re-solving, with effects propagated from
// there. goodPost is the good machine's state after the vector; goodPrev is
// its state before. Nodes outside the seed CCCs evolve exactly like the
// good machine and take goodPost directly; seed-CCC nodes are reset to
// goodPrev first so that charge retention (floating nodes keeping their
// previous value) is computed against the correct history.
//
// Because the full state is copied in, the outcome is independent of
// whatever the machine held before — which is what makes pooled machines
// (one per worker, reinstalled per fault) bitwise-identical to dedicated
// per-fault machines.
func (m *Machine) ApplyFromGood(goodPost, goodPrev []Val) bool {
	return m.applyFromGood(goodPost, goodPrev, false)
}

// applyFromGood is ApplyFromGood with the copy made skippable: with
// stateIsGood set, the caller asserts m.val already equals goodPost
// elementwise (the campaign loop tracks this for its pooled machines — a
// machine whose previous fault stayed clean holds exactly the good state),
// so the O(NumNets) copy is elided and the apply touches only fault-local
// nets. The outcome is identical either way.
func (m *Machine) applyFromGood(goodPost, goodPrev []Val, stateIsGood bool) bool {
	if len(goodPost) != len(m.val) || len(goodPrev) != len(m.val) {
		// A good state sized for a different circuit would otherwise be
		// silently truncated by copy below; fail loudly instead. (Public
		// entry points reject the skew up front via GoodTrace.validateFor,
		// so this guards direct misuse only.)
		panic(fmt.Sprintf("switchsim: ApplyFromGood: good state spans %d/%d nets, machine %s has %d",
			len(goodPost), len(goodPrev), m.c.Name, len(m.val)))
	}
	if !stateIsGood {
		copy(m.val, goodPost)
	}
	m.ensureScratch()
	m.track = true
	m.scr.touched = m.scr.touched[:0]
	if m.plan != nil {
		for _, id := range m.plan.seedCCCs {
			for _, net := range m.c.CCCs[id] {
				m.val[net] = goodPrev[net]
			}
			m.scr.touched = append(m.scr.touched, m.c.CCCs[id]...)
		}
		for _, pi := range m.plan.deadPI {
			if m.val[pi] != VX {
				m.val[pi] = VX
				m.scr.touched = append(m.scr.touched, pi)
				m.pushReaders(pi)
			}
		}
		m.applyForced()
		for _, id := range m.plan.seedCCCs {
			m.push(id)
		}
	}
	return m.settle()
}

// cleanAgainst reports whether the machine's state equals good. It is
// valid only right after an Apply/ApplyFromGood whose *starting* state
// already equaled good (elementwise): every net the call may have left
// different is in the touched scratch, so only those are compared.
func (m *Machine) cleanAgainst(good []Val) bool {
	for _, n := range m.scr.touched {
		if m.val[n] != good[n] {
			return false
		}
	}
	return true
}

// ensureScratch sizes the queue bookkeeping and the solver arena's
// membership marks on first use.
func (m *Machine) ensureScratch() {
	if m.inQueue == nil {
		m.inQueue = make([]bool, len(m.c.CCCs))
	}
	if m.scr.inGroup == nil {
		m.scr.inGroup = make([]bool, len(m.c.CCCs))
	}
	if m.scr.localIdx == nil {
		m.scr.localIdx = make([]int32, m.c.NumNets)
		for i := range m.scr.localIdx {
			m.scr.localIdx[i] = -1
		}
	}
}

func (m *Machine) push(id int) {
	if id >= 0 && !m.inQueue[id] {
		m.inQueue[id] = true
		if len(m.queue) == cap(m.queue) && m.qhead > len(m.queue)/2 {
			// Reclaim the popped prefix instead of growing: live entries
			// are deduplicated by inQueue (≤ NumCCCs), so compaction keeps
			// the array bounded even through a budget-length oscillating
			// settle, where appends would otherwise grow it per pop.
			n := copy(m.queue, m.queue[m.qhead:])
			m.queue = m.queue[:n]
			m.qhead = 0
		}
		m.queue = append(m.queue, id)
	}
}

func (m *Machine) pushReaders(net int) {
	for _, r := range m.c.Readers[net] {
		m.push(r)
	}
	// Bridges can attach channel groups to nets outside any CCC (PIs).
	if m.plan != nil && m.plan.hasExtraPI {
		for _, br := range m.plan.extraFor(-1 - net) {
			for _, bn := range br {
				m.push(m.cccOfNet(bn))
			}
		}
	}
}

// settle drains the event queue to a fixpoint, with a budget bounding
// bridge-induced oscillation.
func (m *Machine) settle() bool {
	budget := 8*len(m.c.CCCs) + 64
	scratch := m.scr.changed
	for m.qhead < len(m.queue) {
		if budget == 0 {
			m.queue = m.queue[:0]
			m.qhead = 0
			for i := range m.inQueue {
				m.inQueue[i] = false
			}
			m.scr.changed = scratch
			return false
		}
		budget--
		id := m.queue[m.qhead]
		m.qhead++
		m.inQueue[id] = false
		scratch = m.solveCCC(id, scratch[:0])
		if m.track {
			m.scr.touched = append(m.scr.touched, scratch...)
		}
		for _, net := range scratch {
			m.pushReaders(net)
		}
	}
	m.queue = m.queue[:0]
	m.qhead = 0
	m.scr.changed = scratch
	return true
}

func (m *Machine) allX() bool {
	for i, v := range m.val {
		if i == layout.NetGND || i == layout.NetVDD {
			continue
		}
		if v != VX {
			return false
		}
	}
	return true
}

// Outputs returns the current PO values in netlist order.
func (m *Machine) Outputs() []Val {
	out := make([]Val, len(m.c.POs))
	for i, po := range m.c.POs {
		out[i] = m.val[po]
	}
	return out
}

// Run applies the vectors in order to a fresh fault-free machine and
// returns the PO values after each vector. It is the good-circuit
// switch-level simulation used to cross-validate against gate-level logic
// simulation.
func Run(c *transistor.Circuit, vectors []Vector) ([][]Val, error) {
	m := NewMachine(c)
	out := make([][]Val, len(vectors))
	for i, vec := range vectors {
		if !m.Apply(vec) {
			return nil, fmt.Errorf("switchsim: %s did not settle on vector %d", c.Name, i)
		}
		out[i] = m.Outputs()
	}
	return out, nil
}
