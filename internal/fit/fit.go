// Package fit provides the numerical fitting tools of the experiments:
// a Nelder–Mead simplex minimizer, golden-section line search, and the
// specific parameter fits the paper performs — (R, Θmax) of the proposed
// defect-level model against simulated fallout data, and the n parameter
// of the Agrawal model.
package fit

import (
	"math"
	"sort"

	"defectsim/internal/dlmodel"
)

// NelderMead minimizes f over dim dimensions starting from x0 with initial
// simplex step sizes step. It returns the best point and value found after
// maxIter iterations (or earlier convergence).
func NelderMead(f func([]float64) float64, x0 []float64, step float64, maxIter int) ([]float64, float64) {
	dim := len(x0)
	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, dim+1)
	for i := range simplex {
		x := append([]float64(nil), x0...)
		if i > 0 {
			x[i-1] += step
		}
		simplex[i] = vertex{x, f(x)}
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	for iter := 0; iter < maxIter; iter++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
		if math.Abs(simplex[dim].v-simplex[0].v) < 1e-14*(1+math.Abs(simplex[0].v)) {
			break
		}
		// Centroid of all but worst.
		cen := make([]float64, dim)
		for _, vtx := range simplex[:dim] {
			for j := range cen {
				cen[j] += vtx.x[j] / float64(dim)
			}
		}
		worst := simplex[dim]
		refl := make([]float64, dim)
		for j := range refl {
			refl[j] = cen[j] + alpha*(cen[j]-worst.x[j])
		}
		fr := f(refl)
		switch {
		case fr < simplex[0].v:
			exp := make([]float64, dim)
			for j := range exp {
				exp[j] = cen[j] + gamma*(refl[j]-cen[j])
			}
			if fe := f(exp); fe < fr {
				simplex[dim] = vertex{exp, fe}
			} else {
				simplex[dim] = vertex{refl, fr}
			}
		case fr < simplex[dim-1].v:
			simplex[dim] = vertex{refl, fr}
		default:
			con := make([]float64, dim)
			for j := range con {
				con[j] = cen[j] + rho*(worst.x[j]-cen[j])
			}
			if fc := f(con); fc < worst.v {
				simplex[dim] = vertex{con, fc}
			} else {
				for i := 1; i <= dim; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].v = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
	return simplex[0].x, simplex[0].v
}

// Golden minimizes a unimodal 1-D function on [lo, hi] by golden-section
// search.
func Golden(f func(float64) float64, lo, hi float64) float64 {
	const phi = 0.6180339887498949
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, fb := f(a), f(b)
	for i := 0; i < 300 && hi-lo > 1e-12*(1+math.Abs(lo)+math.Abs(hi)); i++ {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = f(a)
		} else {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = f(b)
		}
	}
	return (lo + hi) / 2
}

// DLPoint is one observed fallout point: stuck-at coverage T with the
// corresponding measured defect level DL.
type DLPoint struct {
	T, DL float64
}

// FitParams fits the proposed model's (R, Θmax) to observed (T, DL) points
// at known yield y, minimizing squared error in log defect level (DL spans
// decades). Parameters are transformed (R = e^r, Θmax = sigmoid(m)) so the
// search is unconstrained.
func FitParams(points []DLPoint, y float64) dlmodel.Params {
	obj := func(x []float64) float64 {
		p := dlmodel.Params{
			R:        math.Exp(x[0]),
			ThetaMax: 1 / (1 + math.Exp(-x[1])),
		}
		var sse float64
		for _, pt := range points {
			if pt.DL <= 0 {
				continue
			}
			m := p.DL(y, pt.T)
			if m <= 0 {
				m = 1e-300
			}
			d := math.Log(m) - math.Log(pt.DL)
			sse += d * d
		}
		return sse
	}
	best, bestV := []float64{0, 3}, math.Inf(1)
	// Multistart to escape local minima.
	for _, start := range [][]float64{{0, 3}, {0.7, 2}, {1.2, 4}, {-0.3, 1}} {
		x, v := NelderMead(obj, start, 0.5, 600)
		if v < bestV {
			best, bestV = x, v
		}
	}
	return dlmodel.Params{
		R:        math.Exp(best[0]),
		ThetaMax: 1 / (1 + math.Exp(-best[1])),
	}
}

// FitAgrawalN fits the Agrawal model's n parameter to observed fallout
// points at known yield, minimizing squared log-DL error over n ∈ [1, 50].
func FitAgrawalN(points []DLPoint, y float64) float64 {
	obj := func(n float64) float64 {
		var sse float64
		for _, pt := range points {
			if pt.DL <= 0 {
				continue
			}
			m := dlmodel.Agrawal(y, pt.T, n)
			if m <= 0 {
				m = 1e-300
			}
			d := math.Log(m) - math.Log(pt.DL)
			sse += d * d
		}
		return sse
	}
	return Golden(obj, 1, 50)
}
