// Package transistor provides the flat transistor-level circuit view of a
// placed design: MOS devices over the layout's global net numbering, plus
// the channel-connected component (CCC) partition that the switch-level
// simulator evaluates as a unit.
package transistor

import (
	"fmt"
	"sort"

	"defectsim/internal/cell"
	"defectsim/internal/layout"
)

// Device is one MOS transistor over global (layout) nets.
type Device struct {
	Type          cell.MOSType
	Gate          int // controlling net
	Source, Drain int // channel terminal nets
	Conductance   float64
	Inst          int // owning instance
	Node          int // cell-local gate node (for open-input fault matching)
}

// Circuit is a flat switch-level circuit.
type Circuit struct {
	Name    string
	NumNets int
	Devices []Device
	// PIs/POs are the layout net indices of the primary inputs/outputs, in
	// netlist declaration order.
	PIs, POs []int
	NetNames []string

	// CCCs is the channel-connected component partition: nets linked by
	// device channels, with the power rails excluded (they would otherwise
	// merge everything). CCC[i] lists net indices; CCCOf maps net → CCC
	// index (-1 for rails, PIs and other netless... nets with no channel
	// terminals).
	CCCs  [][]int
	CCCOf []int
	// DevsOf lists device indices per CCC.
	DevsOf [][]int
	// Readers lists, per net, the CCC indices containing a device gated by
	// that net.
	Readers [][]int
}

// FromLayout expands the placed design into a flat transistor circuit.
func FromLayout(L *layout.Layout) *Circuit {
	c := &Circuit{
		Name:    L.Name,
		NumNets: len(L.Nets),
	}
	c.NetNames = make([]string, len(L.Nets))
	for i, n := range L.Nets {
		c.NetNames[i] = n.Name
	}
	for ii, inst := range L.Instances {
		for _, tr := range inst.Cell.Transistors {
			c.Devices = append(c.Devices, Device{
				Type:        tr.Type,
				Gate:        inst.NodeToNet[tr.Gate],
				Source:      inst.NodeToNet[tr.Source],
				Drain:       inst.NodeToNet[tr.Drain],
				Conductance: float64(tr.Width),
				Inst:        ii,
				Node:        tr.Gate,
			})
		}
	}
	for _, pi := range L.Netlist.PIs {
		c.PIs = append(c.PIs, 2+pi)
	}
	for _, po := range L.Netlist.POs {
		c.POs = append(c.POs, 2+po)
	}
	c.buildCCCs()
	return c
}

// buildCCCs partitions nets into channel-connected components and builds
// the reader index.
func (c *Circuit) buildCCCs() {
	parent := make([]int, c.NumNets)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	isRail := func(n int) bool { return n == layout.NetGND || n == layout.NetVDD }
	hasChannel := make([]bool, c.NumNets)
	for _, d := range c.Devices {
		if !isRail(d.Source) {
			hasChannel[d.Source] = true
		}
		if !isRail(d.Drain) {
			hasChannel[d.Drain] = true
		}
		if !isRail(d.Source) && !isRail(d.Drain) {
			union(d.Source, d.Drain)
		}
	}
	c.CCCOf = make([]int, c.NumNets)
	for i := range c.CCCOf {
		c.CCCOf[i] = -1
	}
	label := map[int]int{}
	for n := 0; n < c.NumNets; n++ {
		if !hasChannel[n] {
			continue
		}
		r := find(n)
		id, ok := label[r]
		if !ok {
			id = len(label)
			label[r] = id
			c.CCCs = append(c.CCCs, nil)
			c.DevsOf = append(c.DevsOf, nil)
		}
		c.CCCOf[n] = id
		c.CCCs[id] = append(c.CCCs[id], n)
	}
	for di, d := range c.Devices {
		id := -1
		if !isRail(d.Source) {
			id = c.CCCOf[d.Source]
		}
		if id < 0 && !isRail(d.Drain) {
			id = c.CCCOf[d.Drain]
		}
		if id >= 0 {
			c.DevsOf[id] = append(c.DevsOf[id], di)
		}
	}
	c.Readers = make([][]int, c.NumNets)
	for di, d := range c.Devices {
		id := -1
		if d.Source != layout.NetGND && d.Source != layout.NetVDD {
			id = c.CCCOf[d.Source]
		}
		if id < 0 && d.Drain != layout.NetGND && d.Drain != layout.NetVDD {
			id = c.CCCOf[d.Drain]
		}
		if id < 0 {
			continue
		}
		rs := c.Readers[d.Gate]
		if len(rs) == 0 || rs[len(rs)-1] != id {
			// Dedup consecutive; full dedup below.
			c.Readers[d.Gate] = append(rs, id)
		}
		_ = di
	}
	for n := range c.Readers {
		rs := c.Readers[n]
		if len(rs) < 2 {
			continue
		}
		sort.Ints(rs)
		out := rs[:1]
		for _, x := range rs[1:] {
			if x != out[len(out)-1] {
				out = append(out, x)
			}
		}
		c.Readers[n] = out
	}
}

// Stats summarizes the circuit.
type Stats struct {
	Name           string
	Nets, Devices  int
	NMOS, PMOS     int
	CCCs           int
	LargestCCCNets int
	LargestCCCDevs int
}

// ComputeStats returns circuit statistics.
func (c *Circuit) ComputeStats() Stats {
	s := Stats{Name: c.Name, Nets: c.NumNets, Devices: len(c.Devices), CCCs: len(c.CCCs)}
	for _, d := range c.Devices {
		if d.Type == cell.NMOS {
			s.NMOS++
		} else {
			s.PMOS++
		}
	}
	for i := range c.CCCs {
		if len(c.CCCs[i]) > s.LargestCCCNets {
			s.LargestCCCNets = len(c.CCCs[i])
		}
		if len(c.DevsOf[i]) > s.LargestCCCDevs {
			s.LargestCCCDevs = len(c.DevsOf[i])
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d nets, %d devices (%dN/%dP), %d CCCs (largest %d nets / %d devices)",
		s.Name, s.Nets, s.Devices, s.NMOS, s.PMOS, s.CCCs, s.LargestCCCNets, s.LargestCCCDevs)
}

// Validate checks structural sanity: every device terminal in range, gates
// never tied to rails, and every PO net exists.
func (c *Circuit) Validate() error {
	for i, d := range c.Devices {
		for _, n := range []int{d.Gate, d.Source, d.Drain} {
			if n < 0 || n >= c.NumNets {
				return fmt.Errorf("transistor: device %d net %d out of range", i, n)
			}
		}
		if d.Gate == layout.NetGND || d.Gate == layout.NetVDD {
			return fmt.Errorf("transistor: device %d gate tied to rail", i)
		}
		if d.Conductance <= 0 {
			return fmt.Errorf("transistor: device %d nonpositive conductance", i)
		}
	}
	for _, po := range c.POs {
		if po < 0 || po >= c.NumNets {
			return fmt.Errorf("transistor: PO net %d out of range", po)
		}
	}
	return nil
}
