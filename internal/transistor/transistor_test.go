package transistor

import (
	"testing"

	"defectsim/internal/cell"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
)

func fromNetlist(t *testing.T, nl *netlist.Netlist) *Circuit {
	t.Helper()
	L, err := layout.Build(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := FromLayout(L)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFromLayoutC17(t *testing.T) {
	c := fromNetlist(t, netlist.C17())
	if len(c.Devices) != 24 {
		t.Fatalf("c17 devices = %d, want 24 (6 NAND2 × 4)", len(c.Devices))
	}
	s := c.ComputeStats()
	if s.NMOS != 12 || s.PMOS != 12 {
		t.Fatalf("device polarity split %d/%d", s.NMOS, s.PMOS)
	}
	// One CCC per NAND2 stage on each side? NMOS chain (out + internal) and
	// PMOS slots (out) merge through the shared output net: one CCC per
	// gate.
	if s.CCCs != 6 {
		t.Fatalf("c17 CCCs = %d, want 6", s.CCCs)
	}
	if s.String() == "" {
		t.Fatal("stats string empty")
	}
}

func TestCCCsExcludeRailsAndPIs(t *testing.T) {
	c := fromNetlist(t, netlist.C17())
	if c.CCCOf[layout.NetGND] != -1 || c.CCCOf[layout.NetVDD] != -1 {
		t.Fatal("rails must not join CCCs")
	}
	for _, pi := range c.PIs {
		if c.CCCOf[pi] != -1 {
			t.Fatal("PI nets have no channel terminals")
		}
	}
	for _, po := range c.POs {
		if c.CCCOf[po] < 0 {
			t.Fatal("PO nets are driven by a stage and must be in a CCC")
		}
	}
}

func TestReadersIndex(t *testing.T) {
	nl := netlist.C17()
	c := fromNetlist(t, nl)
	// G11 feeds two NAND gates: its reader set must contain exactly the two
	// CCCs of those gates.
	g11, _ := nl.NetByName("G11")
	readers := c.Readers[2+g11]
	if len(readers) != 2 {
		t.Fatalf("G11 readers = %v, want 2 CCCs", readers)
	}
	for i := 1; i < len(readers); i++ {
		if readers[i] == readers[i-1] {
			t.Fatal("reader list must be deduplicated")
		}
	}
	// Rails gate nothing.
	if len(c.Readers[layout.NetGND]) != 0 || len(c.Readers[layout.NetVDD]) != 0 {
		t.Fatal("rails must gate nothing")
	}
}

func TestDeviceProvenance(t *testing.T) {
	c := fromNetlist(t, netlist.C432Class(1994))
	for _, d := range c.Devices {
		if d.Inst < 0 {
			t.Fatal("device without instance provenance")
		}
		if d.Node < 2 {
			t.Fatal("gate node must be a signal node")
		}
		if d.Type != cell.NMOS && d.Type != cell.PMOS {
			t.Fatal("bad device type")
		}
	}
}

func TestDevsOfPartition(t *testing.T) {
	c := fromNetlist(t, netlist.RippleAdder(3))
	seen := map[int]bool{}
	total := 0
	for id := range c.CCCs {
		for _, di := range c.DevsOf[id] {
			if seen[di] {
				t.Fatalf("device %d in two CCCs", di)
			}
			seen[di] = true
			total++
		}
	}
	if total != len(c.Devices) {
		t.Fatalf("device partition covers %d of %d devices", total, len(c.Devices))
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := fromNetlist(t, netlist.C17())
	c.Devices[0].Gate = layout.NetGND
	if err := c.Validate(); err == nil {
		t.Fatal("gate tied to rail must fail validation")
	}
	c = fromNetlist(t, netlist.C17())
	c.Devices[0].Drain = 10 + c.NumNets
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range terminal must fail validation")
	}
	c = fromNetlist(t, netlist.C17())
	c.Devices[0].Conductance = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero conductance must fail validation")
	}
}
