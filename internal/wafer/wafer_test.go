package wafer

import (
	"math"
	"strings"
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
)

func testFaults(t testing.TB) *fault.List {
	t.Helper()
	L, err := layout.Build(netlist.RippleAdder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	list := extract.Faults(L, defect.Typical())
	list.ScaleToYield(0.75)
	return list
}

func allDetected(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestSitesInsideWafer(t *testing.T) {
	g := Geometry{Radius: 100, DieW: 10, DieH: 8, EdgeExclusion: 3}
	dies := g.Sites()
	if len(dies) == 0 {
		t.Fatal("no dies")
	}
	usable := g.Radius - g.EdgeExclusion
	for _, d := range dies {
		corner := math.Hypot(math.Abs(d.X)+g.DieW/2, math.Abs(d.Y)+g.DieH/2)
		if corner > usable+1e-9 {
			t.Fatalf("die at (%g,%g) leaves the usable area", d.X, d.Y)
		}
	}
	// Die count should be in the ballpark of the area ratio.
	areaRatio := math.Pi * usable * usable / (g.DieW * g.DieH)
	if float64(len(dies)) < 0.5*areaRatio || float64(len(dies)) > areaRatio {
		t.Fatalf("%d dies vs area bound %.0f", len(dies), areaRatio)
	}
}

func TestSitesPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	Geometry{Radius: 0, DieW: 1, DieH: 1}.Sites()
}

func TestUniformWaferMatchesLotStatistics(t *testing.T) {
	list := testFaults(t)
	g := Geometry{Radius: 300, DieW: 6, DieH: 6}
	m := Simulate(g, list, allDetected(len(list.Faults)), 1, Uniform(), 4)
	// Uniform profile at λ from the list: yield ≈ 0.75.
	if math.Abs(m.Yield()-0.75) > 0.02 {
		t.Fatalf("wafer yield %.4f, want ≈0.75", m.Yield())
	}
	// Everything detected ⇒ zero escapes.
	if m.DefectLevel() != 0 {
		t.Fatal("full detection must ship clean")
	}
}

func TestEdgeDegradedProfile(t *testing.T) {
	p := EdgeDegraded(4)
	if p(0) != 1 || math.Abs(p(1)-4) > 1e-12 {
		t.Fatalf("profile endpoints: %g, %g", p(0), p(1))
	}
	if p(0.5) <= p(0.2) {
		t.Fatal("profile must increase outward")
	}

	list := testFaults(t)
	g := Geometry{Radius: 300, DieW: 6, DieH: 6}
	m := Simulate(g, list, allDetected(len(list.Faults)), 1, p, 9)
	zones := m.ZoneYields(4)
	if len(zones) != 4 {
		t.Fatal("zone count")
	}
	if zones[0] <= zones[3] {
		t.Fatalf("edge zone must yield worse than center: %v", zones)
	}
	// Overall yield sits below the flat-profile wafer.
	flat := Simulate(g, list, allDetected(len(list.Faults)), 1, Uniform(), 9)
	if m.Yield() >= flat.Yield() {
		t.Fatalf("edge degradation must cost yield: %.4f vs %.4f", m.Yield(), flat.Yield())
	}
}

func TestEscapesAppearWithImperfectTest(t *testing.T) {
	list := testFaults(t)
	det := make([]int, len(list.Faults)) // nothing detected
	g := Geometry{Radius: 200, DieW: 8, DieH: 8}
	m := Simulate(g, list, det, 1, Uniform(), 5)
	var detected, escapes int
	for _, s := range m.Status {
		switch s {
		case StatusDetected:
			detected++
		case StatusEscape:
			escapes++
		}
	}
	if detected != 0 {
		t.Fatal("nothing is detectable")
	}
	if escapes == 0 {
		t.Fatal("faulty dies must escape an empty test")
	}
	// DL = 1 − Y when nothing is tested.
	if math.Abs(m.DefectLevel()-(1-m.Yield())) > 1e-12 {
		t.Fatal("untested wafer: DL must equal 1−Y")
	}
}

func TestRenderMap(t *testing.T) {
	list := testFaults(t)
	g := Geometry{Radius: 80, DieW: 8, DieH: 8}
	m := Simulate(g, list, allDetected(len(list.Faults)), 1, EdgeDegraded(3), 6)
	s := m.Render()
	if !strings.Contains(s, ".") || !strings.Contains(s, "yield") {
		t.Fatalf("render:\n%s", s)
	}
	empty := &Map{}
	if !strings.Contains(empty.Render(), "empty") {
		t.Fatal("empty map render")
	}
}

func TestSimulatePanicsOnMismatch(t *testing.T) {
	list := testFaults(t)
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	Simulate(Geometry{Radius: 50, DieW: 5, DieH: 5}, list, make([]int, 2), 1, Uniform(), 1)
}
