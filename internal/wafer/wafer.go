// Package wafer adds the spatial dimension to yield simulation: dies on a
// circular wafer, radially varying defect density (edge degradation, the
// classic signature of process non-uniformity), per-die fault sampling
// from a weighted fault list, and ASCII wafer maps — the yield engineer's
// view of the same statistics the defect-level models abstract into Y and
// DL.
package wafer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"defectsim/internal/fault"
)

// Geometry describes the wafer and die dimensions (arbitrary common unit).
type Geometry struct {
	Radius     float64
	DieW, DieH float64
	// EdgeExclusion keeps dies whose far corner exceeds Radius−EdgeExclusion
	// off the map.
	EdgeExclusion float64
}

// Die is one wafer site.
type Die struct {
	Col, Row int
	X, Y     float64 // center coordinates, wafer origin at the center
	R        float64 // radial distance of the center
}

// Sites enumerates the dies fully inside the usable wafer area, row-major.
func (g Geometry) Sites() []Die {
	if g.Radius <= 0 || g.DieW <= 0 || g.DieH <= 0 {
		panic("wafer: non-positive geometry")
	}
	usable := g.Radius - g.EdgeExclusion
	var dies []Die
	nx := int(2 * g.Radius / g.DieW)
	ny := int(2 * g.Radius / g.DieH)
	for row := 0; row <= ny; row++ {
		for col := 0; col <= nx; col++ {
			cx := (float64(col)+0.5)*g.DieW - g.Radius
			cy := (float64(row)+0.5)*g.DieH - g.Radius
			// The die's farthest corner must stay inside the usable disc.
			dx := math.Abs(cx) + g.DieW/2
			dy := math.Abs(cy) + g.DieH/2
			if math.Hypot(dx, dy) > usable {
				continue
			}
			dies = append(dies, Die{Col: col, Row: row, X: cx, Y: cy, R: math.Hypot(cx, cy)})
		}
	}
	return dies
}

// RadialProfile maps a normalized radius (0 at center, 1 at the usable
// edge) to a defect-density multiplier.
type RadialProfile func(rNorm float64) float64

// Uniform is the flat profile.
func Uniform() RadialProfile { return func(float64) float64 { return 1 } }

// EdgeDegraded returns the classic quadratic edge profile: multiplier 1 at
// the center rising to edgeFactor at the usable edge.
func EdgeDegraded(edgeFactor float64) RadialProfile {
	return func(r float64) float64 { return 1 + (edgeFactor-1)*r*r }
}

// Status classifies a die after test.
type Status uint8

// Die dispositions.
const (
	StatusGood Status = iota
	StatusDetected
	StatusEscape
)

// Map is a simulated, tested wafer.
type Map struct {
	Geometry Geometry
	Dies     []Die
	Status   []Status
}

// Simulate manufactures one wafer: each die's fault count is Poisson with
// rate λ·profile(r/rUsable) (λ = the fault list's total weight, i.e. the
// per-die average of the flat process), faults are drawn from the weighted
// list, and the first k vectors of the campaign disposition the die.
func Simulate(g Geometry, list *fault.List, detectedAt []int, k int, profile RadialProfile, seed int64) *Map {
	if len(detectedAt) != len(list.Faults) {
		panic("wafer: detection data does not match the fault list")
	}
	rng := rand.New(rand.NewSource(seed))
	lambda := list.TotalWeight()
	usable := g.Radius - g.EdgeExclusion

	cum := make([]float64, len(list.Faults))
	var acc float64
	for i, f := range list.Faults {
		acc += f.Weight
		cum[i] = acc
	}

	m := &Map{Geometry: g, Dies: g.Sites()}
	m.Status = make([]Status, len(m.Dies))
	for i, d := range m.Dies {
		rate := lambda * profile(d.R/usable)
		n := poisson(rng, rate)
		if n == 0 {
			m.Status[i] = StatusGood
			continue
		}
		caught := false
		for j := 0; j < n && !caught; j++ {
			u := rng.Float64() * lambda
			fi := sort.SearchFloat64s(cum, u)
			if fi >= len(cum) {
				fi = len(cum) - 1
			}
			if det := detectedAt[fi]; det > 0 && det <= k {
				caught = true
			}
		}
		if caught {
			m.Status[i] = StatusDetected
		} else {
			m.Status[i] = StatusEscape
		}
	}
	return m
}

func poisson(rng *rand.Rand, rate float64) int {
	l := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Yield returns the fraction of fault-free dies.
func (m *Map) Yield() float64 {
	good := 0
	for _, s := range m.Status {
		if s == StatusGood {
			good++
		}
	}
	if len(m.Status) == 0 {
		return 0
	}
	return float64(good) / float64(len(m.Status))
}

// DefectLevel returns escapes over shipped dies.
func (m *Map) DefectLevel() float64 {
	shipped, escapes := 0, 0
	for _, s := range m.Status {
		if s != StatusDetected {
			shipped++
			if s == StatusEscape {
				escapes++
			}
		}
	}
	if shipped == 0 {
		return 0
	}
	return float64(escapes) / float64(shipped)
}

// ZoneYields returns the yield per concentric radial zone (equal-width
// rings), center first.
func (m *Map) ZoneYields(zones int) []float64 {
	if zones < 1 {
		zones = 1
	}
	usable := m.Geometry.Radius - m.Geometry.EdgeExclusion
	good := make([]int, zones)
	total := make([]int, zones)
	for i, d := range m.Dies {
		z := int(d.R / usable * float64(zones))
		if z >= zones {
			z = zones - 1
		}
		total[z]++
		if m.Status[i] == StatusGood {
			good[z]++
		}
	}
	out := make([]float64, zones)
	for z := range out {
		if total[z] > 0 {
			out[z] = float64(good[z]) / float64(total[z])
		}
	}
	return out
}

// Render draws the wafer map: '.' good, 'x' detected, 'E' escape, spaces
// outside the wafer.
func (m *Map) Render() string {
	if len(m.Dies) == 0 {
		return "(empty wafer)\n"
	}
	maxCol, maxRow := 0, 0
	for _, d := range m.Dies {
		if d.Col > maxCol {
			maxCol = d.Col
		}
		if d.Row > maxRow {
			maxRow = d.Row
		}
	}
	grid := make([][]byte, maxRow+1)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", maxCol+1))
	}
	for i, d := range m.Dies {
		ch := byte('.')
		switch m.Status[i] {
		case StatusDetected:
			ch = 'x'
		case StatusEscape:
			ch = 'E'
		}
		grid[d.Row][d.Col] = ch
	}
	var b strings.Builder
	for r := maxRow; r >= 0; r-- {
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d dies: yield %.3f, DL %.0f ppm ('.' good, 'x' scrapped, 'E' escape)\n",
		len(m.Dies), m.Yield(), 1e6*m.DefectLevel())
	return b.String()
}
