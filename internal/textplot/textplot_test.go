package textplot

import (
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	p := Plot{Title: "demo", XLabel: "x", YLabel: "y", W: 40, H: 10}
	p.Add("line", '*', []float64{1, 2, 3, 4}, []float64{1, 4, 9, 16})
	out := p.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "line") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "x: x") {
		t.Fatal("axis labels missing")
	}
	// Monotone increasing data: the marker in the top row must be to the
	// right of the marker in the bottom row.
	lines := strings.Split(out, "\n")
	var first, last int = -1, -1
	for _, ln := range lines {
		if i := strings.IndexByte(ln, '*'); i >= 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || last < 0 || first <= last {
		t.Fatalf("orientation wrong: first=%d last=%d", first, last)
	}
}

func TestPlotLogAxes(t *testing.T) {
	p := Plot{XLog: true, YLog: true, W: 30, H: 8}
	p.Add("s", 'o', []float64{1, 10, 100, 1000}, []float64{1e-6, 1e-4, 1e-2, 1})
	out := p.Render()
	if !strings.Contains(out, "o") {
		t.Fatal("no markers")
	}
	// Log-transformed straight line: every row between extremes should
	// contain a marker column strictly between its neighbors — just check
	// there are at least 3 distinct marker columns.
	cols := map[int]bool{}
	for _, ln := range strings.Split(out, "\n") {
		if i := strings.IndexByte(ln, 'o'); i >= 0 {
			cols[i] = true
		}
	}
	if len(cols) < 3 {
		t.Fatalf("log plot degenerate: %v", cols)
	}
}

func TestPlotSkipsNonPositiveOnLogAxes(t *testing.T) {
	p := Plot{YLog: true, W: 20, H: 5}
	p.Add("s", 'o', []float64{1, 2, 3}, []float64{0, -1, 10})
	out := p.Render()
	if strings.Count(out, "o") != 1+1 { // one marker + one legend entry
		t.Fatalf("non-positive values must be dropped:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := Plot{}
	if !strings.Contains(p.Render(), "no data") {
		t.Fatal("empty plot must say so")
	}
}

func TestPlotMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths must panic")
		}
	}()
	var p Plot
	p.Add("bad", 'x', []float64{1}, []float64{1, 2})
}

func TestPlotDegenerateRange(t *testing.T) {
	p := Plot{W: 10, H: 4}
	p.Add("pt", '*', []float64{5}, []float64{7})
	if !strings.Contains(p.Render(), "*") {
		t.Fatal("single point must render")
	}
}

func TestTable(t *testing.T) {
	tb := Table{Headers: []string{"name", "value", "note"}}
	tb.AddRow("alpha", 3.14159, "pi-ish")
	tb.AddRow("beta", 42, "int")
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatal("header wrong")
	}
	if !strings.Contains(lines[2], "3.14159") || !strings.Contains(lines[3], "42") {
		t.Fatalf("rows wrong:\n%s", out)
	}
	// Columns aligned: "value" column starts at the same offset everywhere.
	off := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][off:], "3.14159") {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}
