// Package textplot renders the experiments' figures as ASCII art: multi-
// series scatter/line plots with optional logarithmic axes, and aligned
// tables. Output is deliberately plain so figures can live in terminals,
// logs and EXPERIMENTS.md alike.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one data set of a plot.
type Series struct {
	Name   string
	Marker byte
	XS, YS []float64
}

// Plot is a 2-D character-grid plot.
type Plot struct {
	Title          string
	XLabel, YLabel string
	XLog, YLog     bool
	W, H           int // plot area in characters (excluding axes)
	series         []Series
}

// Add appends a series; xs and ys must have equal length.
func (p *Plot) Add(name string, marker byte, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic("textplot: series length mismatch")
	}
	p.series = append(p.series, Series{name, marker, xs, ys})
}

func (p *Plot) transform(v float64, log bool) (float64, bool) {
	if log {
		if v <= 0 {
			return 0, false
		}
		return math.Log10(v), true
	}
	return v, true
}

// Render draws the plot.
func (p *Plot) Render() string {
	w, h := p.W, p.H
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	// Data range in transformed space.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.XS {
			x, okx := p.transform(s.XS[i], p.XLog)
			y, oky := p.transform(s.YS[i], p.YLog)
			if !okx || !oky {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	if math.IsInf(minX, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range p.series {
		for i := range s.XS {
			x, okx := p.transform(s.XS[i], p.XLog)
			y, oky := p.transform(s.YS[i], p.YLog)
			if !okx || !oky {
				continue
			}
			cx := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
			cy := int(math.Round((y - minY) / (maxY - minY) * float64(h-1)))
			row := h - 1 - cy
			if cx >= 0 && cx < w && row >= 0 && row < h {
				grid[row][cx] = s.Marker
			}
		}
	}
	inv := func(v float64, log bool) float64 {
		if log {
			return math.Pow(10, v)
		}
		return v
	}
	yLab := func(v float64) string { return fmt.Sprintf("%10.3g", inv(v, p.YLog)) }
	for i, row := range grid {
		label := strings.Repeat(" ", 10)
		switch i {
		case 0:
			label = yLab(maxY)
		case h - 1:
			label = yLab(minY)
		case (h - 1) / 2:
			label = yLab((minY + maxY) / 2)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", w))
	lo := fmt.Sprintf("%.3g", inv(minX, p.XLog))
	hi := fmt.Sprintf("%.3g", inv(maxX, p.XLog))
	pad := w - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", 10), lo, strings.Repeat(" ", pad), hi)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", 10), p.XLabel, p.YLabel)
	}
	for _, s := range p.series {
		fmt.Fprintf(&b, "%s    %c %s\n", strings.Repeat(" ", 10), s.Marker, s.Name)
	}
	return b.String()
}

// Table renders aligned text tables.
type Table struct {
	Headers []string
	Rows    [][]string
}

// AddRow appends a row (cells are stringified via %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, hd := range t.Headers {
		widths[i] = len(hd)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}
