package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"defectsim/internal/faultinject"
	"defectsim/internal/obs"
	"defectsim/internal/store"
)

// PeerSpec names one remote node and its base URL.
type PeerSpec struct {
	Name string
	URL  string
}

// normalizeAddr canonicalizes a peer base URL for duplicate and
// self-address detection: whitespace and trailing slashes dropped, the
// rest lowercased (base URLs carry scheme/host/port only, so lowercasing
// the whole string is safe).
func normalizeAddr(u string) string {
	return strings.ToLower(strings.TrimRight(strings.TrimSpace(u), "/"))
}

// appendPeer validates one name=url entry against the peers accumulated
// so far and appends it. A duplicate name, a duplicate address, or the
// node's own address is rejected outright — each would otherwise
// silently double-weight vnodes on the ring (two names for one node) or
// make the node forward work to itself.
func appendPeer(specs []PeerSpec, names map[string]bool, addrs map[string]string, name, url, selfURL string) ([]PeerSpec, error) {
	if names[name] {
		return nil, fmt.Errorf("duplicate peer name %q", name)
	}
	addr := normalizeAddr(url)
	if selfURL != "" && addr == normalizeAddr(selfURL) {
		return nil, fmt.Errorf("peer %q uses this node's own address %q", name, url)
	}
	if prev, ok := addrs[addr]; ok {
		return nil, fmt.Errorf("duplicate peer address %q shared by %q and %q", url, prev, name)
	}
	names[name] = true
	addrs[addr] = name
	return append(specs, PeerSpec{Name: name, URL: url}), nil
}

// ParsePeers parses the -peers flag format: a comma-separated list of
// name=url entries, e.g. "node-b=http://10.0.0.2:8447,node-c=http://10.0.0.3:8447".
// The self node is NOT listed (it has no URL to dial); the ring is built
// over self plus every parsed peer. selfURL, when non-empty, is this
// node's own advertised base URL — a peer entry pointing back at it is
// rejected. Duplicate names and duplicate addresses are rejected too.
func ParsePeers(s, selfURL string) ([]PeerSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var specs []PeerSpec
	names := map[string]bool{}
	addrs := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		name, url = strings.TrimSpace(name), strings.TrimSpace(url)
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer entry %q (want name=url)", part)
		}
		var err error
		if specs, err = appendPeer(specs, names, addrs, name, url, selfURL); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}
	return specs, nil
}

// Options tunes the per-peer clients. The zero value is serviceable.
type Options struct {
	// Client is the shared http.Client for all peers. Default:
	// http.DefaultClient.
	Client *http.Client
	// MaxAttempts / BaseDelay / MaxDelay / PerAttemptTimeout configure each
	// peer's retrying transport (see store.Transport).
	MaxAttempts       int
	BaseDelay         time.Duration
	MaxDelay          time.Duration
	PerAttemptTimeout time.Duration
	// BreakerThreshold consecutive failures open a peer's breaker for
	// BreakerCooldown (defaults from store.NewBreaker: 5 / 15s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PollInterval is the cadence for polling a forwarded job's status.
	// Default 25ms — cheap against an in-fleet peer, fast enough that
	// forwarding adds negligible latency to a multi-second pipeline run.
	PollInterval time.Duration
	// RF is the replication factor: each key lives on the RF distinct
	// nodes returned by Ring.OwnersFor. 1 (the default) means no
	// replication — the PR-7 single-owner behavior.
	RF int
}

// Metrics is the cluster instrument set. Nil-safe like store.Metrics.
type Metrics struct {
	// Forward counts forwarding outcomes:
	// cluster_forward_total{peer,outcome} with outcome
	// ok/replica_hit/submit_error/poll_error/remote_failed/cancelled.
	Forward *obs.CounterVec
	// Fallback counts jobs that ran locally after a forward was either
	// impossible or failed: cluster_fallback_local_total{reason}.
	Fallback *obs.CounterVec
	// BreakerState mirrors each peer breaker:
	// cluster_peer_breaker_state{peer} (0 closed / 1 open / 2 half-open).
	BreakerState *obs.GaugeVec
	// Reloads counts membership swaps: cluster_membership_reloads_total{outcome}
	// with outcome ok/error.
	Reloads *obs.CounterVec
	// Changes counts per-node membership changes applied by reloads:
	// cluster_membership_changes_total{change} with change join/leave.
	Changes *obs.CounterVec
	// Nodes gauges the current member count (self included):
	// cluster_membership_nodes.
	Nodes *obs.Gauge
	// Epoch gauges the membership generation — bumped on every successful
	// reload, so dashboards can spot a node stuck on an old view:
	// cluster_membership_epoch.
	Epoch *obs.Gauge
}

// NewMetrics registers the cluster instrument families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Forward:      reg.CounterVec("cluster_forward_total", "peer", "outcome"),
		Fallback:     reg.CounterVec("cluster_fallback_local_total", "reason"),
		BreakerState: reg.GaugeVec("cluster_peer_breaker_state", "peer"),
		Reloads:      reg.CounterVec("cluster_membership_reloads_total", "outcome"),
		Changes:      reg.CounterVec("cluster_membership_changes_total", "change"),
		Nodes:        reg.Gauge("cluster_membership_nodes"),
		Epoch:        reg.Gauge("cluster_membership_epoch"),
	}
}

// ForwardOutcome records one forwarding attempt's outcome.
func (m *Metrics) ForwardOutcome(peer, outcome string) {
	if m == nil {
		return
	}
	m.Forward.With(peer, outcome).Inc()
}

// FallbackLocal records a job that degraded to local execution.
func (m *Metrics) FallbackLocal(reason string) {
	if m == nil {
		return
	}
	m.Fallback.With(reason).Inc()
}

func (m *Metrics) breakerGauge(peer string) *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.BreakerState.With(peer)
}

func (m *Metrics) reload(outcome string) {
	if m == nil {
		return
	}
	m.Reloads.With(outcome).Inc()
}

func (m *Metrics) change(kind string, n int) {
	if m == nil {
		return
	}
	for i := 0; i < n; i++ {
		m.Changes.With(kind).Inc()
	}
}

// view is one immutable membership snapshot: the ring plus the clients
// for every remote member. Lookups load the current view atomically, so
// a reload never blocks — or breaks — an in-flight forwarding or
// replication operation: a job that resolved its peers against the old
// view keeps using those clients until it finishes, while new lookups
// see the new ring immediately.
type view struct {
	ring  *Ring
	peers map[string]*Peer
}

// Cluster is one node's view of the fleet: the ring over all members
// (self included) and a client per remote peer. Membership is dynamic —
// seeded at construction and swapped atomically by Reload.
type Cluster struct {
	self string
	rf   int
	m    *Metrics
	sm   *store.Metrics
	opts Options
	poll time.Duration

	cur atomic.Pointer[view]

	// reloadMu serializes membership swaps; reloading is the /readyz
	// "mid-swap" signal — load balancers stop routing to a node whose
	// view is being replaced.
	reloadMu  sync.Mutex
	reloading atomic.Bool
	epoch     atomic.Int64

	cbMu      sync.Mutex
	onRecover func(peer string)
}

// New builds the cluster view for node self with the given remote peers.
// Metrics (and the per-peer breaker gauges) register on reg; a nil reg
// disables them.
func New(self string, specs []PeerSpec, reg *obs.Registry, opts Options) (*Cluster, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: self node name must be non-empty")
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 25 * time.Millisecond
	}
	if opts.RF <= 0 {
		opts.RF = 1
	}
	c := &Cluster{
		self: self,
		rf:   opts.RF,
		m:    NewMetrics(reg),
		sm:   store.NewMetrics(reg),
		opts: opts,
		poll: opts.PollInterval,
	}
	v, _, _, err := c.buildView(nil, specs)
	if err != nil {
		return nil, err
	}
	c.cur.Store(v)
	if c.m != nil {
		c.m.Nodes.Set(float64(v.ring.Len()))
	}
	return c, nil
}

// buildView assembles the membership snapshot for specs, carrying over
// unchanged peers from old so their breaker state (and any in-flight
// requests) survive the swap. Returns the node names that joined and
// left relative to old, sorted.
func (c *Cluster) buildView(old *view, specs []PeerSpec) (*view, []string, []string, error) {
	names := []string{c.self}
	for _, sp := range specs {
		if sp.Name == c.self {
			return nil, nil, nil, fmt.Errorf("cluster: peer list includes self (%q)", c.self)
		}
		names = append(names, sp.Name)
	}
	ring, err := NewRing(names)
	if err != nil {
		return nil, nil, nil, err
	}
	peers := make(map[string]*Peer, len(specs))
	var joined []string
	for _, sp := range specs {
		if old != nil {
			if p := old.peers[sp.Name]; p != nil && normalizeAddr(p.base) == normalizeAddr(sp.URL) {
				peers[sp.Name] = p
				continue
			}
		}
		p, err := c.newPeer(sp)
		if err != nil {
			return nil, nil, nil, err
		}
		peers[sp.Name] = p
		if old != nil && old.peers[sp.Name] != nil {
			continue // same name, new address: a move, not a join
		}
		joined = append(joined, sp.Name)
	}
	var left []string
	if old != nil {
		for name := range old.peers {
			if peers[name] == nil {
				left = append(left, name)
			}
		}
	}
	sort.Strings(joined)
	sort.Strings(left)
	return &view{ring: ring, peers: peers}, joined, left, nil
}

// newPeer builds the client (and breaker) for one remote node. The
// breaker's close transition pokes the recovery callback so hinted
// handoff replays as soon as the peer is reachable again; the callback
// may run while the breaker's lock is held, so registered functions must
// not block.
func (c *Cluster) newPeer(sp PeerSpec) (*Peer, error) {
	br := store.NewBreaker(sp.Name, c.opts.BreakerThreshold, c.opts.BreakerCooldown, c.m.breakerGauge(sp.Name))
	name := sp.Name
	br.OnChange(func(_, to store.BreakerState) {
		if to != store.BreakerClosed {
			return
		}
		c.cbMu.Lock()
		fn := c.onRecover
		c.cbMu.Unlock()
		if fn != nil {
			fn(name)
		}
	})
	return newPeer(sp.Name, sp.URL, store.HTTPOptions{
		Client:            c.opts.Client,
		MaxAttempts:       c.opts.MaxAttempts,
		BaseDelay:         c.opts.BaseDelay,
		MaxDelay:          c.opts.MaxDelay,
		PerAttemptTimeout: c.opts.PerAttemptTimeout,
		Breaker:           br,
		Metrics:           c.sm,
	})
}

// Reload swaps the membership to specs. The ring is rebuilt, clients for
// unchanged peers are carried over (breaker state included), and the new
// view replaces the old atomically — in-flight operations that resolved
// peers against the old view finish on those clients; new lookups see
// the new ring immediately. Returns the node names that joined and left.
func (c *Cluster) Reload(specs []PeerSpec) (joined, left []string, err error) {
	c.reloadMu.Lock()
	defer c.reloadMu.Unlock()
	c.reloading.Store(true)
	defer c.reloading.Store(false)
	old := c.cur.Load()
	v, joined, left, err := c.buildView(old, specs)
	if err == nil {
		// Test seam: lets chaos tests hold a reload mid-swap (to probe the
		// /readyz unready window) or fail it after validation.
		err = faultinject.Fire(faultinject.WithTarget(context.Background(), c.self), faultinject.HookMembershipReload)
	}
	if err != nil {
		c.m.reload("error")
		return nil, nil, err
	}
	c.cur.Store(v)
	c.m.reload("ok")
	c.m.change("join", len(joined))
	c.m.change("leave", len(left))
	if c.m != nil {
		c.m.Nodes.Set(float64(v.ring.Len()))
		c.m.Epoch.Set(float64(c.epoch.Add(1)))
	}
	return joined, left, nil
}

// SetOnPeerRecovered registers fn to run whenever any peer's breaker
// transitions to closed — the serve layer's cue to replay hinted
// handoff. fn may be invoked with the breaker's internal lock held and
// must not block; a buffered-channel poke is the intended shape.
func (c *Cluster) SetOnPeerRecovered(fn func(peer string)) {
	c.cbMu.Lock()
	c.onRecover = fn
	c.cbMu.Unlock()
}

// Self returns this node's name.
func (c *Cluster) Self() string { return c.self }

// RF returns the replication factor.
func (c *Cluster) RF() int { return c.rf }

// Reloading reports whether a membership swap is in progress.
func (c *Cluster) Reloading() bool { return c.reloading.Load() }

// Ring returns the current membership ring.
func (c *Cluster) Ring() *Ring { return c.cur.Load().ring }

// Metrics returns the cluster instrument set.
func (c *Cluster) Metrics() *Metrics { return c.m }

// PollInterval is the forwarded-job status polling cadence.
func (c *Cluster) PollInterval() time.Duration { return c.poll }

// Owner returns the node owning key on the ring.
func (c *Cluster) Owner(key string) string { return c.Ring().Owner(key) }

// Owners returns the ordered replica set for key — the RF distinct nodes
// (self possibly among them) that should hold its result.
func (c *Cluster) Owners(key string) []string { return c.Ring().OwnersFor(key, c.rf) }

// Peer returns the client for a remote node, or nil for self / unknown
// names.
func (c *Cluster) Peer(name string) *Peer { return c.cur.Load().peers[name] }

// ReplicaStore returns the remote store view of the named node, or nil
// for self, unknown, and departed nodes. This is the store.ReplicaSet
// half of the cluster: store.Replicated composes over it without the
// store package importing cluster.
func (c *Cluster) ReplicaStore(name string) store.Store {
	p := c.Peer(name)
	if p == nil {
		return nil
	}
	return p.Store()
}

// Peers returns the remote peer clients in name order.
func (c *Cluster) Peers() []*Peer {
	cur := c.cur.Load()
	out := make([]*Peer, 0, len(cur.peers))
	for _, p := range cur.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
