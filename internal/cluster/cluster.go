package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"defectsim/internal/obs"
	"defectsim/internal/store"
)

// PeerSpec names one remote node and its base URL.
type PeerSpec struct {
	Name string
	URL  string
}

// ParsePeers parses the -peers flag format: a comma-separated list of
// name=url entries, e.g. "node-b=http://10.0.0.2:8447,node-c=http://10.0.0.3:8447".
// The self node is NOT listed (it has no URL to dial); the ring is built
// over self plus every parsed peer.
func ParsePeers(s string) ([]PeerSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var specs []PeerSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		name, url = strings.TrimSpace(name), strings.TrimSpace(url)
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer entry %q (want name=url)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate peer name %q", name)
		}
		seen[name] = true
		specs = append(specs, PeerSpec{Name: name, URL: url})
	}
	return specs, nil
}

// Options tunes the per-peer clients. The zero value is serviceable.
type Options struct {
	// Client is the shared http.Client for all peers. Default:
	// http.DefaultClient.
	Client *http.Client
	// MaxAttempts / BaseDelay / MaxDelay / PerAttemptTimeout configure each
	// peer's retrying transport (see store.Transport).
	MaxAttempts       int
	BaseDelay         time.Duration
	MaxDelay          time.Duration
	PerAttemptTimeout time.Duration
	// BreakerThreshold consecutive failures open a peer's breaker for
	// BreakerCooldown (defaults from store.NewBreaker: 5 / 15s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PollInterval is the cadence for polling a forwarded job's status.
	// Default 25ms — cheap against an in-fleet peer, fast enough that
	// forwarding adds negligible latency to a multi-second pipeline run.
	PollInterval time.Duration
}

// Metrics is the cluster instrument set. Nil-safe like store.Metrics.
type Metrics struct {
	// Forward counts forwarding outcomes:
	// cluster_forward_total{peer,outcome} with outcome
	// ok/submit_error/poll_error/remote_failed/cancelled.
	Forward *obs.CounterVec
	// Fallback counts jobs that ran locally after a forward was either
	// impossible or failed: cluster_fallback_local_total{reason}.
	Fallback *obs.CounterVec
	// BreakerState mirrors each peer breaker:
	// cluster_peer_breaker_state{peer} (0 closed / 1 open / 2 half-open).
	BreakerState *obs.GaugeVec
}

// NewMetrics registers the cluster instrument families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Forward:      reg.CounterVec("cluster_forward_total", "peer", "outcome"),
		Fallback:     reg.CounterVec("cluster_fallback_local_total", "reason"),
		BreakerState: reg.GaugeVec("cluster_peer_breaker_state", "peer"),
	}
}

// ForwardOutcome records one forwarding attempt's outcome.
func (m *Metrics) ForwardOutcome(peer, outcome string) {
	if m == nil {
		return
	}
	m.Forward.With(peer, outcome).Inc()
}

// FallbackLocal records a job that degraded to local execution.
func (m *Metrics) FallbackLocal(reason string) {
	if m == nil {
		return
	}
	m.Fallback.With(reason).Inc()
}

func (m *Metrics) breakerGauge(peer string) *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.BreakerState.With(peer)
}

// Cluster is one node's view of the fleet: the ring over all members
// (self included) and a client per remote peer. Membership is static —
// fixed at construction from the -peers flag.
type Cluster struct {
	self  string
	ring  *Ring
	peers map[string]*Peer
	m     *Metrics
	poll  time.Duration
}

// New builds the cluster view for node self with the given remote peers.
// Metrics (and the per-peer breaker gauges) register on reg; a nil reg
// disables them.
func New(self string, specs []PeerSpec, reg *obs.Registry, opts Options) (*Cluster, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: self node name must be non-empty")
	}
	names := []string{self}
	for _, sp := range specs {
		if sp.Name == self {
			return nil, fmt.Errorf("cluster: peer list includes self (%q)", self)
		}
		names = append(names, sp.Name)
	}
	ring, err := NewRing(names)
	if err != nil {
		return nil, err
	}
	m := NewMetrics(reg)
	sm := store.NewMetrics(reg)
	if opts.PollInterval <= 0 {
		opts.PollInterval = 25 * time.Millisecond
	}
	c := &Cluster{self: self, ring: ring, peers: make(map[string]*Peer, len(specs)), m: m, poll: opts.PollInterval}
	for _, sp := range specs {
		br := store.NewBreaker(sp.Name, opts.BreakerThreshold, opts.BreakerCooldown, m.breakerGauge(sp.Name))
		p, err := newPeer(sp.Name, sp.URL, store.HTTPOptions{
			Client:            opts.Client,
			MaxAttempts:       opts.MaxAttempts,
			BaseDelay:         opts.BaseDelay,
			MaxDelay:          opts.MaxDelay,
			PerAttemptTimeout: opts.PerAttemptTimeout,
			Breaker:           br,
			Metrics:           sm,
		})
		if err != nil {
			return nil, err
		}
		c.peers[sp.Name] = p
	}
	return c, nil
}

// Self returns this node's name.
func (c *Cluster) Self() string { return c.self }

// Ring returns the membership ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Metrics returns the cluster instrument set.
func (c *Cluster) Metrics() *Metrics { return c.m }

// PollInterval is the forwarded-job status polling cadence.
func (c *Cluster) PollInterval() time.Duration { return c.poll }

// Owner returns the node owning key on the ring.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Peer returns the client for a remote node, or nil for self / unknown
// names.
func (c *Cluster) Peer(name string) *Peer { return c.peers[name] }

// Peers returns the remote peer clients in name order.
func (c *Cluster) Peers() []*Peer {
	out := make([]*Peer, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
