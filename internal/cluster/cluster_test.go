package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"defectsim/internal/faultinject"
	"defectsim/internal/obs"
	"defectsim/internal/store"
)

func TestParsePeers(t *testing.T) {
	specs, err := ParsePeers(" node-b=http://b:8447 , node-c=http://c:8447 ", "http://a:8447")
	if err != nil {
		t.Fatal(err)
	}
	want := []PeerSpec{{"node-b", "http://b:8447"}, {"node-c", "http://c:8447"}}
	if len(specs) != len(want) {
		t.Fatalf("ParsePeers = %v, want %v", specs, want)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("ParsePeers = %v, want %v", specs, want)
		}
	}
	if specs, err := ParsePeers("", ""); err != nil || specs != nil {
		t.Fatalf("ParsePeers(\"\") = %v, %v, want nil, nil", specs, err)
	}
	for _, bad := range []string{"nourl", "=http://x", "name=", "a=u,a=u"} {
		if _, err := ParsePeers(bad, ""); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

// TestParsePeersRejections pins the validation error messages: duplicate
// names, duplicate addresses (which would silently double-weight vnodes
// on the ring), and a peer entry pointing at this node's own address.
func TestParsePeersRejections(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		selfURL string
		wantErr string
	}{
		{
			name:    "duplicate name",
			in:      "b=http://b:1,b=http://c:1",
			wantErr: `cluster: duplicate peer name "b"`,
		},
		{
			name:    "duplicate address",
			in:      "b=http://shared:1,c=http://shared:1",
			wantErr: `cluster: duplicate peer address "http://shared:1" shared by "b" and "c"`,
		},
		{
			name:    "duplicate address after normalization",
			in:      "b=http://shared:1,c=HTTP://SHARED:1/",
			wantErr: `cluster: duplicate peer address "HTTP://SHARED:1/" shared by "b" and "c"`,
		},
		{
			name:    "self address",
			in:      "b=http://self:8447",
			selfURL: "http://self:8447",
			wantErr: `cluster: peer "b" uses this node's own address "http://self:8447"`,
		},
		{
			name:    "self address after normalization",
			in:      "b=http://SELF:8447/",
			selfURL: "http://self:8447",
			wantErr: `cluster: peer "b" uses this node's own address "http://SELF:8447/"`,
		},
		{
			name:    "bad entry",
			in:      "just-a-name",
			wantErr: `cluster: bad peer entry "just-a-name" (want name=url)`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePeers(tc.in, tc.selfURL)
			if err == nil {
				t.Fatalf("ParsePeers(%q) accepted", tc.in)
			}
			if err.Error() != tc.wantErr {
				t.Fatalf("ParsePeers(%q) error = %q, want %q", tc.in, err, tc.wantErr)
			}
		})
	}
	// Distinct hosts on one port are fine — only true duplicates reject.
	if _, err := ParsePeers("b=http://b:1,c=http://c:1", "http://a:1"); err != nil {
		t.Fatalf("distinct peers rejected: %v", err)
	}
}

func TestNewRejectsSelfInPeerList(t *testing.T) {
	if _, err := New("node-a", []PeerSpec{{"node-a", "http://a"}}, nil, Options{}); err == nil {
		t.Fatal("self in peer list accepted")
	}
	if _, err := New("", nil, nil, Options{}); err == nil {
		t.Fatal("empty self accepted")
	}
}

func TestClusterSingleNodeOwnsAll(t *testing.T) {
	c, err := New("solo", nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Owner(key(1)); got != "solo" {
		t.Fatalf("Owner = %q, want solo", got)
	}
	if c.Peer("solo") != nil || c.Peer("ghost") != nil {
		t.Fatal("Peer returned a client for self/unknown")
	}
}

// fakeNode is a minimal remote dlprojd: the submit/status/cancel routes
// with the serve-layer JSON shapes, plus knobs for failure shaping.
type fakeNode struct {
	submits    atomic.Int64
	cancels    atomic.Int64
	lastReqID  atomic.Value // string
	lastFwd    atomic.Value // string
	shedLeft   atomic.Int64
	statusHits atomic.Int64
	// state served by GET /v1/pipeline/{id}
	state atomic.Value // string
}

func newFakeNode() *fakeNode {
	n := &fakeNode{}
	n.state.Store("done")
	return n
}

func (n *fakeNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/pipeline", func(w http.ResponseWriter, r *http.Request) {
		n.submits.Add(1)
		n.lastReqID.Store(r.Header.Get("X-Request-ID"))
		n.lastFwd.Store(r.Header.Get(ForwardedHeader))
		if n.shedLeft.Load() > 0 {
			n.shedLeft.Add(-1)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]any{"id": "job-1", "state": "queued"})
	})
	mux.HandleFunc("GET /v1/pipeline/{id}", func(w http.ResponseWriter, r *http.Request) {
		n.statusHits.Add(1)
		st := n.state.Load().(string)
		body := map[string]any{"id": r.PathValue("id"), "state": st}
		if st == "failed" {
			body["error"] = map[string]any{"message": "remote stage blew up"}
		}
		_ = json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("POST /v1/pipeline/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		n.cancels.Add(1)
		_ = json.NewEncoder(w).Encode(map[string]any{"id": r.PathValue("id"), "state": "cancelled"})
	})
	return mux
}

func testCluster(t *testing.T, peerURL string) *Cluster {
	t.Helper()
	c, err := New("node-a", []PeerSpec{{"node-b", peerURL}}, obs.New().Metrics(), Options{
		MaxAttempts:       2,
		BaseDelay:         time.Millisecond,
		MaxDelay:          2 * time.Millisecond,
		PerAttemptTimeout: 2 * time.Second,
		BreakerThreshold:  3,
		BreakerCooldown:   50 * time.Millisecond,
		PollInterval:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPeerSubmitStatusCancel(t *testing.T) {
	node := newFakeNode()
	ts := httptest.NewServer(node.handler())
	defer ts.Close()
	c := testCluster(t, ts.URL)
	p := c.Peer("node-b")
	ctx := context.Background()

	js, err := p.Submit(ctx, []byte(`{"circuit":"c17"}`), "req-42")
	if err != nil {
		t.Fatal(err)
	}
	if js.ID != "job-1" || js.State != "queued" || js.Terminal() {
		t.Fatalf("Submit = %+v", js)
	}
	if got := node.lastReqID.Load(); got != "req-42" {
		t.Fatalf("X-Request-ID on forwarded submit = %q, want req-42", got)
	}
	if got := node.lastFwd.Load(); got != "1" {
		t.Fatalf("forwarded marker = %q, want 1", got)
	}

	js, err = p.Status(ctx, "job-1")
	if err != nil || js.State != "done" || !js.Terminal() {
		t.Fatalf("Status = %+v, %v", js, err)
	}
	node.state.Store("failed")
	js, err = p.Status(ctx, "job-1")
	if err != nil || js.State != "failed" || js.Error == nil || js.Error.Message == "" {
		t.Fatalf("failed Status = %+v, %v", js, err)
	}
	if err := p.Cancel(ctx, "job-1"); err != nil || node.cancels.Load() != 1 {
		t.Fatalf("Cancel: %v (%d cancels)", err, node.cancels.Load())
	}
}

func TestPeerSubmitSurfacesShedAsError(t *testing.T) {
	node := newFakeNode()
	ts := httptest.NewServer(node.handler())
	defer ts.Close()
	c := testCluster(t, ts.URL)
	// Both attempts shed: Submit must error (the caller then runs
	// locally) without tripping the breaker — shedding is load, not death.
	node.shedLeft.Store(2)
	p := c.Peer("node-b")
	if _, err := p.Submit(context.Background(), []byte(`{}`), ""); err == nil {
		t.Fatal("Submit against shedding peer succeeded")
	}
	if st := p.Breaker().State(); st != store.BreakerClosed {
		t.Fatalf("breaker after shed = %v, want closed", st)
	}
}

func TestPeerBreakerSharedAcrossJobAndStorePaths(t *testing.T) {
	node := newFakeNode()
	ts := httptest.NewServer(node.handler())
	defer ts.Close()
	c := testCluster(t, ts.URL)
	p := c.Peer("node-b")
	ctx := context.Background()

	// Kill the network under the job path only; with MaxAttempts 2 and
	// threshold 3, two submits open the breaker.
	boom := errors.New("peer dead (injected)")
	restore := faultinject.Set(faultinject.HookNetRequest, faultinject.Fail(boom))
	_, err1 := p.Submit(ctx, []byte(`{}`), "")
	_, err2 := p.Submit(ctx, []byte(`{}`), "")
	restore()
	if err1 == nil || err2 == nil {
		t.Fatalf("submits against dead peer = %v, %v, want errors", err1, err2)
	}
	if st := p.Breaker().State(); st != store.BreakerOpen {
		t.Fatalf("breaker after dead submits = %v, want open", st)
	}
	// The STORE path sees the same open breaker: no request reaches the
	// node, the call fast-fails as unavailable.
	before := node.submits.Load()
	if _, err := p.Store().Get(ctx, key(9)); !store.IsUnavailable(err) {
		t.Fatalf("store Get with open breaker = %v, want breaker-open", err)
	}
	if node.submits.Load() != before {
		t.Fatal("open breaker let a request through")
	}

	// After cooldown the half-open probe (on either path) closes it.
	time.Sleep(60 * time.Millisecond)
	if js, err := p.Submit(ctx, []byte(`{}`), ""); err != nil || js.ID == "" {
		t.Fatalf("probe submit after cooldown = %+v, %v", js, err)
	}
	if st := p.Breaker().State(); st != store.BreakerClosed {
		t.Fatalf("breaker after recovery = %v, want closed", st)
	}
}
