package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// key returns a cache-key-shaped (32 hex) string per index.
func key(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:16])
}

func TestRingDeterministicAcrossOrdering(t *testing.T) {
	a, err := NewRing([]string{"node-a", "node-b", "node-c"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"node-c", "node-a", "node-b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := key(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("ring ownership depends on node ordering: %s vs %s for %s",
				a.Owner(k), b.Owner(k), k)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r, err := NewRing([]string{"node-a", "node-b", "node-c"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[r.Owner(key(i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
	// With 128 vnodes per node the expected share is 1/3; accept a wide
	// band so the test pins "roughly balanced", not a hash accident.
	for node, c := range counts {
		frac := float64(c) / n
		if frac < 0.20 || frac > 0.47 {
			t.Errorf("node %s owns %.1f%% of keys (want roughly a third): %v",
				node, 100*frac, counts)
		}
	}
}

func TestRingMinimalMovementOnNodeRemoval(t *testing.T) {
	before, err := NewRing([]string{"node-a", "node-b", "node-c", "node-d"})
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"node-a", "node-b", "node-c"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8000
	moved := 0
	for i := 0; i < n; i++ {
		k := key(i)
		was, is := before.Owner(k), after.Owner(k)
		if was == "node-d" {
			continue // these keys must move; anywhere is fine
		}
		if was != is {
			moved++
		}
	}
	// Consistent hashing's whole point: removing one of four nodes moves
	// only that node's ~25% share. Keys owned by survivors stay put.
	if moved != 0 {
		t.Fatalf("%d of %d survivor-owned keys changed owner on unrelated node removal", moved, n)
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(key(i)); got != "solo" {
			t.Fatalf("single-node ring routed %s to %q", key(i), got)
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Error("empty node name accepted")
	}
}
