package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// key returns a cache-key-shaped (32 hex) string per index.
func key(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:16])
}

func TestRingDeterministicAcrossOrdering(t *testing.T) {
	a, err := NewRing([]string{"node-a", "node-b", "node-c"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"node-c", "node-a", "node-b"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := key(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("ring ownership depends on node ordering: %s vs %s for %s",
				a.Owner(k), b.Owner(k), k)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	// Several realistic name shapes: without the avalanche finalizer on
	// the vnode hash, short sequential names ("n0", "n1", …) gave one
	// node ~57% of the keyspace — the band below would have caught it
	// only for the lucky "node-a" spelling. Keep the band tight enough
	// that a mixing regression fails for every shape.
	for _, nodes := range [][]string{
		{"node-a", "node-b", "node-c"},
		{"n0", "n1", "n2"},
		{"node-0", "node-1", "node-2"},
	} {
		r, err := NewRing(nodes)
		if err != nil {
			t.Fatal(err)
		}
		const n = 12000
		counts := map[string]int{}
		for i := 0; i < n; i++ {
			counts[r.Owner(key(i))]++
		}
		if len(counts) != 3 {
			t.Fatalf("%v: only %d of 3 nodes own keys: %v", nodes, len(counts), counts)
		}
		// With 128 vnodes per node the expected share is 1/3 with
		// low-single-digit-percent standard deviation.
		for node, c := range counts {
			frac := float64(c) / n
			if frac < 0.26 || frac > 0.41 {
				t.Errorf("node %s owns %.1f%% of keys (want roughly a third): %v",
					node, 100*frac, counts)
			}
		}
	}
}

func TestRingMinimalMovementOnNodeRemoval(t *testing.T) {
	before, err := NewRing([]string{"node-a", "node-b", "node-c", "node-d"})
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"node-a", "node-b", "node-c"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8000
	moved := 0
	for i := 0; i < n; i++ {
		k := key(i)
		was, is := before.Owner(k), after.Owner(k)
		if was == "node-d" {
			continue // these keys must move; anywhere is fine
		}
		if was != is {
			moved++
		}
	}
	// Consistent hashing's whole point: removing one of four nodes moves
	// only that node's ~25% share. Keys owned by survivors stay put.
	if moved != 0 {
		t.Fatalf("%d of %d survivor-owned keys changed owner on unrelated node removal", moved, n)
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(key(i)); got != "solo" {
			t.Fatalf("single-node ring routed %s to %q", key(i), got)
		}
	}
}

func TestOwnersForProperties(t *testing.T) {
	r, err := NewRing([]string{"node-a", "node-b", "node-c", "node-d"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		k := key(i)
		owners := r.OwnersFor(k, 2)
		if len(owners) != 2 {
			t.Fatalf("OwnersFor(%s, 2) = %v, want 2 owners", k, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("OwnersFor(%s, 2) repeated a node: %v", k, owners)
		}
		// The primary is exactly the single-owner answer: replication never
		// changes who computes, only who also stores.
		if owners[0] != r.Owner(k) {
			t.Fatalf("OwnersFor(%s)[0] = %s, Owner = %s", k, owners[0], r.Owner(k))
		}
		// rf=1 degenerates to the primary alone.
		if one := r.OwnersFor(k, 1); len(one) != 1 || one[0] != owners[0] {
			t.Fatalf("OwnersFor(%s, 1) = %v, want [%s]", k, one, owners[0])
		}
		// Growing rf extends the set without reordering the prefix.
		three := r.OwnersFor(k, 3)
		if len(three) != 3 || three[0] != owners[0] || three[1] != owners[1] {
			t.Fatalf("OwnersFor(%s, 3) = %v does not extend %v", k, three, owners)
		}
	}
}

func TestOwnersForClamping(t *testing.T) {
	r, err := NewRing([]string{"node-a", "node-b"})
	if err != nil {
		t.Fatal(err)
	}
	k := key(1)
	// rf above the member count saturates at every node, each exactly once.
	all := r.OwnersFor(k, 99)
	if len(all) != 2 || all[0] == all[1] {
		t.Fatalf("OwnersFor(rf=99) on 2 nodes = %v", all)
	}
	// rf <= 0 clamps to the primary.
	if got := r.OwnersFor(k, 0); len(got) != 1 || got[0] != r.Owner(k) {
		t.Fatalf("OwnersFor(rf=0) = %v, want [%s]", got, r.Owner(k))
	}
	if got := r.OwnersFor(k, -5); len(got) != 1 {
		t.Fatalf("OwnersFor(rf=-5) = %v, want one owner", got)
	}
}

// TestOwnersForDeterministicAcrossOrdering pins the coordination-free
// property replication relies on: every node derives the same ordered
// replica set from the same member set, however the peers were listed.
func TestOwnersForDeterministicAcrossOrdering(t *testing.T) {
	a, err := NewRing([]string{"node-a", "node-b", "node-c"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"node-c", "node-b", "node-a"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := key(i)
		oa, ob := a.OwnersFor(k, 2), b.OwnersFor(k, 2)
		if len(oa) != len(ob) || oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("replica set depends on node ordering: %v vs %v for %s", oa, ob, k)
		}
	}
}

// TestOwnersForStableUnderUnrelatedRemoval extends the minimal-movement
// guarantee to replica sets: removing a node only disturbs the replica
// sets it belonged to.
func TestOwnersForStableUnderUnrelatedRemoval(t *testing.T) {
	before, err := NewRing([]string{"node-a", "node-b", "node-c", "node-d"})
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"node-a", "node-b", "node-c"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		k := key(i)
		was := before.OwnersFor(k, 2)
		if was[0] == "node-d" || was[1] == "node-d" {
			continue // the departed node's sets must change; anything goes
		}
		is := after.OwnersFor(k, 2)
		if was[0] != is[0] || was[1] != is[1] {
			t.Fatalf("replica set for %s moved from %v to %v on unrelated removal", k, was, is)
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Error("empty node name accepted")
	}
}
