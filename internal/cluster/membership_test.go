package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"defectsim/internal/faultinject"
	"defectsim/internal/obs"
	"defectsim/internal/store"
)

func TestParsePeersFile(t *testing.T) {
	// A fleet-shared file: every node lists every member, including this
	// one ("node-a") — the self entry is skipped, not an error.
	data := []byte(`# fleet membership
node-a = http://a:8447
node-b = http://b:8447
node-c=http://c:8447   # trailing comment

node-d=http://d:8447
`)
	specs, err := ParsePeersFile(data, "node-a", "http://a:8447")
	if err != nil {
		t.Fatal(err)
	}
	want := []PeerSpec{
		{"node-b", "http://b:8447"},
		{"node-c", "http://c:8447"},
		{"node-d", "http://d:8447"},
	}
	if len(specs) != len(want) {
		t.Fatalf("ParsePeersFile = %v, want %v", specs, want)
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Fatalf("ParsePeersFile = %v, want %v", specs, want)
		}
	}
	// An empty (or comment-only) file is a valid single-node membership.
	if specs, err := ParsePeersFile([]byte("# nobody\n\n"), "", ""); err != nil || specs != nil {
		t.Fatalf("comment-only file = %v, %v, want nil, nil", specs, err)
	}
}

// TestParsePeersFileErrors pins the line numbers and messages operators
// see when a hand-edited peers file is wrong.
func TestParsePeersFileErrors(t *testing.T) {
	cases := []struct {
		name     string
		in       string
		selfName string
		selfURL  string
		wantErr  string
	}{
		{
			name:    "bad entry with line number",
			in:      "node-b=http://b:1\njust-a-name\n",
			wantErr: `cluster: peers file line 2: bad entry "just-a-name" (want name=url)`,
		},
		{
			name:    "duplicate name with line number",
			in:      "b=http://b:1\n\nb=http://c:1\n",
			wantErr: `cluster: peers file line 3: duplicate peer name "b"`,
		},
		{
			name:    "duplicate address",
			in:      "b=http://shared:1\nc=HTTP://shared:1/\n",
			wantErr: `cluster: peers file line 2: duplicate peer address "HTTP://shared:1/" shared by "b" and "c"`,
		},
		{
			// Only the *self* entry may use the self address; a different
			// name claiming it is a misconfigured fleet.
			name:     "other peer claims self address",
			in:       "a=http://self:8447\nb=http://self:8447/\n",
			selfName: "a",
			selfURL:  "http://self:8447",
			wantErr:  `cluster: peers file line 2: peer "b" uses this node's own address "http://self:8447/"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePeersFile([]byte(tc.in), tc.selfName, tc.selfURL)
			if err == nil {
				t.Fatalf("ParsePeersFile(%q) accepted", tc.in)
			}
			if err.Error() != tc.wantErr {
				t.Fatalf("error = %q, want %q", err, tc.wantErr)
			}
		})
	}
}

// FuzzParsePeersFile fuzzes the peers-file parser: it must never panic,
// and any accepted membership must be internally consistent — unique
// names, unique normalized addresses, never the self name or address.
func FuzzParsePeersFile(f *testing.F) {
	f.Add([]byte("node-b=http://b:8447\nnode-c=http://c:8447\n"), "node-a", "http://a:8447")
	f.Add([]byte("node-a=http://a:8447\nnode-b=http://b:8447\n"), "node-a", "http://a:8447")
	f.Add([]byte("# comment\nn=http://x:1 # trailing\n\n"), "", "")
	f.Add([]byte("b=http://shared:1\nc=HTTP://SHARED:1/\n"), "", "")
	f.Add([]byte("b=http://self:8447/"), "a", "http://self:8447")
	f.Add([]byte("just-a-name\n"), "", "")
	f.Add([]byte("=http://x\nname=\n"), "", "")
	f.Add([]byte(" b = http://b:1 \r\n"), "", "")
	f.Add([]byte("a=u,a=u"), "", "")
	f.Fuzz(func(t *testing.T, data []byte, selfName, selfURL string) {
		specs, err := ParsePeersFile(data, selfName, selfURL)
		if err != nil {
			return
		}
		names := map[string]bool{}
		addrs := map[string]bool{}
		for _, sp := range specs {
			if sp.Name == "" || sp.URL == "" {
				t.Fatalf("accepted empty name or url: %+v", sp)
			}
			if selfName != "" && sp.Name == selfName {
				t.Fatalf("accepted self entry %q", sp.Name)
			}
			if names[sp.Name] {
				t.Fatalf("accepted duplicate name %q", sp.Name)
			}
			names[sp.Name] = true
			addr := normalizeAddr(sp.URL)
			if addrs[addr] {
				t.Fatalf("accepted duplicate address %q", sp.URL)
			}
			addrs[addr] = true
			if selfURL != "" && addr == normalizeAddr(selfURL) {
				t.Fatalf("accepted self address %q", sp.URL)
			}
		}
	})
}

func reloadCounters(t *testing.T, reg *obs.Registry) (ok, errs, joins, leaves int64) {
	t.Helper()
	rel := reg.CounterVec("cluster_membership_reloads_total", "outcome")
	chg := reg.CounterVec("cluster_membership_changes_total", "change")
	return rel.With("ok").Value(), rel.With("error").Value(),
		chg.With("join").Value(), chg.With("leave").Value()
}

func TestClusterReloadJoinLeave(t *testing.T) {
	reg := obs.New().Metrics()
	c, err := New("node-a", []PeerSpec{{"node-b", "http://b:1"}}, reg, Options{RF: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("cluster_membership_nodes").Value(); got != 2 {
		t.Fatalf("initial cluster_membership_nodes = %v, want 2", got)
	}

	// Join node-c, keep node-b.
	joined, left, err := c.Reload([]PeerSpec{{"node-b", "http://b:1"}, {"node-c", "http://c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 1 || joined[0] != "node-c" || len(left) != 0 {
		t.Fatalf("Reload join = %v / %v, want [node-c] / []", joined, left)
	}
	if got := c.Ring().Len(); got != 3 {
		t.Fatalf("ring after join has %d nodes, want 3", got)
	}
	if c.Peer("node-c") == nil {
		t.Fatal("joined peer has no client")
	}

	// Leave node-b.
	joined, left, err = c.Reload([]PeerSpec{{"node-c", "http://c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 0 || len(left) != 1 || left[0] != "node-b" {
		t.Fatalf("Reload leave = %v / %v, want [] / [node-b]", joined, left)
	}
	if c.Peer("node-b") != nil {
		t.Fatal("departed peer still has a client")
	}
	if c.ReplicaStore("node-b") != nil {
		t.Fatal("departed peer still has a replica store")
	}

	ok, errs, joins, leaves := reloadCounters(t, reg)
	if ok != 2 || errs != 0 || joins != 1 || leaves != 1 {
		t.Fatalf("reload counters ok=%d err=%d join=%d leave=%d, want 2/0/1/1", ok, errs, joins, leaves)
	}
	if got := reg.Gauge("cluster_membership_epoch").Value(); got != 2 {
		t.Fatalf("cluster_membership_epoch = %v, want 2", got)
	}
	if got := reg.Gauge("cluster_membership_nodes").Value(); got != 2 {
		t.Fatalf("cluster_membership_nodes after leave = %v, want 2", got)
	}

	// A reload listing self must fail and leave the view untouched.
	if _, _, err := c.Reload([]PeerSpec{{"node-a", "http://a:1"}}); err == nil {
		t.Fatal("reload with self in peer list accepted")
	}
	if got := c.Ring().Len(); got != 2 {
		t.Fatalf("failed reload changed the ring: %d nodes", got)
	}
	if _, errs2, _, _ := reloadCounters(t, reg); errs2 != 1 {
		t.Fatalf("cluster_membership_reloads_total{error} = %d, want 1", errs2)
	}
}

// TestClusterReloadPreservesPeerState pins the carry-over contract: a
// reload that keeps a peer (same name, same address) keeps its client —
// breaker state and all — so a membership change elsewhere in the fleet
// does not reset failure accounting for healthy or dead peers.
func TestClusterReloadPreservesPeerState(t *testing.T) {
	node := newFakeNode()
	ts := httptest.NewServer(node.handler())
	defer ts.Close()
	c := testCluster(t, ts.URL)
	p := c.Peer("node-b")

	// Open node-b's breaker at the transport.
	restore := faultinject.Set(faultinject.HookNetRequest, faultinject.Fail(errors.New("injected: down")))
	for i := 0; i < 2; i++ {
		_, _ = p.Submit(context.Background(), []byte(`{}`), "")
	}
	restore()
	if st := p.Breaker().State(); st != store.BreakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}

	// Reload keeping node-b and adding node-c: node-b's client (and its
	// open breaker) must survive the swap.
	joined, _, err := c.Reload([]PeerSpec{{"node-b", ts.URL}, {"node-c", "http://c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 1 || joined[0] != "node-c" {
		t.Fatalf("joined = %v, want [node-c]", joined)
	}
	if got := c.Peer("node-b"); got != p {
		t.Fatal("reload rebuilt the unchanged peer's client")
	}
	if st := c.Peer("node-b").Breaker().State(); st != store.BreakerOpen {
		t.Fatalf("breaker after reload = %v, want still open", st)
	}

	// Same name at a NEW address is a different process: the client is
	// rebuilt and the breaker starts closed.
	ts2 := httptest.NewServer(node.handler())
	defer ts2.Close()
	joined, left, err := c.Reload([]PeerSpec{{"node-b", ts2.URL}, {"node-c", "http://c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	// A move is neither a join nor a leave.
	if len(joined) != 0 || len(left) != 0 {
		t.Fatalf("moved peer reported as join/leave: %v / %v", joined, left)
	}
	if got := c.Peer("node-b"); got == p {
		t.Fatal("reload kept the old client across an address change")
	}
	if st := c.Peer("node-b").Breaker().State(); st != store.BreakerClosed {
		t.Fatalf("breaker after address change = %v, want closed (fresh client)", st)
	}
}

// TestClusterReloadingWindow drives the mid-swap state through the
// membership-reload hook: while a reload is held between view build and
// swap, Reloading() reports true (the /readyz 503 window) and in-flight
// lookups still resolve against the old view.
func TestClusterReloadingWindow(t *testing.T) {
	c, err := New("node-a", []PeerSpec{{"node-b", "http://b:1"}}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	entered := make(chan struct{})
	restore := faultinject.Set(faultinject.HookMembershipReload, func(context.Context) error {
		close(entered)
		<-hold
		return nil
	})
	defer restore()

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Reload([]PeerSpec{{"node-b", "http://b:1"}, {"node-c", "http://c:1"}})
		done <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("reload never reached the swap window")
	}
	if !c.Reloading() {
		t.Fatal("Reloading() = false mid-swap")
	}
	// The old view still serves lookups while the swap is held.
	if got := c.Ring().Len(); got != 2 {
		t.Fatalf("mid-swap ring has %d nodes, want old view's 2", got)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("reload: %v", err)
	}
	if c.Reloading() {
		t.Fatal("Reloading() = true after swap finished")
	}
	if got := c.Ring().Len(); got != 3 {
		t.Fatalf("post-swap ring has %d nodes, want 3", got)
	}

	// An injected error in the window aborts the swap: old view stays.
	restore2 := faultinject.Set(faultinject.HookMembershipReload,
		faultinject.Fail(errors.New("injected: reload aborted")))
	defer restore2()
	if _, _, err := c.Reload(nil); err == nil {
		t.Fatal("aborted reload reported success")
	}
	if got := c.Ring().Len(); got != 3 {
		t.Fatalf("aborted reload changed the ring: %d nodes", got)
	}
}

func TestMembershipReloadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peers.conf")
	writeFile := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("node-b=http://b:1\n")
	reg := obs.New().Metrics()
	c, err := New("node-a", []PeerSpec{{"node-b", "http://b:1"}}, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMembership(c, path, "http://a:1")
	if m.Path() != path {
		t.Fatalf("Path = %q, want %q", m.Path(), path)
	}

	// Rewrite the file with a new member and reload. The fleet-shared
	// form lists this node too; its own entry is skipped.
	writeFile("node-a=http://a:1\nnode-b=http://b:1\nnode-c=http://c:1 # fresh capacity\n")
	ch, err := m.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Joined) != 1 || ch.Joined[0] != "node-c" || len(ch.Left) != 0 {
		t.Fatalf("change = %+v, want joined [node-c]", ch)
	}
	wantNodes := []string{"node-a", "node-b", "node-c"}
	if len(ch.Nodes) != len(wantNodes) {
		t.Fatalf("change nodes = %v, want %v", ch.Nodes, wantNodes)
	}
	for i := range wantNodes {
		if ch.Nodes[i] != wantNodes[i] {
			t.Fatalf("change nodes = %v, want %v", ch.Nodes, wantNodes)
		}
	}

	// A half-written (invalid) file must not take the view down.
	writeFile("node-b=http://b:1\ngarbage line\n")
	if _, err := m.Reload(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("invalid file reload = %v, want line-2 parse error", err)
	}
	if got := c.Ring().Len(); got != 3 {
		t.Fatalf("failed file reload changed the ring: %d nodes", got)
	}

	// A missing file is an error, counted, view untouched.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reload(); err == nil {
		t.Fatal("reload with missing peers file succeeded")
	}
	if got := c.Ring().Len(); got != 3 {
		t.Fatalf("missing-file reload changed the ring: %d nodes", got)
	}
	if _, errs, _, _ := reloadCounters(t, reg); errs != 2 {
		t.Fatalf("cluster_membership_reloads_total{error} = %d, want 2", errs)
	}
}

// TestClusterOnPeerRecovered pins the hinted-handoff wake contract: the
// registered callback fires (with the peer's name) when a breaker
// transitions to closed, and must be callable from under the breaker's
// own lock — the test's channel send is non-blocking, mirroring the
// serve layer's poke.
func TestClusterOnPeerRecovered(t *testing.T) {
	node := newFakeNode()
	ts := httptest.NewServer(node.handler())
	defer ts.Close()
	c := testCluster(t, ts.URL)
	recovered := make(chan string, 4)
	c.SetOnPeerRecovered(func(peer string) {
		select {
		case recovered <- peer:
		default:
		}
	})
	p := c.Peer("node-b")
	ctx := context.Background()

	restore := faultinject.Set(faultinject.HookNetRequest, faultinject.Fail(errors.New("injected: down")))
	for i := 0; i < 2; i++ {
		_, _ = p.Submit(ctx, []byte(`{}`), "")
	}
	restore()
	if st := p.Breaker().State(); st != store.BreakerOpen {
		t.Fatalf("breaker = %v, want open", st)
	}
	select {
	case peer := <-recovered:
		t.Fatalf("recovery callback fired while peer down: %q", peer)
	default:
	}

	// Cooldown, then a successful probe closes the breaker → callback.
	time.Sleep(60 * time.Millisecond)
	if _, err := p.Submit(ctx, []byte(`{}`), ""); err != nil {
		t.Fatalf("probe submit: %v", err)
	}
	select {
	case peer := <-recovered:
		if peer != "node-b" {
			t.Fatalf("recovered peer = %q, want node-b", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recovery callback never fired")
	}
}
