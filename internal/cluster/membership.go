package cluster

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// ParsePeersFile parses a peers file: one name=url entry per line, blank
// lines and '#' comments (full-line or trailing) ignored. An entry whose
// name is selfName is skipped — the same file can be shared by the whole
// fleet, each node ignoring its own line (whatever address it advertises
// there is for the *other* nodes to use). Validation otherwise matches
// ParsePeers — duplicate names, duplicate addresses, and a different
// name claiming selfURL are rejected — with the offending line number in
// the error.
func ParsePeersFile(data []byte, selfName, selfURL string) ([]PeerSpec, error) {
	var specs []PeerSpec
	names := map[string]bool{}
	addrs := map[string]string{}
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		name, url, ok := strings.Cut(line, "=")
		name, url = strings.TrimSpace(name), strings.TrimSpace(url)
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("cluster: peers file line %d: bad entry %q (want name=url)", i+1, line)
		}
		if selfName != "" && name == selfName {
			continue
		}
		var err error
		if specs, err = appendPeer(specs, names, addrs, name, url, selfURL); err != nil {
			return nil, fmt.Errorf("cluster: peers file line %d: %w", i+1, err)
		}
	}
	return specs, nil
}

// MembershipChange summarizes one applied reload: which nodes joined,
// which left, and the resulting member set (self included, sorted).
type MembershipChange struct {
	Joined []string `json:"joined,omitempty"`
	Left   []string `json:"left,omitempty"`
	Nodes  []string `json:"nodes"`
}

// Membership is a file-backed membership source: a peers file re-read on
// demand — SIGHUP or POST /v1/cluster/reload — and swapped into the
// cluster atomically. The file is the fleet's source of truth; the
// daemon never mutates it. A reload that fails to parse or validate
// leaves the current ring untouched, so a half-written peers file can
// not take a node's view down.
type Membership struct {
	c       *Cluster
	path    string
	selfURL string
	mu      sync.Mutex
}

// NewMembership binds cluster c to the peers file at path. selfURL is
// passed through to ParsePeersFile so a rewritten file in which some
// *other* node claims this node's address is rejected rather than
// applied; the cluster's own name identifies (and skips) the self entry.
func NewMembership(c *Cluster, path, selfURL string) *Membership {
	return &Membership{c: c, path: path, selfURL: selfURL}
}

// Path returns the peers file path.
func (m *Membership) Path() string { return m.path }

// Reload re-reads the peers file and swaps the cluster's membership.
// Serialized: concurrent reload triggers (SIGHUP racing the HTTP
// endpoint) apply one at a time, each against the freshly read file.
func (m *Membership) Reload() (MembershipChange, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, err := os.ReadFile(m.path)
	if err != nil {
		m.c.m.reload("error")
		return MembershipChange{}, fmt.Errorf("cluster: read peers file: %w", err)
	}
	specs, err := ParsePeersFile(data, m.c.Self(), m.selfURL)
	if err != nil {
		m.c.m.reload("error")
		return MembershipChange{}, err
	}
	joined, left, err := m.c.Reload(specs)
	if err != nil {
		return MembershipChange{}, err
	}
	return MembershipChange{Joined: joined, Left: left, Nodes: m.c.Ring().Nodes()}, nil
}
