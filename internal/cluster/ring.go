// Package cluster partitions the pipeline keyspace across a static set
// of dlprojd nodes. A consistent-hash ring maps each cache key
// (experiments.CacheKey) to exactly one owner node; the serving layer
// forwards non-owned submissions to the owner so the fleet computes each
// distinct experiment once, and falls back to running locally whenever
// the owner is unreachable — the ring buys locality and deduplication,
// never availability.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the virtual-node fan-out. 128 points per node keeps
// the expected keyspace imbalance in the low single-digit percents for
// small static fleets (3–16 nodes) at negligible memory cost.
const vnodesPerNode = 128

// ringPoint is one virtual node: a hash position owned by a node.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node names.
// Lookups are lock-free; build a new Ring to change membership.
type Ring struct {
	points []ringPoint
	nodes  []string
}

// NewRing builds a ring over the given node names. Names must be
// non-empty and unique; order does not matter (the ring is a pure
// function of the name set, so every node in a fleet derives the same
// ring from the same -peers list regardless of ordering).
func NewRing(nodes []string) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		points: make([]ringPoint, 0, len(nodes)*vnodesPerNode),
		nodes:  make([]string, 0, len(nodes)),
	}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so equal hashes (vanishingly rare) still give
		// every node the same deterministic ring.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash64 is FNV-1a over the string — fast, dependency-free, and stable
// across platforms and process restarts (required: every node must agree
// on ownership without coordination).
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Owner returns the node owning key: the first virtual node clockwise
// from the key's hash position.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the ring
	}
	return r.points[i].node
}

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }
