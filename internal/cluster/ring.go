// Package cluster partitions the pipeline keyspace across a static set
// of dlprojd nodes. A consistent-hash ring maps each cache key
// (experiments.CacheKey) to exactly one owner node; the serving layer
// forwards non-owned submissions to the owner so the fleet computes each
// distinct experiment once, and falls back to running locally whenever
// the owner is unreachable — the ring buys locality and deduplication,
// never availability.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the virtual-node fan-out. 128 points per node keeps
// the expected keyspace imbalance in the low single-digit percents for
// small static fleets (3–16 nodes) at negligible memory cost.
const vnodesPerNode = 128

// ringPoint is one virtual node: a hash position owned by a node.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node names.
// Lookups are lock-free; build a new Ring to change membership.
type Ring struct {
	points []ringPoint
	nodes  []string
}

// NewRing builds a ring over the given node names. Names must be
// non-empty and unique; order does not matter (the ring is a pure
// function of the name set, so every node in a fleet derives the same
// ring from the same -peers list regardless of ordering).
func NewRing(nodes []string) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		points: make([]ringPoint, 0, len(nodes)*vnodesPerNode),
		nodes:  make([]string, 0, len(nodes)),
	}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n)
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so equal hashes (vanishingly rare) still give
		// every node the same deterministic ring.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash64 is FNV-1a over the string, passed through a 64-bit avalanche
// finalizer (the murmur3 fmix64 constants). Raw FNV-1a is stable and
// dependency-free but mixes poorly on the short, near-identical strings
// vnode labels are ("n0#0", "n0#1", …): without the finalizer a 3-node
// ring at 128 vnodes/node gave one node ~57% of the keyspace. The
// finalizer flips every output bit with ~50% probability per input bit,
// restoring the low-single-digit-percent balance the vnode count is
// sized for. Stable across platforms and process restarts (required:
// every node must agree on ownership without coordination).
func hash64(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the node owning key: the first virtual node clockwise
// from the key's hash position.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the ring
	}
	return r.points[i].node
}

// OwnersFor returns the ordered replica set for key: the first rf
// DISTINCT nodes encountered walking clockwise from the key's hash
// position. owners[0] is the primary (identical to Owner(key)); the tail
// entries are the replicas, ranked by ring distance. Because the walk is
// a pure function of the sorted point set, every member derives the same
// replica set in the same order from the same membership, regardless of
// the order nodes were listed in. rf is clamped to [1, Len()].
func (r *Ring) OwnersFor(key string, rf int) []string {
	if rf < 1 {
		rf = 1
	}
	if rf > len(r.nodes) {
		rf = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, rf)
	for n := 0; n < len(r.points) && len(owners) < rf; n++ {
		node := r.points[(start+n)%len(r.points)].node
		dup := false
		for _, o := range owners {
			if o == node {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, node)
		}
	}
	return owners
}

// Nodes returns the member names in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }
