package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"defectsim/internal/store"
)

// ForwardedHeader marks a forwarded submission so the receiving node
// runs it locally instead of consulting the ring again — the anti-loop
// guard when two nodes disagree about ownership mid-reconfiguration.
const ForwardedHeader = "X-Dlproj-Forwarded"

// JobStatus is the subset of a peer's job-status JSON the forwarding
// path needs: identity, lifecycle state, and the failure message when
// the remote run failed.
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Degraded bool   `json:"degraded,omitempty"`
	Error    *struct {
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// Terminal reports whether the remote job reached a final state.
func (js JobStatus) Terminal() bool {
	switch js.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// Peer is the client side of one remote dlprojd node: a job-submission
// API and a remote store view sharing one hardened transport, so a
// single circuit breaker sees failures on either path — a node that
// times out serving blobs is also not a node to forward work to.
type Peer struct {
	name string
	base string
	st   *store.HTTP
	tr   *store.Transport
}

// newPeer builds the client for one remote node. The breaker (created by
// the cluster with the peer-labeled gauge) is shared between the store
// view and the job API via the single transport.
func newPeer(name, baseURL string, opts store.HTTPOptions) (*Peer, error) {
	st, err := store.NewHTTP(baseURL, opts)
	if err != nil {
		return nil, fmt.Errorf("cluster: peer %s: %w", name, err)
	}
	return &Peer{name: name, base: st.Base(), st: st, tr: st.Transport()}, nil
}

// Name returns the peer's node name.
func (p *Peer) Name() string { return p.name }

// Store returns the peer's remote store view.
func (p *Peer) Store() store.Store { return p.st }

// Breaker returns the circuit breaker shared by the peer's store and job
// clients.
func (p *Peer) Breaker() *store.Breaker { return p.tr.Breaker }

// Submit forwards a validated pipeline request body to the peer. The
// request ID propagates so the remote node's access log and events
// correlate with the originating submission; the forwarded marker stops
// the remote node from re-routing. Shed (429) and draining (503)
// responses surface as errors — the caller's cue to run locally.
func (p *Peer) Submit(ctx context.Context, body []byte, requestID string) (JobStatus, error) {
	status, _, resBody, err := p.tr.Do(ctx, func(ctx context.Context) (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/v1/pipeline", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardedHeader, "1")
		if requestID != "" {
			req.Header.Set("X-Request-ID", requestID)
		}
		return req, nil
	})
	if err != nil {
		return JobStatus{}, err
	}
	if status != http.StatusAccepted && status != http.StatusOK {
		return JobStatus{}, fmt.Errorf("cluster: peer %s submit: status %d", p.name, status)
	}
	var js JobStatus
	if err := json.Unmarshal(resBody, &js); err != nil {
		return JobStatus{}, fmt.Errorf("cluster: peer %s submit: bad response: %w", p.name, err)
	}
	if js.ID == "" {
		return JobStatus{}, fmt.Errorf("cluster: peer %s submit: response without job id", p.name)
	}
	return js, nil
}

// Status polls the peer for a job's state.
func (p *Peer) Status(ctx context.Context, id string) (JobStatus, error) {
	status, _, resBody, err := p.tr.Do(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/v1/pipeline/"+id, nil)
	})
	if err != nil {
		return JobStatus{}, err
	}
	if status != http.StatusOK {
		return JobStatus{}, fmt.Errorf("cluster: peer %s status %s: status %d", p.name, id, status)
	}
	var js JobStatus
	if err := json.Unmarshal(resBody, &js); err != nil {
		return JobStatus{}, fmt.Errorf("cluster: peer %s status %s: bad response: %w", p.name, id, err)
	}
	return js, nil
}

// Cancel asks the peer to cancel a job — best effort during fallback;
// the caller does not depend on the outcome.
func (p *Peer) Cancel(ctx context.Context, id string) error {
	status, _, _, err := p.tr.Do(ctx, func(ctx context.Context) (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/v1/pipeline/"+id+"/cancel", nil)
	})
	if err != nil {
		return err
	}
	if status != http.StatusOK && status != http.StatusNotFound {
		return fmt.Errorf("cluster: peer %s cancel %s: status %d", p.name, id, status)
	}
	return nil
}
