package netlist

import (
	"fmt"
	"math/rand"
	"strings"
)

// BenchmarkNames lists the named benchmark circuits ByName accepts, in
// presentation order — the single source of truth shared by the dlproj
// -circuit flag and the serving layer's request decoder.
var BenchmarkNames = []string{"c432", "c17", "adder", "mux", "parity", "cmp", "dec", "random"}

// ByName resolves a benchmark circuit by its short name (case-insensitive;
// see BenchmarkNames). seed parameterizes the seeded generators (c432,
// random) and is ignored by the fixed circuits.
func ByName(name string, seed int64) (*Netlist, error) {
	switch strings.ToLower(name) {
	case "c432":
		return C432Class(seed), nil
	case "c17":
		return C17(), nil
	case "adder":
		return RippleAdder(8), nil
	case "mux":
		return MuxTree(3), nil
	case "parity":
		return ParityTree(12), nil
	case "cmp":
		return Comparator(8), nil
	case "dec":
		return Decoder(3), nil
	case "random":
		return RandomCircuit("random", seed, 24, 6, 100), nil
	}
	return nil, fmt.Errorf("unknown circuit %q (known: %s)", name, strings.Join(BenchmarkNames, ", "))
}

// C432Class returns a deterministic synthetic benchmark with the structural
// profile of the ISCAS-85 c432 circuit used in the paper: 36 primary inputs,
// 7 primary outputs, on the order of 160 gates dominated by NAND/NOT with a
// sprinkling of NOR/AND/XOR, and a logic depth in the high teens.
//
// The exact c432 netlist is not reproduced (see DESIGN.md, substitutions);
// the experiments only require a mid-size combinational standard-cell
// circuit, and the generator is seeded so that every run of the pipeline
// sees the identical circuit.
func C432Class(seed int64) *Netlist {
	return randomCircuit(fmt.Sprintf("c432class-%d", seed), seed, 36, 7, 140, []gateWeight{
		{Nand, 48}, {Not, 22}, {Nor, 12}, {And, 4}, {Or, 4}, {Xor, 10},
	})
}

// RandomCircuit returns a seeded random combinational circuit with the given
// numbers of primary inputs and outputs and approximately bodyGates internal
// gates (plus the gates of the output-combining trees).
func RandomCircuit(name string, seed int64, pis, pos, bodyGates int) *Netlist {
	return randomCircuit(name, seed, pis, pos, bodyGates, []gateWeight{
		{Nand, 40}, {Not, 15}, {Nor, 15}, {And, 8}, {Or, 8}, {Xor, 14},
	})
}

type gateWeight struct {
	t GateType
	w int
}

func randomCircuit(name string, seed int64, pis, pos, bodyGates int, weights []gateWeight) *Netlist {
	rng := rand.New(rand.NewSource(seed))
	n := New(name)
	for i := 0; i < pis; i++ {
		n.AddPI(fmt.Sprintf("I%d", i+1))
	}
	total := 0
	for _, gw := range weights {
		total += gw.w
	}
	pick := func() GateType {
		r := rng.Intn(total)
		for _, gw := range weights {
			if r < gw.w {
				return gw.t
			}
			r -= gw.w
		}
		return weights[len(weights)-1].t
	}
	// nets eligible as gate inputs, newest last; picking with a recency bias
	// builds depth while keeping early nets reachable.
	avail := append([]int(nil), n.PIs...)
	pickNet := func() int {
		// Triangular bias toward recent nets.
		i := rng.Intn(len(avail))
		j := rng.Intn(len(avail))
		if j > i {
			i = j
		}
		return avail[i]
	}
	for g := 0; g < bodyGates; g++ {
		t := pick()
		var inputs []int
		if t == Buf || t == Not {
			inputs = []int{pickNet()}
		} else {
			k := 2
			if t != Xor && t != Xnor && rng.Intn(4) == 0 {
				k = 3 // occasional 3-input gate, as in standard-cell libraries
			}
			seen := map[int]bool{}
			for len(inputs) < k {
				x := pickNet()
				if !seen[x] {
					seen[x] = true
					inputs = append(inputs, x)
				}
				if len(seen) == len(avail) {
					break
				}
			}
			if len(inputs) < 2 {
				t, inputs = Not, inputs[:1]
			}
		}
		out := n.AddGate(t, fmt.Sprintf("N%d", n.NumNets()+1), inputs...)
		avail = append(avail, out)
	}
	// Combine all dangling nets into pos output trees so nothing is
	// unobservable: deal the dangling nets round-robin into pos buckets and
	// reduce each bucket with 2-input gates.
	dangling := n.DanglingNets()
	buckets := make([][]int, pos)
	for i, d := range dangling {
		buckets[i%pos] = append(buckets[i%pos], d)
	}
	reduceTypes := []GateType{Nand, Xor, Nor, Nand}
	for b := range buckets {
		for len(buckets[b]) == 0 {
			// Bucket starved (fewer dangling nets than outputs): seed from a
			// random internal net.
			buckets[b] = append(buckets[b], avail[rng.Intn(len(avail))])
		}
		for len(buckets[b]) > 1 {
			t := reduceTypes[rng.Intn(len(reduceTypes))]
			a, c := buckets[b][0], buckets[b][1]
			rest := buckets[b][2:]
			if a == c {
				buckets[b] = append([]int{a}, rest...)
				continue
			}
			out := n.AddGate(t, fmt.Sprintf("N%d", n.NumNets()+1), a, c)
			buckets[b] = append(append([]int{}, rest...), out)
		}
		n.MarkPO(buckets[b][0])
	}
	if err := n.Validate(); err != nil {
		panic("netlist: generated circuit invalid: " + err.Error())
	}
	return n
}

// RippleAdder returns an n-bit ripple-carry adder: inputs A0..A(n-1),
// B0..B(n-1), CIN; outputs S0..S(n-1), COUT. Built from full-adder cells
// (2×XOR, 2×AND, 1×OR per bit), it is fully testable and functionally
// verifiable, which makes it the workhorse of the simulator test suites.
func RippleAdder(bits int) *Netlist {
	n := New(fmt.Sprintf("add%d", bits))
	a := make([]int, bits)
	b := make([]int, bits)
	for i := 0; i < bits; i++ {
		a[i] = n.AddPI(fmt.Sprintf("A%d", i))
	}
	for i := 0; i < bits; i++ {
		b[i] = n.AddPI(fmt.Sprintf("B%d", i))
	}
	carry := n.AddPI("CIN")
	for i := 0; i < bits; i++ {
		axb := n.AddGate(Xor, fmt.Sprintf("AXB%d", i), a[i], b[i])
		sum := n.AddGate(Xor, fmt.Sprintf("S%d", i), axb, carry)
		n.MarkPO(sum)
		t1 := n.AddGate(And, fmt.Sprintf("T1_%d", i), a[i], b[i])
		t2 := n.AddGate(And, fmt.Sprintf("T2_%d", i), axb, carry)
		carry = n.AddGate(Or, fmt.Sprintf("C%d", i+1), t1, t2)
	}
	n.MarkPO(carry)
	return n
}

// MuxTree returns a 2^sel-to-1 multiplexer: data inputs D0..D(2^sel-1),
// select inputs S0..S(sel-1), one output Y. Built from 2:1 mux slices
// (NOT + 2×AND + OR).
func MuxTree(sel int) *Netlist {
	n := New(fmt.Sprintf("mux%d", 1<<sel))
	data := make([]int, 1<<sel)
	for i := range data {
		data[i] = n.AddPI(fmt.Sprintf("D%d", i))
	}
	selNets := make([]int, sel)
	for i := range selNets {
		selNets[i] = n.AddPI(fmt.Sprintf("S%d", i))
	}
	layer := data
	for s := 0; s < sel; s++ {
		inv := n.AddGate(Not, fmt.Sprintf("NS%d", s), selNets[s])
		next := make([]int, len(layer)/2)
		for i := range next {
			lo := n.AddGate(And, fmt.Sprintf("L%d_%d", s, i), layer[2*i], inv)
			hi := n.AddGate(And, fmt.Sprintf("H%d_%d", s, i), layer[2*i+1], selNets[s])
			next[i] = n.AddGate(Or, fmt.Sprintf("M%d_%d", s, i), lo, hi)
		}
		layer = next
	}
	n.MarkPO(layer[0])
	return n
}

// ParityTree returns an n-input XOR parity tree with one output P.
func ParityTree(inputs int) *Netlist {
	n := New(fmt.Sprintf("parity%d", inputs))
	layer := make([]int, inputs)
	for i := range layer {
		layer[i] = n.AddPI(fmt.Sprintf("X%d", i))
	}
	lvl := 0
	for len(layer) > 1 {
		var next []int
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, n.AddGate(Xor, fmt.Sprintf("P%d_%d", lvl, i/2), layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
		lvl++
	}
	n.MarkPO(layer[0])
	return n
}

// Comparator returns an n-bit equality comparator: output EQ is 1 iff
// A == B bitwise. Built from XNOR gates and an AND reduction tree.
func Comparator(bits int) *Netlist {
	n := New(fmt.Sprintf("cmp%d", bits))
	a := make([]int, bits)
	b := make([]int, bits)
	for i := 0; i < bits; i++ {
		a[i] = n.AddPI(fmt.Sprintf("A%d", i))
	}
	for i := 0; i < bits; i++ {
		b[i] = n.AddPI(fmt.Sprintf("B%d", i))
	}
	layer := make([]int, bits)
	for i := 0; i < bits; i++ {
		layer[i] = n.AddGate(Xnor, fmt.Sprintf("E%d", i), a[i], b[i])
	}
	lvl := 0
	for len(layer) > 1 {
		var next []int
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, n.AddGate(And, fmt.Sprintf("Q%d_%d", lvl, i/2), layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
		lvl++
	}
	n.MarkPO(layer[0])
	return n
}

// Decoder returns an n-to-2^n one-hot decoder with enable: inputs
// A0..A(n-1), EN; outputs Y0..Y(2^n-1).
func Decoder(bits int) *Netlist {
	n := New(fmt.Sprintf("dec%d", bits))
	a := make([]int, bits)
	for i := range a {
		a[i] = n.AddPI(fmt.Sprintf("A%d", i))
	}
	en := n.AddPI("EN")
	inv := make([]int, bits)
	for i := range a {
		inv[i] = n.AddGate(Not, fmt.Sprintf("NA%d", i), a[i])
	}
	for v := 0; v < 1<<bits; v++ {
		terms := []int{en}
		for i := 0; i < bits; i++ {
			if v&(1<<i) != 0 {
				terms = append(terms, a[i])
			} else {
				terms = append(terms, inv[i])
			}
		}
		// Reduce with 2/3-input ANDs as a cell library would.
		for len(terms) > 1 {
			k := 2
			if len(terms) >= 3 {
				k = 3
			}
			out := n.AddGate(And, fmt.Sprintf("Y%d_r%d", v, len(terms)), terms[:k]...)
			terms = append([]int{out}, terms[k:]...)
		}
		n.NetNames[terms[0]] = fmt.Sprintf("Y%d", v)
		n.MarkPO(terms[0])
	}
	return n
}
