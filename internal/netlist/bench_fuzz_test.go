package netlist

import (
	"strings"
	"testing"
)

// TestParseBenchMalformed feeds the parser inputs that must produce a
// descriptive error — never a panic and never a silently-accepted broken
// netlist.
func TestParseBenchMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the expected error
	}{
		{"empty file", "", "empty netlist"},
		{"comments only", "# nothing here\n# still nothing\n", "empty netlist"},
		{"unterminated input", "INPUT(G1\n", "malformed declaration"},
		{"unterminated output", "INPUT(G1)\nOUTPUT(G1\n", "malformed declaration"},
		{"unterminated gate", "INPUT(G1)\nG2 = NAND(G1\n", "malformed gate"},
		{"missing assignment", "INPUT(G1)\nG2 NAND(G1)\n", "expected assignment"},
		{"empty lhs", "INPUT(G1)\n = NAND(G1)\n", "empty left-hand side"},
		{"empty input name", "INPUT(G1)\nG2 = NAND(G1, )\n", "empty input name"},
		{"empty pi name", "INPUT()\n", "empty name"},
		{"unknown gate type", "INPUT(G1)\nG2 = FROB(G1)\n", "gate type"},
		{"undefined output", "INPUT(G1)\nOUTPUT(G9)\nG2 = NOT(G1)\n", "never defined"},
		{"duplicate outputs", "INPUT(G1)\nOUTPUT(G2)\nOUTPUT(G2)\nG2 = NOT(G1)\n", "duplicate OUTPUT"},
		{"duplicate inputs", "INPUT(G1)\nINPUT(G1)\nOUTPUT(G2)\nG2 = NOT(G1)\n", "duplicate INPUT"},
		{"multiply driven", "INPUT(G1)\nOUTPUT(G2)\nG2 = NOT(G1)\nG2 = BUF(G1)\n", ""},
		{"input redefined by gate", "INPUT(G1)\nOUTPUT(G1)\nG1 = NOT(G1)\n", ""},
		{"undriven gate input", "INPUT(G1)\nOUTPUT(G3)\nG3 = NAND(G1, G2)\n", ""},
		{"self loop", "INPUT(G1)\nOUTPUT(G2)\nG2 = NAND(G1, G2)\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nl, err := ParseBench("fuzzcase", strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("ParseBench accepted malformed input, got netlist %+v", nl)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseBenchRoundTrip ensures a healthy netlist still parses after the
// hardening, and that WriteBench output re-parses to the same stats.
func TestParseBenchRoundTrip(t *testing.T) {
	n := C17()
	var b strings.Builder
	if err := WriteBench(&b, n); err != nil {
		t.Fatal(err)
	}
	n2, err := ParseBench("c17rt", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(n2.PIs) != len(n.PIs) || len(n2.POs) != len(n.POs) || len(n2.Gates) != len(n.Gates) {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			len(n2.PIs), len(n2.POs), len(n2.Gates), len(n.PIs), len(n.POs), len(n.Gates))
	}
}

// FuzzParseBench asserts the parser's crash-safety contract: arbitrary
// input either errors or yields a netlist that passes Validate and can be
// re-serialized.
func FuzzParseBench(f *testing.F) {
	seeds := []string{
		"",
		"# comment\n",
		"INPUT(G1)\nOUTPUT(G2)\nG2 = NOT(G1)\n",
		"INPUT(G1)\nINPUT(G2)\nOUTPUT(G3)\nG3 = NAND(G1, G2)\n",
		"INPUT(G1\n",
		"OUTPUT(G9)\n",
		"G2 = FROB(G1)\n",
		"INPUT(G1)\nG2 = NAND(G1, )\n",
		"INPUT(a)\noutput(b)\nb = and(a, a)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nl, err := ParseBench("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		if nl == nil {
			t.Fatal("nil netlist with nil error")
		}
		if verr := nl.Validate(); verr != nil {
			t.Fatalf("accepted netlist fails Validate: %v\ninput:\n%s", verr, src)
		}
		var b strings.Builder
		if len(nl.POs) > 0 {
			_ = WriteBench(&b, nl)
		}
	})
}
