package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestGateTypeEval(t *testing.T) {
	a, b := uint64(0b0011), uint64(0b0101)
	cases := []struct {
		g    GateType
		in   []uint64
		want uint64 // low 4 bits
	}{
		{Buf, []uint64{a}, 0b0011},
		{Not, []uint64{a}, ^a & 0xF},
		{And, []uint64{a, b}, 0b0001},
		{Nand, []uint64{a, b}, 0b1110},
		{Or, []uint64{a, b}, 0b0111},
		{Nor, []uint64{a, b}, 0b1000},
		{Xor, []uint64{a, b}, 0b0110},
		{Xnor, []uint64{a, b}, 0b1001},
		{And, []uint64{a, b, 0b1111}, 0b0001},
		{Or, []uint64{0, 0, a}, 0b0011},
	}
	for _, c := range cases {
		if got := c.g.Eval(c.in) & 0xF; got != c.want {
			t.Errorf("%v.Eval = %04b, want %04b", c.g, got, c.want)
		}
	}
}

func TestParseGateType(t *testing.T) {
	for _, s := range []string{"nand", "NAND", "NaNd"} {
		g, err := ParseGateType(s)
		if err != nil || g != Nand {
			t.Fatalf("ParseGateType(%q) = %v, %v", s, g, err)
		}
	}
	if _, err := ParseGateType("MAJ"); err == nil {
		t.Fatal("unknown gate must error")
	}
	if g, _ := ParseGateType("BUFF"); g != Buf {
		t.Fatal("BUFF alias")
	}
	if g, _ := ParseGateType("INV"); g != Not {
		t.Fatal("INV alias")
	}
}

func TestInverting(t *testing.T) {
	want := map[GateType]bool{Buf: false, Not: true, And: false, Nand: true,
		Or: false, Nor: true, Xor: false, Xnor: true}
	for g, inv := range want {
		if g.Inverting() != inv {
			t.Errorf("%v.Inverting() = %v", g, g.Inverting())
		}
	}
}

func TestC17Truth(t *testing.T) {
	n := C17()
	if len(n.PIs) != 5 || len(n.POs) != 2 || len(n.Gates) != 6 {
		t.Fatalf("c17 profile wrong: %v", n.ComputeStats())
	}
	// Exhaustive check against the known c17 function:
	// G22 = NAND(G10,G16), G23 = NAND(G16,G19) with
	// G10=NAND(1,3) G11=NAND(3,6) G16=NAND(2,11) G19=NAND(11,7).
	for v := 0; v < 32; v++ {
		bit := func(i int) uint64 {
			if v&(1<<i) != 0 {
				return 1
			}
			return 0
		}
		g1, g2, g3, g6, g7 := bit(0), bit(1), bit(2), bit(3), bit(4)
		nand := func(a, b uint64) uint64 { return (^(a & b)) & 1 }
		g10 := nand(g1, g3)
		g11 := nand(g3, g6)
		g16 := nand(g2, g11)
		g19 := nand(g11, g7)
		want22 := nand(g10, g16)
		want23 := nand(g16, g19)

		vals, err := n.Eval([]uint64{g1, g2, g3, g6, g7})
		if err != nil {
			t.Fatal(err)
		}
		if vals[n.POs[0]]&1 != want22 || vals[n.POs[1]]&1 != want23 {
			t.Fatalf("c17(%05b): got %d,%d want %d,%d", v,
				vals[n.POs[0]]&1, vals[n.POs[1]]&1, want22, want23)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	orig := C432Class(1)
	var buf bytes.Buffer
	if err := WriteBench(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBench(orig.Name, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.PIs) != len(orig.PIs) || len(back.POs) != len(orig.POs) || len(back.Gates) != len(orig.Gates) {
		t.Fatalf("round trip changed profile: %v vs %v", back.ComputeStats(), orig.ComputeStats())
	}
	// Functional equivalence on random vectors (PI order is preserved).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		pis := make([]uint64, len(orig.PIs))
		for i := range pis {
			pis[i] = rng.Uint64()
		}
		v1, err1 := orig.Eval(pis)
		v2, err2 := back.Eval(pis)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range orig.POs {
			if v1[orig.POs[i]] != v2[back.POs[i]] {
				t.Fatalf("PO %d differs after round trip", i)
			}
		}
	}
}

func TestParseBenchErrors(t *testing.T) {
	bad := []string{
		"G1 = FROB(G2)\nINPUT(G2)\n",
		"INPUT(G1)\nOUTPUT(G9)\n",       // undefined output
		"INPUT(G1)\nG2 = NAND(G1)\n",    // NAND with one input
		"INPUT(G1)\nG2 NAND(G1, G1)\n",  // missing =
		"INPUT(G1)\nG2 = NAND G1, G1\n", // missing parens
		"INPUT()\n",                     // empty name
		"INPUT(G1)\nG2 = NOT(G1,G1)\n",  // NOT with two inputs
		"INPUT(G1)\nG1 = NOT(G1)\n",     // multiply driven / self loop
		"INPUT(G1)\nG2 = AND(G1, )\n",   // empty input token
	}
	for i, src := range bad {
		if _, err := ParseBench("bad", strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse/validate error", i)
		}
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	n := New("cyc")
	a := n.AddPI("a")
	x := n.AddNet("x")
	y := n.AddNet("y")
	n.AddGateTo(And, x, a, y)
	n.AddGateTo(Buf, y, x)
	if err := n.Validate(); err != nil {
		t.Fatalf("structure is valid (cycle is a levelization error): %v", err)
	}
	if _, _, err := n.Levelize(); err == nil {
		t.Fatal("Levelize must detect the cycle")
	}
}

func TestLevelizeLevels(t *testing.T) {
	n := C17()
	_, level, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range n.PIs {
		if level[pi] != 0 {
			t.Fatal("PI level must be 0")
		}
	}
	if d := n.Depth(); d != 3 {
		t.Fatalf("c17 depth = %d, want 3", d)
	}
}

func TestRippleAdderFunctional(t *testing.T) {
	const bits = 8
	n := RippleAdder(bits)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() & ((1 << bits) - 1)
		b := rng.Uint64() & ((1 << bits) - 1)
		cin := rng.Uint64() & 1
		pis := make([]uint64, 2*bits+1)
		for i := 0; i < bits; i++ {
			pis[i] = (a >> i) & 1
			pis[bits+i] = (b >> i) & 1
		}
		pis[2*bits] = cin
		vals, err := n.Eval(pis)
		if err != nil {
			t.Fatal(err)
		}
		want := a + b + cin
		var got uint64
		for i := 0; i <= bits; i++ { // S0..S(bits-1), COUT
			got |= (vals[n.POs[i]] & 1) << i
		}
		if got != want {
			t.Fatalf("add(%d,%d,%d) = %d, want %d", a, b, cin, got, want)
		}
	}
}

func TestMuxTreeFunctional(t *testing.T) {
	const sel = 3
	n := MuxTree(sel)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		data := rng.Uint64() & 0xFF
		s := rng.Intn(8)
		pis := make([]uint64, 8+sel)
		for i := 0; i < 8; i++ {
			pis[i] = (data >> i) & 1
		}
		for i := 0; i < sel; i++ {
			pis[8+i] = uint64((s >> i) & 1)
		}
		vals, err := n.Eval(pis)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := vals[n.POs[0]]&1, (data>>s)&1; got != want {
			t.Fatalf("mux(data=%08b, s=%d) = %d, want %d", data, s, got, want)
		}
	}
}

func TestParityTreeFunctional(t *testing.T) {
	n := ParityTree(9)
	for v := 0; v < 512; v += 7 {
		pis := make([]uint64, 9)
		parity := uint64(0)
		for i := 0; i < 9; i++ {
			pis[i] = uint64((v >> i) & 1)
			parity ^= pis[i]
		}
		vals, err := n.Eval(pis)
		if err != nil {
			t.Fatal(err)
		}
		if vals[n.POs[0]]&1 != parity {
			t.Fatalf("parity(%09b) wrong", v)
		}
	}
}

func TestComparatorFunctional(t *testing.T) {
	n := Comparator(6)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() & 63
		b := rng.Uint64() & 63
		if trial%3 == 0 {
			b = a
		}
		pis := make([]uint64, 12)
		for i := 0; i < 6; i++ {
			pis[i] = (a >> i) & 1
			pis[6+i] = (b >> i) & 1
		}
		vals, _ := n.Eval(pis)
		want := uint64(0)
		if a == b {
			want = 1
		}
		if vals[n.POs[0]]&1 != want {
			t.Fatalf("cmp(%d,%d) = %d, want %d", a, b, vals[n.POs[0]]&1, want)
		}
	}
}

func TestDecoderFunctional(t *testing.T) {
	n := Decoder(3)
	for v := 0; v < 8; v++ {
		for _, en := range []uint64{0, 1} {
			pis := make([]uint64, 4)
			for i := 0; i < 3; i++ {
				pis[i] = uint64((v >> i) & 1)
			}
			pis[3] = en
			vals, _ := n.Eval(pis)
			for o := 0; o < 8; o++ {
				want := uint64(0)
				if o == v && en == 1 {
					want = 1
				}
				if vals[n.POs[o]]&1 != want {
					t.Fatalf("dec(v=%d,en=%d) Y%d = %d, want %d", v, en, o, vals[n.POs[o]]&1, want)
				}
			}
		}
	}
}

func TestC432ClassProfile(t *testing.T) {
	n := C432Class(1994)
	s := n.ComputeStats()
	if s.PIs != 36 || s.POs != 7 {
		t.Fatalf("c432-class I/O profile wrong: %v", s)
	}
	if s.Gates < 140 || s.Gates > 230 {
		t.Fatalf("c432-class gate count %d outside [140,230]", s.Gates)
	}
	if s.Depth < 6 {
		t.Fatalf("c432-class depth %d too shallow", s.Depth)
	}
	if len(n.DanglingNets()) != 0 {
		t.Fatalf("dangling nets: %v", n.DanglingNets())
	}
	// Deterministic for a fixed seed.
	m := C432Class(1994)
	var b1, b2 bytes.Buffer
	if err := WriteBench(&b1, n); err != nil {
		t.Fatal(err)
	}
	if err := WriteBench(&b2, m); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("C432Class is not deterministic")
	}
	// Distinct seeds give distinct circuits.
	o := C432Class(7)
	var b3 bytes.Buffer
	if err := WriteBench(&b3, o); err != nil {
		t.Fatal(err)
	}
	if b1.String() == b3.String() {
		t.Fatal("distinct seeds must differ")
	}
}

func TestEvalParallelConsistencyProperty(t *testing.T) {
	// Evaluating 64 patterns in one word must equal evaluating them one by
	// one — the core parallel-pattern invariant the fault simulator relies on.
	n := C432Class(11)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		words := make([]uint64, len(n.PIs))
		for i := range words {
			words[i] = rng.Uint64()
		}
		packed, err := n.Eval(words)
		if err != nil {
			return false
		}
		for bit := 0; bit < 64; bit += 17 {
			single := make([]uint64, len(n.PIs))
			for i := range single {
				single[i] = (words[i] >> bit) & 1
			}
			sv, err := n.Eval(single)
			if err != nil {
				return false
			}
			for _, po := range n.POs {
				if (packed[po]>>bit)&1 != sv[po]&1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNetByName(t *testing.T) {
	n := C17()
	id, ok := n.NetByName("G11")
	if !ok {
		t.Fatal("G11 must exist")
	}
	if n.NetNames[id] != "G11" {
		t.Fatal("name mismatch")
	}
	if _, ok := n.NetByName("NOPE"); ok {
		t.Fatal("NOPE must not exist")
	}
}

func TestStatsString(t *testing.T) {
	s := C17().ComputeStats()
	str := s.String()
	if !strings.Contains(str, "NAND:6") || !strings.Contains(str, "5 PI") {
		t.Fatalf("stats string: %s", str)
	}
}

func TestEvalErrors(t *testing.T) {
	n := C17()
	if _, err := n.Eval(make([]uint64, 3)); err == nil {
		t.Fatal("wrong PI count must error")
	}
}

func TestFaninCone(t *testing.T) {
	nl := C17()
	g22 := nl.POs[0]
	cone := nl.FaninCone(g22)
	// G22 = NAND(G10, G16); G10 = NAND(G1,G3); G16 = NAND(G2,G11);
	// G11 = NAND(G3,G6). Cone: {G22,G10,G16,G1,G3,G2,G11,G6} = 8 nets.
	if len(cone) != 8 {
		t.Fatalf("c17 G22 fanin cone has %d nets, want 8", len(cone))
	}
	g7, _ := nl.NetByName("G7")
	if cone[g7] {
		t.Fatal("G7 feeds only G23, not G22")
	}
	if !cone[g22] {
		t.Fatal("roots belong to their own cone")
	}
}

func TestFanoutConeAndObservingPOs(t *testing.T) {
	nl := C17()
	g11, _ := nl.NetByName("G11")
	fo := nl.FanoutCone(g11)
	// G11 feeds G16 and G19, which feed G22 and G23.
	for _, name := range []string{"G11", "G16", "G19", "G22", "G23"} {
		id, _ := nl.NetByName(name)
		if !fo[id] {
			t.Fatalf("%s missing from G11 fanout cone", name)
		}
	}
	pos := nl.ObservingPOs(g11)
	if len(pos) != 2 {
		t.Fatalf("G11 observed at %d POs, want 2", len(pos))
	}
	g10, _ := nl.NetByName("G10")
	if got := nl.ObservingPOs(g10); len(got) != 1 {
		t.Fatalf("G10 observed at %d POs, want 1 (G22)", len(got))
	}
	// PIs reach everything downstream of themselves; PO cones end at POs.
	g1, _ := nl.NetByName("G1")
	if pos := nl.ObservingPOs(g1); len(pos) != 1 {
		t.Fatalf("G1 observed at %d POs", len(pos))
	}
}
