// Package netlist models gate-level combinational netlists: the input
// representation for stuck-at fault simulation, ATPG and standard-cell
// layout generation.
//
// A Netlist is a DAG of single-output gates over a set of nets. Nets are
// dense integer indices; primary inputs are nets driven by no gate. The
// package provides an ISCAS-style .bench reader/writer, the c17 benchmark,
// deterministic synthetic benchmark generators (including a c432-class
// circuit matching the profile of the ISCAS-85 c432 used in the paper), and
// structural utilities (levelization, fanout computation, validation).
package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// GateType enumerates the supported combinational gate functions.
type GateType uint8

// Supported gate functions. Buf and Not are single-input; the others accept
// two or more inputs.
const (
	Buf GateType = iota
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	numGateTypes
)

var gateNames = [numGateTypes]string{"BUF", "NOT", "AND", "NAND", "OR", "NOR", "XOR", "XNOR"}

// String returns the .bench-style upper-case gate name.
func (g GateType) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("GATE(%d)", uint8(g))
}

// ParseGateType converts a .bench gate keyword (case-insensitive) to a
// GateType.
func ParseGateType(s string) (GateType, error) {
	switch strings.ToUpper(s) {
	case "BUF", "BUFF":
		return Buf, nil
	case "NOT", "INV":
		return Not, nil
	case "AND":
		return And, nil
	case "NAND":
		return Nand, nil
	case "OR":
		return Or, nil
	case "NOR":
		return Nor, nil
	case "XOR":
		return Xor, nil
	case "XNOR":
		return Xnor, nil
	}
	return 0, fmt.Errorf("netlist: unknown gate type %q", s)
}

// Inverting reports whether the gate output is the complement of the
// corresponding non-inverting function (NOT/NAND/NOR/XNOR). CMOS static
// gates are naturally inverting; the cell library uses this to pick
// single-stage versus two-stage realizations.
func (g GateType) Inverting() bool {
	switch g {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// Eval computes the gate function over the given input bits, each bit
// position evaluated independently (parallel-pattern semantics over a
// 64-bit word).
func (g GateType) Eval(in []uint64) uint64 {
	switch g {
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And, Nand:
		v := in[0]
		for _, x := range in[1:] {
			v &= x
		}
		if g == Nand {
			v = ^v
		}
		return v
	case Or, Nor:
		v := in[0]
		for _, x := range in[1:] {
			v |= x
		}
		if g == Nor {
			v = ^v
		}
		return v
	case Xor, Xnor:
		v := in[0]
		for _, x := range in[1:] {
			v ^= x
		}
		if g == Xnor {
			v = ^v
		}
		return v
	}
	panic("netlist: bad gate type")
}

// Gate is a single-output logic gate. Inputs and Out are net indices.
type Gate struct {
	Type   GateType
	Inputs []int
	Out    int
}

// Netlist is a combinational gate-level circuit.
type Netlist struct {
	Name     string
	NetNames []string // per-net symbolic name
	Gates    []Gate
	PIs      []int // primary input nets, in declaration order
	POs      []int // primary output nets, in declaration order

	driver []int // net -> gate index driving it, -1 for PIs (built lazily)
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist { return &Netlist{Name: name} }

// NumNets returns the number of nets.
func (n *Netlist) NumNets() int { return len(n.NetNames) }

// AddNet creates a new net with the given name and returns its index.
func (n *Netlist) AddNet(name string) int {
	n.NetNames = append(n.NetNames, name)
	n.driver = nil
	return len(n.NetNames) - 1
}

// AddPI creates a new primary-input net.
func (n *Netlist) AddPI(name string) int {
	id := n.AddNet(name)
	n.PIs = append(n.PIs, id)
	return id
}

// MarkPO declares net id as a primary output.
func (n *Netlist) MarkPO(id int) { n.POs = append(n.POs, id) }

// AddGate appends a gate of type t driving a fresh net with the given name,
// returning the output net index.
func (n *Netlist) AddGate(t GateType, name string, inputs ...int) int {
	out := n.AddNet(name)
	n.Gates = append(n.Gates, Gate{Type: t, Inputs: append([]int(nil), inputs...), Out: out})
	return out
}

// AddGateTo appends a gate of type t driving the existing net out.
func (n *Netlist) AddGateTo(t GateType, out int, inputs ...int) {
	n.Gates = append(n.Gates, Gate{Type: t, Inputs: append([]int(nil), inputs...), Out: out})
	n.driver = nil
}

// Driver returns the index of the gate driving net id, or -1 when id is a
// primary input (or undriven).
func (n *Netlist) Driver(id int) int {
	if n.driver == nil {
		n.driver = make([]int, n.NumNets())
		for i := range n.driver {
			n.driver[i] = -1
		}
		for gi, g := range n.Gates {
			n.driver[g.Out] = gi
		}
	}
	return n.driver[id]
}

// Fanouts returns, for every net, the indices of gates that read it.
func (n *Netlist) Fanouts() [][]int {
	fo := make([][]int, n.NumNets())
	for gi, g := range n.Gates {
		for _, in := range g.Inputs {
			fo[in] = append(fo[in], gi)
		}
	}
	return fo
}

// Levelize returns the gates in topological order (every gate after all
// gates driving its inputs) and the logic level of every net (PIs at 0).
// It fails if the netlist contains a combinational cycle or an undriven
// non-PI net.
func (n *Netlist) Levelize() (order []int, level []int, err error) {
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	level = make([]int, n.NumNets())
	done := make([]bool, n.NumNets())
	for _, pi := range n.PIs {
		done[pi] = true
	}
	order = make([]int, 0, len(n.Gates))
	pending := len(n.Gates)
	scheduled := make([]bool, len(n.Gates))
	for pending > 0 {
		progress := false
		for gi, g := range n.Gates {
			if scheduled[gi] {
				continue
			}
			ready, lvl := true, 0
			for _, in := range g.Inputs {
				if !done[in] {
					ready = false
					break
				}
				if level[in] > lvl {
					lvl = level[in]
				}
			}
			if !ready {
				continue
			}
			scheduled[gi] = true
			done[g.Out] = true
			level[g.Out] = lvl + 1
			order = append(order, gi)
			pending--
			progress = true
		}
		if !progress {
			return nil, nil, fmt.Errorf("netlist %s: combinational cycle detected", n.Name)
		}
	}
	return order, level, nil
}

// Depth returns the maximum logic level over all nets (0 for an empty or
// gate-free netlist).
func (n *Netlist) Depth() int {
	_, level, err := n.Levelize()
	if err != nil {
		return 0
	}
	d := 0
	for _, l := range level {
		if l > d {
			d = l
		}
	}
	return d
}

// Validate checks structural sanity: every net has exactly one driver or is
// a PI, gate inputs are in range and non-empty, single-input gate types have
// exactly one input, and POs reference existing nets.
func (n *Netlist) Validate() error {
	drivers := make([]int, n.NumNets())
	for _, pi := range n.PIs {
		if pi < 0 || pi >= n.NumNets() {
			return fmt.Errorf("netlist %s: PI net %d out of range", n.Name, pi)
		}
		drivers[pi]++
	}
	for gi, g := range n.Gates {
		if g.Out < 0 || g.Out >= n.NumNets() {
			return fmt.Errorf("netlist %s: gate %d output out of range", n.Name, gi)
		}
		drivers[g.Out]++
		if len(g.Inputs) == 0 {
			return fmt.Errorf("netlist %s: gate %d has no inputs", n.Name, gi)
		}
		if (g.Type == Buf || g.Type == Not) && len(g.Inputs) != 1 {
			return fmt.Errorf("netlist %s: gate %d: %v takes one input, has %d",
				n.Name, gi, g.Type, len(g.Inputs))
		}
		if g.Type != Buf && g.Type != Not && len(g.Inputs) < 2 {
			return fmt.Errorf("netlist %s: gate %d: %v needs ≥2 inputs", n.Name, gi, g.Type)
		}
		for _, in := range g.Inputs {
			if in < 0 || in >= n.NumNets() {
				return fmt.Errorf("netlist %s: gate %d input net %d out of range", n.Name, gi, in)
			}
			if in == g.Out {
				return fmt.Errorf("netlist %s: gate %d feeds itself", n.Name, gi)
			}
		}
	}
	for id, d := range drivers {
		if d == 0 {
			return fmt.Errorf("netlist %s: net %d (%s) undriven", n.Name, id, n.NetNames[id])
		}
		if d > 1 {
			return fmt.Errorf("netlist %s: net %d (%s) multiply driven", n.Name, id, n.NetNames[id])
		}
	}
	for _, po := range n.POs {
		if po < 0 || po >= n.NumNets() {
			return fmt.Errorf("netlist %s: PO net %d out of range", n.Name, po)
		}
	}
	return nil
}

// Eval computes all net values for the given PI assignment using 64-way
// parallel-pattern semantics: pis[i] holds 64 independent pattern bits for
// the i-th primary input. The returned slice is indexed by net.
func (n *Netlist) Eval(pis []uint64) ([]uint64, error) {
	if len(pis) != len(n.PIs) {
		return nil, fmt.Errorf("netlist %s: Eval got %d PI words, want %d", n.Name, len(pis), len(n.PIs))
	}
	order, _, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	vals := make([]uint64, n.NumNets())
	for i, pi := range n.PIs {
		vals[pi] = pis[i]
	}
	in := make([]uint64, 0, 4)
	for _, gi := range order {
		g := &n.Gates[gi]
		in = in[:0]
		for _, x := range g.Inputs {
			in = append(in, vals[x])
		}
		vals[g.Out] = g.Type.Eval(in)
	}
	return vals, nil
}

// Stats summarizes the structural profile of a netlist.
type Stats struct {
	Name      string
	PIs, POs  int
	Gates     int
	ByType    map[GateType]int
	Nets      int
	Depth     int
	MaxFanin  int
	MaxFanout int
}

// ComputeStats returns the structural profile of n.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{
		Name: n.Name, PIs: len(n.PIs), POs: len(n.POs),
		Gates: len(n.Gates), Nets: n.NumNets(),
		ByType: make(map[GateType]int), Depth: n.Depth(),
	}
	for _, g := range n.Gates {
		s.ByType[g.Type]++
		if len(g.Inputs) > s.MaxFanin {
			s.MaxFanin = len(g.Inputs)
		}
	}
	for _, fo := range n.Fanouts() {
		if len(fo) > s.MaxFanout {
			s.MaxFanout = len(fo)
		}
	}
	return s
}

// String renders the stats as a single line.
func (s Stats) String() string {
	types := make([]string, 0, len(s.ByType))
	for t := GateType(0); t < numGateTypes; t++ {
		if c := s.ByType[t]; c > 0 {
			types = append(types, fmt.Sprintf("%s:%d", t, c))
		}
	}
	return fmt.Sprintf("%s: %d PI, %d PO, %d gates (%s), depth %d, maxFanout %d",
		s.Name, s.PIs, s.POs, s.Gates, strings.Join(types, " "), s.Depth, s.MaxFanout)
}

// NetByName returns the index of the net with the given name.
func (n *Netlist) NetByName(name string) (int, bool) {
	for i, nm := range n.NetNames {
		if nm == name {
			return i, true
		}
	}
	return -1, false
}

// SortedPOs returns a copy of the PO list in ascending net order; used by
// deterministic consumers (e.g. fault observability) that should not depend
// on declaration order.
func (n *Netlist) SortedPOs() []int {
	out := append([]int(nil), n.POs...)
	sort.Ints(out)
	return out
}
