package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a netlist in the ISCAS-85 .bench format:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G22)
//	G10 = NAND(G1, G3)
//
// Net names are arbitrary identifiers. Gate keywords are case-insensitive.
func ParseBench(name string, r io.Reader) (*Netlist, error) {
	n := New(name)
	ids := make(map[string]int)
	getNet := func(s string) int {
		if id, ok := ids[s]; ok {
			return id
		}
		id := n.AddNet(s)
		ids[s] = id
		return id
	}
	var outputs []string
	inputLine := make(map[string]int)  // PI name -> first declaring line
	outputLine := make(map[string]int) // PO name -> first declaring line

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
			}
			if prev, dup := inputLine[arg]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate INPUT(%s) (first declared on line %d)", name, lineNo, arg, prev)
			}
			inputLine[arg] = lineNo
			id := getNet(arg)
			n.PIs = append(n.PIs, id)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
			}
			if prev, dup := outputLine[arg]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate OUTPUT(%s) (first declared on line %d)", name, lineNo, arg, prev)
			}
			outputLine[arg] = lineNo
			outputs = append(outputs, arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("%s:%d: expected assignment, got %q", name, lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			if lhs == "" {
				return nil, fmt.Errorf("%s:%d: assignment with empty left-hand side", name, lineNo)
			}
			rhs := strings.TrimSpace(line[eq+1:])
			op := strings.Index(rhs, "(")
			cp := strings.LastIndex(rhs, ")")
			if op < 0 || cp < op {
				return nil, fmt.Errorf("%s:%d: malformed gate %q", name, lineNo, rhs)
			}
			gt, err := ParseGateType(strings.TrimSpace(rhs[:op]))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
			}
			var inputs []int
			for _, tok := range strings.Split(rhs[op+1:cp], ",") {
				tok = strings.TrimSpace(tok)
				if tok == "" {
					return nil, fmt.Errorf("%s:%d: empty input name", name, lineNo)
				}
				inputs = append(inputs, getNet(tok))
			}
			n.AddGateTo(gt, getNet(lhs), inputs...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(n.PIs) == 0 && len(n.Gates) == 0 {
		return nil, fmt.Errorf("%s: empty netlist: no inputs and no gates", name)
	}
	for _, o := range outputs {
		id, ok := ids[o]
		if !ok {
			return nil, fmt.Errorf("%s: OUTPUT(%s) never defined", name, o)
		}
		n.MarkPO(id)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

func parenArg(line string) (string, error) {
	op := strings.Index(line, "(")
	cp := strings.LastIndex(line, ")")
	if op < 0 || cp < op {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[op+1 : cp])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return arg, nil
}

// WriteBench renders n in .bench format. Gates are emitted in a valid
// topological order so the output can be read back by simple parsers.
func WriteBench(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d inputs, %d outputs, %d gates\n",
		n.Name, len(n.PIs), len(n.POs), len(n.Gates))
	for _, pi := range n.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", n.NetNames[pi])
	}
	for _, po := range n.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.NetNames[po])
	}
	order, _, err := n.Levelize()
	if err != nil {
		return err
	}
	for _, gi := range order {
		g := &n.Gates[gi]
		names := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			names[i] = n.NetNames[in]
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", n.NetNames[g.Out], g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// C17 returns the ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
// This is the exact published netlist and serves as the primary ground-truth
// circuit for cross-validating the simulators.
func C17() *Netlist {
	const src = `# c17 ISCAS-85
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`
	n, err := ParseBench("c17", strings.NewReader(src))
	if err != nil {
		panic("netlist: embedded c17 invalid: " + err.Error())
	}
	return n
}

// DanglingNets returns nets that drive nothing and are not primary outputs;
// useful to sanity-check generated circuits.
func (n *Netlist) DanglingNets() []int {
	used := make([]bool, n.NumNets())
	for _, g := range n.Gates {
		for _, in := range g.Inputs {
			used[in] = true
		}
	}
	for _, po := range n.POs {
		used[po] = true
	}
	var out []int
	for id, u := range used {
		if !u {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}
