package netlist

// Structural cone utilities: transitive fanin/fanout over nets. These are
// the workhorses of diagnosis-region pruning (a candidate fault must lie
// in the fanin cone of a failing output) and of testability reasoning.

// FaninCone returns the set of nets in the transitive fanin of the given
// roots, including the roots themselves.
func (n *Netlist) FaninCone(roots ...int) map[int]bool {
	cone := make(map[int]bool)
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		net := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cone[net] {
			continue
		}
		cone[net] = true
		if gi := n.Driver(net); gi >= 0 {
			for _, in := range n.Gates[gi].Inputs {
				if !cone[in] {
					stack = append(stack, in)
				}
			}
		}
	}
	return cone
}

// FanoutCone returns the set of nets in the transitive fanout of the given
// roots, including the roots themselves.
func (n *Netlist) FanoutCone(roots ...int) map[int]bool {
	fo := n.Fanouts()
	cone := make(map[int]bool)
	stack := append([]int(nil), roots...)
	for len(stack) > 0 {
		net := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cone[net] {
			continue
		}
		cone[net] = true
		for _, gi := range fo[net] {
			out := n.Gates[gi].Out
			if !cone[out] {
				stack = append(stack, out)
			}
		}
	}
	return cone
}

// ObservingPOs returns the primary outputs whose fanin cones contain net —
// the outputs at which a fault on the net could ever be observed.
func (n *Netlist) ObservingPOs(net int) []int {
	fo := n.FanoutCone(net)
	var out []int
	for _, po := range n.POs {
		if fo[po] {
			out = append(out, po)
		}
	}
	return out
}
