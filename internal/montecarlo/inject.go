package montecarlo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"defectsim/internal/defect"
	"defectsim/internal/fault"
	"defectsim/internal/geom"
	"defectsim/internal/layout"
)

// Effect classifies what a single injected spot defect does.
type Effect uint8

// Injection outcomes.
const (
	EffectBenign Effect = iota // lands on empty area or a single net
	EffectBridge               // extra material shorting ≥ 2 nets
	EffectOpen                 // missing material severing a wire or cut
)

func (e Effect) String() string {
	switch e {
	case EffectBenign:
		return "benign"
	case EffectBridge:
		return "bridge"
	}
	return "open"
}

// Injection is one sampled defect and its derived electrical effect.
type Injection struct {
	Type   defect.Type
	Size   int
	At     geom.Point
	Effect Effect
	Nets   []int // shorted nets (bridge) or severed net (open)
}

// Report aggregates an injection campaign.
type Report struct {
	Total      int
	ByEffect   map[Effect]int
	PairCounts map[[2]int]int // bridge net pairs (ordered a < b)
	OpenCounts map[int]int    // severed nets
	Injections []Injection    // only the faulting ones
}

// InjectDefects drops n random spot defects (per the process statistics)
// onto the layout's core area and derives each defect's electrical effect
// directly from the mask geometry — no critical-area math involved, so the
// result is an independent check of the extraction pipeline.
func InjectDefects(L *layout.Layout, stats defect.Statistics, n int, seed int64) *Report {
	rng := rand.New(rand.NewSource(seed))
	rep := &Report{
		ByEffect:   map[Effect]int{},
		PairCounts: map[[2]int]int{},
		OpenCounts: map[int]int{},
	}
	idx := buildShapeIndex(L)
	area := L.Bounds

	for i := 0; i < n; i++ {
		ty, sizeF, at := stats.Sample(rng, area)
		size := int(math.Round(sizeF))
		if size < 1 {
			size = 1
		}
		if size > stats.MaxSize {
			// The extraction pipeline truncates the size distribution at
			// MaxSize; do the same so the two sides are comparable.
			size = stats.MaxSize
		}
		inj := Injection{Type: ty, Size: size, At: at, Effect: EffectBenign}
		q := geom.R(at.X-size/2, at.Y-size/2, at.X+(size+1)/2, at.Y+(size+1)/2)

		switch {
		case ty.Bridge():
			nets := idx.netsOverlapping(ty, q)
			if len(nets) >= 2 {
				inj.Effect = EffectBridge
				inj.Nets = nets
				for a := 0; a < len(nets); a++ {
					for b := a + 1; b < len(nets); b++ {
						p := [2]int{nets[a], nets[b]}
						rep.PairCounts[p]++
					}
				}
			}
		case ty == defect.MissingContact || ty == defect.MissingVia:
			if net, ok := idx.cutCovered(ty, q); ok {
				inj.Effect = EffectOpen
				inj.Nets = []int{net}
				rep.OpenCounts[net]++
			}
		default: // missing material on a wire layer
			if net, ok := idx.wireSevered(ty, q); ok {
				inj.Effect = EffectOpen
				inj.Nets = []int{net}
				rep.OpenCounts[net]++
			}
		}
		rep.Total++
		rep.ByEffect[inj.Effect]++
		if inj.Effect != EffectBenign {
			rep.Injections = append(rep.Injections, inj)
		}
	}
	return rep
}

// shapeIndex buckets conducting/cut shapes per layer for point queries.
type shapeIndex struct {
	L       *layout.Layout
	buckets map[indexKey][]int // shape indices
}

type indexKey struct {
	layer  geom.Layer
	gx, gy int
}

const indexStep = 64

func buildShapeIndex(L *layout.Layout) *shapeIndex {
	idx := &shapeIndex{L: L, buckets: map[indexKey][]int{}}
	for i, sh := range L.Shapes.Shapes {
		if sh.Net < 0 {
			continue
		}
		for gx := floorDiv(sh.Rect.X0, indexStep); gx <= floorDiv(sh.Rect.X1, indexStep); gx++ {
			for gy := floorDiv(sh.Rect.Y0, indexStep); gy <= floorDiv(sh.Rect.Y1, indexStep); gy++ {
				k := indexKey{sh.Layer, gx, gy}
				idx.buckets[k] = append(idx.buckets[k], i)
			}
		}
	}
	return idx
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func (idx *shapeIndex) forEach(layer geom.Layer, q geom.Rect, fn func(sh geom.Shape)) {
	seen := map[int]bool{}
	for gx := floorDiv(q.X0, indexStep); gx <= floorDiv(q.X1, indexStep); gx++ {
		for gy := floorDiv(q.Y0, indexStep); gy <= floorDiv(q.Y1, indexStep); gy++ {
			for _, i := range idx.buckets[indexKey{layer, gx, gy}] {
				if seen[i] {
					continue
				}
				seen[i] = true
				fn(idx.L.Shapes.Shapes[i])
			}
		}
	}
}

// bridgeLayersOf mirrors the extraction pipeline's layer mapping.
func bridgeLayersOf(ty defect.Type) []geom.Layer {
	switch ty {
	case defect.ExtraPoly:
		return []geom.Layer{geom.LayerPoly}
	case defect.ExtraMetal1:
		return []geom.Layer{geom.LayerMetal1}
	case defect.ExtraMetal2:
		return []geom.Layer{geom.LayerMetal2}
	case defect.ExtraActive:
		return []geom.Layer{geom.LayerNDiff, geom.LayerPDiff}
	}
	return nil
}

func openLayersOf(ty defect.Type) []geom.Layer {
	switch ty {
	case defect.MissingPoly:
		return []geom.Layer{geom.LayerPoly}
	case defect.MissingMetal1:
		return []geom.Layer{geom.LayerMetal1}
	case defect.MissingMetal2:
		return []geom.Layer{geom.LayerMetal2}
	case defect.MissingActive:
		return []geom.Layer{geom.LayerNDiff, geom.LayerPDiff}
	}
	return nil
}

// netsOverlapping returns the distinct nets whose shapes on the defect
// type's layers overlap the defect square.
func (idx *shapeIndex) netsOverlapping(ty defect.Type, q geom.Rect) []int {
	set := map[int]bool{}
	for _, layer := range bridgeLayersOf(ty) {
		idx.forEach(layer, q, func(sh geom.Shape) {
			if sh.Rect.Overlaps(q) {
				set[sh.Net] = true
			}
		})
	}
	nets := make([]int, 0, len(set))
	for n := range set {
		nets = append(nets, n)
	}
	sort.Ints(nets)
	return nets
}

// wireSevered reports whether the missing-material square spans the full
// drawn width of some wire rectangle, returning the severed net.
func (idx *shapeIndex) wireSevered(ty defect.Type, q geom.Rect) (int, bool) {
	net, found := -1, false
	for _, layer := range openLayersOf(ty) {
		idx.forEach(layer, q, func(sh geom.Shape) {
			if found || !sh.Rect.Overlaps(q) {
				return
			}
			r := sh.Rect
			horizontal := r.W() >= r.H()
			if horizontal {
				if q.Y0 <= r.Y0 && q.Y1 >= r.Y1 {
					net, found = sh.Net, true
				}
			} else if q.X0 <= r.X0 && q.X1 >= r.X1 {
				net, found = sh.Net, true
			}
		})
		if found {
			return net, true
		}
	}
	return -1, false
}

// cutCovered reports whether the defect square swallows a contact/via cut.
func (idx *shapeIndex) cutCovered(ty defect.Type, q geom.Rect) (int, bool) {
	layer := geom.LayerContact
	if ty == defect.MissingVia {
		layer = geom.LayerVia
	}
	net, found := -1, false
	idx.forEach(layer, q, func(sh geom.Shape) {
		if !found && q.ContainsRect(sh.Rect) {
			net, found = sh.Net, true
		}
	})
	return net, found
}

// ValidateAgainst checks the injection campaign against an extracted fault
// list: every observed bridge pair must be predicted (present as a
// KindBridge fault), and every observed open must fall on a net carrying
// at least one open fault. It returns a descriptive error on the first
// unpredicted observation.
func (rep *Report) ValidateAgainst(list *fault.List) error {
	bridges := map[[2]int]bool{}
	opens := map[int]bool{}
	for _, f := range list.Faults {
		switch f.Kind {
		case fault.KindBridge:
			bridges[[2]int{f.NetA, f.NetB}] = true
		case fault.KindOpenInput, fault.KindOpenDriver:
			opens[f.NetA] = true
		}
	}
	for pair, cnt := range rep.PairCounts {
		if !bridges[pair] {
			return fmt.Errorf("montecarlo: observed bridge %v (%d hits) missing from the extracted list", pair, cnt)
		}
	}
	for net, cnt := range rep.OpenCounts {
		if net <= layout.NetVDD {
			continue // power opens are excluded from extraction by design
		}
		if !opens[net] {
			return fmt.Errorf("montecarlo: observed open on net %d (%d hits) missing from the extracted list", net, cnt)
		}
	}
	return nil
}

// WeightCorrelation returns the weighted fraction of observed bridge hits
// that land on the top-q weight quantile of the extracted bridge faults —
// a crude but assumption-free check that empirical fault frequencies track
// extracted weights (it should far exceed q itself).
func (rep *Report) WeightCorrelation(list *fault.List, q float64) float64 {
	type bw struct {
		pair [2]int
		w    float64
	}
	var all []bw
	for _, f := range list.Faults {
		if f.Kind == fault.KindBridge {
			all = append(all, bw{[2]int{f.NetA, f.NetB}, f.Weight})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].w > all[j].w })
	top := map[[2]int]bool{}
	cut := int(q * float64(len(all)))
	for _, b := range all[:cut] {
		top[b.pair] = true
	}
	hits, topHits := 0, 0
	for pair, cnt := range rep.PairCounts {
		hits += cnt
		if top[pair] {
			topHits += cnt
		}
	}
	if hits == 0 {
		return 0
	}
	return float64(topHits) / float64(hits)
}
