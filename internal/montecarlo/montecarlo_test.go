package montecarlo

import (
	"math"
	"testing"

	"defectsim/internal/defect"
	"defectsim/internal/dlmodel"
	"defectsim/internal/extract"
	"defectsim/internal/fault"
	"defectsim/internal/layout"
	"defectsim/internal/netlist"
)

func adderFaults(t testing.TB) (*layout.Layout, *fault.List) {
	t.Helper()
	L, err := layout.Build(netlist.RippleAdder(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	list := extract.Faults(L, defect.Typical())
	list.ScaleToYield(0.75)
	return L, list
}

func TestSimulateLotMatchesClosedForm(t *testing.T) {
	_, list := adderFaults(t)
	// Synthetic detection data: every fault detected at vector 1 except a
	// deterministic 30% of the weight.
	detectedAt := make([]int, len(list.Faults))
	var undet float64
	for i := range list.Faults {
		if i%3 == 0 {
			undet += list.Faults[i].Weight
		} else {
			detectedAt[i] = 1
		}
	}
	det := make([]bool, len(list.Faults))
	for i, d := range detectedAt {
		det[i] = d > 0
	}
	theta := list.WeightedCoverage(det)
	want := dlmodel.Weighted(list.Yield(), theta)

	res := SimulateLot(list, detectedAt, 1, 300000, 42)
	if math.Abs(res.Yield()-0.75) > 0.01 {
		t.Fatalf("empirical yield %.4f, want ≈0.75", res.Yield())
	}
	got := res.DefectLevel()
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("empirical DL %.5f vs closed form %.5f", got, want)
	}
	if res.GoodDies+res.Detected+res.Escapes != res.Dies {
		t.Fatal("lot bookkeeping inconsistent")
	}
	if res.String() == "" {
		t.Fatal("string")
	}
}

func TestSimulateLotFullCoverage(t *testing.T) {
	_, list := adderFaults(t)
	detectedAt := make([]int, len(list.Faults))
	for i := range detectedAt {
		detectedAt[i] = 1
	}
	res := SimulateLot(list, detectedAt, 1, 50000, 7)
	if res.Escapes != 0 {
		t.Fatalf("full detection must ship zero defects, got %d escapes", res.Escapes)
	}
	// And k = 0 (no vectors applied) catches nothing.
	res0 := SimulateLot(list, detectedAt, 0, 50000, 7)
	if res0.Detected != 0 {
		t.Fatal("no vectors, no detections")
	}
	if dl := res0.DefectLevel(); math.Abs(dl-(1-res0.Yield())) > 1e-12 {
		t.Fatalf("untested lot DL must be 1−Y: %g vs %g", dl, 1-res0.Yield())
	}
}

func TestSimulateLotPanicsOnMismatch(t *testing.T) {
	_, list := adderFaults(t)
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	SimulateLot(list, make([]int, 3), 1, 10, 1)
}

func TestInjectDefectsBasics(t *testing.T) {
	L, list := adderFaults(t)
	rep := InjectDefects(L, defect.Typical(), 20000, 11)
	if rep.Total != 20000 {
		t.Fatal("total mismatch")
	}
	if rep.ByEffect[EffectBridge] == 0 {
		t.Fatal("no bridges observed — defect sampling broken")
	}
	if rep.ByEffect[EffectOpen] == 0 {
		t.Fatal("no opens observed")
	}
	if rep.ByEffect[EffectBenign] == 0 {
		t.Fatal("every defect faulting is implausible on a sparse layout")
	}
	sum := 0
	for _, c := range rep.ByEffect {
		sum += c
	}
	if sum != rep.Total {
		t.Fatal("effect counts must partition the total")
	}
	// Completeness: every geometrically observed fault was predicted by
	// the critical-area extraction.
	if err := rep.ValidateAgainst(list); err != nil {
		t.Fatal(err)
	}
}

func TestInjectionFrequenciesTrackWeights(t *testing.T) {
	L, list := adderFaults(t)
	rep := InjectDefects(L, defect.Typical(), 30000, 12)
	// Bridge hits must concentrate on the top weight quartile of the
	// extracted bridges far beyond the 25% a uniform spread would give.
	frac := rep.WeightCorrelation(list, 0.25)
	if frac < 0.5 {
		t.Fatalf("only %.0f%% of bridge hits in the top weight quartile", 100*frac)
	}
	// And the bridge/open ratio must lean bridging under Typical() stats.
	if rep.ByEffect[EffectBridge] <= rep.ByEffect[EffectOpen] {
		t.Fatalf("bridging-dominant statistics must produce more bridges (got %d vs %d)",
			rep.ByEffect[EffectBridge], rep.ByEffect[EffectOpen])
	}
}

func TestInjectionEffectStrings(t *testing.T) {
	if EffectBenign.String() != "benign" || EffectBridge.String() != "bridge" || EffectOpen.String() != "open" {
		t.Fatal("effect strings")
	}
}

func TestInjectionDeterministic(t *testing.T) {
	L, _ := adderFaults(t)
	a := InjectDefects(L, defect.Typical(), 5000, 3)
	b := InjectDefects(L, defect.Typical(), 5000, 3)
	if a.ByEffect[EffectBridge] != b.ByEffect[EffectBridge] ||
		a.ByEffect[EffectOpen] != b.ByEffect[EffectOpen] {
		t.Fatal("injection must be deterministic per seed")
	}
}
