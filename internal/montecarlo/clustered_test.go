package montecarlo

import (
	"math"
	"testing"

	"defectsim/internal/dlmodel"
	"defectsim/internal/yield"
)

func TestClusteredLotMatchesClosedForm(t *testing.T) {
	_, list := adderFaults(t)
	// Deterministic 40% of the weight undetected.
	detectedAt := make([]int, len(list.Faults))
	for i := range list.Faults {
		if i%5 != 0 && i%5 != 1 {
			detectedAt[i] = 1
		}
	}
	det := make([]bool, len(list.Faults))
	for i, d := range detectedAt {
		det[i] = d > 0
	}
	theta := list.WeightedCoverage(det)
	lambda := list.TotalWeight()

	for _, alpha := range []float64{0.5, 2, 1e8} {
		res := SimulateClusteredLot(list, detectedAt, 1, 250000, alpha, 77)
		wantDL := dlmodel.Clustered(lambda, alpha, theta)
		wantY := yield.NegBinomial(lambda, alpha)
		if math.Abs(res.Yield()-wantY) > 0.01 {
			t.Fatalf("α=%g: empirical yield %.4f vs NB %.4f", alpha, res.Yield(), wantY)
		}
		got := res.DefectLevel()
		if math.Abs(got-wantDL) > 0.12*wantDL+0.002 {
			t.Fatalf("α=%g: empirical DL %.5f vs closed form %.5f", alpha, got, wantDL)
		}
	}
}

func TestClusteredLotDegeneratesToPoisson(t *testing.T) {
	_, list := adderFaults(t)
	detectedAt := make([]int, len(list.Faults))
	for i := range detectedAt {
		if i%2 == 0 {
			detectedAt[i] = 1
		}
	}
	a := SimulateClusteredLot(list, detectedAt, 1, 150000, 1e9, 5)
	b := SimulateLot(list, detectedAt, 1, 150000, 5)
	if math.Abs(a.Yield()-b.Yield()) > 0.01 {
		t.Fatalf("α→∞ yield %.4f vs Poisson %.4f", a.Yield(), b.Yield())
	}
	if math.Abs(a.DefectLevel()-b.DefectLevel()) > 0.01 {
		t.Fatalf("α→∞ DL %.5f vs Poisson %.5f", a.DefectLevel(), b.DefectLevel())
	}
}

func TestClusteringShrinksDefectLevel(t *testing.T) {
	// Same λ and Θ: clustered lots ship fewer defects (faults pile onto
	// fewer dies, and catching one fault scraps the die).
	_, list := adderFaults(t)
	detectedAt := make([]int, len(list.Faults))
	for i := range detectedAt {
		if i%3 != 0 {
			detectedAt[i] = 1
		}
	}
	clustered := SimulateClusteredLot(list, detectedAt, 1, 250000, 0.5, 9)
	poisson := SimulateLot(list, detectedAt, 1, 250000, 9)
	if clustered.DefectLevel() >= poisson.DefectLevel() {
		t.Fatalf("clustering must shrink DL: %.5f vs %.5f",
			clustered.DefectLevel(), poisson.DefectLevel())
	}
	// And raise yield.
	if clustered.Yield() <= poisson.Yield() {
		t.Fatal("clustering must raise yield at equal λ")
	}
}

func TestClusteredLotPanics(t *testing.T) {
	_, list := adderFaults(t)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("alpha", func() {
		SimulateClusteredLot(list, make([]int, len(list.Faults)), 1, 10, 0, 1)
	})
	mustPanic("mismatch", func() {
		SimulateClusteredLot(list, make([]int, 1), 1, 10, 1, 1)
	})
}
