// Package montecarlo provides the sampling-based validation instruments of
// the pipeline:
//
//   - production-lot simulation: dice carry Poisson-sampled realistic
//     faults; applying the test campaign's detection data yields an
//     *empirical* defect level to compare against the closed-form models
//     (eq. 3 / eq. 11);
//   - geometric defect injection: random spot defects are dropped on the
//     actual mask geometry and their electrical effect is derived
//     independently of the critical-area engine, cross-validating the
//     extracted fault list (completeness and relative likelihoods).
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"defectsim/internal/fault"
)

// LotResult summarizes a simulated production lot.
type LotResult struct {
	Dies     int
	GoodDies int // no fault present
	Detected int // faulty and caught by the test set
	Escapes  int // faulty and shipped
}

// Yield returns the fraction of fault-free dies.
func (r LotResult) Yield() float64 {
	if r.Dies == 0 {
		return 0
	}
	return float64(r.GoodDies) / float64(r.Dies)
}

// DefectLevel returns shipped-defective over shipped (the quantity DL
// models predict).
func (r LotResult) DefectLevel() float64 {
	shipped := r.Dies - r.Detected
	if shipped == 0 {
		return 0
	}
	return float64(r.Escapes) / float64(shipped)
}

func (r LotResult) String() string {
	return fmt.Sprintf("%d dies: yield %.4f, %d detected, %d escapes → DL %.1f ppm",
		r.Dies, r.Yield(), r.Detected, r.Escapes, 1e6*r.DefectLevel())
}

// SimulateLot manufactures dies whose fault populations follow the
// weighted list's Poisson statistics (fault j occurs with rate w_j,
// independently), tests each die with the first k vectors of the campaign
// (detectedAt[j] is fault j's first-detection index, 0 = never detected)
// and returns the lot bookkeeping.
//
// A faulty die is caught when any of its present faults is individually
// detected — the single-fault-observability assumption shared with the
// analytic models, so the result validates the models' probability
// algebra, not fault-interaction effects.
func SimulateLot(list *fault.List, detectedAt []int, k, dies int, seed int64) LotResult {
	if len(detectedAt) != len(list.Faults) {
		panic("montecarlo: detection data does not match the fault list")
	}
	rng := rand.New(rand.NewSource(seed))
	lambda := list.TotalWeight()

	// Cumulative weights for O(log n) fault draws: occurrences of a
	// Poisson superposition select fault j with probability w_j/λ.
	cum := make([]float64, len(list.Faults))
	var acc float64
	for i, f := range list.Faults {
		acc += f.Weight
		cum[i] = acc
	}

	var res LotResult
	res.Dies = dies
	for d := 0; d < dies; d++ {
		n := poisson(rng, lambda)
		if n == 0 {
			res.GoodDies++
			continue
		}
		caught := false
		for i := 0; i < n && !caught; i++ {
			u := rng.Float64() * lambda
			j := sort.SearchFloat64s(cum, u)
			if j >= len(cum) {
				j = len(cum) - 1
			}
			if det := detectedAt[j]; det > 0 && det <= k {
				caught = true
			}
		}
		if caught {
			res.Detected++
		} else {
			res.Escapes++
		}
	}
	return res
}

// poisson draws from Poisson(rate) by exponential inter-arrival
// multiplication (rate is small in this application).
func poisson(rng *rand.Rand, rate float64) int {
	l := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
