package montecarlo

import (
	"math"
	"math/rand"
	"sort"

	"defectsim/internal/fault"
)

// SimulateClusteredLot is SimulateLot under Stapper-clustered defect
// statistics: each die draws its own defect rate multiplier from a
// Gamma(α, 1/α) distribution (mean 1) before Poisson fault sampling, so
// the marginal fault count is negative-binomial with clustering parameter
// α. As α → ∞ this degenerates to SimulateLot. The result validates the
// clustered defect-level model dlmodel.Clustered.
func SimulateClusteredLot(list *fault.List, detectedAt []int, k, dies int, alpha float64, seed int64) LotResult {
	if len(detectedAt) != len(list.Faults) {
		panic("montecarlo: detection data does not match the fault list")
	}
	if alpha <= 0 {
		panic("montecarlo: clustering parameter must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	lambda := list.TotalWeight()

	cum := make([]float64, len(list.Faults))
	var acc float64
	for i, f := range list.Faults {
		acc += f.Weight
		cum[i] = acc
	}

	var res LotResult
	res.Dies = dies
	for d := 0; d < dies; d++ {
		rate := lambda * gammaVariate(rng, alpha) / alpha
		n := poisson(rng, rate)
		if n == 0 {
			res.GoodDies++
			continue
		}
		caught := false
		for i := 0; i < n && !caught; i++ {
			u := rng.Float64() * lambda
			j := sort.SearchFloat64s(cum, u)
			if j >= len(cum) {
				j = len(cum) - 1
			}
			if det := detectedAt[j]; det > 0 && det <= k {
				caught = true
			}
		}
		if caught {
			res.Detected++
		} else {
			res.Escapes++
		}
	}
	return res
}

// gammaVariate draws from Gamma(shape, 1) via Marsaglia–Tsang, with the
// standard boost for shape < 1.
func gammaVariate(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaVariate(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
