// Package faultinject provides named fault-injection hook points for the
// pipeline's robustness tests. Production code fires hooks at well-known
// points (one per long-running subsystem); tests install behaviors — an
// error, a panic, a stall, an artificial slowdown — to exercise the
// hardened execution layer: cancellation latency, stage-budget
// enforcement, panic isolation and partial-result correctness.
//
// The harness is disarmed by default: Fire is a single atomic load when no
// hook is installed, so the hook points cost (almost) nothing in
// production. Hooks are global, guarded by a mutex, and restored by the
// function Set returns, so tests compose without coordination as long as
// they do not run in parallel against the same hook point.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Hook point names fired by the pipeline subsystems.
const (
	// HookLayoutBuild fires on entry to layout construction.
	HookLayoutBuild = "layout.build"
	// HookExtractFaults fires on entry to inductive fault extraction.
	HookExtractFaults = "extract.faults"
	// HookATPGFault fires once per fault targeted by deterministic
	// generation (the ATPG top-up loop).
	HookATPGFault = "atpg.fault"
	// HookGateSimBlock fires once per 64-pattern block of the gate-level
	// fault simulator.
	HookGateSimBlock = "gatesim.block"
	// HookSwitchSimVector fires once per vector applied by the
	// switch-level fault simulator.
	HookSwitchSimVector = "switchsim.vector"
	// HookStoreGet / HookStorePut / HookStoreStat fire on entry to the
	// corresponding operation of a result-store backend (internal/store),
	// with the target carrying the backend name.
	HookStoreGet  = "store.get"
	HookStorePut  = "store.put"
	HookStoreStat = "store.stat"
	// HookCacheWrite fires inside the atomic cache write, after the temp
	// file is written and fsynced but before the rename commits it. The
	// target carries the temp file path, so a test can verify the data is
	// durable-ordered before the rename; an injected error aborts the
	// write (the crash-before-commit case), leaving the destination
	// untouched.
	HookCacheWrite = "cache.write"
	// HookNetRequest fires once per HTTP attempt of the remote-store and
	// cluster-peer clients, before the request is sent, with the target
	// carrying the destination host. An injected error is treated as a
	// transport failure (retryable, breaker-counted) — the standard way to
	// make a peer unreachable in tests.
	HookNetRequest = "net.request"
	// HookMembershipReload fires inside cluster.Reload after the new view
	// is validated and built but before it is swapped in — the window
	// where /readyz must report unready. The target is the reloading
	// node's name. A returned error aborts the reload, leaving the old
	// view in place.
	HookMembershipReload = "cluster.membership.reload"
	// HookStoreServeGet fires in the serving layer's store GET handler
	// before the envelope is written. Returning ErrPartialResponse makes
	// the handler advertise the full Content-Length but truncate the body
	// mid-envelope — the canonical partial-response injection.
	HookStoreServeGet = "store.serve.get"
)

// ErrPartialResponse, returned from a HookStoreServeGet hook, instructs
// the store GET handler to send a truncated body under the full
// Content-Length, so the client observes a short read instead of a clean
// error.
var ErrPartialResponse = errors.New("faultinject: partial response injected")

// targetKey carries the hook target (a peer host, a backend name, a temp
// file path) through the context so one global hook point can act on a
// specific destination.
type targetKey struct{}

// WithTarget returns ctx annotated with the firing site's target.
func WithTarget(ctx context.Context, target string) context.Context {
	return context.WithValue(ctx, targetKey{}, target)
}

// TargetFrom returns the target annotated by WithTarget, or "".
func TargetFrom(ctx context.Context) string {
	t, _ := ctx.Value(targetKey{}).(string)
	return t
}

// Hook is a behavior injected at a hook point. A non-nil returned error
// aborts the surrounding stage with that error; a panic exercises the
// stage's panic isolation.
type Hook func(ctx context.Context) error

var (
	armed atomic.Bool
	mu    sync.Mutex
	hooks = map[string]Hook{}
)

// Set installs fn at the named hook point and returns a function restoring
// the previous state. Tests must call the restore function (usually via
// defer) so later tests see a disarmed harness.
func Set(name string, fn Hook) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	prev, had := hooks[name]
	hooks[name] = fn
	armed.Store(true)
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if had {
			hooks[name] = prev
		} else {
			delete(hooks, name)
		}
		if len(hooks) == 0 {
			armed.Store(false)
		}
	}
}

// Fire invokes the hook installed at name, if any. With no hooks installed
// anywhere it is a single atomic load.
func Fire(ctx context.Context, name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	fn := hooks[name]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(ctx)
}

// Stall is a Hook that blocks until the context is cancelled and returns
// its error: the canonical "stuck stage" used to measure cancellation
// latency.
func Stall(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// Sleep returns a Hook that delays each firing by d (a uniformly slow
// stage), respecting cancellation mid-sleep.
func Sleep(d time.Duration) Hook {
	return func(ctx context.Context) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Fail returns a Hook that fails every firing with err.
func Fail(err error) Hook {
	return func(context.Context) error { return err }
}

// Panic returns a Hook that panics with the given message, for exercising
// stage panic isolation.
func Panic(msg string) Hook {
	return func(context.Context) error { panic(fmt.Sprintf("faultinject: %s", msg)) }
}

// After returns a Hook that passes n-1 firings and then behaves like fn
// forever after, for failing mid-way through a stage.
func After(n int, fn Hook) Hook {
	var calls atomic.Int64
	return func(ctx context.Context) error {
		if calls.Add(1) < int64(n) {
			return nil
		}
		return fn(ctx)
	}
}

// Until returns a Hook that behaves like fn for the first n firings and
// passes forever after — the complement of After, for a peer or backend
// that is down for a while and then recovers.
func Until(n int, fn Hook) Hook {
	var calls atomic.Int64
	return func(ctx context.Context) error {
		if calls.Add(1) > int64(n) {
			return nil
		}
		return fn(ctx)
	}
}

// ForTarget returns a Hook that applies fn only when the firing context's
// target (WithTarget) contains the given substring, passing every other
// firing. Substring matching lets a test name a peer by host:port while
// the firing site annotates a fuller URL or path.
func ForTarget(target string, fn Hook) Hook {
	return func(ctx context.Context) error {
		if target != "" && !strings.Contains(TargetFrom(ctx), target) {
			return nil
		}
		return fn(ctx)
	}
}
