package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFireWithoutHooksIsNil(t *testing.T) {
	if err := Fire(context.Background(), HookATPGFault); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
}

func TestSetAndRestore(t *testing.T) {
	boom := errors.New("boom")
	restore := Set(HookLayoutBuild, Fail(boom))
	if err := Fire(context.Background(), HookLayoutBuild); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// Other hook points stay disarmed.
	if err := Fire(context.Background(), HookATPGFault); err != nil {
		t.Fatalf("unrelated hook fired: %v", err)
	}
	restore()
	if err := Fire(context.Background(), HookLayoutBuild); err != nil {
		t.Fatalf("restored hook still firing: %v", err)
	}
}

func TestRestoreReinstatesPreviousHook(t *testing.T) {
	first := errors.New("first")
	second := errors.New("second")
	r1 := Set(HookExtractFaults, Fail(first))
	r2 := Set(HookExtractFaults, Fail(second))
	if err := Fire(context.Background(), HookExtractFaults); !errors.Is(err, second) {
		t.Fatalf("got %v, want second", err)
	}
	r2()
	if err := Fire(context.Background(), HookExtractFaults); !errors.Is(err, first) {
		t.Fatalf("got %v, want first after nested restore", err)
	}
	r1()
	if err := Fire(context.Background(), HookExtractFaults); err != nil {
		t.Fatalf("got %v after full restore", err)
	}
}

func TestStallReturnsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Stall(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Stall did not return after cancel")
	}
}

func TestSleepRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(time.Minute)(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestAfter(t *testing.T) {
	boom := errors.New("boom")
	h := After(3, Fail(boom))
	for i := 0; i < 2; i++ {
		if err := h(context.Background()); err != nil {
			t.Fatalf("call %d failed early: %v", i+1, err)
		}
	}
	if err := h(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("third call: got %v, want boom", err)
	}
	if err := h(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("later calls must keep failing, got %v", err)
	}
}

func TestPanicHookPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Panic hook did not panic")
		}
	}()
	_ = Panic("test")(context.Background())
}

// TestConcurrentFireAndSet exercises the harness under the race detector:
// concurrent Fire calls while hooks are installed and removed.
func TestConcurrentFireAndSet(t *testing.T) {
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = Fire(context.Background(), HookSwitchSimVector)
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		restore := Set(HookSwitchSimVector, func(context.Context) error { return nil })
		restore()
	}
	close(stop)
	wg.Wait()
	if err := Fire(context.Background(), HookSwitchSimVector); err != nil {
		t.Fatalf("harness not disarmed after test: %v", err)
	}
}

func TestUntilPassesAfterN(t *testing.T) {
	boom := errors.New("down")
	h := Until(2, Fail(boom))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := h(ctx); !errors.Is(err, boom) {
			t.Fatalf("firing %d: got %v, want boom", i+1, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := h(ctx); err != nil {
			t.Fatalf("recovered firing %d: got %v, want nil", i+1, err)
		}
	}
}

func TestForTargetFiltersByContext(t *testing.T) {
	boom := errors.New("unreachable")
	h := ForTarget("peer-b:8447", Fail(boom))
	hit := WithTarget(context.Background(), "http://peer-b:8447/v1/pipeline")
	if err := h(hit); !errors.Is(err, boom) {
		t.Fatalf("matching target: got %v, want boom", err)
	}
	miss := WithTarget(context.Background(), "http://peer-c:8447/v1/pipeline")
	if err := h(miss); err != nil {
		t.Fatalf("other target: got %v, want nil", err)
	}
	if err := h(context.Background()); err != nil {
		t.Fatalf("no target annotation: got %v, want nil", err)
	}
}

func TestTargetFromRoundTrip(t *testing.T) {
	if got := TargetFrom(context.Background()); got != "" {
		t.Fatalf("bare context target = %q, want empty", got)
	}
	ctx := WithTarget(context.Background(), "fs")
	if got := TargetFrom(ctx); got != "fs" {
		t.Fatalf("target = %q, want fs", got)
	}
}
