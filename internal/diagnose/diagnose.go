// Package diagnose implements fault-dictionary diagnosis: matching an
// observed failure signature (which vectors failed at which primary
// outputs) against the precomputed signatures of the single stuck-at
// universe. Real defects — bridges, opens — are diagnosed through their
// stuck-at *surrogates*: the highest-scoring stuck-at candidates localize
// the defective nets even though no stuck-at fault reproduces the defect's
// behaviour exactly. The experiments use this to close the paper's loop
// from fallout back to physical defects.
package diagnose

import (
	"fmt"
	"sort"

	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
)

// Dictionary is a full-response fault dictionary over a test set.
type Dictionary struct {
	Netlist  *netlist.Netlist
	Faults   []fault.StuckAt
	Sigs     [][]gatesim.Fail
	patterns int
}

// Build simulates the fault universe without dropping and stores every
// failing observation.
func Build(nl *netlist.Netlist, faults []fault.StuckAt, patterns []gatesim.Pattern) (*Dictionary, error) {
	sigs, err := gatesim.Signatures(nl, faults, patterns)
	if err != nil {
		return nil, err
	}
	return &Dictionary{Netlist: nl, Faults: faults, Sigs: sigs, patterns: len(patterns)}, nil
}

// Candidate is one scored diagnosis.
type Candidate struct {
	Fault fault.StuckAt
	// Match counts observations predicted by the candidate and seen;
	// Mispredict counts predicted but unseen; Nonpredict counts seen but
	// unpredicted (classic match/mis/non diagnosis metrics).
	Match, Mispredict, Nonpredict int
}

// Score orders candidates: more matches first, then fewer mispredictions,
// then fewer nonpredictions.
func (c Candidate) Score() (int, int, int) { return c.Match, -c.Mispredict, -c.Nonpredict }

func (c Candidate) String() string {
	return fmt.Sprintf("%v (match %d, mis %d, non %d)", c.Fault, c.Match, c.Mispredict, c.Nonpredict)
}

type failKey struct {
	vector int
	poMask uint64
}

// DiagnoseStructural is Diagnose with classic region pruning: only faults
// whose net lies in the union fanin cone of the failing primary outputs
// are considered. Structurally impossible candidates (whose signature
// happens to intersect the observation through aliasing) are discarded
// before scoring.
func (d *Dictionary) DiagnoseStructural(observed []gatesim.Fail, topN int) []Candidate {
	var failingPOs []int
	seen := uint64(0)
	for _, f := range observed {
		seen |= f.POMask
	}
	for i, po := range d.Netlist.POs {
		if seen&(1<<uint(i)) != 0 {
			failingPOs = append(failingPOs, po)
		}
	}
	if len(failingPOs) == 0 {
		return nil
	}
	cone := d.Netlist.FaninCone(failingPOs...)
	cands := d.Diagnose(observed, 0)
	out := cands[:0]
	for _, c := range cands {
		if cone[c.Fault.Net] {
			out = append(out, c)
		}
	}
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// Diagnose ranks the dictionary against the observed failures and returns
// the topN candidates (all candidates with at least one match when topN ≤
// 0). Observations match at (vector, output) granularity.
func (d *Dictionary) Diagnose(observed []gatesim.Fail, topN int) []Candidate {
	obs := map[int]uint64{}
	for _, f := range observed {
		obs[f.Vector] |= f.POMask
	}
	var obsBits int
	for _, m := range obs {
		obsBits += popcount(m)
	}
	var cands []Candidate
	for i, sig := range d.Sigs {
		var match, mis int
		for _, f := range sig {
			m := f.POMask & obs[f.Vector]
			match += popcount(m)
			mis += popcount(f.POMask &^ obs[f.Vector])
		}
		if match == 0 {
			continue
		}
		cands = append(cands, Candidate{
			Fault: d.Faults[i], Match: match, Mispredict: mis,
			Nonpredict: obsBits - match,
		})
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		m1, s1, n1 := ca.Score()
		m2, s2, n2 := cb.Score()
		if m1 != m2 {
			return m1 > m2
		}
		if s1 != s2 {
			return s1 > s2
		}
		if n1 != n2 {
			return n1 > n2
		}
		// Deterministic tiebreak.
		if ca.Fault.Net != cb.Fault.Net {
			return ca.Fault.Net < cb.Fault.Net
		}
		if ca.Fault.Branch != cb.Fault.Branch {
			return ca.Fault.Branch < cb.Fault.Branch
		}
		return ca.Fault.Value < cb.Fault.Value
	})
	if topN > 0 && len(cands) > topN {
		cands = cands[:topN]
	}
	return cands
}

// ImplicatedNets returns the distinct nets of the top candidates, in rank
// order — the localization a failure analyst would act on.
func ImplicatedNets(cands []Candidate) []int {
	seen := map[int]bool{}
	var nets []int
	for _, c := range cands {
		if !seen[c.Fault.Net] {
			seen[c.Fault.Net] = true
			nets = append(nets, c.Fault.Net)
		}
	}
	return nets
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
