package diagnose

import (
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
)

func exhaustive(nPI int) []gatesim.Pattern {
	out := make([]gatesim.Pattern, 1<<uint(nPI))
	for v := range out {
		p := make(gatesim.Pattern, nPI)
		for i := 0; i < nPI; i++ {
			p[i] = uint8((v >> uint(i)) & 1)
		}
		out[v] = p
	}
	return out
}

func c17Dictionary(t *testing.T) (*Dictionary, []gatesim.Pattern) {
	t.Helper()
	nl := netlist.C17()
	pats := exhaustive(5)
	d, err := Build(nl, fault.StuckAtUniverse(nl), pats)
	if err != nil {
		t.Fatal(err)
	}
	return d, pats
}

func TestSelfDiagnosisRanksInjectedFaultFirst(t *testing.T) {
	// Feeding a fault's own signature back must rank that fault (or an
	// equivalent one with the identical signature) first with zero
	// mis/nonpredictions.
	d, _ := c17Dictionary(t)
	for i, f := range d.Faults {
		if len(d.Sigs[i]) == 0 {
			t.Fatalf("fault %v undetected by exhaustive set", f)
		}
		cands := d.Diagnose(d.Sigs[i], 5)
		if len(cands) == 0 {
			t.Fatalf("fault %v: no candidates", f)
		}
		top := cands[0]
		if top.Mispredict != 0 || top.Nonpredict != 0 {
			t.Fatalf("fault %v: top candidate %v has residuals", f, top)
		}
		// The injected fault must appear among the perfect-score heads.
		found := false
		for _, c := range cands {
			if c.Match != top.Match || c.Mispredict != 0 || c.Nonpredict != 0 {
				break
			}
			if c.Fault == f {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fault %v not among the perfect candidates: %v", f, cands)
		}
	}
}

func TestDiagnoseEmptyObservation(t *testing.T) {
	d, _ := c17Dictionary(t)
	if cands := d.Diagnose(nil, 10); len(cands) != 0 {
		t.Fatalf("no failures, no candidates: %v", cands)
	}
}

func TestDiagnoseTopNAndImplicatedNets(t *testing.T) {
	d, _ := c17Dictionary(t)
	cands := d.Diagnose(d.Sigs[0], 3)
	if len(cands) > 3 {
		t.Fatal("topN not honored")
	}
	nets := ImplicatedNets(cands)
	if len(nets) == 0 || len(nets) > 3 {
		t.Fatalf("implicated nets: %v", nets)
	}
	seen := map[int]bool{}
	for _, n := range nets {
		if seen[n] {
			t.Fatal("duplicate net")
		}
		seen[n] = true
	}
	if cands[0].String() == "" {
		t.Fatal("string")
	}
}

func TestDiagnoseNoisyObservation(t *testing.T) {
	// Corrupt a signature by dropping one observation: the fault must
	// still rank at the top (fewest nonpredictions among high-match
	// candidates tolerated).
	d, _ := c17Dictionary(t)
	for i, f := range d.Faults {
		if len(d.Sigs[i]) < 3 {
			continue
		}
		obs := append([]gatesim.Fail(nil), d.Sigs[i][1:]...)
		cands := d.Diagnose(obs, 5)
		found := false
		for _, c := range cands {
			if c.Fault == f {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("fault %v lost after dropping one observation", f)
		}
		break
	}
}

func TestSignaturesConsistentWithSimulate(t *testing.T) {
	// First-failure of the signature must equal Simulate's DetectedAt.
	nl := netlist.C432Class(2)
	faults := fault.StuckAtUniverse(nl)
	pats := gatesim.RandomPatterns(nl, 128, 4)
	sigs, err := gatesim.Signatures(nl, faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gatesim.Simulate(nl, faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		want := res.DetectedAt[i]
		if len(sigs[i]) == 0 {
			if want != 0 {
				t.Fatalf("fault %v: Simulate detects at %d, signature empty", faults[i], want)
			}
			continue
		}
		if got := sigs[i][0].Vector + 1; got != want {
			t.Fatalf("fault %v: first failure %d vs DetectedAt %d", faults[i], got, want)
		}
		for j := 1; j < len(sigs[i]); j++ {
			if sigs[i][j].Vector <= sigs[i][j-1].Vector {
				t.Fatal("signature vectors must be strictly increasing")
			}
		}
		for _, fl := range sigs[i] {
			if fl.POMask == 0 {
				t.Fatal("failing observation with empty PO mask")
			}
		}
	}
}

func TestDiagnoseStructuralPrunes(t *testing.T) {
	d, _ := c17Dictionary(t)
	nl := d.Netlist
	// Observe only failures at PO 0 (G22): every structural candidate must
	// lie in G22's fanin cone.
	cone := nl.FaninCone(nl.POs[0])
	for i := range d.Faults {
		var obs []gatesim.Fail
		for _, f := range d.Sigs[i] {
			if f.POMask&1 != 0 {
				obs = append(obs, gatesim.Fail{Vector: f.Vector, POMask: 1})
			}
		}
		if len(obs) == 0 {
			continue
		}
		cands := d.DiagnoseStructural(obs, 0)
		if len(cands) == 0 {
			t.Fatalf("fault %v: structural diagnosis empty", d.Faults[i])
		}
		for _, c := range cands {
			if !cone[c.Fault.Net] {
				t.Fatalf("candidate %v outside the failing PO's cone", c)
			}
		}
		// Structural candidates are a subset of plain candidates.
		plain := d.Diagnose(obs, 0)
		if len(cands) > len(plain) {
			t.Fatal("pruning added candidates")
		}
	}
	if got := d.DiagnoseStructural(nil, 5); got != nil {
		t.Fatal("no failures → no candidates")
	}
}
