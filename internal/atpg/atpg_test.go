package atpg

import (
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
)

func TestEval3Matches2Valued(t *testing.T) {
	types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or,
		netlist.Nor, netlist.Xor, netlist.Xnor}
	for _, gt := range types {
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				in3 := []V3{[2]V3{L0, L1}[a], [2]V3{L0, L1}[b]}
				want := gt.Eval([]uint64{uint64(a), uint64(b)}) & 1
				got := eval3(gt, in3)
				if (got == L1) != (want == 1) || got == X3 {
					t.Errorf("%v(%d,%d) = %v, want %d", gt, a, b, got, want)
				}
			}
		}
	}
	if eval3(netlist.Not, []V3{X3}) != X3 {
		t.Fatal("NOT(X) must be X")
	}
	// Controlling values dominate X.
	if eval3(netlist.And, []V3{L0, X3}) != L0 {
		t.Fatal("AND(0,X) must be 0")
	}
	if eval3(netlist.Nor, []V3{L1, X3}) != L0 {
		t.Fatal("NOR(1,X) must be 0")
	}
	if eval3(netlist.Xor, []V3{L1, X3}) != X3 {
		t.Fatal("XOR(1,X) must be X")
	}
	if eval3(netlist.Buf, []V3{L1}) != L1 {
		t.Fatal("BUF(1)")
	}
}

func TestGenerateDetectsAllC17Faults(t *testing.T) {
	nl := netlist.C17()
	gen, err := NewGenerator(nl)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.StuckAtUniverse(nl)
	for _, f := range faults {
		pat, status := gen.Generate(f, 1000)
		if status != StatusDetected {
			t.Fatalf("fault %v: status %v", f, status)
		}
		// Verify the pattern with the reference fault simulator.
		res, err := gatesim.Simulate(nl, []fault.StuckAt{f}, []gatesim.Pattern{pat})
		if err != nil {
			t.Fatal(err)
		}
		if res.DetectedAt[0] != 1 {
			t.Fatalf("fault %v: generated pattern does not detect it", f)
		}
	}
}

func TestGenerateFindsUntestable(t *testing.T) {
	// y = OR(a, NOT(a)) ≡ 1: y/sa1 is redundant.
	nl := netlist.New("taut")
	a := nl.AddPI("a")
	na := nl.AddGate(netlist.Not, "na", a)
	y := nl.AddGate(netlist.Or, "y", a, na)
	nl.MarkPO(y)
	gen, err := NewGenerator(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, status := gen.Generate(fault.StuckAt{Net: y, Branch: -1, Value: 1}, 1000); status != StatusUntestable {
		t.Fatalf("redundant fault classified %v", status)
	}
	// And the testable polarity still works.
	if _, status := gen.Generate(fault.StuckAt{Net: y, Branch: -1, Value: 0}, 1000); status != StatusDetected {
		t.Fatalf("y/sa0 must be testable, got %v", status)
	}
}

func TestGenerateXorCircuit(t *testing.T) {
	nl := netlist.ParityTree(6)
	gen, err := NewGenerator(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fault.StuckAtUniverse(nl) {
		pat, status := gen.Generate(f, 5000)
		if status != StatusDetected {
			t.Fatalf("parity fault %v: %v", f, status)
		}
		res, _ := gatesim.Simulate(nl, []fault.StuckAt{f}, []gatesim.Pattern{pat})
		if res.DetectedAt[0] != 1 {
			t.Fatalf("parity fault %v: bad pattern", f)
		}
	}
}

func TestBuildTestSetC432Class(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	ts, err := BuildTestSet(nl, faults, 64, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if ts.RandomCount != 64 {
		t.Fatal("random count")
	}
	if len(ts.Patterns) <= 64 {
		t.Fatal("deterministic top-up expected beyond the random prefix")
	}
	// Coverage over testable faults should be essentially complete; allow
	// a small aborted remainder.
	cov := ts.Coverage(true)
	if cov < 0.97 {
		t.Fatalf("testable coverage %.4f < 0.97", cov)
	}
	// Cross-check DetectedAt against an independent full simulation.
	res, err := gatesim.Simulate(nl, faults, ts.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		if (ts.DetectedAt[i] > 0) != (res.DetectedAt[i] > 0) {
			t.Fatalf("fault %v: BuildTestSet says %d, reference says %d",
				faults[i], ts.DetectedAt[i], res.DetectedAt[i])
		}
	}
	// >80% coverage from random vectors alone (paper: "more than 80%
	// fault coverage is in general achieved with random vectors").
	if got := res.Coverage(64); got < 0.8 {
		t.Fatalf("random-prefix coverage %.3f < 0.8", got)
	}
}

func TestStatusString(t *testing.T) {
	if StatusDetected.String() != "detected" || StatusUntestable.String() != "untestable" ||
		StatusAborted.String() != "aborted" {
		t.Fatal("status strings")
	}
	if L0.String() != "0" || L1.String() != "1" || X3.String() != "X" {
		t.Fatal("V3 strings")
	}
}

func TestSCOAPSanity(t *testing.T) {
	nl := netlist.C17()
	gen, err := NewGenerator(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range nl.PIs {
		if gen.cc0[pi] != 1 || gen.cc1[pi] != 1 {
			t.Fatal("PI controllability must be 1")
		}
	}
	for _, g := range nl.Gates {
		if gen.cc0[g.Out] <= 1 || gen.cc1[g.Out] <= 1 {
			t.Fatal("gate output controllability must exceed PI cost")
		}
	}
}
