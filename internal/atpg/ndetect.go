package atpg

import (
	"context"
	"fmt"

	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

// n-detection test sets (Pomeranz & Reddy): a test set T is an n-detect
// set when every testable stuck-at fault is detected by at least n
// distinct vectors of T. The motivation is the paper's surrogate-coverage
// gap — a fault detected once may sit on a defect (resistive bridge,
// partial open) whose analog behavior masks that single detection, while
// n independent detections excite the site under n different line
// conditions and close most of the gap between stuck-at coverage T and
// realistic coverage Θ (eq. 9).

// NDetectSet is the outcome of BuildNDetectTestSet: a base test set plus
// appended top-up vectors, with per-fault detection multiplicity.
type NDetectSet struct {
	// N is the target detection multiplicity.
	N int
	// Patterns holds the base set followed by the appended top-up
	// vectors. Appended vectors are pairwise distinct and distinct from
	// every base vector; the base is taken as-is (it may contain
	// duplicate random stimuli, each of which earns its own credit —
	// counts are per applied vector, matching gatesim counting mode).
	Patterns []gatesim.Pattern
	// BaseCount is how many leading patterns came from the base set.
	BaseCount int
	// DetectCounts[i] is fault i's detection count, capped at N.
	DetectCounts []int
	// NthDetectedAt[i] is the 1-based index of the vector supplying the
	// N-th detection, 0 when fault i never reached N detections.
	NthDetectedAt []int
	// Untestable marks faults proven redundant (carried in from the base
	// build or discovered during top-up generation).
	Untestable []bool
	// Saturated marks testable faults the top-up could not push to N
	// detections: the generator found no further distinct detecting
	// vector (exhausted or aborted search).
	Saturated []bool
	// Incomplete marks a set whose top-up stopped early on cancellation
	// or budget expiry.
	Incomplete bool
}

// Added returns the number of top-up vectors appended to the base set.
func (s *NDetectSet) Added() int { return len(s.Patterns) - s.BaseCount }

// FullyDetected returns how many faults reached N detections.
func (s *NDetectSet) FullyDetected() int {
	n := 0
	for _, c := range s.DetectCounts {
		if c >= s.N {
			n++
		}
	}
	return n
}

// Coverage returns the fraction of faults detected N times, over testable
// faults if excludeUntestable, else over all faults. Precedence matches
// TestSet.Coverage: a fault that reached N detections counts as covered
// even if also marked untestable.
func (s *NDetectSet) Coverage(excludeUntestable bool) float64 {
	det, tot := 0, 0
	for i, c := range s.DetectCounts {
		if excludeUntestable && s.Untestable[i] && c < s.N {
			continue
		}
		tot++
		if c >= s.N {
			det++
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(det) / float64(tot)
}

// BuildNDetectTestSet grows base into an n-detect test set: every fault
// with fewer than n detections under base (counted by the gatesim
// counting mode) is targeted with deterministic generation until it
// reaches n distinct detecting vectors, is proven untestable, or the
// search saturates. Each accepted vector is fault-simulated against every
// still-short fault so cross-detection credit accrues and later targets
// need fewer vectors.
//
// Distinctness is forced through GenerateConstrained: when the plain
// PODEM solution duplicates an existing vector, the generator is re-run
// with one primary input constrained to the opposite value, scanning PIs
// until a fresh detecting vector appears. untestable carries prior
// knowledge from the base build (nil means none). The context is checked
// between faults; when it ends mid-build the partial set is returned
// marked Incomplete together with the context's error.
func BuildNDetectTestSet(ctx context.Context, nl *netlist.Netlist, faults []fault.StuckAt, base []gatesim.Pattern, untestable []bool, n, backtrackLimit, workers int, tr *obs.Tracer) (*NDetectSet, error) {
	if n < 1 {
		return nil, fmt.Errorf("atpg: n-detect requires n >= 1, got %d", n)
	}
	reg := tr.Metrics()
	gen, err := NewGenerator(nl)
	if err != nil {
		return nil, err
	}
	gen.Instrument(reg)

	s := &NDetectSet{
		N:             n,
		Patterns:      append([]gatesim.Pattern(nil), base...),
		BaseCount:     len(base),
		DetectCounts:  make([]int, len(faults)),
		NthDetectedAt: make([]int, len(faults)),
		Untestable:    make([]bool, len(faults)),
		Saturated:     make([]bool, len(faults)),
	}
	if untestable != nil {
		copy(s.Untestable, untestable)
	}

	sp := tr.StartSpan("ndetect-base-sim")
	res, err := gatesim.SimulateFaultsNCtx(ctx, nl, faults, base, n, workers, reg)
	if err != nil {
		sp.End()
		s.Incomplete = true
		copy(s.DetectCounts, res.DetectCounts)
		copy(s.NthDetectedAt, res.NthDetectedAt)
		return s, err
	}
	copy(s.DetectCounts, res.DetectCounts)
	copy(s.NthDetectedAt, res.NthDetectedAt)
	sp.End()

	seen := make(map[string]bool, len(base))
	for _, p := range base {
		seen[string(p)] = true
	}

	// credit fault-simulates one accepted vector (already appended at
	// 1-based index k) against every still-short fault.
	credit := func(pat gatesim.Pattern, k int) error {
		var rem []fault.StuckAt
		var remIdx []int
		for j := range faults {
			if s.DetectCounts[j] < n && !s.Untestable[j] {
				rem = append(rem, faults[j])
				remIdx = append(remIdx, j)
			}
		}
		r, err := gatesim.SimulateFaultsCtx(ctx, nl, rem, []gatesim.Pattern{pat}, workers, reg)
		if err != nil {
			return err
		}
		for jj, d := range r.DetectedAt {
			if d == 0 {
				continue
			}
			fi := remIdx[jj]
			s.DetectCounts[fi]++
			if s.DetectCounts[fi] == n {
				s.NthDetectedAt[fi] = k
			}
		}
		return nil
	}

	// freshPattern searches for a detecting vector for f not yet in the
	// set: plain generation first, then PI-flip constrained re-runs.
	freshPattern := func(f fault.StuckAt) (gatesim.Pattern, Status) {
		pat, status := gen.GenerateCtx(ctx, f, backtrackLimit)
		if status != StatusDetected {
			return nil, status
		}
		if !seen[string(pat)] {
			return pat, StatusDetected
		}
		for p, pi := range nl.PIs {
			want := L1
			if pat[p] != 0 {
				want = L0
			}
			cpat, cst := gen.GenerateConstrained(f, []Assign{{Net: pi, Value: want}}, backtrackLimit)
			if cst == StatusDetected && !seen[string(cpat)] {
				return cpat, StatusDetected
			}
		}
		return nil, StatusAborted
	}

	sp = tr.StartSpan("ndetect-topup")
	defer sp.End()
	mPatterns := reg.Counter("atpg_ndetect_patterns")
	mSaturated := reg.Counter("atpg_ndetect_saturated")
	for i := range faults {
		if s.Untestable[i] {
			continue
		}
		for s.DetectCounts[i] < n {
			if err := faultinject.Fire(ctx, faultinject.HookATPGFault); err != nil {
				s.Incomplete = true
				return s, err
			}
			if err := ctx.Err(); err != nil {
				s.Incomplete = true
				return s, err
			}
			pat, status := freshPattern(faults[i])
			if status == StatusUntestable {
				s.Untestable[i] = true
				break
			}
			if status != StatusDetected {
				s.Saturated[i] = true
				mSaturated.Inc()
				break
			}
			seen[string(pat)] = true
			s.Patterns = append(s.Patterns, pat)
			mPatterns.Inc()
			if err := credit(pat, len(s.Patterns)); err != nil {
				s.Incomplete = true
				return s, err
			}
			if s.DetectCounts[i] == 0 {
				return nil, fmt.Errorf("atpg: n-detect pattern for %v does not detect it", faults[i])
			}
		}
	}
	return s, nil
}
