package atpg

import (
	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
)

// Assign is a side constraint for constrained test generation: net must
// carry Value in the good circuit.
type Assign struct {
	Net   int
	Value V3
}

// GenerateConstrained builds a test for stuck-at fault f subject to
// additional good-circuit constraints — the primitive behind realistic
// (bridge) fault test generation: a wired bridge between nets A and B is
// excited exactly when the stronger net carries value s while the weaker
// carries ¬s, whereupon the weaker net behaves as stuck-at-s; that is a
// constrained stuck-at problem (constraint: strong net = s; target: weak
// net stuck-at-s).
func (g *Generator) GenerateConstrained(f fault.StuckAt, constraints []Assign, backtrackLimit int) (gatesim.Pattern, Status) {
	nPI := len(g.nl.PIs)
	assign := make([]V3, nPI)
	type decision struct {
		pi      int
		flipped bool
	}
	var stack []decision
	fv := L0
	if f.Value == 1 {
		fv = L1
	}
	backtracks := 0

	for {
		g.imply(assign, f)
		// Constraint handling first: a definite violation forces a
		// backtrack; an undetermined constraint becomes the next objective.
		violated := false
		var objNet int
		var objVal V3
		haveObj := false
		for _, c := range constraints {
			gv := g.good[c.Net]
			if gv == c.Value {
				continue
			}
			if gv != X3 {
				violated = true
				break
			}
			if !haveObj {
				objNet, objVal, haveObj = c.Net, c.Value, true
			}
		}
		if !violated && !haveObj && g.detected() {
			pat := make(gatesim.Pattern, nPI)
			for i, v := range assign {
				if v == L1 {
					pat[i] = 1
				}
			}
			return pat, StatusDetected
		}

		feasible := !violated
		if feasible && !haveObj {
			siteGood := g.good[f.Net]
			activated := siteGood != X3 && siteGood != fv
			if siteGood == fv {
				feasible = false
			}
			if feasible && !activated {
				objNet, objVal, haveObj = f.Net, not3(fv), true
			}
			if feasible && activated {
				df := g.dFrontier(f)
				if len(df) == 0 {
					feasible = false
				} else {
					memo := map[int]bool{}
					found := false
					for _, gi := range df {
						gt := &g.nl.Gates[gi]
						if !g.xPathToPO(gt.Out, memo) {
							continue
						}
						ctrl := controlling(gt.Type)
						for _, in := range gt.Inputs {
							if g.good[in] == X3 {
								objNet = in
								if ctrl == X3 {
									objVal = L0
								} else {
									objVal = not3(ctrl)
								}
								haveObj, found = true, true
								break
							}
						}
						if found {
							break
						}
					}
					if !found {
						feasible = false
					}
				}
			}
		}
		if feasible && haveObj {
			if pi, v, ok := g.backtrace(objNet, objVal); ok && assign[pi] == X3 {
				assign[pi] = v
				stack = append(stack, decision{pi, false})
				continue
			}
			feasible = false
		}
		// Backtrack.
		for {
			if len(stack) == 0 {
				return nil, StatusUntestable
			}
			d := &stack[len(stack)-1]
			if !d.flipped {
				d.flipped = true
				assign[d.pi] = not3(assign[d.pi])
				backtracks++
				if backtracks > backtrackLimit {
					return nil, StatusAborted
				}
				break
			}
			assign[d.pi] = X3
			stack = stack[:len(stack)-1]
		}
	}
}

// BridgeCandidates enumerates the constrained stuck-at problems whose
// solutions can detect a wired bridge between netlist nets a and b: for
// each direction (victim, aggressor) and each aggressor polarity s, the
// problem "victim stuck-at-s with aggressor constrained to s" excites and
// propagates the victim's flip. The caller tries candidates in order and
// verifies each generated pattern against the switch-level bridge model
// (which knows the actual drive strengths).
func BridgeCandidates(a, b int) []struct {
	Fault      fault.StuckAt
	Constraint Assign
} {
	type cand = struct {
		Fault      fault.StuckAt
		Constraint Assign
	}
	var out []cand
	for _, dir := range [][2]int{{a, b}, {b, a}} {
		victim, aggressor := dir[0], dir[1]
		for _, s := range []uint8{0, 1} {
			want := L0
			if s == 1 {
				want = L1
			}
			out = append(out, cand{
				Fault:      fault.StuckAt{Net: victim, Branch: -1, Value: s},
				Constraint: Assign{Net: aggressor, Value: want},
			})
		}
	}
	return out
}

// GenerateBridge tries every candidate formulation of the bridge between
// netlist nets a and b and returns the patterns that are worth verifying
// at switch level (deduplicated), with the per-candidate statuses.
func (g *Generator) GenerateBridge(a, b int, backtrackLimit int) []gatesim.Pattern {
	var out []gatesim.Pattern
	seen := map[string]bool{}
	for _, c := range BridgeCandidates(a, b) {
		pat, status := g.GenerateConstrained(c.Fault, []Assign{c.Constraint}, backtrackLimit)
		if status != StatusDetected {
			continue
		}
		key := string(pat)
		if !seen[key] {
			seen[key] = true
			out = append(out, pat)
		}
	}
	return out
}
