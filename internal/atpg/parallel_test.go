package atpg

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/netlist"
)

// sameTestSet fails the test unless a and b are identical in every
// per-fault outcome and in the produced pattern sequence.
func sameTestSet(t *testing.T, label string, got, want *TestSet) {
	t.Helper()
	if len(got.Patterns) != len(want.Patterns) {
		t.Fatalf("%s: %d patterns, want %d", label, len(got.Patterns), len(want.Patterns))
	}
	for i := range want.Patterns {
		for j := range want.Patterns[i] {
			if got.Patterns[i][j] != want.Patterns[i][j] {
				t.Fatalf("%s: pattern %d bit %d differs", label, i, j)
			}
		}
	}
	if got.RandomCount != want.RandomCount || got.Incomplete != want.Incomplete {
		t.Fatalf("%s: RandomCount/Incomplete = %d/%v, want %d/%v",
			label, got.RandomCount, got.Incomplete, want.RandomCount, want.Incomplete)
	}
	for i := range want.DetectedAt {
		if got.DetectedAt[i] != want.DetectedAt[i] ||
			got.Untestable[i] != want.Untestable[i] ||
			got.Aborted[i] != want.Aborted[i] {
			t.Fatalf("%s: fault %d outcome (%d,%v,%v), want (%d,%v,%v)", label, i,
				got.DetectedAt[i], got.Untestable[i], got.Aborted[i],
				want.DetectedAt[i], want.Untestable[i], want.Aborted[i])
		}
	}
}

// TestBuildTestSetWorkerCountInvariance: the PODEM search is serial and
// the gate-level simulation phases are bitwise deterministic, so the
// produced test set must be identical for every worker count.
func TestBuildTestSetWorkerCountInvariance(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	serial, err := BuildTestSetWorkersCtx(context.Background(), nl, faults, 64, 1, 2000, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d, _, _ := serial.Counts(); d == 0 {
		t.Fatal("serial build detected nothing")
	}
	for _, w := range []int{2, 4, runtime.NumCPU(), 0} {
		ts, err := BuildTestSetWorkersCtx(context.Background(), nl, faults, 64, 1, 2000, w, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		sameTestSet(t, "workers="+strconv.Itoa(w), ts, serial)
	}
}

// TestBuildTestSetWorkersInjectedStop stops the deterministic top-up at a
// fixed fault via injection: the partial (Incomplete) test set returned
// with the error must also be identical for every worker count.
func TestBuildTestSetWorkersInjectedStop(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	boom := errors.New("injected top-up failure")

	run := func(w int) *TestSet {
		t.Helper()
		restore := faultinject.Set(faultinject.HookATPGFault,
			faultinject.After(4, faultinject.Fail(boom)))
		defer restore()
		ts, err := BuildTestSetWorkersCtx(context.Background(), nl, faults, 16, 1, 2000, w, nil)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want injected failure", w, err)
		}
		if !ts.Incomplete {
			t.Fatalf("workers=%d: stopped set not marked Incomplete", w)
		}
		return ts
	}

	serial := run(1)
	for _, w := range []int{2, 4, 0} {
		sameTestSet(t, "workers="+strconv.Itoa(w), run(w), serial)
	}
}
