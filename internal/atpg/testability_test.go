package atpg

import (
	"strings"
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
)

func TestTestabilityC17(t *testing.T) {
	nl := netlist.C17()
	ts, err := ComputeTestability(nl)
	if err != nil {
		t.Fatal(err)
	}
	// POs observe themselves for free.
	for _, po := range nl.POs {
		if ts.CO[po] != 0 {
			t.Fatalf("PO observability %d", ts.CO[po])
		}
	}
	// Every net of c17 is both controllable and observable.
	for n := 0; n < nl.NumNets(); n++ {
		if ts.CO[n] >= 1<<28 {
			t.Fatalf("net %s unobservable", nl.NetNames[n])
		}
		if ts.CC0[n] < 1 || ts.CC1[n] < 1 {
			t.Fatalf("net %s controllability too small", nl.NetNames[n])
		}
	}
	// Observability increases with logic distance from the POs: the PIs
	// are strictly harder to observe than the POs.
	for _, pi := range nl.PIs {
		if ts.CO[pi] <= 0 {
			t.Fatalf("PI %s observability %d", nl.NetNames[pi], ts.CO[pi])
		}
	}
	if s := ts.Render(nl, 3); !strings.Contains(s, "CC0") {
		t.Fatal("render")
	}
}

func TestTestabilityDeepChainHarderToObserve(t *testing.T) {
	nl := netlist.New("chain")
	a := nl.AddPI("a")
	n := a
	for i := 0; i < 6; i++ {
		n = nl.AddGate(netlist.Not, "", n)
	}
	nl.MarkPO(n)
	ts, err := ComputeTestability(nl)
	if err != nil {
		t.Fatal(err)
	}
	if ts.CO[a] != 6 {
		t.Fatalf("PI through 6 inverters: CO = %d, want 6", ts.CO[a])
	}
	hard := ts.HardestNets(1)
	if len(hard) != 1 || hard[0] != a {
		t.Fatalf("hardest net should be the PI, got %v", hard)
	}
}

func TestTestabilityAndGateObservability(t *testing.T) {
	// y = AND(a,b): observing a needs b=1, so CO(a) = CO(y) + CC1(b) + 1
	// = 0 + 1 + 1 = 2.
	nl := netlist.New("and")
	a := nl.AddPI("a")
	nl.AddPI("b")
	y := nl.AddGate(netlist.And, "y", a, 1)
	nl.MarkPO(y)
	ts, err := ComputeTestability(nl)
	if err != nil {
		t.Fatal(err)
	}
	if ts.CO[a] != 2 {
		t.Fatalf("CO(a) = %d, want 2", ts.CO[a])
	}
}

func TestCompactPreservesCoverage(t *testing.T) {
	nl := netlist.C432Class(21)
	faults := fault.StuckAtUniverse(nl)
	pats := gatesim.RandomPatterns(nl, 256, 8)
	before, err := gatesim.Simulate(nl, faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := Compact(nl, faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(compacted) >= len(pats) {
		t.Fatalf("compaction removed nothing: %d of %d", len(compacted), len(pats))
	}
	after, err := gatesim.Simulate(nl, faults, compacted)
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		if (before.DetectedAt[i] > 0) != (after.DetectedAt[i] > 0) {
			t.Fatalf("fault %v coverage changed by compaction", faults[i])
		}
	}
	t.Logf("compaction: %d → %d vectors", len(pats), len(compacted))
}

func TestCompactKeepsEssentialVectors(t *testing.T) {
	// Inverter: y = NOT(a). Faults a/sa0 (needs a=1) and a/sa1 (needs a=0).
	// Patterns: {1},{1},{0}: reverse-order compaction keeps {0} and one {1}.
	nl := netlist.New("inv")
	a := nl.AddPI("a")
	y := nl.AddGate(netlist.Not, "y", a)
	nl.MarkPO(y)
	faults := []fault.StuckAt{{Net: a, Branch: -1, Value: 0}, {Net: a, Branch: -1, Value: 1}}
	pats := []gatesim.Pattern{{1}, {1}, {0}}
	out, err := Compact(nl, faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("want 2 kept vectors, got %d", len(out))
	}
	// Reverse order keeps the LAST {1} (index 1) and {0}.
	if out[0][0] != 1 || out[1][0] != 0 {
		t.Fatalf("kept %v", out)
	}
}

func TestCompactEmptyInputs(t *testing.T) {
	nl := netlist.C17()
	out, err := Compact(nl, nil, gatesim.RandomPatterns(nl, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("no faults → nothing essential")
	}
}
