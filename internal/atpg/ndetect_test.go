package atpg

import (
	"context"
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
)

// TestCoverageCountsPrecedence is the regression test for the
// Coverage/Counts disagreement: both must apply the same per-fault
// precedence Detected > Untestable > Aborted. The detected+untestable row
// fails on the pre-fix Coverage, which excluded any untestable fault even
// when the random phase had already detected it.
func TestCoverageCountsPrecedence(t *testing.T) {
	// Four faults, one per outcome combination that matters:
	//   0: detected only
	//   1: detected AND marked untestable (random hit + redundant target)
	//   2: untestable only
	//   3: aborted only
	ts := &TestSet{
		DetectedAt: []int{3, 5, 0, 0},
		Untestable: []bool{false, true, true, false},
		Aborted:    []bool{false, false, false, true},
	}
	det, unt, ab := ts.Counts()
	if det != 2 || unt != 1 || ab != 1 {
		t.Fatalf("Counts() = (%d,%d,%d), want (2,1,1)", det, unt, ab)
	}
	// All faults in the denominator: 2 detected out of 4.
	if got := ts.Coverage(false); got != 0.5 {
		t.Fatalf("Coverage(false) = %v, want 0.5", got)
	}
	// excludeUntestable removes only fault 2 (untestable and undetected);
	// fault 1 stays because detection takes precedence: 2/3.
	if got, want := ts.Coverage(true), 2.0/3.0; got != want {
		t.Fatalf("Coverage(true) = %v, want %v (detected-wins precedence)", got, want)
	}
	// The two views must agree: Coverage(false) == det / total.
	if got, want := ts.Coverage(false), float64(det)/4; got != want {
		t.Fatalf("Coverage(false) = %v disagrees with Counts detected %v", got, want)
	}
}

// TestCompactNPreservesMultiplicity is the property test: for n up to 4,
// compacting with CompactN preserves every fault's detection multiplicity
// capped at n — the compacted set's DetectCounts match the original's
// after both are capped.
func TestCompactNPreservesMultiplicity(t *testing.T) {
	for _, nl := range []*netlist.Netlist{
		netlist.C432Class(1994),
		netlist.RandomCircuit("cmp-rnd", 23, 12, 6, 140),
	} {
		nl := nl
		t.Run(nl.Name, func(t *testing.T) {
			faults := fault.StuckAtUniverse(nl)
			patterns := gatesim.RandomPatterns(nl, 160, 9)
			for n := 1; n <= 4; n++ {
				orig, err := gatesim.SimulateFaultsNCtx(context.Background(), nl, faults, patterns, n, 0, nil)
				if err != nil {
					t.Fatal(err)
				}
				compacted, err := CompactN(nl, faults, patterns, n)
				if err != nil {
					t.Fatal(err)
				}
				if len(compacted) > len(patterns) {
					t.Fatalf("n=%d: compaction grew the set (%d > %d)", n, len(compacted), len(patterns))
				}
				after, err := gatesim.SimulateFaultsNCtx(context.Background(), nl, faults, compacted, n, 0, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i := range faults {
					if after.DetectCounts[i] != orig.DetectCounts[i] {
						t.Fatalf("n=%d fault %d: multiplicity %d after compaction, %d before",
							n, i, after.DetectCounts[i], orig.DetectCounts[i])
					}
				}
			}
		})
	}
}

// TestCompactNOneMatchesCompact: classical compaction is exactly the n=1
// case of the multiplicity-aware algorithm.
func TestCompactNOneMatchesCompact(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	patterns := gatesim.RandomPatterns(nl, 128, 4)
	a, err := Compact(nl, faults, patterns)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompactN(nl, faults, patterns, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("Compact kept %d patterns, CompactN(1) kept %d", len(a), len(b))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("pattern %d differs between Compact and CompactN(1)", i)
		}
	}
}

func TestCompactNRejectsBadN(t *testing.T) {
	nl := netlist.C17()
	if _, err := CompactN(nl, fault.StuckAtUniverse(nl), nil, 0); err == nil {
		t.Fatal("CompactN accepted n=0")
	}
}

// TestBuildNDetectTestSet: the builder pushes every non-saturated testable
// fault to n detections, appends only distinct vectors, and its counts
// agree with an independent counting fault simulation of the final set.
func TestBuildNDetectTestSet(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	base, err := BuildTestSet(nl, faults, 64, 1994, 2000)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	s, err := BuildNDetectTestSet(context.Background(), nl, faults, base.Patterns, base.Untestable, n, 2000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Incomplete {
		t.Fatal("set marked Incomplete without cancellation")
	}
	if s.BaseCount != len(base.Patterns) || len(s.Patterns) < s.BaseCount {
		t.Fatalf("BaseCount %d, |Patterns| %d, base had %d", s.BaseCount, len(s.Patterns), len(base.Patterns))
	}
	// Every testable fault ends at n detections, untestable, or saturated.
	for i := range faults {
		if s.DetectCounts[i] < n && !s.Untestable[i] && !s.Saturated[i] {
			t.Fatalf("fault %d left at %d < %d detections, neither untestable nor saturated",
				i, s.DetectCounts[i], n)
		}
	}
	// Appended vectors are pairwise distinct and distinct from the base.
	seen := map[string]bool{}
	for _, p := range s.Patterns[:s.BaseCount] {
		seen[string(p)] = true
	}
	for k, p := range s.Patterns[s.BaseCount:] {
		if seen[string(p)] {
			t.Fatalf("appended vector %d duplicates an earlier vector", k)
		}
		seen[string(p)] = true
	}
	// Counts agree with an independent counting sim of the final set.
	res, err := gatesim.SimulateFaultsNCtx(context.Background(), nl, faults, s.Patterns, n, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		if s.DetectCounts[i] != res.DetectCounts[i] {
			t.Fatalf("fault %d: builder says %d detections, resimulation says %d",
				i, s.DetectCounts[i], res.DetectCounts[i])
		}
		if s.NthDetectedAt[i] != res.NthDetectedAt[i] {
			t.Fatalf("fault %d: builder NthDetectedAt %d, resimulation %d",
				i, s.NthDetectedAt[i], res.NthDetectedAt[i])
		}
	}
	// The study's monotonicity source: growing n never shrinks the set.
	s2, err := BuildNDetectTestSet(context.Background(), nl, faults, s.Patterns, base.Untestable, n+1, 2000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Patterns) < len(s.Patterns) {
		t.Fatalf("|T(%d)| = %d < |T(%d)| = %d", n+1, len(s2.Patterns), n, len(s.Patterns))
	}
	if got := s.Coverage(true); got <= 0 || got > 1 {
		t.Fatalf("Coverage(true) = %v out of range", got)
	}
	if s.FullyDetected() == 0 {
		t.Fatal("no fault reached n detections")
	}
}

// TestBuildNDetectTestSetCancellation: an already-cancelled context yields
// an Incomplete set and the context error.
func TestBuildNDetectTestSetCancellation(t *testing.T) {
	nl := netlist.C432Class(1994)
	faults := fault.StuckAtUniverse(nl)
	base := gatesim.RandomPatterns(nl, 16, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := BuildNDetectTestSet(ctx, nl, faults, base, nil, 2, 2000, 0, nil)
	if err == nil {
		t.Fatal("cancelled build returned nil error")
	}
	if s == nil || !s.Incomplete {
		t.Fatalf("cancelled build: set %+v, want non-nil Incomplete", s)
	}
}

func TestBuildNDetectTestSetRejectsBadN(t *testing.T) {
	nl := netlist.C17()
	if _, err := BuildNDetectTestSet(context.Background(), nl, fault.StuckAtUniverse(nl), nil, nil, 0, 100, 0, nil); err == nil {
		t.Fatal("accepted n=0")
	}
}
