package atpg

import (
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/netlist"
)

// TestBuildTestSetAbortAccounting pins the paper's eq.-6 accounting for
// aborted faults: a starved backtrack limit must leave some faults
// aborted, and those faults stay out of the detected set but inside the
// coverage denominator (their testability is unknown, so they could still
// reach a customer).
func TestBuildTestSetAbortAccounting(t *testing.T) {
	nl := netlist.C432Class(7)
	faults := fault.StuckAtUniverse(nl)

	// No random prefix and an immediately-exhausted backtrack limit: every
	// fault needing even one backtrack aborts.
	ts, err := BuildTestSet(nl, faults, 0, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	det, unt, ab := ts.Counts()
	if ab == 0 {
		t.Fatal("backtrack limit 0 on c432-class aborted no faults; the starvation path is untested")
	}
	if det == 0 {
		t.Fatal("no faults detected at all; backtrack-free generation should still cover easy faults")
	}
	if det+unt+ab != len(faults) {
		t.Fatalf("counts %d+%d+%d do not partition the %d-fault universe", det, unt, ab, len(faults))
	}

	for i := range faults {
		if !ts.Aborted[i] {
			continue
		}
		if ts.DetectedAt[i] != 0 {
			t.Fatalf("fault %d is aborted but has detection index %d", i, ts.DetectedAt[i])
		}
		if ts.Untestable[i] {
			t.Fatalf("fault %d is both aborted and untestable", i)
		}
	}

	// Coverage over testable faults: aborted faults stay in the
	// denominator, untestable ones drop out.
	wantTestable := float64(det) / float64(len(faults)-unt)
	if got := ts.Coverage(true); got != wantTestable {
		t.Fatalf("Coverage(true) = %v, want detected/(total-untestable) = %v", got, wantTestable)
	}
	wantAll := float64(det) / float64(len(faults))
	if got := ts.Coverage(false); got != wantAll {
		t.Fatalf("Coverage(false) = %v, want detected/total = %v", got, wantAll)
	}

	// A sane limit must strictly improve on starvation.
	full, err := BuildTestSet(nl, faults, 0, 7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	fdet, _, fab := full.Counts()
	if fab >= ab {
		t.Fatalf("raising the backtrack limit did not reduce aborts: %d -> %d", ab, fab)
	}
	if fdet <= det {
		t.Fatalf("raising the backtrack limit did not improve detection: %d -> %d", det, fdet)
	}
	if full.Coverage(true) <= ts.Coverage(true) {
		t.Fatalf("coverage did not improve: %v -> %v", ts.Coverage(true), full.Coverage(true))
	}
}
