package atpg

import (
	"fmt"
	"sort"
	"strings"

	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
)

// Testability holds the full SCOAP combinational measures of a netlist:
// 0/1-controllabilities (cost of setting a net) and observability (cost of
// propagating a net's value to a primary output). The paper cites exactly
// this line of work (Agrawal & Mercer, "Testability Measures — what do
// they tell us?") as the machinery behind detection probabilities.
type Testability struct {
	CC0, CC1 []int // controllabilities per net
	CO       []int // observabilities per net (stem values)
}

// ComputeTestability returns the SCOAP measures of nl.
func ComputeTestability(nl *netlist.Netlist) (*Testability, error) {
	g, err := NewGenerator(nl)
	if err != nil {
		return nil, err
	}
	t := &Testability{
		CC0: append([]int(nil), g.cc0...),
		CC1: append([]int(nil), g.cc1...),
		CO:  make([]int, nl.NumNets()),
	}
	const inf = 1 << 28
	for n := range t.CO {
		t.CO[n] = inf
	}
	for _, po := range nl.POs {
		t.CO[po] = 0
	}
	order, _, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	// Backward pass: observability of a gate input = observability of the
	// output + the cost of holding every other input at a non-controlling
	// value (+1 for the gate itself). XOR inputs need the cheaper of the
	// two settings of each sibling. Stems take the cheapest branch.
	for i := len(order) - 1; i >= 0; i-- {
		gi := order[i]
		gt := &nl.Gates[gi]
		coOut := t.CO[gt.Out]
		if coOut >= inf {
			continue
		}
		for _, in := range gt.Inputs {
			cost := coOut + 1
			for _, other := range gt.Inputs {
				if other == in {
					continue
				}
				switch gt.Type {
				case netlist.And, netlist.Nand:
					cost += t.CC1[other]
				case netlist.Or, netlist.Nor:
					cost += t.CC0[other]
				case netlist.Xor, netlist.Xnor:
					if t.CC0[other] < t.CC1[other] {
						cost += t.CC0[other]
					} else {
						cost += t.CC1[other]
					}
				}
			}
			if cost < t.CO[in] {
				t.CO[in] = cost
			}
		}
	}
	return t, nil
}

// HardestNets returns the n nets with the largest combined testability
// cost min(CC0,CC1)+CO — the likely random-pattern-resistant spots.
func (t *Testability) HardestNets(n int) []int {
	type sc struct {
		net, cost int
	}
	var all []sc
	for net := range t.CO {
		cc := t.CC0[net]
		if t.CC1[net] < cc {
			cc = t.CC1[net]
		}
		all = append(all, sc{net, cc + t.CO[net]})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].cost != all[b].cost {
			return all[a].cost > all[b].cost
		}
		return all[a].net < all[b].net
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].net
	}
	return out
}

// Render prints a short testability report.
func (t *Testability) Render(nl *netlist.Netlist, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCOAP testability (%d nets); hardest %d:\n", nl.NumNets(), n)
	for _, net := range t.HardestNets(n) {
		fmt.Fprintf(&b, "  %-12s CC0=%-4d CC1=%-4d CO=%d\n",
			nl.NetNames[net], t.CC0[net], t.CC1[net], t.CO[net])
	}
	return b.String()
}

// Compact performs reverse-order static compaction of a test set: patterns
// are fault-simulated newest-first with dropping, and only the patterns
// that detect a fault not covered by any later-kept pattern survive. The
// result preserves the original relative order and the exact fault
// coverage of the input set. It is CompactN with n = 1.
func Compact(nl *netlist.Netlist, faults []fault.StuckAt, patterns []gatesim.Pattern) ([]gatesim.Pattern, error) {
	return CompactN(nl, faults, patterns, 1)
}

// CompactN is multiplicity-aware static compaction: each fault must keep
// min(n, original count) distinct detecting vectors, so a vector carrying
// sole k-th-detection credit (k ≤ n) for any fault is never dropped.
// Patterns are scanned newest-first; a pattern survives iff it detects at
// least one fault still short of its quota, and every surviving pattern
// credits all quota-short faults it detects. For every fault f the
// compacted set therefore satisfies
//
//	min(n, DetectCounts_compacted(f)) = min(n, DetectCounts_original(f))
//
// — a fault with ≥ n original detections keeps at least n of them, and a
// fault with fewer keeps all of them. CompactN(nl, faults, patterns, 1)
// is exactly the classical Compact.
func CompactN(nl *netlist.Netlist, faults []fault.StuckAt, patterns []gatesim.Pattern, n int) ([]gatesim.Pattern, error) {
	if n < 1 {
		return nil, fmt.Errorf("atpg: CompactN requires n >= 1, got %d", n)
	}
	need := make([]int, len(faults))
	remaining := make([]int, 0, len(faults))
	for i := range faults {
		need[i] = n
		remaining = append(remaining, i)
	}
	kept := make([]bool, len(patterns))
	for k := len(patterns) - 1; k >= 0 && len(remaining) > 0; k-- {
		sub := make([]fault.StuckAt, len(remaining))
		for i, fi := range remaining {
			sub[i] = faults[fi]
		}
		res, err := gatesim.Simulate(nl, sub, patterns[k:k+1])
		if err != nil {
			return nil, err
		}
		detectedAny := false
		for i := range remaining {
			if res.DetectedAt[i] > 0 {
				detectedAny = true
				break
			}
		}
		kept[k] = detectedAny
		if !detectedAny {
			continue
		}
		next := remaining[:0]
		for i, fi := range remaining {
			if res.DetectedAt[i] > 0 {
				need[fi]--
			}
			if need[fi] > 0 {
				next = append(next, fi)
			}
		}
		remaining = next
	}
	var out []gatesim.Pattern
	for k, p := range patterns {
		if kept[k] {
			out = append(out, p)
		}
	}
	return out, nil
}
