package atpg

import (
	"testing"

	"defectsim/internal/fault"
	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
)

func TestGenerateConstrainedRespectsConstraint(t *testing.T) {
	// Two independent buffers: y1 = BUF(a), y2 = BUF(b). Target a/sa0 with
	// the constraint b = 1: the generated pattern must set both a = 1
	// (activation) and b = 1 (constraint).
	nl := netlist.New("two")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	y1 := nl.AddGate(netlist.Buf, "y1", a)
	y2 := nl.AddGate(netlist.Buf, "y2", b)
	nl.MarkPO(y1)
	nl.MarkPO(y2)
	gen, err := NewGenerator(nl)
	if err != nil {
		t.Fatal(err)
	}
	pat, status := gen.GenerateConstrained(
		fault.StuckAt{Net: a, Branch: -1, Value: 0},
		[]Assign{{Net: b, Value: L1}}, 1000)
	if status != StatusDetected {
		t.Fatalf("status %v", status)
	}
	if pat[0] != 1 || pat[1] != 1 {
		t.Fatalf("pattern %v must set a=1 (activate) and b=1 (constraint)", pat)
	}
}

func TestGenerateConstrainedInfeasible(t *testing.T) {
	// Constraint contradicts activation: target a/sa0 (needs a=1) with the
	// constraint a = 0.
	nl := netlist.New("one")
	a := nl.AddPI("a")
	y := nl.AddGate(netlist.Buf, "y", a)
	nl.MarkPO(y)
	gen, err := NewGenerator(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, status := gen.GenerateConstrained(
		fault.StuckAt{Net: a, Branch: -1, Value: 0},
		[]Assign{{Net: a, Value: L0}}, 1000); status != StatusUntestable {
		t.Fatalf("contradictory constraint must be untestable, got %v", status)
	}
}

func TestGenerateConstrainedInternalNets(t *testing.T) {
	// Constraint on an internal net: y = AND(a,b); z = OR(a,c). Target
	// z/sa0 with the constraint y = 1 (forces a=b=1).
	nl := netlist.New("mix")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	c := nl.AddPI("c")
	y := nl.AddGate(netlist.And, "y", a, b)
	z := nl.AddGate(netlist.Or, "z", a, c)
	nl.MarkPO(y)
	nl.MarkPO(z)
	gen, err := NewGenerator(nl)
	if err != nil {
		t.Fatal(err)
	}
	pat, status := gen.GenerateConstrained(
		fault.StuckAt{Net: z, Branch: -1, Value: 0},
		[]Assign{{Net: y, Value: L1}}, 1000)
	if status != StatusDetected {
		t.Fatalf("status %v", status)
	}
	if pat[0] != 1 || pat[1] != 1 {
		t.Fatalf("pattern %v must satisfy y = AND(a,b) = 1", pat)
	}
	// Verify with the reference simulator, both the fault and constraint.
	res, err := gatesim.Simulate(nl, []fault.StuckAt{{Net: z, Branch: -1, Value: 0}},
		[]gatesim.Pattern{pat})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedAt[0] != 1 {
		t.Fatal("generated pattern must detect the target")
	}
}

func TestGenerateConstrainedMatchesUnconstrained(t *testing.T) {
	// With no constraints the constrained generator must solve everything
	// the plain generator solves on c17.
	nl := netlist.C17()
	gen, err := NewGenerator(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fault.StuckAtUniverse(nl) {
		_, s1 := gen.Generate(f, 1000)
		_, s2 := gen.GenerateConstrained(f, nil, 1000)
		if s1 != s2 {
			t.Fatalf("fault %v: plain %v vs constrained %v", f, s1, s2)
		}
	}
}

func TestBridgeCandidates(t *testing.T) {
	cands := BridgeCandidates(3, 5)
	if len(cands) != 4 {
		t.Fatalf("want 4 candidate formulations, got %d", len(cands))
	}
	seen := map[[3]int]bool{}
	for _, c := range cands {
		if c.Fault.Net == c.Constraint.Net {
			t.Fatal("victim and aggressor must differ")
		}
		key := [3]int{c.Fault.Net, int(c.Fault.Value), c.Constraint.Net}
		if seen[key] {
			t.Fatal("duplicate candidate")
		}
		seen[key] = true
		// Aggressor is constrained to the victim's stuck value (the wired
		// bridge drives the victim toward the aggressor's level).
		wantVal := L0
		if c.Fault.Value == 1 {
			wantVal = L1
		}
		if c.Constraint.Value != wantVal {
			t.Fatalf("constraint value %v does not match stuck value %d",
				c.Constraint.Value, c.Fault.Value)
		}
	}
}

func TestGenerateBridgeOnC17(t *testing.T) {
	nl := netlist.C17()
	gen, err := NewGenerator(nl)
	if err != nil {
		t.Fatal(err)
	}
	g10, _ := nl.NetByName("G10")
	g19, _ := nl.NetByName("G19")
	pats := gen.GenerateBridge(g10, g19, 1000)
	if len(pats) == 0 {
		t.Fatal("expected at least one candidate pattern")
	}
	// Each pattern must set the two nets to opposite values (a wired
	// bridge is only excited then).
	for _, pat := range pats {
		pis := make([]uint64, len(nl.PIs))
		for i, b := range pat {
			pis[i] = uint64(b)
		}
		vals, err := nl.Eval(pis)
		if err != nil {
			t.Fatal(err)
		}
		if vals[g10]&1 == vals[g19]&1 {
			t.Fatalf("pattern %v leaves the bridged nets equal", pat)
		}
	}
}
