// Package atpg generates stuck-at test vectors: a seeded random prefix
// followed by deterministic test generation for the remaining undetected
// faults, mirroring the paper's experimental setup ("the first vectors are
// random vectors, being the last vectors deterministically generated using
// the FAN algorithm").
//
// The deterministic engine is a PODEM-style branch-and-bound over primary
// input assignments with SCOAP controllability-guided backtrace and
// D-frontier objective selection (the guidance ideas FAN systematized).
// Faults whose decision tree is exhausted are reported untestable
// (redundant); a backtrack limit bounds the effort per fault.
package atpg

import (
	"context"
	"fmt"

	"defectsim/internal/fault"
	"defectsim/internal/faultinject"
	"defectsim/internal/gatesim"
	"defectsim/internal/netlist"
	"defectsim/internal/obs"
)

// V3 is three-valued logic for test generation.
type V3 uint8

// Three-valued levels.
const (
	X3 V3 = iota
	L0
	L1
)

func (v V3) String() string {
	switch v {
	case L0:
		return "0"
	case L1:
		return "1"
	}
	return "X"
}

func not3(v V3) V3 {
	switch v {
	case L0:
		return L1
	case L1:
		return L0
	}
	return X3
}

// eval3 computes a gate function in three-valued logic.
func eval3(t netlist.GateType, in []V3) V3 {
	switch t {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return not3(in[0])
	case netlist.And, netlist.Nand:
		v := L1
		for _, x := range in {
			if x == L0 {
				v = L0
				break
			}
			if x == X3 {
				v = X3
			}
		}
		if t == netlist.Nand {
			v = not3(v)
		}
		return v
	case netlist.Or, netlist.Nor:
		v := L0
		for _, x := range in {
			if x == L1 {
				v = L1
				break
			}
			if x == X3 {
				v = X3
			}
		}
		if t == netlist.Nor {
			v = not3(v)
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := L0
		for _, x := range in {
			if x == X3 {
				return X3
			}
			if x == L1 {
				v = not3(v)
			}
		}
		if t == netlist.Xnor {
			v = not3(v)
		}
		return v
	}
	panic("atpg: bad gate type")
}

// controlling returns the controlling input value of a gate type, or X3
// when it has none (XOR class, BUF/NOT).
func controlling(t netlist.GateType) V3 {
	switch t {
	case netlist.And, netlist.Nand:
		return L0
	case netlist.Or, netlist.Nor:
		return L1
	}
	return X3
}

// Status classifies the outcome of deterministic generation for one fault.
type Status uint8

// Generation outcomes.
const (
	StatusDetected Status = iota
	StatusUntestable
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusDetected:
		return "detected"
	case StatusUntestable:
		return "untestable"
	}
	return "aborted"
}

// Generator is a deterministic test generator for one netlist.
type Generator struct {
	nl       *netlist.Netlist
	order    []int
	fanouts  [][]int
	cc0, cc1 []int // SCOAP combinational controllabilities per net

	// Per-attempt state.
	good, bad []V3

	// Metric handles (nil unless Instrument was called; nil handles are
	// allocation-free no-ops, so Generate stays free by default).
	mBacktracks    *obs.Counter
	mBacktracksPer *obs.Histogram
	mDetected      *obs.Counter
	mUntestable    *obs.Counter
	mAborted       *obs.Counter
}

// Instrument routes per-fault generation metrics to reg: total backtracks,
// a per-fault backtrack histogram, and the detected/untestable/aborted
// outcome counts. A nil registry leaves the generator un-instrumented.
func (g *Generator) Instrument(reg *obs.Registry) {
	g.mBacktracks = reg.Counter("atpg_backtracks_total")
	g.mBacktracksPer = reg.Histogram("atpg_backtracks_per_fault", obs.ExpBuckets(1, 4, 7))
	g.mDetected = reg.Counter("atpg_faults_detected")
	g.mUntestable = reg.Counter("atpg_faults_untestable")
	g.mAborted = reg.Counter("atpg_faults_aborted")
}

// NewGenerator prepares a generator (levelization + SCOAP measures).
func NewGenerator(nl *netlist.Netlist) (*Generator, error) {
	order, _, err := nl.Levelize()
	if err != nil {
		return nil, err
	}
	g := &Generator{
		nl: nl, order: order, fanouts: nl.Fanouts(),
		cc0:  make([]int, nl.NumNets()),
		cc1:  make([]int, nl.NumNets()),
		good: make([]V3, nl.NumNets()),
		bad:  make([]V3, nl.NumNets()),
	}
	g.computeSCOAP()
	return g, nil
}

// computeSCOAP fills the classic combinational 0/1-controllability
// measures: PIs cost 1; a gate output's cost is derived from its inputs'
// costs plus 1.
func (g *Generator) computeSCOAP() {
	const inf = 1 << 28
	for n := range g.cc0 {
		g.cc0[n], g.cc1[n] = inf, inf
	}
	for _, pi := range g.nl.PIs {
		g.cc0[pi], g.cc1[pi] = 1, 1
	}
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	for _, gi := range g.order {
		gt := &g.nl.Gates[gi]
		sum0, sum1, min0, min1 := 0, 0, inf, inf
		for _, in := range gt.Inputs {
			sum0 += g.cc0[in]
			sum1 += g.cc1[in]
			min0 = min(min0, g.cc0[in])
			min1 = min(min1, g.cc1[in])
		}
		var c0, c1 int
		switch gt.Type {
		case netlist.Buf:
			c0, c1 = g.cc0[gt.Inputs[0]]+1, g.cc1[gt.Inputs[0]]+1
		case netlist.Not:
			c0, c1 = g.cc1[gt.Inputs[0]]+1, g.cc0[gt.Inputs[0]]+1
		case netlist.And:
			c0, c1 = min0+1, sum1+1
		case netlist.Nand:
			c0, c1 = sum1+1, min0+1
		case netlist.Or:
			c0, c1 = sum0+1, min1+1
		case netlist.Nor:
			c0, c1 = min1+1, sum0+1
		case netlist.Xor, netlist.Xnor:
			// Cheapest parity assignment approximation.
			even := sum0 + 1
			odd := min1 + min0 + 1 // crude but adequate guidance
			if gt.Type == netlist.Xor {
				c0, c1 = even, odd
			} else {
				c0, c1 = odd, even
			}
		}
		g.cc0[gt.Out], g.cc1[gt.Out] = c0, c1
	}
}

// imply forward-simulates both machines from the current PI assignment.
// The faulty machine has f injected (stem force or branch substitution).
func (g *Generator) imply(assign []V3, f fault.StuckAt) {
	fv := L0
	if f.Value == 1 {
		fv = L1
	}
	for n := range g.good {
		g.good[n], g.bad[n] = X3, X3
	}
	for i, pi := range g.nl.PIs {
		g.good[pi] = assign[i]
		g.bad[pi] = assign[i]
	}
	if f.Branch < 0 && g.nl.Driver(f.Net) < 0 {
		g.bad[f.Net] = fv
	}
	var gin, bin [8]V3
	for _, gi := range g.order {
		gt := &g.nl.Gates[gi]
		gs, bs := gin[:0], bin[:0]
		for _, in := range gt.Inputs {
			gs = append(gs, g.good[in])
			bv := g.bad[in]
			if f.Branch == gi && f.Net == in {
				bv = fv
			}
			bs = append(bs, bv)
		}
		g.good[gt.Out] = eval3(gt.Type, gs)
		out := eval3(gt.Type, bs)
		if f.Branch < 0 && f.Net == gt.Out {
			out = fv
		}
		g.bad[gt.Out] = out
	}
}

// detected reports whether some PO definitely differs between machines.
func (g *Generator) detected() bool {
	for _, po := range g.nl.POs {
		gv, bv := g.good[po], g.bad[po]
		if gv != X3 && bv != X3 && gv != bv {
			return true
		}
	}
	return false
}

// dFrontier returns gates whose output is X in either machine while some
// input already carries a definite good/faulty difference. For a branch
// fault the difference originates inside gate f.Branch (the substituted
// input), so that gate joins the frontier as soon as the stem is activated.
func (g *Generator) dFrontier(f fault.StuckAt) []int {
	var out []int
	for gi := range g.nl.Gates {
		gt := &g.nl.Gates[gi]
		if g.good[gt.Out] != X3 && g.bad[gt.Out] != X3 {
			continue
		}
		for _, in := range gt.Inputs {
			gv, bv := g.good[in], g.bad[in]
			if f.Branch == gi && f.Net == in {
				// The faulty machine sees the stuck value here.
				bv = L0
				if f.Value == 1 {
					bv = L1
				}
			}
			if gv != X3 && bv != X3 && gv != bv {
				out = append(out, gi)
				break
			}
		}
	}
	return out
}

// xPathToPO reports whether a gate output can still reach a PO through
// X-valued nets (the X-path check).
func (g *Generator) xPathToPO(net int, memo map[int]bool) bool {
	if v, ok := memo[net]; ok {
		return v
	}
	memo[net] = false // cycle guard (combinational: none, but safe)
	for _, po := range g.nl.POs {
		if po == net {
			memo[net] = true
			return true
		}
	}
	for _, gi := range g.fanouts[net] {
		out := g.nl.Gates[gi].Out
		if (g.good[out] == X3 || g.bad[out] == X3) && g.xPathToPO(out, memo) {
			memo[net] = true
			return true
		}
	}
	return false
}

// backtrace maps an objective (net must become val in the good machine) to
// an unassigned primary input and a value, following cheapest-controllability
// paths.
func (g *Generator) backtrace(net int, val V3) (pi int, v V3, ok bool) {
	for {
		drv := g.nl.Driver(net)
		if drv < 0 {
			for i, p := range g.nl.PIs {
				if p == net {
					return i, val, true
				}
			}
			return 0, X3, false
		}
		gt := &g.nl.Gates[drv]
		if gt.Type.Inverting() {
			val = not3(val)
		}
		switch gt.Type {
		case netlist.Buf, netlist.Not:
			net = gt.Inputs[0]
			continue
		}
		ctrl := controlling(gt.Type)
		// After accounting for output inversion, AND/NAND need all-1 inputs
		// for val==1 side, one-0 for val==0 side (dual for OR/NOR). XOR:
		// pick any X input toward parity.
		wantAll := (ctrl == L0 && val == L1) || (ctrl == L1 && val == L0)
		bestIn, bestCost := -1, 1<<30
		for _, in := range gt.Inputs {
			if g.good[in] != X3 {
				continue
			}
			var cost int
			target := val
			if ctrl != X3 && !wantAll {
				target = ctrl
			}
			if target == L0 {
				cost = g.cc0[in]
			} else {
				cost = g.cc1[in]
			}
			if wantAll {
				// Need every input: pick the hardest first.
				cost = -cost
			}
			if cost < bestCost {
				bestCost, bestIn = cost, in
			}
		}
		if bestIn < 0 {
			return 0, X3, false
		}
		if ctrl != X3 && !wantAll {
			val = ctrl
		} else if ctrl != X3 && wantAll {
			val = not3(ctrl)
		}
		// XOR class: aim val at the chosen input directly (parity handled
		// by later decisions).
		net = bestIn
	}
}

// Generate attempts to build a test pattern for f within the backtrack
// limit. On success the returned pattern has X positions filled with 0.
func (g *Generator) Generate(f fault.StuckAt, backtrackLimit int) (gatesim.Pattern, Status) {
	return g.GenerateCtx(context.Background(), f, backtrackLimit)
}

// GenerateCtx is Generate with cancellation: the backtrack loop checks the
// context every ctxCheckStride backtracks, so a cancelled or expired
// context aborts the search promptly. A fault cut short by cancellation
// reports StatusAborted — its decision tree was not exhausted, so it is
// neither detected nor proven untestable.
func (g *Generator) GenerateCtx(ctx context.Context, f fault.StuckAt, backtrackLimit int) (gatesim.Pattern, Status) {
	pat, status, backtracks := g.generate(ctx, f, backtrackLimit)
	g.mBacktracks.Add(int64(backtracks))
	g.mBacktracksPer.Observe(float64(backtracks))
	switch status {
	case StatusDetected:
		g.mDetected.Inc()
	case StatusUntestable:
		g.mUntestable.Inc()
	case StatusAborted:
		g.mAborted.Inc()
	}
	return pat, status
}

// ctxCheckStride is how many backtracks pass between context checks in
// the deterministic search: frequent enough for sub-millisecond
// cancellation latency, rare enough to keep the check off the profile.
const ctxCheckStride = 256

func (g *Generator) generate(ctx context.Context, f fault.StuckAt, backtrackLimit int) (gatesim.Pattern, Status, int) {
	nPI := len(g.nl.PIs)
	assign := make([]V3, nPI)
	type decision struct {
		pi      int
		flipped bool
	}
	var stack []decision
	fv := L0
	if f.Value == 1 {
		fv = L1
	}
	backtracks := 0

	for {
		g.imply(assign, f)
		if g.detected() {
			pat := make(gatesim.Pattern, nPI)
			for i, v := range assign {
				if v == L1 {
					pat[i] = 1
				}
			}
			return pat, StatusDetected, backtracks
		}
		// Possible? Activation: good value at the site must be able to be
		// ¬fv; then a D-frontier with an X-path must remain.
		feasible := true
		siteGood := g.good[f.Net]
		activated := siteGood != X3 && siteGood != fv
		if siteGood == fv {
			feasible = false
		}
		var objNet int
		var objVal V3
		haveObj := false
		if feasible {
			if !activated {
				objNet, objVal, haveObj = f.Net, not3(fv), true
				if siteGood != X3 {
					haveObj = false // already at target; wait for frontier
					activated = true
				}
			}
			if activated {
				df := g.dFrontier(f)
				if len(df) == 0 {
					feasible = false
				} else {
					memo := map[int]bool{}
					found := false
					for _, gi := range df {
						gt := &g.nl.Gates[gi]
						if !g.xPathToPO(gt.Out, memo) {
							continue
						}
						// Objective: set an X input to the non-controlling
						// value to let the difference through.
						ctrl := controlling(gt.Type)
						for _, in := range gt.Inputs {
							if g.good[in] == X3 {
								objNet = in
								if ctrl == X3 {
									objVal = L0 // XOR: any definite value
								} else {
									objVal = not3(ctrl)
								}
								haveObj, found = true, true
								break
							}
						}
						if found {
							break
						}
					}
					if !found {
						feasible = false
					}
				}
			}
		}
		if feasible && haveObj {
			if pi, v, ok := g.backtrace(objNet, objVal); ok && assign[pi] == X3 {
				assign[pi] = v
				stack = append(stack, decision{pi, false})
				continue
			}
			feasible = false
		}
		// Backtrack.
		for {
			if len(stack) == 0 {
				return nil, StatusUntestable, backtracks
			}
			d := &stack[len(stack)-1]
			if !d.flipped {
				d.flipped = true
				assign[d.pi] = not3(assign[d.pi])
				backtracks++
				if backtracks > backtrackLimit {
					return nil, StatusAborted, backtracks
				}
				if backtracks%ctxCheckStride == 0 && ctx.Err() != nil {
					return nil, StatusAborted, backtracks
				}
				break
			}
			assign[d.pi] = X3
			stack = stack[:len(stack)-1]
		}
	}
}

// TestSet is the outcome of BuildTestSet.
type TestSet struct {
	Patterns []gatesim.Pattern
	// RandomCount is how many leading patterns are random.
	RandomCount int
	// Status per fault after the full set (post fault simulation).
	DetectedAt []int
	Untestable []bool
	Aborted    []bool
	// Incomplete marks a set whose deterministic top-up stopped early
	// (cancellation or an exhausted time budget): every fault not yet
	// detected or proven untestable at that point is reported Aborted.
	Incomplete bool
}

// Coverage returns the final stuck-at coverage over testable faults if
// excludeUntestable, else over all faults. Aborted faults are never
// excluded: their testability is unknown, so they stay in the denominator
// (the paper's eq. 6 weights every fault that could reach a customer) and
// out of the numerator.
//
// Per-fault outcome precedence is Detected > Untestable > Aborted,
// matching Counts: a fault the random phase detected before the
// deterministic search proved its target site redundant (possible when
// the PODEM target is a collapsed representative) counts as detected,
// and excludeUntestable only removes faults that are untestable AND
// undetected from the denominator.
func (ts *TestSet) Coverage(excludeUntestable bool) float64 {
	det, tot := 0, 0
	for i := range ts.DetectedAt {
		if excludeUntestable && ts.Untestable[i] && ts.DetectedAt[i] == 0 {
			continue
		}
		tot++
		if ts.DetectedAt[i] > 0 {
			det++
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(det) / float64(tot)
}

// Counts returns the per-outcome fault totals of the set: detected by some
// vector, proven untestable (redundant), and aborted (backtrack limit,
// budget exhaustion or cancellation). Each fault lands in exactly one
// bucket with precedence Detected > Untestable > Aborted — the same
// precedence Coverage applies, so detected+untestable faults are never
// double-counted and the two views always agree.
func (ts *TestSet) Counts() (detected, untestable, aborted int) {
	for i := range ts.DetectedAt {
		switch {
		case ts.DetectedAt[i] > 0:
			detected++
		case ts.Untestable[i]:
			untestable++
		case ts.Aborted[i]:
			aborted++
		}
	}
	return detected, untestable, aborted
}

// BuildTestSet produces the paper's vector recipe: nRandom seeded random
// patterns, fault-simulated with dropping, followed by deterministic
// patterns for each remaining undetected fault (each new pattern is fault
// simulated so later targets can be dropped early).
func BuildTestSet(nl *netlist.Netlist, faults []fault.StuckAt, nRandom int, seed uint64, backtrackLimit int) (*TestSet, error) {
	return BuildTestSetObs(nl, faults, nRandom, seed, backtrackLimit, nil)
}

// BuildTestSetObs is BuildTestSet with observability: stage spans for the
// random prefix, its gate-level fault simulation and the deterministic
// top-up, plus generation and detection metrics in tr's registry. A nil
// tracer makes it identical (and equally cheap) to BuildTestSet.
func BuildTestSetObs(nl *netlist.Netlist, faults []fault.StuckAt, nRandom int, seed uint64, backtrackLimit int, tr *obs.Tracer) (*TestSet, error) {
	return BuildTestSetCtx(context.Background(), nl, faults, nRandom, seed, backtrackLimit, tr)
}

// BuildTestSetCtx is BuildTestSetObs with cancellation; it runs the
// fault-simulation phases at the default worker count (see
// BuildTestSetWorkersCtx).
func BuildTestSetCtx(ctx context.Context, nl *netlist.Netlist, faults []fault.StuckAt, nRandom int, seed uint64, backtrackLimit int, tr *obs.Tracer) (*TestSet, error) {
	return BuildTestSetWorkersCtx(ctx, nl, faults, nRandom, seed, backtrackLimit, 0, tr)
}

// BuildTestSetWorkersCtx is the full entry point: cancellation plus an
// explicit worker count for the gate-level fault-simulation phases (the
// random-prefix campaign and the per-pattern simulations of the top-up
// loop), normalized by the shared internal/par policy (<= 0 selects
// runtime.NumCPU()). The deterministic PODEM search itself stays serial —
// pattern order defines the test set — and the gate-level simulator is
// bitwise deterministic for any worker count, so the produced TestSet is
// identical whatever workers is.
//
// The context is checked between faults in the top-up loop, every
// ctxCheckStride backtracks inside the deterministic search, and once per
// 64-pattern block in the gate-level fault simulations. When the context
// ends mid-build the partial test set is still returned — marked
// Incomplete, with every fault not yet detected or proven untestable
// reported Aborted — together with the context's error, so callers can
// either discard it (run cancelled) or keep it as a degraded result
// (stage budget exhausted).
func BuildTestSetWorkersCtx(ctx context.Context, nl *netlist.Netlist, faults []fault.StuckAt, nRandom int, seed uint64, backtrackLimit int, workers int, tr *obs.Tracer) (*TestSet, error) {
	reg := tr.Metrics()
	gen, err := NewGenerator(nl)
	if err != nil {
		return nil, err
	}
	gen.Instrument(reg)
	ts := &TestSet{
		RandomCount: nRandom,
		DetectedAt:  make([]int, len(faults)),
		Untestable:  make([]bool, len(faults)),
		Aborted:     make([]bool, len(faults)),
	}
	// abortRest marks every undecided fault Aborted and flags the set
	// Incomplete — the early-stop path shared by cancellation and budget
	// expiry.
	abortRest := func() {
		ts.Incomplete = true
		n := int64(0)
		for i := range faults {
			if ts.DetectedAt[i] == 0 && !ts.Untestable[i] && !ts.Aborted[i] {
				ts.Aborted[i] = true
				n++
			}
		}
		reg.Counter("atpg_faults_aborted_on_stop").Add(n)
	}
	sp := tr.StartSpan("random-prefix")
	ts.Patterns = gatesim.RandomPatterns(nl, nRandom, seed)
	sp.End()
	sp = tr.StartSpan("gate-sim")
	res, err := gatesim.SimulateFaultsCtx(ctx, nl, faults, ts.Patterns, workers, reg)
	if err != nil {
		sp.End()
		copy(ts.DetectedAt, res.DetectedAt)
		abortRest()
		return ts, err
	}
	copy(ts.DetectedAt, res.DetectedAt)
	sp.End()

	sp = tr.StartSpan("deterministic-topup")
	defer sp.End()
	mDetPatterns := reg.Counter("atpg_deterministic_patterns")
	for i := range faults {
		if ts.DetectedAt[i] > 0 {
			continue
		}
		if err := faultinject.Fire(ctx, faultinject.HookATPGFault); err != nil {
			abortRest()
			return ts, err
		}
		if err := ctx.Err(); err != nil {
			abortRest()
			return ts, err
		}
		pat, status := gen.GenerateCtx(ctx, faults[i], backtrackLimit)
		switch status {
		case StatusUntestable:
			ts.Untestable[i] = true
		case StatusAborted:
			ts.Aborted[i] = true
		case StatusDetected:
			ts.Patterns = append(ts.Patterns, pat)
			mDetPatterns.Inc()
			k := len(ts.Patterns)
			// Fault-simulate the new pattern against every remaining fault.
			var rem []fault.StuckAt
			var remIdx []int
			for j := range faults {
				if ts.DetectedAt[j] == 0 && !ts.Untestable[j] {
					rem = append(rem, faults[j])
					remIdx = append(remIdx, j)
				}
			}
			r, err := gatesim.SimulateFaultsCtx(ctx, nl, rem, []gatesim.Pattern{pat}, workers, reg)
			if err != nil {
				abortRest()
				return ts, err
			}
			for jj, d := range r.DetectedAt {
				if d > 0 {
					ts.DetectedAt[remIdx[jj]] = k
					// A fault aborted earlier may be detected by a later
					// pattern generated for another target; its final
					// status is then detected, not aborted.
					ts.Aborted[remIdx[jj]] = false
				}
			}
			if ts.DetectedAt[i] == 0 {
				return nil, fmt.Errorf("atpg: generated pattern for %v does not detect it", faults[i])
			}
		}
	}
	if reg != nil {
		hist := reg.Histogram("atpg_vectors_to_detect", obs.ExpBuckets(1, 2, 10))
		for _, d := range ts.DetectedAt {
			if d > 0 {
				hist.Observe(float64(d))
			}
		}
	}
	return ts, nil
}
