// Package geom provides the rectilinear geometry primitives used by the
// layout, critical-area and fault-extraction packages.
//
// All coordinates are integers in λ (lambda) units, the scalable design-rule
// unit of the classic Mead–Conway methodology. Mask shapes are axis-aligned
// rectangles; more complex rectilinear polygons are represented as sets of
// (possibly overlapping) rectangles. The package supplies the operations the
// defect-level pipeline needs:
//
//   - rectangle algebra (intersection, expansion, containment),
//   - exact union area of a rectangle set (coordinate-compression sweep),
//   - pairwise intersection of rectangle sets,
//   - connectivity of touching shapes (union–find), used by the layout
//     extractor to recover electrical nets from mask geometry,
//   - bounding boxes and distance queries used by the critical-area engine.
package geom

import (
	"fmt"
	"sort"
)

// Layer identifies a mask layer of the 2-metal CMOS process modeled by this
// library. The set matches the layers the paper's lift extractor works on.
type Layer uint8

// Mask layers, ordered roughly bottom-up in the process stack.
const (
	LayerNWell   Layer = iota
	LayerPDiff         // p+ diffusion (PMOS source/drain)
	LayerNDiff         // n+ diffusion (NMOS source/drain)
	LayerPoly          // polysilicon (transistor gates, short wires)
	LayerContact       // diffusion/poly to metal1 contact cut
	LayerMetal1
	LayerVia // metal1 to metal2 via cut
	LayerMetal2
	NumLayers // number of mask layers; keep last
)

var layerNames = [NumLayers]string{
	"nwell", "pdiff", "ndiff", "poly", "contact", "metal1", "via", "metal2",
}

// String returns the conventional lowercase layer name.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Conducting reports whether the layer carries signal current and can
// therefore participate in bridge (short) faults. Cut layers (contact, via)
// and implant wells do not bridge by extra material in this model; their
// defect mechanism is handled separately (missing-material opens on cuts).
func (l Layer) Conducting() bool {
	switch l {
	case LayerPDiff, LayerNDiff, LayerPoly, LayerMetal1, LayerMetal2:
		return true
	}
	return false
}

// Point is a location in λ units.
type Point struct {
	X, Y int
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Rect is a closed axis-aligned rectangle [X0,X1]×[Y0,Y1] in λ units.
// A Rect is valid when X0 <= X1 and Y0 <= Y1; a degenerate rectangle with
// zero width or height has zero area but can still touch other shapes.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R is shorthand for constructing a normalized Rect from two corners.
func R(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Valid reports whether r is normalized (non-negative extents).
func (r Rect) Valid() bool { return r.X0 <= r.X1 && r.Y0 <= r.Y1 }

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// W returns the width of r.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the height of r.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the area of r in λ².
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return int64(r.W()) * int64(r.H())
}

// MinDim returns the smaller of width and height (the "drawn width" of a
// wire segment, relevant for open-circuit critical areas).
func (r Rect) MinDim() int {
	if w, h := r.W(), r.H(); w < h {
		return w
	}
	return r.H()
}

// MaxDim returns the larger of width and height.
func (r Rect) MaxDim() int {
	if w, h := r.W(), r.H(); w > h {
		return w
	}
	return r.H()
}

// Center returns the midpoint of r (rounded toward negative infinity).
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

// Expand returns r grown by d on every side. A negative d shrinks r; the
// result may be invalid (use Valid to check) when shrinking past the center.
func (r Rect) Expand(d int) Rect {
	return Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
}

// Intersect returns the intersection of r and s. If the rectangles do not
// overlap the result is not Valid or is Empty.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		max(r.X0, s.X0), max(r.Y0, s.Y0),
		min(r.X1, s.X1), min(r.Y1, s.Y1),
	}
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool {
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Touches reports whether r and s share at least a boundary point (abutting
// rectangles touch; this is the connectivity predicate for mask shapes).
func (r Rect) Touches(s Rect) bool {
	return r.X0 <= s.X1 && s.X0 <= r.X1 && r.Y0 <= s.Y1 && s.Y0 <= r.Y1
}

// Contains reports whether p lies in the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return r.X0 <= p.X && p.X <= r.X1 && r.Y0 <= p.Y && p.Y <= r.Y1
}

// ContainsRect reports whether s lies entirely inside the closed rectangle r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.X0 <= s.X0 && s.X1 <= r.X1 && r.Y0 <= s.Y0 && s.Y1 <= r.Y1
}

// Union returns the bounding box of r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		min(r.X0, s.X0), min(r.Y0, s.Y0),
		max(r.X1, s.X1), max(r.Y1, s.Y1),
	}
}

// GapTo returns the rectilinear (Chebyshev-style per-axis) gap between r and
// s: dx and dy are the empty distances along each axis (zero when the
// projections overlap). Two shapes can be shorted by a square defect of side
// d iff d > max(dx, dy) ... see critarea for the precise predicate.
func (r Rect) GapTo(s Rect) (dx, dy int) {
	if s.X0 > r.X1 {
		dx = s.X0 - r.X1
	} else if r.X0 > s.X1 {
		dx = r.X0 - s.X1
	}
	if s.Y0 > r.Y1 {
		dy = s.Y0 - r.Y1
	} else if r.Y0 > s.Y1 {
		dy = r.Y0 - s.Y1
	}
	return dx, dy
}

func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d)-(%d,%d)", r.X0, r.Y0, r.X1, r.Y1)
}

// BoundingBox returns the smallest rectangle covering all rects. It returns
// a zero Rect and false when rects is empty.
func BoundingBox(rects []Rect) (Rect, bool) {
	if len(rects) == 0 {
		return Rect{}, false
	}
	bb := rects[0]
	for _, r := range rects[1:] {
		bb = bb.Union(r)
	}
	return bb, true
}

// UnionArea returns the exact area of the union of rects, counting each
// covered point once even where rectangles overlap. It uses coordinate
// compression with a vertical sweep: O(n² log n) worst case, which is ample
// for the per-net shape sets handled by the critical-area engine.
func UnionArea(rects []Rect) int64 {
	// Collect distinct x coordinates of non-empty rectangles.
	xs := make([]int, 0, 2*len(rects))
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		xs = append(xs, r.X0, r.X1)
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Ints(xs)
	xs = dedupInts(xs)

	var total int64
	// For each vertical slab, merge the y-intervals of rectangles spanning it.
	ys := make([][2]int, 0, len(rects))
	for i := 0; i+1 < len(xs); i++ {
		xa, xb := xs[i], xs[i+1]
		ys = ys[:0]
		for _, r := range rects {
			if r.Empty() || r.X0 > xa || r.X1 < xb {
				continue
			}
			ys = append(ys, [2]int{r.Y0, r.Y1})
		}
		if len(ys) == 0 {
			continue
		}
		sort.Slice(ys, func(a, b int) bool { return ys[a][0] < ys[b][0] })
		covered := int64(0)
		curLo, curHi := ys[0][0], ys[0][1]
		for _, iv := range ys[1:] {
			if iv[0] > curHi {
				covered += int64(curHi - curLo)
				curLo, curHi = iv[0], iv[1]
				continue
			}
			if iv[1] > curHi {
				curHi = iv[1]
			}
		}
		covered += int64(curHi - curLo)
		total += covered * int64(xb-xa)
	}
	return total
}

// IntersectSets returns the pairwise intersections of the rectangles in a
// and b, dropping empty results. The union area of the returned set is the
// area of (∪a) ∩ (∪b).
func IntersectSets(a, b []Rect) []Rect {
	var out []Rect
	for _, ra := range a {
		if ra.Empty() {
			continue
		}
		for _, rb := range b {
			x := ra.Intersect(rb)
			if x.Valid() && !x.Empty() {
				out = append(out, x)
			}
		}
	}
	return out
}

// ExpandSet returns every rectangle in rects grown by d on all sides.
func ExpandSet(rects []Rect, d int) []Rect {
	out := make([]Rect, 0, len(rects))
	for _, r := range rects {
		e := r.Expand(d)
		if e.Valid() {
			out = append(out, e)
		}
	}
	return out
}

func dedupInts(xs []int) []int {
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
