package geom

import "sort"

// Shape is a rectangle on a specific mask layer, optionally tagged with the
// electrical net it belongs to (-1 when unknown, i.e. before extraction).
type Shape struct {
	Layer Layer
	Rect  Rect
	Net   int // electrical net index, -1 if unassigned
}

// ShapeSet is a bag of mask shapes; the fundamental layout representation.
type ShapeSet struct {
	Shapes []Shape
}

// Add appends a shape with an unassigned net.
func (s *ShapeSet) Add(l Layer, r Rect) { s.Shapes = append(s.Shapes, Shape{l, r, -1}) }

// AddNet appends a shape pre-tagged with net n.
func (s *ShapeSet) AddNet(l Layer, r Rect, n int) { s.Shapes = append(s.Shapes, Shape{l, r, n}) }

// Append copies all shapes of t, translated by (dx,dy), into s, remapping
// each shape's net through remap (identity when remap is nil).
func (s *ShapeSet) Append(t *ShapeSet, dx, dy int, remap func(int) int) {
	for _, sh := range t.Shapes {
		n := sh.Net
		if remap != nil {
			n = remap(n)
		}
		s.Shapes = append(s.Shapes, Shape{sh.Layer, sh.Rect.Translate(dx, dy), n})
	}
}

// OnLayer returns the rectangles on layer l.
func (s *ShapeSet) OnLayer(l Layer) []Rect {
	var out []Rect
	for _, sh := range s.Shapes {
		if sh.Layer == l {
			out = append(out, sh.Rect)
		}
	}
	return out
}

// NetShapes returns, for each net index, the rectangles on layer l belonging
// to that net. Shapes with unassigned nets are skipped.
func (s *ShapeSet) NetShapes(l Layer) map[int][]Rect {
	out := make(map[int][]Rect)
	for _, sh := range s.Shapes {
		if sh.Layer == l && sh.Net >= 0 {
			out[sh.Net] = append(out[sh.Net], sh.Rect)
		}
	}
	return out
}

// Bounds returns the bounding box over all shapes.
func (s *ShapeSet) Bounds() (Rect, bool) {
	rects := make([]Rect, len(s.Shapes))
	for i, sh := range s.Shapes {
		rects[i] = sh.Rect
	}
	return BoundingBox(rects)
}

// DisjointSet is a union–find structure used to merge touching shapes into
// electrical nets during layout extraction.
type DisjointSet struct {
	parent []int
	rank   []byte
}

// NewDisjointSet returns a DisjointSet over n singleton elements.
func NewDisjointSet(n int) *DisjointSet {
	d := &DisjointSet{parent: make([]int, n), rank: make([]byte, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Find returns the canonical representative of x's set.
func (d *DisjointSet) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (d *DisjointSet) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	return true
}

// Components returns a dense relabeling of the sets: comp[i] is the
// component id of element i in [0, n), and n is the number of components.
func (d *DisjointSet) Components() (comp []int, n int) {
	comp = make([]int, len(d.parent))
	label := make(map[int]int)
	for i := range d.parent {
		r := d.Find(i)
		id, ok := label[r]
		if !ok {
			id = len(label)
			label[r] = id
		}
		comp[i] = id
	}
	return comp, len(label)
}

// ConnectTouching unions every pair of indices whose rectangles touch.
// pairs of rectangles are tested with a sort-by-x sweep to avoid the full
// quadratic scan on large layers.
func ConnectTouching(d *DisjointSet, idx []int, rects []Rect) {
	order := make([]int, len(idx))
	copy(order, idx)
	sort.Slice(order, func(a, b int) bool { return rects[order[a]].X0 < rects[order[b]].X0 })
	for i, ia := range order {
		ra := rects[ia]
		for _, ib := range order[i+1:] {
			rb := rects[ib]
			if rb.X0 > ra.X1 {
				break
			}
			if ra.Touches(rb) {
				d.Union(ia, ib)
			}
		}
	}
}
